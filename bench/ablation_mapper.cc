// Ablation (Section III-C, footnote 5): scalar vs. superscalar mapper.
//
// The paper's mapper is deliberately scalar — one packet per fast cycle —
// because that rarely impedes a 4-wide BOOM (<0.5% slowdown observed). For a
// wider or denser-commit core the footnote sketches a superscalar mapper
// with duplicated channels/SEs and per-engine arbiters. This ablation runs
// the heaviest kernel (AddressSanitizer, whose loads+stores approach commit
// bandwidth on x264/bodytrack/dedup) at mapper widths 1, 2 and 4, reporting
// the slowdown and the mapper-attributed stall fraction for each.
#include "bench_common.h"

namespace fgbench {
namespace {

void report_mapper_stall(benchmark::State& st, const soc::PointResult& r) {
  st.counters["mapper_stall"] =
      r.run.stall_fractions[static_cast<size_t>(core::StallCause::kMapper)];
}

void register_all() {
  for (const u32 width : {1u, 2u, 4u}) {
    for (const std::string& w : workloads()) {
      api::ExperimentSpec s = make_spec(w);
      s.soc.frontend.mapper_width = width;
      s.soc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4)};
      register_spec(
          "ablation_mapper/sanitizer/w" + std::to_string(width) + "/" + w,
          "mapper_width=" + std::to_string(width), s, report_mapper_stall);
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  return fgbench::sweep_main(argc, argv,
                             "Mapper-width ablation (ASan, 4 ucores)");
}
