// Ablation (Section III-C, footnote 5): scalar vs. superscalar mapper.
//
// The paper's mapper is deliberately scalar — one packet per fast cycle —
// because that rarely impedes a 4-wide BOOM (<0.5% slowdown observed). For a
// wider or denser-commit core the footnote sketches a superscalar mapper
// with duplicated channels/SEs and per-engine arbiters. This ablation runs
// the heaviest kernel (AddressSanitizer, whose loads+stores approach commit
// bandwidth on x264/bodytrack/dedup) at mapper widths 1, 2 and 4, reporting
// the slowdown and the mapper-attributed stall fraction for each.
#include "bench_common.h"

namespace fgbench {
namespace {

void register_all() {
  for (const u32 width : {1u, 2u, 4u}) {
    for (const std::string& w : workloads()) {
      benchmark::RegisterBenchmark(
          ("ablation_mapper/sanitizer/w" + std::to_string(width) + "/" + w)
              .c_str(),
          [width, w](benchmark::State& st) {
            for (auto _ : st) {
              soc::SocConfig sc = soc::table2_soc();
              sc.frontend.mapper_width = width;
              sc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4)};
              soc::RunResult r;
              const double s = fireguard_slowdown(make_wl(w), sc, &r);
              st.counters["slowdown"] = s;
              st.counters["mapper_stall"] = r.stall_fractions[static_cast<size_t>(
                  core::StallCause::kMapper)];
              SeriesSummary::instance().add("mapper_width=" + std::to_string(width),
                                            s);
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  fgbench::SeriesSummary::instance().print(
      "Mapper-width ablation (ASan, 4 ucores)");
  return 0;
}
