// Ablation: store-to-load forwarding in the main core's LSQ.
//
// The reproduction's calibrated core model ships with forwarding off; this
// ablation quantifies what the feature changes — baseline IPC rises on
// store-heavy profiles, and FireGuard's *relative* slowdown stays put, which
// is why the calibration tolerates either setting (slowdown is a ratio of
// two runs that both gain).
#include "bench_common.h"

namespace fgbench {
namespace {

void register_all() {
  for (const bool stlf : {false, true}) {
    const char* tag = stlf ? "stlf_on" : "stlf_off";
    for (const std::string& w : workloads()) {
      benchmark::RegisterBenchmark(
          ("ablation_stlf/" + std::string(tag) + "/" + w).c_str(),
          [stlf, tag, w](benchmark::State& st) {
            for (auto _ : st) {
              soc::SocConfig sc = soc::table2_soc();
              sc.core.store_load_forwarding = stlf;
              sc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4)};
              const trace::WorkloadConfig wl = make_wl(w);
              const Cycle base = soc::run_baseline_cycles(wl, sc);
              const soc::RunResult r = soc::run_fireguard(wl, sc);
              const double slowdown =
                  static_cast<double>(r.cycles) / static_cast<double>(base);
              st.counters["slowdown"] = slowdown;
              st.counters["base_cycles"] = static_cast<double>(base);
              SeriesSummary::instance().add(tag, slowdown);
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  fgbench::SeriesSummary::instance().print(
      "Store-to-load-forwarding ablation (ASan, 4 ucores)");
  return 0;
}
