// Ablation: store-to-load forwarding in the main core's LSQ.
//
// The reproduction's calibrated core model ships with forwarding off; this
// ablation quantifies what the feature changes — baseline IPC rises on
// store-heavy profiles, and FireGuard's *relative* slowdown stays put, which
// is why the calibration tolerates either setting (slowdown is a ratio of
// two runs that both gain).
//
// The shared BaselineCache keys on the forwarding knob, so each setting gets
// its own baseline run.
#include "bench_common.h"

namespace fgbench {
namespace {

void report_base_cycles(benchmark::State& st, const soc::PointResult& r) {
  st.counters["base_cycles"] = static_cast<double>(r.baseline_cycles);
}

void register_all() {
  for (const bool stlf : {false, true}) {
    const char* tag = stlf ? "stlf_on" : "stlf_off";
    for (const std::string& w : workloads()) {
      api::ExperimentSpec s = make_spec(w);
      s.soc.core.store_load_forwarding = stlf;
      s.soc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4)};
      register_spec("ablation_stlf/" + std::string(tag) + "/" + w, tag, s,
                    report_base_cycles);
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  return fgbench::sweep_main(
      argc, argv, "Store-to-load-forwarding ablation (ASan, 4 ucores)");
}
