// Figure 8: detection latency with 4 µcores per kernel.
//
// 50-100 attacks are injected per workload (hijacked jumps, corrupted
// returns, redzone accesses, quarantined-region accesses); the latency is
// the time from the attack instruction's commit to the guardian kernel's
// `detect`, in nanoseconds at the 3.2 GHz main-core clock.
//
// Paper shape to check: PMC < 50 ns everywhere; shadow stack slightly higher
// (worst ~220 ns on x264); ASan median < 200 ns with a > 2000 ns tail driven
// by TLB + cache miss pile-ups inside the engines; log-scale spread.
#include "bench_common.h"

namespace fgbench {
namespace {

struct Scenario {
  const char* series;
  kernels::KernelKind kind;
  trace::AttackKind attack;
};

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"shadow", kernels::KernelKind::kShadowStack, trace::AttackKind::kRetCorrupt},
      {"sanitizer", kernels::KernelKind::kAsan, trace::AttackKind::kHeapOob},
      {"uaf", kernels::KernelKind::kUaf, trace::AttackKind::kUseAfterFree},
      {"pmc", kernels::KernelKind::kPmc, trace::AttackKind::kPcHijack},
  };
  return kScenarios;
}

void report_latency(benchmark::State& st, const soc::PointResult& r) {
  SampleSet lat;
  for (const auto& d : r.run.detections) lat.add(d.latency_ns);
  st.counters["attacks"] = static_cast<double>(r.run.planned_attacks);
  st.counters["detected"] = static_cast<double>(r.run.detections.size());
  if (!lat.empty()) {
    st.counters["lat_min_ns"] = lat.min();
    st.counters["lat_med_ns"] = lat.percentile(50);
    st.counters["lat_p90_ns"] = lat.percentile(90);
    st.counters["lat_max_ns"] = lat.max();
  }
}

void register_all() {
  for (const Scenario& s : scenarios()) {
    for (const std::string& w : workloads()) {
      api::ExperimentSpec spec =
          make_spec(w, {{s.attack, soc::default_attack_count()}});
      spec.soc.kernels = {soc::deploy(s.kind, 4)};
      // want_slowdown off: the figure plots latency, not overhead.
      register_spec("fig08/" + std::string(s.series) + "/" + w, "", spec,
                    report_latency, /*want_slowdown=*/false);
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  return fgbench::sweep_main(argc, argv, "Figure 8 (detection latency)");
}
