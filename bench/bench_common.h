// Shared scaffolding for the paper-reproduction benchmarks. Each bench
// binary regenerates one table or figure: it registers the relevant
// (workload × SoC-config) simulation points with the shared SweepRunner,
// which executes them across FG_JOBS worker threads; google-benchmark then
// reports each point's precomputed result (counters + the point's own wall
// clock via manual time), and the summary prints the geomean slowdowns the
// way the figures report them, plus sweep wall clock and baseline-cache
// hit/miss counters.
//
// Results are independent of FG_JOBS: every point is a fully deterministic,
// self-contained simulation, and the runner returns results in registration
// order (see src/soc/sweep.h).
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <functional>
#include <regex>
#include <string>
#include <utility>
#include <vector>

#include "src/api/spec.h"
#include "src/common/stats.h"
#include "src/soc/figures.h"
#include "src/soc/sweep.h"

namespace fgbench {

using namespace fg;  // NOLINT: bench-local convenience

inline const std::vector<std::string>& workloads() {
  return soc::paper_workloads();
}

/// The one sweep runner shared by every point of this bench binary. Its
/// BaselineCache replaces the old per-binary singleton: one mutex-guarded
/// cache, per-key once-semantics under concurrency.
inline soc::SweepRunner& sweep() {
  static soc::SweepRunner runner;
  return runner;
}

inline trace::WorkloadConfig make_wl(
    const std::string& name,
    std::vector<std::pair<trace::AttackKind, u32>> attacks = {}) {
  return soc::paper_workload(name, soc::default_trace_len(),
                             std::move(attacks));
}

/// Declarative starting point for a bench experiment: Table II SoC (no
/// kernels deployed yet), the named workload at the bench trace length with
/// warmup = one tenth, plus an optional attack plan. Benches mutate the
/// spec (deployments, knob overrides) and hand it to register_spec — every
/// bench point is an ExperimentSpec first and a simulation second.
inline api::ExperimentSpec make_spec(
    const std::string& workload,
    std::vector<std::pair<trace::AttackKind, u32>> attacks = {}) {
  api::ExperimentSpec s;
  s.workload = make_wl(workload, std::move(attacks));
  s.soc = soc::table2_soc();
  return s;
}

/// Extra per-point reporting hook: fill benchmark counters from the result.
using Reporter =
    std::function<void(benchmark::State&, const soc::PointResult&)>;

/// Registers `p` — with `p.name` / `p.series` already set — with the shared
/// sweep AND a google-benchmark entry that reports its (precomputed)
/// result. The benchmark's reported time is the point's own wall clock from
/// the parallel run.
inline void register_point(soc::SweepPoint p, Reporter extra = {}) {
  const bool want_slowdown = p.want_slowdown;
  const u32 idx = sweep().add(std::move(p));
  benchmark::RegisterBenchmark(
      sweep().point(idx).name.c_str(),
      [idx, want_slowdown, extra](benchmark::State& st) {
        const soc::PointResult& r = sweep().result(idx);
        for (auto _ : st) {
          st.SetIterationTime(r.wall_ms / 1000.0);
          benchmark::DoNotOptimize(r.run.cycles);
        }
        if (want_slowdown) st.counters["slowdown"] = r.slowdown;
        if (extra) extra(st, r);
      })
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
}

inline void register_point(std::string name, std::string series,
                           soc::SweepPoint p, Reporter extra = {}) {
  p.name = std::move(name);
  p.series = std::move(series);
  register_point(std::move(p), std::move(extra));
}

/// Spec-path registration: the declarative ExperimentSpec is converted to a
/// SweepRunner point via api::to_sweep_point — identical simulation inputs,
/// one canonical description (serializable with api::spec_to_json, runnable
/// standalone with `fgsim run`).
inline void register_spec(std::string name, std::string series,
                          const api::ExperimentSpec& spec, Reporter extra = {},
                          bool want_slowdown = true) {
  soc::SweepPoint p = api::to_sweep_point(spec);
  p.want_slowdown = want_slowdown;
  register_point(std::move(name), std::move(series), std::move(p),
                 std::move(extra));
}

/// Standard bench main: run the sweep in parallel, then let google-benchmark
/// report the per-point results, then print the summary. Google-benchmark's
/// selection flags are honored before any simulation runs:
/// --benchmark_list_tests skips the sweep entirely, and --benchmark_filter
/// restricts it to matching points — same partial-match semantics and the
/// same POSIX-extended grammar google-benchmark compiles the filter with
/// (std::regex_constants::extended in its re.h), including the leading '-'
/// negation. On a regex std::regex rejects, the full sweep runs — a
/// filtered-out benchmark then merely ignores its result.
inline int sweep_main(int argc, char** argv, const char* title) {
  bool list_only = false;
  std::string filter;
  // Falsy spellings google-benchmark's IsTruthyFlagValue accepts; anything
  // else (including a bare flag) means "list". Diverging here would skip
  // the sweep while google-benchmark still runs the benchmarks.
  const auto is_falsy = [](std::string v) {
    for (char& ch : v) ch = static_cast<char>(std::tolower(ch));
    return v == "0" || v == "false" || v == "f" || v == "no" || v == "n" ||
           v == "off";
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_list_tests", 22) == 0 &&
        (argv[i][22] == '\0' || argv[i][22] == '=')) {
      list_only = argv[i][22] != '=' || !is_falsy(argv[i] + 23);
    } else if (std::strncmp(argv[i], "--benchmark_filter=", 19) == 0) {
      filter = argv[i] + 19;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (!list_only) {
    if (filter.empty() || filter == "all") {
      sweep().run_all();
    } else {
      bool negate = false;
      if (filter[0] == '-') {
        negate = true;
        filter.erase(0, 1);
      }
      try {
        const std::regex re(filter, std::regex_constants::extended);
        sweep().run_all([&](const soc::SweepPoint& p) {
          // google-benchmark matches against the *decorated* name every
          // register_point entry gets (->Iterations(1)->UseManualTime());
          // match the same string or anchored filters would diverge.
          const std::string decorated =
              p.name + "/iterations:1/manual_time";
          return std::regex_search(decorated, re) != negate;
        });
      } catch (const std::regex_error&) {
        sweep().run_all();
      }
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  if (!list_only && title != nullptr) sweep().print_summary(title);
  return 0;
}

}  // namespace fgbench
