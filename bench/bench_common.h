// Shared scaffolding for the paper-reproduction benchmarks. Each bench
// binary regenerates one table or figure: it runs the relevant
// configurations on all nine PARSEC-like workloads and reports the same
// quantities the paper plots (slowdowns, latencies, stall fractions), via
// google-benchmark counters plus a printed summary table.
#pragma once

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/soc/experiment.h"

namespace fgbench {

using namespace fg;  // NOLINT: bench-local convenience

inline const std::vector<std::string>& workloads() {
  static const std::vector<std::string> kNames = {
      "blackscholes", "bodytrack",     "dedup",     "ferret", "fluidanimate",
      "freqmine",     "streamcluster", "swaptions", "x264"};
  return kNames;
}

inline soc::BaselineCache& baseline_cache() {
  static soc::BaselineCache cache;
  return cache;
}

inline trace::WorkloadConfig make_wl(
    const std::string& name,
    std::vector<std::pair<trace::AttackKind, u32>> attacks = {}) {
  trace::WorkloadConfig wl;
  wl.profile = trace::profile_by_name(name);
  wl.seed = 42;
  wl.n_insts = soc::default_trace_len();
  wl.warmup_insts = wl.n_insts / 10;
  wl.attacks = std::move(attacks);
  return wl;
}

/// Slowdown of a FireGuard configuration vs. the unmonitored baseline on the
/// identical trace.
inline double fireguard_slowdown(const trace::WorkloadConfig& wl,
                                 const soc::SocConfig& sc,
                                 soc::RunResult* out = nullptr) {
  const Cycle base = baseline_cache().get(wl, sc);
  soc::RunResult r = soc::run_fireguard(wl, sc);
  if (out != nullptr) *out = r;
  return static_cast<double>(r.cycles) / static_cast<double>(base);
}

inline double software_slowdown(const trace::WorkloadConfig& wl,
                                baseline::SwScheme scheme,
                                const soc::SocConfig& sc) {
  const Cycle base = baseline_cache().get(wl, sc);
  const soc::RunResult r = soc::run_software(wl, scheme, sc);
  return static_cast<double>(r.cycles) / static_cast<double>(base);
}

/// Collects per-series slowdowns so the summary can print geomeans the way
/// the figures report them.
class SeriesSummary {
 public:
  static SeriesSummary& instance() {
    static SeriesSummary s;
    return s;
  }
  void add(const std::string& series, double slowdown) {
    data_[series].push_back(slowdown);
  }
  void print(const char* title) const {
    std::printf("\n=== %s: geomean slowdowns ===\n", title);
    for (const auto& [series, values] : data_) {
      std::printf("  %-36s %6.3f  (n=%zu)\n", series.c_str(), geomean(values),
                  values.size());
    }
  }

 private:
  std::map<std::string, std::vector<double>> data_;
};

}  // namespace fgbench
