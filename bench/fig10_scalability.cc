// Figure 10: slowdown vs. number of µcores, for all four guardian kernels.
//
// PMC and shadow stack sweep {2, 4, 6} engines (the paper's x-range for the
// light kernels); ASan and UaF sweep {2, 4, 6, 8, 10, 12}.
//
// Paper shape to check: PMC 2µ=1.20 -> 4µ=1.02 (x264 lags) -> 6µ all <1.05;
// SS 2µ=1.073 -> 4µ=1.021 -> 6µ=1.004; ASan heavy (2µ=1.86, bodytrack /
// dedup / x264 above 2x, x264 still 1.59 at 12µ); UaF heaviest with a flat,
// non-parallelizable dedup component (12µ geomean ~1.16x in the paper).
#include "bench_common.h"

namespace fgbench {
namespace {

struct Sweep {
  const char* series;
  kernels::KernelKind kind;
  std::vector<u32> engines;
};

const std::vector<Sweep>& sweeps() {
  static const std::vector<Sweep> kSweeps = {
      {"pmc", kernels::KernelKind::kPmc, {2, 4, 6}},
      {"shadow", kernels::KernelKind::kShadowStack, {2, 4, 6}},
      {"sanitizer", kernels::KernelKind::kAsan, {2, 4, 6, 8, 10, 12}},
      {"uaf", kernels::KernelKind::kUaf, {2, 4, 6, 8, 10, 12}},
  };
  return kSweeps;
}

void register_all() {
  for (const Sweep& s : sweeps()) {
    for (u32 n : s.engines) {
      for (const std::string& w : workloads()) {
        benchmark::RegisterBenchmark(
            ("fig10/" + std::string(s.series) + "/" + std::to_string(n) +
             "ucores/" + w)
                .c_str(),
            [s, n, w](benchmark::State& st) {
              for (auto _ : st) {
                soc::SocConfig sc = soc::table2_soc();
                sc.kernels = {soc::deploy(s.kind, n)};
                const double slow = fireguard_slowdown(make_wl(w), sc);
                st.counters["slowdown"] = slow;
                SeriesSummary::instance().add(
                    std::string(s.series) + "/" + std::to_string(n) + "ucores",
                    slow);
              }
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  fgbench::SeriesSummary::instance().print("Figure 10 (scalability)");
  return 0;
}
