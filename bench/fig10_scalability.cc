// Figure 10: slowdown vs. number of µcores, for all four guardian kernels.
//
// PMC and shadow stack sweep {2, 4, 6} engines (the paper's x-range for the
// light kernels); ASan and UaF sweep {2, 4, 6, 8, 10, 12}.
//
// The grid itself lives in src/soc/figures.cc (fig10_points), shared with
// tools/simspeed so the speed trajectory always measures the real grid.
//
// Paper shape to check: PMC 2µ=1.20 -> 4µ=1.02 (x264 lags) -> 6µ all <1.05;
// SS 2µ=1.073 -> 4µ=1.021 -> 6µ=1.004; ASan heavy (2µ=1.86, bodytrack /
// dedup / x264 above 2x, x264 still 1.59 at 12µ); UaF heaviest with a flat,
// non-parallelizable dedup component (12µ geomean ~1.16x in the paper).
#include "bench_common.h"

namespace fgbench {
namespace {

void register_all() {
  // Same grid definition tools/simspeed measures (src/soc/figures.cc),
  // lifted onto the spec path: each point round-trips through an
  // ExperimentSpec, so any point is exportable and runnable standalone.
  for (const soc::SweepPoint& p : soc::fig10_points(soc::default_trace_len())) {
    register_spec(p.name, p.series, api::spec_of_point(p));
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  return fgbench::sweep_main(argc, argv, "Figure 10 (scalability)");
}
