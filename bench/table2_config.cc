// Table II: the evaluated hardware configuration. Prints the library's
// defaults so a reader can diff them against the paper, and runs one short
// reference simulation as a sanity benchmark (its reported time is the
// point's real wall clock from the sweep).
#include "bench_common.h"

namespace fgbench {
namespace {

void print_config() {
  const soc::SocConfig sc = soc::table2_soc();
  std::printf("=== Table II: hardware configuration ===\n");
  std::printf("Main core        : %u-wide OoO @ %.1f GHz\n", sc.core.commit_width,
              sc.fast_ghz);
  std::printf("Pipeline         : %u-entry ROB, %u-entry IQ, %u-entry LDQ/STQ, "
              "%u phys regs\n",
              sc.core.rob_entries, sc.core.iq_entries, sc.core.ldq_entries,
              sc.core.phys_regs);
  std::printf("Func units       : %u int ALU, %u FP/mul/div, %u mem, %u jump, "
              "%u CSR\n",
              sc.core.n_int_alu, sc.core.n_fp, sc.core.n_mem, sc.core.n_jmp,
              sc.core.n_csr);
  std::printf("Branch predictor : TAGE %u tables (%u-%u bit hist), %u-entry BTB, "
              "%u-entry RAS\n",
              sc.core.predictor.tage_tables, sc.core.predictor.min_history,
              sc.core.predictor.max_history, sc.core.predictor.btb_entries,
              sc.core.predictor.ras_entries);
  std::printf("L1I / L1D        : %u KB %u-way, %u MSHRs each\n",
              sc.mem.l1i.size_bytes / 1024, sc.mem.l1i.ways, sc.mem.l1i.mshrs);
  std::printf("L2 / LLC         : %u KB / %u MB, %u-way, DRAM ~%u cycles\n",
              sc.mem.l2.size_bytes / 1024, sc.mem.llc.size_bytes / 1024 / 1024,
              sc.mem.l2.ways, sc.mem.dram_latency);
  std::printf("Event filter     : %u-wide, %u-entry FIFOs\n",
              sc.frontend.filter.width, sc.frontend.filter.fifo_depth);
  std::printf("Mapper           : %u-entry CDC, fabric @ %.1f GHz (ratio %u)\n",
              sc.frontend.cdc_depth, sc.fast_ghz / sc.frontend.freq_ratio,
              sc.frontend.freq_ratio);
  std::printf("Analysis engine  : in-order 5-stage @ %.1f GHz, %u-entry message "
              "queues, %u KB I/D caches\n",
              sc.fast_ghz / sc.frontend.freq_ratio, sc.ucore.msgq_depth,
              sc.ucore.dcache.size_bytes / 1024);
}

void register_all() {
  api::ExperimentSpec s = make_spec("blackscholes");
  s.workload.n_insts = 30000;
  s.workload.warmup_insts = s.workload.n_insts / 10;
  s.soc.kernels = {soc::deploy(kernels::KernelKind::kPmc, 4)};
  register_spec("table2/reference_run", "", s,
                [](benchmark::State& st, const soc::PointResult& r) {
                  st.counters["ipc"] = r.run.ipc;
                },
                /*want_slowdown=*/false);
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::print_config();
  fgbench::register_all();
  return fgbench::sweep_main(argc, argv, nullptr);
}
