// Figure 11: programming models (PMC on 4 µcores).
//
// The same PMC kernel generated in the four dispatch-loop styles of Section
// III-D: conventional single-iteration loop, Duff's device, pure unrolling,
// and the paper's hybrid.
//
// Paper shape to check: conventional worst (large outliers on the busiest
// workloads), Duff better, unrolling better still, hybrid uniformly best.
#include "bench_common.h"

namespace fgbench {
namespace {

const std::vector<kernels::ProgModel>& models() {
  static const std::vector<kernels::ProgModel> kModels = {
      kernels::ProgModel::kConventional, kernels::ProgModel::kDuff,
      kernels::ProgModel::kUnrolled, kernels::ProgModel::kHybrid};
  return kModels;
}

void register_all() {
  for (kernels::ProgModel m : models()) {
    for (const std::string& w : workloads()) {
      api::ExperimentSpec s = make_spec(w);
      s.soc.kernels = {soc::deploy(kernels::KernelKind::kPmc, 4, m)};
      register_spec(
          "fig11/" + std::string(kernels::prog_model_name(m)) + "/" + w,
          kernels::prog_model_name(m), s);
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  return fgbench::sweep_main(argc, argv, "Figure 11 (programming models)");
}
