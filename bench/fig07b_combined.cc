// Figure 7(b): combining safeguards. Multiple guardian kernels run
// simultaneously (4 µcores each; the shadow stack becomes a hardware
// accelerator when three kernels are deployed, as in the paper).
//
// Paper shape to check: the heaviest kernel dominates; slowdowns do not
// multiply when kernels are combined.
#include "bench_common.h"

namespace fgbench {
namespace {

using kernels::KernelKind;

struct Combo {
  const char* name;
  std::vector<std::pair<KernelKind, bool>> kernels;  // kind, use_ha
};

const std::vector<Combo>& combos() {
  static const std::vector<Combo> kCombos = {
      {"ss+pmc", {{KernelKind::kShadowStack, false}, {KernelKind::kPmc, false}}},
      {"as+pmc", {{KernelKind::kAsan, false}, {KernelKind::kPmc, false}}},
      {"uaf+pmc", {{KernelKind::kUaf, false}, {KernelKind::kPmc, false}}},
      {"uaf+as", {{KernelKind::kUaf, false}, {KernelKind::kAsan, false}}},
      {"ss+as", {{KernelKind::kShadowStack, false}, {KernelKind::kAsan, false}}},
      // Three kernels: SS runs as a HA (paper's configuration).
      {"ss_ha+pmc+as",
       {{KernelKind::kShadowStack, true},
        {KernelKind::kPmc, false},
        {KernelKind::kAsan, false}}},
      {"ss_ha+pmc+uaf",
       {{KernelKind::kShadowStack, true},
        {KernelKind::kPmc, false},
        {KernelKind::kUaf, false}}},
  };
  return kCombos;
}

void register_all() {
  for (const Combo& c : combos()) {
    for (const std::string& w : workloads()) {
      api::ExperimentSpec s = make_spec(w);
      for (const auto& [kind, ha] : c.kernels) {
        s.soc.kernels.push_back(
            soc::deploy(kind, ha ? 1 : 4, kernels::ProgModel::kHybrid, ha));
      }
      register_spec("fig07b/" + std::string(c.name) + "/" + w, c.name, s);
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  return fgbench::sweep_main(argc, argv, "Figure 7(b) combinations");
}
