// Figure 9: cumulative microarchitectural bottlenecks vs. event-filter width
// (AddressSanitizer on 4 µcores, filter width 1 / 2 / 4).
//
// Every refused commit lane is attributed to the deepest full component:
// filter (width limit or FIFO), the scalar mapper, the CDC, or the engines'
// message queues — the categories of the paper's stacked plot.
//
// Paper shape to check: a 4-wide filter keeps up with the 4-wide core (its
// own contribution ~0); narrowing to 2 adds ~16% filter-attributed overhead
// and to 1 adds ~34%.
#include "bench_common.h"

namespace fgbench {
namespace {

void report_stalls(benchmark::State& st, const soc::PointResult& r) {
  st.counters["stall_filter"] =
      r.run.stall_fractions[static_cast<size_t>(core::StallCause::kFilter)];
  st.counters["stall_mapper"] =
      r.run.stall_fractions[static_cast<size_t>(core::StallCause::kMapper)];
  st.counters["stall_cdc"] =
      r.run.stall_fractions[static_cast<size_t>(core::StallCause::kCdc)];
  st.counters["stall_engines"] =
      r.run.stall_fractions[static_cast<size_t>(core::StallCause::kEngines)];
}

void register_all() {
  for (u32 width : {4u, 2u, 1u}) {
    for (const std::string& w : workloads()) {
      api::ExperimentSpec s = make_spec(w);
      s.soc.frontend.filter.width = width;
      s.soc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4)};
      register_spec("fig09/width" + std::to_string(width) + "/" + w,
                    "width" + std::to_string(width), s, report_stalls);
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  return fgbench::sweep_main(argc, argv, "Figure 9 (slowdown by filter width)");
}
