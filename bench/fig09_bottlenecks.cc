// Figure 9: cumulative microarchitectural bottlenecks vs. event-filter width
// (AddressSanitizer on 4 µcores, filter width 1 / 2 / 4).
//
// Every refused commit lane is attributed to the deepest full component:
// filter (width limit or FIFO), the scalar mapper, the CDC, or the engines'
// message queues — the categories of the paper's stacked plot.
//
// Paper shape to check: a 4-wide filter keeps up with the 4-wide core (its
// own contribution ~0); narrowing to 2 adds ~16% filter-attributed overhead
// and to 1 adds ~34%.
#include "bench_common.h"

namespace fgbench {
namespace {

void register_all() {
  for (u32 width : {4u, 2u, 1u}) {
    for (const std::string& w : workloads()) {
      benchmark::RegisterBenchmark(
          ("fig09/width" + std::to_string(width) + "/" + w).c_str(),
          [width, w](benchmark::State& st) {
            for (auto _ : st) {
              soc::SocConfig sc = soc::table2_soc();
              sc.frontend.filter.width = width;
              sc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4)};
              soc::RunResult r;
              const double s = fireguard_slowdown(make_wl(w), sc, &r);
              st.counters["slowdown"] = s;
              st.counters["stall_filter"] =
                  r.stall_fractions[static_cast<size_t>(core::StallCause::kFilter)];
              st.counters["stall_mapper"] =
                  r.stall_fractions[static_cast<size_t>(core::StallCause::kMapper)];
              st.counters["stall_cdc"] =
                  r.stall_fractions[static_cast<size_t>(core::StallCause::kCdc)];
              st.counters["stall_engines"] = r.stall_fractions[static_cast<size_t>(
                  core::StallCause::kEngines)];
              SeriesSummary::instance().add("width" + std::to_string(width), s);
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  fgbench::SeriesSummary::instance().print("Figure 9 (slowdown by filter width)");
  return 0;
}
