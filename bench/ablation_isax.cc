// Ablation (Section III-D): the MA-stage ISAX interface vs. stock Rocket's
// post-commit custom-instruction port.
//
// The paper motivates its tightly coupled interface by Rocket's >= 3-cycle
// (up to 13 under hazards) post-commit routing; this ablation quantifies the
// end-to-end cost of keeping the stock interface (PMC and ASan, 4 µcores).
#include "bench_common.h"

namespace fgbench {
namespace {

void register_all() {
  struct K {
    const char* name;
    kernels::KernelKind kind;
  };
  for (const K k : {K{"pmc", kernels::KernelKind::kPmc},
                    K{"sanitizer", kernels::KernelKind::kAsan}}) {
    for (bool ma : {true, false}) {
      const std::string mode = ma ? "ma_stage" : "post_commit";
      for (const std::string& w : workloads()) {
        api::ExperimentSpec s = make_spec(w);
        s.soc.ucore.isax_ma_stage = ma;
        s.soc.kernels = {soc::deploy(k.kind, 4)};
        register_spec(
            "ablation_isax/" + std::string(k.name) + "/" + mode + "/" + w,
            std::string(k.name) + "/" + mode, s);
      }
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  return fgbench::sweep_main(argc, argv, "ISAX placement ablation");
}
