// Figure 7(a): FireGuard vs. software techniques.
//
// Per workload: PMC / shadow stack / ASan / UaF on 4 µcores, PMC and shadow
// stack additionally as a single hardware accelerator, and the software
// baselines (LLVM shadow stack, ASan AArch64/x86-64, DangSan). Reported
// value = slowdown vs. the unmonitored core on the identical trace.
//
// Paper shape to check: PMC 2.5% / SS 2.1% / ASan 39% / UaF 42% geomean with
// 4 µcores; HAs ~0%; software far worse for ASan (163.5% AArch64, 91.5%
// x86-64); FireGuard wins everywhere except x264-ASan and dedup-UaF.
#include "bench_common.h"

namespace fgbench {
namespace {

void register_all() {
  using kernels::KernelKind;
  using baseline::SwScheme;
  for (const std::string& w : workloads()) {
    auto reg_fg = [&](const char* series, KernelKind k, bool ha) {
      api::ExperimentSpec s = make_spec(w);
      s.soc.kernels = {
          soc::deploy(k, ha ? 1 : 4, kernels::ProgModel::kHybrid, ha)};
      register_spec("fig07a/" + std::string(series) + "/" + w, series, s);
    };
    auto reg_sw = [&](const char* series, SwScheme scheme) {
      api::ExperimentSpec s = make_spec(w);
      s.mode = api::Mode::kSoftware;
      s.scheme = scheme;
      register_spec("fig07a/" + std::string(series) + "/" + w, series, s);
    };
    reg_fg("pmc_fireguard_4ucores", KernelKind::kPmc, false);
    reg_fg("pmc_fireguard_1ha", KernelKind::kPmc, true);
    reg_fg("shadow_fireguard_4ucores", KernelKind::kShadowStack, false);
    reg_fg("shadow_fireguard_1ha", KernelKind::kShadowStack, true);
    reg_fg("sanitizer_fireguard_4ucores", KernelKind::kAsan, false);
    reg_fg("uaf_fireguard_4ucores", KernelKind::kUaf, false);
    reg_sw("shadow_software_aarch64", SwScheme::kShadowStackLlvm);
    reg_sw("sanitizer_software_aarch64", SwScheme::kAsanAarch64);
    reg_sw("sanitizer_software_x86_64", SwScheme::kAsanX8664);
    reg_sw("dangsan_software_x86_64", SwScheme::kDangSan);
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  return fgbench::sweep_main(argc, argv, "Figure 7(a)");
}
