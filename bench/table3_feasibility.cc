// Table III + Section IV-F: hardware overhead and feasibility in commercial
// SoCs (analytical model; no simulation).
#include <cstdio>

#include "src/area/area_model.h"

int main() {
  using namespace fg::area;

  std::printf("=== Section IV-F: physical implementation (14nm) ===\n");
  const PhysicalBreakdown b = physical_breakdown();
  std::printf("SoC %.2f mm^2 | BOOM %.3f | Rocket %.3f | filter %.3f | "
              "mapper %.3f\n",
              kSocArea, kBoomArea, kRocketArea, kFilterArea4Way, kMapperArea);
  std::printf("transport        : %.3f mm^2 = %.2f%% of BOOM, %.2f%% of SoC  "
              "(paper: 0.043 / 3.88%% / 1.48%%)\n",
              b.transport_mm2, b.transport_pct_boom, b.transport_pct_soc);
  std::printf("4-ucore FireGuard: %.3f mm^2 = %.1f%% of BOOM, %.2f%% of SoC  "
              "(paper: 0.287 / 25.9%% / 9.86%%)\n\n",
              b.fireguard4_mm2, b.fireguard4_pct_boom, b.fireguard4_pct_soc);

  std::printf("=== Table III: feasibility in commercial SoCs ===\n");
  std::printf("%-14s %-16s %6s %6s %8s %6s %8s %10s %8s\n", "SoC", "core",
              "freq", "tech", "area@14", "IPC", "#ucores", "ovh mm^2",
              "%/core");
  for (const SocSpec& soc : table3_socs()) {
    for (const CoreSpec& core : soc.cores) {
      const FireGuardCost c = per_core_cost(core);
      std::printf("%-14s %-16s %5.1fG %5unm %8.2f %6.2f %8u %10.3f %7.1f%%\n",
                  soc.name.c_str(), core.name.c_str(), core.freq_ghz,
                  core.tech_nm, c.core_area_14nm, core.ipc, c.n_ucores,
                  c.overhead_mm2, c.pct_of_core);
    }
  }
  std::printf("\nAn independent kernel for all cores (SoC level):\n");
  for (const SocSpec& soc : table3_socs()) {
    std::printf("  %-12s overhead %6.2f mm^2 = %5.2f%% of SoC\n",
                soc.name.c_str(), soc_overhead_mm2(soc), soc_overhead_pct(soc));
  }
  std::printf("(paper: BOOM 0.29/9.86%%, M1-Pro 6.10/0.47%%, Kirin 1.23/0.57%%, "
              "i7-12700F 6.67/0.99%%)\n");
  return 0;
}
