// Section IV-G (closing claim): energy overhead of FireGuard.
//
// Prints, for each Table III SoC's performance core, the per-core area
// overhead next to the modeled power overhead, plus the single-clock-domain
// counterfactual that shows what the two-domain split saves. Activity
// factors are derived from a measured FireGuard run (ASan on the ferret
// profile) rather than assumed.
#include "bench_common.h"

#include "src/area/energy_model.h"

namespace fgbench {
namespace {

area::ActivityFactors measured_activity() {
  // One representative run to extract IPC, filtered-packet fraction and
  // µcore duty cycle.
  soc::SocConfig sc = soc::table2_soc();
  sc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4)};
  const soc::RunResult r = soc::run_fireguard(make_wl("ferret"), sc);
  const double packets_per_commit =
      r.committed > 0 ? static_cast<double>(r.packets) / (4.0 * r.committed)
                      : 0.3;
  // µcore duty: packets * per-packet work (~8 µcycles) over the slow cycles.
  const double slow_cycles = static_cast<double>(r.cycles) / 2.0;
  const double busy =
      slow_cycles > 0 ? 8.0 * static_cast<double>(r.packets) / 4.0 / slow_cycles
                      : 0.6;
  return area::activity_from_run(r.ipc, 4, packets_per_commit, busy);
}

void register_all() {
  benchmark::RegisterBenchmark("table_energy/rows", [](benchmark::State& st) {
    for (auto _ : st) {
      const area::ActivityFactors af = measured_activity();
      const auto rows = area::table3_energy_rows(af);
      std::printf(
          "\n%-12s %-14s %12s %12s %16s\n", "SoC", "Core", "area ovh %",
          "energy ovh %", "1-domain ovh %");
      for (const auto& r : rows) {
        std::printf("%-12s %-14s %12.2f %12.2f %16.2f\n", r.soc.c_str(),
                    r.core.c_str(), r.area_overhead_pct, r.energy_overhead_pct,
                    r.single_domain_pct);
        st.counters[r.soc + "_energy_pct"] = r.energy_overhead_pct;
      }
    }
  })->Iterations(1)->Unit(benchmark::kMillisecond);
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
