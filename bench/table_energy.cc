// Section IV-G (closing claim): energy overhead of FireGuard.
//
// Prints, for each Table III SoC's performance core, the per-core area
// overhead next to the modeled power overhead, plus the single-clock-domain
// counterfactual that shows what the two-domain split saves. Activity
// factors are derived from a measured FireGuard run (ASan on the ferret
// profile) rather than assumed.
#include "bench_common.h"

#include "src/area/energy_model.h"

namespace fgbench {
namespace {

void report_energy_rows(benchmark::State& st, const soc::PointResult& pr) {
  const soc::RunResult& r = pr.run;
  const double packets_per_commit =
      r.committed > 0 ? static_cast<double>(r.packets) / (4.0 * r.committed)
                      : 0.3;
  // µcore duty: packets * per-packet work (~8 µcycles) over the slow cycles.
  const double slow_cycles = static_cast<double>(r.cycles) / 2.0;
  const double busy =
      slow_cycles > 0 ? 8.0 * static_cast<double>(r.packets) / 4.0 / slow_cycles
                      : 0.6;
  const area::ActivityFactors af =
      area::activity_from_run(r.ipc, 4, packets_per_commit, busy);
  const auto rows = area::table3_energy_rows(af);
  std::printf("\n%-12s %-14s %12s %12s %16s\n", "SoC", "Core", "area ovh %",
              "energy ovh %", "1-domain ovh %");
  for (const auto& row : rows) {
    std::printf("%-12s %-14s %12.2f %12.2f %16.2f\n", row.soc.c_str(),
                row.core.c_str(), row.area_overhead_pct, row.energy_overhead_pct,
                row.single_domain_pct);
    st.counters[row.soc + "_energy_pct"] = row.energy_overhead_pct;
  }
}

void register_all() {
  // One representative run to extract IPC, filtered-packet fraction and
  // µcore duty cycle.
  api::ExperimentSpec s = make_spec("ferret");
  s.soc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4)};
  register_spec("table_energy/rows", "", s, report_energy_rows,
                /*want_slowdown=*/false);
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  return fgbench::sweep_main(argc, argv, nullptr);
}
