// Ablation (Section III-C): Scheduling-Engine policies.
//
// Block mode exists for message locality (the shadow stack's pipelined
// parallelism); round-robin spreads stateless checks; fixed pins a kernel to
// one engine. This ablation shows each kernel under each policy.
#include "bench_common.h"

namespace fgbench {
namespace {

void report_detections(benchmark::State& st, const soc::PointResult& r) {
  st.counters["detected"] = static_cast<double>(r.run.detections.size());
  st.counters["attacks"] = static_cast<double>(r.run.planned_attacks);
}

void register_all() {
  struct K {
    const char* name;
    kernels::KernelKind kind;
    trace::AttackKind attack;
  };
  for (const K k :
       {K{"shadow", kernels::KernelKind::kShadowStack, trace::AttackKind::kRetCorrupt},
        K{"sanitizer", kernels::KernelKind::kAsan, trace::AttackKind::kHeapOob}}) {
    for (core::SchedPolicy pol :
         {core::SchedPolicy::kFixed, core::SchedPolicy::kRoundRobin,
          core::SchedPolicy::kBlock}) {
      // The shadow stack's state token only works under block mode; other
      // policies on SS are included to show why block mode is required
      // (detection coverage drops along with locality).
      for (const std::string& w : workloads()) {
        api::ExperimentSpec s = make_spec(w, {{k.attack, 20}});
        // deploy()'s policy parameter keeps (policy, policy_overridden)
        // consistent — no more hand-set flag pairs.
        s.soc.kernels = {soc::deploy(k.kind, 4, kernels::ProgModel::kHybrid,
                                     false, pol)};
        register_spec("ablation_policies/" + std::string(k.name) + "/" +
                          core::sched_policy_name(pol) + "/" + w,
                      std::string(k.name) + "/" + core::sched_policy_name(pol),
                      s, report_detections);
      }
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  return fgbench::sweep_main(argc, argv, "Scheduling-policy ablation");
}
