// Ablation (Section III-C): Scheduling-Engine policies.
//
// Block mode exists for message locality (the shadow stack's pipelined
// parallelism); round-robin spreads stateless checks; fixed pins a kernel to
// one engine. This ablation shows each kernel under each policy.
#include "bench_common.h"

namespace fgbench {
namespace {

void report_detections(benchmark::State& st, const soc::PointResult& r) {
  st.counters["detected"] = static_cast<double>(r.run.detections.size());
  st.counters["attacks"] = static_cast<double>(r.run.planned_attacks);
}

void register_all() {
  struct K {
    const char* name;
    kernels::KernelKind kind;
    trace::AttackKind attack;
  };
  for (const K k :
       {K{"shadow", kernels::KernelKind::kShadowStack, trace::AttackKind::kRetCorrupt},
        K{"sanitizer", kernels::KernelKind::kAsan, trace::AttackKind::kHeapOob}}) {
    for (core::SchedPolicy pol :
         {core::SchedPolicy::kFixed, core::SchedPolicy::kRoundRobin,
          core::SchedPolicy::kBlock}) {
      // The shadow stack's state token only works under block mode; other
      // policies on SS are included to show why block mode is required
      // (detection coverage drops along with locality).
      for (const std::string& w : workloads()) {
        soc::SweepPoint p;
        p.wl = make_wl(w, {{k.attack, 20}});
        p.sc = soc::table2_soc();
        soc::KernelDeployment dep = soc::deploy(k.kind, 4);
        dep.policy = pol;
        dep.policy_overridden = true;
        p.sc.kernels = {dep};
        register_point("ablation_policies/" + std::string(k.name) + "/" +
                           core::sched_policy_name(pol) + "/" + w,
                       std::string(k.name) + "/" +
                           core::sched_policy_name(pol),
                       std::move(p), report_detections);
      }
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  return fgbench::sweep_main(argc, argv, "Scheduling-policy ablation");
}
