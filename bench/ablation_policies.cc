// Ablation (Section III-C): Scheduling-Engine policies.
//
// Block mode exists for message locality (the shadow stack's pipelined
// parallelism); round-robin spreads stateless checks; fixed pins a kernel to
// one engine. This ablation shows each kernel under each policy.
#include "bench_common.h"

namespace fgbench {
namespace {

void register_all() {
  struct K {
    const char* name;
    kernels::KernelKind kind;
    trace::AttackKind attack;
  };
  for (const K k :
       {K{"shadow", kernels::KernelKind::kShadowStack, trace::AttackKind::kRetCorrupt},
        K{"sanitizer", kernels::KernelKind::kAsan, trace::AttackKind::kHeapOob}}) {
    for (core::SchedPolicy pol :
         {core::SchedPolicy::kFixed, core::SchedPolicy::kRoundRobin,
          core::SchedPolicy::kBlock}) {
      // The shadow stack's state token only works under block mode; other
      // policies on SS are included to show why block mode is required
      // (detection coverage drops along with locality).
      for (const std::string& w : workloads()) {
        benchmark::RegisterBenchmark(
            ("ablation_policies/" + std::string(k.name) + "/" +
             core::sched_policy_name(pol) + "/" + w)
                .c_str(),
            [k, pol, w](benchmark::State& st) {
              for (auto _ : st) {
                soc::SocConfig sc = soc::table2_soc();
                soc::KernelDeployment dep = soc::deploy(k.kind, 4);
                dep.policy = pol;
                dep.policy_overridden = true;
                sc.kernels = {dep};
                soc::RunResult r;
                const double s = fireguard_slowdown(
                    make_wl(w, {{k.attack, 20}}), sc, &r);
                st.counters["slowdown"] = s;
                st.counters["detected"] = static_cast<double>(r.detections.size());
                st.counters["attacks"] = static_cast<double>(r.planned_attacks);
                SeriesSummary::instance().add(
                    std::string(k.name) + "/" + core::sched_policy_name(pol), s);
              }
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  fgbench::SeriesSummary::instance().print("Scheduling-policy ablation");
  return 0;
}
