// Ablation: flat post-LLC latency + constant TLB walks vs. the detailed
// bank/row DRAM model and real Sv39 page-table walks.
//
// The reproduction is calibrated on the flat model (Table II's "16 GB DDR3
// @1066MHz, max 32 requests" collapses to one constant). This ablation shows
// the detailed models move baseline IPC but leave FireGuard's *relative*
// slowdown essentially unchanged — the paper's conclusions do not hinge on
// memory-model fidelity, only on event rates vs. engine throughput.
#include "bench_common.h"

namespace fgbench {
namespace {

void register_all() {
  struct Mode {
    const char* name;
    bool dram;
    bool ptw;
  };
  for (const Mode m : {Mode{"flat", false, false}, Mode{"detailed_dram", true, false},
                       Mode{"detailed_dram_ptw", true, true}}) {
    for (const std::string& w : workloads()) {
      benchmark::RegisterBenchmark(
          ("ablation_memory/" + std::string(m.name) + "/" + w).c_str(),
          [m, w](benchmark::State& st) {
            for (auto _ : st) {
              soc::SocConfig sc = soc::table2_soc();
              sc.mem.detailed_dram = m.dram;
              sc.mem.detailed_ptw = m.ptw;
              sc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4)};
              const trace::WorkloadConfig wl = make_wl(w);
              const Cycle base = soc::run_baseline_cycles(wl, sc);
              const soc::RunResult r = soc::run_fireguard(wl, sc);
              const double slowdown =
                  static_cast<double>(r.cycles) / static_cast<double>(base);
              st.counters["slowdown"] = slowdown;
              st.counters["base_ipc"] =
                  static_cast<double>(r.committed) / static_cast<double>(base);
              SeriesSummary::instance().add(m.name, slowdown);
            }
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  fgbench::SeriesSummary::instance().print(
      "Memory-model ablation (ASan, 4 ucores)");
  return 0;
}
