// Ablation: flat post-LLC latency + constant TLB walks vs. the detailed
// bank/row DRAM model and real Sv39 page-table walks.
//
// The reproduction is calibrated on the flat model (Table II's "16 GB DDR3
// @1066MHz, max 32 requests" collapses to one constant). This ablation shows
// the detailed models move baseline IPC but leave FireGuard's *relative*
// slowdown essentially unchanged — the paper's conclusions do not hinge on
// memory-model fidelity, only on event rates vs. engine throughput.
//
// The shared BaselineCache keys on the memory-model knobs, so each mode gets
// its own baseline run (once, however many workload points share it).
#include "bench_common.h"

namespace fgbench {
namespace {

void report_base_ipc(benchmark::State& st, const soc::PointResult& r) {
  st.counters["base_ipc"] = static_cast<double>(r.run.committed) /
                            static_cast<double>(std::max<fg::Cycle>(
                                1, r.baseline_cycles));
}

void register_all() {
  struct Mode {
    const char* name;
    bool dram;
    bool ptw;
  };
  for (const Mode m : {Mode{"flat", false, false}, Mode{"detailed_dram", true, false},
                       Mode{"detailed_dram_ptw", true, true}}) {
    for (const std::string& w : workloads()) {
      api::ExperimentSpec s = make_spec(w);
      s.soc.mem.detailed_dram = m.dram;
      s.soc.mem.detailed_ptw = m.ptw;
      s.soc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4)};
      register_spec("ablation_memory/" + std::string(m.name) + "/" + w,
                    m.name, s, report_base_ipc);
    }
  }
}

}  // namespace
}  // namespace fgbench

int main(int argc, char** argv) {
  fgbench::register_all();
  return fgbench::sweep_main(argc, argv,
                             "Memory-model ablation (ASan, 4 ucores)");
}
