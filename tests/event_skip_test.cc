// Differential suite for the event-driven scheduler: the default
// cycle-skipping loop must be bit-identical to the FG_CYCLE_EXACT
// one-cycle-at-a-time reference on every paper workload and a grid of
// kernel deployments, plus targeted regressions (µcore stall
// fast-forward, post-completion grace batching, baseline fast-forward).
#include <gtest/gtest.h>

#include "src/common/simctl.h"
#include "src/soc/experiment.h"
#include "src/soc/figures.h"
#include "src/soc/soc.h"
#include "src/trace/workload.h"

namespace fg::soc {
namespace {

/// Restores the scheduler mode even if an assertion fails mid-test.
struct ExactMode {
  explicit ExactMode(bool exact) { set_cycle_exact(exact); }
  ~ExactMode() { set_cycle_exact(false); }
};

void expect_identical(const RunResult& exact, const RunResult& event,
                      const std::string& label) {
  EXPECT_EQ(exact.cycles, event.cycles) << label;
  EXPECT_EQ(exact.committed, event.committed) << label;
  EXPECT_EQ(exact.packets, event.packets) << label;
  EXPECT_EQ(exact.spurious, event.spurious) << label;
  for (size_t i = 0; i < exact.stall_fractions.size(); ++i) {
    EXPECT_EQ(exact.stall_fractions[i], event.stall_fractions[i])
        << label << " stall cause " << i;
  }
  ASSERT_EQ(exact.detections.size(), event.detections.size()) << label;
  for (size_t i = 0; i < exact.detections.size(); ++i) {
    const DetectionRecord& a = exact.detections[i];
    const DetectionRecord& b = event.detections[i];
    EXPECT_EQ(a.attack_id, b.attack_id) << label;
    EXPECT_EQ(a.engine, b.engine) << label;
    EXPECT_EQ(a.commit_fast, b.commit_fast) << label;
    EXPECT_EQ(a.detect_fast, b.detect_fast) << label;
  }
  // The event loop only ever *skips* reference cycles; it must never add,
  // step-for-step, more than the reference ran.
  EXPECT_EQ(event.sched.cycles_stepped + event.sched.cycles_skipped,
            exact.sched.cycles_stepped)
      << label;
}

RunResult run_mode(bool exact, const trace::WorkloadConfig& w,
                   const SocConfig& sc) {
  ExactMode mode(exact);
  return run_fireguard(w, sc);
}

std::vector<std::pair<trace::AttackKind, u32>> attack_plan() {
  return {{trace::AttackKind::kPcHijack, 3},
          {trace::AttackKind::kRetCorrupt, 3},
          {trace::AttackKind::kHeapOob, 3},
          {trace::AttackKind::kUseAfterFree, 3}};
}

/// Every figures.cc workload under each guardian kernel (with attacks, so
/// detections and the match pass are exercised too).
TEST(EventSkip, BitIdenticalAcrossAllPaperWorkloads) {
  struct Config {
    kernels::KernelKind kind;
    u32 engines;
  };
  const std::vector<Config> grid = {
      {kernels::KernelKind::kPmc, 4},
      {kernels::KernelKind::kShadowStack, 2},
      {kernels::KernelKind::kAsan, 4},
      {kernels::KernelKind::kUaf, 2},
  };
  for (const std::string& w : paper_workloads()) {
    for (const Config& c : grid) {
      SocConfig sc = table2_soc();
      sc.kernels = {deploy(c.kind, c.engines)};
      const trace::WorkloadConfig cfg = paper_workload(w, 8000, attack_plan());
      const std::string label =
          w + "/" + kernels::kernel_name(c.kind) + "/" +
          std::to_string(c.engines);
      expect_identical(run_mode(true, cfg, sc), run_mode(false, cfg, sc),
                       label);
    }
  }
}

/// Deployment shapes beyond single kernels: hardware accelerators, mixed
/// kernels sharing the frontend, a non-default programming model, and the
/// shadow stack's block mode (NoC token traffic).
TEST(EventSkip, BitIdenticalOnDeploymentShapes) {
  const trace::WorkloadConfig cfg =
      paper_workload("ferret", 12000, attack_plan());
  std::vector<std::pair<std::string, SocConfig>> shapes;
  {
    SocConfig sc = table2_soc();
    sc.kernels = {deploy(kernels::KernelKind::kPmc, 1,
                         kernels::ProgModel::kHybrid, /*use_ha=*/true)};
    shapes.emplace_back("pmc_ha", sc);
  }
  {
    SocConfig sc = table2_soc();
    sc.kernels = {deploy(kernels::KernelKind::kShadowStack, 1,
                         kernels::ProgModel::kHybrid, /*use_ha=*/true)};
    shapes.emplace_back("shadow_ha", sc);
  }
  {
    SocConfig sc = table2_soc();
    sc.kernels = {deploy(kernels::KernelKind::kPmc, 2),
                  deploy(kernels::KernelKind::kShadowStack, 2),
                  deploy(kernels::KernelKind::kAsan, 4)};
    shapes.emplace_back("mixed", sc);
  }
  {
    SocConfig sc = table2_soc();
    sc.kernels = {deploy(kernels::KernelKind::kAsan, 2,
                         kernels::ProgModel::kConventional)};
    shapes.emplace_back("asan_conventional", sc);
  }
  {
    SocConfig sc = table2_soc();
    sc.ucore.isax_ma_stage = false;  // stock-Rocket ISAX: long stalls
    sc.kernels = {deploy(kernels::KernelKind::kAsan, 4)};
    shapes.emplace_back("asan_postcommit", sc);
  }
  for (auto& [name, sc] : shapes) {
    expect_identical(run_mode(true, cfg, sc), run_mode(false, cfg, sc), name);
  }
}

/// µcore stall fast-forward: skipping slow ticks a stalled engine would
/// have spent in its early-return path must charge the identical per-engine
/// stall accounting. Stock-Rocket ISAX mode maximizes multi-cycle stalls.
TEST(EventSkip, UcoreStallFastForwardChargesExactStalls) {
  SocConfig sc = table2_soc();
  sc.ucore.isax_ma_stage = false;
  sc.kernels = {deploy(kernels::KernelKind::kAsan, 3)};
  trace::WorkloadConfig cfg = paper_workload("streamcluster", 10000);

  auto engine_stats = [&](bool exact) {
    ExactMode mode(exact);
    trace::WorkloadGen gen(cfg);
    SocConfig sc2 = sc;
    sc2.kparams.text_lo = gen.text_lo();
    sc2.kparams.text_hi = gen.text_hi();
    Soc soc(sc2, gen);
    soc.run();
    std::vector<ucore::UCoreStats> out;
    for (u32 i = 0; i < soc.n_engines(); ++i) {
      out.push_back(soc.engine_ucore(i)->stats());
    }
    if (!exact) {
      // The event loop must actually have exercised the fast-forward path.
      EXPECT_GT(soc.sched_stats().slow_ticks_skipped, 0u);
    }
    return out;
  };

  const auto exact = engine_stats(true);
  const auto event = engine_stats(false);
  ASSERT_EQ(exact.size(), event.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(exact[i].stall_cycles, event[i].stall_cycles) << "engine " << i;
    EXPECT_EQ(exact[i].instructions, event[i].instructions) << "engine " << i;
    EXPECT_EQ(exact[i].busy_cycles, event[i].busy_cycles) << "engine " << i;
    EXPECT_EQ(exact[i].packets_popped, event[i].packets_popped)
        << "engine " << i;
  }
}

/// The post-completion grace drain must batch to the same final cycle count
/// the 512-iteration stepped drain reaches.
TEST(EventSkip, GraceDrainBatchesToIdenticalCompletion) {
  SocConfig sc = table2_soc();
  sc.kernels = {deploy(kernels::KernelKind::kShadowStack, 2)};  // block mode
  const trace::WorkloadConfig cfg = paper_workload("swaptions", 6000);
  const RunResult exact = run_mode(true, cfg, sc);
  const RunResult event = run_mode(false, cfg, sc);
  expect_identical(exact, event, "grace_drain");
  // The quiescent drain is hundreds of dead cycles: the scheduler must
  // collapse (most of) it instead of stepping at full tick rate.
  EXPECT_GT(event.sched.cycles_skipped, 256u);
}

/// The unmonitored baseline core uses the same fast-forward machinery.
TEST(EventSkip, BaselineCyclesIdentical) {
  const SocConfig sc = table2_soc();
  for (const std::string& w : paper_workloads()) {
    const trace::WorkloadConfig cfg = paper_workload(w, 8000);
    Cycle a, b;
    {
      ExactMode mode(true);
      a = run_baseline_cycles(cfg, sc);
    }
    {
      ExactMode mode(false);
      b = run_baseline_cycles(cfg, sc);
    }
    EXPECT_EQ(a, b) << w;
  }
}

/// Single-threaded BaselineCache semantics: one miss, then hits, and no
/// in-flight waits when nothing raced.
TEST(EventSkip, BaselineCacheCountsInflightWaits) {
  BaselineCache cache;
  const SocConfig sc = table2_soc();
  const trace::WorkloadConfig cfg = paper_workload("swaptions", 3000);
  bool ran = false;
  const Cycle first = cache.get(cfg, sc, &ran);
  EXPECT_TRUE(ran);
  const Cycle second = cache.get(cfg, sc, &ran);
  EXPECT_FALSE(ran);
  EXPECT_EQ(first, second);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.inflight_waits(), 0u);
}

}  // namespace
}  // namespace fg::soc
