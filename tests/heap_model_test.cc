#include <gtest/gtest.h>

#include <set>

#include "src/trace/heap_model.h"

namespace fg::trace {
namespace {

TEST(HeapModel, AllocationsGranuleAlignedAndSeparated) {
  HeapModel h(64, 200, 1);
  std::vector<Allocation> allocs;
  for (int i = 0; i < 50; ++i) allocs.push_back(h.malloc_one());
  for (const auto& a : allocs) {
    EXPECT_EQ(a.base % kHeapGranule, 0u);
    EXPECT_EQ(a.size % kHeapGranule, 0u);
    EXPECT_GE(a.size, kHeapGranule);
  }
  // No two live allocations overlap, and redzone gaps separate bump-fresh
  // neighbours.
  for (size_t i = 0; i < allocs.size(); ++i) {
    for (size_t j = i + 1; j < allocs.size(); ++j) {
      const auto& a = allocs[i];
      const auto& b = allocs[j];
      const bool disjoint = a.base + a.size + kRedzoneBytes <= b.base ||
                            b.base + b.size + kRedzoneBytes <= a.base;
      EXPECT_TRUE(disjoint) << i << " vs " << j;
    }
  }
}

TEST(HeapModel, FreeMovesToFreedList) {
  HeapModel h(8, 128, 2);
  for (int i = 0; i < 10; ++i) h.malloc_one();
  EXPECT_EQ(h.live_count(), 10u);
  const Allocation f = h.free_one();
  EXPECT_GT(f.size, 0u);
  EXPECT_EQ(h.live_count(), 9u);
  EXPECT_EQ(h.freed_count(), 1u);
}

TEST(HeapModel, ShouldFreeTracksTarget) {
  HeapModel h(4, 128, 3);
  for (int i = 0; i < 4; ++i) h.malloc_one();
  EXPECT_FALSE(h.should_free());
  h.malloc_one();
  EXPECT_TRUE(h.should_free());
}

TEST(HeapModel, BenignAddrInsideLiveAllocation) {
  HeapModel h(32, 256, 4);
  std::vector<Allocation> allocs;
  for (int i = 0; i < 32; ++i) allocs.push_back(h.malloc_one());
  for (int i = 0; i < 2000; ++i) {
    const u64 a = h.benign_addr(8);
    bool inside = false;
    for (const auto& al : allocs) {
      if (a >= al.base && a + 8 <= al.base + al.size) {
        inside = true;
        break;
      }
    }
    EXPECT_TRUE(inside) << std::hex << a;
  }
}

TEST(HeapModel, OobAddrInRedzone) {
  HeapModel h(16, 256, 5);
  std::vector<Allocation> allocs;
  for (int i = 0; i < 16; ++i) allocs.push_back(h.malloc_one());
  for (int i = 0; i < 500; ++i) {
    const u64 a = h.oob_addr();
    bool in_redzone = false;
    for (const auto& al : allocs) {
      if (a >= al.base + al.size && a + 8 <= al.base + al.size + kRedzoneBytes) {
        in_redzone = true;
        break;
      }
    }
    EXPECT_TRUE(in_redzone) << std::hex << a;
  }
}

TEST(HeapModel, UafAddrInsideFreedChunkAndPinned) {
  HeapModel h(16, 256, 6);
  for (int i = 0; i < 16; ++i) h.malloc_one();
  std::vector<Allocation> freed;
  for (int i = 0; i < 12; ++i) freed.push_back(h.free_one());
  const size_t freed_before = h.freed_count();
  const u64 a = h.uaf_addr();
  ASSERT_NE(a, 0u);
  bool inside = false;
  for (const auto& f : freed) {
    if (a >= f.base && a < f.base + f.size) inside = true;
  }
  EXPECT_TRUE(inside);
  // The chunk is pinned: removed from the reusable freed pool.
  EXPECT_EQ(h.freed_count(), freed_before - 1);
}

TEST(HeapModel, UafAddrZeroWhenNothingFreed) {
  HeapModel h(16, 256, 7);
  h.malloc_one();
  EXPECT_EQ(h.uaf_addr(), 0u);
}

TEST(HeapModel, ReuseRecyclesFreedChunks) {
  HeapModel h(64, 256, 8);
  std::vector<Allocation> allocs;
  for (int i = 0; i < 40; ++i) allocs.push_back(h.malloc_one());
  std::set<u64> freed_bases;
  for (int i = 0; i < 30; ++i) freed_bases.insert(h.free_one().base);
  int reused = 0;
  for (int i = 0; i < 30; ++i) {
    if (freed_bases.contains(h.malloc_one().base)) ++reused;
  }
  EXPECT_GT(reused, 5);  // LIFO reuse with p=0.7 should recycle plenty
}

TEST(HeapModel, ResetReproduces) {
  HeapModel h(16, 256, 9);
  std::vector<u64> first;
  for (int i = 0; i < 20; ++i) first.push_back(h.malloc_one().base);
  h.reset();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(h.malloc_one().base, first[i]);
}

}  // namespace
}  // namespace fg::trace
