#include <gtest/gtest.h>

#include "src/core/forwarding.h"

namespace fg::core {
namespace {

trace::TraceInst mem_inst(u64 addr) {
  trace::TraceInst ti;
  ti.pc = 0x1234;
  ti.enc = isa::make_load(0x3, 5, 6, 0);
  ti.cls = isa::InstClass::kLoad;
  ti.mem_addr = addr;
  ti.wb_value = 0xdead;
  return ti;
}

TEST(Forwarding, MemInstForwardsLsqAddress) {
  DataForwardingChannel f;
  const Packet p = f.extract(mem_inst(0xabcd), 17, 3);
  EXPECT_EQ(p.pc, 0x1234u);
  EXPECT_EQ(p.addr, 0xabcdu);
  EXPECT_EQ(p.data, 0xdeadu);
  EXPECT_EQ(p.seq, 3u);
  EXPECT_EQ(p.commit_cycle, 17u);
}

TEST(Forwarding, CtrlInstForwardsFtqTarget) {
  trace::TraceInst ti;
  ti.cls = isa::InstClass::kBranch;
  ti.enc = isa::make_branch(0, 1, 2, 16);
  ti.target = 0x5678;
  DataForwardingChannel f;
  EXPECT_EQ(f.extract(ti, 0, 0).addr, 0x5678u);
}

TEST(Forwarding, AluInstHasNoAddr) {
  trace::TraceInst ti;
  ti.cls = isa::InstClass::kIntAlu;
  ti.enc = isa::make_alu_rr(0, 1, 2, 3, false);
  DataForwardingChannel f;
  EXPECT_EQ(f.extract(ti, 0, 0).addr, 0u);
}

TEST(Forwarding, SemEventMetadataCarried) {
  trace::TraceInst ti;
  ti.cls = isa::InstClass::kGuardEvent;
  ti.enc = isa::make_guard_event(true);
  ti.sem = trace::SemEvent::kAlloc;
  ti.sem_addr = 0x40001000;
  ti.sem_size = 256;
  DataForwardingChannel f;
  const Packet p = f.extract(ti, 0, 0);
  EXPECT_EQ(p.sem, trace::SemEvent::kAlloc);
  EXPECT_EQ(p.sem_addr, 0x40001000u);
  EXPECT_EQ(p.sem_size, 256u);
  // The packet word view exposes base and size to the kernels.
  EXPECT_EQ(packet_word(p, 2), 0x40001000u);
  EXPECT_EQ(packet_word(p, 1) >> 32, 256u);
}

TEST(Forwarding, PrfPreemptionsCounted) {
  DataForwardingChannel f;
  f.note_selected(kDpPrf | kDpLsq);
  f.note_selected(kDpLsq);
  f.note_selected(kDpPrf);
  EXPECT_EQ(f.take_prf_preemptions(), 2u);
  EXPECT_EQ(f.take_prf_preemptions(), 0u);  // cleared on read
  EXPECT_EQ(f.stats().prf_reads, 2u);
  EXPECT_EQ(f.stats().lsq_reads, 2u);
}

TEST(PacketWords, LayoutMatchesTableI) {
  Packet p;
  p.pc = 0x1111;
  p.inst = 0x2222;
  p.addr = 0x3333;
  p.data = 0x4444;
  EXPECT_EQ(packet_word(p, 0), 0x1111u);
  EXPECT_EQ(packet_word(p, 1) & 0xffffffff, 0x2222u);
  EXPECT_EQ(packet_word(p, 2), 0x3333u);
  EXPECT_EQ(packet_word(p, 3), 0x4444u);
}

}  // namespace
}  // namespace fg::core
