// Durability tests for the content-addressed ResultStore and the campaign
// journal: atomic publish, corruption quarantine (truncated / bit-flipped /
// stale-format entries detected, moved aside, never loaded), hash-collision
// safety, audit, and the journal's torn-tail-tolerant replay.
#include "src/store/result_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "src/store/faultfs.h"
#include "src/store/journal.h"

namespace fg::store {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault_clear();
    dir_ = testing::TempDir() + "store_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);  // stale state from prior runs
    std::string err;
    ASSERT_TRUE(make_dirs(dir_, &err)) << err;
    ASSERT_TRUE(store_.open(dir_ + "/store", &err)) << err;
  }
  void TearDown() override { fault_clear(); }

  // Rewrite an entry file in place, bypassing the store (simulated disk
  // corruption: the atomic writer can never produce these states itself).
  static void clobber(const std::string& path, const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
    std::fclose(f);
  }

  static std::string read_or_die(const std::string& path) {
    std::string text, err;
    EXPECT_TRUE(read_file(path, &text, &err)) << err;
    return text;
  }

  std::string dir_;
  ResultStore store_;
};

TEST_F(StoreTest, PutGetRoundtrip) {
  const std::string key = "fireguard/outcome/v1|spec-a";
  std::string payload;
  EXPECT_EQ(store_.get(key, &payload), ResultStore::GetStatus::kMiss);
  std::string err;
  ASSERT_TRUE(store_.put(key, "payload-a", &err)) << err;
  ASSERT_EQ(store_.get(key, &payload), ResultStore::GetStatus::kHit);
  EXPECT_EQ(payload, "payload-a");
  EXPECT_TRUE(store_.contains(key));
  // Re-publish overwrites atomically.
  ASSERT_TRUE(store_.put(key, "payload-b", &err));
  ASSERT_EQ(store_.get(key, &payload), ResultStore::GetStatus::kHit);
  EXPECT_EQ(payload, "payload-b");
  const StoreStats s = store_.stats();
  EXPECT_EQ(s.publishes, 2u);
  EXPECT_EQ(s.hits, 3u);  // contains() is a get
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.quarantined, 0u);
}

TEST_F(StoreTest, ReopenSeesPublishedEntries) {
  std::string err;
  ASSERT_TRUE(store_.put("key", "durable", &err));
  ResultStore other;
  ASSERT_TRUE(other.open(dir_ + "/store", &err)) << err;
  std::string payload;
  ASSERT_EQ(other.get("key", &payload), ResultStore::GetStatus::kHit);
  EXPECT_EQ(payload, "durable");
}

// A hash collision must read as a miss for the colliding key — never as the
// wrong experiment's result. Real 64-bit collisions are impractical to
// construct, so plant key A's (valid) entry at key B's address.
TEST_F(StoreTest, CollisionReadsAsMissNotWrongResult) {
  std::string err;
  ASSERT_TRUE(store_.put("key-a", "payload-a", &err));
  const std::string text = read_or_die(store_.entry_path("key-a"));
  const std::string b_path = store_.entry_path("key-b");
  ASSERT_TRUE(make_dirs(b_path.substr(0, b_path.rfind('/')), &err));
  clobber(b_path, text);

  std::string payload;
  EXPECT_EQ(store_.get("key-b", &payload), ResultStore::GetStatus::kMiss);
  EXPECT_TRUE(payload.empty());
  EXPECT_EQ(store_.stats().collisions, 1u);
  // The colliding entry is evidence of a collision, not corruption: it
  // stays in place (a later put of key-b overwrites it).
  EXPECT_TRUE(file_exists(b_path));
  EXPECT_EQ(store_.stats().quarantined, 0u);
  ASSERT_TRUE(store_.put("key-b", "payload-b", &err));
  ASSERT_EQ(store_.get("key-b", &payload), ResultStore::GetStatus::kHit);
  EXPECT_EQ(payload, "payload-b");
}

struct CorruptionCase {
  const char* name;
  std::string (*mutate)(const std::string& text);
};

// The quarantine trio from the issue: truncated entry, flipped payload bit
// (checksum mismatch), stale format version. Each must be detected on load,
// moved into quarantine/, reported as a miss, and recomputable.
TEST_F(StoreTest, CorruptEntriesAreQuarantinedAndRecomputed) {
  const CorruptionCase cases[] = {
      {"truncated",
       [](const std::string& t) { return t.substr(0, t.size() / 2); }},
      {"bitflip",
       [](const std::string& t) {
         std::string out = t;
         const size_t at = out.find("precious");
         EXPECT_NE(at, std::string::npos);
         out[at] ^= 0x1;
         return out;
       }},
      {"stale_format",
       [](const std::string& t) {
         std::string out = t;
         const size_t at = out.find("\"format\":1");
         EXPECT_NE(at, std::string::npos);
         out.replace(at, 10, "\"format\":9");
         return out;
       }},
  };
  u64 quarantined = 0;
  for (const CorruptionCase& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string key = std::string("key-") + c.name;
    std::string err;
    ASSERT_TRUE(store_.put(key, "precious-result", &err));
    const std::string path = store_.entry_path(key);
    clobber(path, c.mutate(read_or_die(path)));

    std::string payload;
    EXPECT_EQ(store_.get(key, &payload), ResultStore::GetStatus::kMiss)
        << "a corrupt entry must never be loaded";
    EXPECT_TRUE(payload.empty());
    EXPECT_FALSE(file_exists(path)) << "corrupt entry left at its address";
    EXPECT_EQ(store_.stats().quarantined, ++quarantined);

    // Recompute path: the next publish repopulates the same address.
    ASSERT_TRUE(store_.put(key, "precious-result", &err));
    ASSERT_EQ(store_.get(key, &payload), ResultStore::GetStatus::kHit);
    EXPECT_EQ(payload, "precious-result");
  }
}

TEST_F(StoreTest, FutureStoreFormatRefusesToOpen) {
  const std::string dir = dir_ + "/future";
  std::string err;
  ASSERT_TRUE(make_dirs(dir, &err));
  ASSERT_TRUE(write_file_atomic(dir + "/format.json",
                                "{\"format\":99,\"schema\":\"x\"}\n", &err));
  ResultStore s;
  EXPECT_FALSE(s.open(dir, &err));
  EXPECT_NE(err.find("future format"), std::string::npos) << err;
  EXPECT_FALSE(s.is_open());
}

TEST_F(StoreTest, AuditCountsAndQuarantines) {
  std::string err;
  ASSERT_TRUE(store_.put("audit-a", "pa", &err));
  ASSERT_TRUE(store_.put("audit-b", "pb", &err));
  ASSERT_TRUE(store_.put("audit-c", "pc", &err));
  // Corrupt one entry on disk.
  const std::string bad = store_.entry_path("audit-b");
  clobber(bad, "not json at all");
  // A crashed publisher's leftover temp must be skipped, not counted.
  const std::string tmp = store_.entry_path("audit-a") + ".tmp.999.0";
  clobber(tmp, "half-written");
  // A valid entry parked at the wrong address (stray copy): quarantined.
  const std::string stray =
      store_.objects_dir() + "/de/deadbeefdeadbeef.json";
  ASSERT_TRUE(make_dirs(store_.objects_dir() + "/de", &err));
  clobber(stray, read_or_die(store_.entry_path("audit-c")));

  ResultStore::AuditReport report;
  ASSERT_TRUE(store_.audit(&report, &err)) << err;
  EXPECT_EQ(report.entries, 4u);  // 3 real + 1 stray; temp skipped
  EXPECT_EQ(report.ok, 2u);
  EXPECT_EQ(report.quarantined, 2u);
  EXPECT_FALSE(file_exists(bad));
  EXPECT_FALSE(file_exists(stray));
  EXPECT_TRUE(file_exists(tmp)) << "audit must not touch temp files";

  std::string payload;
  EXPECT_EQ(store_.get("audit-a", &payload), ResultStore::GetStatus::kHit);
  EXPECT_EQ(store_.get("audit-c", &payload), ResultStore::GetStatus::kHit);
  EXPECT_EQ(store_.get("audit-b", &payload), ResultStore::GetStatus::kMiss);
}

TEST_F(StoreTest, QuarantineKeepsEveryGeneration) {
  std::string err, payload;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(store_.put("flappy", "value", &err));
    clobber(store_.entry_path("flappy"), "garbage");
    EXPECT_EQ(store_.get("flappy", &payload), ResultStore::GetStatus::kMiss);
  }
  // Three corruptions of the same address → three evidence files.
  const std::string base =
      store_.entry_path("flappy").substr(
          store_.entry_path("flappy").rfind('/') + 1);
  EXPECT_TRUE(file_exists(store_.quarantine_dir() + "/" + base + ".parse"));
  EXPECT_TRUE(file_exists(store_.quarantine_dir() + "/" + base + ".parse.1"));
  EXPECT_TRUE(file_exists(store_.quarantine_dir() + "/" + base + ".parse.2"));
}

// A crash at the worst instant of a re-publish (temp durable, rename
// pending) must leave the previous entry fully intact.
TEST_F(StoreTest, CrashMidPublishLeavesOldEntryIntact) {
  std::string err;
  ASSERT_TRUE(store_.put("crashy", "old-value", &err));
  FaultConfig cfg;
  ASSERT_TRUE(parse_fault_spec("crash@write:1", &cfg, &err)) << err;
  fault_configure(cfg);
  EXPECT_EXIT(store_.put("crashy", "new-value", &err),
              ::testing::ExitedWithCode(kFaultCrashExit), "injected crash");
  fault_clear();
  std::string payload;
  ASSERT_EQ(store_.get("crashy", &payload), ResultStore::GetStatus::kHit);
  EXPECT_EQ(payload, "old-value");
  // The crashed publisher's temp is invisible to the audit.
  ResultStore::AuditReport report;
  ASSERT_TRUE(store_.audit(&report, &err)) << err;
  EXPECT_EQ(report.entries, 1u);
  EXPECT_EQ(report.ok, 1u);
}

TEST_F(StoreTest, TornPublishReportsFailureAndKeepsOldEntry) {
  std::string err;
  ASSERT_TRUE(store_.put("torny", "old-value", &err));
  FaultConfig cfg;
  ASSERT_TRUE(parse_fault_spec("torn@write:1", &cfg, &err)) << err;
  fault_configure(cfg);
  EXPECT_FALSE(store_.put("torny", "new-value", &err));
  fault_clear();
  EXPECT_EQ(store_.stats().publish_failures, 1u);
  std::string payload;
  ASSERT_EQ(store_.get("torny", &payload), ResultStore::GetStatus::kHit);
  EXPECT_EQ(payload, "old-value");
}

// --- campaign journal ------------------------------------------------------

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault_clear();
    dir_ = testing::TempDir() + "journal_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    std::string err;
    ASSERT_TRUE(make_dirs(dir_, &err)) << err;
    path_ = dir_ + "/c.journal";
  }

  std::string dir_;
  std::string path_;
};

TEST_F(JournalTest, ReplayRestoresPointState) {
  {
    CampaignJournal j;
    std::string err;
    ASSERT_TRUE(j.open(path_, "aaaabbbbccccdddd", 4, &err)) << err;
    ASSERT_TRUE(j.record_begin(0, 0));
    ASSERT_TRUE(j.record_done(0, /*cached=*/false));
    ASSERT_TRUE(j.record_begin(1, 0));
    ASSERT_TRUE(j.record_failed(1, "timeout after 3s"));
    ASSERT_TRUE(j.record_done(2, /*cached=*/true));
  }
  CampaignJournal j;
  std::string err;
  ASSERT_TRUE(j.open(path_, "aaaabbbbccccdddd", 4, &err)) << err;
  ASSERT_EQ(j.points().size(), 4u);
  EXPECT_TRUE(j.points()[0].done);
  EXPECT_FALSE(j.points()[0].cached);
  EXPECT_EQ(j.points()[0].attempts, 1u);
  EXPECT_TRUE(j.points()[1].failed);
  EXPECT_FALSE(j.points()[1].done);
  EXPECT_TRUE(j.points()[2].done);
  EXPECT_TRUE(j.points()[2].cached);
  EXPECT_FALSE(j.points()[3].done);
  EXPECT_EQ(j.n_done(), 2u);
  // fail → later done (a successful retry) clears the failure.
  ASSERT_TRUE(j.record_done(1, false));
  EXPECT_FALSE(j.points()[1].failed);
}

TEST_F(JournalTest, TornFinalLineIsIgnored) {
  {
    CampaignJournal j;
    std::string err;
    ASSERT_TRUE(j.open(path_, "aaaabbbbccccdddd", 3, &err)) << err;
    ASSERT_TRUE(j.record_done(0, false));
  }
  // SIGKILL mid-append: the final line has no newline.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("done 1 ru", f);  // torn — no '\n'
  std::fclose(f);

  CampaignJournal j;
  std::string err;
  ASSERT_TRUE(j.open(path_, "aaaabbbbccccdddd", 3, &err)) << err;
  EXPECT_TRUE(j.points()[0].done);
  EXPECT_FALSE(j.points()[1].done) << "a torn line must not be replayed";
  EXPECT_EQ(j.n_done(), 1u);
}

TEST_F(JournalTest, RejectsForeignCampaignOrGridSize) {
  {
    CampaignJournal j;
    std::string err;
    ASSERT_TRUE(j.open(path_, "aaaabbbbccccdddd", 3, &err)) << err;
  }
  CampaignJournal j;
  std::string err;
  EXPECT_FALSE(j.open(path_, "0123456789abcdef", 3, &err));
  EXPECT_NE(err.find("different campaign"), std::string::npos) << err;
  EXPECT_FALSE(j.open(path_, "aaaabbbbccccdddd", 7, &err));
  EXPECT_NE(err.find("grid size"), std::string::npos) << err;
}

TEST_F(JournalTest, GarbledEventsAreSkippedNotFatal) {
  {
    CampaignJournal j;
    std::string err;
    ASSERT_TRUE(j.open(path_, "aaaabbbbccccdddd", 2, &err)) << err;
    ASSERT_TRUE(j.record_done(0, false));
  }
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("done notanumber run\nfrobnicate 1\ndone 99 run\n", f);
  std::fclose(f);
  CampaignJournal j;
  std::string err;
  ASSERT_TRUE(j.open(path_, "aaaabbbbccccdddd", 2, &err)) << err;
  EXPECT_EQ(j.n_done(), 1u);
}

}  // namespace
}  // namespace fg::store
