// Tests for the bank/row-aware DRAM model and its hierarchy integration.
#include "src/mem/dram.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/mem/hierarchy.h"

namespace fg::mem {
namespace {

DramConfig cfg() { return DramConfig{}; }

TEST(Dram, ColdBankChargesActivatePlusCas) {
  DramModel d(cfg());
  const u32 lat = d.access(0x10000, 0);
  EXPECT_EQ(lat, d.config().t_rcd + d.config().t_cas + d.config().burst_cycles);
  EXPECT_EQ(d.stats().row_closed, 1u);
}

TEST(Dram, OpenRowHitIsCheapest) {
  DramModel d(cfg());
  const u32 first = d.access(0x10000, 0);
  // Same bank (one full line-interleave stride away) and same row stripe,
  // later in time (bank and bus idle again).
  const u32 second = d.access(0x10000 + 64 * d.config().n_banks, 10000);
  EXPECT_LT(second, first);
  EXPECT_EQ(second, d.config().t_cas + d.config().burst_cycles);
  EXPECT_EQ(d.stats().row_hits, 1u);
}

TEST(Dram, RowConflictChargesPrechargeToo) {
  DramModel d(cfg());
  const u64 bank_stride =
      static_cast<u64>(d.config().row_bytes) * d.config().n_banks;
  d.access(0x0, 0);
  const u32 conflict = d.access(bank_stride, 10000);  // same bank, other row
  EXPECT_EQ(conflict, d.config().t_rp + d.config().t_rcd + d.config().t_cas +
                          d.config().burst_cycles);
  EXPECT_EQ(d.stats().row_conflicts, 1u);
}

TEST(Dram, SequentialLinesInterleaveAcrossBanks) {
  DramModel d(cfg());
  // 8 sequential lines → 8 distinct banks → no bank serialization; only the
  // shared data bus serializes the bursts.
  Cycle max_done = 0;
  for (u64 i = 0; i < 8; ++i) {
    const u32 lat = d.access(i * 64, 0);
    max_done = std::max<Cycle>(max_done, lat);
  }
  EXPECT_EQ(d.stats().row_closed, 8u);
  // Bus-limited: last burst ends ≥ 8 bursts after the first data.
  EXPECT_GE(max_done, 8 * d.config().burst_cycles);
}

TEST(Dram, BusSerializesConcurrentBursts) {
  DramModel d(cfg());
  const u32 a = d.access(0 * 64, 0);
  const u32 b = d.access(1 * 64, 0);  // different bank, same instant
  EXPECT_GE(b, a + d.config().burst_cycles - 1);
}

TEST(Dram, RequestWindowBoundsConcurrency) {
  DramModel d(cfg());
  // Fire 64 concurrent requests; those beyond the 32-entry window stall.
  for (u64 i = 0; i < 64; ++i) d.access(i * 4096, 0);
  EXPECT_GT(d.stats().queue_stalls, 0u);
}

TEST(Dram, LatencyAlwaysPositiveAndBoundedFuzz) {
  DramModel d(cfg());
  Rng rng(5);
  Cycle now = 0;
  for (int i = 0; i < 50000; ++i) {
    now += rng.below(100);
    const u32 lat = d.access(rng.next() & 0x3fffffff, now);
    EXPECT_GT(lat, 0u);
    EXPECT_LT(lat, 100000u);
  }
  EXPECT_EQ(d.stats().requests, 50000u);
  EXPECT_EQ(d.stats().row_hits + d.stats().row_conflicts + d.stats().row_closed,
            50000u);
}

TEST(Dram, HierarchyIntegrationPreservesOrderOfMagnitude) {
  // A cold access through the full hierarchy with detailed DRAM lands in the
  // same ballpark as the flat constant (the calibration tolerance).
  HierarchyConfig flat;
  HierarchyConfig detailed;
  detailed.detailed_dram = true;
  MemHierarchy a(flat), b(detailed);
  const u32 la = a.access_data(0x5000000, false, 0);
  const u32 lb = b.access_data(0x5000000, false, 0);
  EXPECT_GT(lb, lb / 2);
  EXPECT_LT(lb, la * 2);
  EXPECT_NE(b.dram(), nullptr);
  EXPECT_EQ(a.dram(), nullptr);
}

TEST(Dram, StreamingFavoursDetailedModel) {
  // Row-buffer locality: sequential streaming should see lower average
  // post-LLC latency than random pointer chasing.
  DramModel seq(cfg()), rnd(cfg());
  u64 seq_total = 0, rnd_total = 0;
  Rng rng(17);
  Cycle now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += 200;  // spaced out: isolates array timing from bus queueing
    seq_total += seq.access(static_cast<u64>(i) * 64, now);
    rnd_total += rnd.access(rng.next() & 0x3fffffff, now);
  }
  EXPECT_LT(seq_total, rnd_total);
}

}  // namespace
}  // namespace fg::mem
