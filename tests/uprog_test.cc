#include <gtest/gtest.h>

#include "src/ucore/uprog.h"

namespace fg::ucore {
namespace {

TEST(Builder, ForwardLabelResolution) {
  UProgramBuilder b("t");
  const auto skip = b.new_label();
  b.li(1, 5);
  b.j(skip);
  b.li(1, 99);  // skipped
  b.bind(skip);
  b.halt();
  const UProgram p = b.build();
  ASSERT_EQ(p.code.size(), 4u);
  EXPECT_EQ(p.code[1].op, UOp::kJ);
  EXPECT_EQ(p.code[1].imm, 3);  // index of halt
}

TEST(Builder, BackwardLabelResolution) {
  UProgramBuilder b("t");
  const auto loop = b.new_label();
  b.bind(loop);
  b.addi(1, 1, 1);
  b.bne(1, 2, loop);
  const UProgram p = b.build();
  EXPECT_EQ(p.code[1].imm, 0);
}

TEST(Builder, SwitchTables) {
  UProgramBuilder b("t");
  const auto a = b.new_label();
  const auto c = b.new_label();
  b.switch_on(5, {a, c});
  b.bind(a);
  b.li(1, 10);
  b.bind(c);
  b.li(1, 20);
  const UProgram p = b.build();
  ASSERT_EQ(p.jump_tables.size(), 1u);
  EXPECT_EQ(p.jump_tables[0][0], 1u);
  EXPECT_EQ(p.jump_tables[0][1], 2u);
}

TEST(Builder, EmitsAllOpKinds) {
  UProgramBuilder b("t");
  const auto l = b.new_label();
  b.bind(l);
  b.li(1, -7);
  b.addi(2, 1, 3);
  b.add(3, 1, 2);
  b.sub(4, 3, 1);
  b.and_(5, 1, 2);
  b.or_(6, 1, 2);
  b.xor_(7, 1, 2);
  b.slli(8, 1, 4);
  b.srli(9, 1, 4);
  b.sltu(10, 1, 2);
  b.ld(11, 1, 0);
  b.sd(11, 1, 8);
  b.lbu(12, 1, 0);
  b.sb(12, 1, 1);
  b.qcount(13, 0);
  b.qtop(14, 64);
  b.qpop(15, 128);
  b.qrecent(16, 192);
  b.qpush(15);
  b.nocrecv(17);
  b.detect(15, 16);
  b.beqz(13, l);
  b.halt();
  const UProgram p = b.build();
  EXPECT_EQ(p.code.size(), 23u);
}

TEST(Disassemble, NamesOps) {
  UProgramBuilder b("demo");
  b.qcount(5, 0);
  b.qpop(6, 128);
  b.detect(6, 5);
  const std::string s = disassemble(b.build());
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("q.count"), std::string::npos);
  EXPECT_NE(s.find("q.pop"), std::string::npos);
  EXPECT_NE(s.find("detect"), std::string::npos);
}

}  // namespace
}  // namespace fg::ucore
