// Integration tests of the composed memory hierarchy: level-by-level miss
// propagation, functional warming, stats hygiene, and the detailed-model
// flags working together.
#include "src/mem/hierarchy.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace fg::mem {
namespace {

TEST(Hierarchy, ColdMissTouchesEveryLevel) {
  MemHierarchy m{HierarchyConfig{}};
  m.access_data(0x40000000, false, 0);
  EXPECT_EQ(m.l1d().stats().misses, 1u);
  EXPECT_EQ(m.l2().stats().misses, 1u);
  EXPECT_EQ(m.llc().stats().misses, 1u);
  EXPECT_EQ(m.dtlb().stats().misses, 1u);
}

TEST(Hierarchy, SecondAccessHitsL1Only) {
  MemHierarchy m{HierarchyConfig{}};
  const u32 cold = m.access_data(0x40000000, false, 0);
  const u32 hot = m.access_data(0x40000008, false, 10);  // same line
  EXPECT_LT(hot, cold);
  EXPECT_EQ(m.l1d().stats().misses, 1u);
  EXPECT_EQ(m.l2().stats().accesses, 1u);  // not consulted again
}

TEST(Hierarchy, LatencyOrderingAcrossLevels) {
  // Construct hits at each level and confirm L1 < L2 < LLC < DRAM latency.
  HierarchyConfig cfg;
  MemHierarchy m(cfg);
  const u32 dram_lat = m.access_data(0x50000000, false, 0);  // all cold
  const u32 l1_lat = m.access_data(0x50000000, false, 100);
  m.flush();
  m.warm_region(0x50000000, 0x50000040);  // into L2 + LLC
  const u32 l2_lat = m.access_data(0x50000000, false, 200);
  EXPECT_LT(l1_lat, l2_lat);
  EXPECT_LT(l2_lat, dram_lat);
}

TEST(Hierarchy, WarmRegionInstallsWithoutStats) {
  MemHierarchy m{HierarchyConfig{}};
  m.warm_region(0x60000000, 0x60010000);
  EXPECT_EQ(m.l2().stats().accesses, 0u);
  EXPECT_EQ(m.llc().stats().accesses, 0u);
  // Accesses after warming miss L1 but hit L2.
  m.access_data(0x60000000, false, 0);
  EXPECT_EQ(m.l1d().stats().misses, 1u);
  EXPECT_EQ(m.l2().stats().misses, 0u);
  EXPECT_EQ(m.l2().stats().accesses, 1u);
}

TEST(Hierarchy, ResetStatsZeroesEverything) {
  HierarchyConfig cfg;
  cfg.detailed_dram = true;
  MemHierarchy m(cfg);
  for (u64 a = 0; a < 64 * 1024; a += 64) m.access_data(0x7000000 + a, true, a);
  m.reset_stats();
  EXPECT_EQ(m.l1d().stats().accesses, 0u);
  EXPECT_EQ(m.l2().stats().accesses, 0u);
  EXPECT_EQ(m.llc().stats().accesses, 0u);
  EXPECT_EQ(m.dtlb().stats().accesses, 0u);
  ASSERT_NE(m.dram(), nullptr);
  EXPECT_EQ(m.dram()->stats().requests, 0u);
}

TEST(Hierarchy, InstAndDataPathsIndependent) {
  MemHierarchy m{HierarchyConfig{}};
  m.access_inst(0x10000, 0);
  EXPECT_EQ(m.l1i().stats().accesses, 1u);
  EXPECT_EQ(m.l1d().stats().accesses, 0u);
  m.access_data(0x10000, false, 1);  // same address, separate L1s
  EXPECT_EQ(m.l1d().stats().misses, 1u);
  // ...but they share the L2.
  EXPECT_EQ(m.l2().stats().accesses, 2u);
  EXPECT_EQ(m.l2().stats().misses, 1u);  // data access hit the i-fill's line
}

TEST(Hierarchy, DetailedModelsComposeAndStayBounded) {
  HierarchyConfig cfg;
  cfg.detailed_dram = true;
  cfg.detailed_ptw = true;
  MemHierarchy m(cfg);
  Rng rng(11);
  Cycle now = 0;
  for (int i = 0; i < 20000; ++i) {
    // Pace requests below the DRAM service rate: with detailed_ptw every
    // random access is a TLB miss whose walk adds three PTE reads, i.e. up
    // to four DRAM bursts. An open-loop arrival rate above that backs
    // latency up without bound, by design (the closed-loop core stalls on
    // the returned latency instead).
    now += 120 + rng.below(120);
    const u32 lat =
        m.access_data(rng.next() & 0x0fffffff, rng.chance(0.3), now);
    EXPECT_LT(lat, 50000u) << i;
  }
  ASSERT_NE(m.ptw(), nullptr);
  EXPECT_GT(m.ptw()->stats().walks, 0u);
  EXPECT_GT(m.dram()->stats().requests, 0u);
  // PTE reads go through L2: walker traffic is visible there.
  EXPECT_GT(m.l2().stats().accesses, 20000u);
}

TEST(Hierarchy, WritebackTrafficAppearsUnderStores) {
  HierarchyConfig cfg;
  cfg.l1d.size_bytes = 4 * 1024;  // small L1D to force dirty evictions
  cfg.l1d.ways = 2;
  MemHierarchy m(cfg);
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    m.access_data(rng.next() & 0xfffff, /*write=*/true, i);
  }
  EXPECT_GT(m.l1d().stats().writebacks, 1000u);
  EXPECT_EQ(m.l1i().stats().writebacks, 0u);
}

TEST(Hierarchy, TlbReachSmallerThanCaches) {
  // 32 entries x 4KB = 128KB of TLB reach: a 256KB stride-page sweep misses
  // the TLB on every revisit while the LLC (4MB) still holds the data.
  MemHierarchy m{HierarchyConfig{}};
  for (int pass = 0; pass < 2; ++pass) {
    for (u64 p = 0; p < 64; ++p) {
      m.access_data(0x20000000 + p * 4096, false, pass * 1000 + p);
    }
  }
  EXPECT_EQ(m.dtlb().stats().misses, 128u);  // every access a fresh page
  EXPECT_EQ(m.llc().stats().misses, 64u);    // second pass hits
}

}  // namespace
}  // namespace fg::mem
