// The horizon contract, asserted per component.
//
// Every component the event-driven scheduler skips over exposes a
// next-event horizon; the contract is "no observable event strictly before
// next_event()". These property tests attack it directly: randomized
// component states (drawn from configurations inside the fuzzing
// subsystem's scenario envelope, so every config is one the fuzzer could
// hand the scheduler) are stepped with the exact one-cycle-at-a-time
// reference up to the claimed horizon, and anything observable happening
// before it is a failure. The whole-SoC closure — that the horizons
// *compose* into bit-identical runs — is covered by the scenario-snapshot
// diff at the end plus tests/skip_stress_test.cc and the fuzz corpus.
#include <gtest/gtest.h>

#include <vector>

#include "src/boom/core.h"
#include "src/common/rng.h"
#include "src/common/simctl.h"
#include "src/core/cdc.h"
#include "src/core/fabric.h"
#include "src/kernels/ha.h"
#include "src/kernels/kernel.h"
#include "src/mem/hierarchy.h"
#include "src/testing/scenario.h"
#include "src/testing/snapshot.h"
#include "src/trace/workload.h"
#include "src/ucore/ucore.h"
#include "src/ucore/umem.h"

namespace fg {
namespace {

/// Restores the scheduler mode even if an assertion fails mid-test.
struct ExactMode {
  explicit ExactMode(bool exact) { set_cycle_exact(exact); }
  ~ExactMode() { set_cycle_exact(false); }
};

/// Envelope for drawing component configurations: the PR 4 scenario
/// generator guarantees every draw is valid (never degenerate), so the
/// properties below range over exactly the states the fuzzer can produce.
fuzz::ScenarioEnvelope contract_envelope() {
  fuzz::ScenarioEnvelope env;
  env.min_insts = 2'000;
  env.max_insts = 6'000;
  return env;
}

core::Packet pk(u64 seq, u64 pc, u64 addr, u64 data) {
  core::Packet p;
  p.valid = true;
  p.seq = seq;
  p.pc = pc;
  p.addr = addr;
  p.data = data;
  return p;
}

// --- BoomCore -------------------------------------------------------------
//
// At a fixed point (tick returned inactive), next_event() claims the first
// cycle anything can change — for an in-flight DRAM/PTW miss that is the
// ROB head's completion cycle. Stepping the exact reference across the
// claimed window must retire nothing and keep the core inactive on every
// cycle strictly before the horizon.
TEST(HorizonContract, BoomCoreDeadUntilHorizon) {
  for (u64 seed = 1; seed <= 6; ++seed) {
    const fuzz::Scenario s = fuzz::scenario_from_seed(seed, contract_envelope());
    trace::WorkloadGen gen(s.wl());
    mem::MemHierarchy mem(s.sc().mem);
    boom::BoomCore core(s.sc().core, mem, gen);

    u64 windows = 0;
    for (u64 step = 0; step < 200'000; ++step) {
      const bool active = core.tick(nullptr);
      if (active) continue;
      const Cycle h = core.next_event();
      if (h == kNoEvent) break;  // trace exhausted and pipeline drained
      ASSERT_GE(h, core.now()) << s.name;
      if (h <= core.now() + 1) continue;  // no skippable window
      ++windows;
      const u64 committed = core.stats().committed;
      const u64 mispredicts = core.stats().mispredicts;
      while (core.now() < h) {
        EXPECT_FALSE(core.tick(nullptr))
            << s.name << ": observable activity at cycle " << core.now() - 1
            << ", strictly before claimed horizon " << h;
        EXPECT_EQ(core.stats().committed, committed) << s.name;
      }
      EXPECT_EQ(core.stats().mispredicts, mispredicts) << s.name;
    }
    // The property must have had something to bite on (stall windows exist
    // in every drawn workload — if not, the test fixture has rotted).
    EXPECT_GT(windows, 0u) << s.name;
  }
}

// --- CdcFifo --------------------------------------------------------------
//
// next_ready_slow() is the first slow cycle the head entry's handshake has
// settled; nothing is poppable strictly before it, and the head IS poppable
// exactly at it. ready_count() must agree with per-entry can_pop semantics
// (that agreement is what licenses the burst pop in Soc::slow_tick).
TEST(HorizonContract, CdcFifoNothingPoppableBeforeReady) {
  for (u64 seed = 1; seed <= 24; ++seed) {
    const fuzz::Scenario s = fuzz::scenario_from_seed(seed, contract_envelope());
    const u32 depth = s.sc().frontend.cdc_depth;
    const u32 ratio = s.sc().frontend.freq_ratio;
    core::CdcFifo cdc(depth, ratio);
    Rng rng(seed * 977 + 11);

    Cycle fast = 0;
    for (u32 round = 0; round < 64; ++round) {
      fast += rng.range(1, 3 * ratio);
      if (cdc.can_push() && rng.chance(0.7)) {
        cdc.push(pk(round, 0x1000 + round, round * 8, round), fast);
      }
      const Cycle h = cdc.next_ready_slow();
      if (h == kNoEvent) {
        EXPECT_TRUE(cdc.empty());
        continue;
      }
      // Strictly before the horizon: not poppable at any earlier cycle.
      for (Cycle s_cyc = h >= 4 ? h - 4 : 0; s_cyc < h; ++s_cyc) {
        EXPECT_FALSE(cdc.can_pop(s_cyc)) << "seed " << seed;
        EXPECT_EQ(cdc.ready_count(s_cyc, depth), 0u) << "seed " << seed;
      }
      // At the horizon: the head has settled.
      EXPECT_TRUE(cdc.can_pop(h)) << "seed " << seed;
      EXPECT_GE(cdc.ready_count(h, depth), 1u) << "seed " << seed;
      // ready_count == k licenses draining k packets without re-checking
      // the handshake: each of the k pops must be front-poppable.
      if (rng.chance(0.5)) {
        const u32 k = cdc.ready_count(h, rng.range(1, depth));
        for (u32 i = 0; i < k; ++i) {
          ASSERT_TRUE(cdc.can_pop(h)) << "seed " << seed << " pop " << i;
          cdc.pop();
        }
      }
    }
  }
}

// --- UCore ----------------------------------------------------------------
//
// A stalled µcore (mid multi-cycle instruction) claims stall_until() as its
// horizon: every tick strictly before it must be a pure stall-counter
// increment — zero instructions executed, no packets popped or pushed, no
// detections, output queue untouched. An idle µcore (kNoEvent horizon) may
// execute spin-loop instructions when ticked, but nothing observable may
// change — that unobservability is exactly what licenses freezing the spin.
struct UCoreObservables {
  u64 popped, pushes, detections;
  size_t input, output_empty;

  explicit UCoreObservables(const ucore::UCore& c)
      : popped(c.stats().packets_popped),
        pushes(c.stats().pushes),
        detections(c.stats().detections),
        input(c.input_size()),
        output_empty(c.output_empty() ? 1u : 0u) {}
  bool operator==(const UCoreObservables&) const = default;
};

TEST(HorizonContract, UCoreStallWindowIsPureStallAccounting) {
  for (u64 seed = 1; seed <= 8; ++seed) {
    const fuzz::Scenario s = fuzz::scenario_from_seed(seed, contract_envelope());
    ucore::USharedMemory kmem;
    ucore::UCore core(s.sc().ucore, 0, &kmem, nullptr);
    core.load_program(
        kernels::build_pmc(kernels::ProgModel::kHybrid, s.sc().kparams));
    Rng rng(seed * 131 + 7);

    Cycle now = 0;
    u64 stall_windows = 0;
    for (u32 round = 0; round < 4'000 && !core.halted(); ++round) {
      if (!core.input_full() && rng.chance(0.3)) {
        core.push_input(pk(round, 0x2000 + round * 4, round * 8, round));
      }
      const Cycle h = core.next_event(now);
      if (h == kNoEvent) {
        // Idle: ticking executes at most unobservable spin iterations.
        const UCoreObservables before(core);
        for (u32 k = 0; k < 16; ++k) core.tick(now++);
        EXPECT_TRUE(UCoreObservables(core) == before) << "seed " << seed;
        if (core.input_full()) break;
        core.push_input(pk(9000 + round, 0x3000, 8, 1));  // wake it
        continue;
      }
      ASSERT_GE(h, now) << "seed " << seed;
      if (h == now) {  // executable this cycle: just advance
        core.tick(now++);
        continue;
      }
      ++stall_windows;
      const UCoreObservables before(core);
      const u64 insts = core.stats().instructions;
      const u64 stalls = core.stats().stall_cycles;
      const u64 window = h - now;
      while (now < h) core.tick(now++);
      EXPECT_EQ(core.stats().instructions, insts) << "seed " << seed;
      EXPECT_EQ(core.stats().stall_cycles, stalls + window) << "seed " << seed;
      EXPECT_TRUE(UCoreObservables(core) == before) << "seed " << seed;
    }
    EXPECT_GT(stall_windows, 0u) << "seed " << seed;
  }
}

// --- HardwareAccelerator --------------------------------------------------
//
// An HA consumes one packet per slow cycle: its horizon is `now` while the
// queue is non-empty and kNoEvent once drained — at which point tick must
// be a structural no-op (the refill is the CDC's event, not the HA's).
TEST(HorizonContract, HardwareAcceleratorIdleTickIsNoOp) {
  for (u64 seed = 1; seed <= 16; ++seed) {
    kernels::PmcHa ha(0, /*text_lo=*/0x1000, /*text_hi=*/0x100000);
    Rng rng(seed * 53 + 29);
    Cycle now = 0;
    for (u32 round = 0; round < 200; ++round) {
      if (!ha.input_full() && rng.chance(0.5)) {
        ha.push_input(pk(round, 0x1000 + round * 4, 0, round));
      }
      if (ha.idle()) {
        EXPECT_EQ(ha.next_event(now), kNoEvent) << "seed " << seed;
        const u64 processed = ha.packets_processed();
        const size_t detections = ha.detections().size();
        for (u32 k = 0; k < 8; ++k) ha.tick(now++);
        EXPECT_EQ(ha.packets_processed(), processed) << "seed " << seed;
        EXPECT_EQ(ha.detections().size(), detections) << "seed " << seed;
      } else {
        // Non-empty queue: progress is claimed for THIS cycle, and one tick
        // consumes exactly one packet.
        EXPECT_EQ(ha.next_event(now), now) << "seed " << seed;
        const u64 processed = ha.packets_processed();
        ha.tick(now++);
        EXPECT_EQ(ha.packets_processed(), processed + 1) << "seed " << seed;
      }
    }
  }
}

// --- NocMesh --------------------------------------------------------------
//
// next_arrival() is the earliest delivery cycle over all in-flight
// messages: no engine can receive anything strictly before it, and at the
// horizon at least one engine can. (This is the mesh share of the SoC's
// memoized slow-rest horizon.)
TEST(HorizonContract, NocMeshNothingDeliverableBeforeArrival) {
  for (u64 seed = 1; seed <= 16; ++seed) {
    const fuzz::Scenario s = fuzz::scenario_from_seed(seed, contract_envelope());
    Rng rng(seed * 389 + 3);
    const u32 n = static_cast<u32>(rng.range(1, 12));
    core::NocMesh mesh(n, s.sc().noc_hop_latency);

    Cycle now = 0;
    for (u32 round = 0; round < 32; ++round) {
      now += rng.range(0, 3);
      const u32 src = static_cast<u32>(rng.below(n));
      const u32 dst = static_cast<u32>(rng.below(n));
      mesh.send(src, dst, (seed << 16) | round, now);
    }
    while (mesh.pending() > 0) {
      const Cycle h = mesh.next_arrival();
      ASSERT_NE(h, kNoEvent);
      for (Cycle c = h >= 3 ? h - 3 : 0; c < h; ++c) {
        for (u32 e = 0; e < n; ++e) {
          EXPECT_FALSE(mesh.deliver(e, c).has_value())
              << "seed " << seed << ": delivery at " << c
              << " strictly before claimed arrival " << h;
        }
      }
      bool delivered = false;
      for (u32 e = 0; e < n; ++e) {
        while (mesh.deliver(e, h).has_value()) delivered = true;
      }
      EXPECT_TRUE(delivered) << "seed " << seed;
    }
    EXPECT_EQ(mesh.next_arrival(), kNoEvent);
  }
}

// --- Whole-SoC closure ----------------------------------------------------
//
// The component horizons must *compose*: scenario-envelope draws run under
// the event scheduler and the FG_CYCLE_EXACT reference must produce
// bit-identical StatSnapshots (the same diff the fuzz driver and golden
// corpus enforce, here as a fast in-suite guard).
TEST(HorizonContract, ScenarioSnapshotsMatchExactReference) {
  ExactMode guard(false);
  for (u64 seed = 201; seed <= 206; ++seed) {
    const fuzz::Scenario s = fuzz::scenario_from_seed(seed, contract_envelope());
    const fuzz::StatSnapshot event =
        fuzz::run_scenario_snapshot_in_mode(s, /*exact=*/false);
    const fuzz::StatSnapshot exact =
        fuzz::run_scenario_snapshot_in_mode(s, /*exact=*/true);
    EXPECT_TRUE(fuzz::snapshots_equal(exact, event))
        << fuzz::scenario_summary(s) << "\n"
        << fuzz::snapshot_diff(exact, event, "exact", "event");
  }
}

// Same closure, third scheduler: the two-thread epoch-pipelined loop must
// land on the identical snapshots. The pipelined run consumes horizons at
// epoch granularity (skips are only evaluated at epoch starts, slow
// boundaries run one epoch behind the fast domain), so this is the horizon
// contract exercised through the coarsest consumer the simulator has.
TEST(HorizonContract, ScenarioSnapshotsMatchUnderPipeline) {
  ExactMode guard(false);
  struct PipelineMode {
    explicit PipelineMode(bool on) { set_pipeline(on); }
    ~PipelineMode() { set_pipeline(false); }
  };
  for (u64 seed = 201; seed <= 206; ++seed) {
    const fuzz::Scenario s = fuzz::scenario_from_seed(seed, contract_envelope());
    const fuzz::StatSnapshot exact =
        fuzz::run_scenario_snapshot_in_mode(s, /*exact=*/true);
    fuzz::StatSnapshot piped;
    {
      PipelineMode pipe(true);
      piped = fuzz::run_scenario_snapshot_in_mode(s, /*exact=*/false);
    }
    EXPECT_TRUE(fuzz::snapshots_equal(exact, piped))
        << fuzz::scenario_summary(s) << "\n"
        << fuzz::snapshot_diff(exact, piped, "exact", "pipelined");
  }
}

}  // namespace
}  // namespace fg
