// Scenario generator: seed determinism, envelope validity, corpus coverage,
// and stat-snapshot JSON round-trips.
#include <gtest/gtest.h>

#include <set>

#include "src/core/packet.h"
#include "src/testing/golden.h"
#include "src/testing/scenario.h"
#include "src/testing/snapshot.h"

namespace fg::fuzz {
namespace {

TEST(Scenario, SameSeedSameScenario) {
  for (const u64 seed : {u64{1}, u64{42}, u64{0xdeadbeef}, ~u64{0}}) {
    const Scenario a = scenario_from_seed(seed);
    const Scenario b = scenario_from_seed(seed);
    EXPECT_EQ(scenario_json(a), scenario_json(b)) << seed;
    EXPECT_EQ(scenario_summary(a), scenario_summary(b)) << seed;
  }
}

TEST(Scenario, EveryDrawStaysInsideTheEnvelope) {
  ScenarioEnvelope env;
  env.min_insts = 3'000;
  env.max_insts = 9'000;
  env.max_deployments = 2;
  env.max_engines_per_kernel = 4;
  env.max_attacks_per_kind = 3;
  for (u64 seed = 1; seed <= 300; ++seed) {
    const Scenario s = scenario_from_seed(seed, env);
    EXPECT_GE(s.wl().n_insts, env.min_insts) << seed;
    EXPECT_LE(s.wl().n_insts, env.max_insts) << seed;
    EXPECT_LE(s.wl().warmup_insts, s.wl().n_insts / 5) << seed;
    for (const auto& [kind, count] : s.wl().attacks) {
      EXPECT_GE(count, 1u) << seed;
      EXPECT_LE(count, env.max_attacks_per_kind) << seed;
    }
    ASSERT_GE(s.sc().kernels.size(), 1u) << seed;
    ASSERT_LE(s.sc().kernels.size(), env.max_deployments) << seed;
    u32 engines = 0;
    for (const soc::KernelDeployment& d : s.sc().kernels) {
      EXPECT_GE(d.n_engines, 1u) << seed;
      EXPECT_LE(d.n_engines, env.max_engines_per_kernel) << seed;
      if (d.use_ha) {
        // Only PMC and the shadow stack have hardware-accelerator variants.
        EXPECT_TRUE(d.kind == kernels::KernelKind::kPmc ||
                    d.kind == kernels::KernelKind::kShadowStack)
            << seed;
      }
      engines += d.use_ha ? 1 : d.n_engines;
    }
    EXPECT_LE(engines, core::kMaxEngines) << seed;
    EXPECT_GE(s.sc().frontend.cdc_depth, 4u) << seed;
    EXPECT_GE(s.sc().frontend.filter.fifo_depth, 2u) << seed;  // FG_CHECK floor
    EXPECT_GE(s.sc().frontend.freq_ratio, 2u) << seed;
    EXPECT_LE(s.sc().frontend.freq_ratio, 4u) << seed;
    EXPECT_GE(s.sc().noc_hop_latency, 1u) << seed;
    EXPECT_LE(s.sc().noc_hop_latency, 3u) << seed;
    EXPECT_GE(s.sc().mem.dram_latency, 120u) << seed;
    EXPECT_LE(s.sc().mem.dram_latency, 260u) << seed;
    EXPECT_GE(s.sc().core.phys_regs, 64u) << seed;  // > 32 logical: no deadlock
  }
}

/// The generator must actually exercise the interesting regions of the
/// space — a refactor that accidentally pins a knob would silently narrow
/// every fuzz run.
TEST(Scenario, SeedsCoverTheConfigurationSpace) {
  std::set<kernels::KernelKind> kinds;
  std::set<kernels::ProgModel> models;
  bool saw_ha = false, saw_postcommit = false, saw_mixed = false;
  bool saw_detailed_dram = false, saw_detailed_ptw = false, saw_stlf = false;
  bool saw_mapper2 = false;
  std::set<std::string> workloads;
  for (u64 seed = 1; seed <= 200; ++seed) {
    const Scenario s = scenario_from_seed(seed);
    workloads.insert(s.wl().profile.name);
    for (const soc::KernelDeployment& d : s.sc().kernels) {
      kinds.insert(d.kind);
      models.insert(d.model);
      saw_ha |= d.use_ha;
    }
    saw_postcommit |= !s.sc().ucore.isax_ma_stage;
    saw_mixed |= s.sc().kernels.size() > 1;
    saw_detailed_dram |= s.sc().mem.detailed_dram;
    saw_detailed_ptw |= s.sc().mem.detailed_ptw;
    saw_stlf |= s.sc().core.store_load_forwarding;
    saw_mapper2 |= s.sc().frontend.mapper_width == 2;
  }
  EXPECT_EQ(kinds.size(), 4u);
  EXPECT_EQ(models.size(), 4u);
  EXPECT_EQ(workloads.size(), 9u);
  EXPECT_TRUE(saw_ha);
  EXPECT_TRUE(saw_postcommit);
  EXPECT_TRUE(saw_mixed);
  EXPECT_TRUE(saw_detailed_dram);
  EXPECT_TRUE(saw_detailed_ptw);
  EXPECT_TRUE(saw_stlf);
  EXPECT_TRUE(saw_mapper2);
}

/// The golden corpus (20 fixed seeds) must itself cover all four kernels —
/// the comment in golden.cc promises this test enforces it.
TEST(Scenario, GoldenCorpusCoversAllKernels) {
  std::set<kernels::KernelKind> kinds;
  bool saw_mixed = false, saw_postcommit = false;
  bool stall_saw_ma = false, stall_saw_postcommit = false;
  for (const GoldenEntry& e : golden_entries()) {
    const Scenario s = scenario_from_seed(
        e.seed, e.stall ? golden_stall_envelope() : golden_envelope());
    for (const soc::KernelDeployment& d : s.sc().kernels) kinds.insert(d.kind);
    saw_mixed |= s.sc().kernels.size() > 1;
    saw_postcommit |= !s.sc().ucore.isax_ma_stage;
    if (e.stall) {
      // The stall slice is what it claims to be: every entry lands in the
      // memory/stall-bound regime the skip horizons are measured on...
      EXPECT_EQ(s.wl().profile.name, "memstall") << e.name;
      EXPECT_TRUE(s.sc().mem.detailed_dram) << e.name;
      EXPECT_TRUE(s.sc().mem.detailed_ptw) << e.name;
      stall_saw_ma |= s.sc().ucore.isax_ma_stage;
      stall_saw_postcommit |= !s.sc().ucore.isax_ma_stage;
    }
  }
  EXPECT_EQ(kinds.size(), 4u);
  EXPECT_TRUE(saw_mixed);
  EXPECT_TRUE(saw_postcommit);
  // ...and mixes both ISAX integrations (deep post-commit µcore stalls are
  // a distinct horizon shape from MA-stage stalls).
  EXPECT_TRUE(stall_saw_ma);
  EXPECT_TRUE(stall_saw_postcommit);
}

/// The bias knob's backward-compatibility contract: a zero bias consumes
/// nothing from the rng stream, so pre-knob expansions (the checked-in
/// g01..g20 snapshots) are byte-identical to current ones.
TEST(Scenario, ZeroStallBiasDrawsNothing) {
  ScenarioEnvelope off = golden_envelope();
  ScenarioEnvelope stall = golden_stall_envelope();
  for (u64 seed = 1; seed <= 40; ++seed) {
    const Scenario base = scenario_from_seed(seed, golden_envelope());
    const Scenario with_knob = scenario_from_seed(seed, off);
    EXPECT_EQ(scenario_json(base), scenario_json(with_knob)) << seed;
    // And the biased expansion shares everything the bias doesn't touch
    // (same kernels — drawn before the bias is consulted).
    const Scenario biased = scenario_from_seed(seed, stall);
    ASSERT_EQ(biased.sc().kernels.size(), base.sc().kernels.size()) << seed;
    for (size_t i = 0; i < biased.sc().kernels.size(); ++i) {
      EXPECT_EQ(biased.sc().kernels[i].kind, base.sc().kernels[i].kind)
          << seed;
    }
  }
}

TEST(Scenario, WithTraceLenClampsWarmup) {
  Scenario s = scenario_from_seed(7);
  s.wl().warmup_insts = 2'000;
  const Scenario t = with_trace_len(s, 500);
  EXPECT_EQ(t.wl().n_insts, 500u);
  EXPECT_LE(t.wl().warmup_insts, 100u);
}

TEST(Snapshot, RunIsDeterministic) {
  ScenarioEnvelope env;
  env.max_insts = 3'000;
  const Scenario s = scenario_from_seed(11, env);
  const StatSnapshot a = run_scenario_snapshot(s);
  const StatSnapshot b = run_scenario_snapshot(s);
  EXPECT_TRUE(snapshots_equal(a, b));
  EXPECT_EQ(snapshot_diff(a, b, "a", "b"), "");
  EXPECT_GT(a.committed, 0u);
  EXPECT_GT(a.cdc_pushes, 0u);
  ASSERT_FALSE(a.engines.empty());
}

TEST(Snapshot, JsonRoundTripIsExact) {
  ScenarioEnvelope env;
  env.max_insts = 3'000;
  // An attack-bearing scenario so the detections array is non-trivial.
  Scenario s = scenario_from_seed(3, env);
  s.wl().attacks = {{trace::AttackKind::kPcHijack, 2},
                  {trace::AttackKind::kHeapOob, 2}};
  const StatSnapshot a = run_scenario_snapshot(s);
  StatSnapshot back;
  ASSERT_TRUE(snapshot_from_json(snapshot_json(a), &back));
  EXPECT_TRUE(snapshots_equal(a, back));
  // Serializing the parsed copy reproduces the text byte-for-byte.
  EXPECT_EQ(snapshot_json(a), snapshot_json(back));
}

TEST(Snapshot, DiffNamesTheDivergingField) {
  const Scenario s = scenario_from_seed(13, golden_envelope());
  const StatSnapshot a = run_scenario_snapshot(s);
  StatSnapshot b = a;
  b.noc_messages += 5;
  b.cycles += 1;
  EXPECT_FALSE(snapshots_equal(a, b));
  const std::string diff = snapshot_diff(a, b, "exact", "event");
  EXPECT_NE(diff.find("noc_messages"), std::string::npos) << diff;
  EXPECT_NE(diff.find("cycles"), std::string::npos) << diff;
}

TEST(Snapshot, RejectsForeignJson) {
  StatSnapshot out;
  EXPECT_FALSE(snapshot_from_json("{}", &out));
  EXPECT_FALSE(snapshot_from_json("not json", &out));
  EXPECT_FALSE(snapshot_from_json("{\"schema\": \"other/v9\"}", &out));
}

}  // namespace
}  // namespace fg::fuzz
