// Campaign runner tests: the crash-safe contract end to end. A campaign
// killed at any instant resumes bit-identical with zero re-simulation;
// corrupt store entries are recomputed; hung points are watchdog-killed and
// retried; crashing points cost one attempt, not the campaign. Every fault
// here is injected deterministically via store/faultfs.h.
#include "src/api/campaign.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/store/faultfs.h"

namespace fg::api {
namespace {

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store::fault_clear();
    dir_ = testing::TempDir() + "campaign_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);  // stale stores from prior runs
  }
  void TearDown() override { store::fault_clear(); }

  // A fast sweep-free spec (~800 instructions); add axes per test.
  static ExperimentSpec tiny_spec(const std::string& name) {
    ExperimentSpec spec = default_spec();
    spec.name = name;
    spec.sweep.clear();
    std::string err;
    EXPECT_TRUE(apply_set(&spec, "trace_len", "800", &err)) << err;
    return spec;
  }

  static void configure_fault(const std::string& text) {
    store::FaultConfig cfg;
    std::string err;
    ASSERT_TRUE(store::parse_fault_spec(text, &cfg, &err)) << err;
    store::fault_configure(cfg);
  }

  CampaignConfig quick_cfg(const std::string& store_subdir) {
    CampaignConfig cfg;
    cfg.store_dir = dir_ + "/" + store_subdir;
    cfg.with_baseline = false;
    cfg.isolate = false;
    cfg.backoff_ms = 1;  // keep injected-retry tests fast
    return cfg;
  }

  std::string dir_;
};

TEST_F(CampaignTest, KeysSeparateBaselinePolicyAndSpec) {
  const ExperimentSpec a = tiny_spec("a");
  ExperimentSpec b = tiny_spec("a");
  std::string err;
  ASSERT_TRUE(apply_set(&b, "seed", "99", &err));

  EXPECT_NE(result_key(a, true), result_key(a, false));
  EXPECT_NE(result_key(a, false), result_key(b, false));
  EXPECT_EQ(result_key(a, false), result_key(tiny_spec("a"), false));
  // For a baseline-mode spec the flag is inert and must not split entries.
  ExperimentSpec base = tiny_spec("a");
  ASSERT_TRUE(apply_set(&base, "mode", "baseline", &err));
  EXPECT_EQ(result_key(base, true), result_key(base, false));

  const std::string hash = campaign_hash(a, true);
  EXPECT_EQ(hash.size(), 16u);
  EXPECT_EQ(hash.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_NE(hash, campaign_hash(a, false));
}

TEST_F(CampaignTest, OutcomePayloadZeroesNondeterministicFields) {
  const GridPoint point{"p", tiny_spec("payload")};
  PointExecutor exec(/*with_baseline=*/false);
  RunOutcome o = exec.execute(point);
  RunOutcome o2 = o;
  o2.wall_ms = 1234.5;  // the machine-dependent fields must not leak into
  o2.snapshot.invariant_checks = 7;     // the durable payload
  o2.snapshot.invariant_violations = 1;
  EXPECT_EQ(outcome_payload(o), outcome_payload(o2));
  EXPECT_NE(outcome_payload(o).find("\"cycles\""), std::string::npos);
}

TEST_F(CampaignTest, RunPublishesAndResumeServesFromStore) {
  ExperimentSpec spec = tiny_spec("resume");
  spec.sweep = {{"seed", {"1", "2", "3"}}, {"engines", {"2", "4"}}};
  CampaignConfig cfg = quick_cfg("store");
  cfg.with_baseline = true;  // exercise the durable baseline hooks too

  CampaignRunner first(spec, cfg);
  std::string err;
  ASSERT_TRUE(first.run(&err)) << err;
  EXPECT_EQ(first.stats().points, 6u);
  EXPECT_EQ(first.stats().executed, 6u);
  EXPECT_EQ(first.stats().from_store, 0u);
  EXPECT_EQ(first.stats().failed, 0u);
  for (const std::string& p : first.payloads()) EXPECT_FALSE(p.empty());

  // Same spec, same store: everything is served from disk, nothing runs.
  CampaignRunner second(spec, cfg);
  size_t cache_events = 0;
  second.on_event([&](const CampaignRunner::Event& ev) {
    cache_events += std::string(ev.what) == "cache" ? 1 : 0;
  });
  ASSERT_TRUE(second.run(&err)) << err;
  EXPECT_EQ(second.stats().from_store, 6u);
  EXPECT_EQ(second.stats().executed, 0u);
  EXPECT_EQ(cache_events, 6u);
  EXPECT_EQ(second.payloads(), first.payloads());
}

#if !defined(_WIN32)
TEST_F(CampaignTest, IsolateAndInProcessAreBitIdentical) {
  ExperimentSpec spec = tiny_spec("modes");
  spec.sweep = {{"seed", {"5", "6"}}, {"kernel", {"pmc", "asan"}}};
  std::string err;

  CampaignConfig in_proc = quick_cfg("store_inproc");
  in_proc.with_baseline = true;
  CampaignRunner a(spec, in_proc);
  ASSERT_TRUE(a.run(&err)) << err;

  CampaignConfig isolated = quick_cfg("store_isolated");
  isolated.with_baseline = true;
  isolated.isolate = true;
  CampaignRunner b(spec, isolated);
  ASSERT_TRUE(b.run(&err)) << err;

  EXPECT_EQ(a.stats().executed, 4u);
  EXPECT_EQ(b.stats().executed, 4u);
  EXPECT_EQ(a.payloads(), b.payloads());
}
#endif

// The acceptance drill: a 200-point campaign killed dead mid-run (injected
// crash = _Exit at point 100, same observable effect as SIGKILL: no
// destructors, no flushes beyond what already hit the disk) resumes with
// zero re-simulation of the published points and a bit-identical result
// set.
TEST_F(CampaignTest, KilledCampaignResumesBitIdenticalWithZeroReruns) {
  ExperimentSpec spec = tiny_spec("kill200");
  std::vector<std::string> seeds;
  for (int s = 1; s <= 50; ++s) seeds.push_back(std::to_string(s));
  spec.sweep = {{"seed", seeds},
                {"kernel", {"pmc", "asan"}},
                {"engines", {"2", "4"}}};
  const CampaignConfig cfg = quick_cfg("store");
  std::string err;

  CampaignRunner first(spec, cfg);
  ASSERT_TRUE(first.init(&err)) << err;
  ASSERT_EQ(first.points().size(), 200u);
  configure_fault("crash@point:100");
  EXPECT_EXIT(first.run(&err),
              ::testing::ExitedWithCode(store::kFaultCrashExit),
              "injected crash at point 100");
  store::fault_clear();

  CampaignRunner resumed(spec, cfg);
  size_t cache_events = 0;
  resumed.on_event([&](const CampaignRunner::Event& ev) {
    cache_events += std::string(ev.what) == "cache" ? 1 : 0;
  });
  ASSERT_TRUE(resumed.run(&err)) << err;
  // Points 0..99 were published before the kill: all served from the store.
  EXPECT_EQ(resumed.stats().from_store, 100u);
  EXPECT_EQ(cache_events, 100u);
  EXPECT_EQ(resumed.stats().executed, 100u);
  EXPECT_EQ(resumed.stats().failed, 0u);
  // The journal replay credits the killed run's attempt on point 100.
  EXPECT_EQ(resumed.journal().points()[100].attempts, 2u);

  // Bit-identity: each payload — whether computed before the kill, or after
  // the resume — equals an independent direct execution of that point.
  PointExecutor exec(/*with_baseline=*/false);
  for (const u32 i : {0u, 99u, 100u, 199u}) {
    EXPECT_EQ(resumed.payloads()[i],
              outcome_payload(exec.execute(resumed.points()[i])))
        << "point " << i;
  }
  for (const std::string& p : resumed.payloads()) EXPECT_FALSE(p.empty());
}

TEST_F(CampaignTest, CorruptEntryIsQuarantinedAndRecomputed) {
  ExperimentSpec spec = tiny_spec("corrupt");
  spec.sweep = {{"seed", {"1", "2", "3"}}};
  const CampaignConfig cfg = quick_cfg("store");
  std::string err;

  CampaignRunner first(spec, cfg);
  ASSERT_TRUE(first.run(&err)) << err;
  const std::vector<std::string> golden = first.payloads();

  // Flip bits in point 1's entry on disk.
  const std::string path =
      first.result_store().entry_path(first.point_key(1));
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fputs("XXXX", f);
  std::fclose(f);

  CampaignRunner again(spec, cfg);
  ASSERT_TRUE(again.run(&err)) << err;
  EXPECT_EQ(again.stats().from_store, 2u);
  EXPECT_EQ(again.stats().executed, 1u) << "the corrupt entry must recompute";
  EXPECT_EQ(again.stats().failed, 0u);
  EXPECT_EQ(again.payloads(), golden) << "recompute must be bit-identical";
  EXPECT_GE(again.result_store().stats().quarantined, 1u);
}

#if !defined(_WIN32)
TEST_F(CampaignTest, WatchdogKillsHungPointAndRetrySucceeds) {
  ExperimentSpec spec = tiny_spec("hang");
  spec.sweep = {{"seed", {"1", "2"}}};
  CampaignConfig cfg = quick_cfg("store");
  cfg.isolate = true;
  cfg.point_timeout_s = 0.3;
  cfg.max_attempts = 2;
  // Point 0 hangs 30 s on its first attempt; the watchdog must SIGKILL it
  // long before that and the retry runs clean.
  configure_fault("hang@point:0:30000");

  CampaignRunner runner(spec, cfg);
  std::string err;
  ASSERT_TRUE(runner.run(&err)) << err;
  EXPECT_EQ(runner.stats().executed, 2u);
  EXPECT_EQ(runner.stats().failed, 0u);
  EXPECT_EQ(runner.stats().timeouts, 1u);
  EXPECT_EQ(runner.stats().retries, 1u);
  for (const std::string& p : runner.payloads()) EXPECT_FALSE(p.empty());
}

TEST_F(CampaignTest, CrashingPointCostsOneAttemptNotTheCampaign) {
  ExperimentSpec spec = tiny_spec("contained");
  spec.sweep = {{"seed", {"1", "2"}}};
  CampaignConfig cfg = quick_cfg("store");
  cfg.isolate = true;  // the crash lands in a forked child
  configure_fault("crash@point:1");

  CampaignRunner runner(spec, cfg);
  std::string err;
  ASSERT_TRUE(runner.run(&err)) << err;
  EXPECT_EQ(runner.stats().executed, 2u);
  EXPECT_EQ(runner.stats().failed, 0u);
  EXPECT_EQ(runner.stats().retries, 1u);
}
#endif

TEST_F(CampaignTest, TornPublishIsRetriedAndSucceeds) {
  const ExperimentSpec spec = tiny_spec("torn");  // one point, no sweep
  CampaignConfig cfg = quick_cfg("store");
  cfg.max_attempts = 2;

  CampaignRunner runner(spec, cfg);
  std::string err;
  // init() first: the store's own format.json write must not consume the
  // injected ordinal (fault_configure resets the op counters).
  ASSERT_TRUE(runner.init(&err)) << err;
  configure_fault("torn@write:1");
  ASSERT_TRUE(runner.run(&err)) << err;
  store::fault_clear();
  EXPECT_EQ(runner.stats().executed, 1u);
  EXPECT_EQ(runner.stats().retries, 1u);
  EXPECT_EQ(runner.stats().failed, 0u);
  std::string payload;
  EXPECT_EQ(runner.result_store().get(runner.point_key(0), &payload),
            store::ResultStore::GetStatus::kHit);
  EXPECT_EQ(payload, runner.payloads()[0]);
}

TEST_F(CampaignTest, AttemptsExhaustedRecordsFailedPoint) {
  ExperimentSpec spec = tiny_spec("permafail");
  spec.sweep = {{"seed", {"1", "2"}}};
  CampaignConfig cfg = quick_cfg("store");
  cfg.max_attempts = 2;
  configure_fault("fail@point:0x99");  // every attempt of point 0 fails

  CampaignRunner runner(spec, cfg);
  std::string err;
  ASSERT_TRUE(runner.run(&err)) << err;  // env ok; failure is per-point
  EXPECT_EQ(runner.stats().failed, 1u);
  EXPECT_EQ(runner.stats().retries, 1u);
  EXPECT_EQ(runner.stats().executed, 1u);
  EXPECT_TRUE(runner.payloads()[0].empty());
  EXPECT_FALSE(runner.payloads()[1].empty());
  EXPECT_TRUE(runner.journal().points()[0].failed);

  // A later campaign (fault gone) completes the failed point.
  store::fault_clear();
  CampaignRunner again(spec, cfg);
  ASSERT_TRUE(again.run(&err)) << err;
  EXPECT_EQ(again.stats().from_store, 1u);
  EXPECT_EQ(again.stats().executed, 1u);
  EXPECT_EQ(again.stats().failed, 0u);
  EXPECT_FALSE(again.journal().points()[0].failed)
      << "a successful retry must clear the journal's failure mark";
}

}  // namespace
}  // namespace fg::api
