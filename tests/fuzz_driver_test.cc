// Differential fuzz driver: real mini-run plus fault-injection through the
// runner hook (mismatch reporting, trace-length shrinking, repro lines,
// artifact files, invariant-violation routing).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/invariant.h"
#include "src/testing/difffuzz.h"
#include "src/common/json.h"

namespace fg::fuzz {
namespace {

/// A real (simulating) fuzz pass over a handful of seeds must be clean:
/// this is the in-tree smoke for the fgfuzz CI gate.
TEST(FuzzDriver, RealSeedsAreCleanAndReported) {
  FuzzOptions opt;
  opt.seeds = 4;
  opt.seed_base = 101;
  opt.env.max_insts = 3'000;
  const FuzzReport r = run_fuzz(opt);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.seeds_run, 4u);
  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_EQ(r.invariant_violations, 0u);
}

/// Synthetic runner whose "event" mode diverges whenever the trace length
/// is >= the planted threshold: the driver must catch it, bisect down to
/// the threshold, and emit a --force-len repro.
TEST(FuzzDriver, ShrinksAMismatchToThePlantedThreshold) {
  constexpr u64 kBugLen = 4'321;
  auto fake = [](const Scenario& s, bool exact) {
    StatSnapshot snap;
    snap.cycles = 1000;
    snap.committed = s.wl().n_insts;
    if (!exact && s.wl().n_insts >= kBugLen) snap.cycles += 7;  // the "bug"
    return snap;
  };
  FuzzOptions opt;
  opt.seeds = 1;
  opt.seed_base = 1;
  opt.env.min_insts = 2'000;
  opt.env.max_insts = 12'000;
  opt.force_len = 9'000;  // make the seed's length deterministic & failing
  const FuzzReport r = run_fuzz(opt, fake);
  ASSERT_EQ(r.failures.size(), 1u);
  const FuzzFailure& f = r.failures[0];
  EXPECT_EQ(f.kind, "event_vs_exact");
  EXPECT_EQ(f.trace_len, 9'000u);
  EXPECT_EQ(f.shrunk_len, kBugLen);  // exact: the fake bug IS monotone
  EXPECT_NE(f.diff.find("cycles"), std::string::npos);
  EXPECT_NE(f.repro.find("--seed 0x1"), std::string::npos) << f.repro;
  EXPECT_NE(f.repro.find("--force-len 4321"), std::string::npos) << f.repro;
  EXPECT_NE(f.repro.find("--check"), std::string::npos) << f.repro;
}

TEST(FuzzDriver, WritesAReproducibleArtifact) {
  auto fake = [](const Scenario&, bool exact) {
    StatSnapshot snap;
    snap.cycles = exact ? 10 : 11;
    return snap;
  };
  const std::string dir =
      (std::filesystem::temp_directory_path() / "fgfuzz_artifact_test")
          .string();
  std::filesystem::remove_all(dir);
  FuzzOptions opt;
  opt.seeds = 1;
  opt.seed_base = 77;
  opt.shrink = false;
  opt.artifact_dir = dir;
  const FuzzReport r = run_fuzz(opt, fake);
  ASSERT_EQ(r.failures.size(), 1u);
  ASSERT_FALSE(r.failures[0].artifact_path.empty());
  std::ifstream in(r.failures[0].artifact_path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  json::Value root;
  ASSERT_TRUE(json::parse(ss.str(), &root)) << ss.str();
  EXPECT_EQ(root.get_str("schema"), "fireguard/fgfuzz_failure/v1");
  EXPECT_EQ(root.get_str("kind"), "event_vs_exact");
  EXPECT_NE(root.get_str("repro").find("0x4d"), std::string::npos);
  const json::Value* scen = root.get("scenario");
  ASSERT_NE(scen, nullptr);
  EXPECT_EQ(scen->get_str("seed"), "0x000000000000004d");
  EXPECT_NE(root.get_str("diff").find("cycles"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(FuzzDriver, RoutesInvariantViolationsAsFailures) {
  if (!inv::compiled_in()) {
    GTEST_SKIP() << "invariants compiled out in this build type";
  }
  auto fake = [](const Scenario&, bool exact) {
    if (!exact) {
      FG_INVARIANT(false, "test.fake_violation");
    }
    return StatSnapshot{};  // snapshots agree; only the invariant fires
  };
  FuzzOptions opt;
  opt.seeds = 1;
  opt.seed_base = 5;
  opt.shrink = false;
  const FuzzReport r = run_fuzz(opt, fake);
  // The driver resets counters per scenario; this scenario's event run
  // recorded exactly one violation, without aborting.
  EXPECT_EQ(inv::violations(), 1u);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].kind, "invariant");
  EXPECT_NE(r.failures[0].diff.find("test.fake_violation"),
            std::string::npos);
  inv::reset_counters();
}

/// run_fuzz must restore the scheduler mode and the abort policy it found.
TEST(FuzzDriver, RestoresGlobalModes) {
  set_cycle_exact(false);
  inv::set_abort_on_violation(true);
  FuzzOptions opt;
  opt.seeds = 1;
  opt.env.max_insts = 2'000;
  run_fuzz(opt, [](const Scenario&, bool) { return StatSnapshot{}; });
  EXPECT_FALSE(cycle_exact());
  EXPECT_TRUE(inv::abort_on_violation());
}

}  // namespace
}  // namespace fg::fuzz
