// Parameterized end-to-end properties of the FireGuard frontend: commit-order
// preservation and packet conservation through mini-filters → paired FIFOs →
// arbiter → allocator → CDC, across filter widths, FIFO depths and mapper
// widths (the paper's correctness obligations for Figures 4 and 5).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/core/frontend.h"

namespace fg::core {
namespace {

class OpenQueues final : public QueueStatus {
 public:
  bool engine_queue_full(u32) const override { return false; }
  size_t engine_queue_free(u32) const override { return 64; }
};

// (filter_width, fifo_depth, mapper_width)
using Params = std::tuple<u32, u32, u32>;

class FrontendSweep : public ::testing::TestWithParam<Params> {};

trace::TraceInst load_inst(u64 seq) {
  trace::TraceInst ti;
  ti.enc = isa::make_load(3, 1, 2, 0);
  ti.cls = isa::InstClass::kLoad;
  ti.mem_addr = 0x1000 + 8 * seq;
  return ti;
}

trace::TraceInst alu_inst() {
  trace::TraceInst ti;
  ti.enc = isa::make_alu_rr(0, 1, 2, 3, false);
  ti.cls = isa::InstClass::kIntAlu;
  return ti;
}

TEST_P(FrontendSweep, OrderAndConservationUnderRandomCommit) {
  const auto [width, depth, mwidth] = GetParam();
  FrontendConfig fc;
  fc.filter.width = width;
  fc.filter.fifo_depth = depth;
  fc.mapper_width = mwidth;
  Frontend f(fc);
  f.filter().table().program(isa::kOpLoad, 3, 0b1, kDpLsq);
  f.allocator().configure_se(0, 0b1111, SchedPolicy::kRoundRobin, 0);

  OpenQueues q;
  Rng rng(1000 + width * 100 + depth * 10 + mwidth);
  u64 interesting_offered = 0;
  std::vector<u64> drained;  // packet seq numbers in CDC pop order

  Cycle now = 0;
  for (int step = 0; step < 4000; ++step, ++now) {
    // Random commit burst: 0..width instructions, mixing watched loads and
    // unwatched ALU ops (which become ordering placeholders).
    const u32 burst = static_cast<u32>(rng.below(width + 1));
    for (u32 lane = 0; lane < burst; ++lane) {
      if (!f.can_commit(lane, alu_inst())) break;
      if (rng.chance(0.5)) {
        f.on_commit(lane, load_inst(interesting_offered), now);
        ++interesting_offered;
      } else {
        f.on_commit(lane, alu_inst(), now);
      }
    }
    f.tick_fast(now, q, false);
    while (!f.cdc().empty()) drained.push_back(f.cdc().pop().seq);
  }
  // Drain the tail.
  for (int i = 0; i < 2000; ++i, ++now) {
    f.tick_fast(now, q, false);
    while (!f.cdc().empty()) drained.push_back(f.cdc().pop().seq);
    if (f.filter().buffered() == 0) break;
  }

  // Conservation: every watched commit emerged exactly once...
  EXPECT_EQ(drained.size(), interesting_offered);
  // ...and in commit order (seq strictly increasing).
  for (size_t i = 1; i < drained.size(); ++i) {
    EXPECT_LT(drained[i - 1], drained[i]) << "at " << i;
  }
  EXPECT_EQ(f.stats().dropped_unrouted, 0u);
}

TEST_P(FrontendSweep, LanesBeyondWidthAlwaysRefuse) {
  const auto [width, depth, mwidth] = GetParam();
  FrontendConfig fc;
  fc.filter.width = width;
  fc.filter.fifo_depth = depth;
  fc.mapper_width = mwidth;
  Frontend f(fc);
  for (u32 lane = width; lane < width + 3; ++lane) {
    EXPECT_FALSE(f.can_commit(lane, alu_inst())) << lane;
  }
  EXPECT_GE(f.stats().stall_by_cause[static_cast<size_t>(StallCause::kFilter)],
            3u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FrontendSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),   // filter width
                       ::testing::Values(4u, 16u),      // fifo depth
                       ::testing::Values(1u, 2u, 4u))); // mapper width

TEST(FrontendBackpressure, TinyFifosStallButNeverDrop) {
  FrontendConfig fc;
  fc.filter.width = 4;
  fc.filter.fifo_depth = 2;
  fc.cdc_depth = 2;
  Frontend f(fc);
  f.filter().table().program(isa::kOpLoad, 3, 0b1, kDpLsq);
  f.allocator().configure_se(0, 0b0001, SchedPolicy::kFixed, 0);
  OpenQueues q;

  u64 offered = 0, refused = 0, drained = 0;
  for (Cycle now = 0; now < 3000; ++now) {
    for (u32 lane = 0; lane < 4; ++lane) {
      if (f.can_commit(lane, load_inst(offered))) {
        f.on_commit(lane, load_inst(offered), now);
        ++offered;
      } else {
        ++refused;
        break;
      }
    }
    f.tick_fast(now, q, false);
    // Slow consumer: drain the CDC every third cycle only.
    if (now % 3 == 0 && !f.cdc().empty()) {
      f.cdc().pop();
      ++drained;
    }
  }
  EXPECT_GT(refused, 0u);  // back-pressure reached commit
  // Everything still in flight is accounted: offered = drained + buffered.
  const u64 in_flight = f.filter().buffered() + f.cdc().size();
  EXPECT_EQ(offered, drained + in_flight);
}

TEST(FrontendStall, AttributionMatchesDeepestFullStage) {
  // With an empty CDC but a full lane FIFO, the mapper is the cause; once
  // the CDC fills too, the cause becomes kCdc (or kEngines when hinted).
  FrontendConfig fc;
  fc.filter.width = 1;
  fc.filter.fifo_depth = 2;
  fc.cdc_depth = 2;
  Frontend f(fc);
  f.filter().table().program(isa::kOpLoad, 3, 0b1, kDpLsq);
  f.allocator().configure_se(0, 0b0001, SchedPolicy::kFixed, 0);
  OpenQueues q;

  // Fill lane FIFO without ever ticking: refusals attribute to the mapper.
  trace::TraceInst ti = load_inst(0);
  Cycle now = 0;
  while (f.can_commit(0, ti)) f.on_commit(0, ti, now);
  const auto& by_cause = f.stats().stall_by_cause;
  EXPECT_GE(by_cause[static_cast<size_t>(StallCause::kMapper)], 1u);

  // Now fill the CDC (2 entries); the arbiter drained the lane FIFO into it,
  // so refill the FIFO before probing. Cause moves to kCdc.
  f.tick_fast(now++, q, false);
  f.tick_fast(now++, q, false);
  EXPECT_TRUE(f.cdc().full());
  while (f.can_commit(0, ti)) f.on_commit(0, ti, now);
  EXPECT_GE(by_cause[static_cast<size_t>(StallCause::kCdc)], 1u);

  // With the engines-blocked hint, the same refusal blames the engines.
  f.tick_fast(now++, q, /*engines_blocked=*/true);
  EXPECT_FALSE(f.can_commit(0, ti));
  EXPECT_GE(by_cause[static_cast<size_t>(StallCause::kEngines)], 1u);
}

}  // namespace
}  // namespace fg::core
