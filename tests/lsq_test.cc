// Tests for the load/store queues: occupancy, store-to-load forwarding and
// partial-overlap ordering.
#include "src/boom/lsq.h"

#include <gtest/gtest.h>

#include "src/boom/core.h"
#include "src/soc/experiment.h"

namespace fg::boom {
namespace {

LsqConfig small_cfg(bool stlf) {
  LsqConfig c;
  c.ldq_entries = 4;
  c.stq_entries = 4;
  c.store_load_forwarding = stlf;
  c.forward_latency = 1;
  return c;
}

TEST(Lsq, OccupancyTracksDispatchAndCommit) {
  LoadStoreQueues q(small_cfg(true));
  for (u64 i = 0; i < 4; ++i) q.dispatch_store(0x1000 + 8 * i, 8, 0, i);
  EXPECT_TRUE(q.stq_full());
  q.commit_store();
  EXPECT_FALSE(q.stq_full());
  EXPECT_EQ(q.stq_used(), 3u);
  EXPECT_EQ(*q.committed_top(), 0x1000u);

  for (int i = 0; i < 4; ++i) q.note_load_dispatched();
  EXPECT_TRUE(q.ldq_full());
  q.commit_load();
  EXPECT_EQ(q.ldq_used(), 3u);
}

TEST(Lsq, FullContainmentForwards) {
  LoadStoreQueues q(small_cfg(true));
  q.dispatch_store(0x2000, 8, /*data_ready=*/10, 0);
  // Exact match.
  LoadPlan p = q.dispatch_load(0x2000, 8, /*start=*/5);
  EXPECT_TRUE(p.forwarded);
  EXPECT_EQ(p.earliest_start, 11u);  // max(5, 10) + fwd latency
  // Contained narrower load.
  p = q.dispatch_load(0x2004, 4, 20);
  EXPECT_TRUE(p.forwarded);
  EXPECT_EQ(p.earliest_start, 21u);  // data already ready
  EXPECT_EQ(q.stats().forwards, 2u);
}

TEST(Lsq, PartialOverlapDelaysWithoutForwarding) {
  LoadStoreQueues q(small_cfg(true));
  q.dispatch_store(0x3004, 8, /*data_ready=*/50, 0);
  const LoadPlan p = q.dispatch_load(0x3000, 8, /*start=*/5);  // straddles
  EXPECT_FALSE(p.forwarded);
  EXPECT_EQ(p.earliest_start, 51u);
  EXPECT_EQ(q.stats().partial_stalls, 1u);
}

TEST(Lsq, DisjointLoadUnaffected) {
  LoadStoreQueues q(small_cfg(true));
  q.dispatch_store(0x4000, 8, 100, 0);
  const LoadPlan p = q.dispatch_load(0x5000, 8, 5);
  EXPECT_FALSE(p.forwarded);
  EXPECT_EQ(p.earliest_start, 5u);
}

TEST(Lsq, YoungestMatchingStoreWins) {
  LoadStoreQueues q(small_cfg(true));
  q.dispatch_store(0x6000, 8, /*data_ready=*/10, 0);
  q.dispatch_store(0x6000, 8, /*data_ready=*/30, 1);  // younger overwrite
  const LoadPlan p = q.dispatch_load(0x6000, 8, 5);
  EXPECT_TRUE(p.forwarded);
  EXPECT_EQ(p.earliest_start, 31u);  // the younger store's data
}

TEST(Lsq, ForwardingDisabledIgnoresStq) {
  LoadStoreQueues q(small_cfg(false));
  q.dispatch_store(0x7000, 8, 10, 0);
  const LoadPlan p = q.dispatch_load(0x7000, 8, 5);
  EXPECT_FALSE(p.forwarded);
  EXPECT_EQ(p.earliest_start, 5u);  // no ordering applied either
  EXPECT_EQ(q.stats().forwards, 0u);
}

TEST(Lsq, CommittedTopExposedForBypass) {
  // Paper footnote 3: the bypass reads the top of the STQ at commit.
  LoadStoreQueues q(small_cfg(true));
  EXPECT_FALSE(q.committed_top().has_value());
  q.dispatch_store(0x8000, 8, 0, 0);
  q.dispatch_store(0x8008, 8, 0, 1);
  q.commit_store();
  EXPECT_EQ(*q.committed_top(), 0x8000u);
  q.commit_store();
  EXPECT_EQ(*q.committed_top(), 0x8008u);
}

TEST(Lsq, EndToEndForwardingNeverSlowsTheCore) {
  // Store-heavy profile: enabling forwarding should only reduce cycles.
  for (const char* prof : {"x264", "dedup"}) {
    trace::WorkloadConfig wl;
    wl.profile = trace::profile_by_name(prof);
    wl.seed = 3;
    wl.n_insts = 30000;
    soc::SocConfig sc = soc::table2_soc();
    sc.core.store_load_forwarding = false;
    const Cycle off = soc::run_baseline_cycles(wl, sc);
    sc.core.store_load_forwarding = true;
    const Cycle on = soc::run_baseline_cycles(wl, sc);
    EXPECT_LE(on, off) << prof;
  }
}

TEST(Lsq, CoreCountsForwardsInStats) {
  trace::WorkloadConfig wl;
  wl.profile = trace::profile_by_name("x264");
  wl.seed = 3;
  wl.n_insts = 20000;
  soc::SocConfig sc = soc::table2_soc();
  sc.core.store_load_forwarding = true;
  trace::WorkloadGen src(wl);
  mem::MemHierarchy mem(sc.mem);
  BoomCore core(sc.core, mem, src);
  core.run_to_end(nullptr, 10'000'000);
  EXPECT_GT(core.stats().stlf_forwards, 0u);
  EXPECT_EQ(core.stats().stlf_forwards, core.lsq().stats().forwards);
}

}  // namespace
}  // namespace fg::boom
