// Tests for the explicit rename stage (RAT + free list).
#include "src/boom/rename.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace fg::boom {
namespace {

TEST(Rename, ResetMapsArchRegistersIdentity) {
  RenameStage r(128);
  for (u8 a = 0; a < 32; ++a) EXPECT_EQ(r.map(a), a);
  EXPECT_EQ(r.free_count(), 96u);
}

TEST(Rename, SourcesReadCurrentMapping) {
  RenameStage r(64);
  const Renamed w1 = r.rename(/*rd=*/5, /*rs1=*/kNoReg, /*rs2=*/kNoReg);
  EXPECT_NE(w1.pd, kNoPreg);
  const Renamed rd = r.rename(kNoReg, /*rs1=*/5, /*rs2=*/5);
  EXPECT_EQ(rd.ps1, w1.pd);
  EXPECT_EQ(rd.ps2, w1.pd);
}

TEST(Rename, ZeroRegisterNeverRenamed) {
  RenameStage r(64);
  const Renamed w = r.rename(/*rd=*/0, /*rs1=*/0, /*rs2=*/kNoReg);
  EXPECT_EQ(w.pd, kNoPreg);
  EXPECT_EQ(w.ps1, kNoPreg);
  EXPECT_EQ(r.free_count(), 32u);
}

TEST(Rename, WriteAfterWriteAllocatesFreshPreg) {
  RenameStage r(64);
  const Renamed w1 = r.rename(7, kNoReg, kNoReg);
  const Renamed w2 = r.rename(7, kNoReg, kNoReg);
  EXPECT_NE(w1.pd, w2.pd);
  EXPECT_EQ(w2.stale, w1.pd);
  EXPECT_EQ(r.map(7), w2.pd);
}

TEST(Rename, CommitFreesStaleMapping) {
  RenameStage r(34);  // exactly two spare pregs
  const Renamed w1 = r.rename(3, kNoReg, kNoReg);
  const Renamed w2 = r.rename(3, kNoReg, kNoReg);
  EXPECT_FALSE(r.can_allocate());
  r.commit(w1);  // frees w1.stale (arch preg 3)
  EXPECT_TRUE(r.can_allocate());
  const Renamed w3 = r.rename(3, kNoReg, kNoReg);
  EXPECT_EQ(w3.stale, w2.pd);
}

TEST(Rename, RollbackRestoresMappingAndPool) {
  RenameStage r(64);
  const u16 before = r.map(9);
  const size_t free_before = r.free_count();
  const Renamed w = r.rename(9, kNoReg, kNoReg);
  EXPECT_NE(r.map(9), before);
  r.rollback(9, w);
  EXPECT_EQ(r.map(9), before);
  EXPECT_EQ(r.free_count(), free_before);
}

TEST(Rename, ConservationUnderRandomChurn) {
  // Property: pregs are neither lost nor duplicated across arbitrary
  // rename/commit sequences (dispatch order committed FIFO).
  RenameStage r(128);
  Rng rng(99);
  std::vector<Renamed> inflight;
  for (int step = 0; step < 20000; ++step) {
    const bool do_rename = r.can_allocate() && (inflight.size() < 60) &&
                           (inflight.empty() || rng.chance(0.6));
    if (do_rename) {
      const u8 rd = static_cast<u8>(rng.range(1, 31));
      inflight.push_back(r.rename(rd, static_cast<u8>(rng.below(32)),
                                  static_cast<u8>(rng.below(32))));
    } else if (!inflight.empty()) {
      r.commit(inflight.front());
      inflight.erase(inflight.begin());
    }
    // Invariant: free + in-flight allocations + 32 architectural = total.
    size_t allocated = 0;
    for (const Renamed& x : inflight) {
      if (x.pd != kNoPreg) ++allocated;
    }
    EXPECT_EQ(r.free_count() + allocated + 32, 128u);
  }
}

}  // namespace
}  // namespace fg::boom
