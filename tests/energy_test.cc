// Tests for the energy-overhead model (Section IV-G's closing claim).
#include "src/area/energy_model.h"

#include <gtest/gtest.h>

namespace fg::area {
namespace {

CoreSpec boom_core() {
  CoreSpec c;
  c.name = "BOOM";
  c.freq_ghz = kBoomFreqGhz;
  c.tech_nm = 14;
  c.area_native_mm2 = 1.11;
  c.ipc = kBoomIpc;
  c.commit_width = 4;
  return c;
}

TEST(Energy, OverheadIsPositiveAndFinite) {
  const CoreSpec core = boom_core();
  const EnergyBreakdown e =
      estimate_energy(core, per_core_cost(core), ActivityFactors{}, 1.6);
  EXPECT_GT(e.core_mw, 0.0);
  EXPECT_GT(e.fireguard_mw, 0.0);
  EXPECT_GT(e.overhead_pct, 0.0);
  EXPECT_LT(e.overhead_pct, 100.0);
}

TEST(Energy, EnergyOverheadBelowAreaOverhead) {
  // The paper's claim: most of FireGuard's area (the µcores) runs at half
  // clock with <1 duty, so power overhead% < area overhead%.
  const CoreSpec core = boom_core();
  const EnergyBreakdown e =
      estimate_energy(core, per_core_cost(core), ActivityFactors{}, 1.6);
  EXPECT_LT(e.overhead_pct, e.area_overhead_pct);
}

TEST(Energy, TwoDomainSplitSavesOverSingleDomain) {
  const CoreSpec core = boom_core();
  const EnergyBreakdown e =
      estimate_energy(core, per_core_cost(core), ActivityFactors{}, 1.6);
  EXPECT_LT(e.overhead_pct, e.single_domain_overhead_pct);
}

TEST(Energy, SlowerFabricClockMonotonicallyCheaper) {
  const CoreSpec core = boom_core();
  const FireGuardCost cost = per_core_cost(core);
  double prev = 1e9;
  for (const double slow : {3.2, 2.4, 1.6, 0.8}) {
    const double o =
        estimate_energy(core, cost, ActivityFactors{}, slow).overhead_pct;
    EXPECT_LT(o, prev) << slow;
    prev = o;
  }
}

TEST(Energy, LeakageOnlyWhenIdle) {
  // With zero activity everywhere, only leakage remains and it is
  // proportional to area — overhead equals the area ratio scaled by the
  // leakage share.
  ActivityFactors idle;
  idle.main_core = idle.filter = idle.mapper = idle.cdc = idle.ucores =
      idle.noc = 0.0;
  const CoreSpec core = boom_core();
  const FireGuardCost cost = per_core_cost(core);
  const EnergyBreakdown e = estimate_energy(core, cost, idle, 1.6);
  for (const BlockPower& b : e.blocks) EXPECT_EQ(b.dynamic_mw, 0.0) << b.name;
  EXPECT_NEAR(e.overhead_pct, cost.pct_of_core, 1e-6);
}

TEST(Energy, ActivityFromRunClampsAndScales) {
  const ActivityFactors af = activity_from_run(1.3, 4, 0.35, 0.7);
  EXPECT_NEAR(af.filter, 1.3 / 4, 1e-9);
  EXPECT_NEAR(af.mapper, 1.3 * 0.35, 1e-9);
  EXPECT_NEAR(af.ucores, 0.7, 1e-9);
  // Degenerate inputs clamp.
  const ActivityFactors hot = activity_from_run(8.0, 4, 2.0, 1.5);
  EXPECT_EQ(hot.filter, 1.0);
  EXPECT_EQ(hot.mapper, 1.0);
  EXPECT_EQ(hot.ucores, 1.0);
}

TEST(Energy, Table3RowsAllBelowAreaOverhead) {
  const auto rows = table3_energy_rows();
  ASSERT_EQ(rows.size(), 4u);
  for (const SocEnergyRow& r : rows) {
    EXPECT_GT(r.energy_overhead_pct, 0.0) << r.soc;
    EXPECT_LT(r.energy_overhead_pct, r.area_overhead_pct) << r.soc;
    EXPECT_LT(r.energy_overhead_pct, r.single_domain_pct) << r.soc;
  }
  // Commercial cores have lower relative overhead than the BOOM prototype,
  // mirroring the area trend of Table III.
  const double boom = rows[0].energy_overhead_pct;
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i].energy_overhead_pct, boom) << rows[i].soc;
  }
}

TEST(Energy, ConstantsScaleLinearly) {
  // Doubling both power densities doubles absolute power but leaves the
  // overhead ratio untouched (the model's node-independence property).
  const CoreSpec core = boom_core();
  const FireGuardCost cost = per_core_cost(core);
  PowerConstants pc2;
  pc2.k_dyn_mw_per_mm2_ghz *= 2;
  pc2.k_leak_mw_per_mm2 *= 2;
  const EnergyBreakdown a = estimate_energy(core, cost, ActivityFactors{}, 1.6);
  const EnergyBreakdown b =
      estimate_energy(core, cost, ActivityFactors{}, 1.6, pc2);
  EXPECT_NEAR(b.core_mw, 2 * a.core_mw, 1e-9);
  EXPECT_NEAR(b.overhead_pct, a.overhead_pct, 1e-9);
}

}  // namespace
}  // namespace fg::area
