// Concurrency-contract tests: SweepRunner worker capping and BaselineCache
// once-semantics / in-flight-wait accounting when more callers than cores
// race on one key.
#include <gtest/gtest.h>

#include <barrier>
#include <thread>
#include <vector>

#include "src/soc/experiment.h"
#include "src/soc/figures.h"
#include "src/soc/sweep.h"

namespace fg::soc {
namespace {

u32 hw() { return std::max<u32>(1, std::thread::hardware_concurrency()); }

/// Requesting more jobs than the machine has cores must cap the worker
/// count at hardware concurrency while still honoring the request in
/// jobs().
TEST(Contention, SweepRunnerCapsWorkersAtHardwareConcurrency) {
  const u32 oversub = hw() * 2 + 3;
  SweepRunner runner(SweepConfig{oversub});
  EXPECT_EQ(runner.jobs(), oversub);
  EXPECT_EQ(runner.workers(), hw());
  SweepRunner one(SweepConfig{1});
  EXPECT_EQ(one.workers(), 1u);
}

/// More points than cores, all sharing one baseline key (identical workload
/// and core/mem config; only the kernel deployment differs): the cache must
/// run the baseline exactly once and every point must read the same cycles.
TEST(Contention, SharedBaselineKeyRunsOnceAcrossOversubscribedSweep) {
  const u32 n_points = hw() * 2 + 2;
  SweepRunner runner(SweepConfig{n_points});  // workers capped internally
  const trace::WorkloadConfig wl = paper_workload("swaptions", 2'000);
  for (u32 i = 0; i < n_points; ++i) {
    SweepPoint p;
    p.name = "contention/" + std::to_string(i);
    p.wl = wl;
    p.sc = table2_soc();
    // Different deployments, same baseline key (the baseline never runs the
    // kernels).
    p.sc.kernels = {deploy(i % 2 == 0 ? kernels::KernelKind::kPmc
                                      : kernels::KernelKind::kAsan,
                           1 + i % 3)};
    runner.add(std::move(p));
  }
  const std::vector<PointResult>& results = runner.run_all();
  ASSERT_EQ(results.size(), n_points);
  EXPECT_EQ(runner.baseline_cache().misses(), 1u);
  EXPECT_EQ(runner.baseline_cache().hits(), n_points - 1u);
  for (const PointResult& r : results) {
    EXPECT_TRUE(r.executed);
    EXPECT_EQ(r.baseline_cycles, results[0].baseline_cycles);
    EXPECT_GT(r.baseline_cycles, 0u);
  }
}

/// Direct cache contention: threads released together against one cold key.
/// Exactly one runs the baseline; everyone else hits; callers that arrived
/// while the run was in flight are counted as inflight_waits. The barrier
/// plus a multi-hundred-ms baseline window make the overlap deterministic
/// in practice even on a single-core machine (the waiter only needs to be
/// scheduled once during the run).
TEST(Contention, BaselineCacheCountsInflightWaitsUnderContention) {
  BaselineCache cache;
  const SocConfig sc = table2_soc();
  const trace::WorkloadConfig wl = paper_workload("streamcluster", 150'000);
  const u32 n_threads = std::max(4u, hw() + 2);

  std::barrier sync(n_threads);
  std::vector<Cycle> cycles(n_threads, 0);
  std::vector<int> ran(n_threads, 0);
  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (u32 t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      sync.arrive_and_wait();
      bool mine = false;
      cycles[t] = cache.get(wl, sc, &mine);
      ran[t] = mine ? 1 : 0;
    });
  }
  for (std::thread& th : threads) th.join();

  int ran_total = 0;
  for (const int r : ran) ran_total += r;
  EXPECT_EQ(ran_total, 1);  // once-semantics: exactly one executed it
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), n_threads - 1u);
  for (u32 t = 1; t < n_threads; ++t) EXPECT_EQ(cycles[t], cycles[0]);
  EXPECT_GT(cycles[0], 0u);
  EXPECT_GE(cache.inflight_waits(), 1u);
  EXPECT_LE(cache.inflight_waits(), n_threads - 1u);
}

}  // namespace
}  // namespace fg::soc
