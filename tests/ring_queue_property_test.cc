// Model-based property tests for the RingQueue: randomized operation
// sequences checked against a std::deque reference, with explicit coverage
// of wrap-around at capacity and of the push_slot / clear paths the PR-3
// hot-loop rewrite leaned on.
#include <gtest/gtest.h>

#include <deque>

#include "src/common/ring_queue.h"
#include "src/common/rng.h"

namespace fg {
namespace {

TEST(RingQueueProperty, RandomOpsMatchDequeModel) {
  for (const size_t cap : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                           size_t{16}, size_t{64}}) {
    RingQueue<u64> q(cap);
    std::deque<u64> model;
    Rng rng(0xfeed0000 + cap);
    u64 next_val = 1;
    for (int step = 0; step < 20'000; ++step) {
      const u64 op = rng.below(100);
      if (op < 45) {  // push (via push or push_slot, both must model-match)
        ASSERT_EQ(q.full(), model.size() == cap);
        if (!q.full()) {
          if (rng.chance(0.5)) {
            q.push(next_val);
          } else {
            q.push_slot() = next_val;
          }
          model.push_back(next_val++);
        }
      } else if (op < 85) {  // pop
        ASSERT_EQ(q.empty(), model.empty());
        if (!q.empty()) {
          ASSERT_EQ(q.pop(), model.front());
          model.pop_front();
        }
      } else if (op < 90) {  // front
        if (!q.empty()) {
          ASSERT_EQ(q.front(), model.front());
        }
      } else if (op < 98) {  // random at()
        if (!q.empty()) {
          const size_t i = rng.below(model.size());
          ASSERT_EQ(q.at(i), model[i]);
        }
      } else {  // occasional clear
        q.clear();
        model.clear();
      }
      // O(1) occupancy counters stay exact through every operation mix.
      ASSERT_EQ(q.size(), model.size());
      ASSERT_EQ(q.capacity(), cap);
      ASSERT_EQ(q.free_slots(), cap - model.size());
      ASSERT_EQ(q.empty(), model.empty());
      ASSERT_EQ(q.full(), model.size() == cap);
    }
  }
}

/// Drive head/tail through many full wrap-arounds at exact capacity: fill
/// completely, drain completely, repeatedly, with the boundary offset by one
/// each round so every physical slot plays head and tail.
TEST(RingQueueProperty, WrapAroundAtCapacityPreservesFifoOrder) {
  constexpr size_t kCap = 5;
  RingQueue<u64> q(kCap);
  u64 in = 0;
  u64 out = 0;
  for (int round = 0; round < 50; ++round) {
    // Offset the ring pointers by one half-push/pop per round.
    q.push(in++);
    ASSERT_EQ(q.pop(), out++);
    while (!q.full()) q.push(in++);
    ASSERT_EQ(q.size(), kCap);
    ASSERT_EQ(q.free_slots(), 0u);
    // at() must see the same order a full drain produces.
    for (size_t i = 0; i < kCap; ++i) ASSERT_EQ(q.at(i), out + i);
    while (!q.empty()) ASSERT_EQ(q.pop(), out++);
    ASSERT_EQ(q.free_slots(), kCap);
  }
  ASSERT_EQ(in, out);
}

/// push_slot hands back the stale slot for in-place assignment; after a full
/// wrap the slot recycles an old element and the caller's overwrite must be
/// what pop returns.
TEST(RingQueueProperty, PushSlotRecyclesStaleSlotsAfterWrap) {
  RingQueue<u64> q(3);
  q.push(10);
  q.push(11);
  q.push(12);
  ASSERT_EQ(q.pop(), 10u);
  u64& slot = q.push_slot();  // physically the slot `10` lived in
  slot = 99;
  ASSERT_EQ(q.pop(), 11u);
  ASSERT_EQ(q.pop(), 12u);
  ASSERT_EQ(q.pop(), 99u);
  ASSERT_TRUE(q.empty());
}

TEST(RingQueueProperty, ClearResetsToPristine) {
  RingQueue<u64> q(4);
  q.push(1);
  q.push(2);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.free_slots(), 4u);
  // Still fully usable after clear, across the old head/tail positions.
  for (u64 v = 0; v < 4; ++v) q.push(v);
  EXPECT_TRUE(q.full());
  for (u64 v = 0; v < 4; ++v) EXPECT_EQ(q.pop(), v);
}

}  // namespace
}  // namespace fg
