// Tests for the superscalar mapper (footnote 5): two-phase allocator routing
// and the frontend's per-engine issue arbiter.
#include <gtest/gtest.h>

#include "src/core/frontend.h"
#include "src/soc/experiment.h"

namespace fg::core {
namespace {

class OpenQueues final : public QueueStatus {
 public:
  bool engine_queue_full(u32) const override { return false; }
  size_t engine_queue_free(u32) const override { return 32; }
};

Packet valid_packet(u8 gid, u64 seq) {
  Packet p;
  p.valid = true;
  p.gid_bitmap = static_cast<u16>(1u << gid);
  p.seq = seq;
  return p;
}

TEST(AllocatorPlan, AbandonedPlanLeavesSchedulingStateUntouched) {
  Allocator a;
  a.configure_se(0, 0b1111, SchedPolicy::kRoundRobin, /*gid=*/0);
  OpenQueues q;
  Packet p0 = valid_packet(0, 0);
  const u16 ses = a.plan(p0, q);
  EXPECT_NE(ses, 0);
  const u16 first_target = p0.ae_bitmap;
  // Abandon: re-planning yields the identical decision.
  Packet p1 = valid_packet(0, 1);
  a.plan(p1, q);
  EXPECT_EQ(p1.ae_bitmap, first_target);
  // Commit, then the next plan advances round-robin.
  a.commit_plan(ses);
  Packet p2 = valid_packet(0, 2);
  a.plan(p2, q);
  EXPECT_NE(p2.ae_bitmap, first_target);
}

TEST(AllocatorPlan, RouteEqualsPlanPlusCommit) {
  Allocator a, b;
  for (Allocator* al : {&a, &b}) {
    al->configure_se(0, 0b0110, SchedPolicy::kRoundRobin, 0);
  }
  OpenQueues q;
  for (int i = 0; i < 8; ++i) {
    Packet pa = valid_packet(0, static_cast<u64>(i));
    Packet pb = pa;
    a.route(pa, q);
    const u16 ses = b.plan(pb, q);
    b.commit_plan(ses);
    EXPECT_EQ(pa.ae_bitmap, pb.ae_bitmap) << i;
  }
}

TEST(MapperWidth, WideMapperDrainsFasterThanScalar) {
  // Fill all four lanes for several commits, then count fast cycles to drain
  // the filter through the mapper at widths 1 and 2.
  OpenQueues q;
  auto drain_cycles = [&](u32 width) {
    FrontendConfig fc;
    fc.mapper_width = width;
    fc.filter.width = 4;
    Frontend f(fc);
    // All loads interesting to GID 0; two engine groups round-robin.
    f.filter().table().program(isa::kOpLoad, 3, 0b1, /*dp_sel=*/1);
    f.allocator().configure_se(0, 0b1111, SchedPolicy::kRoundRobin, 0);
    trace::TraceInst ti;
    ti.enc = isa::make_load(3, 1, 2, 0);
    ti.cls = isa::InstClass::kLoad;
    for (u32 c = 0; c < 8; ++c) {
      for (u32 lane = 0; lane < 4; ++lane) {
        EXPECT_TRUE(f.can_commit(lane, ti));
        f.on_commit(lane, ti, c);
      }
    }
    Cycle t = 0;
    while (f.filter().buffered() > 0 && t < 1000) {
      f.tick_fast(t, q, false);
      // Drain the CDC so it never back-pressures this measurement.
      while (!f.cdc().empty()) f.cdc().pop();
      ++t;
    }
    return t;
  };
  const Cycle scalar = drain_cycles(1);
  const Cycle wide = drain_cycles(2);
  EXPECT_LT(wide, scalar);
  EXPECT_GE(wide, scalar / 2);  // at most 2x faster: same packet count
}

TEST(MapperWidth, SameEngineConflictSerializes) {
  // A fixed-policy SE pins every packet to one engine, so a 4-wide mapper
  // still issues exactly one packet per cycle (port conflict).
  OpenQueues q;
  FrontendConfig fc;
  fc.mapper_width = 4;
  fc.filter.width = 4;
  Frontend f(fc);
  f.filter().table().program(isa::kOpLoad, 3, 0b1, 1);
  f.allocator().configure_se(0, 0b0001, SchedPolicy::kFixed, 0);
  trace::TraceInst ti;
  ti.enc = isa::make_load(3, 1, 2, 0);
  ti.cls = isa::InstClass::kLoad;
  for (u32 lane = 0; lane < 4; ++lane) f.on_commit(lane, ti, 0);
  f.tick_fast(0, q, false);
  EXPECT_EQ(f.cdc().size(), 1u);  // only one issued despite width 4
  EXPECT_GE(f.stats().mapper_port_conflicts, 1u);
}

TEST(MapperWidth, EndToEndPacketConservation) {
  // Full-SoC property: widening the mapper must not lose or duplicate
  // packets, and must not slow anything down.
  for (const u32 width : {1u, 2u, 4u}) {
    trace::WorkloadConfig wl;
    wl.profile = trace::profile_by_name("x264");
    wl.seed = 7;
    wl.n_insts = 20000;
    soc::SocConfig sc = soc::table2_soc();
    sc.frontend.mapper_width = width;
    sc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4)};
    const soc::RunResult r = soc::run_fireguard(wl, sc);
    EXPECT_GT(r.packets, 0u) << width;
    EXPECT_GT(r.committed, 0u) << width;
  }
}

TEST(MapperWidth, WiderMapperNeverSlower) {
  trace::WorkloadConfig wl;
  wl.profile = trace::profile_by_name("bodytrack");
  wl.seed = 11;
  wl.n_insts = 30000;
  soc::SocConfig sc = soc::table2_soc();
  sc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 6)};
  sc.frontend.mapper_width = 1;
  const Cycle scalar = soc::run_fireguard(wl, sc).cycles;
  sc.frontend.mapper_width = 4;
  const Cycle wide = soc::run_fireguard(wl, sc).cycles;
  // Allow a tiny tolerance: scheduling-order changes can shift drain tails.
  EXPECT_LE(static_cast<double>(wide), static_cast<double>(scalar) * 1.01);
}

}  // namespace
}  // namespace fg::core
