// The four programming models must be functionally identical and differ only
// in data-hazard cost, with the paper's ordering: conventional slowest,
// hybrid uniformly best at both high and low queue occupancy.
#include <gtest/gtest.h>

#include "src/kernels/progmodel.h"
#include "src/ucore/ucore.h"

namespace fg::kernels {
namespace {

/// A tiny counting body: sums the popped word into x20.
void counting_body(ucore::UProgramBuilder& b, u8 first) {
  b.add(20, 20, first);
  b.addi(21, 21, 1);
}

ucore::UProgram make(ProgModel m, u32 unroll = 8) {
  ucore::UProgramBuilder b(prog_model_name(m));
  b.li(20, 0);
  b.li(21, 0);
  emit_dispatch_loop(b, m, /*first_word_off=*/0, counting_body, unroll);
  return b.build();
}

core::Packet pk(u64 pc) {
  core::Packet p;
  p.valid = true;
  p.pc = pc;
  return p;
}

struct Totals {
  u64 sum = 0;
  u64 count = 0;
  Cycle cycles = 0;
};

/// Feed `n` packets in bursts of `burst`, run to quiescence, report totals.
Totals run_model(ProgModel m, int n, int burst) {
  ucore::USharedMemory mem;
  ucore::UCore c(ucore::UCoreConfig{}, 0, &mem, nullptr);
  c.load_program(make(m));
  Cycle t = 0;
  int fed = 0;
  while (fed < n || !c.quiescent()) {
    if (c.quiescent() && fed < n) {
      for (int i = 0; i < burst && fed < n; ++i, ++fed) {
        c.push_input(pk(static_cast<u64>(fed) + 1));
      }
    }
    c.tick(t++);
    if (t >= 10'000'000u) {
      ADD_FAILURE() << "timeout in " << prog_model_name(m);
      break;
    }
  }
  Totals r;
  r.sum = c.reg(20);
  r.count = c.reg(21);
  r.cycles = c.stats().busy_cycles;
  return r;
}

constexpr int kN = 512;

class AllModels : public ::testing::TestWithParam<ProgModel> {};

TEST_P(AllModels, ProcessesEveryPacketExactlyOnce) {
  for (int burst : {1, 3, 8, 32}) {
    const Totals r = run_model(GetParam(), kN, burst);
    EXPECT_EQ(r.count, static_cast<u64>(kN)) << "burst " << burst;
    EXPECT_EQ(r.sum, static_cast<u64>(kN) * (kN + 1) / 2) << "burst " << burst;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, AllModels,
                         ::testing::Values(ProgModel::kConventional,
                                           ProgModel::kDuff,
                                           ProgModel::kUnrolled,
                                           ProgModel::kHybrid));

TEST(ProgModels, ConventionalSlowestUnderBacklog) {
  const Totals conv = run_model(ProgModel::kConventional, kN, 32);
  const Totals duff = run_model(ProgModel::kDuff, kN, 32);
  const Totals unrolled = run_model(ProgModel::kUnrolled, kN, 32);
  const Totals hybrid = run_model(ProgModel::kHybrid, kN, 32);
  EXPECT_GT(conv.cycles, duff.cycles);
  EXPECT_GE(duff.cycles, unrolled.cycles);
  EXPECT_GE(unrolled.cycles, hybrid.cycles);
}

TEST(ProgModels, HybridBeatsUnrolledOnPartialQueues) {
  // With small bursts the unrolled fast path never engages; Duff's device
  // (inside hybrid) still amortizes the count read.
  const Totals unrolled = run_model(ProgModel::kUnrolled, kN, 5);
  const Totals hybrid = run_model(ProgModel::kHybrid, kN, 5);
  EXPECT_LE(hybrid.cycles, unrolled.cycles);
}

TEST(ProgModels, HybridBestUnderLoad) {
  // Under backlog (burst >= unroll) hybrid must beat everything; at partial
  // occupancy it tracks Duff's device within the threshold-test overhead
  // (one extra compare-and-branch per count read).
  for (int burst : {16, 32}) {
    const Totals hybrid = run_model(ProgModel::kHybrid, kN, burst);
    for (ProgModel m : {ProgModel::kConventional, ProgModel::kDuff,
                        ProgModel::kUnrolled}) {
      const Totals other = run_model(m, kN, burst);
      EXPECT_LE(hybrid.cycles, other.cycles + kN / 16)
          << prog_model_name(m) << " burst " << burst;
    }
  }
  for (int burst : {2, 6}) {
    const Totals hybrid = run_model(ProgModel::kHybrid, kN, burst);
    const Totals duff = run_model(ProgModel::kDuff, kN, burst);
    const Totals conv = run_model(ProgModel::kConventional, kN, burst);
    EXPECT_LE(hybrid.cycles, conv.cycles + 8) << "burst " << burst;
    EXPECT_LE(hybrid.cycles, duff.cycles * 5 / 4) << "burst " << burst;
  }
}

TEST(ProgModels, DuffProcessesExactCountPerRead) {
  // Feed 5 packets (< unroll): Duff must consume all with one switch.
  const Totals r = run_model(ProgModel::kDuff, 5, 5);
  EXPECT_EQ(r.count, 5u);
}

TEST(ProgModels, Names) {
  EXPECT_STREQ(prog_model_name(ProgModel::kConventional), "conventional");
  EXPECT_STREQ(prog_model_name(ProgModel::kDuff), "duff");
  EXPECT_STREQ(prog_model_name(ProgModel::kUnrolled), "unrolled");
  EXPECT_STREQ(prog_model_name(ProgModel::kHybrid), "hybrid");
}

}  // namespace
}  // namespace fg::kernels
