// The fgsim exit-code contract (tools/cli/cli.h): 0 ok, 1 experiment
// failure, 2 usage error, 3 I/O error — consistent across subcommands, so
// scripts and CI can branch on the class of failure without scraping
// stderr. Spawns the real binary; skipped when tools aren't built.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#if !defined(_WIN32)
#include <sys/wait.h>
#endif

#include "src/api/spec.h"
#include "tools/cli/cli.h"

namespace fg {
namespace {

#if !defined(FGSIM_BINARY) || defined(_WIN32)

TEST(CliExitCodes, RequiresToolsBuild) {
  GTEST_SKIP() << "no fgsim binary to spawn (tools off or no POSIX shell)";
}

#else

class CliExitCodesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "cli_exit_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    std::filesystem::create_directories(dir_, ec);
    ASSERT_FALSE(ec) << ec.message();
  }

  // Run `fgsim <args>` with output discarded; returns the exit code.
  static int fgsim(const std::string& args) {
    const std::string cmd =
        std::string(FGSIM_BINARY) + " " + args + " >/dev/null 2>&1";
    const int st = std::system(cmd.c_str());
    return WIFEXITED(st) ? WEXITSTATUS(st) : -1;
  }

  // A one-point ~600-instruction spec file (sweep-free: fast).
  std::string write_tiny_spec() {
    api::ExperimentSpec spec = api::default_spec();
    spec.name = "exit-codes";
    spec.sweep.clear();
    std::string err;
    EXPECT_TRUE(api::apply_set(&spec, "trace_len", "600", &err)) << err;
    const std::string path = dir_ + "/tiny.json";
    std::ofstream out(path);
    out << api::spec_to_json(spec) << "\n";
    EXPECT_TRUE(out.good());
    return path;
  }

  std::string dir_;
};

TEST_F(CliExitCodesTest, UsageErrorsExitTwo) {
  EXPECT_EQ(fgsim("frobnicate"), cli::kExitUsage);  // unknown command
  EXPECT_EQ(fgsim("run --no-such-flag"), cli::kExitUsage);
  EXPECT_EQ(fgsim("sweep"), cli::kExitUsage);     // --spec missing
  EXPECT_EQ(fgsim("campaign"), cli::kExitUsage);  // --store missing
  EXPECT_EQ(fgsim("campaign --store " + dir_ + "/s --spec " +
                  write_tiny_spec() + " --max-attempts=0"),
            cli::kExitUsage);
  // Malformed spec content is a usage error, not an I/O error.
  const std::string bad = dir_ + "/bad.json";
  std::ofstream(bad) << "{\"this is\": not json";
  EXPECT_EQ(fgsim("run --spec " + bad), cli::kExitUsage);
  EXPECT_EQ(fgsim("campaign --store " + dir_ + "/s --spec " + bad),
            cli::kExitUsage);
}

TEST_F(CliExitCodesTest, IoErrorsExitThree) {
  EXPECT_EQ(fgsim("run --spec " + dir_ + "/no_such.json"), cli::kExitIo);
  EXPECT_EQ(fgsim("sweep --spec " + dir_ + "/no_such.json"), cli::kExitIo);
  EXPECT_EQ(fgsim("spec --spec " + dir_ + "/no_such.json"), cli::kExitIo);
  EXPECT_EQ(fgsim("campaign --store " + dir_ + "/s --spec " + dir_ +
                  "/no_such.json"),
            cli::kExitIo);
  // A store rooted inside a plain file cannot be created.
  std::ofstream(dir_ + "/file") << "x";
  EXPECT_EQ(fgsim("campaign --spec " + write_tiny_spec() + " --store " +
                  dir_ + "/file/store"),
            cli::kExitIo);
}

TEST_F(CliExitCodesTest, CampaignSuccessAndAuditExitZero) {
  const std::string spec = write_tiny_spec();
  const std::string store = dir_ + "/store";
  EXPECT_EQ(fgsim("campaign --spec " + spec + " --store " + store +
                  " --no-baseline --in-process --quiet"),
            cli::kExitOk);
  // Resume is also clean (and does no work — covered by campaign_test).
  EXPECT_EQ(fgsim("campaign --spec " + spec + " --store " + store +
                  " --no-baseline --in-process --quiet"),
            cli::kExitOk);
  EXPECT_EQ(fgsim("campaign --store " + store + " --audit"), cli::kExitOk);
}

TEST_F(CliExitCodesTest, FailedPointsExitOne) {
  // Every attempt of point 0 fails by injection: the campaign completes but
  // reports the failed point through the exit code.
  ::setenv("FG_FAULT", "fail@point:0x99", 1);
  const int rc = fgsim("campaign --spec " + write_tiny_spec() + " --store " +
                       dir_ + "/store --no-baseline --in-process " +
                       "--max-attempts=1 --backoff-ms=1 --quiet");
  ::unsetenv("FG_FAULT");
  EXPECT_EQ(rc, cli::kExitFailure);
}

TEST_F(CliExitCodesTest, CorruptStoreAuditExitsOne) {
  const std::string store = dir_ + "/store";
  ASSERT_EQ(fgsim("campaign --spec " + write_tiny_spec() + " --store " +
                  store + " --no-baseline --in-process --quiet"),
            cli::kExitOk);
  // Corrupt the single published entry, then audit.
  bool clobbered = false;
  for (const auto& shard :
       std::filesystem::directory_iterator(store + "/objects")) {
    for (const auto& entry : std::filesystem::directory_iterator(shard)) {
      std::ofstream(entry.path()) << "garbage";
      clobbered = true;
    }
  }
  ASSERT_TRUE(clobbered);
  EXPECT_EQ(fgsim("campaign --store " + store + " --audit"),
            cli::kExitFailure);
  // The corrupt entry was quarantined; a re-audit is clean again.
  EXPECT_EQ(fgsim("campaign --store " + store + " --audit"), cli::kExitOk);
}

TEST_F(CliExitCodesTest, ServeFamilyUsageErrorsExitTwo) {
  EXPECT_EQ(fgsim("serve"), cli::kExitUsage);  // --store/--socket missing
  EXPECT_EQ(fgsim("serve --store " + dir_ + "/s"), cli::kExitUsage);
  EXPECT_EQ(fgsim("serve --store " + dir_ + "/s --socket " + dir_ +
                  "/fg.sock --max-attempts=0"),
            cli::kExitUsage);
  EXPECT_EQ(fgsim("serve --no-such-flag"), cli::kExitUsage);
  EXPECT_EQ(fgsim("submit"), cli::kExitUsage);  // --spec missing
  EXPECT_EQ(fgsim("submit --spec " + write_tiny_spec()),
            cli::kExitUsage);  // --socket missing, no FG_SOCKET
  EXPECT_EQ(fgsim("submit --spec " + write_tiny_spec() + " --set notkey"),
            cli::kExitUsage);
  EXPECT_EQ(fgsim("jobs --no-such-flag"), cli::kExitUsage);
  EXPECT_EQ(fgsim("jobs --cancel=notanumber"), cli::kExitUsage);
  EXPECT_EQ(fgsim("status --no-such-flag"), cli::kExitUsage);
  EXPECT_EQ(fgsim("store"), cli::kExitUsage);  // subcommand missing
  EXPECT_EQ(fgsim("store frobnicate"), cli::kExitUsage);
  EXPECT_EQ(fgsim("store stats"), cli::kExitUsage);  // --store missing
  // Malformed spec content stays a usage error through submit too.
  const std::string bad = dir_ + "/bad.json";
  std::ofstream(bad) << "{\"this is\": not json";
  EXPECT_EQ(fgsim("submit --spec " + bad + " --socket " + dir_ + "/fg.sock"),
            cli::kExitUsage);
}

TEST_F(CliExitCodesTest, DaemonNotRunningExitsThree) {
  // No daemon was ever started: the socket path simply doesn't exist.
  const std::string sock = " --socket " + dir_ + "/no_daemon.sock";
  EXPECT_EQ(fgsim("submit --spec " + write_tiny_spec() + sock), cli::kExitIo);
  EXPECT_EQ(fgsim("jobs" + sock), cli::kExitIo);
  EXPECT_EQ(fgsim("status" + sock), cli::kExitIo);
  // A socket path that exists but is a plain file is just as dead.
  std::ofstream(dir_ + "/notasocket") << "x";
  EXPECT_EQ(fgsim("status --socket " + dir_ + "/notasocket"), cli::kExitIo);
  // And the daemon itself refuses to listen there (it won't unlink a
  // non-socket file).
  EXPECT_EQ(fgsim("serve --store " + dir_ + "/s --socket " + dir_ +
                  "/notasocket"),
            cli::kExitIo);
  // A store rooted inside a plain file cannot be created.
  EXPECT_EQ(fgsim("serve --store " + dir_ + "/notasocket/store --socket " +
                  dir_ + "/fg.sock"),
            cli::kExitIo);
  EXPECT_EQ(fgsim("store stats --store " + dir_ + "/notasocket/store"),
            cli::kExitIo);
  EXPECT_EQ(fgsim("submit --spec " + dir_ + "/no_such.json" + sock),
            cli::kExitIo);
}

TEST_F(CliExitCodesTest, StoreStatsCleanExitsZeroQuarantineExitsOne) {
  const std::string store = dir_ + "/store";
  ASSERT_EQ(fgsim("campaign --spec " + write_tiny_spec() + " --store " +
                  store + " --no-baseline --in-process --quiet"),
            cli::kExitOk);
  EXPECT_EQ(fgsim("store stats --store " + store), cli::kExitOk);
  EXPECT_EQ(fgsim("store stats --store " + store + " --json"), cli::kExitOk);
  // Corrupt the published entry: the audit quarantines it and the exit
  // code says so — and KEEPS saying so while quarantine/ holds evidence.
  for (const auto& shard :
       std::filesystem::directory_iterator(store + "/objects")) {
    for (const auto& entry : std::filesystem::directory_iterator(shard)) {
      std::ofstream(entry.path()) << "garbage";
    }
  }
  EXPECT_EQ(fgsim("store stats --store " + store), cli::kExitFailure);
  EXPECT_EQ(fgsim("store stats --store " + store), cli::kExitFailure);
}

TEST_F(CliExitCodesTest, MalformedFaultEnvAbortsLoudly) {
  ::setenv("FG_FAULT", "not-a-fault-spec", 1);
  const std::string cmd = std::string(FGSIM_BINARY) + " campaign --spec " +
                          write_tiny_spec() + " --store " + dir_ +
                          "/store --no-baseline --in-process --quiet " +
                          ">/dev/null 2>" + dir_ + "/stderr.txt";
  const int st = std::system(cmd.c_str());
  ::unsetenv("FG_FAULT");
  EXPECT_FALSE(WIFEXITED(st) && WEXITSTATUS(st) == 0)
      << "malformed FG_FAULT must never be silently ignored";
  std::ifstream err_in(dir_ + "/stderr.txt");
  std::string text((std::istreambuf_iterator<char>(err_in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("FG_FAULT"), std::string::npos) << text;
  EXPECT_NE(text.find("malformed"), std::string::npos) << text;
}

#endif  // FGSIM_BINARY && !_WIN32

}  // namespace
}  // namespace fg
