// Section IV-F / Table III numbers from the analytical area model.
#include <gtest/gtest.h>

#include "src/area/area_model.h"

namespace fg::area {
namespace {

TEST(Physical, SectionIvFBreakdown) {
  const PhysicalBreakdown b = physical_breakdown();
  EXPECT_NEAR(b.transport_mm2, 0.043, 1e-9);
  EXPECT_NEAR(b.transport_pct_boom, 3.88, 0.05);   // paper: 3.88%
  EXPECT_NEAR(b.transport_pct_soc, 1.48, 0.05);    // paper: 1.48%
  EXPECT_NEAR(b.fireguard4_mm2, 0.287, 1e-9);      // paper: 0.287 mm^2
  EXPECT_NEAR(b.fireguard4_pct_boom, 25.9, 0.2);   // paper: 25.9%
  EXPECT_NEAR(b.fireguard4_pct_soc, 9.86, 0.1);    // paper: 9.86%
}

TEST(Scaling, NormalizedAreasMatchTable3) {
  EXPECT_NEAR(2.53 * scale_to_14nm(5), 22.55, 0.05);   // FireStorm
  EXPECT_NEAR(1.23 * scale_to_14nm(7), 3.61, 0.02);    // Cortex-A76
  EXPECT_NEAR(7.30 * scale_to_14nm(10), 22.63, 0.05);  // AlderLake-S
  EXPECT_DOUBLE_EQ(scale_to_14nm(14), 1.0);
}

TEST(Throughput, NormalizedAgainstBoom) {
  EXPECT_NEAR(normalized_throughput(1.3, 3.2), 1.0, 1e-12);
  EXPECT_NEAR(normalized_throughput(3.79, 3.2), 2.92, 0.01);  // FireStorm
  EXPECT_NEAR(normalized_throughput(2.83, 4.9), 3.33, 0.02);  // AlderLake
}

TEST(Ucores, CountsMatchTable3) {
  EXPECT_EQ(ucores_needed(1.0), 4u);                              // BOOM
  EXPECT_EQ(ucores_needed(normalized_throughput(3.79, 3.2)), 12u);  // FireStorm
  EXPECT_EQ(ucores_needed(1.27), 5u);                             // A76 (paper)
  EXPECT_EQ(ucores_needed(normalized_throughput(2.83, 4.9)), 13u);  // AlderLake
}

TEST(PerCore, BoomReference) {
  const CoreSpec boom{"BOOM", 3.2, 14, 1.11, 1.3, 4, 1};
  const FireGuardCost c = per_core_cost(boom);
  EXPECT_EQ(c.n_ucores, 4u);
  EXPECT_EQ(c.filter_width, 4u);
  EXPECT_NEAR(c.overhead_mm2, 0.287, 1e-9);
  EXPECT_NEAR(c.pct_of_core, 25.9, 0.3);  // paper: 25.9%
}

TEST(PerCore, FireStorm) {
  const CoreSpec fs{"FireStorm", 3.2, 5, 2.53, 3.79, 8, 8};
  const FireGuardCost c = per_core_cost(fs);
  EXPECT_EQ(c.n_ucores, 12u);
  EXPECT_NEAR(c.overhead_mm2, 0.81, 0.01);  // paper: 0.81 mm^2
  EXPECT_NEAR(c.pct_of_core, 3.6, 0.1);     // paper: 3.6%
}

TEST(PerCore, CortexA76) {
  const CoreSpec a76{"Cortex-A76", 2.8, 7, 1.23, 2.07, 4, 4, 1.27};
  const FireGuardCost c = per_core_cost(a76);
  EXPECT_EQ(c.n_ucores, 5u);               // paper: 5
  EXPECT_NEAR(c.overhead_mm2, 0.35, 0.01);  // paper: 0.35 mm^2
  EXPECT_NEAR(c.pct_of_core, 9.6, 0.2);     // paper: 9.6%
}

TEST(PerCore, AlderLake) {
  const CoreSpec adl{"AlderLake-S P", 4.9, 10, 7.30, 2.83, 6, 8};
  const FireGuardCost c = per_core_cost(adl);
  EXPECT_EQ(c.n_ucores, 13u);
  EXPECT_NEAR(c.overhead_mm2, 0.85, 0.01);  // paper: 0.85 mm^2
  EXPECT_NEAR(c.pct_of_core, 3.8, 0.1);     // paper: 3.8%
}

TEST(SocLevel, CommercialSocsUnderOnePercent) {
  for (const SocSpec& s : table3_socs()) {
    if (s.name == "BOOM SoC") continue;
    const double pct = soc_overhead_pct(s);
    EXPECT_LT(pct, 1.05) << s.name;  // paper: < 1% for all commercial SoCs
    EXPECT_GT(pct, 0.1) << s.name;
  }
}

TEST(SocLevel, BoomPrototypePaysMore) {
  const SocSpec& boom = table3_socs()[0];
  EXPECT_NEAR(soc_overhead_pct(boom), 9.86, 0.1);
}

TEST(SocLevel, OverheadScalesWithCoreCount) {
  SocSpec s;
  s.name = "test";
  s.soc_area_14nm = 100.0;
  s.cores.push_back({"c", 3.2, 14, 1.11, 1.3, 4, 1});
  const double one = soc_overhead_mm2(s);
  s.cores[0].count = 4;
  EXPECT_NEAR(soc_overhead_mm2(s), 4 * one, 1e-9);
}

TEST(Model, BiggerCoresPayRelativelyLess) {
  // The paper's headline: linear µcore scaling vs superlinear core area.
  const CoreSpec boom{"BOOM", 3.2, 14, 1.11, 1.3, 4, 1};
  const CoreSpec fs{"FireStorm", 3.2, 5, 2.53, 3.79, 8, 8};
  EXPECT_GT(per_core_cost(boom).pct_of_core, 5 * per_core_cost(fs).pct_of_core);
}

class FilterWidthArea : public ::testing::TestWithParam<u32> {};

TEST_P(FilterWidthArea, FilterAreaScalesWithWidth) {
  CoreSpec c{"x", 3.2, 14, 1.11, 1.3, GetParam(), 1};
  const FireGuardCost cost = per_core_cost(c);
  EXPECT_NEAR(cost.transport_mm2,
              kFilterArea4Way * GetParam() / 4.0 + kMapperArea, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Widths, FilterWidthArea, ::testing::Values(1, 2, 4, 6, 8));

}  // namespace
}  // namespace fg::area
