// Fault-injection harness tests: the FG_FAULT grammar (strict parse, loud
// abort on malformed input) and the injected failure semantics of the
// store's filesystem primitives — torn writes, ENOSPC, rename failures,
// crashes at the worst instant. The recovery paths these faults exercise
// are tested in store_test.cc / campaign_test.cc; here we pin down the
// harness itself so those tests inject what they think they inject.
#include "src/store/faultfs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

namespace fg::store {
namespace {

class FaultFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault_clear();
    dir_ = testing::TempDir() + "faultfs_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);  // stale state from prior runs
    std::string err;
    ASSERT_TRUE(make_dirs(dir_, &err)) << err;
  }
  void TearDown() override { fault_clear(); }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  static FaultConfig parsed(const std::string& text) {
    FaultConfig cfg;
    std::string err;
    EXPECT_TRUE(parse_fault_spec(text, &cfg, &err)) << err;
    return cfg;
  }

  std::string dir_;
};

TEST_F(FaultFsTest, ParseGrammar) {
  FaultConfig cfg = parsed("torn@write:3");
  ASSERT_EQ(cfg.rules.size(), 1u);
  EXPECT_EQ(cfg.rules[0].kind, FaultKind::kTorn);
  EXPECT_EQ(cfg.rules[0].site, FaultSite::kWrite);
  EXPECT_EQ(cfg.rules[0].nth, 3u);
  EXPECT_EQ(cfg.rules[0].times, 1u);
  EXPECT_EQ(cfg.rules[0].percent, 0u);

  cfg = parsed("seed=42,enospc@write:p25,crash@point:7x99,hang@point:2:5000");
  EXPECT_EQ(cfg.seed, 42u);
  ASSERT_EQ(cfg.rules.size(), 3u);
  EXPECT_EQ(cfg.rules[0].percent, 25u);
  EXPECT_EQ(cfg.rules[1].kind, FaultKind::kCrash);
  EXPECT_EQ(cfg.rules[1].site, FaultSite::kPoint);
  EXPECT_EQ(cfg.rules[1].nth, 7u);
  EXPECT_EQ(cfg.rules[1].times, 99u);
  EXPECT_EQ(cfg.rules[2].kind, FaultKind::kHang);
  EXPECT_EQ(cfg.rules[2].nth, 2u);
  EXPECT_EQ(cfg.rules[2].hang_ms, 5000u);
}

TEST_F(FaultFsTest, ParseRejectsMalformed) {
  FaultConfig cfg;
  std::string err;
  for (const char* bad :
       {"", "torn", "torn@write", "torn@write:", "bogus@write:1",
        "torn@bogus:1", "torn@write:x", "torn@write:p0", "torn@write:p101",
        "seed=notanumber", "torn@write:1,,torn@write:2", "torn@write:1,"}) {
    EXPECT_FALSE(parse_fault_spec(bad, &cfg, &err))
        << "accepted malformed spec: \"" << bad << "\"";
  }
}

// Strict-parse contract shared with FG_TRACE_LEN: a malformed FG_FAULT is a
// loud immediate abort, never a silently fault-free run. Plain TEST (no
// fixture) in threadsafe style: the re-exec'd death-test child must reach
// faults_active() before any fault_configure/fault_clear call, since
// programmatic configuration deliberately supersedes the environment.
TEST(FaultFsEnvTest, MalformedEnvAborts) {
  const std::string saved = ::testing::FLAGS_gtest_death_test_style;
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ::setenv("FG_FAULT", "torn@write", 1);
  EXPECT_DEATH(faults_active(), "FG_FAULT.*malformed");
  ::unsetenv("FG_FAULT");
  ::testing::FLAGS_gtest_death_test_style = saved;
}

TEST_F(FaultFsTest, AtomicWriteCleanRoundtrip) {
  const std::string p = path("clean.txt");
  std::string err, back;
  ASSERT_TRUE(write_file_atomic(p, "hello", &err)) << err;
  ASSERT_TRUE(read_file(p, &back, &err)) << err;
  EXPECT_EQ(back, "hello");
  // Overwrite is atomic too.
  ASSERT_TRUE(write_file_atomic(p, "world", &err)) << err;
  ASSERT_TRUE(read_file(p, &back, &err)) << err;
  EXPECT_EQ(back, "world");
}

TEST_F(FaultFsTest, TornWriteLeavesDestinationIntact) {
  const std::string p = path("torn.txt");
  std::string err;
  ASSERT_TRUE(write_file_atomic(p, "old-content", &err));
  fault_configure(parsed("torn@write:1"));
  EXPECT_FALSE(write_file_atomic(p, "new-content-that-gets-torn", &err));
  EXPECT_NE(err.find("torn"), std::string::npos) << err;
  // The truncated temp was left behind (a crash frozen mid-write) — its
  // path is named in the error message.
  const std::string tag = "left at ";
  const size_t at = err.find(tag);
  ASSERT_NE(at, std::string::npos) << err;
  std::string tmp = err.substr(at + tag.size());
  ASSERT_FALSE(tmp.empty());
  tmp.pop_back();  // trailing ')'
  fault_clear();
  std::string back;
  ASSERT_TRUE(read_file(tmp, &back, &err));
  EXPECT_EQ(back.size(), std::string("new-content-that-gets-torn").size() / 2);
  // The destination still carries the OLD bytes — the torn temp never
  // reached it.
  ASSERT_TRUE(read_file(p, &back, &err));
  EXPECT_EQ(back, "old-content");
}

TEST_F(FaultFsTest, EnospcFailsAndCleansTemp) {
  const std::string p = path("enospc.txt");
  fault_configure(parsed("enospc@write:1"));
  std::string err;
  EXPECT_FALSE(write_file_atomic(p, "content", &err));
  EXPECT_NE(err.find("ENOSPC"), std::string::npos) << err;
  fault_clear();
  EXPECT_FALSE(file_exists(p));
}

TEST_F(FaultFsTest, RenameFailAndReadFail) {
  const std::string p = path("rf.txt");
  std::string err;
  fault_configure(parsed("renamefail@write:1"));
  EXPECT_FALSE(write_file_atomic(p, "content", &err));
  fault_clear();
  EXPECT_FALSE(file_exists(p));

  ASSERT_TRUE(write_file_atomic(p, "content", &err));
  fault_configure(parsed("fail@read:1"));
  std::string out;
  EXPECT_FALSE(read_file(p, &out, &err));
  EXPECT_NE(err.find("injected"), std::string::npos) << err;
  fault_clear();
  ASSERT_TRUE(read_file(p, &out, &err));
  EXPECT_EQ(out, "content");
}

TEST_F(FaultFsTest, NthOrdinalCountsPerSite) {
  fault_configure(parsed("torn@write:2"));
  std::string err;
  EXPECT_TRUE(write_file_atomic(path("a"), "1", &err));   // op 1: clean
  EXPECT_FALSE(write_file_atomic(path("b"), "2", &err));  // op 2: torn
  EXPECT_TRUE(write_file_atomic(path("c"), "3", &err));   // op 3: clean
}

TEST_F(FaultFsTest, TimesAffectsConsecutiveOps) {
  fault_configure(parsed("enospc@write:1x3"));
  std::string err;
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(write_file_atomic(path("x"), "v", &err)) << "op " << i;
  }
  EXPECT_TRUE(write_file_atomic(path("x"), "v", &err));
}

TEST_F(FaultFsTest, PercentRulesAreSeedDeterministic) {
  auto pattern = [&](u64 seed) {
    FaultConfig cfg = parsed("enospc@write:p40");
    cfg.seed = seed;
    fault_configure(cfg);
    std::vector<bool> fails;
    std::string err;
    for (int i = 0; i < 32; ++i) {
      fails.push_back(!write_file_atomic(path("p"), "v", &err));
    }
    fault_clear();
    return fails;
  };
  const std::vector<bool> a = pattern(42);
  const std::vector<bool> b = pattern(42);
  EXPECT_EQ(a, b) << "same seed must inject the identical fault sequence";
  size_t fired = 0;
  for (const bool f : a) fired += f ? 1 : 0;
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, a.size());
}

TEST_F(FaultFsTest, CrashAtWorstInstantPreservesOldContent) {
  const std::string p = path("crash.txt");
  std::string err;
  ASSERT_TRUE(write_file_atomic(p, "old", &err));
  fault_configure(parsed("crash@write:1"));
  // The injected crash exits between the fsync'd temp write and the rename
  // — the worst possible instant for a non-atomic writer.
  EXPECT_EXIT(write_file_atomic(p, "new", &err),
              ::testing::ExitedWithCode(kFaultCrashExit), "injected crash");
  fault_clear();
  std::string back;
  ASSERT_TRUE(read_file(p, &back, &err));
  EXPECT_EQ(back, "old");
}

TEST_F(FaultFsTest, PointFaultMatchesIndexAndAttempt) {
  fault_configure(parsed("crash@point:7"));
  EXPECT_FALSE(point_fault(6, 0).has_value());
  ASSERT_TRUE(point_fault(7, 0).has_value());
  EXPECT_EQ(point_fault(7, 0)->kind, FaultKind::kCrash);
  EXPECT_FALSE(point_fault(7, 1).has_value()) << "retry must run clean";

  fault_configure(parsed("fail@point:3x2"));
  EXPECT_TRUE(point_fault(3, 0).has_value());
  EXPECT_TRUE(point_fault(3, 1).has_value());
  EXPECT_FALSE(point_fault(3, 2).has_value());
}

TEST_F(FaultFsTest, MakeDirsIsIdempotentAndDetectsNonDirs) {
  const std::string nested = dir_ + "/a/b/c";
  std::string err;
  ASSERT_TRUE(make_dirs(nested, &err)) << err;
  ASSERT_TRUE(make_dirs(nested, &err)) << err;  // mkdir -p semantics
  const std::string f = path("plainfile");
  ASSERT_TRUE(write_file_atomic(f, "x", &err));
  EXPECT_FALSE(make_dirs(f + "/sub", &err));
}

}  // namespace
}  // namespace fg::store
