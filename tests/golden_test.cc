// Golden corpus machinery: update→check round-trip is a no-op, tampering is
// detected, missing files are named. The checked-in corpus itself is gated
// by the fgfuzz_check_golden ctest (tools/fgfuzz --check-golden).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/testing/golden.h"

namespace fg::fuzz {
namespace {

/// Fast synthetic runner: deterministic per (seed, length, exactness-
/// independent) so corpus mechanics are testable without 20 simulations.
StatSnapshot fake_runner(const Scenario& s, bool) {
  StatSnapshot snap;
  snap.cycles = s.seed * 1000 + s.wl().n_insts;
  snap.committed = s.wl().n_insts;
  snap.engines.push_back(EngineSnap{false, s.seed, 0, 0, 0, 0, 0, 0});
  return snap;
}

std::string corpus_path(const std::string& dir, const char* name) {
  std::string out = dir;
  out += '/';
  out += name;
  out += ".json";
  return out;
}

std::string temp_dir(const char* name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(Golden, UpdateThenCheckIsANoOp) {
  const std::string dir = temp_dir("fg_golden_roundtrip");
  EXPECT_EQ(update_golden(dir, fake_runner), "");
  EXPECT_EQ(check_golden(dir, fake_runner), "");
  // Files exist, one per corpus entry.
  size_t files = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir)) {
    ++files;
  }
  EXPECT_EQ(files, golden_entries().size());
  std::filesystem::remove_all(dir);
}

TEST(Golden, TamperedSnapshotIsCaughtWithAFieldDiff) {
  const std::string dir = temp_dir("fg_golden_tamper");
  ASSERT_EQ(update_golden(dir, fake_runner), "");
  // Corrupt one counter in one file.
  const std::string victim = corpus_path(dir, golden_entries()[2].name);
  std::stringstream ss;
  {
    std::ifstream in(victim);
    ASSERT_TRUE(in.good());
    ss << in.rdbuf();
  }
  std::string text = ss.str();
  const std::string key = "\"committed\": ";
  const size_t pos = text.find(key);
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos + key.size(), 1, '9');
  {
    std::ofstream out(victim);
    out << text;
  }
  const std::string report = check_golden(dir, fake_runner);
  EXPECT_NE(report.find("MISMATCH"), std::string::npos) << report;
  EXPECT_NE(report.find(golden_entries()[2].name), std::string::npos);
  EXPECT_NE(report.find("committed"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Golden, MissingFileIsNamed) {
  const std::string dir = temp_dir("fg_golden_missing");
  ASSERT_EQ(update_golden(dir, fake_runner), "");
  std::filesystem::remove(corpus_path(dir, golden_entries()[0].name));
  const std::string report = check_golden(dir, fake_runner);
  EXPECT_NE(report.find("MISSING"), std::string::npos);
  EXPECT_NE(report.find(golden_entries()[0].name), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Golden, CorpusDefinitionIsStable) {
  // Names and seeds are frozen: changing them orphans checked-in files.
  ASSERT_EQ(golden_entries().size(), 26u);
  EXPECT_STREQ(golden_entries()[0].name, "g01");
  EXPECT_EQ(golden_entries()[0].seed, 1u);
  EXPECT_STREQ(golden_entries()[19].name, "g20");
  EXPECT_EQ(golden_entries()[19].seed, 0x8888u);
  EXPECT_FALSE(golden_entries()[19].stall);
  EXPECT_STREQ(golden_entries()[25].name, "g26");
  EXPECT_EQ(golden_entries()[25].seed, 0xeeeeu);
  EXPECT_TRUE(golden_entries()[25].stall);
  const ScenarioEnvelope env = golden_envelope();
  EXPECT_EQ(env.min_insts, 1'500u);
  EXPECT_EQ(env.max_insts, 5'000u);
  // The stall slice differs from the base envelope ONLY in the bias knob —
  // anything else would silently re-expand g21..g26.
  const ScenarioEnvelope stall = golden_stall_envelope();
  EXPECT_EQ(stall.min_insts, env.min_insts);
  EXPECT_EQ(stall.max_insts, env.max_insts);
  EXPECT_EQ(stall.stall_bound_bias, 1.0);
  EXPECT_EQ(env.stall_bound_bias, 0.0);
}

}  // namespace
}  // namespace fg::fuzz
