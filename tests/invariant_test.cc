// FG_INVARIANT runtime semantics: toggling, counting, record-vs-abort mode.
// The hooks themselves are exercised (and must stay silent) in every
// simulating test of a Debug build; the fuzz driver additionally runs them
// across randomized scenarios.
#include <gtest/gtest.h>

#include "src/common/invariant.h"

namespace fg {
namespace {

/// Restores global invariant state around each test.
class InvariantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    entry_enabled_ = inv::enabled();
    entry_abort_ = inv::abort_on_violation();
  }
  void TearDown() override {
    inv::set_enabled(entry_enabled_);
    inv::set_abort_on_violation(entry_abort_);
    inv::reset_counters();
  }
  bool entry_enabled_ = true;
  bool entry_abort_ = true;
};

TEST_F(InvariantTest, CompiledInMatchesBuildType) {
#ifdef NDEBUG
  EXPECT_FALSE(inv::compiled_in());
#else
  EXPECT_TRUE(inv::compiled_in());
#endif
}

TEST_F(InvariantTest, PassingChecksCountAndNeverRecord) {
  if (!inv::compiled_in()) {
    // Compiled out: the macro must evaluate nothing at all.
    inv::reset_counters();
    FG_INVARIANT(false, "test.compiled_out");
    EXPECT_EQ(inv::checks(), 0u);
    EXPECT_EQ(inv::violations(), 0u);
    return;
  }
  inv::set_enabled(true);
  inv::reset_counters();
  FG_INVARIANT(1 + 1 == 2, "test.pass");
  FG_INVARIANT(true, "test.pass2");
  EXPECT_EQ(inv::checks(), 2u);
  EXPECT_EQ(inv::violations(), 0u);
  EXPECT_TRUE(inv::recent_violations().empty());
}

TEST_F(InvariantTest, DisabledSkipsEvaluationEntirely) {
  if (!inv::compiled_in()) GTEST_SKIP();
  inv::set_enabled(false);
  inv::reset_counters();
  bool evaluated = false;
  FG_INVARIANT((evaluated = true), "test.disabled");
  EXPECT_FALSE(evaluated);
  EXPECT_EQ(inv::checks(), 0u);
}

TEST_F(InvariantTest, RecordModeCapturesViolationsWithoutAborting) {
  if (!inv::compiled_in()) GTEST_SKIP();
  inv::set_enabled(true);
  inv::set_abort_on_violation(false);
  inv::reset_counters();
  FG_INVARIANT(2 + 2 == 5, "test.violation");
  FG_INVARIANT(true, "test.pass");
  EXPECT_EQ(inv::checks(), 2u);
  EXPECT_EQ(inv::violations(), 1u);
  const auto recent = inv::recent_violations();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_NE(recent[0].find("test.violation"), std::string::npos);
  EXPECT_NE(recent[0].find("2 + 2 == 5"), std::string::npos);
  EXPECT_NE(recent[0].find("invariant_test.cc"), std::string::npos);
}

TEST_F(InvariantTest, ResetClearsCountersAndRing) {
  if (!inv::compiled_in()) GTEST_SKIP();
  inv::set_enabled(true);
  inv::set_abort_on_violation(false);
  FG_INVARIANT(false, "test.reset");
  inv::reset_counters();
  EXPECT_EQ(inv::checks(), 0u);
  EXPECT_EQ(inv::violations(), 0u);
  EXPECT_TRUE(inv::recent_violations().empty());
}

}  // namespace
}  // namespace fg
