// Stress tests for the event scheduler's widened skip horizons: the cases
// most likely to break bit-identity with the FG_CYCLE_EXACT reference.
// Horizons landing exactly on DRAM/PTW completion cycles, zero-length skip
// windows forced by tiny queues, CDC deliveries racing the memoized
// slow-rest horizon, cap-bounded windows, and the 2M-cycle drain backstop.
// Each scenario runs both modes and diffs every observable (plus the
// accounting identity stepped + skipped == reference cycles). The nastiest
// cases also run under the FG_PIPELINE two-thread scheduler, which must hit
// the same bits with its epoch-granular view of the slow domain.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/boom/core.h"
#include "src/common/simctl.h"
#include "src/isa/riscv.h"
#include "src/mem/hierarchy.h"
#include "src/soc/experiment.h"
#include "src/soc/figures.h"
#include "src/soc/soc.h"
#include "src/trace/trace.h"
#include "src/trace/workload.h"

namespace fg::soc {
namespace {

/// Restores the scheduler mode even if an assertion fails mid-test.
struct ExactMode {
  explicit ExactMode(bool exact) { set_cycle_exact(exact); }
  ~ExactMode() { set_cycle_exact(false); }
};

void expect_identical(const RunResult& exact, const RunResult& event,
                      const std::string& label) {
  EXPECT_EQ(exact.cycles, event.cycles) << label;
  EXPECT_EQ(exact.committed, event.committed) << label;
  EXPECT_EQ(exact.packets, event.packets) << label;
  EXPECT_EQ(exact.spurious, event.spurious) << label;
  for (size_t i = 0; i < exact.stall_fractions.size(); ++i) {
    EXPECT_EQ(exact.stall_fractions[i], event.stall_fractions[i])
        << label << " stall cause " << i;
  }
  ASSERT_EQ(exact.detections.size(), event.detections.size()) << label;
  for (size_t i = 0; i < exact.detections.size(); ++i) {
    const DetectionRecord& a = exact.detections[i];
    const DetectionRecord& b = event.detections[i];
    EXPECT_EQ(a.attack_id, b.attack_id) << label;
    EXPECT_EQ(a.engine, b.engine) << label;
    EXPECT_EQ(a.commit_fast, b.commit_fast) << label;
    EXPECT_EQ(a.detect_fast, b.detect_fast) << label;
  }
  EXPECT_EQ(event.sched.cycles_stepped + event.sched.cycles_skipped,
            exact.sched.cycles_stepped)
      << label;
}

RunResult run_mode(bool exact, const trace::WorkloadConfig& w,
                   const SocConfig& sc) {
  ExactMode mode(exact);
  return run_fireguard(w, sc);
}

/// Restores the pipeline flag even if an assertion fails mid-test.
struct PipelineMode {
  explicit PipelineMode(bool on) { set_pipeline(on); }
  ~PipelineMode() { set_pipeline(false); }
};

RunResult run_pipelined(const trace::WorkloadConfig& w, const SocConfig& sc) {
  ExactMode mode(false);  // cycle_exact wins over pipeline; force it off
  PipelineMode pipe(true);
  return run_fireguard(w, sc);
}

// --- In-flight DRAM/PTW completions as horizons --------------------------
//
// The memstall configuration (detailed DRAM + PTW timing, pointer-chasing
// heap workload) is the one the speedup acceptance is measured on: almost
// every skip window ends exactly on a miss-completion cycle, so an
// off-by-one in the horizon shows up as a cycle-count diff immediately.
TEST(SkipStress, MemstallBitIdenticalAndMajoritySkipped) {
  for (const u64 n : {4'000ull, 12'000ull, 30'000ull}) {
    const trace::WorkloadConfig wl = memstall_workload(n);
    const SocConfig sc = memstall_soc();
    const std::string label = "memstall/" + std::to_string(n);
    const RunResult exact = run_mode(true, wl, sc);
    const RunResult event = run_mode(false, wl, sc);
    expect_identical(exact, event, label);
    // The point of the config: most cycles are provably dead and the core's
    // own horizon (ROB-head miss completion) bounds real windows.
    EXPECT_GT(event.sched.skipped_fraction(), 0.5) << label;
    EXPECT_GT(event.sched.bound_core, 0u) << label;
  }
}

// --- Horizon exactness at the cycle level --------------------------------
//
// A hand-built dependent-load chain against the detailed DRAM model: at
// every fixed point the core's next_event() must be *tight* — dead on every
// cycle strictly before it, and live exactly at it (the ROB head's
// completion). A conservative (early) horizon costs only speed; a late one
// corrupts runs — both directions are pinned here.
class VecSource final : public trace::TraceSource {
 public:
  explicit VecSource(std::vector<trace::TraceInst> v) : v_(std::move(v)) {}
  bool next(trace::TraceInst& out) override {
    if (i_ >= v_.size()) return false;
    out = v_[i_++];
    return true;
  }
  void reset() override { i_ = 0; }

 private:
  std::vector<trace::TraceInst> v_;
  size_t i_ = 0;
};

TEST(SkipStress, CoreHorizonLandsExactlyOnMissCompletion) {
  std::vector<trace::TraceInst> insts;
  for (int i = 0; i < 48; ++i) {
    // Cold, page-crossing loads (DRAM and PTW misses) each feeding a
    // dependent ALU: the ROB head parks on the miss until its exact
    // completion cycle.
    trace::TraceInst ld;
    ld.pc = 0x1000 + 8 * static_cast<u64>(i);
    ld.enc = isa::make_load(0x3, 5, 2, 0);
    ld.cls = isa::InstClass::kLoad;
    ld.rd = 5;
    ld.mem_size = 8;
    ld.mem_addr = 0x4000'0000 + (static_cast<u64>(i) << 14);
    insts.push_back(ld);
    trace::TraceInst use;
    use.pc = ld.pc + 4;
    use.enc = isa::make_alu_rr(0, 6, 5, 5, false);
    use.cls = isa::InstClass::kIntAlu;
    use.rd = 6;
    use.rs1 = 5;
    use.rs2 = 5;
    insts.push_back(use);
  }
  mem::HierarchyConfig mc;
  mc.detailed_dram = true;
  mc.detailed_ptw = true;
  mem::MemHierarchy mem(mc);
  VecSource src(std::move(insts));
  boom::BoomCore core(boom::CoreConfig{}, mem, src);

  u64 windows = 0;
  Cycle longest = 0;
  for (u64 step = 0; step < 500'000; ++step) {
    const bool active = core.tick(nullptr);
    if (active) continue;
    const Cycle h = core.next_event();
    if (h == kNoEvent) break;
    ASSERT_GE(h, core.now());
    if (h <= core.now() + 1) continue;
    ++windows;
    longest = std::max(longest, h - core.now());
    // Dead on every cycle strictly before the horizon...
    while (core.now() < h) {
      ASSERT_FALSE(core.tick(nullptr))
          << "activity at " << core.now() - 1 << " before horizon " << h;
    }
    // ...and live exactly at it: the skipped-to cycle does something.
    EXPECT_TRUE(core.tick(nullptr)) << "conservative horizon at " << h;
  }
  EXPECT_GT(windows, 16u);
  // The windows must actually span in-flight misses, not just 2-cycle
  // scheduling bubbles — otherwise this test stopped testing DRAM horizons.
  EXPECT_GT(longest, 50u);
}

// --- Zero-length windows under tiny queues -------------------------------
//
// Shrinking every frontend queue to its floor makes back-pressure constant:
// the scheduler sees horizons of 0/1 cycles (no skippable window) mixed
// with real ones, exercising the "window too small, just step" paths and
// the freq_ratio-4 slow-boundary alignment.
TEST(SkipStress, TinyQueuesZeroLengthWindows) {
  SocConfig sc = table2_soc();
  sc.frontend.cdc_depth = 4;
  sc.frontend.freq_ratio = 4;
  sc.frontend.mapper_width = 2;
  sc.frontend.filter.fifo_depth = 4;
  sc.ucore.msgq_depth = 8;
  sc.kernels = {deploy(kernels::KernelKind::kPmc, 2),
                deploy(kernels::KernelKind::kShadowStack, 1)};
  for (const char* w : {"blackscholes", "streamcluster"}) {
    const trace::WorkloadConfig wl = paper_workload(w, 9'000);
    expect_identical(run_mode(true, wl, sc), run_mode(false, wl, sc),
                     std::string("tiny_queues/") + w);
  }
}

// --- CDC delivery racing the memoized slow-rest horizon ------------------
//
// Drain windows memoize the engines' rest horizon by epoch; a CDC entry
// whose handshake settles *inside* a window must still be delivered on its
// exact slow boundary (head readiness is re-read fresh, never memoized).
// The memstall config drives long windows while packets trickle through a
// depth-4 CDC: every settle lands inside some window.
TEST(SkipStress, CdcDeliveryRacesMemoizedHorizon) {
  SocConfig sc = memstall_soc();
  sc.frontend.cdc_depth = 4;
  sc.kernels = {deploy(kernels::KernelKind::kPmc, 4)};
  const trace::WorkloadConfig wl = memstall_workload(12'000);
  const RunResult exact = run_mode(true, wl, sc);
  const RunResult event = run_mode(false, wl, sc);
  expect_identical(exact, event, "cdc_race");
  // The race only exists if drain windows actually ran and elided slow
  // boundaries — assert the machinery engaged, not just that nothing broke.
  EXPECT_GT(event.sched.drain_windows, 0u);
  EXPECT_GT(event.sched.slow_ticks_skipped, 0u);
}

// Pipelined variant of the same race: under FG_PIPELINE the fast thread
// sees the slow domain only through the boundary-frozen SlowView, and CDC
// settle times reach the slow worker one epoch late by construction. A
// settle landing inside a drain window must STILL be delivered on its exact
// slow boundary — the view's rest horizon is clamped against the producer's
// own next-ready witness, so the window closes in time.
TEST(SkipStress, CdcDeliveryRacesMemoizedHorizonPipelined) {
  SocConfig sc = memstall_soc();
  sc.frontend.cdc_depth = 4;
  sc.kernels = {deploy(kernels::KernelKind::kPmc, 4)};
  const trace::WorkloadConfig wl = memstall_workload(12'000);
  const RunResult exact = run_mode(true, wl, sc);
  const RunResult piped = run_pipelined(wl, sc);
  expect_identical(exact, piped, "cdc_race_pipelined");
  // The pipelined scheduler (not a silent serial fallback) ran, and its
  // drain windows engaged across epoch boundaries.
  EXPECT_GT(piped.sched.pipe_epochs, 0u);
  EXPECT_GT(piped.sched.drain_windows, 0u);
  EXPECT_GT(piped.sched.slow_ticks_skipped, 0u);
}

// --- Cap-bounded windows -------------------------------------------------
//
// max_fast_cycles caps every window; odd values land the cap mid-window and
// mid-slow-boundary. The truncated run must still match the truncated
// reference bit for bit, and the cap must be what bounded the final skip.
TEST(SkipStress, OddMaxCyclesCapBoundsWindows) {
  for (const u64 cap : {50'001ull, 77'773ull}) {
    SocConfig sc = memstall_soc();
    sc.max_fast_cycles = cap;
    sc.kernels = {deploy(kernels::KernelKind::kPmc, 4)};
    const trace::WorkloadConfig wl = memstall_workload(30'000);
    const std::string label = "cap/" + std::to_string(cap);
    const RunResult exact = run_mode(true, wl, sc);
    const RunResult event = run_mode(false, wl, sc);
    expect_identical(exact, event, label);
    EXPECT_EQ(event.cycles, cap) << label;
    EXPECT_GT(event.sched.bound_cap, 0u) << label;
  }
}

// --- The 2M-cycle drain backstop -----------------------------------------
//
// A shadow stack deployed with round-robin scheduling never circulates the
// block-mode token, so the engines' queues never drain and the end-of-run
// loop runs into the kDrainBackstop. The backstop is an event horizon like
// any other: both modes must cut the run at the same cycle with identical
// stats, and the accounting identity must still hold across it.
TEST(SkipStress, DrainBackstopBitIdentical) {
  SocConfig sc = table2_soc();
  sc.kernels = {deploy(kernels::KernelKind::kShadowStack, 2,
                       kernels::ProgModel::kHybrid, /*use_ha=*/false,
                       core::SchedPolicy::kRoundRobin)};
  const trace::WorkloadConfig wl = paper_workload("ferret", 3'000);
  const RunResult exact = run_mode(true, wl, sc);
  const RunResult event = run_mode(false, wl, sc);
  expect_identical(exact, event, "backstop");
  // Proof the backstop (not normal drain) ended the run: the simulated
  // length exceeds the 2M-cycle drain allowance.
  EXPECT_GT(event.sched.cycles_stepped + event.sched.cycles_skipped,
            2'000'000u);
}

// Pipelined variant: the backstop cut must land on the same cycle even
// though the pipelined loop only breaks at epoch granularity (prerelease is
// gated on break_free(), which reserves the backstop window, and the final
// partial epoch is stepped serially against the last collected view).
TEST(SkipStress, DrainBackstopBitIdenticalPipelined) {
  SocConfig sc = table2_soc();
  sc.kernels = {deploy(kernels::KernelKind::kShadowStack, 2,
                       kernels::ProgModel::kHybrid, /*use_ha=*/false,
                       core::SchedPolicy::kRoundRobin)};
  const trace::WorkloadConfig wl = paper_workload("ferret", 3'000);
  const RunResult exact = run_mode(true, wl, sc);
  const RunResult piped = run_pipelined(wl, sc);
  expect_identical(exact, piped, "backstop_pipelined");
  EXPECT_GT(piped.sched.pipe_epochs, 0u);
  EXPECT_GT(piped.sched.cycles_stepped + piped.sched.cycles_skipped,
            2'000'000u);
}

}  // namespace
}  // namespace fg::soc
