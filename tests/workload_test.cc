#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/trace/workload.h"

namespace fg::trace {
namespace {

WorkloadConfig small_config(const std::string& name = "ferret", u64 n = 20000) {
  WorkloadConfig cfg;
  cfg.profile = profile_by_name(name);
  cfg.profile.n_funcs = 48;
  cfg.seed = 11;
  cfg.n_insts = n;
  cfg.warmup_insts = 2000;
  return cfg;
}

TEST(Workload, EmitsExactCount) {
  WorkloadGen gen(small_config());
  TraceInst ti;
  u64 n = 0;
  while (gen.next(ti)) ++n;
  EXPECT_EQ(n, 20000u);
  EXPECT_FALSE(gen.next(ti));
}

TEST(Workload, ResetReplaysIdenticalStream) {
  WorkloadGen gen(small_config());
  std::vector<TraceInst> first;
  TraceInst ti;
  while (gen.next(ti)) first.push_back(ti);
  gen.reset();
  size_t i = 0;
  while (gen.next(ti)) {
    ASSERT_LT(i, first.size());
    EXPECT_EQ(ti.pc, first[i].pc);
    EXPECT_EQ(ti.enc, first[i].enc);
    EXPECT_EQ(ti.mem_addr, first[i].mem_addr);
    EXPECT_EQ(ti.target, first[i].target);
    EXPECT_EQ(ti.taken, first[i].taken);
    ++i;
  }
  EXPECT_EQ(i, first.size());
}

TEST(Workload, TwoInstancesIdentical) {
  WorkloadGen a(small_config()), b(small_config());
  TraceInst ta, tb;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(a.next(ta));
    ASSERT_TRUE(b.next(tb));
    ASSERT_EQ(ta.pc, tb.pc);
    ASSERT_EQ(ta.enc, tb.enc);
  }
}

// The critical structural invariant for the shadow stack: every return's
// reported target equals the address after its matching call.
TEST(Workload, CallReturnNesting) {
  WorkloadGen gen(small_config("dedup", 60000));
  std::vector<u64> shadow;
  TraceInst ti;
  u64 mismatches = 0, rets = 0;
  while (gen.next(ti)) {
    if (ti.cls == isa::InstClass::kCall) {
      shadow.push_back(ti.pc + 4);
    } else if (ti.cls == isa::InstClass::kRet) {
      ++rets;
      ASSERT_FALSE(shadow.empty());
      if (shadow.back() != ti.target) ++mismatches;
      shadow.pop_back();
    }
  }
  EXPECT_GT(rets, 100u);
  EXPECT_EQ(mismatches, 0u);
}

TEST(Workload, CorruptedReturnsMismatchExactly) {
  WorkloadConfig cfg = small_config("dedup", 60000);
  cfg.attacks = {{AttackKind::kRetCorrupt, 10}};
  WorkloadGen gen(cfg);
  std::vector<u64> shadow;
  TraceInst ti;
  u64 mismatches = 0;
  while (gen.next(ti)) {
    if (ti.cls == isa::InstClass::kCall) {
      shadow.push_back(ti.pc + 4);
    } else if (ti.cls == isa::InstClass::kRet && !shadow.empty()) {
      if (shadow.back() != ti.target) {
        ++mismatches;
        EXPECT_NE(ti.attack_id, 0u);
      }
      shadow.pop_back();
    }
  }
  EXPECT_EQ(mismatches, gen.injected().size());
  EXPECT_EQ(mismatches, 10u);
}

TEST(Workload, PcsStayInText) {
  WorkloadGen gen(small_config());
  TraceInst ti;
  while (gen.next(ti)) {
    EXPECT_GE(ti.pc, gen.text_lo());
    EXPECT_LT(ti.pc, gen.text_hi());
  }
}

TEST(Workload, BenignControlTargetsInText) {
  WorkloadGen gen(small_config());
  TraceInst ti;
  while (gen.next(ti)) {
    if (ti.attack_id != 0) continue;
    if (isa::is_ctrl(ti.cls) && ti.taken) {
      EXPECT_GE(ti.target, gen.text_lo()) << isa::disassemble(ti.enc);
      EXPECT_LT(ti.target, gen.text_hi());
    }
  }
}

TEST(Workload, HijackTargetsOutsideText) {
  WorkloadConfig cfg = small_config();
  cfg.attacks = {{AttackKind::kPcHijack, 15}};
  WorkloadGen gen(cfg);
  TraceInst ti;
  u64 attacks = 0;
  while (gen.next(ti)) {
    if (ti.attack_id != 0) {
      ++attacks;
      EXPECT_TRUE(ti.target < gen.text_lo() || ti.target >= gen.text_hi());
    }
  }
  EXPECT_EQ(attacks, 15u);
}

TEST(Workload, AllocEventsCarryMetadata) {
  WorkloadConfig cfg = small_config("dedup", 40000);
  WorkloadGen gen(cfg);
  TraceInst ti;
  u64 allocs = 0, frees = 0;
  while (gen.next(ti)) {
    if (ti.sem == SemEvent::kAlloc) {
      ++allocs;
      EXPECT_NE(ti.sem_addr, 0u);
      EXPECT_GT(ti.sem_size, 0u);
      EXPECT_EQ(ti.sem_size % kHeapGranule, 0u);
      EXPECT_EQ(isa::opcode_of(ti.enc), isa::kOpCustom0);
    }
    if (ti.sem == SemEvent::kFree) {
      ++frees;
      EXPECT_NE(ti.sem_addr, 0u);
    }
  }
  EXPECT_GT(allocs, 50u);  // dedup is allocation heavy
  EXPECT_GT(frees, 20u);
}

TEST(Workload, InstructionMixNearProfile) {
  WorkloadConfig cfg = small_config("bodytrack", 100000);
  WorkloadGen gen(cfg);
  std::map<isa::InstClass, u64> counts;
  TraceInst ti;
  u64 n = 0;
  while (gen.next(ti)) {
    ++counts[ti.cls];
    ++n;
  }
  const double f_load = static_cast<double>(counts[isa::InstClass::kLoad]) / n;
  const double f_store = static_cast<double>(counts[isa::InstClass::kStore]) / n;
  const double f_branch = static_cast<double>(counts[isa::InstClass::kBranch]) / n;
  // Prologue/epilogue traffic adds a bit on top of the profile targets.
  EXPECT_NEAR(f_load, cfg.profile.f_load, 0.08);
  EXPECT_NEAR(f_store, cfg.profile.f_store, 0.08);
  EXPECT_GT(f_branch, 0.03);
  // The trace may end mid-call-chain; calls and returns match to within the
  // final in-flight nesting depth.
  const i64 call_ret_gap = static_cast<i64>(counts[isa::InstClass::kCall]) -
                           static_cast<i64>(counts[isa::InstClass::kRet]);
  EXPECT_GE(call_ret_gap, 0);
  EXPECT_LE(call_ret_gap, 64);
}

TEST(Workload, AttackIdsSequentialAndPayloadTagged) {
  WorkloadConfig cfg = small_config();
  cfg.attacks = {{AttackKind::kHeapOob, 8}};
  WorkloadGen gen(cfg);
  TraceInst ti;
  std::vector<u32> ids;
  while (gen.next(ti)) {
    if (ti.attack_id != 0) {
      ids.push_back(ti.attack_id);
      EXPECT_EQ(ti.wb_value, ti.attack_id);  // debug data carries the id
    }
  }
  ASSERT_EQ(ids.size(), 8u);
  for (size_t i = 1; i < ids.size(); ++i) EXPECT_GT(ids[i], ids[i - 1]);
}

TEST(Workload, StartupAllocEventsComeFirst) {
  WorkloadGen gen(small_config());
  TraceInst ti;
  ASSERT_TRUE(gen.next(ti));
  EXPECT_EQ(ti.sem, SemEvent::kAlloc);  // pre-seeded heap is announced
}

}  // namespace
}  // namespace fg::trace
