#include <gtest/gtest.h>

#include "src/core/cdc.h"

namespace fg::core {
namespace {

Packet pk(u64 seq) {
  Packet p;
  p.valid = true;
  p.seq = seq;
  return p;
}

TEST(Cdc, HandshakeDelaysVisibility) {
  CdcFifo cdc(8, 2);  // ratio 2: fast cycle 10 -> slow cycle 5
  cdc.push(pk(1), 10);
  EXPECT_FALSE(cdc.can_pop(5));  // synchronizer not settled
  EXPECT_TRUE(cdc.can_pop(6));
  EXPECT_EQ(cdc.pop().seq, 1u);
}

TEST(Cdc, CapacityEnforced) {
  CdcFifo cdc(2, 2);
  EXPECT_TRUE(cdc.can_push());
  cdc.push(pk(1), 0);
  cdc.push(pk(2), 0);
  EXPECT_FALSE(cdc.can_push());
  EXPECT_TRUE(cdc.full());
  cdc.note_reject();
  EXPECT_EQ(cdc.stats().full_rejects, 1u);
  (void)cdc.can_pop(100);
  cdc.pop();
  EXPECT_TRUE(cdc.can_push());
}

TEST(Cdc, FifoOrderPreserved) {
  CdcFifo cdc(8, 2);
  for (u64 i = 0; i < 5; ++i) cdc.push(pk(i), i);
  for (u64 i = 0; i < 5; ++i) {
    ASSERT_TRUE(cdc.can_pop(100));
    EXPECT_EQ(cdc.pop().seq, i);
  }
  EXPECT_TRUE(cdc.empty());
}

TEST(Cdc, StatsCountFlow) {
  CdcFifo cdc(8, 2);
  cdc.push(pk(0), 0);
  cdc.push(pk(1), 0);
  (void)cdc.can_pop(10);
  cdc.pop();
  EXPECT_EQ(cdc.stats().pushes, 2u);
  EXPECT_EQ(cdc.stats().pops, 1u);
  EXPECT_EQ(cdc.size(), 1u);
}

class CdcRatio : public ::testing::TestWithParam<u32> {};

TEST_P(CdcRatio, VisibilityScalesWithRatio) {
  const u32 ratio = GetParam();
  CdcFifo cdc(8, ratio);
  const Cycle fast = 100;
  cdc.push(pk(7), fast);
  const Cycle slow_now = fast / ratio;
  EXPECT_FALSE(cdc.can_pop(slow_now));
  EXPECT_TRUE(cdc.can_pop(slow_now + 1));
}

INSTANTIATE_TEST_SUITE_P(Ratios, CdcRatio, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace fg::core
