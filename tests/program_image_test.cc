#include <gtest/gtest.h>

#include "src/trace/profile.h"
#include "src/trace/program_image.h"

namespace fg::trace {
namespace {

WorkloadProfile small_profile() {
  WorkloadProfile p = profile_by_name("blackscholes");
  p.n_funcs = 24;
  return p;
}

TEST(ProgramImage, DeterministicForSameSeed) {
  const WorkloadProfile p = small_profile();
  ProgramImage a(p, 7), b(p, 7);
  ASSERT_EQ(a.n_funcs(), b.n_funcs());
  for (u16 f = 0; f < a.n_funcs(); ++f) {
    const auto& fa = a.func(f);
    const auto& fb = b.func(f);
    ASSERT_EQ(fa.insts.size(), fb.insts.size());
    EXPECT_EQ(fa.entry_pc, fb.entry_pc);
    for (size_t i = 0; i < fa.insts.size(); ++i) {
      EXPECT_EQ(fa.insts[i].enc, fb.insts[i].enc);
    }
  }
}

TEST(ProgramImage, DifferentSeedsDiffer) {
  const WorkloadProfile p = small_profile();
  ProgramImage a(p, 1), b(p, 2);
  bool any_diff = false;
  for (u16 f = 0; f < a.n_funcs() && !any_diff; ++f) {
    if (a.func(f).insts.size() != b.func(f).insts.size()) any_diff = true;
  }
  EXPECT_TRUE(any_diff || a.func(0).insts[3].enc != b.func(0).insts[3].enc);
}

TEST(ProgramImage, PcsWithinTextBounds) {
  ProgramImage img(small_profile(), 3);
  EXPECT_EQ(img.text_lo(), kTextBase);
  for (u16 f = 0; f < img.n_funcs(); ++f) {
    const auto& fn = img.func(f);
    EXPECT_GE(fn.entry_pc, img.text_lo());
    EXPECT_LT(fn.pc_of(fn.insts.size() - 1), img.text_hi());
  }
}

TEST(ProgramImage, CalleesFormDag) {
  ProgramImage img(small_profile(), 4);
  for (u16 f = 0; f < img.n_funcs(); ++f) {
    for (const StaticInst& si : img.func(f).insts) {
      if (si.cls == isa::InstClass::kCall) {
        ASSERT_NE(si.callee, kNoFunc);
        EXPECT_GT(si.callee, f) << "calls must go to higher indices (no recursion)";
        EXPECT_LT(si.callee, img.n_funcs());
      }
    }
  }
}

TEST(ProgramImage, BranchTargetsValid) {
  ProgramImage img(small_profile(), 5);
  for (u16 f = 0; f < img.n_funcs(); ++f) {
    const auto& fn = img.func(f);
    for (size_t i = 0; i < fn.insts.size(); ++i) {
      const StaticInst& si = fn.insts[i];
      if (si.cls == isa::InstClass::kBranch) {
        EXPECT_LT(si.target_idx, fn.insts.size());
        EXPECT_GT(si.taken_bias, 0.0f);
        EXPECT_LT(si.taken_bias, 1.0f);
      }
    }
  }
}

TEST(ProgramImage, EveryFunctionEndsInRet) {
  ProgramImage img(small_profile(), 6);
  for (u16 f = 0; f < img.n_funcs(); ++f) {
    const auto& fn = img.func(f);
    ASSERT_FALSE(fn.insts.empty());
    EXPECT_EQ(fn.insts.back().cls, isa::InstClass::kRet);
    EXPECT_TRUE(isa::is_ret(fn.insts.back().enc));
  }
}

TEST(ProgramImage, PrologueSavesReturnAddress) {
  ProgramImage img(small_profile(), 7);
  const auto& fn = img.func(0);
  // addi sp; sd ra; sd s0
  EXPECT_EQ(fn.insts[0].cls, isa::InstClass::kIntAlu);
  EXPECT_EQ(fn.insts[1].cls, isa::InstClass::kStore);
  EXPECT_EQ(fn.insts[1].region, MemRegion::kStack);
  EXPECT_EQ(fn.insts[2].cls, isa::InstClass::kStore);
}

TEST(ProgramImage, EntryPickIsHotBiased) {
  ProgramImage img(small_profile(), 8);
  Rng rng(99);
  std::vector<int> counts(img.n_funcs(), 0);
  for (int i = 0; i < 10000; ++i) ++counts[img.pick_entry(rng)];
  // Entry 0 is the hottest under the Zipf-like distribution.
  int max_idx = 0;
  for (size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[max_idx]) max_idx = static_cast<int>(i);
  }
  EXPECT_EQ(max_idx, 0);
}

TEST(ProgramImage, StaticInstCountScalesWithFuncs) {
  WorkloadProfile p = small_profile();
  ProgramImage small(p, 9);
  p.n_funcs = 96;
  ProgramImage big(p, 9);
  EXPECT_GT(big.static_inst_count(), 2 * small.static_inst_count());
}

class ImageProfiles : public ::testing::TestWithParam<std::string> {};

TEST_P(ImageProfiles, BuildsAllProfiles) {
  const WorkloadProfile& p = profile_by_name(GetParam());
  ProgramImage img(p, 42);
  EXPECT_EQ(img.n_funcs(), static_cast<u16>(p.n_funcs));
  EXPECT_GT(img.static_inst_count(), 100u);
  EXPECT_GT(img.text_hi(), img.text_lo());
}

INSTANTIATE_TEST_SUITE_P(
    AllParsec, ImageProfiles,
    ::testing::Values("blackscholes", "bodytrack", "dedup", "ferret",
                      "fluidanimate", "freqmine", "streamcluster", "swaptions",
                      "x264"));

}  // namespace
}  // namespace fg::trace
