// Property tests for the event filter's lazy-drain arbiter path (rewritten
// for speed in PR 3 — placeholder elision, bulk placeholder clear, O(1)
// buffered counters): random interleavings of valid packets and ordering
// placeholders across lanes must always emit exactly the valid packets in
// global commit (seq) order, with the occupancy counters exact throughout.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/core/filter.h"

namespace fg::core {
namespace {

Packet valid_packet(u64 seq) {
  Packet p;
  p.valid = true;
  p.gid_bitmap = 1;
  p.seq = seq;
  p.pc = 0x1000 + seq;
  return p;
}

TEST(FilterProperty, ArbiterEmitsValidPacketsInSeqOrderUnderRandomMix) {
  for (const u32 width : {1u, 2u, 4u}) {
    EventFilterConfig cfg;
    cfg.width = width;
    cfg.fifo_depth = 4;  // small: exercises back-pressure constantly
    EventFilter filter(cfg);
    Rng rng(0xab0 + width);

    std::vector<u64> expected;  // seqs of valid packets, offer order
    std::vector<u64> emitted;
    u64 seq = 0;
    u64 offered_valid = 0;
    for (int cycle = 0; cycle < 5'000; ++cycle) {
      // Commit phase: lanes in order, stopping at the first not-ready lane
      // (commit is in order, as in the core).
      const u32 commits = static_cast<u32>(rng.below(width + 1));
      for (u32 lane = 0; lane < commits; ++lane) {
        if (!filter.lane_ready(lane)) break;
        if (rng.chance(0.35)) {
          filter.offer_valid(lane, valid_packet(seq));
          expected.push_back(seq);
          ++offered_valid;
        } else {
          filter.offer_placeholder(lane, seq);
        }
        ++seq;
      }
      // Arbiter phase: drain a random number of packets this cycle.
      const u32 drains = static_cast<u32>(rng.below(width + 2));
      for (u32 k = 0; k < drains; ++k) {
        Packet out;
        if (!filter.arbiter_peek(out)) break;
        ASSERT_TRUE(out.valid);
        filter.arbiter_pop();
        emitted.push_back(out.seq);
      }
      // O(1) counter contract, continuously.
      ASSERT_EQ(filter.valid_buffered(), offered_valid - emitted.size());
      ASSERT_GE(filter.buffered(), filter.valid_buffered());
    }
    // Final drain.
    Packet out;
    while (filter.arbiter_peek(out)) {
      filter.arbiter_pop();
      emitted.push_back(out.seq);
    }
    ASSERT_EQ(filter.valid_buffered(), 0u);
    // Everything valid came out, in exactly global seq order.
    ASSERT_EQ(emitted, expected);
    const EventFilterStats& st = filter.stats();
    EXPECT_EQ(st.valid_packets, offered_valid);
    EXPECT_EQ(st.valid_packets + st.invalid_packets, st.committed_seen);
    EXPECT_EQ(st.arbiter_output, emitted.size());
  }
}

/// Placeholder elision: with nothing valid buffered anywhere, a placeholder
/// is accounted but never materialized (PR-3 fast path).
TEST(FilterProperty, PlaceholdersElideWhenNothingValidIsBuffered) {
  EventFilter filter(EventFilterConfig{2, 4});
  filter.offer_placeholder(0, 0);
  filter.offer_placeholder(1, 1);
  EXPECT_EQ(filter.buffered(), 0u);  // elided entirely
  EXPECT_EQ(filter.stats().invalid_packets, 2u);
  Packet out;
  EXPECT_FALSE(filter.arbiter_peek(out));
}

/// With a valid packet buffered, placeholders must materialize (they carry
/// the cross-lane ordering proof) — and a younger valid packet on another
/// lane must wait for the older placeholder to resolve.
TEST(FilterProperty, MaterializedPlaceholdersGateYoungerValids) {
  EventFilter filter(EventFilterConfig{2, 4});
  filter.offer_valid(0, valid_packet(0));
  filter.offer_placeholder(0, 1);  // must take a slot: lane 0 has a valid
  EXPECT_EQ(filter.buffered(), 2u);
  filter.offer_valid(1, valid_packet(2));
  Packet out;
  ASSERT_TRUE(filter.arbiter_peek(out));
  EXPECT_EQ(out.seq, 0u);
  filter.arbiter_pop();
  // seq 1 (placeholder) is skipped for free; seq 2 is next.
  ASSERT_TRUE(filter.arbiter_peek(out));
  EXPECT_EQ(out.seq, 2u);
  filter.arbiter_pop();
  EXPECT_EQ(filter.buffered(), 0u);
}

/// Bulk clear: when the last valid packet leaves, trailing placeholders are
/// dropped wholesale on the next scan instead of one pop per packet.
TEST(FilterProperty, TrailingPlaceholdersClearInBulk) {
  EventFilter filter(EventFilterConfig{2, 8});
  filter.offer_valid(0, valid_packet(0));
  for (u64 s = 1; s <= 5; ++s) filter.offer_placeholder(s % 2, s);
  EXPECT_EQ(filter.buffered(), 6u);
  Packet out;
  ASSERT_TRUE(filter.arbiter_peek(out));
  filter.arbiter_pop();  // last valid gone; placeholders now clear in bulk
  EXPECT_FALSE(filter.arbiter_peek(out));
  EXPECT_EQ(filter.buffered(), 0u);
  EXPECT_EQ(filter.valid_buffered(), 0u);
}

/// lane_ready back-pressure: a full lane FIFO refuses further commits until
/// the arbiter drains it, and the refusal never corrupts ordering.
TEST(FilterProperty, FullLaneBackPressureKeepsOrder) {
  EventFilter filter(EventFilterConfig{1, 2});
  filter.offer_valid(0, valid_packet(0));
  filter.offer_valid(0, valid_packet(1));
  EXPECT_FALSE(filter.lane_ready(0));  // depth 2: full
  Packet out;
  ASSERT_TRUE(filter.arbiter_peek(out));
  filter.arbiter_pop();
  EXPECT_TRUE(filter.lane_ready(0));
  filter.offer_valid(0, valid_packet(2));
  ASSERT_TRUE(filter.arbiter_peek(out));
  EXPECT_EQ(out.seq, 1u);
  filter.arbiter_pop();
  ASSERT_TRUE(filter.arbiter_peek(out));
  EXPECT_EQ(out.seq, 2u);
}

}  // namespace
}  // namespace fg::core
