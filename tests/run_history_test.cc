// The simspeed runs[] history loader: missing / malformed files are
// distinguished from valid ones (the --check gate fails loudly on the
// former), and the schema-v2 append path round-trips across "invocations".
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/common/run_history.h"

namespace fg {
namespace {

std::string temp_file(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

/// A minimal but realistic schema-v2 file, as simspeed writes it.
std::string v2_file(const std::string& runs_items) {
  return "{\n  \"schema\": \"fireguard/sim_speed/v2\",\n  \"quick\": false,\n"
         "  \"runs\": [\n    " +
         runs_items + "\n  ]\n}\n";
}

TEST(RunHistory, MissingFileIsMissing) {
  std::string items = "sentinel";
  EXPECT_EQ(load_runs_history(temp_file("fg_no_such_file.json"), &items),
            HistoryStatus::kMissing);
  EXPECT_EQ(items, "");  // cleared on failure
}

TEST(RunHistory, FileWithoutRunsArrayIsMalformed) {
  const std::string path = temp_file("fg_hist_malformed.json");
  write_file(path, "{\n  \"schema\": \"fireguard/sim_speed/v2\"\n}\n");
  std::string items = "sentinel";
  EXPECT_EQ(load_runs_history(path, &items), HistoryStatus::kMalformed);
  EXPECT_EQ(items, "");
  std::filesystem::remove(path);
}

TEST(RunHistory, EmptyRunsArrayIsOkAndEmpty) {
  const std::string path = temp_file("fg_hist_empty.json");
  write_file(path, "{\n  \"runs\": [\n  ]\n}\n");
  std::string items;
  EXPECT_EQ(load_runs_history(path, &items), HistoryStatus::kOk);
  EXPECT_EQ(items, "");
  std::filesystem::remove(path);
}

TEST(RunHistory, SchemaV2AppendPathRoundTrips) {
  const std::string path = temp_file("fg_hist_append.json");
  const std::string run1 = "{\"date\": \"2026-01-01T00:00:00Z\", \"n\": 1}";
  const std::string run2 = "{\"date\": \"2026-02-02T00:00:00Z\", \"n\": 2}";

  // Invocation 1: no prior history, write run1.
  write_file(path, v2_file(append_run_record("", run1)));
  std::string items;
  ASSERT_EQ(load_runs_history(path, &items), HistoryStatus::kOk);
  EXPECT_EQ(items, run1);

  // Invocation 2: carry run1 forward, append run2.
  write_file(path, v2_file(append_run_record(items, run2)));
  ASSERT_EQ(load_runs_history(path, &items), HistoryStatus::kOk);
  EXPECT_NE(items.find("\"n\": 1"), std::string::npos);
  EXPECT_NE(items.find("\"n\": 2"), std::string::npos);
  // Order preserved: run1 before run2.
  EXPECT_LT(items.find("\"n\": 1"), items.find("\"n\": 2"));

  // Invocation 3: the carried-forward list still parses (stability under
  // repeated append — the regression PR 4 guards against).
  const std::string run3 = "{\"date\": \"2026-03-03T00:00:00Z\", \"n\": 3}";
  write_file(path, v2_file(append_run_record(items, run3)));
  ASSERT_EQ(load_runs_history(path, &items), HistoryStatus::kOk);
  EXPECT_LT(items.find("\"n\": 2"), items.find("\"n\": 3"));
  std::filesystem::remove(path);
}

// --- v2 → v3 migration ----------------------------------------------------
//
// Schema v3 widens each run record with per-kernel speedups and a
// skip-length histogram array. The history file is carried forward
// text-level, so a v3 simspeed reads mixed histories: old v2 records (no
// new fields) followed by v3 records (with them). These regressions pin the
// migration contract: records split correctly even with nested arrays,
// fields absent from v2 records are *skipped* (not misparsed), and the
// trajectory gate's field extraction works on both generations.

namespace {

const char kV2Record[] =
    "{\"date\": \"2026-07-26T17:34:00Z\", \"quick\": false, "
    "\"trace_len\": 150000, \"pmc_cycles_per_sec\": 4524851, "
    "\"event_speedup_pmc\": 1.048, \"sweep_speedup\": 1.140, "
    "\"bit_identical\": true}";

const char kV3Record[] =
    "{\"date\": \"2026-08-08T00:00:00Z\", \"quick\": false, "
    "\"trace_len\": 150000, \"pmc_cycles_per_sec\": 5100000, "
    "\"event_speedup_pmc\": 1.102, \"event_speedup_asan\": 1.031, "
    "\"event_speedup_memstall\": 1.870, "
    "\"skip_len_hist\": [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11], "
    "\"bit_identical\": true}";

}  // namespace

TEST(RunHistory, SplitHandlesMixedV2V3Records) {
  const std::string items = append_run_record(kV2Record, kV3Record);
  const std::vector<std::string> recs = split_run_records(items);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0], kV2Record);
  // The nested histogram array must not split the v3 record.
  EXPECT_EQ(recs[1], kV3Record);
}

TEST(RunHistory, SplitOfEmptyHistoryIsEmpty) {
  EXPECT_TRUE(split_run_records("").empty());
}

TEST(RunHistory, V3FieldsAbsentFromV2RecordsAreSkippedNotMisparsed) {
  double v = -1.0;
  // Present in both generations.
  ASSERT_TRUE(run_record_number(kV2Record, "event_speedup_pmc", &v));
  EXPECT_DOUBLE_EQ(v, 1.048);
  ASSERT_TRUE(run_record_number(kV3Record, "event_speedup_pmc", &v));
  EXPECT_DOUBLE_EQ(v, 1.102);
  // v3-only fields: absent from the v2 record, found in the v3 one.
  EXPECT_FALSE(run_record_number(kV2Record, "event_speedup_memstall", &v));
  ASSERT_TRUE(run_record_number(kV3Record, "event_speedup_memstall", &v));
  EXPECT_DOUBLE_EQ(v, 1.870);
}

TEST(RunHistory, FlagExtractionWorksAcrossGenerations) {
  bool b = false;
  ASSERT_TRUE(run_record_flag(kV2Record, "bit_identical", &b));
  EXPECT_TRUE(b);
  ASSERT_TRUE(run_record_flag(kV3Record, "quick", &b));
  EXPECT_FALSE(b);
  // Absent key: untouched output, false return.
  b = true;
  EXPECT_FALSE(run_record_flag(kV2Record, "no_such_flag", &b));
  EXPECT_TRUE(b);
  // A key whose value is not a bool literal is not a flag.
  EXPECT_FALSE(run_record_flag(kV3Record, "trace_len", &b));
}

TEST(RunHistory, MixedHistoryRoundTripsThroughFileAndBack) {
  const std::string path = temp_file("fg_hist_v2v3.json");
  write_file(path, v2_file(append_run_record(kV2Record, kV3Record)));
  std::string items;
  ASSERT_EQ(load_runs_history(path, &items), HistoryStatus::kOk);
  const std::vector<std::string> recs = split_run_records(items);
  ASSERT_EQ(recs.size(), 2u);
  double v = 0.0;
  EXPECT_FALSE(run_record_number(recs[0], "event_speedup_asan", &v));
  EXPECT_TRUE(run_record_number(recs[1], "event_speedup_asan", &v));
  EXPECT_DOUBLE_EQ(v, 1.031);
  std::filesystem::remove(path);
}

// --- v3 → v4 migration ----------------------------------------------------
//
// Schema v4 widens each run record with per-kernel pipeline speedups (the
// two-thread FG_PIPELINE scheduler vs the serial event loop). Same contract
// as v2→v3: mixed histories split cleanly, v4-only fields are skipped (not
// misparsed) on older records, and the extraction the trajectory gate uses
// works on every generation.

namespace {

const char kV4Record[] =
    "{\"date\": \"2026-08-08T12:00:00Z\", \"quick\": false, "
    "\"trace_len\": 150000, \"pmc_cycles_per_sec\": 5200000, "
    "\"event_speedup_pmc\": 1.110, \"event_speedup_asan\": 1.040, "
    "\"event_speedup_memstall\": 1.902, "
    "\"pipeline_speedup_pmc\": 1.310, \"pipeline_speedup_asan\": 1.420, "
    "\"pipeline_speedup_memstall\": 1.150, "
    "\"skip_len_hist\": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12], "
    "\"sweep_speedup\": 1.210, \"bit_identical\": true}";

}  // namespace

TEST(RunHistory, SplitHandlesMixedV2V3V4Records) {
  const std::string items =
      append_run_record(append_run_record(kV2Record, kV3Record), kV4Record);
  const std::vector<std::string> recs = split_run_records(items);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0], kV2Record);
  EXPECT_EQ(recs[1], kV3Record);
  // The nested histogram array must not split the v4 record either.
  EXPECT_EQ(recs[2], kV4Record);
}

TEST(RunHistory, V4FieldsAbsentFromOlderRecordsAreSkippedNotMisparsed) {
  double v = -1.0;
  // Shared fields still read from every generation.
  ASSERT_TRUE(run_record_number(kV4Record, "event_speedup_pmc", &v));
  EXPECT_DOUBLE_EQ(v, 1.110);
  // v4-only fields: absent from v2 and v3 records, found in the v4 one.
  EXPECT_FALSE(run_record_number(kV2Record, "pipeline_speedup_pmc", &v));
  EXPECT_FALSE(run_record_number(kV3Record, "pipeline_speedup_pmc", &v));
  ASSERT_TRUE(run_record_number(kV4Record, "pipeline_speedup_pmc", &v));
  EXPECT_DOUBLE_EQ(v, 1.310);
  ASSERT_TRUE(run_record_number(kV4Record, "pipeline_speedup_memstall", &v));
  EXPECT_DOUBLE_EQ(v, 1.150);
}

TEST(RunHistory, V4TrajectoryExtractionSkipsOtherGenerations) {
  // The simspeed --check gate walks the whole history and takes the best
  // same-mode value of a field; records predating the field contribute
  // nothing. Mirror that walk over a three-generation history.
  const std::string items =
      append_run_record(append_run_record(kV2Record, kV3Record), kV4Record);
  double best = 0.0;
  int readable = 0;
  for (const std::string& rec : split_run_records(items)) {
    double v = 0.0;
    if (run_record_number(rec, "pipeline_speedup_asan", &v)) {
      best = std::max(best, v);
      ++readable;
    }
  }
  EXPECT_EQ(readable, 1);
  EXPECT_DOUBLE_EQ(best, 1.420);
}

TEST(RunHistory, StatusNamesAreStable) {
  EXPECT_STREQ(history_status_name(HistoryStatus::kOk), "ok");
  EXPECT_STREQ(history_status_name(HistoryStatus::kMissing), "missing");
  EXPECT_STREQ(history_status_name(HistoryStatus::kMalformed), "malformed");
}

// --- corrupt-history quarantine -------------------------------------------
//
// simspeed recovers from a malformed history by moving it aside (never
// silently overwriting the evidence) and starting fresh; these pin the
// quarantine helper that recovery rests on.

TEST(RunHistory, QuarantineMovesFileAside) {
  const std::string path = temp_file("fg_hist_quarantine.json");
  write_file(path, "truncated garb");
  const std::string dst = quarantine_history(path);
  EXPECT_EQ(dst, path + ".corrupt");
  EXPECT_FALSE(std::filesystem::exists(path));
  ASSERT_TRUE(std::filesystem::exists(dst));
  // The evidence is preserved byte for byte.
  std::ifstream in(dst);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text, "truncated garb");
  std::filesystem::remove(dst);
}

TEST(RunHistory, QuarantineReplacesPreviousQuarantine) {
  const std::string path = temp_file("fg_hist_requarantine.json");
  write_file(path + ".corrupt", "older corruption");
  write_file(path, "newer corruption");
  EXPECT_EQ(quarantine_history(path), path + ".corrupt");
  std::ifstream in(path + ".corrupt");
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text, "newer corruption");
  std::filesystem::remove(path + ".corrupt");
}

TEST(RunHistory, QuarantineOfMissingFileFailsCleanly) {
  EXPECT_EQ(quarantine_history(temp_file("fg_hist_never_existed.json")), "");
}

}  // namespace
}  // namespace fg
