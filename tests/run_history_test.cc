// The simspeed runs[] history loader: missing / malformed files are
// distinguished from valid ones (the --check gate fails loudly on the
// former), and the schema-v2 append path round-trips across "invocations".
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/common/run_history.h"

namespace fg {
namespace {

std::string temp_file(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

/// A minimal but realistic schema-v2 file, as simspeed writes it.
std::string v2_file(const std::string& runs_items) {
  return "{\n  \"schema\": \"fireguard/sim_speed/v2\",\n  \"quick\": false,\n"
         "  \"runs\": [\n    " +
         runs_items + "\n  ]\n}\n";
}

TEST(RunHistory, MissingFileIsMissing) {
  std::string items = "sentinel";
  EXPECT_EQ(load_runs_history(temp_file("fg_no_such_file.json"), &items),
            HistoryStatus::kMissing);
  EXPECT_EQ(items, "");  // cleared on failure
}

TEST(RunHistory, FileWithoutRunsArrayIsMalformed) {
  const std::string path = temp_file("fg_hist_malformed.json");
  write_file(path, "{\n  \"schema\": \"fireguard/sim_speed/v2\"\n}\n");
  std::string items = "sentinel";
  EXPECT_EQ(load_runs_history(path, &items), HistoryStatus::kMalformed);
  EXPECT_EQ(items, "");
  std::filesystem::remove(path);
}

TEST(RunHistory, EmptyRunsArrayIsOkAndEmpty) {
  const std::string path = temp_file("fg_hist_empty.json");
  write_file(path, "{\n  \"runs\": [\n  ]\n}\n");
  std::string items;
  EXPECT_EQ(load_runs_history(path, &items), HistoryStatus::kOk);
  EXPECT_EQ(items, "");
  std::filesystem::remove(path);
}

TEST(RunHistory, SchemaV2AppendPathRoundTrips) {
  const std::string path = temp_file("fg_hist_append.json");
  const std::string run1 = "{\"date\": \"2026-01-01T00:00:00Z\", \"n\": 1}";
  const std::string run2 = "{\"date\": \"2026-02-02T00:00:00Z\", \"n\": 2}";

  // Invocation 1: no prior history, write run1.
  write_file(path, v2_file(append_run_record("", run1)));
  std::string items;
  ASSERT_EQ(load_runs_history(path, &items), HistoryStatus::kOk);
  EXPECT_EQ(items, run1);

  // Invocation 2: carry run1 forward, append run2.
  write_file(path, v2_file(append_run_record(items, run2)));
  ASSERT_EQ(load_runs_history(path, &items), HistoryStatus::kOk);
  EXPECT_NE(items.find("\"n\": 1"), std::string::npos);
  EXPECT_NE(items.find("\"n\": 2"), std::string::npos);
  // Order preserved: run1 before run2.
  EXPECT_LT(items.find("\"n\": 1"), items.find("\"n\": 2"));

  // Invocation 3: the carried-forward list still parses (stability under
  // repeated append — the regression PR 4 guards against).
  const std::string run3 = "{\"date\": \"2026-03-03T00:00:00Z\", \"n\": 3}";
  write_file(path, v2_file(append_run_record(items, run3)));
  ASSERT_EQ(load_runs_history(path, &items), HistoryStatus::kOk);
  EXPECT_LT(items.find("\"n\": 2"), items.find("\"n\": 3"));
  std::filesystem::remove(path);
}

TEST(RunHistory, StatusNamesAreStable) {
  EXPECT_STREQ(history_status_name(HistoryStatus::kOk), "ok");
  EXPECT_STREQ(history_status_name(HistoryStatus::kMissing), "missing");
  EXPECT_STREQ(history_status_name(HistoryStatus::kMalformed), "malformed");
}

}  // namespace
}  // namespace fg
