#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/filter.h"

namespace fg::core {
namespace {

Packet mk(u32 enc, u64 seq) {
  Packet p;
  p.inst = enc;
  p.seq = seq;
  p.pc = 0x1000 + seq * 4;
  p.addr = 0xaa00 + seq;
  p.data = 0xbb00 + seq;
  return p;
}

TEST(FilterTable, ProgramAndLookup) {
  FilterTable t;
  t.program(isa::kOpLoad, 0x3, 0b0001, kDpLsq);
  const FilterEntry& e = t.lookup(isa::make_load(0x3, 1, 2, 0));
  EXPECT_EQ(e.gid_bitmap, 0b0001);
  EXPECT_EQ(e.dp_sel, kDpLsq);
  // Other funct3 not programmed.
  EXPECT_EQ(t.lookup(isa::make_load(0x2, 1, 2, 0)).gid_bitmap, 0);
}

TEST(FilterTable, ProgramOpcodeCoversAllFunct3) {
  FilterTable t;
  t.program_opcode(isa::kOpJal, 0b0010, kDpFtq);
  for (u8 f3 = 0; f3 < 8; ++f3) {
    const u16 idx = static_cast<u16>((f3 << 7) | isa::kOpJal);
    EXPECT_EQ(t.entry(idx).gid_bitmap, 0b0010);
  }
}

TEST(FilterTable, AddInterestOrsGids) {
  FilterTable t;
  t.add_interest(isa::kOpLoad, 0x3, 0, kDpLsq);
  t.add_interest(isa::kOpLoad, 0x3, 2, kDpPrf);
  const FilterEntry& e = t.lookup(isa::make_load(0x3, 1, 2, 0));
  EXPECT_EQ(e.gid_bitmap, 0b0101);
  EXPECT_EQ(e.dp_sel, kDpLsq | kDpPrf);
}

TEST(EventFilter, LaneBeyondWidthRefused) {
  EventFilter f(EventFilterConfig{2, 16});
  EXPECT_TRUE(f.lane_ready(0));
  EXPECT_TRUE(f.lane_ready(1));
  EXPECT_FALSE(f.lane_ready(2));
  EXPECT_TRUE(f.lane_blocked_by_width(2));
  EXPECT_FALSE(f.lane_blocked_by_width(1));
}

TEST(EventFilter, IrrelevantInstructionsBecomePlaceholders) {
  EventFilter f(EventFilterConfig{4, 16});
  f.offer(0, mk(isa::make_alu_rr(0, 1, 2, 3, false), 0));
  Packet out;
  EXPECT_FALSE(f.arbiter_peek(out));  // placeholder dropped, nothing valid
  EXPECT_EQ(f.stats().invalid_packets, 1u);
  EXPECT_EQ(f.buffered(), 0u);  // resolved and discarded
}

TEST(EventFilter, SelectedInstructionsFlowThrough) {
  EventFilter f(EventFilterConfig{4, 16});
  f.table().add_interest(isa::kOpLoad, 0x3, 1, kDpLsq | kDpPrf);
  f.offer(0, mk(isa::make_load(0x3, 5, 6, 0), 0));
  Packet out;
  ASSERT_TRUE(f.arbiter_peek(out));
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(out.gid_bitmap, 0b10);
  EXPECT_EQ(out.seq, 0u);
  f.arbiter_pop();
  EXPECT_FALSE(f.arbiter_peek(out));
}

TEST(EventFilter, DpSelMasksUnreadPaths) {
  EventFilter f(EventFilterConfig{4, 16});
  f.table().add_interest(isa::kOpLoad, 0x3, 0, kDpLsq);  // no PRF
  f.offer(0, mk(isa::make_load(0x3, 5, 6, 0), 0));
  Packet out;
  ASSERT_TRUE(f.arbiter_peek(out));
  EXPECT_NE(out.addr, 0u);   // LSQ path selected
  EXPECT_EQ(out.data, 0u);   // PRF path not read
}

TEST(EventFilter, ArbiterRestoresCommitOrderAcrossLanes) {
  EventFilter f(EventFilterConfig{4, 16});
  f.table().add_interest(isa::kOpLoad, 0x3, 0, kDpLsq);
  const u32 ld = isa::make_load(0x3, 5, 6, 0);
  // Cycle 1: lanes 0..3 get seq 0..3; cycle 2: lanes 0..1 get seq 4..5.
  for (u64 s = 0; s < 4; ++s) f.offer(static_cast<u32>(s), mk(ld, s));
  f.offer(0, mk(ld, 4));
  f.offer(1, mk(ld, 5));
  for (u64 expect = 0; expect < 6; ++expect) {
    Packet out;
    ASSERT_TRUE(f.arbiter_peek(out));
    EXPECT_EQ(out.seq, expect);
    f.arbiter_pop();
  }
}

TEST(EventFilter, PlaceholdersPreserveOrdering) {
  EventFilter f(EventFilterConfig{2, 16});
  f.table().add_interest(isa::kOpLoad, 0x3, 0, kDpLsq);
  const u32 ld = isa::make_load(0x3, 5, 6, 0);
  const u32 nop = isa::make_alu_rr(0, 1, 2, 3, false);
  // Lane 0 gets an irrelevant inst (seq 0); lane 1 a relevant one (seq 1).
  f.offer(0, mk(nop, 0));
  f.offer(1, mk(ld, 1));
  // Next cycle: lane 0 relevant (seq 2).
  f.offer(0, mk(ld, 2));
  Packet out;
  ASSERT_TRUE(f.arbiter_peek(out));
  EXPECT_EQ(out.seq, 1u);
  f.arbiter_pop();
  ASSERT_TRUE(f.arbiter_peek(out));
  EXPECT_EQ(out.seq, 2u);
}

TEST(EventFilter, FifoFullBlocksLane) {
  EventFilter f(EventFilterConfig{1, 4});
  f.table().add_interest(isa::kOpLoad, 0x3, 0, kDpLsq);
  const u32 ld = isa::make_load(0x3, 5, 6, 0);
  for (u64 s = 0; s < 4; ++s) {
    ASSERT_TRUE(f.lane_ready(0));
    f.offer(0, mk(ld, s));
  }
  EXPECT_FALSE(f.lane_ready(0));
  EXPECT_TRUE(f.any_fifo_full());
  Packet out;
  ASSERT_TRUE(f.arbiter_peek(out));
  f.arbiter_pop();
  EXPECT_TRUE(f.lane_ready(0));
}

class FilterWidths : public ::testing::TestWithParam<u32> {};

TEST_P(FilterWidths, NoLossNoReorderUnderRandomTraffic) {
  const u32 width = GetParam();
  EventFilter f(EventFilterConfig{width, 16});
  f.table().add_interest(isa::kOpLoad, 0x3, 0, kDpLsq);
  const u32 ld = isa::make_load(0x3, 5, 6, 0);
  const u32 nop = isa::make_alu_rr(0, 1, 2, 3, false);
  Rng rng(width * 101);
  u64 seq = 0, expected_valid = 0, drained = 0;
  u64 next_expect = ~u64{0};
  std::vector<u64> order;
  for (int cycle = 0; cycle < 2000; ++cycle) {
    // Offer up to `width` commits if lanes are free.
    const u32 commits = static_cast<u32>(rng.below(width + 1));
    for (u32 lane = 0; lane < commits; ++lane) {
      if (!f.lane_ready(lane)) break;
      const bool relevant = rng.chance(0.5);
      f.offer(lane, mk(relevant ? ld : nop, seq));
      if (relevant) ++expected_valid;
      ++seq;
    }
    // Drain at most one per cycle.
    Packet out;
    if (f.arbiter_peek(out)) {
      order.push_back(out.seq);
      f.arbiter_pop();
      ++drained;
    }
  }
  while (true) {
    Packet out;
    if (!f.arbiter_peek(out)) break;
    order.push_back(out.seq);
    f.arbiter_pop();
    ++drained;
  }
  EXPECT_EQ(drained, expected_valid);
  for (size_t i = 1; i < order.size(); ++i) EXPECT_LT(order[i - 1], order[i]);
  (void)next_expect;
}

INSTANTIATE_TEST_SUITE_P(Widths, FilterWidths, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace fg::core
