#include <gtest/gtest.h>

#include "src/isa/riscv.h"

namespace fg::isa {
namespace {

TEST(Encode, RTypeFields) {
  const u32 e = enc_r(kOpOp, 3, 0x7, 10, 11, 0x20);
  EXPECT_EQ(opcode_of(e), kOpOp);
  EXPECT_EQ(rd_of(e), 3);
  EXPECT_EQ(funct3_of(e), 0x7);
  EXPECT_EQ(rs1_of(e), 10);
  EXPECT_EQ(rs2_of(e), 11);
  EXPECT_EQ(funct7_of(e), 0x20);
}

TEST(Encode, ITypeImmediateRoundTrip) {
  for (i32 imm : {-2048, -1, 0, 1, 7, 2047}) {
    const u32 e = enc_i(kOpOpImm, 1, 0, 2, imm);
    EXPECT_EQ(imm_i(e), imm) << "imm=" << imm;
  }
}

TEST(Encode, STypeImmediateRoundTrip) {
  for (i32 imm : {-2048, -64, 0, 5, 2047}) {
    const u32 e = enc_s(kOpStore, 3, 2, 7, imm);
    EXPECT_EQ(imm_s(e), imm) << "imm=" << imm;
  }
}

TEST(Encode, BTypeImmediateRoundTrip) {
  for (i32 imm : {-4096, -2, 0, 2, 64, 4094}) {
    const u32 e = enc_b(kOpBranch, 1, 5, 6, imm);
    EXPECT_EQ(imm_b(e), imm) << "imm=" << imm;
  }
}

TEST(Encode, JTypeImmediateRoundTrip) {
  for (i32 imm : {-(1 << 20), -2, 0, 2, 4096, (1 << 20) - 2}) {
    const u32 e = enc_j(kOpJal, 1, imm);
    EXPECT_EQ(imm_j(e), imm) << "imm=" << imm;
  }
}

TEST(Encode, UType) {
  const u32 e = enc_u(kOpLui, 5, 0x12345000);
  EXPECT_EQ(imm_u(e), 0x12345000);
  EXPECT_EQ(rd_of(e), 5);
}

TEST(FilterIndex, ConcatenatesFunct3AndOpcode) {
  // lb = opcode 0x03, funct3 0 -> index 0x003 (the paper's example).
  EXPECT_EQ(filter_index(make_load(0x0, 1, 2, 0)), 0x003);
  // sb = opcode 0x23, funct3 0 -> index 0x023.
  EXPECT_EQ(filter_index(make_store(0x0, 1, 2, 0)), 0x023);
  // ld = funct3 3 -> index (3 << 7) | 0x03.
  EXPECT_EQ(filter_index(make_load(0x3, 1, 2, 0)), (3u << 7) | 0x03);
  EXPECT_LT(filter_index(0xffffffff), kFilterTableSize);
}

TEST(CallRet, Classification) {
  EXPECT_TRUE(is_call(make_jal(1, 64)));     // jal ra, ...
  EXPECT_FALSE(is_call(make_jal(0, 64)));    // plain jump
  EXPECT_TRUE(is_call(make_jalr(1, 5, 0)));  // jalr ra, ...
  EXPECT_TRUE(is_ret(make_jalr(0, 1, 0)));   // jalr x0, 0(ra)
  EXPECT_FALSE(is_ret(make_jalr(0, 5, 0)));  // indirect jump via x5
  EXPECT_FALSE(is_ret(make_jalr(1, 1, 0)));  // links: a call
}

TEST(GuardEvents, DistinctFunct3) {
  const u32 alloc = make_guard_event(true);
  const u32 free = make_guard_event(false);
  EXPECT_EQ(opcode_of(alloc), kOpCustom0);
  EXPECT_EQ(opcode_of(free), kOpCustom0);
  EXPECT_EQ(funct3_of(alloc), kGuardAllocFunct3);
  EXPECT_EQ(funct3_of(free), kGuardFreeFunct3);
  EXPECT_NE(filter_index(alloc), filter_index(free));
}

TEST(Disassemble, KnownForms) {
  EXPECT_EQ(disassemble(make_load(0x3, 7, 2, 16)), "ld x7, 16(x2)");
  EXPECT_EQ(disassemble(make_store(0x2, 3, 9, -4)), "sw x9, -4(x3)");
  EXPECT_EQ(disassemble(make_alu_rr(0x0, 1, 2, 3, false)), "add x1, x2, x3");
  EXPECT_EQ(disassemble(make_alu_rr(0x0, 1, 2, 3, true)), "sub x1, x2, x3");
  EXPECT_EQ(disassemble(make_mul(0x0, 4, 5, 6)), "mul x4, x5, x6");
  EXPECT_EQ(disassemble(make_jalr(0, 1, 0)), "ret");
  EXPECT_EQ(disassemble(make_guard_event(true)), "guard.alloc");
  EXPECT_EQ(disassemble(make_guard_event(false)), "guard.free");
}

TEST(ClassNames, Behaviour) {
  EXPECT_STREQ(class_name(InstClass::kLoad), "load");
  EXPECT_STREQ(class_name(InstClass::kStore), "store");
  EXPECT_STREQ(class_name(InstClass::kCall), "call");
  EXPECT_TRUE(is_mem(InstClass::kLoad));
  EXPECT_TRUE(is_mem(InstClass::kStore));
  EXPECT_FALSE(is_mem(InstClass::kBranch));
  EXPECT_TRUE(is_ctrl(InstClass::kBranch));
  EXPECT_TRUE(is_ctrl(InstClass::kRet));
  EXPECT_FALSE(is_ctrl(InstClass::kIntAlu));
}

class LoadStoreFunct3 : public ::testing::TestWithParam<u8> {};

TEST_P(LoadStoreFunct3, FilterIndexUnique) {
  const u8 f3 = GetParam();
  const u32 load = make_load(f3, 1, 2, 0);
  EXPECT_EQ(funct3_of(load), f3);
  EXPECT_EQ(filter_index(load),
            (static_cast<u16>(f3) << 7) | static_cast<u16>(kOpLoad));
}

INSTANTIATE_TEST_SUITE_P(AllWidths, LoadStoreFunct3,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace fg::isa
