#include <gtest/gtest.h>

#include "src/boom/branch_pred.h"
#include "src/common/rng.h"

namespace fg::boom {
namespace {

TEST(Tage, LearnsStronglyBiasedBranch) {
  BranchPredictor bp;
  const u64 pc = 0x1000;
  int correct = 0;
  for (int i = 0; i < 500; ++i) correct += bp.predict_cond(pc, true, 0x2000);
  // After warmup the biased branch should be almost always right.
  EXPECT_GT(correct, 450);
}

TEST(Tage, LearnsAlternatingPattern) {
  BranchPredictor bp;
  const u64 pc = 0x1000;
  int correct_late = 0;
  for (int i = 0; i < 2000; ++i) {
    const bool taken = (i % 2) == 0;
    const bool ok = bp.predict_cond(pc, taken, 0x2000);
    if (i >= 1000) correct_late += ok;
  }
  // TAGE history tables capture period-2 patterns.
  EXPECT_GT(correct_late, 900);
}

TEST(Tage, LoopExitPattern) {
  BranchPredictor bp;
  const u64 pc = 0x1000;
  int correct_late = 0, total_late = 0;
  for (int iter = 0; iter < 400; ++iter) {
    for (int t = 0; t < 8; ++t) {
      const bool taken = t < 7;  // 7 taken, 1 not-taken per loop
      const bool ok = bp.predict_cond(pc, taken, 0xff0);
      if (iter >= 200) {
        correct_late += ok;
        ++total_late;
      }
    }
  }
  EXPECT_GT(static_cast<double>(correct_late) / total_late, 0.9);
}

TEST(Tage, RandomBranchNearChance) {
  BranchPredictor bp;
  Rng rng(3);
  const u64 pc = 0x1000;
  int correct = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) correct += bp.predict_cond(pc, rng.chance(0.5), 0x2000);
  const double acc = static_cast<double>(correct) / n;
  EXPECT_GT(acc, 0.35);
  EXPECT_LT(acc, 0.65);
}

TEST(Btb, DirectTargetLearned) {
  BranchPredictor bp;
  EXPECT_FALSE(bp.predict_direct(0x4000, 0x8000));  // cold
  EXPECT_TRUE(bp.predict_direct(0x4000, 0x8000));   // learned
  EXPECT_FALSE(bp.predict_direct(0x4000, 0x9000));  // target changed
}

TEST(Btb, IndirectMispredictsOnChangingTarget) {
  BranchPredictor bp;
  bp.predict_indirect(0x4000, 0x8000);
  EXPECT_TRUE(bp.predict_indirect(0x4000, 0x8000));
  EXPECT_FALSE(bp.predict_indirect(0x4000, 0xa000));
}

TEST(Ras, MatchedCallsAndReturns) {
  BranchPredictor bp;
  bp.push_ras(0x100);
  bp.push_ras(0x200);
  bp.push_ras(0x300);
  EXPECT_TRUE(bp.predict_ret(0x300));
  EXPECT_TRUE(bp.predict_ret(0x200));
  EXPECT_TRUE(bp.predict_ret(0x100));
}

TEST(Ras, CorruptedReturnMispredicts) {
  BranchPredictor bp;
  bp.push_ras(0x100);
  EXPECT_FALSE(bp.predict_ret(0x140));
  EXPECT_EQ(bp.stats().ras_mispredicts, 1u);
}

TEST(Ras, UnderflowMispredicts) {
  BranchPredictor bp;
  EXPECT_FALSE(bp.predict_ret(0x100));
}

TEST(Ras, DeepNestingWithinCapacity) {
  PredictorConfig cfg;
  cfg.ras_entries = 8;
  BranchPredictor bp(cfg);
  for (u64 i = 0; i < 8; ++i) bp.push_ras(0x1000 + i * 8);
  for (u64 i = 8; i-- > 0;) EXPECT_TRUE(bp.predict_ret(0x1000 + i * 8));
}

TEST(Stats, AccuracyAccounting) {
  BranchPredictor bp;
  for (int i = 0; i < 100; ++i) bp.predict_cond(0x1000, true, 0x2000);
  EXPECT_EQ(bp.stats().cond_lookups, 100u);
  EXPECT_GT(bp.stats().cond_accuracy(), 0.8);
}

class TageManyBranches : public ::testing::TestWithParam<int> {};

TEST_P(TageManyBranches, ScalesAcrossStaticBranches) {
  BranchPredictor bp;
  Rng rng(17);
  const int n_branches = GetParam();
  std::vector<double> bias(n_branches);
  for (auto& b : bias) b = rng.chance(0.5) ? 0.9 : 0.1;
  int correct = 0, total = 0;
  for (int round = 0; round < 300; ++round) {
    for (int b = 0; b < n_branches; ++b) {
      const u64 pc = 0x1000 + static_cast<u64>(b) * 4;
      const bool taken = rng.chance(bias[b]);
      const bool ok = bp.predict_cond(pc, taken, pc + 64);
      if (round >= 100) {
        correct += ok;
        ++total;
      }
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.80) << n_branches;
}

INSTANTIATE_TEST_SUITE_P(Scale, TageManyBranches, ::testing::Values(8, 64, 256));

}  // namespace
}  // namespace fg::boom
