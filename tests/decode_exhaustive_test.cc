// Exhaustive consistency sweeps over the full decoder: every valid encoding
// disassembles under its own mnemonic, operand plumbing is self-consistent,
// and the filter-row audit covers the whole 10-bit SRAM space.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/common/rng.h"
#include "src/isa/decode.h"

namespace fg::isa {
namespace {

TEST(DecodeExhaustive, DisassemblyStartsWithMnemonicOrAlias) {
  // Aliases the disassembler may legitimately substitute.
  const std::set<std::string> aliases = {"nop", "mv", "ret", "j", "beqz",
                                         "bnez"};
  Rng rng(0xd15a55);
  int checked = 0;
  for (int i = 0; i < 500000; ++i) {
    const u32 enc = static_cast<u32>(rng.next()) | 0x3;  // 32-bit length
    const Decoded d = decode(enc);
    if (!d.valid()) continue;
    ++checked;
    const std::string text = disassemble_full(enc);
    const std::string head = text.substr(0, text.find(' '));
    if (aliases.contains(head)) continue;
    EXPECT_EQ(head, mnemonic_name(d.mnemonic)) << std::hex << enc;
  }
  EXPECT_GT(checked, 50000);
}

TEST(DecodeExhaustive, OperandPlumbingSelfConsistent) {
  Rng rng(0xc0ffee);
  for (int i = 0; i < 500000; ++i) {
    const u32 enc = static_cast<u32>(rng.next()) | 0x3;
    const Decoded d = decode(enc);
    if (!d.valid()) continue;
    // A register field is meaningful iff its file is set; x0-writes are
    // still reported (the file says Int), but loads/stores always carry a
    // width, and immediates only appear with a kind.
    if (d.imm_kind == ImmKind::kNone && d.mnemonic != Mnemonic::kFence &&
        d.mnemonic != Mnemonic::kFenceI) {
      // R-type: no immediate leaks.
      EXPECT_EQ(d.imm, 0) << std::hex << enc;
    }
    if (d.cls == InstClass::kLoad || d.cls == InstClass::kStore) {
      EXPECT_GT(d.mem_bytes, 0) << std::hex << enc;
      EXPECT_LE(d.mem_bytes, 8) << std::hex << enc;
    } else {
      EXPECT_EQ(d.mem_bytes, 0) << std::hex << enc;
    }
    if (d.is_amo) {
      EXPECT_TRUE(d.cls == InstClass::kLoad || d.cls == InstClass::kStore);
    }
  }
}

TEST(DecodeExhaustive, BranchImmediatesAlwaysEvenAndSigned) {
  Rng rng(0xb4a);
  for (int i = 0; i < 200000; ++i) {
    const u32 enc = (static_cast<u32>(rng.next()) & ~0x7fu) | kOpBranch |
                    (static_cast<u32>(rng.below(8)) << 12);
    const Decoded d = decode(enc);
    if (!d.valid()) continue;
    EXPECT_EQ(d.imm % 2, 0);
    EXPECT_GE(d.imm, -4096);
    EXPECT_LT(d.imm, 4096);
  }
}

TEST(DecodeExhaustive, FilterRowAuditCoversWholeSram) {
  // Every row of the 1K-entry SRAM reports a finite collision count, and
  // the total over all rows equals the number of mnemonics with canonical
  // rows (each such mnemonic lands on exactly one row).
  unsigned total = 0;
  for (u32 row = 0; row < kFilterTableSize; ++row) {
    total += mnemonics_sharing_filter_row(static_cast<u16>(row));
  }
  unsigned with_rows = 0;
  for (u16 m = 1; m < static_cast<u16>(Mnemonic::kCount); ++m) {
    if (canonical_filter_row(static_cast<Mnemonic>(m))) ++with_rows;
  }
  EXPECT_EQ(total, with_rows);
  EXPECT_GT(with_rows, 80u);  // the integer/memory/system core of the ISA
}

TEST(DecodeExhaustive, CanonicalRowsWithinSramBounds) {
  for (u16 m = 1; m < static_cast<u16>(Mnemonic::kCount); ++m) {
    const auto row = canonical_filter_row(static_cast<Mnemonic>(m));
    if (row) {
      EXPECT_LT(*row, kFilterTableSize) << m;
    }
  }
}

TEST(DecodeExhaustive, ClassPredicatesPartitionBehaviour) {
  Rng rng(0x9a77);
  for (int i = 0; i < 300000; ++i) {
    const u32 enc = static_cast<u32>(rng.next()) | 0x3;
    const Decoded d = decode(enc);
    if (!d.valid()) continue;
    // is_mem and is_ctrl never both true; guard events are neither.
    EXPECT_FALSE(is_mem(d.cls) && is_ctrl(d.cls));
    if (d.cls == InstClass::kGuardEvent) {
      EXPECT_FALSE(is_mem(d.cls));
      EXPECT_FALSE(is_ctrl(d.cls));
    }
  }
}

}  // namespace
}  // namespace fg::isa
