#include <gtest/gtest.h>

#include "src/common/ring_queue.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/types.h"

namespace fg {
namespace {

TEST(Bits, ExtractsRanges) {
  EXPECT_EQ(bits(0xff00, 15, 8), 0xffu);
  EXPECT_EQ(bits(0xff00, 7, 0), 0x00u);
  EXPECT_EQ(bits(~u64{0}, 63, 0), ~u64{0});
  EXPECT_EQ(bits(0b1010, 3, 1), 0b101u);
}

TEST(Bits, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(4096), 12u);
  EXPECT_EQ(ceil_div(10, 4), 3u);
  EXPECT_EQ(ceil_div(8, 4), 2u);
}

TEST(RingQueue, FifoOrder) {
  RingQueue<int> q(4);
  EXPECT_TRUE(q.empty());
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.front(), 1);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  q.push(4);
  q.push(5);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 4);
  EXPECT_EQ(q.pop(), 5);
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, FullAndFreeSlots) {
  RingQueue<int> q(2);
  q.push(1);
  EXPECT_EQ(q.free_slots(), 1u);
  q.push(2);
  EXPECT_TRUE(q.full());
  EXPECT_EQ(q.free_slots(), 0u);
  q.pop();
  EXPECT_FALSE(q.full());
}

TEST(RingQueue, AtIndexesFromHead) {
  RingQueue<int> q(4);
  q.push(10);
  q.push(11);
  q.push(12);
  q.pop();
  q.push(13);
  EXPECT_EQ(q.at(0), 11);
  EXPECT_EQ(q.at(1), 12);
  EXPECT_EQ(q.at(2), 13);
}

TEST(RingQueue, ClearResets) {
  RingQueue<int> q(3);
  q.push(1);
  q.push(2);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push(9);
  EXPECT_EQ(q.front(), 9);
}

class RingQueueWrap : public ::testing::TestWithParam<size_t> {};

TEST_P(RingQueueWrap, SurvivesManyWraps) {
  const size_t cap = GetParam();
  RingQueue<size_t> q(cap);
  size_t next_in = 0, next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    while (!q.full()) q.push(next_in++);
    while (!q.empty()) {
      ASSERT_EQ(q.pop(), next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingQueueWrap,
                         ::testing::Values(1, 2, 3, 8, 16, 31));

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, RangeBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const u64 v = r.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceFrequency) {
  Rng r(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, GeometricMean) {
  Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.geometric(8.0));
  EXPECT_NEAR(sum / n, 8.0, 0.5);
}

TEST(Rng, ForkIndependence) {
  Rng a(5);
  Rng b = a.fork();
  EXPECT_NE(a.next(), b.next());
}

TEST(Summary, TracksMinMaxMean) {
  Summary s;
  s.add(2.0);
  s.add(4.0);
  s.add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(SampleSet, SingleElement) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(Geomean, MatchesHandComputed) {
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({1.0}), 1.0, 1e-12);
}

TEST(TableRow, FormatsColumns) {
  const std::string row = table_row("name", {1.5, 2.25}, 8, 8, 2);
  EXPECT_NE(row.find("name"), std::string::npos);
  EXPECT_NE(row.find("1.50"), std::string::npos);
  EXPECT_NE(row.find("2.25"), std::string::npos);
}

}  // namespace
}  // namespace fg
