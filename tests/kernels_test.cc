// Semantic tests for the four guardian kernels: feed hand-built packets into
// a bare µcore running the generated program and check the verdicts.
#include <gtest/gtest.h>

#include "src/kernels/ha.h"
#include "src/kernels/kernel.h"
#include "src/ucore/ucore.h"

namespace fg::kernels {
namespace {

core::Packet pkt(u64 pc, u32 inst, u64 addr, u64 data = 0) {
  core::Packet p;
  p.valid = true;
  p.pc = pc;
  p.inst = inst;
  p.addr = addr;
  p.data = data;
  return p;
}

core::Packet event(bool alloc, u64 base, u32 size) {
  core::Packet p;
  p.valid = true;
  p.inst = isa::make_guard_event(alloc);
  p.sem = alloc ? trace::SemEvent::kAlloc : trace::SemEvent::kFree;
  p.sem_addr = base;
  p.sem_size = size;
  return p;
}

/// Harness: one µcore + shared memory running a kernel program.
struct Engine {
  ucore::USharedMemory mem;
  ucore::UCore core;
  Cycle t = 0;

  explicit Engine(const ucore::UProgram& prog)
      : core(ucore::UCoreConfig{}, 0, &mem, nullptr) {
    core.load_program(prog);
  }

  void feed(const core::Packet& p) { core.push_input(p); }

  /// Run until the kernel has drained its queue and is spinning.
  void settle() {
    for (int i = 0; i < 200000 && !core.quiescent(); ++i) core.tick(t++);
    ASSERT_TRUE(core.quiescent());
  }

  size_t detections() const { return core.detections().size(); }
};

KernelParams params() {
  KernelParams p;
  p.text_lo = 0x10000;
  p.text_hi = 0x20000;
  return p;
}

// --- PMC ---

TEST(Pmc, InBoundsTargetsPass) {
  Engine e(build_pmc(ProgModel::kHybrid, params()));
  for (u64 i = 0; i < 20; ++i) {
    e.feed(pkt(0x10000 + 4 * i, isa::make_jal(1, 64), 0x10100 + 4 * i));
  }
  e.settle();
  EXPECT_EQ(e.detections(), 0u);
}

TEST(Pmc, HijackedTargetDetected) {
  Engine e(build_pmc(ProgModel::kHybrid, params()));
  e.feed(pkt(0x10000, isa::make_jalr(0, 5, 0), 0x999999, /*data=*/77));
  e.settle();
  ASSERT_EQ(e.detections(), 1u);
  EXPECT_EQ(e.core.detections()[0].payload, 77u);  // debug data = attack id
}

TEST(Pmc, BelowTextAlsoDetected) {
  Engine e(build_pmc(ProgModel::kHybrid, params()));
  e.feed(pkt(0x10000, isa::make_jalr(0, 5, 0), 0x400));
  e.settle();
  EXPECT_EQ(e.detections(), 1u);
}

TEST(Pmc, BoundaryConditions) {
  Engine e(build_pmc(ProgModel::kHybrid, params()));
  e.feed(pkt(0x10000, isa::make_jal(1, 64), 0x10000));      // == lo: legal
  e.feed(pkt(0x10000, isa::make_jal(1, 64), 0x1fffc));      // < hi: legal
  e.feed(pkt(0x10000, isa::make_jal(1, 64), 0x20000));      // == hi: illegal
  e.settle();
  EXPECT_EQ(e.detections(), 1u);
}

// --- Shadow stack ---

TEST(ShadowStack, MatchedCallsAndReturnsPass) {
  Engine e(build_shadow_stack(ProgModel::kHybrid, params(), 0, 1));
  const u32 call = isa::make_jalr(1, 5, 0);
  const u32 ret = isa::make_jalr(0, 1, 0);
  e.feed(pkt(0x10000, call, 0x11000));
  e.feed(pkt(0x10100, call, 0x12000));
  e.feed(pkt(0x12040, ret, 0x10104));  // matches inner call pc+4
  e.feed(pkt(0x11040, ret, 0x10004));  // matches outer call pc+4
  e.settle();
  EXPECT_EQ(e.detections(), 0u);
}

TEST(ShadowStack, CorruptedReturnDetected) {
  Engine e(build_shadow_stack(ProgModel::kHybrid, params(), 0, 1));
  const u32 call = isa::make_jalr(1, 5, 0);
  const u32 ret = isa::make_jalr(0, 1, 0);
  e.feed(pkt(0x10000, call, 0x11000));
  e.feed(pkt(0x11040, ret, 0xbad0, /*data=*/5));
  e.settle();
  ASSERT_EQ(e.detections(), 1u);
  EXPECT_EQ(e.core.detections()[0].payload, 5u);
}

TEST(ShadowStack, JalCallsAlsoTracked) {
  Engine e(build_shadow_stack(ProgModel::kHybrid, params(), 0, 1));
  e.feed(pkt(0x10000, isa::make_jal(1, 256), 0x10100));
  e.feed(pkt(0x10140, isa::make_jalr(0, 1, 0), 0x10004));
  e.settle();
  EXPECT_EQ(e.detections(), 0u);
}

TEST(ShadowStack, PlainJumpsIgnored) {
  Engine e(build_shadow_stack(ProgModel::kHybrid, params(), 0, 1));
  e.feed(pkt(0x10000, isa::make_jal(0, 256), 0x10100));      // j, not a call
  e.feed(pkt(0x10200, isa::make_jalr(0, 5, 0), 0x10300));    // indirect jump
  e.settle();
  EXPECT_EQ(e.detections(), 0u);
}

TEST(ShadowStack, HandoffEmitsToken) {
  Engine e(build_shadow_stack(ProgModel::kHybrid, params(), 0, 2));
  const u32 call = isa::make_jalr(1, 5, 0);
  e.feed(pkt(0x10000, call, 0x11000));
  core::Packet marker;
  marker.valid = true;
  marker.inst = kSsMarkerInst;
  marker.addr = 1;  // successor engine id
  e.feed(marker);
  e.settle();
  ASSERT_FALSE(e.core.output_empty());
  const u64 token = e.core.pop_output();
  EXPECT_EQ(token >> 56, 1u);  // destination engine
  const u64 sp = token & ((u64{1} << 56) - 1);
  EXPECT_EQ(sp, params().sstack_base + 8);  // one frame pushed
}

TEST(ShadowStack, SuccessorWaitsForToken) {
  Engine e(build_shadow_stack(ProgModel::kHybrid, params(), /*ordinal=*/1, 2));
  const u32 ret = isa::make_jalr(0, 1, 0);
  // Give the successor a return to validate but no token yet: it must not
  // pop the shadow stack (it doesn't own it) and must not detect anything.
  e.feed(pkt(0x11040, ret, 0x10004));
  for (int i = 0; i < 5000; ++i) e.core.tick(e.t++);
  EXPECT_EQ(e.core.stats().packets_popped, 1u);  // popped...
  EXPECT_EQ(e.detections(), 0u);                 // ...but stalled pre-verdict
  // Deliver the token: the packet completes against the inherited stack.
  e.mem.store(params().sstack_base, 8, 0x10004);
  e.core.push_noc(params().sstack_base + 8);
  e.settle();
  EXPECT_EQ(e.detections(), 0u);
}

// --- ASan (event engine: checks + shadow maintenance) ---

TEST(Asan, AllocThenAccessPasses) {
  Engine e(build_asan(ProgModel::kHybrid, params(), /*event_engine=*/true));
  e.feed(event(true, 0x40000000, 256));
  e.feed(pkt(0x10000, isa::make_load(0x3, 5, 6, 0), 0x40000000 + 128));
  e.settle();
  EXPECT_EQ(e.detections(), 0u);
}

TEST(Asan, RedzoneAccessDetected) {
  KernelParams p = params();
  Engine e(build_asan(ProgModel::kHybrid, p, true));
  // Pre-poison the authoritative shadow the way the SoC does at commit.
  const u64 base = 0x40000000;
  e.mem.store(p.shadow_base + ((base + 256) >> 3), 8, 0xfafafafafafafafaull);
  e.feed(event(true, base, 256));
  e.feed(pkt(0x10000, isa::make_load(0x3, 5, 6, 0), base + 256 + 8, /*data=*/9));
  e.settle();
  ASSERT_EQ(e.detections(), 1u);
  EXPECT_EQ(e.core.detections()[0].payload, 9u);
}

TEST(Asan, EventEngineMaintainsTimingMirror) {
  KernelParams p = params();
  Engine e(build_asan(ProgModel::kHybrid, p, true));
  const u64 base = 0x40000000;
  e.feed(event(true, base, 128));
  e.settle();
  // Object shadow cleared, trailing redzone word poisoned (in the mirror).
  EXPECT_EQ(e.mem.load_u8(p.shadow_timing_base + (base >> 3)), 0u);
  EXPECT_EQ(e.mem.load_u8(p.shadow_timing_base + ((base + 128) >> 3)), 0xfau);
  e.feed(event(false, base, 128));
  e.settle();
  EXPECT_EQ(e.mem.load_u8(p.shadow_timing_base + (base >> 3)), 0xfdu);
}

TEST(Asan, CheckOnlyEngineFlagsPoisonedShadow) {
  KernelParams p = params();
  Engine e(build_asan(ProgModel::kHybrid, p, /*event_engine=*/false));
  const u64 addr = 0x40001000;
  e.mem.store_u8(p.shadow_base + (addr >> 3), 0xfa);
  // Saturate past the unroll threshold so the pipelined path runs too.
  for (int i = 0; i < 30; ++i) {
    e.feed(pkt(0x10000, isa::make_load(0x3, 5, 6, 0), 0x50000000 + 64 * i));
  }
  e.feed(pkt(0x10000, isa::make_load(0x3, 5, 6, 0), addr, 3));
  e.settle();
  ASSERT_EQ(e.detections(), 1u);
  EXPECT_EQ(e.core.detections()[0].aux, addr);  // faulting address reported
}

// --- UaF ---

TEST(Uaf, FreedAccessDetected) {
  KernelParams p = params();
  Engine e(build_uaf(ProgModel::kHybrid, p, true));
  const u64 base = 0x40002000;
  // Authoritative quarantine mark (SoC applies this at commit).
  for (u64 i = 0; i < 256 / 8; i += 8) {
    e.mem.store(p.shadow_base + (base >> 3) + i, 8, 0xfdfdfdfdfdfdfdfdull);
  }
  e.feed(event(false, base, 256));
  e.feed(pkt(0x10000, isa::make_load(0x3, 5, 6, 0), base + 64, /*data=*/4));
  e.settle();
  ASSERT_EQ(e.detections(), 1u);
  EXPECT_EQ(e.core.detections()[0].payload, 4u);
}

TEST(Uaf, ReallocClearsQuarantineInMirror) {
  KernelParams p = params();
  Engine e(build_uaf(ProgModel::kHybrid, p, true));
  const u64 base = 0x40002000;
  e.feed(event(false, base, 128));  // quarantine
  e.settle();
  EXPECT_EQ(e.mem.load_u8(p.shadow_timing_base + (base >> 3)), 0xfdu);
  e.feed(event(true, base, 128));  // realloc
  e.settle();
  EXPECT_EQ(e.mem.load_u8(p.shadow_timing_base + (base >> 3)), 0u);
}

TEST(Uaf, QuarantineRingRecordsFrees) {
  KernelParams p = params();
  Engine e(build_uaf(ProgModel::kHybrid, p, true));
  e.feed(event(false, 0x40003000, 64));
  e.feed(event(false, 0x40004000, 128));
  e.settle();
  EXPECT_EQ(e.mem.load(p.quarantine_base + 0, 8), 0x40003000u);
  EXPECT_EQ(e.mem.load(p.quarantine_base + 8, 8), 64u);
  EXPECT_EQ(e.mem.load(p.quarantine_base + 16, 8), 0x40004000u);
}

TEST(Uaf, RingReleaseClearsOldestMirror) {
  KernelParams p = params();
  p.quarantine_slots = 4;
  Engine e(build_uaf(ProgModel::kHybrid, p, true));
  const u64 first = 0x40010000;
  e.feed(event(false, first, 64));
  e.settle();
  EXPECT_EQ(e.mem.load_u8(p.shadow_timing_base + (first >> 3)), 0xfdu);
  for (int i = 1; i <= 4; ++i) {
    e.feed(event(false, first + static_cast<u64>(i) * 0x1000, 64));
  }
  e.settle();
  // The oldest entry aged out of the 4-slot ring and was released.
  EXPECT_EQ(e.mem.load_u8(p.shadow_timing_base + (first >> 3)), 0u);
}

// --- filter programming ---

TEST(FilterProgramming, AsanSplitsChecksAndEvents) {
  core::FilterTable t;
  program_filter(t, KernelKind::kAsan, /*gid_checks=*/2, /*gid_events=*/3);
  EXPECT_EQ(t.lookup(isa::make_load(0x3, 1, 2, 0)).gid_bitmap, 1u << 2);
  EXPECT_EQ(t.lookup(isa::make_store(0x2, 1, 2, 0)).gid_bitmap, 1u << 2);
  EXPECT_EQ(t.lookup(isa::make_guard_event(true)).gid_bitmap, 1u << 3);
  EXPECT_EQ(t.lookup(isa::make_guard_event(false)).gid_bitmap, 1u << 3);
  // ALU not monitored.
  EXPECT_EQ(t.lookup(isa::make_alu_rr(0, 1, 2, 3, false)).gid_bitmap, 0u);
}

TEST(FilterProgramming, PmcWatchesControlFlow) {
  core::FilterTable t;
  program_filter(t, KernelKind::kPmc, 0, 0);
  EXPECT_NE(t.lookup(isa::make_branch(0, 1, 2, 16)).gid_bitmap, 0u);
  EXPECT_NE(t.lookup(isa::make_jal(1, 64)).gid_bitmap, 0u);
  EXPECT_NE(t.lookup(isa::make_jalr(0, 1, 0)).gid_bitmap, 0u);
  EXPECT_EQ(t.lookup(isa::make_load(0x3, 1, 2, 0)).gid_bitmap, 0u);
}

TEST(FilterProgramming, ShadowStackWatchesCallsReturnsOnly) {
  core::FilterTable t;
  program_filter(t, KernelKind::kShadowStack, 1, 1);
  EXPECT_NE(t.lookup(isa::make_jal(1, 64)).gid_bitmap, 0u);
  EXPECT_NE(t.lookup(isa::make_jalr(0, 1, 0)).gid_bitmap, 0u);
  EXPECT_EQ(t.lookup(isa::make_branch(0, 1, 2, 16)).gid_bitmap, 0u);
}

}  // namespace
}  // namespace fg::kernels
