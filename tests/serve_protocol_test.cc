// The fgsim serve wire protocol, hostile-input edition: the daemon must
// answer every malformed request — garbage JSON, unknown kinds, a stale
// protocol version, truncated frames, oversized lines — with a structured
// {"ok": false, "error": ...} (or, for an unrecoverable frame boundary, an
// error followed by closing that one connection) and STAY UP, with other
// connections unaffected. Runs a real daemon (in-process, on a thread — the
// event loop is self-contained) against real sockets; no mocks.
#include <gtest/gtest.h>

#if defined(_WIN32)

TEST(ServeProtocol, RequiresPosix) {
  GTEST_SKIP() << "fgsim serve needs Unix sockets and fork";
}

#else

#include <filesystem>
#include <string>
#include <thread>

#include "src/serve/client.h"
#include "src/serve/daemon.h"
#include "src/serve/protocol.h"
#include "src/store/faultfs.h"

namespace fg::serve {
namespace {

class ServeProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store::fault_clear();
    dir_ = ::testing::TempDir() + "serve_proto_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    std::filesystem::create_directories(dir_, ec);
    ASSERT_FALSE(ec) << ec.message();
  }

  void TearDown() override {
    stop_daemon();
    store::fault_clear();
  }

  void start_daemon(u32 workers = 1) {
    ServeConfig cfg;
    cfg.store_dir = dir_ + "/store";
    cfg.socket_path = socket_path();
    cfg.workers = workers;
    cfg.quiet = true;
    daemon_ = std::make_unique<ServeDaemon>(cfg);
    std::string err;
    ASSERT_TRUE(daemon_->init(&err)) << err;
    thread_ = std::thread([this] {
      std::string run_err;
      run_ok_ = daemon_->run(&run_err);
    });
  }

  void stop_daemon() {
    if (daemon_ != nullptr) daemon_->request_stop();
    if (thread_.joinable()) thread_.join();
    daemon_.reset();
  }

  std::string socket_path() const { return dir_ + "/fg.sock"; }

  void connect_ok(Client* c) {
    std::string err;
    ASSERT_TRUE(c->connect(socket_path(), &err)) << err;
  }

  /// One raw line in, one parsed response out.
  json::Value roundtrip(Client& c, const std::string& line) {
    json::Value resp;
    std::string err;
    EXPECT_TRUE(c.call(line, &resp, &err)) << err;
    return resp;
  }

  std::string dir_;
  std::unique_ptr<ServeDaemon> daemon_;
  std::thread thread_;
  bool run_ok_ = false;
};

// --- pure parsing (no daemon) ----------------------------------------------

TEST(ServeProtocolParse, RejectsGarbageAndBadVersions) {
  Request req;
  std::string err;
  EXPECT_FALSE(parse_request("not json at all", &req, &err));
  EXPECT_FALSE(parse_request("[1,2,3]", &req, &err));  // not an object
  EXPECT_FALSE(parse_request("{\"kind\": \"stats\"}", &req, &err));  // no v
  EXPECT_NE(err.find("version"), std::string::npos) << err;
  EXPECT_FALSE(parse_request("{\"v\": 999, \"kind\": \"stats\"}", &req, &err));
  EXPECT_NE(err.find("version"), std::string::npos) << err;
  EXPECT_FALSE(parse_request("{\"v\": 1}", &req, &err));  // no kind
  EXPECT_FALSE(
      parse_request("{\"v\": 1, \"kind\": \"frobnicate\"}", &req, &err));
  EXPECT_NE(err.find("frobnicate"), std::string::npos) << err;
  // cancel without an id
  EXPECT_FALSE(parse_request("{\"v\": 1, \"kind\": \"cancel\"}", &req, &err));
  // submit without a spec
  EXPECT_FALSE(parse_request("{\"v\": 1, \"kind\": \"submit\"}", &req, &err));
}

TEST(ServeProtocolParse, BuildersRoundTrip) {
  api::ExperimentSpec spec = api::default_spec();
  spec.name = "roundtrip";
  const std::string line =
      submit_request(spec, /*wait=*/true, /*want_results=*/true,
                     /*with_baseline=*/false, "label");
  Request req;
  std::string err;
  ASSERT_TRUE(parse_request(line, &req, &err)) << err;
  EXPECT_EQ(req.kind, RequestKind::kSubmit);
  EXPECT_TRUE(req.wait);
  EXPECT_TRUE(req.want_results);
  EXPECT_FALSE(req.with_baseline);
  EXPECT_EQ(req.name, "label");
  EXPECT_EQ(api::spec_canonical(req.spec), api::spec_canonical(spec));

  ASSERT_TRUE(parse_request(status_request(7), &req, &err)) << err;
  EXPECT_EQ(req.kind, RequestKind::kStatus);
  EXPECT_TRUE(req.has_id);
  EXPECT_EQ(req.id, 7u);
  ASSERT_TRUE(parse_request(cancel_request(9), &req, &err)) << err;
  EXPECT_EQ(req.kind, RequestKind::kCancel);
  EXPECT_EQ(req.id, 9u);
  for (const char* kind : {"status", "stats", "drain", "shutdown"}) {
    ASSERT_TRUE(parse_request(simple_request(kind), &req, &err))
        << kind << ": " << err;
  }
}

TEST(ServeProtocolParse, FrameBufferSplitsAndCapsLines) {
  FrameBuffer fb;
  std::string line;
  EXPECT_FALSE(fb.take_line(&line));
  const std::string two = "first\nsecond\npartial";
  fb.append(two.data(), two.size());
  ASSERT_TRUE(fb.take_line(&line));
  EXPECT_EQ(line, "first");
  ASSERT_TRUE(fb.take_line(&line));
  EXPECT_EQ(line, "second");
  EXPECT_FALSE(fb.take_line(&line));  // "partial" has no terminator yet
  EXPECT_FALSE(fb.over_limit());
  fb.append("\n", 1);
  ASSERT_TRUE(fb.take_line(&line));
  EXPECT_EQ(line, "partial");

  const std::string big(kMaxFrameBytes + 1, 'x');
  fb.append(big.data(), big.size());
  EXPECT_TRUE(fb.over_limit());
}

// --- live daemon vs hostile clients ----------------------------------------

TEST_F(ServeProtocolTest, MalformedRequestsGetStructuredErrors) {
  start_daemon();
  Client c;
  connect_ok(&c);
  for (const char* bad : {
           "garbage that is not json",
           "{\"v\": 1}",                             // missing kind
           "{\"v\": 1, \"kind\": \"frobnicate\"}",   // unknown kind
           "{\"v\": 2, \"kind\": \"stats\"}",        // future version
           "{\"kind\": \"stats\"}",                  // missing version
           "{\"v\": 1, \"kind\": \"cancel\"}",       // cancel without id
           "{\"v\": 1, \"kind\": \"submit\"}",       // submit without spec
           "{\"v\": 1, \"kind\": \"submit\", \"spec\": {\"nope\": 1}}",
       }) {
    json::Value resp = roundtrip(c, bad);
    EXPECT_FALSE(resp.get_bool("ok")) << bad;
    EXPECT_FALSE(resp.get_str("error").empty()) << bad;
    // The SAME connection keeps working after every error.
    json::Value stats = roundtrip(c, simple_request("stats"));
    EXPECT_TRUE(stats.get_bool("ok")) << "connection dead after: " << bad;
  }
  // A stale-version error names the supported version.
  json::Value stale = roundtrip(c, "{\"v\": 999, \"kind\": \"stats\"}");
  EXPECT_NE(stale.get_str("error").find("version"), std::string::npos);
}

TEST_F(ServeProtocolTest, TruncatedFrameIsDiscardedDaemonStaysUp) {
  start_daemon();
  {
    Client dying;
    std::string err;
    ASSERT_TRUE(dying.connect(socket_path(), &err)) << err;
    // Half a request, no newline, then the client dies.
    ASSERT_TRUE(dying.send_raw("{\"v\": 1, \"kind\": \"sub", &err)) << err;
  }
  Client c;
  connect_ok(&c);
  json::Value resp = roundtrip(c, simple_request("stats"));
  EXPECT_TRUE(resp.get_bool("ok"));
  // The torn frame never became a submission.
  EXPECT_EQ(resp.get("stats")->get_u64("submissions_accepted"), 0u);
}

TEST_F(ServeProtocolTest, OversizedFrameErrorsAndClosesThatConnectionOnly) {
  start_daemon();
  Client hog;
  std::string err;
  ASSERT_TRUE(hog.connect(socket_path(), &err)) << err;
  // Stream an endless newline-free frame until the daemon gives up on us.
  const std::string chunk(1u << 20, 'x');
  size_t sent = 0;
  bool cut_off = false;
  while (sent < 3 * kMaxFrameBytes) {
    if (!hog.send_raw(chunk, &err)) {
      cut_off = true;  // daemon already closed this connection
      break;
    }
    sent += chunk.size();
  }
  if (!cut_off) {
    std::string line;
    ASSERT_TRUE(hog.read_response(&line, &err)) << err;
    EXPECT_NE(line.find("oversized"), std::string::npos) << line;
  }
  // Other clients are unaffected.
  Client c;
  connect_ok(&c);
  EXPECT_TRUE(roundtrip(c, simple_request("stats")).get_bool("ok"));
}

TEST_F(ServeProtocolTest, StatusUnknownIdErrorsSubmitWorksEndToEnd) {
  start_daemon();
  Client c;
  connect_ok(&c);
  json::Value resp = roundtrip(c, status_request(12345));
  EXPECT_FALSE(resp.get_bool("ok"));

  // A real (tiny) submission flows: submit --wait semantics over the raw
  // protocol, results attached.
  api::ExperimentSpec spec = api::default_spec();
  spec.name = "proto-e2e";
  std::string err;
  ASSERT_TRUE(api::apply_set(&spec, "trace_len", "600", &err)) << err;
  resp = roundtrip(c, submit_request(spec, /*wait=*/true,
                                     /*want_results=*/true,
                                     /*with_baseline=*/false));
  ASSERT_TRUE(resp.get_bool("ok")) << resp.get_str("error");
  EXPECT_EQ(resp.get_u64("points"), 1u);
  EXPECT_EQ(resp.get_u64("done"), 1u);
  ASSERT_NE(resp.get("results"), nullptr);
  ASSERT_EQ(resp.get("results")->arr.size(), 1u);
  EXPECT_TRUE(resp.get("results")->arr[0].is_object());

  // Now queryable by id, and resubmitting is a pure store hit.
  json::Value st = roundtrip(c, status_request(resp.get_u64("id")));
  EXPECT_TRUE(st.get_bool("ok"));
  EXPECT_TRUE(st.get_bool("complete"));
  json::Value again = roundtrip(
      c, submit_request(spec, true, false, /*with_baseline=*/false));
  ASSERT_TRUE(again.get_bool("ok"));
  EXPECT_EQ(again.get_u64("from_store"), 1u);
}

TEST_F(ServeProtocolTest, DrainRefusesNewWorkAndShutdownStopsCleanly) {
  start_daemon();
  Client c;
  connect_ok(&c);
  json::Value resp = roundtrip(c, simple_request("drain"));
  EXPECT_TRUE(resp.get_bool("ok"));
  EXPECT_TRUE(resp.get_bool("drained"));  // queue was empty: immediate

  api::ExperimentSpec spec = api::default_spec();
  spec.name = "rejected";
  resp = roundtrip(c, submit_request(spec, false, false, false));
  EXPECT_FALSE(resp.get_bool("ok"));
  EXPECT_NE(resp.get_str("error").find("drain"), std::string::npos);

  resp = roundtrip(c, simple_request("shutdown"));
  EXPECT_TRUE(resp.get_bool("ok"));
  EXPECT_TRUE(resp.get_bool("shutting_down"));
  thread_.join();
  EXPECT_TRUE(run_ok_);
  daemon_.reset();
}

TEST_F(ServeProtocolTest, SecondDaemonOnLiveSocketRefusesToStart) {
  start_daemon();
  ServeConfig cfg;
  cfg.store_dir = dir_ + "/store2";
  cfg.socket_path = socket_path();
  cfg.quiet = true;
  ServeDaemon second(cfg);
  std::string err;
  EXPECT_FALSE(second.init(&err));
  EXPECT_NE(err.find("live"), std::string::npos) << err;
}

}  // namespace
}  // namespace fg::serve

#endif  // !_WIN32
