#include <gtest/gtest.h>

#include "src/core/fabric.h"

namespace fg::core {
namespace {

TEST(Noc, GridGeometryNearSquare) {
  NocMesh m4(4);
  EXPECT_EQ(m4.width(), 2u);
  EXPECT_EQ(m4.height(), 2u);
  NocMesh m12(12);
  EXPECT_EQ(m12.width(), 4u);
  EXPECT_EQ(m12.height(), 3u);
}

TEST(Noc, ManhattanHops) {
  NocMesh m(16);  // 4x4
  EXPECT_EQ(m.hops(0, 0), 0u);
  EXPECT_EQ(m.hops(0, 1), 1u);
  EXPECT_EQ(m.hops(0, 4), 1u);
  EXPECT_EQ(m.hops(0, 5), 2u);
  EXPECT_EQ(m.hops(0, 15), 6u);
}

TEST(Noc, DeliveryAfterHopLatency) {
  NocMesh m(16, /*hop_latency=*/2);
  const Cycle arrive = m.send(0, 15, 0xcafe, 100);
  EXPECT_GE(arrive, 100u + 6 * 2);
  EXPECT_FALSE(m.deliver(15, arrive - 1).has_value());
  auto msg = m.deliver(15, arrive);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, 0xcafeu);
  EXPECT_EQ(msg->src, 0u);
}

TEST(Noc, LocalDeliveryStillTakesACycle) {
  NocMesh m(4);
  const Cycle arrive = m.send(1, 1, 7, 50);
  EXPECT_EQ(arrive, 51u);
}

TEST(Noc, LinkContentionSerializes) {
  NocMesh m(4, 1);  // 2x2
  // Two messages over the same directed link in the same cycle.
  const Cycle a = m.send(0, 1, 1, 10);
  const Cycle b = m.send(0, 1, 2, 10);
  EXPECT_GT(b, a);
  EXPECT_GT(m.stats().link_contention_cycles, 0u);
}

TEST(Noc, IndependentLinksParallel) {
  NocMesh m(4, 1);
  const Cycle a = m.send(0, 1, 1, 10);  // east link at (0,0)
  const Cycle b = m.send(3, 2, 2, 10);  // west link at (1,1)
  EXPECT_EQ(a, b);
}

TEST(Noc, DeliverReturnsInArrivalOrder) {
  NocMesh m(9, 1);
  m.send(8, 0, 111, 10);  // far: 4 hops
  m.send(1, 0, 222, 10);  // near: 1 hop
  auto first = m.deliver(0, 1000);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->payload, 222u);
  auto second = m.deliver(0, 1000);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->payload, 111u);
  EXPECT_FALSE(m.deliver(0, 1000).has_value());
}

TEST(Noc, StatsTrackHops) {
  NocMesh m(16, 1);
  m.send(0, 15, 1, 0);
  EXPECT_EQ(m.stats().messages, 1u);
  EXPECT_EQ(m.stats().total_hops, 6u);
}

class NocSizes : public ::testing::TestWithParam<u32> {};

TEST_P(NocSizes, AllPairsDeliverable) {
  const u32 n = GetParam();
  NocMesh m(n, 2);
  Cycle now = 0;
  for (u32 s = 0; s < n; ++s) {
    for (u32 d = 0; d < n; ++d) {
      now += 100;
      m.send(s, d, s * 100 + d, now);
      auto msg = m.deliver(d, now + 1000);
      ASSERT_TRUE(msg.has_value()) << s << "->" << d;
      EXPECT_EQ(msg->payload, s * 100ull + d);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NocSizes, ::testing::Values(1, 2, 4, 6, 12, 16));

}  // namespace
}  // namespace fg::core
