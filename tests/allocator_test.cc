#include <gtest/gtest.h>

#include "src/core/allocator.h"

namespace fg::core {
namespace {

/// Scriptable queue occupancy.
class FakeStatus final : public QueueStatus {
 public:
  bool engine_queue_full(u32 e) const override { return full_mask & (1u << e); }
  size_t engine_queue_free(u32 e) const override {
    return engine_queue_full(e) ? 0 : 8;
  }
  u32 full_mask = 0;
};

Packet pkt(u16 gid_bitmap) {
  Packet p;
  p.valid = true;
  p.gid_bitmap = gid_bitmap;
  return p;
}

TEST(SchedulingEngine, FixedAlwaysSameTarget) {
  SchedulingEngine se(0b1100, SchedPolicy::kFixed);
  FakeStatus st;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(se.pick(st), 0b0100);
    se.advance();
  }
}

TEST(SchedulingEngine, RoundRobinRotates) {
  SchedulingEngine se(0b0111, SchedPolicy::kRoundRobin);
  FakeStatus st;
  std::vector<u16> picks;
  for (int i = 0; i < 6; ++i) {
    picks.push_back(se.pick(st));
    se.advance();
  }
  EXPECT_EQ(picks[0], 0b010);
  EXPECT_EQ(picks[1], 0b100);
  EXPECT_EQ(picks[2], 0b001);
  EXPECT_EQ(picks[3], 0b010);
}

TEST(SchedulingEngine, RoundRobinSkipsFullQueues) {
  SchedulingEngine se(0b0111, SchedPolicy::kRoundRobin);
  FakeStatus st;
  st.full_mask = 0b010;  // engine 1 is full
  std::vector<u16> picks;
  for (int i = 0; i < 4; ++i) {
    picks.push_back(se.pick(st));
    se.advance();
  }
  for (u16 p : picks) EXPECT_NE(p, 0b010);
}

TEST(SchedulingEngine, BlockStaysUntilFull) {
  SchedulingEngine se(0b0011, SchedPolicy::kBlock);
  FakeStatus st;
  EXPECT_EQ(se.pick(st), 0b01);
  se.advance();
  EXPECT_EQ(se.pick(st), 0b01);  // stays: message locality
  se.advance();
  st.full_mask = 0b01;
  EXPECT_EQ(se.pick(st), 0b10);  // advances on fullness
  se.advance();
  st.full_mask = 0;
  EXPECT_EQ(se.pick(st), 0b10);  // and stays on the new target
}

TEST(Allocator, DistributorRoutesByGid) {
  Allocator a;
  a.configure_se(0, 0b0001, SchedPolicy::kFixed, /*gid=*/0);
  a.configure_se(1, 0b0010, SchedPolicy::kFixed, /*gid=*/3);
  FakeStatus st;
  Packet p0 = pkt(1u << 0);
  EXPECT_EQ(a.route(p0, st), 0b0001);
  Packet p3 = pkt(1u << 3);
  EXPECT_EQ(a.route(p3, st), 0b0010);
  Packet p5 = pkt(1u << 5);  // nobody subscribed
  EXPECT_EQ(a.route(p5, st), 0);
}

TEST(Allocator, MultiGidPacketReachesAllKernels) {
  Allocator a;
  a.configure_se(0, 0b0001, SchedPolicy::kFixed, 0);
  a.configure_se(1, 0b0100, SchedPolicy::kFixed, 1);
  FakeStatus st;
  Packet p = pkt(0b11);  // both GIDs interested
  EXPECT_EQ(a.route(p, st), 0b0101);
  EXPECT_EQ(a.stats().multi_se_packets, 1u);
}

TEST(Allocator, SubscribeAddsSecondGid) {
  Allocator a;
  a.configure_se(0, 0b0001, SchedPolicy::kFixed, 0);
  a.subscribe(0, 4);
  FakeStatus st;
  Packet p = pkt(1u << 4);
  EXPECT_EQ(a.route(p, st), 0b0001);
  EXPECT_EQ(a.se_bitmap(4), 0b1);
  EXPECT_EQ(a.se_bitmap(0), 0b1);
}

TEST(Allocator, BlockSwitchAnnotatesMarker) {
  Allocator a;
  a.configure_se(0, 0b0011, SchedPolicy::kBlock, 0);
  FakeStatus st;
  Packet p1 = pkt(1);
  a.route(p1, st);
  EXPECT_EQ(p1.marker_from, 0xff);  // no switch yet
  st.full_mask = 0b01;
  Packet p2 = pkt(1);
  a.route(p2, st);
  EXPECT_EQ(p2.marker_from, 0);  // handing off engine 0 -> 1
  EXPECT_EQ(p2.marker_to, 1);
  EXPECT_EQ(p2.ae_bitmap, 0b10);
}

TEST(Allocator, RoundRobinSpreadsLoad) {
  Allocator a;
  a.configure_se(0, 0b1111, SchedPolicy::kRoundRobin, 0);
  FakeStatus st;
  std::array<int, 4> hits{};
  for (int i = 0; i < 40; ++i) {
    Packet p = pkt(1);
    const u16 ae = a.route(p, st);
    for (u32 e = 0; e < 4; ++e) {
      if (ae & (1u << e)) ++hits[e];
    }
  }
  for (int h : hits) EXPECT_EQ(h, 10);
}

}  // namespace
}  // namespace fg::core
