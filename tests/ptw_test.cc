// Tests for the Sv39 page-table walker and write-back cache bookkeeping.
#include "src/mem/ptw.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/mem/hierarchy.h"

namespace fg::mem {
namespace {

TEST(Ptw, ThreeDependentReadsPlusOverhead) {
  std::vector<std::pair<u64, Cycle>> reads;
  PtwConfig cfg;
  PageTableWalker w(cfg, [&](u64 addr, Cycle now) {
    reads.emplace_back(addr, now);
    return 10u;
  });
  const u32 lat = w.walk(0x12345678000ull, 100);
  EXPECT_EQ(lat, cfg.walker_overhead + 3 * 10);
  ASSERT_EQ(reads.size(), 3u);
  // Dependent issue: each read starts after the previous completed.
  EXPECT_EQ(reads[1].second, reads[0].second + 10);
  EXPECT_EQ(reads[2].second, reads[1].second + 10);
  EXPECT_EQ(w.stats().walks, 1u);
  EXPECT_EQ(w.stats().pte_reads, 3u);
}

TEST(Ptw, PteAddressesStableAndLevelDistinct) {
  PtwConfig cfg;
  PageTableWalker w(cfg, [](u64, Cycle) { return 1u; });
  const u64 va = 0xdeadb000ull;
  const u64 l0 = w.pte_addr(va, 0);
  EXPECT_EQ(l0, w.pte_addr(va, 0));  // deterministic
  EXPECT_NE(l0, w.pte_addr(va, 1));
  EXPECT_NE(w.pte_addr(va, 1), w.pte_addr(va, 2));
}

TEST(Ptw, NeighbouringPagesShareLeafTableLine) {
  // VPN[0] differs by 1 → leaf PTEs are 8 bytes apart (same table), so a
  // walker-warm cache line covers 8 adjacent pages — the locality that makes
  // real walks cheap for sequential access.
  PtwConfig cfg;
  PageTableWalker w(cfg, [](u64, Cycle) { return 1u; });
  const u64 a = w.pte_addr(0x400000ull, 2);
  const u64 b = w.pte_addr(0x401000ull, 2);
  EXPECT_EQ(b - a, 8u);
  // Root-level PTE identical for nearby addresses.
  EXPECT_EQ(w.pte_addr(0x400000ull, 0), w.pte_addr(0x401000ull, 0));
}

TEST(Ptw, HierarchyHotWalkMuchCheaperThanCold) {
  HierarchyConfig cfg;
  cfg.detailed_ptw = true;
  cfg.dtlb.entries = 2;  // force repeated misses
  MemHierarchy m(cfg);
  // Cold: first touch of a page walks through cold caches.
  const u32 cold = m.access_data(0x10000000, false, 0);
  // Evict the TLB entry by touching two other pages, then re-touch: the walk
  // repeats but its PTE lines are now cached.
  m.access_data(0x20000000, false, 100);
  m.access_data(0x30000000, false, 200);
  const u32 hot = m.access_data(0x10000000 + 8, false, 300);
  EXPECT_LT(hot, cold);
  ASSERT_NE(m.ptw(), nullptr);
  EXPECT_GE(m.ptw()->stats().walks, 4u);
}

TEST(Ptw, FlatModeWalkerAbsent) {
  MemHierarchy m{HierarchyConfig{}};
  EXPECT_EQ(m.ptw(), nullptr);
}

TEST(Writeback, DirtyEvictionCounted) {
  CacheConfig cfg;
  cfg.size_bytes = 2 * 64;  // 1 set... make it tiny: 2 ways, one set
  cfg.ways = 2;
  cfg.line_bytes = 64;
  Cache c(cfg, "tiny");
  // Write-allocate two lines in the single set, both dirty.
  c.access(0 * 64, 0, 10, /*write=*/true);
  c.access(1024 * 64, 0, 10, /*write=*/true);
  EXPECT_EQ(c.stats().writes, 2u);
  EXPECT_EQ(c.stats().writebacks, 0u);
  // Third distinct line evicts the LRU dirty line.
  c.access(2048 * 64, 0, 10, /*write=*/false);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Writeback, CleanEvictionFree) {
  CacheConfig cfg;
  cfg.size_bytes = 2 * 64;
  cfg.ways = 2;
  cfg.line_bytes = 64;
  cfg.writeback_penalty = 50;
  Cache c(cfg, "tiny");
  c.access(0, 0, 10, false);
  c.access(1024 * 64, 0, 10, false);
  const u32 clean_evict = c.access(2048 * 64, 0, 10, false).latency;
  EXPECT_EQ(c.stats().writebacks, 0u);
  // Now a dirty line pays the penalty on eviction.
  c.access(0, 100, 10, true);           // re-fill dirty (evicts clean)
  c.access(1024 * 64, 100, 10, false);  // refill
  const u32 dirty_evict = c.access(4096 * 64, 200, 10, false).latency;
  EXPECT_EQ(c.stats().writebacks, 1u);
  EXPECT_EQ(dirty_evict, clean_evict + 50);
}

TEST(Writeback, ReadsNeverMarkDirty) {
  CacheConfig cfg;
  cfg.size_bytes = 4 * 1024;
  Cache c(cfg, "rd");
  for (u64 a = 0; a < 64 * 1024; a += 64) c.access(a, 0, 10, false);
  EXPECT_EQ(c.stats().writebacks, 0u);
}

}  // namespace
}  // namespace fg::mem
