// Determinism and threading contract of the parallel sweep runner: the
// parallel path must produce RunResults bit-identical to the serial path,
// point order must be stable, and the shared BaselineCache must run each
// baseline exactly once no matter how many threads miss concurrently.
#include "src/soc/sweep.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/common/thread_pool.h"

namespace fg::soc {
namespace {

trace::WorkloadConfig small_wl(const std::string& name) {
  trace::WorkloadConfig wl;
  wl.profile = trace::profile_by_name(name);
  wl.seed = 42;
  wl.n_insts = 6000;
  wl.warmup_insts = 600;
  wl.attacks = {{trace::AttackKind::kHeapOob, 5}};
  return wl;
}

/// 3 workloads x 2 configs (ASan on 2 and 4 µcores) = 6 points.
void add_grid(SweepRunner& runner) {
  for (const u32 n : {2u, 4u}) {
    for (const char* w : {"blackscholes", "dedup", "ferret"}) {
      SweepPoint p;
      p.name = std::string(w) + "/" + std::to_string(n);
      p.series = std::to_string(n) + "ucores";
      p.wl = small_wl(w);
      p.sc = table2_soc();
      p.sc.kernels = {deploy(kernels::KernelKind::kAsan, n)};
      runner.add(std::move(p));
    }
  }
}

void expect_identical(const PointResult& s, const PointResult& p,
                      const std::string& name) {
  EXPECT_EQ(s.run.cycles, p.run.cycles) << name;
  EXPECT_EQ(s.run.committed, p.run.committed) << name;
  EXPECT_EQ(s.run.packets, p.run.packets) << name;
  EXPECT_EQ(s.run.spurious, p.run.spurious) << name;
  EXPECT_EQ(s.baseline_cycles, p.baseline_cycles) << name;
  EXPECT_DOUBLE_EQ(s.slowdown, p.slowdown) << name;
  ASSERT_EQ(s.run.detections.size(), p.run.detections.size()) << name;
  for (size_t i = 0; i < s.run.detections.size(); ++i) {
    const DetectionRecord& a = s.run.detections[i];
    const DetectionRecord& b = p.run.detections[i];
    EXPECT_EQ(a.attack_id, b.attack_id) << name;
    EXPECT_EQ(a.engine, b.engine) << name;
    EXPECT_EQ(a.commit_fast, b.commit_fast) << name;
    EXPECT_EQ(a.detect_fast, b.detect_fast) << name;
  }
}

TEST(Sweep, ParallelBitIdenticalToSerial) {
  SweepRunner serial(SweepConfig{1});
  add_grid(serial);
  serial.run_all();

  SweepRunner parallel(SweepConfig{4});
  add_grid(parallel);
  parallel.run_all();

  ASSERT_EQ(serial.n_points(), parallel.n_points());
  ASSERT_EQ(serial.n_points(), 6u);
  for (u32 i = 0; i < serial.n_points(); ++i) {
    EXPECT_EQ(serial.point(i).name, parallel.point(i).name);
    expect_identical(serial.result(i), parallel.result(i),
                     serial.point(i).name);
  }
}

TEST(Sweep, ResultsInRegistrationOrder) {
  SweepRunner runner(SweepConfig{4});
  add_grid(runner);
  runner.run_all();
  // Point i's result must describe point i: heavier deployments (2 vs 4
  // µcores on the same trace) differ in cycles, and each point ran at all.
  for (u32 i = 0; i < runner.n_points(); ++i) {
    EXPECT_GT(runner.result(i).run.cycles, 0u) << runner.point(i).name;
    EXPECT_GT(runner.result(i).slowdown, 0.0) << runner.point(i).name;
    EXPECT_GT(runner.result(i).baseline_cycles, 0u) << runner.point(i).name;
  }
  // Same workload, same trace: identical baseline (cache key ignores the
  // engine count, which does not affect the unmonitored run).
  EXPECT_EQ(runner.result(0).baseline_cycles, runner.result(3).baseline_cycles);
}

TEST(Sweep, SelectPredicateSkipsFilteredPoints) {
  SweepRunner runner(SweepConfig{2});
  add_grid(runner);
  runner.run_all(
      [](const SweepPoint& p) { return p.name.find("dedup") != std::string::npos; });
  for (u32 i = 0; i < runner.n_points(); ++i) {
    const bool is_dedup =
        runner.point(i).name.find("dedup") != std::string::npos;
    EXPECT_EQ(runner.result(i).executed, is_dedup) << runner.point(i).name;
    if (!is_dedup) {
      EXPECT_EQ(runner.result(i).run.cycles, 0u);
      EXPECT_EQ(runner.result(i).wall_ms, 0.0);
    } else {
      EXPECT_GT(runner.result(i).run.cycles, 0u);
    }
  }
  // Only dedup's baseline ran.
  EXPECT_EQ(runner.baseline_cache().misses(), 1u);
}

TEST(Sweep, RunAllIsIdempotent) {
  SweepRunner runner(SweepConfig{2});
  add_grid(runner);
  const std::vector<PointResult>& first = runner.run_all();
  const Cycle c0 = first[0].run.cycles;
  const std::vector<PointResult>& second = runner.run_all();
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second[0].run.cycles, c0);
}

TEST(Sweep, SoftwarePointsRunTheInstrumentedCore) {
  SweepRunner runner(SweepConfig{2});
  SweepPoint p;
  p.name = "sw";
  p.wl = small_wl("blackscholes");
  p.sc = table2_soc();
  p.kind = SweepPoint::Kind::kSoftware;
  p.scheme = baseline::SwScheme::kAsanX8664;
  runner.add(std::move(p));
  runner.run_all();
  // Software instrumentation expands the dynamic instruction stream and
  // must slow the core down vs. the unmonitored baseline.
  EXPECT_GT(runner.result(0).run.expansion, 1.0);
  EXPECT_GT(runner.result(0).slowdown, 1.0);
}

TEST(Sweep, BaselineCacheSharedAcrossPoints) {
  SweepRunner runner(SweepConfig{4});
  add_grid(runner);
  runner.run_all();
  // 6 points over 3 distinct traces: 3 misses, 3 hits.
  EXPECT_EQ(runner.baseline_cache().misses(), 3u);
  EXPECT_EQ(runner.baseline_cache().hits(), 3u);
}

TEST(BaselineCache, ConcurrentMissesRunBaselineOnce) {
  BaselineCache cache;
  const trace::WorkloadConfig wl = small_wl("blackscholes");
  const SocConfig sc = table2_soc();
  std::vector<Cycle> results(8, 0);
  {
    ThreadPool pool(8);
    std::vector<std::future<void>> futures;
    for (size_t i = 0; i < results.size(); ++i) {
      futures.push_back(pool.submit(
          [&cache, &wl, &sc, &results, i] { results[i] = cache.get(wl, sc); }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 7u);
  for (const Cycle c : results) EXPECT_EQ(c, results[0]);
}

TEST(BaselineCache, KeyCoversBaselineRelevantSocKnobs) {
  BaselineCache cache;
  const trace::WorkloadConfig wl = small_wl("blackscholes");
  SocConfig sc = table2_soc();
  (void)cache.get(wl, sc);
  sc.core.store_load_forwarding = !sc.core.store_load_forwarding;
  (void)cache.get(wl, sc);
  sc.mem.detailed_dram = true;
  (void)cache.get(wl, sc);
  // Three distinct keys -> three baseline runs, no stale reuse. (Whether the
  // knobs move cycles on a tiny fully-warmed trace is workload-dependent;
  // the contract under test is that the key separates them — the stlf and
  // memory-model ablations rely on it at full trace length.)
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
}

}  // namespace
}  // namespace fg::soc
