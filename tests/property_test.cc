// System-level properties that must hold across the configuration space:
// packet conservation, ordering, monotonicity, and determinism.
#include <gtest/gtest.h>

#include <tuple>

#include "src/soc/experiment.h"

namespace fg::soc {
namespace {

trace::WorkloadConfig small_wl(const std::string& name, u64 seed) {
  trace::WorkloadConfig c;
  c.profile = trace::profile_by_name(name);
  c.profile.n_funcs = 40;
  c.seed = seed;
  c.n_insts = 25000;
  c.warmup_insts = 2000;
  c.attacks = {{trace::AttackKind::kHeapOob, 5}};
  return c;
}

// --- Packet conservation: everything the filter selects is eventually
// processed by exactly the engines the allocator chose, for every filter
// width and engine count. ---

class Conservation
    : public ::testing::TestWithParam<std::tuple<u32, u32>> {};

TEST_P(Conservation, NoPacketLostOrDuplicated) {
  const auto [width, n_engines] = GetParam();
  SocConfig sc;
  sc.frontend.filter.width = width;
  sc.kernels = {deploy(kernels::KernelKind::kAsan, n_engines)};
  trace::WorkloadGen gen(small_wl("ferret", 5));
  sc.kparams.text_lo = gen.text_lo();
  sc.kparams.text_hi = gen.text_hi();
  Soc soc(sc, gen);
  soc.run();
  const auto& fs = soc.frontend().stats();
  const auto& es = soc.frontend().filter().stats();
  // Every commit was observed.
  EXPECT_EQ(fs.commits_observed, 25000u);
  // valid = dropped (no SE) + delivered; every delivered packet reaches
  // exactly one engine (single-kernel ASan -> ae bitmaps are one-hot).
  EXPECT_EQ(es.valid_packets, fs.dropped_unrouted + soc.total_packets_processed());
  EXPECT_EQ(fs.dropped_unrouted, 0u);
  // Nothing left in flight.
  EXPECT_EQ(soc.frontend().filter().buffered(), 0u);
  EXPECT_TRUE(soc.frontend().cdc().empty());
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndEngines, Conservation,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 2u, 4u, 6u)));

// --- Commit-count invariance: monitoring must never change *what* executes,
// only when. ---

class CommitInvariance : public ::testing::TestWithParam<u32> {};

TEST_P(CommitInvariance, SameInstructionsAnyWidth) {
  SocConfig sc;
  sc.frontend.filter.width = GetParam();
  sc.kernels = {deploy(kernels::KernelKind::kUaf, 2)};
  const RunResult r = run_fireguard(small_wl("dedup", 9), sc);
  EXPECT_EQ(r.committed, 25000u);
}

INSTANTIATE_TEST_SUITE_P(Widths, CommitInvariance, ::testing::Values(1, 2, 4));

// --- Monotonicity: more engines can only help. ---

class Monotonic : public ::testing::TestWithParam<const char*> {};

TEST_P(Monotonic, SlowdownNonIncreasingInEngines) {
  SocConfig sc;
  Cycle prev = ~Cycle{0};
  for (u32 n : {1u, 2u, 4u, 8u, 12u}) {
    SocConfig s2 = sc;
    s2.kernels = {deploy(kernels::KernelKind::kAsan, n)};
    const Cycle c = run_fireguard(small_wl(GetParam(), 13), s2).cycles;
    // Allow 3% jitter: the engine count changes packet interleaving.
    EXPECT_LE(c, prev + prev / 32) << n << " engines";
    prev = std::min(prev, c);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, Monotonic,
                         ::testing::Values("blackscholes", "x264", "dedup"));

// --- Determinism across identical runs, for every kernel. ---

class Deterministic : public ::testing::TestWithParam<kernels::KernelKind> {};

TEST_P(Deterministic, BitIdenticalResults) {
  SocConfig sc;
  sc.kernels = {deploy(GetParam(), 3)};
  trace::WorkloadConfig w = small_wl("freqmine", 21);
  if (GetParam() == kernels::KernelKind::kShadowStack) {
    w.attacks = {{trace::AttackKind::kRetCorrupt, 5}};
  }
  const RunResult a = run_fireguard(w, sc);
  const RunResult b = run_fireguard(w, sc);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.packets, b.packets);
  ASSERT_EQ(a.detections.size(), b.detections.size());
  for (size_t i = 0; i < a.detections.size(); ++i) {
    EXPECT_EQ(a.detections[i].attack_id, b.detections[i].attack_id);
    EXPECT_EQ(a.detections[i].detect_fast, b.detections[i].detect_fast);
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, Deterministic,
                         ::testing::Values(kernels::KernelKind::kPmc,
                                           kernels::KernelKind::kShadowStack,
                                           kernels::KernelKind::kAsan,
                                           kernels::KernelKind::kUaf));

// --- Seed sensitivity: different seeds give different traces but stable
// structural properties. ---

TEST(Property, SeedsChangeTraceNotInvariants) {
  SocConfig sc;
  sc.kernels = {deploy(kernels::KernelKind::kAsan, 4)};
  const RunResult a = run_fireguard(small_wl("bodytrack", 1), sc);
  const RunResult b = run_fireguard(small_wl("bodytrack", 2), sc);
  EXPECT_NE(a.cycles, b.cycles);  // different dynamic behaviour
  EXPECT_EQ(a.committed, b.committed);
  // Both detect all five attacks.
  EXPECT_EQ(a.detections.size() >= 5, true);
  EXPECT_EQ(b.detections.size() >= 5, true);
}

// --- Programming-model ordering holds inside the full system. ---

TEST(Property, HybridNoWorseThanConventionalEndToEnd) {
  SocConfig conv;
  conv.kernels = {deploy(kernels::KernelKind::kAsan, 4,
                         kernels::ProgModel::kConventional)};
  SocConfig hyb;
  hyb.kernels = {deploy(kernels::KernelKind::kAsan, 4, kernels::ProgModel::kHybrid)};
  const trace::WorkloadConfig w = small_wl("x264", 31);
  const Cycle c_conv = run_fireguard(w, conv).cycles;
  const Cycle c_hyb = run_fireguard(w, hyb).cycles;
  EXPECT_LE(c_hyb, c_conv);
}

}  // namespace
}  // namespace fg::soc
