// The declarative experiment API (src/api): spec serialization exactness,
// the SimSession facade, the deploy()/policy_overridden contract, and the
// acceptance gate of the redesign — a spec exported from the Table II
// configuration must reproduce the legacy run_fireguard() path bit for bit.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/api/session.h"
#include "src/soc/figures.h"

#ifndef FIREGUARD_SOURCE_DIR
#define FIREGUARD_SOURCE_DIR "."
#endif

namespace fg::api {
namespace {

ExperimentSpec small_table2_spec() {
  ExperimentSpec spec = table2_spec("blackscholes");
  spec.workload = soc::paper_workload("blackscholes", 10'000,
                                      {{trace::AttackKind::kHeapOob, 4}});
  spec.soc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4)};
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// ACCEPTANCE: spec → JSON → spec → run must be bit-identical to the
/// pre-redesign run_fireguard(table2_soc()) path on the same workload.
TEST(ExperimentSpec, ExportedTable2SpecReproducesRunFireguardBitExactly) {
  const ExperimentSpec spec = small_table2_spec();

  // The legacy path.
  const soc::RunResult legacy = soc::run_fireguard(spec.workload, spec.soc);

  // The new path, through the full serialization round-trip.
  const std::string exported = spec_to_json(spec);
  ExperimentSpec reparsed;
  std::string err;
  ASSERT_TRUE(spec_from_json(exported, &reparsed, &err)) << err;
  const RunOutcome outcome = run_spec(reparsed);

  EXPECT_EQ(outcome.result.cycles, legacy.cycles);
  EXPECT_EQ(outcome.result.committed, legacy.committed);
  EXPECT_EQ(outcome.result.packets, legacy.packets);
  EXPECT_EQ(outcome.result.spurious, legacy.spurious);
  EXPECT_EQ(outcome.result.planned_attacks, legacy.planned_attacks);
  ASSERT_EQ(outcome.result.detections.size(), legacy.detections.size());
  for (size_t i = 0; i < legacy.detections.size(); ++i) {
    EXPECT_EQ(outcome.result.detections[i].attack_id,
              legacy.detections[i].attack_id);
    EXPECT_EQ(outcome.result.detections[i].engine,
              legacy.detections[i].engine);
    EXPECT_EQ(outcome.result.detections[i].commit_fast,
              legacy.detections[i].commit_fast);
    EXPECT_EQ(outcome.result.detections[i].detect_fast,
              legacy.detections[i].detect_fast);
  }
  EXPECT_EQ(outcome.result.stall_fractions, legacy.stall_fractions);
  // And the snapshot agrees with the run it froze.
  EXPECT_EQ(outcome.snapshot.cycles, legacy.cycles);
  EXPECT_EQ(outcome.snapshot.committed, legacy.committed);
  EXPECT_EQ(outcome.snapshot.packets, legacy.packets);
}

TEST(ExperimentSpec, CanonicalFormIsAFixedPointOfTheRoundTrip) {
  const ExperimentSpec spec = small_table2_spec();
  ExperimentSpec back;
  std::string err;
  ASSERT_TRUE(spec_from_json(spec_to_json(spec), &back, &err)) << err;
  EXPECT_EQ(spec_canonical(back), spec_canonical(spec));
  // Compact form too.
  ASSERT_TRUE(spec_from_json(spec_canonical(spec), &back, &err)) << err;
  EXPECT_EQ(spec_canonical(back), spec_canonical(spec));
}

TEST(ExperimentSpec, SparseSpecInheritsTable2Defaults) {
  ExperimentSpec spec;
  std::string err;
  ASSERT_TRUE(spec_from_json(
      R"({"workload": {"profile": {"name": "x264"}},
          "soc": {"kernels": [{"kind": "pmc", "engines": 6}]}})",
      &spec, &err))
      << err;
  EXPECT_EQ(spec.workload.profile.name, "x264");
  ASSERT_EQ(spec.soc.kernels.size(), 1u);
  EXPECT_EQ(spec.soc.kernels[0].kind, kernels::KernelKind::kPmc);
  EXPECT_EQ(spec.soc.kernels[0].n_engines, 6u);
  // Everything unnamed keeps Table II.
  const soc::SocConfig t2 = soc::table2_soc();
  EXPECT_EQ(spec.soc.core.rob_entries, t2.core.rob_entries);
  EXPECT_EQ(spec.soc.frontend.cdc_depth, t2.frontend.cdc_depth);
  EXPECT_EQ(spec.soc.mem.dram_latency, t2.mem.dram_latency);
}

TEST(ExperimentSpec, UnknownKeysAndEnumsAreLoudErrors) {
  ExperimentSpec spec;
  std::string err;
  EXPECT_FALSE(spec_from_json(R"({"workloat": {}})", &spec, &err));
  EXPECT_NE(err.find("workloat"), std::string::npos);
  EXPECT_FALSE(
      spec_from_json(R"({"soc": {"kernels": [{"kind": "asanx"}]}})", &spec,
                     &err));
  EXPECT_NE(err.find("asanx"), std::string::npos);
  EXPECT_FALSE(
      spec_from_json(R"({"soc": {"core": {"rob": 128}}})", &spec, &err));
  EXPECT_NE(err.find("rob"), std::string::npos);
  EXPECT_FALSE(spec_from_json(R"({"mode": "hardware"})", &spec, &err));
  EXPECT_FALSE(spec_from_json(R"({"schema": "fireguard/spec/v999"})", &spec,
                              &err));
}

TEST(ExperimentSpec, Table2ExampleFileMatchesTheProgrammaticSpec) {
  ExperimentSpec from_file;
  std::string err;
  ASSERT_TRUE(spec_from_json(
      read_file(std::string(FIREGUARD_SOURCE_DIR) + "/examples/table2.json"),
      &from_file, &err))
      << err;

  ExperimentSpec programmatic = table2_spec("blackscholes");
  programmatic.name = "table2/quickstart";
  programmatic.soc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4)};
  EXPECT_EQ(spec_canonical(from_file), spec_canonical(programmatic));
}

// --- deploy() / policy_overridden ergonomics (satellite regression) -------

TEST(KernelDeployment, DeployWithPolicySetsOverriddenFlag) {
  const soc::KernelDeployment d =
      soc::deploy(kernels::KernelKind::kShadowStack, 4,
                  kernels::ProgModel::kHybrid, false,
                  core::SchedPolicy::kBlock);
  EXPECT_EQ(d.policy, core::SchedPolicy::kBlock);
  EXPECT_TRUE(d.policy_overridden);

  const soc::KernelDeployment plain =
      soc::deploy(kernels::KernelKind::kShadowStack, 4);
  EXPECT_FALSE(plain.policy_overridden);
}

TEST(KernelDeployment, SpecLayerNeverProducesInconsistentPolicyState) {
  // JSON with a policy: flag set automatically.
  ExperimentSpec spec;
  std::string err;
  ASSERT_TRUE(spec_from_json(
      R"({"soc": {"kernels": [{"kind": "shadow_stack", "policy": "block"}]}})",
      &spec, &err))
      << err;
  ASSERT_EQ(spec.soc.kernels.size(), 1u);
  EXPECT_EQ(spec.soc.kernels[0].policy, core::SchedPolicy::kBlock);
  EXPECT_TRUE(spec.soc.kernels[0].policy_overridden);

  // JSON without a policy: flag stays clear.
  ASSERT_TRUE(spec_from_json(
      R"({"soc": {"kernels": [{"kind": "shadow_stack"}]}})", &spec, &err));
  EXPECT_FALSE(spec.soc.kernels[0].policy_overridden);

  // --set policy=…: flag set automatically, and it survives the round-trip.
  ASSERT_TRUE(apply_set(&spec, "policy", "fixed", &err)) << err;
  EXPECT_TRUE(spec.soc.kernels[0].policy_overridden);
  ExperimentSpec back;
  ASSERT_TRUE(spec_from_json(spec_to_json(spec), &back, &err)) << err;
  EXPECT_EQ(back.soc.kernels[0].policy, core::SchedPolicy::kFixed);
  EXPECT_TRUE(back.soc.kernels[0].policy_overridden);
}

// --- overrides and sweep expansion ----------------------------------------

TEST(ApplySet, KnownKeysApplyUnknownKeysFail) {
  ExperimentSpec spec = default_spec();
  std::string err;
  ASSERT_TRUE(apply_set(&spec, "trace_len", "5000", &err)) << err;
  EXPECT_EQ(spec.workload.n_insts, 5000u);
  EXPECT_EQ(spec.workload.warmup_insts, 500u);
  ASSERT_TRUE(apply_set(&spec, "kernel", "uaf", &err)) << err;
  EXPECT_EQ(spec.soc.kernels.front().kind, kernels::KernelKind::kUaf);
  ASSERT_TRUE(apply_set(&spec, "detailed_mem", "true", &err)) << err;
  EXPECT_TRUE(spec.soc.mem.detailed_dram);
  EXPECT_TRUE(spec.soc.mem.detailed_ptw);
  ASSERT_TRUE(apply_set(&spec, "attacks", "heap_oob:3,pc_hijack:2", &err))
      << err;
  ASSERT_EQ(spec.workload.attacks.size(), 2u);
  EXPECT_EQ(spec.workload.attacks[0].first, trace::AttackKind::kHeapOob);
  EXPECT_EQ(spec.workload.attacks[0].second, 3u);

  EXPECT_FALSE(apply_set(&spec, "no_such_knob", "1", &err));
  EXPECT_NE(err.find("no_such_knob"), std::string::npos);
  EXPECT_FALSE(apply_set(&spec, "engines", "many", &err));
}

TEST(SweepExpansion, CrossProductInDeclarationOrder) {
  ExperimentSpec spec = default_spec();
  spec.name = "grid";
  spec.sweep = {{"kernel", {"pmc", "asan"}}, {"engines", {"2", "4"}}};
  std::vector<GridPoint> grid;
  std::string err;
  ASSERT_TRUE(expand_grid(spec, &grid, &err)) << err;
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0].name, "grid/kernel=pmc/engines=2");
  EXPECT_EQ(grid[1].name, "grid/kernel=pmc/engines=4");
  EXPECT_EQ(grid[2].name, "grid/kernel=asan/engines=2");
  EXPECT_EQ(grid[3].name, "grid/kernel=asan/engines=4");
  EXPECT_EQ(grid[3].spec.soc.kernels.front().kind,
            kernels::KernelKind::kAsan);
  EXPECT_EQ(grid[3].spec.soc.kernels.front().n_engines, 4u);
  EXPECT_TRUE(grid[0].spec.sweep.empty());

  spec.sweep = {{"bogus_axis", {"1"}}};
  EXPECT_FALSE(expand_grid(spec, &grid, &err));
}

TEST(SimSession, SweepGridMatchesSingleRunsAndIsJobCountInvariant) {
  ExperimentSpec spec = default_spec();
  spec.workload = soc::paper_workload("dedup", 3'000);
  spec.sweep = {{"engines", {"2", "4"}}};

  SessionConfig serial_cfg;
  serial_cfg.jobs = 1;
  SimSession serial(spec, serial_cfg);
  SessionConfig par_cfg;
  par_cfg.jobs = 4;
  SimSession parallel(spec, par_cfg);

  size_t progress_events = 0;
  parallel.on_progress([&](const Progress& p) {
    ++progress_events;
    EXPECT_LE(p.completed, p.total);
    EXPECT_NE(p.outcome, nullptr);
  });

  const std::vector<RunOutcome>& a = serial.run_all();
  const std::vector<RunOutcome>& b = parallel.run_all();
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(progress_events, 2u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(snapshots_equal(a[i].snapshot, b[i].snapshot))
        << snapshot_diff(a[i].snapshot, b[i].snapshot, "serial", "parallel");
    EXPECT_EQ(a[i].baseline_cycles, b[i].baseline_cycles);
    EXPECT_EQ(a[i].name, b[i].name);
  }
  // The two points share one baseline (same workload/core/mem sub-spec).
  EXPECT_EQ(serial.baseline_cache().misses(), 1u);
  EXPECT_EQ(serial.baseline_cache().hits(), 1u);

  // And each grid point equals a standalone run of its spec.
  const RunOutcome solo = run_spec(serial.points()[1].spec);
  EXPECT_TRUE(snapshots_equal(solo.snapshot, a[1].snapshot));
}

TEST(SimSession, OutcomeJsonEmbedsTheCanonicalSnapshot) {
  ExperimentSpec spec = default_spec();
  spec.workload = soc::paper_workload("swaptions", 2'000);
  SimSession session(spec, SessionConfig{1, false});
  const RunOutcome& r = session.run();
  const std::string text = outcome_json(r);
  json::Value v;
  ASSERT_TRUE(json::parse(text, &v)) << text;
  EXPECT_EQ(v.get_str("schema"), "fireguard/outcome/v1");
  EXPECT_EQ(v.get_u64("cycles"), r.result.cycles);
  const json::Value* snap = v.get("snapshot");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->get_u64("committed"), r.snapshot.committed);
}

// --- docs drift gate -------------------------------------------------------

TEST(SpecSchema, EveryFieldAndKnobIsDocumentedInApiMd) {
  const std::string doc =
      read_file(std::string(FIREGUARD_SOURCE_DIR) + "/docs/API.md");
  ASSERT_FALSE(doc.empty());
  // A spec field added (or renamed) without a matching docs/API.md update
  // fails here: the schema reference must list every flattened key.
  for (const std::string& key : spec_schema_keys()) {
    EXPECT_NE(doc.find("`" + key + "`"), std::string::npos)
        << "docs/API.md is missing schema key `" << key
        << "` — update the ExperimentSpec schema reference";
  }
  for (const auto& [key, help] : settable_keys()) {
    EXPECT_NE(doc.find("`" + key + "`"), std::string::npos)
        << "docs/API.md is missing --set knob `" << key << "`";
  }
}

TEST(SpecSchema, BaselineCacheKeyIsTheCanonicalSubSpec) {
  const ExperimentSpec spec = small_table2_spec();
  const std::string key =
      soc::baseline_subspec_json(spec.workload, spec.soc);
  json::Value v;
  ASSERT_TRUE(json::parse(key, &v)) << key;
  EXPECT_EQ(v.get_str("schema"), "fireguard/baseline_key/v1");
  ASSERT_NE(v.get("workload"), nullptr);
  ASSERT_NE(v.get("core"), nullptr);
  ASSERT_NE(v.get("mem"), nullptr);
  // Frontend / kernel knobs are deliberately absent: FireGuard-side sweeps
  // share one baseline per (workload, core, mem) point.
  EXPECT_EQ(v.get("frontend"), nullptr);
  EXPECT_EQ(v.get("kernels"), nullptr);
}

}  // namespace
}  // namespace fg::api
