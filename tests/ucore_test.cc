#include <gtest/gtest.h>

#include "src/ucore/ucore.h"

namespace fg::ucore {
namespace {

core::Packet pk(u64 pc, u32 inst, u64 addr, u64 data) {
  core::Packet p;
  p.valid = true;
  p.pc = pc;
  p.inst = inst;
  p.addr = addr;
  p.data = data;
  return p;
}

/// Run until halted or budget exhausted; returns consumed µcycles.
Cycle run(UCore& c, Cycle budget = 100000) {
  Cycle t = 0;
  while (!c.halted() && t < budget) c.tick(t++);
  return t;
}

struct Fixture {
  UCoreConfig cfg;
  USharedMemory mem;
  Fixture() = default;
  UCore make(const UProgram& prog) {
    UCore c(cfg, 0, &mem, nullptr);
    c.load_program(prog);
    return c;
  }
};

TEST(UCore, AluFunctional) {
  UProgramBuilder b("alu");
  b.li(1, 6);
  b.li(2, 7);
  b.add(3, 1, 2);
  b.sub(4, 3, 1);
  b.slli(5, 1, 2);
  b.sltu(6, 1, 2);
  b.xori(7, 1, 0xf);
  b.halt();
  Fixture f;
  UCore c = f.make(b.build());
  run(c);
  EXPECT_EQ(c.reg(3), 13u);
  EXPECT_EQ(c.reg(4), 7u);
  EXPECT_EQ(c.reg(5), 24u);
  EXPECT_EQ(c.reg(6), 1u);
  EXPECT_EQ(c.reg(7), 9u);
}

TEST(UCore, X0Hardwired) {
  UProgramBuilder b("x0");
  b.li(0, 42);
  b.add(1, 0, 0);
  b.halt();
  Fixture f;
  UCore c = f.make(b.build());
  run(c);
  EXPECT_EQ(c.reg(0), 0u);
  EXPECT_EQ(c.reg(1), 0u);
}

TEST(UCore, LoadStoreRoundTrip) {
  UProgramBuilder b("mem");
  b.li(1, 0x1000);
  b.li(2, 0xdeadbeef);
  b.sd(2, 1, 8);
  b.ld(3, 1, 8);
  b.sb(2, 1, 0);
  b.lbu(4, 1, 0);
  b.halt();
  Fixture f;
  UCore c = f.make(b.build());
  run(c);
  EXPECT_EQ(c.reg(3), 0xdeadbeefu);
  EXPECT_EQ(c.reg(4), 0xefu);
  EXPECT_EQ(f.mem.load(0x1008, 8), 0xdeadbeefu);
}

TEST(UCore, BranchSemantics) {
  UProgramBuilder b("br");
  const auto skip = b.new_label();
  b.li(1, 3);
  b.li(2, 3);
  b.beq(1, 2, skip);
  b.li(3, 111);  // must be skipped
  b.bind(skip);
  b.li(4, 222);
  b.halt();
  Fixture f;
  UCore c = f.make(b.build());
  run(c);
  EXPECT_EQ(c.reg(3), 0u);
  EXPECT_EQ(c.reg(4), 222u);
}

TEST(UCore, QueueInstructionSemantics) {
  UProgramBuilder b("q");
  b.qcount(1, 0);    // 2 packets
  b.qtop(2, 0);      // pc of first, no removal
  b.qcount(3, 0);    // still 2
  b.qpop(4, 128);    // addr of first, removes it
  b.qrecent(5, 192); // data of the removed packet
  b.qpop(6, 0);      // pc of second
  b.qcount(7, 0);    // 0
  b.halt();
  Fixture f;
  UCore c = f.make(b.build());
  c.push_input(pk(0x100, 1, 0xaaa, 0xd1));
  c.push_input(pk(0x200, 2, 0xbbb, 0xd2));
  run(c);
  EXPECT_EQ(c.reg(1), 2u);
  EXPECT_EQ(c.reg(2), 0x100u);
  EXPECT_EQ(c.reg(3), 2u);
  EXPECT_EQ(c.reg(4), 0xaaau);
  EXPECT_EQ(c.reg(5), 0xd1u);
  EXPECT_EQ(c.reg(6), 0x200u);
  EXPECT_EQ(c.reg(7), 0u);
  EXPECT_EQ(c.stats().packets_popped, 2u);
}

TEST(UCore, PushFillsOutputQueue) {
  UProgramBuilder b("push");
  b.li(1, 0x77);
  b.qpush(1);
  b.halt();
  Fixture f;
  UCore c = f.make(b.build());
  run(c);
  ASSERT_FALSE(c.output_empty());
  EXPECT_EQ(c.pop_output(), 0x77u);
}

TEST(UCore, NocRecvDrainsInbox) {
  UProgramBuilder b("noc");
  b.nocrecv(1);
  b.nocrecv(2);
  b.halt();
  Fixture f;
  UCore c = f.make(b.build());
  c.push_noc(0x55);
  run(c);
  EXPECT_EQ(c.reg(1), 0x55u);
  EXPECT_EQ(c.reg(2), 0u);  // empty -> 0
}

TEST(UCore, DetectRecords) {
  UProgramBuilder b("det");
  b.li(1, 42);
  b.li(2, 0xbad);
  b.detect(1, 2);
  b.halt();
  Fixture f;
  UCore c = f.make(b.build());
  run(c);
  ASSERT_EQ(c.detections().size(), 1u);
  EXPECT_EQ(c.detections()[0].payload, 42u);
  EXPECT_EQ(c.detections()[0].aux, 0xbadu);
}

TEST(UCore, NocConsumeClearsSpinSoIdleEngineIsNotFrozenMidBody) {
  // Token-wait shape: spin on nocrecv, then handle the payload (several
  // body instructions). After consuming the payload the core must NOT
  // report idle() — the SoC skips ticking idle engines, and a stale spin
  // flag would freeze the body (and any detect in it) forever if no input
  // packet ever arrives.
  UProgramBuilder b("tokenwait");
  const auto loop = b.new_label();
  b.bind(loop);
  b.nocrecv(1);
  b.beqz(1, loop);
  b.li(2, 7);       // payload-handling body
  b.detect(1, 2);   // records the consumed payload
  b.j(loop);
  Fixture f;
  UCore c = f.make(b.build());
  Cycle t = 0;
  for (; t < 50; ++t) c.tick(t);
  EXPECT_TRUE(c.idle());  // spinning on an empty inbox
  c.push_noc(0x42);
  EXPECT_FALSE(c.idle());  // inbox pending
  // Drive only while the core reports non-idle — exactly what Soc::slow_tick
  // does. The body must still complete and raise its detect.
  for (; t < 200 && !c.idle(); ++t) c.tick(t);
  ASSERT_EQ(c.detections().size(), 1u);
  EXPECT_EQ(c.detections()[0].payload, 0x42u);
  EXPECT_TRUE(c.idle());  // back on the empty-inbox spin
}

TEST(UCore, SpinDetectionSticky) {
  UProgramBuilder b("spin");
  const auto loop = b.new_label();
  b.bind(loop);
  b.qcount(1, 0);
  b.beqz(1, loop);
  b.qpop(2, 0);
  b.j(loop);
  Fixture f;
  UCore c = f.make(b.build());
  Cycle t = 0;
  for (; t < 50; ++t) c.tick(t);
  EXPECT_TRUE(c.quiescent());
  c.push_input(pk(1, 2, 3, 4));
  EXPECT_FALSE(c.quiescent());
  for (; t < 100; ++t) c.tick(t);
  EXPECT_TRUE(c.quiescent());
}

// --- Timing behaviour ---

Cycle time_program(const UProgram& p, UCoreConfig cfg = {}, int packets = 0) {
  USharedMemory mem;
  UCore c(cfg, 0, &mem, nullptr);
  c.load_program(p);
  for (int i = 0; i < packets; ++i) c.push_input(pk(i, i, i, i));
  return run(c);
}

TEST(UCoreTiming, LoadUseBubbleCostsOneCycle) {
  // Dependent consumer right after the load...
  UProgramBuilder b1("dep");
  b1.li(1, 0x100);
  b1.ld(2, 1, 0);
  b1.addi(3, 2, 1);  // immediate use: +1 bubble
  b1.halt();
  // ...versus an independent instruction in between.
  UProgramBuilder b2("indep");
  b2.li(1, 0x100);
  b2.ld(2, 1, 0);
  b2.addi(4, 1, 1);
  b2.halt();
  EXPECT_EQ(time_program(b1.build()), time_program(b2.build()) + 1);
}

TEST(UCoreTiming, TakenBranchCostsExtraCycle) {
  UProgramBuilder b1("taken");
  const auto l1 = b1.new_label();
  b1.li(1, 1);
  b1.bnez(1, l1);
  b1.bind(l1);
  b1.halt();
  UProgramBuilder b2("nottaken");
  const auto l2 = b2.new_label();
  b2.li(1, 0);
  b2.bnez(1, l2);
  b2.bind(l2);
  b2.halt();
  EXPECT_EQ(time_program(b1.build()), time_program(b2.build()) + 1);
}

TEST(UCoreTiming, PostCommitIsaxMuchSlower) {
  // The Section III-D motivation: stock Rocket's post-commit ISAX interface
  // blocks >= 3 cycles per queue op, up to 13 with hazards; the MA-stage
  // integration pays at most one bubble.
  UProgramBuilder b("isax");
  for (int i = 0; i < 16; ++i) {
    b.qcount(1, 0);
    b.addi(2, 1, 1);  // dependent use
  }
  b.halt();
  const UProgram prog = b.build();
  UCoreConfig ma;
  ma.isax_ma_stage = true;
  UCoreConfig pc;
  pc.isax_ma_stage = false;
  const Cycle ma_time = time_program(prog, ma);
  const Cycle pc_time = time_program(prog, pc);
  EXPECT_GT(pc_time, ma_time * 3);
}

TEST(UCoreTiming, PostCommitContentionCompounds) {
  UProgramBuilder b("b2b");
  for (int i = 0; i < 8; ++i) b.qcount(1, 0);  // back-to-back ISAX
  b.halt();
  UCoreConfig pc;
  pc.isax_ma_stage = false;
  const Cycle t = time_program(b.build(), pc);
  // 8 ops, first >= 3, later ones >= 5 (contention window).
  EXPECT_GE(t, 8u * 3 + 7 * 1);
}

TEST(UCoreTiming, DcacheMissCostsL2Latency) {
  UProgramBuilder b("miss");
  b.li(1, 0x100000);
  b.ld(2, 1, 0);       // cold miss
  b.ld(3, 1, 8);       // same line: hit
  b.halt();
  UCoreConfig cfg;
  USharedMemory mem;
  UCore c(cfg, 0, &mem, nullptr);
  c.load_program(b.build());
  const Cycle t = run(c);
  EXPECT_GE(t, cfg.l2_latency);
  EXPECT_EQ(c.dcache().stats().misses, 1u);
}

TEST(UCoreTiming, TlbMissAddsWalk) {
  UProgramBuilder b("tlb");
  b.li(1, 0);
  // Touch 40 distinct pages: more than the 32-entry µTLB holds.
  for (int i = 0; i < 40; ++i) b.ld(2, 1, i * 4096);
  b.halt();
  UCoreConfig cfg;
  USharedMemory mem;
  UCore c(cfg, 0, &mem, nullptr);
  c.load_program(b.build());
  run(c);
  EXPECT_EQ(c.utlb().stats().misses, 40u);
}

}  // namespace
}  // namespace fg::ucore
