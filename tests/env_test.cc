// Strict environment parsing (src/common/env.h): FG_TRACE_LEN / FG_ATTACKS
// style knobs must be exact decimals — malformed or overflowing values
// abort loudly instead of silently simulating the wrong experiment.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/common/env.h"
#include "src/soc/experiment.h"

namespace fg {
namespace {

struct EnvGuard {
  const char* name;
  std::string saved;
  bool had = false;
  explicit EnvGuard(const char* n) : name(n) {
    if (const char* v = std::getenv(n)) {
      saved = v;
      had = true;
    }
  }
  ~EnvGuard() {
    if (had) {
      setenv(name, saved.c_str(), 1);
    } else {
      unsetenv(name);
    }
  }
};

TEST(EnvStrict, ParsesExactDecimals) {
  EXPECT_EQ(parse_u64_strict("0"), 0u);
  EXPECT_EQ(parse_u64_strict("150000"), 150000u);
  EXPECT_EQ(parse_u64_strict("18446744073709551615"), ~u64{0});
}

TEST(EnvStrict, RejectsMalformedAndOverflow) {
  EXPECT_FALSE(parse_u64_strict(nullptr).has_value());
  EXPECT_FALSE(parse_u64_strict("").has_value());
  EXPECT_FALSE(parse_u64_strict("150k").has_value());
  EXPECT_FALSE(parse_u64_strict("1_000").has_value());
  EXPECT_FALSE(parse_u64_strict(" 5").has_value());
  EXPECT_FALSE(parse_u64_strict("5 ").has_value());
  EXPECT_FALSE(parse_u64_strict("-1").has_value());
  EXPECT_FALSE(parse_u64_strict("+1").has_value());
  EXPECT_FALSE(parse_u64_strict("0x10").has_value());
  EXPECT_FALSE(parse_u64_strict("1.5").has_value());
  EXPECT_FALSE(parse_u64_strict("18446744073709551616").has_value());
}

TEST(EnvStrict, UnsetAndEmptyFallBack) {
  EnvGuard guard("FG_TEST_ENV_U64");
  unsetenv("FG_TEST_ENV_U64");
  EXPECT_EQ(env_u64_or("FG_TEST_ENV_U64", 42), 42u);
  setenv("FG_TEST_ENV_U64", "", 1);
  EXPECT_EQ(env_u64_or("FG_TEST_ENV_U64", 42), 42u);
  setenv("FG_TEST_ENV_U64", "7", 1);
  EXPECT_EQ(env_u64_or("FG_TEST_ENV_U64", 42), 7u);
}

using EnvStrictDeath = ::testing::Test;

TEST(EnvStrictDeath, MalformedValueAbortsLoudly) {
  EXPECT_DEATH(
      {
        setenv("FG_TEST_ENV_U64", "150k", 1);
        env_u64_or("FG_TEST_ENV_U64", 1);
      },
      "FG_TEST_ENV_U64");
}

TEST(EnvStrictDeath, U32RangeIsEnforced) {
  EXPECT_DEATH(
      {
        setenv("FG_TEST_ENV_U32", "4294967296", 1);  // 2^32
        env_u32_or("FG_TEST_ENV_U32", 1);
      },
      "out of u32 range");
}

// The two experiment knobs the issue names, end to end.
TEST(EnvStrictDeath, TraceLenRejectsGarbage) {
  EXPECT_DEATH(
      {
        setenv("FG_TRACE_LEN", "fast", 1);
        soc::default_trace_len();
      },
      "FG_TRACE_LEN");
}

TEST(EnvStrictDeath, AttacksRejectsOverflow) {
  EXPECT_DEATH(
      {
        setenv("FG_ATTACKS", "99999999999999999999", 1);
        soc::default_attack_count();
      },
      "FG_ATTACKS");
}

TEST(EnvStrict, TraceLenAndAttacksHonorValidValues) {
  {
    EnvGuard g1("FG_TRACE_LEN");
    setenv("FG_TRACE_LEN", "12345", 1);
    EXPECT_EQ(soc::default_trace_len(), 12345u);
  }
  {
    EnvGuard g2("FG_ATTACKS");
    setenv("FG_ATTACKS", "77", 1);
    EXPECT_EQ(soc::default_attack_count(), 77u);
  }
  EnvGuard g3("FG_TRACE_LEN");
  unsetenv("FG_TRACE_LEN");
  EXPECT_EQ(soc::default_trace_len(), 150000u);
}

}  // namespace
}  // namespace fg
