// Tests for the RVC decompressor: every expansion must decode to the exact
// architectural instruction, and reserved encodings must be rejected.
#include "src/isa/rvc.h"

#include <gtest/gtest.h>

#include "src/isa/decode.h"

namespace fg::isa {
namespace {

// Assemble a 16-bit value from named fields (little helper to keep the
// expected encodings readable).
constexpr u16 h16(u16 f15_13, u16 mid, u16 op) {
  return static_cast<u16>((f15_13 << 13) | (mid << 2) | op);
}

Decoded expand_and_decode(u16 half) {
  const auto full = expand_rvc(half);
  EXPECT_TRUE(full.has_value()) << std::hex << half;
  if (!full) return {};
  const Decoded d = decode(*full);
  EXPECT_TRUE(d.valid()) << std::hex << half << " -> " << *full;
  return d;
}

TEST(Rvc, AllZeroAndUncompressedRejected) {
  EXPECT_FALSE(expand_rvc(0).has_value());
  EXPECT_FALSE(expand_rvc(0x0003).has_value());  // low bits 11 = 32-bit
  EXPECT_TRUE(is_rvc(0x0001));
  EXPECT_FALSE(is_rvc(0xffff));
}

TEST(Rvc, Addi4spn) {
  // c.addi4spn x8, sp, 16: nzuimm=16 -> bits[10:7]=0b0100 wait,
  // imm[5:4|9:6|2|3] layout; build imm=16 => bit4=1 -> field [12:11]=0b10? The
  // builder in rvc.cc maps [10:7]->imm[9:6], [12:11]->imm[5:4], [5]->imm[3],
  // [6]->imm[2]. imm=16 => imm[4]=1 => bits[12:11]=01.
  const u16 h = static_cast<u16>((0u << 13) | (0x1u << 11) | (0u << 7) |
                                 (0u << 5) | (0x0u << 2) | 0x0);
  const Decoded d = expand_and_decode(h);
  EXPECT_EQ(d.mnemonic, Mnemonic::kAddi);
  EXPECT_EQ(d.rs1, 2);
  EXPECT_EQ(d.rd, 8);
  EXPECT_EQ(d.imm, 16);
}

TEST(Rvc, Addi4spnZeroImmediateReserved) {
  EXPECT_FALSE(expand_rvc(h16(0, 0, 0)).has_value());
}

TEST(Rvc, LoadStoreDoubleword) {
  // c.ld x9, 8(x10): rs1'=x10 -> 2, rd'=x9 -> 1, imm 8 -> bits[12:10]=001.
  const u16 ld = static_cast<u16>((0x3u << 13) | (0x1u << 10) | (2u << 7) |
                                  (1u << 2) | 0x0);
  const Decoded dl = expand_and_decode(ld);
  EXPECT_EQ(dl.mnemonic, Mnemonic::kLd);
  EXPECT_EQ(dl.rd, 9);
  EXPECT_EQ(dl.rs1, 10);
  EXPECT_EQ(dl.imm, 8);
  // c.sd x9, 16(x10).
  const u16 sd = static_cast<u16>((0x7u << 13) | (0x2u << 10) | (2u << 7) |
                                  (1u << 2) | 0x0);
  const Decoded ds = expand_and_decode(sd);
  EXPECT_EQ(ds.mnemonic, Mnemonic::kSd);
  EXPECT_EQ(ds.rs2, 9);
  EXPECT_EQ(ds.rs1, 10);
  EXPECT_EQ(ds.imm, 16);
}

TEST(Rvc, AddiAndLi) {
  // c.addi x5, -1: [12]=1 [6:2]=0b11111.
  const u16 addi = static_cast<u16>((0x0u << 13) | (1u << 12) | (5u << 7) |
                                    (0x1fu << 2) | 0x1);
  const Decoded da = expand_and_decode(addi);
  EXPECT_EQ(da.mnemonic, Mnemonic::kAddi);
  EXPECT_EQ(da.rd, 5);
  EXPECT_EQ(da.rs1, 5);
  EXPECT_EQ(da.imm, -1);
  // c.li x7, 9.
  const u16 li = static_cast<u16>((0x2u << 13) | (7u << 7) | (9u << 2) | 0x1);
  const Decoded dli = expand_and_decode(li);
  EXPECT_EQ(dli.mnemonic, Mnemonic::kAddi);
  EXPECT_EQ(dli.rs1, 0);
  EXPECT_EQ(dli.imm, 9);
}

TEST(Rvc, AddiwReservedWhenRdZero) {
  const u16 good = static_cast<u16>((0x1u << 13) | (3u << 7) | (1u << 2) | 0x1);
  EXPECT_EQ(expand_and_decode(good).mnemonic, Mnemonic::kAddiw);
  const u16 bad = static_cast<u16>((0x1u << 13) | (0u << 7) | (1u << 2) | 0x1);
  EXPECT_FALSE(expand_rvc(bad).has_value());
}

TEST(Rvc, LuiAndAddi16sp) {
  // c.lui x5, 1: imm[17]=0, imm[16:12]=1.
  const u16 lui = static_cast<u16>((0x3u << 13) | (5u << 7) | (1u << 2) | 0x1);
  const Decoded d = expand_and_decode(lui);
  EXPECT_EQ(d.mnemonic, Mnemonic::kLui);
  EXPECT_EQ(d.imm, 1 << 12);
  // rd=2 selects c.addi16sp: imm=16 -> bit[4] -> h bit 6.
  const u16 sp = static_cast<u16>((0x3u << 13) | (2u << 7) | (1u << 6) | 0x1);
  const Decoded dsp = expand_and_decode(sp);
  EXPECT_EQ(dsp.mnemonic, Mnemonic::kAddi);
  EXPECT_EQ(dsp.rd, 2);
  EXPECT_EQ(dsp.imm, 16);
  // c.lui with rd=0 or imm=0 reserved.
  EXPECT_FALSE(expand_rvc(static_cast<u16>((0x3u << 13) | (5u << 7) | 0x1)).has_value());
}

TEST(Rvc, AluBlock) {
  // c.srli x8, 4: [11:10]=00, rd'=0, shamt=4.
  const u16 srli = static_cast<u16>((0x4u << 13) | (0x0u << 10) | (0u << 7) |
                                    (4u << 2) | 0x1);
  EXPECT_EQ(expand_and_decode(srli).mnemonic, Mnemonic::kSrli);
  EXPECT_EQ(expand_and_decode(srli).imm, 4);
  // c.srai x8, 63: [12]=1, shamt[4:0]=31.
  const u16 srai = static_cast<u16>((0x4u << 13) | (1u << 12) | (0x1u << 10) |
                                    (0u << 7) | (0x1fu << 2) | 0x1);
  EXPECT_EQ(expand_and_decode(srai).mnemonic, Mnemonic::kSrai);
  EXPECT_EQ(expand_and_decode(srai).imm, 63);
  // c.andi x9, -4: [11:10]=10, rd'=1, imm=-4 ([12]=1, [6:2]=0b11100).
  const u16 andi = static_cast<u16>((0x4u << 13) | (1u << 12) | (0x2u << 10) |
                                    (1u << 7) | (0x1cu << 2) | 0x1);
  EXPECT_EQ(expand_and_decode(andi).mnemonic, Mnemonic::kAndi);
  EXPECT_EQ(expand_and_decode(andi).imm, -4);
  // c.sub x8, x9: [12]=0, [11:10]=11, [6:5]=00, rs2'=1.
  const u16 sub = static_cast<u16>((0x4u << 13) | (0x3u << 10) | (0u << 7) |
                                   (0x0u << 5) | (1u << 2) | 0x1);
  EXPECT_EQ(expand_and_decode(sub).mnemonic, Mnemonic::kSub);
  // c.addw x8, x9: [12]=1, [6:5]=01.
  const u16 addw = static_cast<u16>((0x4u << 13) | (1u << 12) | (0x3u << 10) |
                                    (0u << 7) | (0x1u << 5) | (1u << 2) | 0x1);
  EXPECT_EQ(expand_and_decode(addw).mnemonic, Mnemonic::kAddw);
}

TEST(Rvc, JumpAndBranches) {
  // c.j 0 is jal x0, offset; offset bits scrambled — offset=4 sets bit[3]
  // which lives at h[5:3]'s low bit... build offset 4: imm[3:1]=010 -> h[5:3]=010.
  const u16 j = static_cast<u16>((0x5u << 13) | (0x2u << 3) | 0x1);
  const Decoded dj = expand_and_decode(j);
  EXPECT_EQ(dj.mnemonic, Mnemonic::kJal);
  EXPECT_EQ(dj.rd, 0);
  EXPECT_EQ(dj.imm, 4);
  // c.beqz x8, 8: imm[3]=1 -> h[4:3]=01? imm[4:3] at h[11:10], imm[2:1] at
  // h[4:3]; 8 = bit3 -> h[11:10]=01.
  const u16 beqz = static_cast<u16>((0x6u << 13) | (0x1u << 10) | (0u << 7) | 0x1);
  const Decoded db = expand_and_decode(beqz);
  EXPECT_EQ(db.mnemonic, Mnemonic::kBeq);
  EXPECT_EQ(db.rs1, 8);
  EXPECT_EQ(db.rs2, 0);
  EXPECT_EQ(db.imm, 8);
}

TEST(Rvc, Quadrant2StackOpsAndJumps) {
  // c.slli x6, 12.
  const u16 slli = static_cast<u16>((0x0u << 13) | (6u << 7) | (12u << 2) | 0x2);
  EXPECT_EQ(expand_and_decode(slli).mnemonic, Mnemonic::kSlli);
  EXPECT_EQ(expand_and_decode(slli).imm, 12);
  // c.ldsp x7, 8(sp): imm[4:3] at h[6:5]: 8 -> h[6:5]=01? imm bit3 -> h bit5.
  const u16 ldsp = static_cast<u16>((0x3u << 13) | (7u << 7) | (1u << 5) | 0x2);
  const Decoded dl = expand_and_decode(ldsp);
  EXPECT_EQ(dl.mnemonic, Mnemonic::kLd);
  EXPECT_EQ(dl.rs1, 2);
  EXPECT_EQ(dl.imm, 8);
  // c.ldsp with rd = 0 reserved.
  EXPECT_FALSE(expand_rvc(static_cast<u16>((0x3u << 13) | (1u << 5) | 0x2)).has_value());
  // c.jr x1 == ret-shaped jalr x0, 0(x1).
  const u16 jr = static_cast<u16>((0x4u << 13) | (1u << 7) | 0x2);
  const Decoded djr = expand_and_decode(jr);
  EXPECT_EQ(djr.mnemonic, Mnemonic::kJalr);
  EXPECT_EQ(djr.cls, InstClass::kRet);
  // c.jalr x5 links into ra.
  const u16 jalr = static_cast<u16>((0x4u << 13) | (1u << 12) | (5u << 7) | 0x2);
  EXPECT_EQ(expand_and_decode(jalr).cls, InstClass::kCall);
  // c.mv x3, x4.
  const u16 mv = static_cast<u16>((0x4u << 13) | (3u << 7) | (4u << 2) | 0x2);
  const Decoded dmv = expand_and_decode(mv);
  EXPECT_EQ(dmv.mnemonic, Mnemonic::kAdd);
  EXPECT_EQ(dmv.rs1, 0);
  EXPECT_EQ(dmv.rs2, 4);
  // c.add x3, x4.
  const u16 add = static_cast<u16>((0x4u << 13) | (1u << 12) | (3u << 7) |
                                   (4u << 2) | 0x2);
  EXPECT_EQ(expand_and_decode(add).rs1, 3);
  // c.ebreak.
  const u16 ebreak = static_cast<u16>((0x4u << 13) | (1u << 12) | 0x2);
  EXPECT_EQ(expand_and_decode(ebreak).mnemonic, Mnemonic::kEbreak);
  // c.sdsp x9, 8(sp): imm[5:3] at h[12:10] -> 8 is bit3 -> h[10]=1.
  const u16 sdsp = static_cast<u16>((0x7u << 13) | (1u << 10) | (9u << 2) | 0x2);
  const Decoded dsd = expand_and_decode(sdsp);
  EXPECT_EQ(dsd.mnemonic, Mnemonic::kSd);
  EXPECT_EQ(dsd.rs2, 9);
  EXPECT_EQ(dsd.imm, 8);
}

TEST(Rvc, FuzzExpansionsAlwaysDecode) {
  // Property: every successful expansion yields a valid 32-bit instruction
  // whose low 2 bits are 11 (uncompressed length prefix).
  int expanded = 0;
  for (u32 half = 1; half < 0x10000; ++half) {
    if (!is_rvc(static_cast<u16>(half))) continue;
    const auto full = expand_rvc(static_cast<u16>(half));
    if (!full) continue;
    ++expanded;
    EXPECT_EQ(*full & 0x3u, 0x3u);
    const Decoded d = decode(*full);
    EXPECT_TRUE(d.valid()) << std::hex << half << " -> " << *full;
  }
  // A healthy fraction of the 16-bit space expands (sanity that the
  // decompressor is not rejecting everything).
  EXPECT_GT(expanded, 20000);
}

}  // namespace
}  // namespace fg::isa
