#include <gtest/gtest.h>

#include "src/kernels/ha.h"
#include "src/kernels/kernel.h"

namespace fg::kernels {
namespace {

core::Packet pkt(u64 pc, u32 inst, u64 addr, u64 data = 0) {
  core::Packet p;
  p.valid = true;
  p.pc = pc;
  p.inst = inst;
  p.addr = addr;
  p.data = data;
  return p;
}

TEST(PmcHa, CountsAndChecksBounds) {
  PmcHa ha(0, 0x1000, 0x2000);
  ha.push_input(pkt(0x1000, isa::make_jal(1, 64), 0x1800));
  ha.push_input(pkt(0x1004, isa::make_jal(1, 64), 0x3000, 42));
  Cycle t = 0;
  while (!ha.quiescent()) ha.tick(t++);
  EXPECT_EQ(ha.event_count(), 2u);
  ASSERT_EQ(ha.detections().size(), 1u);
  EXPECT_EQ(ha.detections()[0].payload, 42u);
  EXPECT_EQ(ha.detections()[0].aux, 0x3000u);
}

TEST(PmcHa, OnePacketPerCycle) {
  PmcHa ha(0, 0x1000, 0x2000);
  for (int i = 0; i < 10; ++i) ha.push_input(pkt(0x1000, isa::make_jal(1, 64), 0x1800));
  Cycle t = 0;
  while (!ha.quiescent()) ha.tick(t++);
  EXPECT_EQ(t, 10u);  // drains exactly one per cycle
  EXPECT_EQ(ha.packets_processed(), 10u);
}

TEST(SsHa, MatchedFlow) {
  ShadowStackHa ha(1);
  ha.push_input(pkt(0x1000, isa::make_jalr(1, 5, 0), 0x4000));
  ha.push_input(pkt(0x1100, isa::make_jal(1, 64), 0x5000));
  ha.push_input(pkt(0x5040, isa::make_jalr(0, 1, 0), 0x1104));
  ha.push_input(pkt(0x4040, isa::make_jalr(0, 1, 0), 0x1004));
  Cycle t = 0;
  while (!ha.quiescent()) ha.tick(t++);
  EXPECT_EQ(ha.detections().size(), 0u);
  EXPECT_EQ(ha.depth(), 0u);
}

TEST(SsHa, MismatchDetected) {
  ShadowStackHa ha(1);
  ha.push_input(pkt(0x1000, isa::make_jalr(1, 5, 0), 0x4000));
  ha.push_input(pkt(0x4040, isa::make_jalr(0, 1, 0), 0xbad4, 7));
  Cycle t = 0;
  while (!ha.quiescent()) ha.tick(t++);
  ASSERT_EQ(ha.detections().size(), 1u);
  EXPECT_EQ(ha.detections()[0].payload, 7u);
}

TEST(SsHa, IgnoresMarkersAndJumps) {
  ShadowStackHa ha(1);
  core::Packet marker;
  marker.valid = true;
  marker.inst = kSsMarkerInst;
  ha.push_input(marker);
  ha.push_input(pkt(0x1000, isa::make_jal(0, 64), 0x2000));  // plain jump
  Cycle t = 0;
  while (!ha.quiescent()) ha.tick(t++);
  EXPECT_EQ(ha.detections().size(), 0u);
  EXPECT_EQ(ha.depth(), 0u);
}

TEST(SsHa, EmptyStackReturnTolerated) {
  ShadowStackHa ha(1);
  ha.push_input(pkt(0x1000, isa::make_jalr(0, 1, 0), 0x2000));
  Cycle t = 0;
  while (!ha.quiescent()) ha.tick(t++);
  EXPECT_EQ(ha.detections().size(), 0u);
}

TEST(Ha, QueueBackpressure) {
  PmcHa ha(0, 0, 0x1000);  // default queue depth 32
  for (int i = 0; i < 32; ++i) ha.push_input(pkt(0, isa::make_jal(1, 64), 0x10));
  EXPECT_TRUE(ha.input_full());
  EXPECT_EQ(ha.input_free(), 0u);
  ha.tick(0);
  EXPECT_FALSE(ha.input_full());
}

}  // namespace
}  // namespace fg::kernels
