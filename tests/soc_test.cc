// Full-system integration tests: BOOM + FireGuard + engines end to end.
#include <gtest/gtest.h>

#include "src/soc/experiment.h"

namespace fg::soc {
namespace {

trace::WorkloadConfig wl(const std::string& name = "ferret", u64 n = 30000) {
  trace::WorkloadConfig c;
  c.profile = trace::profile_by_name(name);
  c.profile.n_funcs = 48;
  c.seed = 33;
  c.n_insts = n;
  c.warmup_insts = 3000;
  return c;
}

TEST(Soc, CommitsEveryInstructionUnderMonitoring) {
  SocConfig sc;
  sc.kernels = {deploy(kernels::KernelKind::kAsan, 2)};
  const RunResult r = run_fireguard(wl(), sc);
  EXPECT_EQ(r.committed, 30000u);
  EXPECT_GT(r.packets, 1000u);
}

TEST(Soc, MonitoringNeverSpeedsUpTheCore) {
  SocConfig sc;
  const trace::WorkloadConfig w = wl();
  const Cycle base = run_baseline_cycles(w, sc);
  for (auto kind : {kernels::KernelKind::kPmc, kernels::KernelKind::kAsan}) {
    SocConfig s2 = sc;
    s2.kernels = {deploy(kind, 2)};
    const RunResult r = run_fireguard(w, s2);
    EXPECT_GE(r.cycles + 5, base) << kernels::kernel_name(kind);
  }
}

TEST(Soc, DeterministicAcrossRuns) {
  SocConfig sc;
  sc.kernels = {deploy(kernels::KernelKind::kUaf, 3)};
  const RunResult a = run_fireguard(wl(), sc);
  const RunResult b = run_fireguard(wl(), sc);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.detections.size(), b.detections.size());
}

TEST(Soc, MultipleKernelsShareTheFrontend) {
  SocConfig sc;
  sc.kernels = {deploy(kernels::KernelKind::kPmc, 2),
                deploy(kernels::KernelKind::kShadowStack, 2),
                deploy(kernels::KernelKind::kAsan, 4)};
  const RunResult r = run_fireguard(wl(), sc);
  EXPECT_EQ(r.committed, 30000u);
  EXPECT_GT(r.packets, 2000u);
}

TEST(Soc, CombinedSlowdownNotMultiplicative) {
  // Figure 7(b): the worst kernel dominates; running more kernels next to it
  // costs little extra.
  const trace::WorkloadConfig w = wl("bodytrack", 40000);
  SocConfig sc;
  const Cycle base = run_baseline_cycles(w, sc);

  SocConfig s_asan = sc;
  s_asan.kernels = {deploy(kernels::KernelKind::kAsan, 4)};
  const double asan = static_cast<double>(run_fireguard(w, s_asan).cycles) /
                      static_cast<double>(base);

  SocConfig s_both = sc;
  s_both.kernels = {deploy(kernels::KernelKind::kAsan, 4),
                    deploy(kernels::KernelKind::kPmc, 2)};
  const double both = static_cast<double>(run_fireguard(w, s_both).cycles) /
                      static_cast<double>(base);
  EXPECT_LT(both, asan * 1.35);
  EXPECT_GE(both, asan * 0.95);
}

TEST(Soc, HaKeepsOverheadNearZero) {
  const trace::WorkloadConfig w = wl("freqmine", 40000);
  SocConfig sc;
  const Cycle base = run_baseline_cycles(w, sc);
  SocConfig s2 = sc;
  s2.kernels = {deploy(kernels::KernelKind::kPmc, 1, kernels::ProgModel::kHybrid,
                       /*use_ha=*/true)};
  const RunResult r = run_fireguard(w, s2);
  const double slow = static_cast<double>(r.cycles) / static_cast<double>(base);
  // ~0% per the paper; the residual ~1% here is PRF read-port preemption by
  // the data-forwarding channel, which no backend accelerator can remove.
  EXPECT_LT(slow, 1.02);
}

TEST(Soc, NarrowFilterThrottlesCommit) {
  // A 1-wide filter caps commit at one instruction per cycle. Use a light
  // kernel on a high-IPC workload so the filter — not the engines — is the
  // binding constraint (Figure 9's mechanism in isolation).
  const trace::WorkloadConfig w = wl("blackscholes", 40000);
  SocConfig wide;
  wide.kernels = {deploy(kernels::KernelKind::kPmc, 4)};
  SocConfig narrow = wide;
  narrow.frontend.filter.width = 1;
  const RunResult r_wide = run_fireguard(w, wide);
  const RunResult r_narrow = run_fireguard(w, narrow);
  EXPECT_GT(r_narrow.cycles, r_wide.cycles);
  // With width 1, IPC cannot exceed 1.
  EXPECT_LE(r_narrow.ipc, 1.001);
}

TEST(Soc, StallFractionsSumBelowOne) {
  SocConfig sc;
  sc.kernels = {deploy(kernels::KernelKind::kAsan, 2)};
  const RunResult r = run_fireguard(wl("x264", 30000), sc);
  double total = 0;
  for (double f : r.stall_fractions) {
    EXPECT_GE(f, 0.0);
    total += f;
  }
  EXPECT_LT(total, 4.0);  // per-lane counters: at most commit_width per cycle
}

TEST(Soc, MoreEnginesNeverSlower) {
  const trace::WorkloadConfig w = wl("streamcluster", 40000);
  SocConfig sc;
  Cycle prev = ~Cycle{0};
  for (u32 n : {2u, 4u, 8u}) {
    SocConfig s2 = sc;
    s2.kernels = {deploy(kernels::KernelKind::kAsan, n)};
    const Cycle c = run_fireguard(w, s2).cycles;
    EXPECT_LE(c, prev + prev / 50) << n << " engines";
    prev = c;
  }
}

TEST(Soc, SoftwareBaselineSlowerThanPlain) {
  const trace::WorkloadConfig w = wl("ferret", 30000);
  SocConfig sc;
  const Cycle base = run_baseline_cycles(w, sc);
  const RunResult sw = run_software(w, baseline::SwScheme::kAsanAarch64, sc);
  EXPECT_GT(sw.cycles, base * 3 / 2);
  EXPECT_GT(sw.expansion, 1.5);
}

TEST(Soc, BaselineCacheMemoizes) {
  BaselineCache cache;
  SocConfig sc;
  const trace::WorkloadConfig w = wl();
  const Cycle a = cache.get(w, sc);
  const Cycle b = cache.get(w, sc);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, run_baseline_cycles(w, sc));
}

TEST(Soc, Table2DefaultsMatchPaper) {
  const SocConfig sc = table2_soc();
  EXPECT_EQ(sc.core.commit_width, 4u);
  EXPECT_EQ(sc.core.rob_entries, 128u);
  EXPECT_EQ(sc.core.iq_entries, 96u);
  EXPECT_EQ(sc.core.ldq_entries, 32u);
  EXPECT_EQ(sc.frontend.filter.width, 4u);
  EXPECT_EQ(sc.frontend.filter.fifo_depth, 16u);
  EXPECT_EQ(sc.frontend.cdc_depth, 8u);
  EXPECT_EQ(sc.frontend.freq_ratio, 2u);  // 3.2 GHz / 1.6 GHz
  EXPECT_EQ(sc.ucore.msgq_depth, 32u);
  EXPECT_EQ(sc.mem.l1d.size_bytes, 32u * 1024);
  EXPECT_EQ(sc.mem.l2.size_bytes, 512u * 1024);
  EXPECT_EQ(sc.mem.llc.size_bytes, 4u * 1024 * 1024);
  EXPECT_DOUBLE_EQ(sc.fast_ghz, 3.2);
}

}  // namespace
}  // namespace fg::soc
