#include <gtest/gtest.h>

#include <vector>

#include "src/boom/core.h"
#include "src/common/rng.h"
#include "src/mem/hierarchy.h"
#include "src/trace/trace.h"

namespace fg::boom {
namespace {

using trace::TraceInst;

/// Replayable vector-backed trace for hand-built pipelines.
class VecSource final : public trace::TraceSource {
 public:
  explicit VecSource(std::vector<TraceInst> v) : v_(std::move(v)) {}
  bool next(TraceInst& out) override {
    if (i_ >= v_.size()) return false;
    out = v_[i_++];
    return true;
  }
  void reset() override { i_ = 0; }

 private:
  std::vector<TraceInst> v_;
  size_t i_ = 0;
};

TraceInst alu(u64 pc, u8 rd, u8 rs1 = kNoReg, u8 rs2 = kNoReg) {
  TraceInst t;
  t.pc = pc;
  t.enc = isa::make_alu_rr(0, rd ? rd : 1, rs1 == kNoReg ? 2 : rs1,
                           rs2 == kNoReg ? 3 : rs2, false);
  t.cls = isa::InstClass::kIntAlu;
  t.rd = rd;
  t.rs1 = rs1;
  t.rs2 = rs2;
  return t;
}

TraceInst load(u64 pc, u8 rd, u64 addr) {
  TraceInst t;
  t.pc = pc;
  t.enc = isa::make_load(0x3, rd, 2, 0);
  t.cls = isa::InstClass::kLoad;
  t.rd = rd;
  t.mem_size = 8;
  t.mem_addr = addr;
  return t;
}

std::vector<TraceInst> independent_alus(int n) {
  std::vector<TraceInst> v;
  for (int i = 0; i < n; ++i) {
    // rd rotates; sources are never recent destinations -> fully parallel.
    // PCs loop over a 1KB region (a hot loop body) so the i-cache warms.
    v.push_back(alu(0x1000 + 4 * static_cast<u64>(i % 240),
                    static_cast<u8>(20 + i % 4), 1, 1));
  }
  return v;
}

Cycle run(std::vector<TraceInst> insts, CommitSink* sink = nullptr,
          CoreConfig cfg = {}) {
  VecSource src(std::move(insts));
  mem::MemHierarchy mem;
  // Warm code and data into the L2/LLC: these microbenchmarks measure
  // pipeline behaviour, not compulsory-miss transients. Data first, code
  // last (warming is an LRU fill; later regions must not evict the code).
  mem.warm_region(0x100000, 0x100000 + (2u << 20));
  mem.warm_region(0x1000, 0x1000 + (64u << 10));
  mem.reset_stats();
  BoomCore core(cfg, mem, src);
  core.run_to_end(sink, 10'000'000);
  return core.now();
}

TEST(BoomCore, IndependentAlusNearIssueWidth) {
  // 2 integer ALUs bound independent ALU throughput.
  const Cycle c = run(independent_alus(4000));
  const double ipc = 4000.0 / static_cast<double>(c);
  EXPECT_GT(ipc, 1.6);
  EXPECT_LE(ipc, 2.05);
}

TEST(BoomCore, SerialChainLimitsIpc) {
  std::vector<TraceInst> v;
  for (int i = 0; i < 2000; ++i) v.push_back(alu(0x1000 + 4 * i, 5, 5, 5));
  const Cycle c = run(v);
  const double ipc = 2000.0 / static_cast<double>(c);
  EXPECT_LT(ipc, 1.1);  // one-per-cycle dependency chain
}

TEST(BoomCore, LoadLatencyStallsDependents) {
  // load -> dependent ALU chain vs independent ALUs: dependent is slower.
  std::vector<TraceInst> dep, indep;
  for (int i = 0; i < 500; ++i) {
    dep.push_back(load(0x1000 + 8 * i, 6, 0x100000 + 4096ull * i));  // miss-y
    dep.push_back(alu(0x1004 + 8 * i, 7, 6, 6));
    indep.push_back(load(0x1000 + 8 * i, 6, 0x100000 + 4096ull * i));
    indep.push_back(alu(0x1004 + 8 * i, 7, 1, 1));
  }
  EXPECT_GT(run(dep), run(indep));
}

TEST(BoomCore, CommitsEverythingExactlyOnce) {
  class CountSink final : public CommitSink {
   public:
    bool can_commit(u32, const TraceInst&) override { return true; }
    void on_commit(u32, const TraceInst& ti, Cycle) override {
      ++count;
      last_pc = ti.pc;
    }
    u32 prf_ports_preempted() override { return 0; }
    u64 count = 0;
    u64 last_pc = 0;
  } sink;
  run(independent_alus(777), &sink);
  EXPECT_EQ(sink.count, 777u);
  EXPECT_EQ(sink.last_pc, 0x1000 + 4 * (776u % 240));
}

TEST(BoomCore, CommitOrderIsProgramOrder) {
  // Tag each instruction with its program-order index via wb_value and
  // check the sink sees them strictly in order.
  std::vector<TraceInst> v = independent_alus(500);
  for (size_t i = 0; i < v.size(); ++i) v[i].wb_value = i;
  class OrderSink final : public CommitSink {
   public:
    bool can_commit(u32, const TraceInst&) override { return true; }
    void on_commit(u32, const TraceInst& ti, Cycle) override {
      EXPECT_EQ(ti.wb_value, next);
      ++next;
    }
    u32 prf_ports_preempted() override { return 0; }
    u64 next = 0;
  } sink;
  run(std::move(v), &sink);
  EXPECT_EQ(sink.next, 500u);
}

TEST(BoomCore, SinkRefusalStallsCore) {
  // A sink that refuses every other cycle halves commit bandwidth.
  class Throttle final : public CommitSink {
   public:
    bool can_commit(u32 lane, const TraceInst&) override {
      return lane == 0;  // one commit per cycle max
    }
    void on_commit(u32, const TraceInst&, Cycle) override {}
    u32 prf_ports_preempted() override { return 0; }
  } throttle;
  const Cycle free_run = run(independent_alus(2000));
  const Cycle throttled = run(independent_alus(2000), &throttle);
  EXPECT_GT(throttled, free_run + free_run / 2);
}

TEST(BoomCore, PrfPreemptionDelaysIssue) {
  class Preempt final : public CommitSink {
   public:
    bool can_commit(u32, const TraceInst&) override { return true; }
    void on_commit(u32, const TraceInst&, Cycle) override {}
    u32 prf_ports_preempted() override { return 2; }
  } preempt;
  const Cycle base = run(independent_alus(2000));
  const Cycle contended = run(independent_alus(2000), &preempt);
  EXPECT_GT(contended, base);
}

TEST(BoomCore, MispredictsCostCycles) {
  // Conditional branches with random outcomes vs fixed outcomes.
  auto make = [](bool random) {
    std::vector<TraceInst> v;
    Rng rng(5);
    for (int i = 0; i < 1500; ++i) {
      TraceInst t;
      t.pc = 0x1000;  // one static branch
      t.enc = isa::make_branch(0, 23, 0, 16);
      t.cls = isa::InstClass::kBranch;
      t.rs1 = 23;
      t.taken = random ? rng.chance(0.5) : true;
      t.target = 0x1010;
      v.push_back(t);
      for (int k = 0; k < 3; ++k) {
        v.push_back(TraceInst{});
        v.back() = t;
        v.back().cls = isa::InstClass::kIntAlu;
        v.back().enc = isa::make_alu_ri(0, 20, 1, 1);
        v.back().pc = 0x1010 + 4u * k;
        v.back().rd = 20;
        v.back().taken = false;
      }
    }
    return v;
  };
  EXPECT_GT(run(make(true)), run(make(false)) * 3 / 2);
}

TEST(BoomCore, WarmupMarkRecordsCycle) {
  VecSource src(independent_alus(1000));
  mem::MemHierarchy mem;
  BoomCore core(CoreConfig{}, mem, src);
  core.set_warmup_mark(500);
  core.run_to_end(nullptr, 1'000'000);
  EXPECT_GT(core.warmup_cycle(), 0u);
  EXPECT_LT(core.warmup_cycle(), core.now());
  EXPECT_EQ(core.measured_cycles(), core.now() - core.warmup_cycle());
}

TEST(BoomCore, DoneAfterDrain) {
  VecSource src(independent_alus(10));
  mem::MemHierarchy mem;
  BoomCore core(CoreConfig{}, mem, src);
  EXPECT_FALSE(core.done());
  core.run_to_end(nullptr, 100000);
  EXPECT_TRUE(core.done());
  EXPECT_EQ(core.stats().committed, 10u);
}

class CommitWidths : public ::testing::TestWithParam<u32> {};

TEST_P(CommitWidths, ThroughputScalesWithWidth) {
  CoreConfig cfg;
  cfg.fetch_width = GetParam();
  cfg.commit_width = GetParam();
  cfg.n_int_alu = GetParam();
  const Cycle c = run(independent_alus(3000), nullptr, cfg);
  const double ipc = 3000.0 / static_cast<double>(c);
  EXPECT_GT(ipc, 0.72 * GetParam());
  EXPECT_LE(ipc, 1.02 * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Widths, CommitWidths, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace fg::boom
