// The serve daemon's acceptance contract, end to end against real forked
// daemon processes:
//
//  * Two concurrent clients submitting overlapping sweep grids get
//    bit-identical outcomes for the shared points, and every unique point
//    executes EXACTLY once (store dedupe + in-flight dedupe, whichever the
//    race selects).
//  * SIGKILL the daemon mid-campaign, restart it on the same store: the
//    journaled submission is replayed, already-published points are store
//    hits, the queue completes with ZERO re-executions, and the store
//    audits clean.
//  * The campaign layer's failure machinery carries over: injected point
//    crashes retry, hung points are watchdog-killed and retried, permafail
//    points count as failed without wedging the submission.
//  * The stats surface is bookkeeping, not vibes: points_submitted ==
//    store_hits + dedupe_hits + executed + failed + cancelled + in-flight
//    holds at every observation point.
#include <gtest/gtest.h>

#if defined(_WIN32)

TEST(Serve, RequiresPosix) {
  GTEST_SKIP() << "fgsim serve needs Unix sockets and fork";
}

#else

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/api/campaign.h"
#include "src/serve/client.h"
#include "src/serve/daemon.h"
#include "src/store/faultfs.h"
#include "src/store/result_store.h"

namespace fg::serve {
namespace {

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store::fault_clear();
    ::unsetenv("FG_FAULT");
    dir_ = ::testing::TempDir() + "serve_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    std::filesystem::create_directories(dir_, ec);
    ASSERT_FALSE(ec) << ec.message();
  }

  void TearDown() override {
    if (daemon_pid_ > 0) {
      ::kill(daemon_pid_, SIGKILL);
      int st = 0;
      ::waitpid(daemon_pid_, &st, 0);
      daemon_pid_ = -1;
    }
    ::unsetenv("FG_FAULT");
    store::fault_clear();
  }

  std::string store_dir() const { return dir_ + "/store"; }
  std::string socket_path() const { return dir_ + "/fg.sock"; }

  /// Arm FG_FAULT rules in THIS process so a subsequently forked daemon
  /// (and its forked workers) inherit the table. SetUp's fault_clear()
  /// already initialized the injector, so the env-var path would be
  /// ignored without an exec.
  void install_faults(const std::string& spec) {
    store::FaultConfig fc;
    std::string err;
    ASSERT_TRUE(store::parse_fault_spec(spec, &fc, &err)) << err;
    store::fault_configure(fc);
  }

  /// Fork a real daemon process (it inherits FG_FAULT from the test env)
  /// and wait until it accepts connections.
  void spawn_daemon(u32 workers, u32 max_attempts = 3,
                    double point_timeout_s = 0.0) {
    ASSERT_LT(daemon_pid_, 0) << "daemon already running";
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ServeConfig cfg;
      cfg.store_dir = store_dir();
      cfg.socket_path = socket_path();
      cfg.workers = workers;
      cfg.max_attempts = max_attempts;
      cfg.point_timeout_s = point_timeout_s;
      cfg.backoff_ms = 5;
      cfg.quiet = true;
      ServeDaemon daemon(std::move(cfg));
      std::string err;
      if (!daemon.init(&err)) std::_Exit(3);
      daemon.run(&err);
      std::_Exit(0);
    }
    daemon_pid_ = pid;
    for (int i = 0; i < 200; ++i) {
      Client probe;
      std::string err;
      if (probe.connect(socket_path(), &err)) return;
      sleep_ms(25);
    }
    FAIL() << "daemon never started listening on " << socket_path();
  }

  void kill_daemon_hard() {
    ASSERT_GT(daemon_pid_, 0);
    ASSERT_EQ(::kill(daemon_pid_, SIGKILL), 0);
    int st = 0;
    ASSERT_EQ(::waitpid(daemon_pid_, &st, 0), daemon_pid_);
    daemon_pid_ = -1;
  }

  void shutdown_daemon() {
    ASSERT_GT(daemon_pid_, 0);
    Client c;
    std::string err;
    ASSERT_TRUE(c.connect(socket_path(), &err)) << err;
    json::Value resp;
    ASSERT_TRUE(c.call(simple_request("shutdown"), &resp, &err)) << err;
    int st = 0;
    ASSERT_EQ(::waitpid(daemon_pid_, &st, 0), daemon_pid_);
    EXPECT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0);
    daemon_pid_ = -1;
  }

  /// A short sweep over `seeds` (trace_len 3000, no kernel changes —
  /// fast, deterministic points).
  static api::ExperimentSpec sweep_spec(const std::string& name,
                                        std::vector<std::string> seeds) {
    api::ExperimentSpec spec = api::default_spec();
    spec.name = name;
    spec.sweep.clear();
    spec.sweep.push_back({"seed", std::move(seeds)});
    spec.sweep.push_back({"trace_len", {"3000"}});
    return spec;
  }

  json::Value call_ok(Client& c, const std::string& line) {
    json::Value resp;
    std::string err;
    EXPECT_TRUE(c.call(line, &resp, &err)) << err;
    EXPECT_TRUE(resp.get_bool("ok")) << resp.get_str("error");
    return resp;
  }

  json::Value fetch_stats() {
    Client c;
    std::string err;
    EXPECT_TRUE(c.connect(socket_path(), &err)) << err;
    return call_ok(c, simple_request("stats"));
  }

  /// points_submitted == store_hits + dedupe_hits + executed + failed +
  /// cancelled + in-flight: every submitted point is accounted for exactly
  /// once, whatever the interleaving.
  static void expect_stats_consistent(const json::Value& resp) {
    const json::Value* st = resp.get("stats");
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->get_u64("points_submitted"),
              st->get_u64("store_hits") + st->get_u64("dedupe_hits") +
                  st->get_u64("executed") + st->get_u64("failed_points") +
                  st->get_u64("cancelled_points") +
                  st->get_u64("queue_depth") + st->get_u64("running"))
        << json::dump(resp, 2);
  }

  /// Poll `status` for submission `id` until complete (bounded).
  json::Value wait_complete(u64 id, int timeout_ms = 120000) {
    Client c;
    std::string err;
    EXPECT_TRUE(c.connect(socket_path(), &err)) << err;
    for (int waited = 0; waited < timeout_ms; waited += 50) {
      json::Value resp = call_ok(c, status_request(id));
      if (resp.get_bool("complete")) return resp;
      sleep_ms(50);
    }
    ADD_FAILURE() << "submission " << id << " never completed";
    return json::Value();
  }

  static u64 count_store_objects(const std::string& store_dir) {
    u64 n = 0;
    std::error_code ec;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(
             store_dir + "/objects", ec)) {
      if (entry.is_regular_file(ec)) ++n;
    }
    return n;
  }

  std::string dir_;
  pid_t daemon_pid_ = -1;
};

// Two concurrent clients, overlapping grids: every unique point executes
// exactly once, shared points answered to both bit-identically.
TEST_F(ServeTest, ConcurrentOverlappingClientsExecuteEachPointOnce) {
  spawn_daemon(/*workers=*/2);
  // A: seeds 1..6, B: seeds 4..9 — 9 unique points, 3 shared. The SPEC
  // name must match for the shared points to be the same experiment
  // (result_key is the canonical spec); the per-submission label is free.
  const api::ExperimentSpec spec_a =
      sweep_spec("shared-grid", {"1", "2", "3", "4", "5", "6"});
  const api::ExperimentSpec spec_b =
      sweep_spec("shared-grid", {"4", "5", "6", "7", "8", "9"});

  json::Value resp_a, resp_b;
  auto submit = [this](const api::ExperimentSpec& spec, json::Value* out) {
    Client c;
    std::string err;
    ASSERT_TRUE(c.connect(socket_path(), &err)) << err;
    ASSERT_TRUE(c.call(submit_request(spec, /*wait=*/true,
                                      /*want_results=*/true,
                                      /*with_baseline=*/false),
                       out, &err))
        << err;
  };
  std::thread ta([&] { submit(spec_a, &resp_a); });
  std::thread tb([&] { submit(spec_b, &resp_b); });
  ta.join();
  tb.join();

  for (const json::Value* resp : {&resp_a, &resp_b}) {
    ASSERT_TRUE(resp->get_bool("ok")) << resp->get_str("error");
    EXPECT_TRUE(resp->get_bool("complete"));
    EXPECT_EQ(resp->get_u64("points"), 6u);
    EXPECT_EQ(resp->get_u64("done"), 6u);
    EXPECT_EQ(resp->get_u64("failed"), 0u);
    ASSERT_EQ(resp->get("results")->arr.size(), 6u);
  }

  // Shared seeds 4,5,6 are A's results[3..5] and B's results[0..2] — the
  // answers must be the same stored object, bit for bit.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(json::dump(resp_a.get("results")->arr[3 + i], 0),
              json::dump(resp_b.get("results")->arr[i], 0))
        << "shared seed " << 4 + i << " diverged between clients";
  }

  // 12 submitted, 9 unique: exactly 9 executions, and the 3 shared points
  // were answered by dedupe (in-flight) or the store (post-publish race) —
  // never a second simulation.
  json::Value stats = fetch_stats();
  const json::Value* st = stats.get("stats");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->get_u64("points_submitted"), 12u);
  EXPECT_EQ(st->get_u64("executed"), 9u);
  EXPECT_EQ(st->get_u64("store_hits") + st->get_u64("dedupe_hits"), 3u);
  EXPECT_EQ(st->get_u64("failed_points"), 0u);
  EXPECT_EQ(count_store_objects(store_dir()), 9u);
  expect_stats_consistent(stats);
  shutdown_daemon();
}

// SIGKILL the daemon mid-campaign; a restart on the same store replays the
// journaled submission and completes it with zero re-executions.
TEST_F(ServeTest, KillAndRestartResumesQueueWithZeroReexecution) {
  spawn_daemon(/*workers=*/1);
  const api::ExperimentSpec spec = sweep_spec(
      "doomed", {"1", "2", "3", "4", "5", "6", "7", "8", "9", "10"});
  u64 id = 0;
  {
    Client c;
    std::string err;
    ASSERT_TRUE(c.connect(socket_path(), &err)) << err;
    json::Value ack = call_ok(
        c, submit_request(spec, /*wait=*/false, false, false));
    id = ack.get_u64("id");
    ASSERT_GT(id, 0u);
    EXPECT_EQ(ack.get_u64("points"), 10u);
  }
  // Let some (possibly zero, possibly all) points publish, then murder the
  // daemon with no warning.
  sleep_ms(150);
  kill_daemon_hard();
  const u64 published = count_store_objects(store_dir());

  // The journal survived; a fresh daemon resumes into the same queue (and
  // takes over the stale socket file the SIGKILL left behind).
  ASSERT_TRUE(store::file_exists(store_dir() + "/serve/queue/sub-" +
                                 std::string(8 - std::to_string(id).size(),
                                             '0') +
                                 std::to_string(id) + ".json"));
  spawn_daemon(/*workers=*/2);
  json::Value final = wait_complete(id);
  EXPECT_EQ(final.get_u64("points"), 10u);
  EXPECT_EQ(final.get_u64("done"), 10u);
  EXPECT_EQ(final.get_u64("failed"), 0u);
  EXPECT_TRUE(final.get_bool("replayed"));
  EXPECT_EQ(final.get_u64("from_store"), published)
      << "every pre-kill publish must be a store hit on resume";

  json::Value stats = fetch_stats();
  const json::Value* st = stats.get("stats");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->get_u64("submissions_replayed"), 1u);
  EXPECT_EQ(st->get_u64("executed"), 10u - published)
      << "zero re-executions: resumed daemon runs only unpublished points";
  expect_stats_consistent(stats);

  // The store audits clean and the journal entry is gone.
  shutdown_daemon();
  store::ResultStore store;
  std::string err;
  ASSERT_TRUE(store.open(store_dir(), &err)) << err;
  store::ResultStore::AuditReport report;
  ASSERT_TRUE(store.audit(&report, &err)) << err;
  EXPECT_EQ(report.entries, 10u);
  EXPECT_EQ(report.ok, 10u);
  EXPECT_EQ(report.quarantined, 0u);
  u64 journal_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           store_dir() + "/serve/queue")) {
    (void)entry;
    ++journal_files;
  }
  EXPECT_EQ(journal_files, 0u) << "completed submissions leave no journal";
}

// The campaign layer's retry machinery carries over: a crashed first
// attempt and a hung (watchdog-killed) first attempt both retry and
// succeed; the submission completes clean.
TEST_F(ServeTest, InjectedCrashAndHangRetryToSuccess) {
  // Point 0 crashes on attempt one; point 1 hangs (30 s, far past the
  // 0.5 s watchdog) on attempt one. Retries run clean. Installed
  // programmatically BEFORE the fork so the daemon (and its workers)
  // inherit the armed table — the env var path needs an exec to re-read.
  install_faults("crash@point:0,hang@point:1:30000");
  spawn_daemon(/*workers=*/2, /*max_attempts=*/3, /*point_timeout_s=*/0.5);
  const api::ExperimentSpec spec = sweep_spec("faulty", {"1", "2", "3"});
  Client c;
  std::string err;
  ASSERT_TRUE(c.connect(socket_path(), &err)) << err;
  json::Value resp =
      call_ok(c, submit_request(spec, /*wait=*/true, false, false));
  EXPECT_EQ(resp.get_u64("done"), 3u);
  EXPECT_EQ(resp.get_u64("failed"), 0u);

  json::Value stats = fetch_stats();
  const json::Value* st = stats.get("stats");
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->get_u64("executed"), 3u);
  EXPECT_GE(st->get_u64("retries"), 2u);
  EXPECT_EQ(st->get_u64("timeouts"), 1u)
      << "the hung point was watchdog-killed";
  expect_stats_consistent(stats);
  shutdown_daemon();
}

// A point that fails every attempt counts as failed without wedging the
// submission — the waiter is answered (with a null result) and the daemon
// moves on.
TEST_F(ServeTest, PermafailPointCompletesSubmissionAsFailed) {
  install_faults("fail@point:1x99");
  spawn_daemon(/*workers=*/1, /*max_attempts=*/2);
  const api::ExperimentSpec spec = sweep_spec("permafail", {"1", "2", "3"});
  Client c;
  std::string err;
  ASSERT_TRUE(c.connect(socket_path(), &err)) << err;
  json::Value resp = call_ok(
      c, submit_request(spec, /*wait=*/true, /*want_results=*/true, false));
  EXPECT_TRUE(resp.get_bool("complete"));
  EXPECT_EQ(resp.get_u64("done"), 2u);
  EXPECT_EQ(resp.get_u64("failed"), 1u);
  ASSERT_EQ(resp.get("results")->arr.size(), 3u);
  EXPECT_TRUE(resp.get("results")->arr[0].is_object());
  EXPECT_EQ(resp.get("results")->arr[1].kind, json::Value::Kind::kNull);
  EXPECT_TRUE(resp.get("results")->arr[2].is_object());

  json::Value stats = fetch_stats();
  EXPECT_EQ(stats.get("stats")->get_u64("failed_points"), 1u);
  expect_stats_consistent(stats);
  shutdown_daemon();
}

// Cancel drops pending points (running ones finish and publish), the
// bookkeeping identity holds throughout, and drain leaves a quiet daemon.
TEST_F(ServeTest, CancelAndDrainKeepStatsConsistent) {
  spawn_daemon(/*workers=*/1);
  const api::ExperimentSpec spec = sweep_spec(
      "cancelme", {"1", "2", "3", "4", "5", "6", "7", "8"});
  Client c;
  std::string err;
  ASSERT_TRUE(c.connect(socket_path(), &err)) << err;
  json::Value ack =
      call_ok(c, submit_request(spec, /*wait=*/false, false, false));
  const u64 id = ack.get_u64("id");
  json::Value cancel = call_ok(c, cancel_request(id));
  // Cancelling again is idempotent (0 more points dropped), and cancelling
  // a bogus id is a structured error.
  json::Value again = call_ok(c, cancel_request(id));
  EXPECT_EQ(again.get_u64("cancelled_pending"), 0u);
  json::Value bogus;
  ASSERT_TRUE(c.call(cancel_request(999), &bogus, &err)) << err;
  EXPECT_FALSE(bogus.get_bool("ok"));

  json::Value stats = fetch_stats();
  expect_stats_consistent(stats);
  EXPECT_EQ(stats.get("stats")->get_u64("submissions_cancelled"), 1u);
  EXPECT_GT(cancel.get_u64("cancelled_pending"), 0u);

  // Drain: the in-flight point (if any) finishes, then the daemon reports
  // an empty backlog and refuses new work.
  json::Value drained = call_ok(c, simple_request("drain"));
  EXPECT_TRUE(drained.get_bool("drained"));
  json::Value refused;
  ASSERT_TRUE(c.call(submit_request(spec, false, false, false), &refused,
                     &err))
      << err;
  EXPECT_FALSE(refused.get_bool("ok"));
  json::Value after = fetch_stats();
  expect_stats_consistent(after);
  EXPECT_EQ(after.get("stats")->get_u64("queue_depth"), 0u);
  EXPECT_EQ(after.get("stats")->get_u64("running"), 0u);
  shutdown_daemon();
}

}  // namespace
}  // namespace fg::serve

#endif  // !_WIN32
