// Serialization exactness over the whole scenario space: every golden
// corpus scenario and 64 fuzz seeds must satisfy
//
//   spec → JSON → spec → simulate  ==  simulate(spec)   (bit-identical)
//
// This is the contract that makes the golden corpus, the fuzz artifacts,
// and user spec files trustworthy: nothing a scenario can randomize is
// outside the serializer's reach.
#include <gtest/gtest.h>

#include "src/common/simctl.h"
#include "src/testing/golden.h"
#include "src/testing/scenario.h"
#include "src/testing/snapshot.h"

namespace fg::fuzz {
namespace {

struct ModeGuard {
  bool entry = cycle_exact();
  ~ModeGuard() { set_cycle_exact(entry); }
};

/// Round-trip one scenario's spec through JSON and require the reparsed
/// spec to (a) reserialize canonically identical and (b) simulate to a
/// bit-identical snapshot.
void check_roundtrip(const Scenario& s) {
  const std::string exported = api::spec_to_json(s.spec);
  api::ExperimentSpec reparsed;
  std::string err;
  ASSERT_TRUE(api::spec_from_json(exported, &reparsed, &err))
      << s.name << ": " << err << "\n" << exported;
  ASSERT_EQ(api::spec_canonical(reparsed), api::spec_canonical(s.spec))
      << s.name << ": canonical form drifted across the round-trip";

  const StatSnapshot direct = api::run_spec(s.spec).snapshot;
  const StatSnapshot via_json = api::run_spec(reparsed).snapshot;
  EXPECT_TRUE(snapshots_equal(direct, via_json))
      << s.name << ":\n"
      << snapshot_diff(direct, via_json, "direct", "via_json");
}

TEST(SpecRoundTrip, EveryGoldenScenarioIsBitIdenticalThroughJson) {
  ModeGuard guard;
  set_cycle_exact(false);
  for (const GoldenEntry& e : golden_entries()) {
    check_roundtrip(scenario_from_seed(
        e.seed, e.stall ? golden_stall_envelope() : golden_envelope()));
  }
}

TEST(SpecRoundTrip, SixtyFourFuzzSeedsAreBitIdenticalThroughJson) {
  ModeGuard guard;
  set_cycle_exact(false);
  ScenarioEnvelope env;
  env.min_insts = 1'000;
  env.max_insts = 3'000;  // 128 short runs: exactness, not endurance
  for (u64 seed = 1; seed <= 64; ++seed) {
    check_roundtrip(scenario_from_seed(seed, env));
  }
}

/// The golden corpus carries the spec inside each file; a fresh export of
/// the same seed must parse back to the identical scenario spec.
TEST(SpecRoundTrip, ScenarioJsonEmbedsAReparsableSpec) {
  const Scenario s = scenario_from_seed(0x1234, golden_envelope());
  const std::string text = scenario_json(s);
  json::Value root;
  ASSERT_TRUE(json::parse(text, &root)) << text;
  EXPECT_EQ(root.get_str("name"), s.name);
  const json::Value* spec_v = root.get("spec");
  ASSERT_NE(spec_v, nullptr);
  api::ExperimentSpec reparsed;
  std::string err;
  ASSERT_TRUE(api::spec_from_json(json::dump(*spec_v), &reparsed, &err))
      << err;
  EXPECT_EQ(api::spec_canonical(reparsed), api::spec_canonical(s.spec));
}

}  // namespace
}  // namespace fg::fuzz
