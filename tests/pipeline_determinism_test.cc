// The deterministic two-domain pipeline's bit-identity proof, as a test
// layer: every golden scenario and the full workload × kernel grid must
// produce StatSnapshots bit-identical to the FG_CYCLE_EXACT reference when
// run under the FG_PIPELINE two-thread scheduler, repeated pipelined runs
// of the same seed must be byte-stable (no schedule-dependent state leaks
// through the epoch barriers), and SimSession results must stay invariant
// in the worker count when the pipelined scheduler is forced per-session.
//
// The grid trace length is overridable via FG_PIPE_GRID_TRACE (default
// 8000) so slow sanitizer CI jobs (TSan ~10× slowdown) can shrink the grid
// without forking the suite.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/api/session.h"
#include "src/common/env.h"
#include "src/common/simctl.h"
#include "src/soc/experiment.h"
#include "src/soc/figures.h"
#include "src/soc/soc.h"
#include "src/testing/golden.h"
#include "src/testing/scenario.h"
#include "src/testing/snapshot.h"
#include "src/trace/workload.h"

namespace fg {
namespace {

/// Restores the scheduler mode even if an assertion fails mid-test.
struct ExactMode {
  explicit ExactMode(bool exact) { set_cycle_exact(exact); }
  ~ExactMode() { set_cycle_exact(false); }
};

/// Restores the pipeline flag even if an assertion fails mid-test.
struct PipelineMode {
  explicit PipelineMode(bool on) { set_pipeline(on); }
  ~PipelineMode() { set_pipeline(false); }
};

fuzz::StatSnapshot run_exact(const fuzz::Scenario& s) {
  ExactMode mode(true);
  return fuzz::run_scenario_snapshot(s);
}

fuzz::StatSnapshot run_piped(const fuzz::Scenario& s) {
  ExactMode mode(false);
  PipelineMode pipe(true);
  return fuzz::run_scenario_snapshot(s);
}

// --- Golden corpus --------------------------------------------------------
//
// All 26 checked-in golden scenarios (g01–g26, including the g21+ memory/
// stall-bound slice where the skip horizons do the most work) re-simulated
// under the pipelined scheduler against the exact reference. This is the
// same corpus `fgfuzz --check-golden` freezes; a pipeline bug that survives
// it would have to be invisible to every frozen semantic field.
TEST(PipelineDeterminism, GoldenCorpusPipelinedMatchesExact) {
  for (const fuzz::GoldenEntry& e : fuzz::golden_entries()) {
    const fuzz::Scenario s = fuzz::scenario_from_seed(
        e.seed,
        e.stall ? fuzz::golden_stall_envelope() : fuzz::golden_envelope());
    const fuzz::StatSnapshot exact = run_exact(s);
    const fuzz::StatSnapshot piped = run_piped(s);
    EXPECT_TRUE(fuzz::snapshots_equal(exact, piped))
        << e.name << " " << fuzz::scenario_summary(s) << "\n"
        << fuzz::snapshot_diff(exact, piped, "exact", "pipelined");
  }
}

// --- Paper workload × kernel grid -----------------------------------------

void expect_identical(const soc::RunResult& exact, const soc::RunResult& piped,
                      const std::string& label) {
  EXPECT_EQ(exact.cycles, piped.cycles) << label;
  EXPECT_EQ(exact.committed, piped.committed) << label;
  EXPECT_EQ(exact.packets, piped.packets) << label;
  EXPECT_EQ(exact.spurious, piped.spurious) << label;
  for (size_t i = 0; i < exact.stall_fractions.size(); ++i) {
    EXPECT_EQ(exact.stall_fractions[i], piped.stall_fractions[i])
        << label << " stall cause " << i;
  }
  ASSERT_EQ(exact.detections.size(), piped.detections.size()) << label;
  for (size_t i = 0; i < exact.detections.size(); ++i) {
    const soc::DetectionRecord& a = exact.detections[i];
    const soc::DetectionRecord& b = piped.detections[i];
    EXPECT_EQ(a.attack_id, b.attack_id) << label;
    EXPECT_EQ(a.engine, b.engine) << label;
    EXPECT_EQ(a.commit_fast, b.commit_fast) << label;
    EXPECT_EQ(a.detect_fast, b.detect_fast) << label;
  }
  // The pipelined fast thread steps or skips exactly the reference cycles.
  EXPECT_EQ(piped.sched.cycles_stepped + piped.sched.cycles_skipped,
            exact.sched.cycles_stepped)
      << label;
}

std::vector<std::pair<trace::AttackKind, u32>> attack_plan() {
  return {{trace::AttackKind::kPcHijack, 3},
          {trace::AttackKind::kRetCorrupt, 3},
          {trace::AttackKind::kHeapOob, 3},
          {trace::AttackKind::kUseAfterFree, 3}};
}

/// Every figures.cc workload under each guardian kernel, with attacks so
/// detections (and the ASan/UAF split-kernel serialization path) are
/// exercised — the pipelined mirror of EventSkip's grid.
TEST(PipelineDeterminism, PaperWorkloadGridPipelinedMatchesExact) {
  const u64 trace_len = env_u32_or("FG_PIPE_GRID_TRACE", 8'000);
  struct Config {
    kernels::KernelKind kind;
    u32 engines;
  };
  const std::vector<Config> grid = {
      {kernels::KernelKind::kPmc, 4},
      {kernels::KernelKind::kShadowStack, 2},
      {kernels::KernelKind::kAsan, 4},
      {kernels::KernelKind::kUaf, 2},
  };
  for (const std::string& w : soc::paper_workloads()) {
    for (const Config& c : grid) {
      soc::SocConfig sc = soc::table2_soc();
      sc.kernels = {soc::deploy(c.kind, c.engines)};
      const trace::WorkloadConfig cfg =
          soc::paper_workload(w, trace_len, attack_plan());
      const std::string label = w + "/" + kernels::kernel_name(c.kind) + "/" +
                                std::to_string(c.engines);
      soc::RunResult exact, piped;
      {
        ExactMode mode(true);
        exact = soc::run_fireguard(cfg, sc);
      }
      {
        ExactMode mode(false);
        PipelineMode pipe(true);
        piped = soc::run_fireguard(cfg, sc);
        EXPECT_GT(piped.sched.pipe_epochs, 0u) << label;
      }
      expect_identical(exact, piped, label);
    }
  }
}

// --- Run-to-run stability -------------------------------------------------
//
// Bit-identity against the reference implies determinism, but only via a
// reference run; this pins the cheaper, sharper property directly: the SAME
// pipelined scenario, re-run many times in one process, never varies. Any
// schedule-dependent result (a racy counter, an epoch boundary that drifted
// with thread timing) shows up here as a one-in-N flake magnet, so the
// whole loop runs under FG_INVARIANT-instrumented components in Debug.
TEST(PipelineDeterminism, RepeatedPipelinedRunsAreByteStable) {
  const fuzz::Scenario s =
      fuzz::scenario_from_seed(0x5eed, fuzz::golden_envelope());
  const fuzz::StatSnapshot first = run_piped(s);
  for (int i = 1; i < 20; ++i) {
    const fuzz::StatSnapshot again = run_piped(s);
    ASSERT_TRUE(fuzz::snapshots_equal(first, again))
        << "run " << i << " diverged\n"
        << fuzz::snapshot_diff(first, again, "run0", "runN");
  }
}

// --- Mode precedence ------------------------------------------------------
//
// FG_CYCLE_EXACT wins over FG_PIPELINE: a user forcing the stepped
// reference must get it even with the pipeline flag set (the differential
// harness depends on this — its exact leg runs with FG_PIPELINE=1 still in
// the environment).
TEST(PipelineDeterminism, CycleExactOverridesPipeline) {
  const fuzz::Scenario s =
      fuzz::scenario_from_seed(0x0042, fuzz::golden_envelope());
  fuzz::StatSnapshot exact_alone, exact_with_pipe;
  {
    ExactMode mode(true);
    exact_alone = fuzz::run_scenario_snapshot(s);
  }
  {
    ExactMode mode(true);
    PipelineMode pipe(true);
    exact_with_pipe = fuzz::run_scenario_snapshot(s);
  }
  // Equality of the sched accounting (excluded from snapshots_equal) is the
  // witness that BOTH runs took the stepped path: a pipelined run reports
  // pipe_epochs > 0, a stepped run exactly 0.
  EXPECT_TRUE(fuzz::snapshots_equal(exact_alone, exact_with_pipe));
  ExactMode mode(true);
  PipelineMode pipe(true);
  const soc::RunResult r =
      soc::run_fireguard(s.wl(), s.sc());
  EXPECT_EQ(r.sched.pipe_epochs, 0u);
}

// --- SimSession jobs invariance -------------------------------------------
//
// SessionConfig::Sched::kPipelined forces the pipelined scheduler for the
// session (restoring the process flag afterwards), and grid results must be
// invariant in the worker count: each worker thread spawns its own slow
// thread, so jobs=4 runs up to 8 threads, all exchanging only through the
// per-Soc epoch channels.
TEST(PipelineDeterminism, SimSessionResultsInvariantInJobsWhenPipelined) {
  api::ExperimentSpec spec = api::default_spec();
  spec.workload.n_insts = 4'000;
  spec.sweep = {{"engines", {"1", "2", "4"}}, {"kernel", {"pmc", "asan"}}};

  auto run_with_jobs = [&](u32 jobs) {
    api::SessionConfig cfg;
    cfg.jobs = jobs;
    cfg.with_baseline = false;
    cfg.sched = api::SessionConfig::Sched::kPipelined;
    api::SimSession session(spec, cfg);
    std::vector<fuzz::StatSnapshot> snaps;
    for (const api::RunOutcome& o : session.run_all()) {
      snaps.push_back(o.snapshot);
    }
    return snaps;
  };

  const bool entry_pipe = pipeline_enabled();
  const std::vector<fuzz::StatSnapshot> serial_jobs = run_with_jobs(1);
  const std::vector<fuzz::StatSnapshot> parallel_jobs = run_with_jobs(4);
  // The session restored the process-wide flag.
  EXPECT_EQ(pipeline_enabled(), entry_pipe);
  ASSERT_EQ(serial_jobs.size(), 6u);
  ASSERT_EQ(serial_jobs.size(), parallel_jobs.size());
  for (size_t i = 0; i < serial_jobs.size(); ++i) {
    EXPECT_TRUE(fuzz::snapshots_equal(serial_jobs[i], parallel_jobs[i]))
        << "grid point " << i << "\n"
        << fuzz::snapshot_diff(serial_jobs[i], parallel_jobs[i], "jobs1",
                               "jobs4");
  }
}

}  // namespace
}  // namespace fg
