#include <gtest/gtest.h>

#include "src/mem/tlb.h"

namespace fg::mem {
namespace {

TEST(Tlb, MissThenHit) {
  Tlb t(TlbConfig{4, 4096, 50}, "t");
  EXPECT_EQ(t.access(0x1000), 50u);
  EXPECT_EQ(t.access(0x1fff), 0u);  // same page
  EXPECT_EQ(t.access(0x2000), 50u);
}

TEST(Tlb, CapacityAndLru) {
  Tlb t(TlbConfig{2, 4096, 50}, "t");
  t.access(0x0000);
  t.access(0x1000);
  t.access(0x0000);        // refresh page 0; page 1 is LRU
  t.access(0x2000);        // evicts page 1
  EXPECT_TRUE(t.would_hit(0x0000));
  EXPECT_FALSE(t.would_hit(0x1000));
  EXPECT_TRUE(t.would_hit(0x2000));
}

TEST(Tlb, StatsAndFlush) {
  Tlb t(TlbConfig{8, 4096, 30}, "t");
  t.access(0x4000);
  t.access(0x4000);
  EXPECT_EQ(t.stats().accesses, 2u);
  EXPECT_EQ(t.stats().misses, 1u);
  t.flush();
  EXPECT_FALSE(t.would_hit(0x4000));
  t.reset_stats();
  EXPECT_EQ(t.stats().accesses, 0u);
}

class TlbEntries : public ::testing::TestWithParam<u32> {};

TEST_P(TlbEntries, HoldsExactlyCapacityPages) {
  const u32 n = GetParam();
  Tlb t(TlbConfig{n, 4096, 40}, "t");
  for (u32 i = 0; i < n; ++i) t.access(static_cast<u64>(i) * 4096);
  u32 resident = 0;
  for (u32 i = 0; i < n; ++i) resident += t.would_hit(static_cast<u64>(i) * 4096);
  EXPECT_EQ(resident, n);
  t.access(static_cast<u64>(n) * 4096);
  resident = 0;
  for (u32 i = 0; i <= n; ++i) resident += t.would_hit(static_cast<u64>(i) * 4096);
  EXPECT_EQ(resident, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TlbEntries, ::testing::Values(1, 4, 16, 32));

}  // namespace
}  // namespace fg::mem
