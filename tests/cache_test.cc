#include <gtest/gtest.h>

#include "src/mem/cache.h"
#include "src/mem/hierarchy.h"

namespace fg::mem {
namespace {

CacheConfig tiny() { return CacheConfig{1024, 2, 64, 2, 2}; }  // 8 sets

TEST(Cache, FirstAccessMissesThenHits) {
  Cache c(tiny(), "t");
  const auto r1 = c.access(0x1000, 0, 10);
  EXPECT_FALSE(r1.hit);
  EXPECT_EQ(r1.latency, 12u);  // hit latency + miss fill
  const auto r2 = c.access(0x1000, 20, 10);
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(r2.latency, 2u);
}

TEST(Cache, SameLineHits) {
  Cache c(tiny(), "t");
  c.access(0x1000, 0, 10);
  EXPECT_TRUE(c.access(0x103f, 20, 10).hit);   // same 64B line
  EXPECT_FALSE(c.access(0x1040, 30, 10).hit);  // next line
}

TEST(Cache, LruEvictsOldest) {
  Cache c(tiny(), "t");  // 2-way, 8 sets, set stride = 64*8 = 512
  const u64 a = 0x0, b = 0x200, d = 0x400;  // all map to set 0
  c.access(a, 0, 10);
  c.access(b, 1, 10);
  c.access(a, 2, 10);      // refresh a; b is now LRU
  c.access(d, 3, 10);      // evicts b
  EXPECT_TRUE(c.would_hit(a));
  EXPECT_FALSE(c.would_hit(b));
  EXPECT_TRUE(c.would_hit(d));
}

TEST(Cache, MshrSaturationDelays) {
  CacheConfig cfg = tiny();
  cfg.mshrs = 2;
  Cache c(cfg, "t");
  c.access(0x0000, 0, 100);   // miss, completes ~102
  c.access(0x1000, 0, 100);   // miss, completes ~102
  const auto r = c.access(0x2000, 0, 100);  // both MSHRs busy
  EXPECT_FALSE(r.hit);
  EXPECT_GT(r.latency, 102u);  // waited for an MSHR
  EXPECT_EQ(c.stats().mshr_stalls, 1u);
}

TEST(Cache, WarmLineInstallsWithoutStats) {
  Cache c(tiny(), "t");
  c.warm_line(0x3000);
  EXPECT_EQ(c.stats().accesses, 0u);
  EXPECT_TRUE(c.would_hit(0x3000));
  EXPECT_TRUE(c.access(0x3000, 0, 10).hit);
}

TEST(Cache, FlushInvalidates) {
  Cache c(tiny(), "t");
  c.access(0x1000, 0, 10);
  c.flush();
  EXPECT_FALSE(c.would_hit(0x1000));
}

TEST(Cache, StatsAccumulate) {
  Cache c(tiny(), "t");
  c.access(0x1000, 0, 10);
  c.access(0x1000, 1, 10);
  c.access(0x2000, 2, 10);
  EXPECT_EQ(c.stats().accesses, 3u);
  EXPECT_EQ(c.stats().misses, 2u);
  EXPECT_NEAR(c.stats().miss_rate(), 2.0 / 3.0, 1e-12);
  c.reset_stats();
  EXPECT_EQ(c.stats().accesses, 0u);
}

class CacheWays : public ::testing::TestWithParam<u32> {};

TEST_P(CacheWays, AssociativityHoldsWorkingSet) {
  const u32 ways = GetParam();
  Cache c(CacheConfig{64 * 8 * ways, ways, 64, 1, 4}, "t");  // 8 sets
  // `ways` lines mapping to set 0 must all be resident.
  for (u32 i = 0; i < ways; ++i) c.access(i * 64 * 8, i, 10);
  for (u32 i = 0; i < ways; ++i) {
    EXPECT_TRUE(c.would_hit(i * 64 * 8)) << "way " << i;
  }
  // One more conflicting line evicts exactly one.
  c.access(ways * 64ull * 8, ways, 10);
  u32 resident = 0;
  for (u32 i = 0; i <= ways; ++i) resident += c.would_hit(i * 64ull * 8);
  EXPECT_EQ(resident, ways);
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheWays, ::testing::Values(1, 2, 4, 8));

TEST(Hierarchy, MissCostDecreasesWithLocality) {
  MemHierarchy mem;
  const u32 cold = mem.access_data(0x5000, false, 0);
  const u32 warm = mem.access_data(0x5000, false, 1000);
  EXPECT_GT(cold, warm);
  EXPECT_LE(warm, 4u);  // L1 hit (+TLB hit)
}

TEST(Hierarchy, WarmRegionAvoidsDramLatency) {
  MemHierarchy a, b;
  b.warm_region(0x10000, 0x10000 + 64 * 1024);
  b.reset_stats();
  // First touch in `a` goes to DRAM; in `b` it stops at the L2.
  const u32 cold = a.access_data(0x10040, false, 0);
  const u32 warmed = b.access_data(0x10040, false, 0);
  EXPECT_GT(cold, warmed + 50);
}

TEST(Hierarchy, InstAccessesUseL1i) {
  MemHierarchy mem;
  mem.access_inst(0x8000, 0);
  EXPECT_EQ(mem.l1i().stats().accesses, 1u);
  EXPECT_EQ(mem.l1d().stats().accesses, 0u);
}

}  // namespace
}  // namespace fg::mem
