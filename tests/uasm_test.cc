// Tests for the textual µcore assembler: syntax coverage, error reporting,
// and execution of an assembled kernel on the µcore model.
#include "src/ucore/uasm.h"

#include <gtest/gtest.h>

#include "src/core/packet.h"
#include "src/ucore/ucore.h"
#include "src/ucore/umem.h"

namespace fg::ucore {
namespace {

TEST(Uasm, EmptyAndCommentOnlySourcesAssemble) {
  EXPECT_TRUE(assemble("").ok);
  EXPECT_TRUE(assemble("; nothing\n# also nothing\n\n").ok);
  EXPECT_EQ(assemble("; c\n").program.code.size(), 0u);
}

TEST(Uasm, AluAndMemoryForms) {
  const AsmResult r = assemble(R"(
    li   r1, 42
    li   r2, -7
    addi r3, r1, 0x10
    add  r4, r1, r2
    sub  r5, r1, r2
    and  r6, r1, r2
    slli r7, r1, 3
    sd   r1, r0, 0x100
    ld   r8, r0, 0x100
    halt
  )");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.program.code.size(), 10u);
  EXPECT_EQ(r.program.code[0].op, UOp::kLi);
  EXPECT_EQ(r.program.code[0].imm, 42);
  EXPECT_EQ(r.program.code[1].imm, -7);
  EXPECT_EQ(r.program.code[2].imm, 0x10);
  EXPECT_EQ(r.program.code.back().op, UOp::kHalt);
}

TEST(Uasm, LabelsForwardAndBackward) {
  const AsmResult r = assemble(R"(
    top:
      beqz r1, done
      addi r1, r1, -1
      j top
    done:
      halt
  )");
  ASSERT_TRUE(r.ok) << r.error;
  // beqz (index 0) targets `done` (index 3); j targets `top` (index 0).
  EXPECT_EQ(r.program.code[0].imm, 3);
  EXPECT_EQ(r.program.code[2].imm, 0);
}

TEST(Uasm, LabelOnSameLineAsInstruction) {
  const AsmResult r = assemble("start: li r1, 1\n j start\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.program.code[1].imm, 0);
}

TEST(Uasm, SwitchBuildsJumpTable) {
  const AsmResult r = assemble(R"(
    switch r1, [a, b, c]
    a: li r2, 1
       halt
    b: li r2, 2
       halt
    c: li r2, 3
       halt
  )");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.program.jump_tables.size(), 1u);
  EXPECT_EQ(r.program.jump_tables[0], (std::vector<u32>{1, 3, 5}));
}

TEST(Uasm, QueueInstructionsAndDetect) {
  const AsmResult r = assemble(R"(
    loop:
      qcount r1, 0
      beqz   r1, loop
      qpop   r2, 64
      qtop   r3, 0
      qrecent r4, 128
      qpush  r2
      nocrecv r5
      detect r2, r3
      j loop
  )");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.program.code[2].op, UOp::kQPop);
  EXPECT_EQ(r.program.code[2].imm, 64);
  EXPECT_EQ(r.program.code[7].op, UOp::kDetect);
}

TEST(Uasm, XRegisterAliasAccepted) {
  const AsmResult r = assemble("li x5, 9\n add x6, x5, x0\n halt\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.program.code[0].rd, 5);
}

TEST(Uasm, ErrorsCarryLineNumbers) {
  const AsmResult bad_mn = assemble("li r1, 1\nfrobnicate r1\n");
  EXPECT_FALSE(bad_mn.ok);
  EXPECT_NE(bad_mn.error.find("line 2"), std::string::npos);
  EXPECT_NE(bad_mn.error.find("frobnicate"), std::string::npos);

  EXPECT_FALSE(assemble("li r32, 1\n").ok);     // bad register
  EXPECT_FALSE(assemble("li r1\n").ok);         // missing operand
  EXPECT_FALSE(assemble("add r1, r2\n").ok);    // operand count
  EXPECT_FALSE(assemble("j nowhere\n").ok);     // unbound label
  EXPECT_FALSE(assemble("x: halt\nx: halt\n").ok);  // label rebound
  EXPECT_FALSE(assemble("switch r1, []\n").ok);  // empty table
  EXPECT_FALSE(assemble("li r1, zz\n").ok);      // bad immediate
}

TEST(Uasm, UnboundLabelReportedEvenWithoutUse2) {
  const AsmResult r = assemble("beqz r1, missing\nhalt\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("missing"), std::string::npos);
}

TEST(Uasm, AssembledKernelRunsOnUCore) {
  // A minimal bounds-check kernel: pop the packet's PC (word 0), flag it if
  // at or above the bound in r4.
  const AsmResult r = assemble(R"(
    ; r4 holds the PC upper bound
    loop:
      qcount r1, 0
      beqz   r1, loop
      qpop   r2, 0
      bltu   r2, r4, loop
      detect r2, r2
      j      loop
  )", "asm_pmc");
  ASSERT_TRUE(r.ok) << r.error;

  USharedMemory mem;
  UCoreConfig cfg;
  UCore uc(cfg, /*engine_id=*/0, &mem, /*shared_l2=*/nullptr);
  uc.load_program(r.program);
  uc.set_reg(4, 0x1000);  // bound

  core::Packet ok_pkt;
  ok_pkt.valid = true;
  ok_pkt.pc = 0x500;
  core::Packet bad_pkt = ok_pkt;
  bad_pkt.pc = 0x2000;
  uc.push_input(ok_pkt);
  uc.push_input(bad_pkt);

  for (Cycle c = 0; c < 200 && uc.detections().empty(); ++c) uc.tick(c);
  ASSERT_EQ(uc.detections().size(), 1u);
  EXPECT_EQ(uc.detections()[0].payload, 0x2000u);
}

}  // namespace
}  // namespace fg::ucore
