#include <gtest/gtest.h>

#include "src/core/frontend.h"

namespace fg::core {
namespace {

class FakeStatus final : public QueueStatus {
 public:
  bool engine_queue_full(u32 e) const override { return full_mask & (1u << e); }
  size_t engine_queue_free(u32 e) const override {
    return engine_queue_full(e) ? 0 : 8;
  }
  u32 full_mask = 0;
};

trace::TraceInst load_inst(u64 seq) {
  trace::TraceInst ti;
  ti.pc = 0x1000 + seq * 4;
  ti.enc = isa::make_load(0x3, 5, 6, 0);
  ti.cls = isa::InstClass::kLoad;
  ti.mem_addr = 0x4000 + seq * 8;
  ti.wb_value = seq;
  return ti;
}

FrontendConfig cfg4() {
  FrontendConfig c;
  c.filter.width = 4;
  c.filter.fifo_depth = 16;
  c.cdc_depth = 8;
  c.freq_ratio = 2;
  return c;
}

TEST(Frontend, CommitToCdcPipeline) {
  Frontend fe(cfg4());
  fe.filter().table().add_interest(isa::kOpLoad, 0x3, 0, kDpLsq | kDpPrf);
  fe.allocator().configure_se(0, 0b0001, SchedPolicy::kFixed, 0);
  FakeStatus st;
  ASSERT_TRUE(fe.can_commit(0, load_inst(0)));
  fe.on_commit(0, load_inst(0), 5);
  fe.tick_fast(5, st, false);
  ASSERT_TRUE(fe.cdc().can_pop(100));
  const Packet p = fe.cdc().pop();
  EXPECT_TRUE(p.valid);
  EXPECT_EQ(p.ae_bitmap, 0b0001);
  EXPECT_EQ(p.commit_cycle, 5u);
}

TEST(Frontend, IrrelevantCommitsProduceNothing) {
  Frontend fe(cfg4());
  fe.allocator().configure_se(0, 0b0001, SchedPolicy::kFixed, 0);
  trace::TraceInst alu;
  alu.enc = isa::make_alu_rr(0, 1, 2, 3, false);
  alu.cls = isa::InstClass::kIntAlu;
  FakeStatus st;
  fe.on_commit(0, alu, 0);
  fe.tick_fast(0, st, false);
  EXPECT_TRUE(fe.cdc().empty());
}

TEST(Frontend, UnroutedValidPacketsDropped) {
  Frontend fe(cfg4());
  fe.filter().table().add_interest(isa::kOpLoad, 0x3, /*gid=*/7, kDpLsq);
  // No SE subscribed to GID 7.
  FakeStatus st;
  fe.on_commit(0, load_inst(0), 0);
  fe.tick_fast(0, st, false);
  EXPECT_TRUE(fe.cdc().empty());
  EXPECT_EQ(fe.stats().dropped_unrouted, 1u);
}

TEST(Frontend, WidthRefusalAttributedToFilter) {
  FrontendConfig c = cfg4();
  c.filter.width = 2;
  Frontend fe(c);
  EXPECT_TRUE(fe.can_commit(0, load_inst(0)));
  EXPECT_FALSE(fe.can_commit(2, load_inst(0)));
  EXPECT_EQ(fe.stats().stall_by_cause[static_cast<size_t>(StallCause::kFilter)], 1u);
}

TEST(Frontend, MapperAttributionWhenFifoFullButCdcFree) {
  FrontendConfig c = cfg4();
  c.filter.width = 1;
  c.filter.fifo_depth = 2;
  Frontend fe(c);
  fe.filter().table().add_interest(isa::kOpLoad, 0x3, 0, kDpLsq);
  fe.allocator().configure_se(0, 1, SchedPolicy::kFixed, 0);
  fe.on_commit(0, load_inst(0), 0);
  fe.on_commit(0, load_inst(1), 0);
  // FIFO (depth 2) now full; CDC empty -> the scalar mapper is the cause.
  EXPECT_FALSE(fe.can_commit(0, load_inst(2)));
  EXPECT_GT(fe.stats().stall_by_cause[static_cast<size_t>(StallCause::kMapper)], 0u);
}

TEST(Frontend, EngineAttributionWhenChainBackedUp) {
  FrontendConfig c = cfg4();
  c.filter.width = 1;
  c.filter.fifo_depth = 2;
  c.cdc_depth = 2;
  Frontend fe(c);
  fe.filter().table().add_interest(isa::kOpLoad, 0x3, 0, kDpLsq);
  fe.allocator().configure_se(0, 1, SchedPolicy::kFixed, 0);
  FakeStatus st;
  st.full_mask = 1;  // engine queue full: multicast blocked
  u64 seq = 0;
  // Fill FIFO and CDC completely while the slow side never drains.
  for (int cyc = 0; cyc < 10; ++cyc) {
    if (fe.can_commit(0, load_inst(seq))) fe.on_commit(0, load_inst(seq++), cyc);
    fe.tick_fast(cyc, st, /*engines_blocked=*/true);
  }
  EXPECT_FALSE(fe.can_commit(0, load_inst(seq)));
  EXPECT_GT(fe.stats().stall_by_cause[static_cast<size_t>(StallCause::kEngines)], 0u);
}

TEST(Frontend, PrfPreemptionsFlowFromSelectedPackets) {
  Frontend fe(cfg4());
  fe.filter().table().add_interest(isa::kOpLoad, 0x3, 0, kDpLsq | kDpPrf);
  fe.on_commit(0, load_inst(0), 0);
  fe.on_commit(1, load_inst(1), 0);
  EXPECT_EQ(fe.prf_ports_preempted(), 2u);
  EXPECT_EQ(fe.prf_ports_preempted(), 0u);
}

TEST(Frontend, ScalarMapperOnePacketPerCycle) {
  Frontend fe(cfg4());
  fe.filter().table().add_interest(isa::kOpLoad, 0x3, 0, kDpLsq);
  fe.allocator().configure_se(0, 1, SchedPolicy::kFixed, 0);
  FakeStatus st;
  for (u64 s = 0; s < 4; ++s) fe.on_commit(static_cast<u32>(s), load_inst(s), 0);
  fe.tick_fast(0, st, false);
  EXPECT_EQ(fe.cdc().size(), 1u);  // one per fast cycle
  fe.tick_fast(1, st, false);
  EXPECT_EQ(fe.cdc().size(), 2u);
}

}  // namespace
}  // namespace fg::core
