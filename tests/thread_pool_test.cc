#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fg {
namespace {

TEST(ThreadPool, ExecutesEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, FuturesReturnValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SingleWorkerRunsSerially) {
  ThreadPool pool(1);
  ASSERT_EQ(pool.size(), 1u);
  // With one worker, tasks run in submission order.
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPool, ZeroClampsToOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DefaultJobsHonorsEnv) {
  ::setenv("FG_JOBS", "3", 1);
  EXPECT_EQ(ThreadPool::default_jobs(), 3u);
  ::setenv("FG_JOBS", "0", 1);  // non-positive falls through to hardware
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
  ::unsetenv("FG_JOBS");
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&count] { ++count; });
    }
    // Futures intentionally dropped: destruction must still run every task.
  }
  EXPECT_EQ(count.load(), 64);
}

}  // namespace
}  // namespace fg
