// Tests for the full RV64 decoder: encoder/decoder round trips, operand
// plumbing, immediate reconstruction, and the mini-filter row auditing API.
#include "src/isa/decode.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/isa/csr.h"

namespace fg::isa {
namespace {

TEST(Decode, LoadVariantsCarryWidthAndSignedness) {
  struct Case {
    u8 f3;
    Mnemonic m;
    u8 bytes;
    bool uns;
  };
  const Case cases[] = {
      {0, Mnemonic::kLb, 1, false},  {1, Mnemonic::kLh, 2, false},
      {2, Mnemonic::kLw, 4, false},  {3, Mnemonic::kLd, 8, false},
      {4, Mnemonic::kLbu, 1, true},  {5, Mnemonic::kLhu, 2, true},
      {6, Mnemonic::kLwu, 4, true},
  };
  for (const auto& c : cases) {
    const Decoded d = decode(make_load(c.f3, 5, 6, -32));
    EXPECT_EQ(d.mnemonic, c.m);
    EXPECT_EQ(d.cls, InstClass::kLoad);
    EXPECT_EQ(d.mem_bytes, c.bytes);
    EXPECT_EQ(d.mem_unsigned, c.uns);
    EXPECT_EQ(d.rd, 5);
    EXPECT_EQ(d.rs1, 6);
    EXPECT_EQ(d.imm, -32);
  }
  EXPECT_FALSE(decode(make_load(7, 1, 1, 0)).valid());
}

TEST(Decode, StoreVariants) {
  const Mnemonic ms[] = {Mnemonic::kSb, Mnemonic::kSh, Mnemonic::kSw,
                         Mnemonic::kSd};
  for (u8 f3 = 0; f3 < 4; ++f3) {
    const Decoded d = decode(make_store(f3, 10, 11, 100));
    EXPECT_EQ(d.mnemonic, ms[f3]);
    EXPECT_EQ(d.cls, InstClass::kStore);
    EXPECT_EQ(d.mem_bytes, 1u << f3);
    EXPECT_EQ(d.rs1, 10);
    EXPECT_EQ(d.rs2, 11);
    EXPECT_EQ(d.imm, 100);
    EXPECT_FALSE(d.writes_rd());
  }
}

TEST(Decode, AluRegisterFormsIncludingAltBit) {
  EXPECT_EQ(decode(make_alu_rr(0, 1, 2, 3, false)).mnemonic, Mnemonic::kAdd);
  EXPECT_EQ(decode(make_alu_rr(0, 1, 2, 3, true)).mnemonic, Mnemonic::kSub);
  EXPECT_EQ(decode(make_alu_rr(5, 1, 2, 3, false)).mnemonic, Mnemonic::kSrl);
  EXPECT_EQ(decode(make_alu_rr(5, 1, 2, 3, true)).mnemonic, Mnemonic::kSra);
  EXPECT_EQ(decode(make_alu_rr(7, 1, 2, 3, false)).mnemonic, Mnemonic::kAnd);
  // alt bit on a funct3 with no alternate form is invalid.
  EXPECT_FALSE(decode(make_alu_rr(4, 1, 2, 3, true)).valid());
}

TEST(Decode, MulDivSplitByClass) {
  EXPECT_EQ(decode(make_mul(0, 1, 2, 3)).cls, InstClass::kIntMul);
  EXPECT_EQ(decode(make_mul(3, 1, 2, 3)).cls, InstClass::kIntMul);
  EXPECT_EQ(decode(make_mul(4, 1, 2, 3)).cls, InstClass::kIntDiv);
  EXPECT_EQ(decode(make_mul(7, 1, 2, 3)).cls, InstClass::kIntDiv);
  EXPECT_EQ(decode(make_mul(4, 1, 2, 3)).mnemonic, Mnemonic::kDiv);
  EXPECT_EQ(decode(make_mul(6, 1, 2, 3)).mnemonic, Mnemonic::kRem);
}

TEST(Decode, ShiftImmediatesExtractShamt) {
  const Decoded slli = decode(enc_i(kOpOpImm, 4, 1, 5, 33));
  EXPECT_EQ(slli.mnemonic, Mnemonic::kSlli);
  EXPECT_EQ(slli.imm_kind, ImmKind::kShamt);
  EXPECT_EQ(slli.imm, 33);
  const Decoded srai = decode(enc_i(kOpOpImm, 4, 5, 5, 0x400 | 17));
  EXPECT_EQ(srai.mnemonic, Mnemonic::kSrai);
  EXPECT_EQ(srai.imm, 17);
}

TEST(Decode, BranchImmediateRoundTrip) {
  for (i32 off : {-4096, -2048, -2, 0, 2, 64, 4094}) {
    const Decoded d = decode(make_branch(1, 8, 9, off));
    ASSERT_TRUE(d.valid()) << off;
    EXPECT_EQ(d.mnemonic, Mnemonic::kBne);
    EXPECT_EQ(d.imm, off);
  }
}

TEST(Decode, JalJalrClassification) {
  EXPECT_EQ(decode(make_jal(1, 2048)).cls, InstClass::kCall);
  EXPECT_EQ(decode(make_jal(0, -16)).cls, InstClass::kJump);
  EXPECT_EQ(decode(make_jalr(1, 5, 0)).cls, InstClass::kCall);
  EXPECT_EQ(decode(make_jalr(0, 1, 0)).cls, InstClass::kRet);
  EXPECT_EQ(decode(make_jalr(0, 5, 0)).cls, InstClass::kJump);
  for (i32 off : {-1048576, -2, 0, 2, 1048574}) {
    EXPECT_EQ(decode(make_jal(0, off)).imm, off) << off;
  }
}

TEST(Decode, Upper20BitImmediates) {
  const Decoded lui = decode(enc_u(kOpLui, 7, 0x12345000));
  EXPECT_EQ(lui.mnemonic, Mnemonic::kLui);
  EXPECT_EQ(lui.imm, 0x12345000);
  const Decoded auipc = decode(enc_u(kOpAuipc, 7, static_cast<i32>(0x80000000)));
  EXPECT_EQ(auipc.mnemonic, Mnemonic::kAuipc);
  EXPECT_EQ(auipc.imm, -static_cast<i64>(0x80000000));  // sign-extended
}

TEST(Decode, CsrFormsRegisterAndImmediate) {
  const Decoded rw = decode(make_csrrw(3, 4, kCsrFgFilterAddr));
  EXPECT_EQ(rw.mnemonic, Mnemonic::kCsrrw);
  EXPECT_EQ(rw.csr, kCsrFgFilterAddr);
  EXPECT_EQ(rw.rs1, 4);
  // csrrsi x5, mstatus, 7
  const u32 enc = (u32{kCsrMstatus} << 20) | (7u << 15) | (6u << 12) |
                  (5u << 7) | kOpSystem;
  const Decoded si = decode(enc);
  EXPECT_EQ(si.mnemonic, Mnemonic::kCsrrsi);
  EXPECT_EQ(si.imm, 7);
  EXPECT_FALSE(si.reads_rs1());
}

TEST(Decode, EcallEbreakExactPatterns) {
  EXPECT_EQ(decode(0x00000073).mnemonic, Mnemonic::kEcall);
  EXPECT_EQ(decode(0x00100073).mnemonic, Mnemonic::kEbreak);
  EXPECT_FALSE(decode(0x00200073).valid());
}

TEST(Decode, AmoOperandsAndWidth) {
  // amoadd.d x3, x4, (x5): funct5=0, f3=3.
  const u32 enc = enc_r(kOpAmo, 3, 3, 5, 4, 0x00);
  const Decoded d = decode(enc);
  EXPECT_EQ(d.mnemonic, Mnemonic::kAmoAddD);
  EXPECT_TRUE(d.is_amo);
  EXPECT_EQ(d.mem_bytes, 8);
  // lr.w reads no rs2 and is load-class.
  const u32 lr = enc_r(kOpAmo, 3, 2, 5, 0, 0x02 << 2);
  const Decoded dl = decode(lr);
  EXPECT_EQ(dl.mnemonic, Mnemonic::kLrW);
  EXPECT_EQ(dl.cls, InstClass::kLoad);
  EXPECT_FALSE(dl.reads_rs2());
}

TEST(Decode, FpComputationalSplitsByFormat) {
  // fadd.s f1, f2, f3 (funct7 = 0b0000000, fmt=00).
  EXPECT_EQ(decode(enc_r(kOpFp, 1, 0, 2, 3, 0x00)).mnemonic, Mnemonic::kFaddS);
  EXPECT_EQ(decode(enc_r(kOpFp, 1, 0, 2, 3, 0x01)).mnemonic, Mnemonic::kFaddD);
  EXPECT_EQ(decode(enc_r(kOpFp, 1, 0, 2, 3, 0x0d)).mnemonic, Mnemonic::kFdivD);
  EXPECT_EQ(decode(enc_r(kOpFp, 1, 0, 2, 3, 0x0d)).cls, InstClass::kFpMulDiv);
  // fsqrt.d requires rs2 == 0.
  EXPECT_EQ(decode(enc_r(kOpFp, 1, 0, 2, 0, 0x2d)).mnemonic, Mnemonic::kFsqrtD);
  EXPECT_FALSE(decode(enc_r(kOpFp, 1, 0, 2, 9, 0x2d)).valid());
}

TEST(Decode, FpComparisonsWriteIntegerRd) {
  // feq.d x5, f1, f2: funct7 = {0x14, fmt=01} = 0x51, f3=2.
  const Decoded d = decode(enc_r(kOpFp, 5, 2, 1, 2, 0x51));
  EXPECT_EQ(d.mnemonic, Mnemonic::kFeqD);
  EXPECT_EQ(d.rd_file, RegFile::kInt);
  EXPECT_EQ(d.rs1_file, RegFile::kFp);
}

TEST(Decode, FpConversionsDirectionality) {
  // fcvt.l.d x1, f2: funct7 = {0x18, 01} = 0x61, rs2 = 2.
  const Decoded fp2int = decode(enc_r(kOpFp, 1, 0, 2, 2, 0x61));
  EXPECT_EQ(fp2int.mnemonic, Mnemonic::kFcvtLD);
  EXPECT_EQ(fp2int.rd_file, RegFile::kInt);
  EXPECT_EQ(fp2int.rs1_file, RegFile::kFp);
  // fcvt.d.lu f1, x2: funct7 = {0x1a, 01} = 0x69, rs2 = 3.
  const Decoded int2fp = decode(enc_r(kOpFp, 1, 0, 2, 3, 0x69));
  EXPECT_EQ(int2fp.mnemonic, Mnemonic::kFcvtDLu);
  EXPECT_EQ(int2fp.rd_file, RegFile::kFp);
  EXPECT_EQ(int2fp.rs1_file, RegFile::kInt);
  // fcvt.s.d / fcvt.d.s.
  EXPECT_EQ(decode(enc_r(kOpFp, 1, 0, 2, 1, 0x20)).mnemonic, Mnemonic::kFcvtSD);
  EXPECT_EQ(decode(enc_r(kOpFp, 1, 0, 2, 0, 0x21)).mnemonic, Mnemonic::kFcvtDS);
}

TEST(Decode, FusedMultiplyAddReadsThreeFpSources) {
  // fmadd.d f1, f2, f3, f4: rs3 in bits [31:27], fmt in [26:25].
  const u32 enc = (4u << 27) | (1u << 25) | (3u << 20) | (2u << 15) |
                  (0u << 12) | (1u << 7) | 0x43;
  const Decoded d = decode(enc);
  EXPECT_EQ(d.mnemonic, Mnemonic::kFmaddD);
  EXPECT_TRUE(d.reads_rs3());
  EXPECT_EQ(d.rs3, 4);
  EXPECT_EQ(d.cls, InstClass::kFpMulDiv);
}

TEST(Decode, GuardEventMarkers) {
  EXPECT_EQ(decode(make_guard_event(true)).mnemonic, Mnemonic::kGuardAlloc);
  EXPECT_EQ(decode(make_guard_event(false)).mnemonic, Mnemonic::kGuardFree);
  EXPECT_EQ(decode(make_guard_event(true)).cls, InstClass::kGuardEvent);
}

TEST(Decode, RejectsCompressedLengthPrefix) {
  EXPECT_FALSE(decode(0x00000001).valid());
  EXPECT_FALSE(decode(0x0000fffe).valid());
}

TEST(Decode, FuzzNeverAbortsAndInvalidIsNop) {
  Rng rng(0xdec0de);
  for (int i = 0; i < 200000; ++i) {
    const u32 enc = static_cast<u32>(rng.next());
    const Decoded d = decode(enc);
    if (!d.valid()) {
      EXPECT_EQ(d.cls, InstClass::kNop);
    }
    // Decoded register indices are always in range by construction.
    EXPECT_LT(d.rd, 32);
    EXPECT_LT(d.rs1, 32);
    EXPECT_LT(d.rs2, 32);
    EXPECT_LT(d.rs3, 32);
  }
}

TEST(Decode, DisassemblyOfCommonForms) {
  EXPECT_EQ(disassemble_full(make_load(3, 5, 6, -32)), "ld x5, -32(x6)");
  EXPECT_EQ(disassemble_full(make_store(2, 10, 11, 100)), "sw x11, 100(x10)");
  EXPECT_EQ(disassemble_full(make_alu_rr(0, 1, 2, 3, true)), "sub x1, x2, x3");
  EXPECT_EQ(disassemble_full(make_jalr(0, 1, 0)), "ret");
  EXPECT_EQ(disassemble_full(make_alu_ri(0, 0, 0, 0)), "nop");
  EXPECT_EQ(disassemble_full(make_alu_ri(0, 3, 7, 0)), "mv x3, x7");
  EXPECT_EQ(disassemble_full(make_jal(0, 64)), "j 64");
  EXPECT_EQ(disassemble_full(make_branch(0, 9, 0, -8)), "beqz x9, -8");
  // 0xdeadbeef happens to be a well-formed jal x29 encoding.
  EXPECT_EQ(disassemble_full(0xdeadbeef), "jal x29, -150038");
  EXPECT_EQ(disassemble_full(0x00000000), ".word 0x00000000");
}

TEST(Decode, EveryMnemonicHasAName) {
  for (u16 m = 1; m < static_cast<u16>(Mnemonic::kCount); ++m) {
    EXPECT_STRNE(mnemonic_name(static_cast<Mnemonic>(m)), "<invalid>")
        << "mnemonic " << m;
  }
}

TEST(FilterRow, LoadsAndStoresHaveUniqueRows) {
  // The lb row (0x03 with funct3 0) is exactly one mnemonic.
  EXPECT_EQ(mnemonics_sharing_filter_row(0x003), 1u);  // lb
  EXPECT_EQ(mnemonics_sharing_filter_row(0x023), 1u);  // sb
  // Row addresses quoted in the paper (Figure 3): 0x03 -> lb, 0x23 -> sb.
  EXPECT_EQ(*canonical_filter_row(Mnemonic::kLb), 0x003);
  EXPECT_EQ(*canonical_filter_row(Mnemonic::kSb), 0x023);
}

TEST(FilterRow, OpRowsCollideAcrossFunct7) {
  // add/sub/mul share {funct3=0, opcode=0x33}: the filter cannot split them.
  const u16 row = *canonical_filter_row(Mnemonic::kAdd);
  EXPECT_EQ(row, *canonical_filter_row(Mnemonic::kSub));
  EXPECT_EQ(row, *canonical_filter_row(Mnemonic::kMul));
  EXPECT_EQ(mnemonics_sharing_filter_row(row), 3u);
}

TEST(FilterRow, DecodedInstructionsLandOnTheirCanonicalRow) {
  // For every mnemonic with a canonical row, an actual encoding's
  // filter_index matches it (checked over the encodings we can build).
  EXPECT_EQ(filter_index(make_load(2, 1, 2, 4)),
            *canonical_filter_row(Mnemonic::kLw));
  EXPECT_EQ(filter_index(make_store(3, 1, 2, 8)),
            *canonical_filter_row(Mnemonic::kSd));
  EXPECT_EQ(filter_index(make_branch(4, 1, 2, 16)),
            *canonical_filter_row(Mnemonic::kBlt));
  EXPECT_EQ(filter_index(make_guard_event(true)),
            *canonical_filter_row(Mnemonic::kGuardAlloc));
}

TEST(Csr, NamesAndConventionBits) {
  EXPECT_STREQ(*csr_name(kCsrMstatus), "mstatus");
  EXPECT_STREQ(*csr_name(kCsrFgFilterAddr), "fg.filter_addr");
  EXPECT_FALSE(csr_name(0x5aa).has_value());
  EXPECT_TRUE(csr_is_readonly(kCsrCycle));
  EXPECT_FALSE(csr_is_readonly(kCsrMstatus));
  EXPECT_EQ(csr_privilege(kCsrMstatus), 3u);
  EXPECT_EQ(csr_privilege(kCsrSstatus), 1u);
  EXPECT_EQ(csr_privilege(kCsrFflags), 0u);
  EXPECT_TRUE(is_fireguard_csr(kCsrFgAeBitmap));
  EXPECT_FALSE(is_fireguard_csr(kCsrMstatus));
}

}  // namespace
}  // namespace fg::isa
