// Property tests for the epoch-barrier handoff under the two-thread
// pipelined scheduler: the EpochRing's double-buffered publication (no
// cross-thread state visible between barriers), the EpochChannel's
// one-in-flight command protocol, and the CdcFifo's pipelined storage mode
// replayed against its own serial mode. Randomized epoch lengths land on
// horizon boundaries, zero-length epochs are drawn deliberately, and
// conservation (packets in == packets out, in order) is asserted both by
// the tests and by the FG_INVARIANT hooks inside CdcFifo::pop. The
// concurrent cases are exactly the ones the CI TSan job compiles with
// -fsanitize=thread — this suite is the race detector's workload.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/common/epoch_channel.h"
#include "src/common/epoch_ring.h"
#include "src/common/rng.h"
#include "src/core/cdc.h"

namespace fg {
namespace {

// --- EpochRing: two-thread conservation -----------------------------------
//
// A producer pushes the sequence 0..N-1 in epochs of random length
// (including zero-length epochs and epochs cut short by a full ring) and
// publishes only at epoch ends; the consumer drains whatever each acquire
// reveals. Every element must come out exactly once, in push order — lost
// or duplicated elements would mean a torn index or a slot reused before
// its acquire.
TEST(EpochBarrier, RingConservesElementsAcrossRandomEpochs) {
  constexpr u64 kN = 50'000;
  EpochRing<u64> ring(32);

  std::vector<u64> popped;
  popped.reserve(kN);
  std::thread consumer([&ring, &popped] {
    while (popped.size() < kN) {
      ring.consumer_acquire();
      if (ring.consumer_size() == 0) {
        std::this_thread::yield();
        continue;
      }
      while (ring.consumer_size() > 0) popped.push_back(ring.pop());
      ring.consumer_publish();
    }
  });

  Rng rng(0xba55);
  u64 next = 0;
  while (next < kN) {
    // Epoch: up to 8 pushes (possibly zero), then a barrier.
    const u64 want = rng.range(0, 8);
    for (u64 i = 0; i < want && next < kN; ++i) {
      if (!ring.can_push()) break;  // full against the frozen head: stop
      ring.push(next++);
    }
    ring.producer_publish();
    ring.producer_acquire();
  }
  ring.producer_publish();  // release the tail of the final epoch

  consumer.join();
  ASSERT_EQ(popped.size(), kN);
  for (u64 i = 0; i < kN; ++i) {
    ASSERT_EQ(popped[i], i) << "element " << i << " out of order";
  }
  ring.finalize();
  EXPECT_EQ(ring.published_pushes(), kN);
  EXPECT_EQ(ring.published_pops(), kN);
}

// --- EpochRing: nothing crosses a barrier it wasn't published at ----------
//
// The double-buffering contract itself: un-published pushes are invisible
// to the consumer, un-published pops are invisible to the producer, and a
// barrier reveals exactly what the other side had published by then. (All
// single-threaded — the property is about the index protocol, not timing.)
TEST(EpochBarrier, RingIsolatesUnpublishedWorkUntilBarrier) {
  EpochRing<int> ring(8);
  ring.push(10);
  ring.push(11);
  ring.push(12);
  // Not yet published: an acquiring consumer sees an empty ring.
  ring.consumer_acquire();
  EXPECT_EQ(ring.consumer_size(), 0u);

  ring.producer_publish();
  ring.consumer_acquire();
  ASSERT_EQ(ring.consumer_size(), 3u);
  EXPECT_EQ(ring.front(), 10);
  EXPECT_EQ(ring.at(2), 12);

  EXPECT_EQ(ring.pop(), 10);
  EXPECT_EQ(ring.pop(), 11);
  // Pops not yet published: the producer still counts full occupancy.
  ring.producer_acquire();
  EXPECT_EQ(ring.producer_size(), 3u);
  EXPECT_EQ(ring.producer_front(), 10);

  ring.consumer_publish();
  ring.producer_acquire();
  EXPECT_EQ(ring.producer_size(), 1u);
  EXPECT_EQ(ring.producer_front(), 12);
}

// Zero-length epochs — barriers with no traffic in either direction — must
// be perfect no-ops in any interleaving, because the pipelined scheduler
// elides slow boundaries precisely by publishing empty epochs.
TEST(EpochBarrier, RingZeroLengthEpochsAreNoOps) {
  EpochRing<int> ring(4);
  Rng rng(0x2e20);
  ring.push(7);
  ring.producer_publish();
  ring.consumer_acquire();
  for (int i = 0; i < 1'000; ++i) {
    switch (rng.range(0, 3)) {
      case 0: ring.producer_publish(); break;
      case 1: ring.producer_acquire(); break;
      case 2: ring.consumer_publish(); break;
      default: ring.consumer_acquire(); break;
    }
    ASSERT_EQ(ring.consumer_size(), 1u);
    ASSERT_EQ(ring.front(), 7);
    ASSERT_EQ(ring.producer_size(), 1u);
  }
  EXPECT_EQ(ring.pop(), 7);
}

// --- EpochChannel: one-in-flight command protocol -------------------------
//
// A long ping-pong: each command carries a payload, the consumer acks a
// function of it, and the producer checks every ack. With at most one
// command in flight the single cmd/ack slots must never tear — a torn slot
// shows up as a wrong ack value, and under TSan as a data race.
TEST(EpochBarrier, ChannelPingPongDeliversEveryAckInOrder) {
  struct Cmd {
    u64 x = 0;
    u8 last = 0;
  };
  constexpr u64 kRounds = 20'000;
  EpochChannel<Cmd, u64> ch;

  u64 consumer_spins = 0;
  std::thread consumer([&ch, &consumer_spins] {
    for (;;) {
      Cmd c;
      ch.next(&c, &consumer_spins);
      ch.ack(c.x * 3 + 1);
      if (c.last != 0) return;
    }
  });

  u64 producer_spins = 0;
  for (u64 i = 0; i < kRounds; ++i) {
    ASSERT_TRUE(ch.idle());
    ch.submit(Cmd{i, i + 1 == kRounds ? u8{1} : u8{0}});
    const u64 a = ch.collect(&producer_spins);
    ASSERT_EQ(a, i * 3 + 1) << "round " << i;
  }
  consumer.join();
  EXPECT_TRUE(ch.idle());
}

// ready() must only report an ack that a collect() would actually return —
// overlap the producer's own work with the consumer's, as the prerelease
// path in the scheduler does.
TEST(EpochBarrier, ChannelReadyMeansCollectWontBlock) {
  struct Cmd {
    u64 x = 0;
    u8 last = 0;
  };
  EpochChannel<Cmd, u64> ch;
  std::thread consumer([&ch] {
    for (;;) {
      Cmd c;
      ch.next(&c, nullptr);
      ch.ack(c.x + 100);
      if (c.last != 0) return;
    }
  });
  for (u64 i = 0; i < 2'000; ++i) {
    ch.submit(Cmd{i, i == 1'999 ? u8{1} : u8{0}});
    // Simulated overlapped fast-domain work: poll ready() a few times; once
    // it reports true the collect must return instantly with the right ack.
    while (!ch.ready()) std::this_thread::yield();
    u64 spins = 0;
    EXPECT_EQ(ch.collect(&spins), i + 100);
    EXPECT_EQ(spins, 0u) << "collect blocked after ready() at round " << i;
  }
  consumer.join();
}

// --- CdcFifo: pipelined storage replays the serial schedule ---------------

core::Packet pk(u64 seq) {
  core::Packet p;
  p.valid = true;
  p.seq = seq;
  p.pc = 0x1000 + seq * 4;
  p.addr = seq * 8;
  p.data = seq;
  return p;
}

/// One randomized push/boundary schedule, driven into a serial-mode FIFO
/// and a pipelined-mode FIFO with barriers on every slow boundary (the
/// coarsest legal granularity: entries pushed in epoch j settle at slow
/// cycle j+1, so publishing at the boundary loses nothing). Both must pop
/// the same packets at the same slow cycles and leave identical stats.
void replay_schedule(u64 seed, u32 depth, u32 ratio) {
  const std::string label = "seed=" + std::to_string(seed) +
                            " depth=" + std::to_string(depth) +
                            " ratio=" + std::to_string(ratio);
  const u64 fast_cycles = 64 * ratio;

  // Draw the schedule once; both replays consume the same one.
  Rng rng(seed);
  std::vector<bool> try_push(fast_cycles);
  for (u64 c = 0; c < fast_cycles; ++c) try_push[c] = rng.chance(0.6);

  struct Popped {
    u64 seq;
    Cycle slow;
  };
  auto drive_serial = [&](core::CdcFifo& cdc, std::vector<Popped>* out) {
    u64 next_seq = 0;
    for (u64 c = 0; c < fast_cycles; ++c) {
      if (try_push[c]) {
        if (cdc.can_push()) {
          cdc.push(pk(next_seq++), c);
        } else {
          cdc.note_reject();
        }
      }
      if ((c + 1) % ratio == 0) {
        const Cycle j = (c + 1) / ratio - 1;
        while (cdc.can_pop(j)) out->push_back({cdc.pop().seq, j});
      }
    }
  };

  core::CdcFifo serial(depth, ratio);
  std::vector<Popped> serial_pops;
  drive_serial(serial, &serial_pops);

  core::CdcFifo piped(depth, ratio);
  std::vector<Popped> piped_pops;
  piped.begin_pipelined();
  {
    u64 next_seq = 0;
    for (u64 c = 0; c < fast_cycles; ++c) {
      if (try_push[c]) {
        if (piped.can_push()) {
          piped.push(pk(next_seq++), c);
        } else {
          piped.note_reject();
        }
      }
      if ((c + 1) % ratio == 0) {
        const Cycle j = (c + 1) / ratio - 1;
        piped.producer_publish_epoch();
        piped.consumer_acquire_epoch();
        while (piped.can_pop(j)) piped_pops.push_back({piped.pop().seq, j});
        piped.consumer_publish_epoch();
        piped.producer_acquire_epoch();
      }
    }
  }
  piped.end_pipelined();

  ASSERT_EQ(serial_pops.size(), piped_pops.size()) << label;
  for (size_t i = 0; i < serial_pops.size(); ++i) {
    EXPECT_EQ(serial_pops[i].seq, piped_pops[i].seq) << label << " pop " << i;
    EXPECT_EQ(serial_pops[i].slow, piped_pops[i].slow) << label << " pop " << i;
  }
  EXPECT_EQ(serial.stats().pushes, piped.stats().pushes) << label;
  EXPECT_EQ(serial.stats().pops, piped.stats().pops) << label;
  EXPECT_EQ(serial.stats().full_rejects, piped.stats().full_rejects) << label;
  // Conservation: every push either popped or still enqueued, both modes.
  EXPECT_EQ(serial.stats().pushes, serial.stats().pops + serial.size())
      << label;
  EXPECT_EQ(piped.stats().pushes, piped.stats().pops + piped.size()) << label;
  // The unconsumed tails match too (end_pipelined preserved order).
  ASSERT_EQ(serial.size(), piped.size()) << label;
  while (!serial.empty()) {
    EXPECT_EQ(serial.next_ready_slow(), piped.next_ready_slow()) << label;
    EXPECT_EQ(serial.pop().seq, piped.pop().seq) << label;
  }
}

TEST(EpochBarrier, CdcPipelinedStorageMatchesSerialSchedules) {
  for (const u32 ratio : {1u, 2u, 4u}) {
    for (const u32 depth : {2u, 4u, 8u}) {
      for (u64 seed = 1; seed <= 8; ++seed) {
        replay_schedule(seed * 7919, depth, ratio);
      }
    }
  }
}

// Two genuinely concurrent domains over one CdcFifo, boundary order
// serialized by an EpochChannel exactly as Soc::run_pipelined does it: the
// fast thread pushes an epoch, publishes, submits the boundary; the slow
// thread acquires, drains the settled prefix, publishes its pops, acks.
// Deterministic by construction (the channel sequences every barrier), so
// the pop log must equal the single-threaded serial replay bit for bit —
// under TSan this is the CdcFifo race test.
TEST(EpochBarrier, CdcConcurrentEpochHandoffMatchesSerial) {
  constexpr u32 kDepth = 4;
  constexpr u32 kRatio = 2;
  constexpr u64 kEpochs = 4'000;

  Rng rng(0xcdc1);
  std::vector<bool> try_push(kEpochs * kRatio);
  for (u64 c = 0; c < try_push.size(); ++c) try_push[c] = rng.chance(0.5);

  struct Popped {
    u64 seq;
    Cycle slow;
  };
  // Serial reference.
  std::vector<Popped> want;
  {
    core::CdcFifo cdc(kDepth, kRatio);
    u64 next_seq = 0;
    for (u64 c = 0; c < try_push.size(); ++c) {
      if (try_push[c] && cdc.can_push()) cdc.push(pk(next_seq++), c);
      if ((c + 1) % kRatio == 0) {
        const Cycle j = (c + 1) / kRatio - 1;
        while (cdc.can_pop(j)) want.push_back({cdc.pop().seq, j});
      }
    }
  }

  // Concurrent replay.
  struct BoundaryCmd {
    Cycle slow = 0;
    u8 last = 0;
  };
  core::CdcFifo cdc(kDepth, kRatio);
  cdc.begin_pipelined();
  EpochChannel<BoundaryCmd, u8> ch;
  std::vector<Popped> got;
  std::thread slow([&cdc, &ch, &got] {
    for (;;) {
      BoundaryCmd cmd;
      ch.next(&cmd, nullptr);
      cdc.consumer_acquire_epoch();
      while (cdc.can_pop(cmd.slow)) got.push_back({cdc.pop().seq, cmd.slow});
      cdc.consumer_publish_epoch();
      ch.ack(0);
      if (cmd.last != 0) return;
    }
  });
  u64 next_seq = 0;
  for (u64 c = 0; c < try_push.size(); ++c) {
    if (try_push[c] && cdc.can_push()) cdc.push(pk(next_seq++), c);
    if ((c + 1) % kRatio == 0) {
      const Cycle j = (c + 1) / kRatio - 1;
      cdc.producer_publish_epoch();
      ch.submit(BoundaryCmd{j, j + 1 == kEpochs ? u8{1} : u8{0}});
      ch.collect(nullptr);
      cdc.producer_acquire_epoch();
    }
  }
  slow.join();
  cdc.end_pipelined();

  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, want[i].seq) << "pop " << i;
    EXPECT_EQ(got[i].slow, want[i].slow) << "pop " << i;
  }
  EXPECT_EQ(cdc.stats().pushes, cdc.stats().pops + cdc.size());
}

}  // namespace
}  // namespace fg
