// fg_json (src/common/json.h): the one JSON dialect every layer shares.
// Round-trips (u64 exactness, double exactness, canonical dumps) and the
// malformed-input contract: truncation, bad escapes, and number overflow
// are parse errors, never silent best-effort values.
#include <gtest/gtest.h>

#include "src/common/json.h"

namespace fg::json {
namespace {

TEST(Json, ParsesScalars) {
  Value v;
  ASSERT_TRUE(parse("42", &v));
  EXPECT_EQ(v.kind, Value::Kind::kNumber);
  EXPECT_FALSE(v.is_float);
  EXPECT_EQ(v.num, 42u);

  ASSERT_TRUE(parse("true", &v));
  EXPECT_TRUE(v.b);
  ASSERT_TRUE(parse("false", &v));
  EXPECT_FALSE(v.b);
  ASSERT_TRUE(parse("null", &v));
  EXPECT_EQ(v.kind, Value::Kind::kNull);
  ASSERT_TRUE(parse("\"hi\\n\\t\\\"there\\\"\"", &v));
  EXPECT_EQ(v.str, "hi\n\t\"there\"");
}

TEST(Json, U64RoundTripIsExact) {
  // Full 64-bit values (seeds, counters) must survive exactly.
  const u64 kValues[] = {0, 1, (1ull << 53) + 1, ~u64{0}};
  for (const u64 x : kValues) {
    const std::string text = dump(Value::of(x));
    Value v;
    ASSERT_TRUE(parse(text, &v)) << text;
    EXPECT_FALSE(v.is_float);
    EXPECT_EQ(v.num, x);
  }
}

TEST(Json, DoubleRoundTripIsExact) {
  const double kValues[] = {0.25, 0.1, 1.0 / 3.0, 3.2, 1e-300, 1.7e308};
  for (const double x : kValues) {
    const std::string text = dump(Value::of_double(x));
    Value v;
    ASSERT_TRUE(parse(text, &v)) << text;
    // %.17g either prints an integer form (reparsed as u64) or a float
    // form; get via an object field to exercise the accessor used by the
    // config readers.
    Value obj = Value::object();
    obj.set("x", Value::of_double(x));
    Value back;
    ASSERT_TRUE(parse(dump(obj), &back));
    EXPECT_EQ(back.get_double("x"), x) << text;
  }
}

TEST(Json, CanonicalDumpIsAFixedPoint) {
  const std::string text =
      "{\"b\": [1, 2, {\"x\": true}], \"a\": 0.5, \"s\": \"hi\"}";
  Value v;
  ASSERT_TRUE(parse(text, &v));
  const std::string canon = dump(v);
  Value v2;
  ASSERT_TRUE(parse(canon, &v2));
  EXPECT_EQ(dump(v2), canon);  // parse(dump) is the identity on dumps
  // Sorted keys: "a" before "b" before "s".
  EXPECT_LT(canon.find("\"a\""), canon.find("\"b\""));
  EXPECT_LT(canon.find("\"b\""), canon.find("\"s\""));
}

TEST(Json, PrettyDumpReparses) {
  Value v = Value::object();
  v.set("nested", Value::object().set("k", Value::of(7)));
  v.set("arr", Value::array().push(Value::of(1)).push(Value::of_str("two")));
  Value back;
  ASSERT_TRUE(parse(dump(v, 2), &back));
  EXPECT_EQ(dump(back), dump(v));
}

TEST(Json, RejectsTruncation) {
  Value v;
  EXPECT_FALSE(parse("{\"a\": 1", &v));
  EXPECT_FALSE(parse("[1, 2", &v));
  EXPECT_FALSE(parse("\"unterminated", &v));
  EXPECT_FALSE(parse("{\"a\"", &v));
  EXPECT_FALSE(parse("{\"a\":", &v));
  EXPECT_FALSE(parse("", &v));
}

TEST(Json, RejectsBadEscapes) {
  Value v;
  EXPECT_FALSE(parse("\"bad \\q escape\"", &v));
  EXPECT_FALSE(parse("\"unicode \\u0041\"", &v));  // outside the subset
  EXPECT_FALSE(parse("\"dangling \\", &v));
}

TEST(Json, RejectsIntegerOverflow) {
  Value v;
  // 2^64 - 1 parses; 2^64 (and wider) must be a loud error, not a wrap.
  EXPECT_TRUE(parse("18446744073709551615", &v));
  EXPECT_EQ(v.num, ~u64{0});
  EXPECT_FALSE(parse("18446744073709551616", &v));
  EXPECT_FALSE(parse("99999999999999999999999", &v));
  EXPECT_FALSE(parse("{\"x\": 18446744073709551616}", &v));
}

TEST(Json, RejectsDoubleOverflowAndMalformedNumbers) {
  Value v;
  EXPECT_FALSE(parse("1e99999", &v));   // overflows to inf
  EXPECT_FALSE(parse("1.", &v));        // digits required after the point
  EXPECT_FALSE(parse("1e", &v));        // exponent needs digits
  EXPECT_FALSE(parse("1e+", &v));
  EXPECT_FALSE(parse("-3", &v));        // subset: no negative numbers
}

TEST(Json, RejectsMissingDoubledAndTrailingCommas) {
  Value v;
  EXPECT_FALSE(parse("{\"a\": 1 \"b\": 2}", &v));   // missing comma
  EXPECT_FALSE(parse("{\"a\": 1,, \"b\": 2}", &v)); // doubled comma
  EXPECT_FALSE(parse("{\"a\": 1,}", &v));           // trailing comma
  EXPECT_FALSE(parse("[1 2]", &v));
  EXPECT_FALSE(parse("[1,,2]", &v));
  EXPECT_FALSE(parse("[1,]", &v));
  EXPECT_FALSE(parse("[,1]", &v));
  EXPECT_TRUE(parse("{\"a\": 1, \"b\": [1, 2]}", &v));
  EXPECT_TRUE(parse("{}", &v));
  EXPECT_TRUE(parse("[]", &v));
}

TEST(Json, DuplicateObjectKeysLastOneWins) {
  Value v;
  ASSERT_TRUE(parse("{\"k\": 1, \"other\": 0, \"k\": 2}", &v));
  EXPECT_EQ(v.get_u64("k"), 2u);
}

TEST(Json, RejectsTrailingGarbage) {
  Value v;
  EXPECT_FALSE(parse("42 garbage", &v));
  EXPECT_FALSE(parse("{} []", &v));
}

TEST(Json, AccessorsTypeCheck) {
  Value v;
  ASSERT_TRUE(parse("{\"n\": 3, \"f\": 0.5, \"s\": \"x\", \"b\": true}", &v));
  EXPECT_EQ(v.get_u64("n"), 3u);
  EXPECT_EQ(v.get_u64("f", 7), 7u);  // float is not silently an int
  EXPECT_EQ(v.get_double("n"), 3.0);  // int promotes to double
  EXPECT_EQ(v.get_double("f"), 0.5);
  EXPECT_EQ(v.get_str("s"), "x");
  EXPECT_TRUE(v.get_bool("b"));
  EXPECT_EQ(v.get_u64("missing", 9), 9u);
  EXPECT_EQ(v.get("missing"), nullptr);
}

}  // namespace
}  // namespace fg::json
