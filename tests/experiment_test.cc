// Tests for the experiment harness: Table II presets, deployment defaults,
// software-baseline expansion ordering, and the memoizing baseline cache.
#include "src/soc/experiment.h"

#include <gtest/gtest.h>

namespace fg::soc {
namespace {

trace::WorkloadConfig small_wl(const char* name, u64 n = 25000) {
  trace::WorkloadConfig wl;
  wl.profile = trace::profile_by_name(name);
  wl.seed = 5;
  wl.n_insts = n;
  return wl;
}

TEST(Experiment, DeployDefaults) {
  const KernelDeployment d = deploy(kernels::KernelKind::kAsan, 6);
  EXPECT_EQ(d.kind, kernels::KernelKind::kAsan);
  EXPECT_EQ(d.n_engines, 6u);
  EXPECT_FALSE(d.use_ha);
  EXPECT_FALSE(d.policy_overridden);
  const KernelDeployment h =
      deploy(kernels::KernelKind::kPmc, 1, kernels::ProgModel::kHybrid, true);
  EXPECT_TRUE(h.use_ha);
}

TEST(Experiment, Table2SocMatchesPaperNumbers) {
  const SocConfig sc = table2_soc();
  EXPECT_EQ(sc.core.rob_entries, 128u);
  EXPECT_EQ(sc.core.iq_entries, 96u);
  EXPECT_EQ(sc.core.ldq_entries, 32u);
  EXPECT_EQ(sc.core.phys_regs, 128u);
  EXPECT_EQ(sc.frontend.filter.width, 4u);
  EXPECT_EQ(sc.frontend.filter.fifo_depth, 16u);
  EXPECT_EQ(sc.frontend.cdc_depth, 8u);
  EXPECT_EQ(sc.frontend.freq_ratio, 2u);    // 3.2 / 1.6 GHz
  EXPECT_EQ(sc.frontend.mapper_width, 1u);  // the paper's scalar mapper
  EXPECT_EQ(sc.ucore.msgq_depth, 32u);
  EXPECT_DOUBLE_EQ(sc.fast_ghz, 3.2);
}

TEST(Experiment, SoftwareSchemesOrderedByDocumentedCost) {
  // The documented LLVM-instrumentation overheads order as:
  // shadow stack << ASan x86-64 < ASan AArch64; DangSan sits near 1.6x.
  const SocConfig sc = table2_soc();
  const trace::WorkloadConfig wl = small_wl("ferret", 40000);
  const Cycle base = run_baseline_cycles(wl, sc);
  auto slow = [&](baseline::SwScheme s) {
    return static_cast<double>(run_software(wl, s, sc).cycles) /
           static_cast<double>(base);
  };
  const double ss = slow(baseline::SwScheme::kShadowStackLlvm);
  const double x86 = slow(baseline::SwScheme::kAsanX8664);
  const double a64 = slow(baseline::SwScheme::kAsanAarch64);
  const double dang = slow(baseline::SwScheme::kDangSan);
  EXPECT_GT(ss, 1.0);
  // ferret is the call-heavy tail of the shadow-stack cost distribution
  // (the 7.9% the paper quotes is a geomean over all nine workloads).
  EXPECT_LT(ss, 1.6);
  EXPECT_GT(x86, ss);
  EXPECT_GT(a64, x86);
  EXPECT_GT(dang, 1.0);
  EXPECT_LT(dang, x86);
}

TEST(Experiment, ExpansionReportedForSoftwareRuns) {
  const SocConfig sc = table2_soc();
  const RunResult r =
      run_software(small_wl("dedup"), baseline::SwScheme::kAsanX8664, sc);
  EXPECT_GT(r.expansion, 1.2);
  EXPECT_LT(r.expansion, 4.0);
  EXPECT_GT(r.committed, 25000u);  // instrumentation adds instructions
}

TEST(Experiment, BaselineCacheReturnsIdenticalValues) {
  BaselineCache cache;
  const SocConfig sc = table2_soc();
  const trace::WorkloadConfig wl = small_wl("swaptions");
  const Cycle a = cache.get(wl, sc);
  const Cycle b = cache.get(wl, sc);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, run_baseline_cycles(wl, sc));
}

TEST(Experiment, GeomeanBasics) {
  EXPECT_DOUBLE_EQ(geomean_slowdown({2.0, 2.0}), 2.0);
  EXPECT_NEAR(geomean_slowdown({1.0, 4.0}), 2.0, 1e-9);
  EXPECT_NEAR(geomean_slowdown({1.1, 1.2, 1.3}), 1.1972, 1e-3);
}

TEST(Experiment, FireguardRunPopulatesAllFields) {
  SocConfig sc = table2_soc();
  sc.kernels = {deploy(kernels::KernelKind::kPmc, 4)};
  trace::WorkloadConfig wl = small_wl("blackscholes");
  wl.attacks = {{trace::AttackKind::kPcHijack, 5}};
  const RunResult r = run_fireguard(wl, sc);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.committed, wl.n_insts / 2);
  EXPECT_GT(r.ipc, 0.1);
  EXPECT_GT(r.packets, 0u);
  EXPECT_EQ(r.planned_attacks, 5u);
  EXPECT_EQ(r.detections.size(), 5u);
}

TEST(Experiment, EveryWorkloadProfileRunsEndToEnd) {
  SocConfig sc = table2_soc();
  sc.kernels = {deploy(kernels::KernelKind::kShadowStack, 2)};
  for (const auto& p : trace::parsec_profiles()) {
    trace::WorkloadConfig wl;
    wl.profile = p;
    wl.seed = 9;
    wl.n_insts = 8000;
    const RunResult r = run_fireguard(wl, sc);
    EXPECT_GT(r.cycles, 0u) << p.name;
    EXPECT_EQ(r.spurious, 0u) << p.name;
  }
}

}  // namespace
}  // namespace fg::soc
