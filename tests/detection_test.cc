// End-to-end attack detection: inject real attacks into the workload and
// verify each guardian kernel catches them through the full pipeline, with
// plausible latencies (Figure 8's measurement path).
#include <gtest/gtest.h>

#include <set>

#include "src/soc/experiment.h"

namespace fg::soc {
namespace {

struct Scenario {
  kernels::KernelKind kind;
  trace::AttackKind attack;
  const char* name;
};

class Detection : public ::testing::TestWithParam<Scenario> {};

trace::WorkloadConfig wl_with_attacks(trace::AttackKind kind, u32 count) {
  trace::WorkloadConfig c;
  c.profile = trace::profile_by_name("ferret");
  c.profile.n_funcs = 48;
  c.seed = 77;
  c.n_insts = 60000;
  c.warmup_insts = 6000;
  c.attacks = {{kind, count}};
  return c;
}

TEST_P(Detection, AllAttacksCaughtWithPlausibleLatency) {
  const Scenario s = GetParam();
  SocConfig sc;
  sc.kernels = {deploy(s.kind, 4)};
  const RunResult r = run_fireguard(wl_with_attacks(s.attack, 25), sc);

  EXPECT_EQ(r.planned_attacks, 25u) << s.name;
  // Every injected attack is detected at least once.
  std::set<u32> ids;
  for (const auto& d : r.detections) ids.insert(d.attack_id);
  EXPECT_EQ(ids.size(), r.planned_attacks) << s.name;

  for (const auto& d : r.detections) {
    EXPECT_GT(d.latency_ns, 0.0);
    EXPECT_LT(d.latency_ns, 50000.0) << s.name;  // µs-scale at the extreme
    EXPECT_GE(d.detect_fast, d.commit_fast);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, Detection,
    ::testing::Values(
        Scenario{kernels::KernelKind::kPmc, trace::AttackKind::kPcHijack, "pmc"},
        Scenario{kernels::KernelKind::kAsan, trace::AttackKind::kHeapOob, "asan"},
        Scenario{kernels::KernelKind::kUaf, trace::AttackKind::kUseAfterFree,
                 "uaf"}),
    [](const auto& info) { return info.param.name; });

TEST(DetectionSs, ShadowStackCatchesCorruptedReturns) {
  SocConfig sc;
  sc.kernels = {deploy(kernels::KernelKind::kShadowStack, 4)};
  const RunResult r = run_fireguard(
      wl_with_attacks(trace::AttackKind::kRetCorrupt, 25), sc);
  std::set<u32> ids;
  for (const auto& d : r.detections) ids.insert(d.attack_id);
  // Block-mode handoff can race the last packets of a window; the paper's
  // own design accepts this — but the detector must catch nearly all.
  EXPECT_GE(ids.size() + 3, r.planned_attacks);
}

TEST(DetectionSs, NoFalsePositivesOnCleanTrace) {
  SocConfig sc;
  sc.kernels = {deploy(kernels::KernelKind::kShadowStack, 4)};
  trace::WorkloadConfig c = wl_with_attacks(trace::AttackKind::kRetCorrupt, 0);
  c.attacks.clear();
  const RunResult r = run_fireguard(c, sc);
  EXPECT_EQ(r.detections.size(), 0u);
  EXPECT_EQ(r.spurious, 0u);
}

TEST(DetectionAsan, NoFalsePositivesOnCleanTrace) {
  SocConfig sc;
  sc.kernels = {deploy(kernels::KernelKind::kAsan, 4)};
  trace::WorkloadConfig c = wl_with_attacks(trace::AttackKind::kHeapOob, 0);
  c.attacks.clear();
  const RunResult r = run_fireguard(c, sc);
  EXPECT_EQ(r.spurious, 0u);
}

TEST(DetectionUaf, NoFalsePositivesOnCleanTrace) {
  SocConfig sc;
  sc.kernels = {deploy(kernels::KernelKind::kUaf, 4)};
  trace::WorkloadConfig c = wl_with_attacks(trace::AttackKind::kUseAfterFree, 0);
  c.attacks.clear();
  const RunResult r = run_fireguard(c, sc);
  EXPECT_EQ(r.spurious, 0u);
}

TEST(DetectionHa, AcceleratorCatchesHijacks) {
  SocConfig sc;
  sc.kernels = {deploy(kernels::KernelKind::kPmc, 1, kernels::ProgModel::kHybrid,
                       /*use_ha=*/true)};
  const RunResult r = run_fireguard(wl_with_attacks(trace::AttackKind::kPcHijack, 20), sc);
  std::set<u32> ids;
  for (const auto& d : r.detections) ids.insert(d.attack_id);
  EXPECT_EQ(ids.size(), 20u);
}

TEST(DetectionLatency, PmcFasterThanAsanTail) {
  // PMC's check is a two-compare bounds test on a tiny event stream; ASan
  // rides the full load/store firehose. The tails must reflect that.
  SocConfig pmc_sc;
  pmc_sc.kernels = {deploy(kernels::KernelKind::kPmc, 4)};
  const RunResult pmc =
      run_fireguard(wl_with_attacks(trace::AttackKind::kPcHijack, 25), pmc_sc);
  SocConfig asan_sc;
  asan_sc.kernels = {deploy(kernels::KernelKind::kAsan, 4)};
  const RunResult asan =
      run_fireguard(wl_with_attacks(trace::AttackKind::kHeapOob, 25), asan_sc);
  ASSERT_FALSE(pmc.detections.empty());
  ASSERT_FALSE(asan.detections.empty());
  double pmc_worst = 0, asan_worst = 0;
  for (const auto& d : pmc.detections) pmc_worst = std::max(pmc_worst, d.latency_ns);
  for (const auto& d : asan.detections) asan_worst = std::max(asan_worst, d.latency_ns);
  EXPECT_LT(pmc_worst, asan_worst);
}

TEST(DetectionMulti, CombinedKernelsBothDetect) {
  SocConfig sc;
  sc.kernels = {deploy(kernels::KernelKind::kPmc, 2),
                deploy(kernels::KernelKind::kAsan, 4)};
  trace::WorkloadConfig c = wl_with_attacks(trace::AttackKind::kPcHijack, 10);
  c.attacks.push_back({trace::AttackKind::kHeapOob, 10});
  const RunResult r = run_fireguard(c, sc);
  std::set<u32> ids;
  for (const auto& d : r.detections) ids.insert(d.attack_id);
  EXPECT_EQ(ids.size(), 20u);
}

}  // namespace
}  // namespace fg::soc
