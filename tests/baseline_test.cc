#include <gtest/gtest.h>

#include "src/baseline/instrument.h"
#include "src/trace/workload.h"

namespace fg::baseline {
namespace {

trace::WorkloadConfig cfg(const std::string& name = "ferret", u64 n = 30000) {
  trace::WorkloadConfig c;
  c.profile = trace::profile_by_name(name);
  c.profile.n_funcs = 48;
  c.seed = 21;
  c.n_insts = n;
  return c;
}

TEST(Instrument, OriginalInstructionsPreservedInOrder) {
  trace::WorkloadGen ref(cfg());
  trace::WorkloadGen inner(cfg());
  InstrumentedSource src(inner, SwScheme::kAsanAarch64);
  trace::TraceInst want, got;
  u64 matched = 0;
  while (ref.next(want)) {
    // Scan the instrumented stream for the next original instruction.
    for (;;) {
      ASSERT_TRUE(src.next(got));
      if (got.pc == want.pc && got.enc == want.enc) break;
    }
    ++matched;
  }
  EXPECT_EQ(matched, 30000u);
}

TEST(Instrument, AsanInsertsShadowLoadPerAccess) {
  // Count original accesses on a clean replay, then verify the instrumented
  // stream adds one shadow byte-load (the instrumentation's lbu x7) per
  // original load/store.
  trace::WorkloadGen plain(cfg());
  trace::TraceInst ti;
  u64 originals = 0;
  while (plain.next(ti)) {
    originals += ti.cls == isa::InstClass::kLoad || ti.cls == isa::InstClass::kStore;
  }
  trace::WorkloadGen inner(cfg());
  InstrumentedSource src(inner, SwScheme::kAsanX8664);
  u64 shadow_loads = 0;
  while (src.next(ti)) {
    shadow_loads +=
        ti.cls == isa::InstClass::kLoad && ti.mem_size == 1 && ti.rd == 7;
  }
  // A tiny fraction of the workload's own byte loads share the signature.
  EXPECT_NEAR(static_cast<double>(shadow_loads), static_cast<double>(originals),
              static_cast<double>(originals) * 0.03);
}

TEST(Instrument, ExpansionFactorsOrdered) {
  auto expansion = [](SwScheme s) {
    trace::WorkloadGen inner(cfg());
    InstrumentedSource src(inner, s);
    trace::TraceInst ti;
    while (src.next(ti)) {
    }
    return src.expansion();
  };
  const double ss = expansion(SwScheme::kShadowStackLlvm);
  const double asan64 = expansion(SwScheme::kAsanAarch64);
  const double asanx86 = expansion(SwScheme::kAsanX8664);
  const double dang = expansion(SwScheme::kDangSan);
  // Shadow stack is cheap; AArch64 ASan spends more instructions than
  // x86-64 ASan (the paper's 163.5% vs 91.5% ordering).
  EXPECT_LT(ss, 1.25);
  EXPECT_GT(asan64, asanx86);
  EXPECT_GT(asanx86, 1.5);
  EXPECT_GT(dang, 1.1);
  EXPECT_LT(dang, asanx86);
}

TEST(Instrument, ShadowStackOnlyTouchesCallsAndReturns) {
  trace::WorkloadGen plain(cfg());
  trace::TraceInst ti;
  u64 calls = 0, rets = 0;
  while (plain.next(ti)) {
    calls += ti.cls == isa::InstClass::kCall;
    rets += ti.cls == isa::InstClass::kRet;
  }
  trace::WorkloadGen inner(cfg());
  InstrumentedSource src(inner, SwScheme::kShadowStackLlvm);
  while (src.next(ti)) {
  }
  // 3 instructions per call + 4 per return.
  EXPECT_EQ(src.added_insts(), calls * 3 + rets * 4);
}

TEST(Instrument, ResetReplaysIdentically) {
  trace::WorkloadGen inner(cfg("dedup", 20000));
  InstrumentedSource src(inner, SwScheme::kDangSan);
  std::vector<u64> first;
  trace::TraceInst ti;
  while (src.next(ti)) first.push_back(ti.pc ^ ti.mem_addr);
  src.reset();
  size_t i = 0;
  while (src.next(ti)) {
    ASSERT_LT(i, first.size());
    EXPECT_EQ(ti.pc ^ ti.mem_addr, first[i]);
    ++i;
  }
  EXPECT_EQ(i, first.size());
}

TEST(Instrument, SchemeNames) {
  EXPECT_STREQ(sw_scheme_name(SwScheme::kAsanAarch64), "asan_aarch64");
  EXPECT_STREQ(sw_scheme_name(SwScheme::kAsanX8664), "asan_x86_64");
  EXPECT_STREQ(sw_scheme_name(SwScheme::kShadowStackLlvm),
               "shadow_stack_llvm_aarch64");
  EXPECT_STREQ(sw_scheme_name(SwScheme::kDangSan), "dangsan_x86_64");
}

}  // namespace
}  // namespace fg::baseline
