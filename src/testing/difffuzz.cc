#include "src/testing/difffuzz.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/common/invariant.h"
#include "src/common/simctl.h"
#include "src/common/json.h"

namespace fg::fuzz {

namespace {

/// Restores the scheduler mode and the invariant abort policy on scope exit
/// (a fuzz run must not leave the process in record mode).
struct FuzzModeGuard {
  bool entry_exact;
  bool entry_abort;
  FuzzModeGuard() : entry_exact(cycle_exact()), entry_abort(inv::abort_on_violation()) {
    inv::set_abort_on_violation(false);
  }
  ~FuzzModeGuard() {
    set_cycle_exact(entry_exact);
    inv::set_abort_on_violation(entry_abort);
  }
};

std::string repro_line(const FuzzOptions& opt, u64 seed, u64 forced_len) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "fgfuzz --seed 0x%llx --min-trace-len %llu --trace-len %llu",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(opt.env.min_insts),
                static_cast<unsigned long long>(opt.env.max_insts));
  std::string out = buf;
  if (forced_len != 0) {
    std::snprintf(buf, sizeof(buf), " --force-len %llu",
                  static_cast<unsigned long long>(forced_len));
    out += buf;
  }
  return out + " --check";
}

std::string write_artifact(const FuzzOptions& opt, const FuzzFailure& f,
                           const Scenario& s) {
  if (opt.artifact_dir.empty()) return "";
  std::error_code ec;
  std::filesystem::create_directories(opt.artifact_dir, ec);
  char name[64];
  std::snprintf(name, sizeof(name), "fgfuzz_fail_0x%016llx.json",
                static_cast<unsigned long long>(f.seed));
  const std::string path = opt.artifact_dir + "/" + name;
  std::ofstream out(path);
  if (!out) return "";
  out << "{\n";
  out << "  \"schema\": \"fireguard/fgfuzz_failure/v1\",\n";
  out << "  \"kind\": \"" << f.kind << "\",\n";
  out << "  \"repro\": \"" << json::escape(f.repro) << "\",\n";
  out << "  \"trace_len\": " << f.trace_len << ",\n";
  out << "  \"shrunk_len\": " << f.shrunk_len << ",\n";
  out << "  \"scenario\":\n" << scenario_json(s, 2) << ",\n";
  out << "  \"diff\": \"" << json::escape(f.diff) << "\"\n";
  out << "}\n";
  return path;
}

}  // namespace

Scenario with_trace_len(Scenario s, u64 len) {
  s.wl().n_insts = len;
  if (s.wl().warmup_insts > len / 5) s.wl().warmup_insts = len / 5;
  return s;
}

FuzzReport run_fuzz(const FuzzOptions& opt, const ScenarioRunner& runner_in) {
  const ScenarioRunner runner =
      runner_in ? runner_in : run_scenario_snapshot_in_mode;
  FuzzModeGuard guard;
  FuzzReport report;

  // One seed's verdict: runs both modes, returns the failure diff ("" = ok)
  // and accumulates invariant messages.
  auto check_scenario = [&](const Scenario& s, std::string* inv_msgs) {
    // Fresh counters and message ring per scenario: a violation-heavy early
    // seed must not saturate the ring and leave later failures' artifacts
    // without the invariant names.
    inv::reset_counters();
    const StatSnapshot exact = runner(s, true);
    const StatSnapshot event = runner(s, false);
    if (inv_msgs != nullptr && inv::violations() != 0) {
      for (const std::string& m : inv::recent_violations()) {
        *inv_msgs += m + "\n";
      }
    }
    return snapshots_equal(exact, event)
               ? std::string{}
               : snapshot_diff(exact, event, "exact", "event");
  };

  for (u64 i = 0; i < opt.seeds; ++i) {
    const u64 seed = opt.seed_base + i;
    Scenario s = scenario_from_seed(seed, opt.env);
    if (opt.force_len != 0) s = with_trace_len(s, opt.force_len);
    if (opt.verbose) {
      std::printf("fgfuzz seed %llu: %s\n",
                  static_cast<unsigned long long>(seed),
                  scenario_summary(s).c_str());
    }
    std::string inv_msgs;
    std::string diff = check_scenario(s, &inv_msgs);
    // check_scenario resets the counters on entry, so a nonzero count here
    // belongs to THIS scenario's two runs.
    const bool invariant_failed = inv::violations() != 0;
    ++report.seeds_run;
    if (diff.empty() && !invariant_failed) continue;

    FuzzFailure f;
    f.seed = seed;
    f.kind = diff.empty() ? "invariant" : "event_vs_exact";
    f.summary = scenario_summary(s);
    f.trace_len = s.wl().n_insts;
    f.shrunk_len = s.wl().n_insts;
    if (!diff.empty()) {
      ++report.mismatches;
    } else {
      ++report.invariant_violations;
    }

    // Shrink by trace-length bisection: find the smallest length that still
    // mismatches. Mismatch is not guaranteed monotone in length, so this is
    // a best-effort minimizer (standard fuzzing practice), biased low.
    if (opt.shrink && !diff.empty() && s.wl().n_insts > opt.env.min_insts) {
      u64 lo = opt.env.min_insts;  // not known to fail
      u64 hi = s.wl().n_insts;       // known to fail
      std::string hi_diff = diff;
      const std::string lo_diff = check_scenario(with_trace_len(s, lo), nullptr);
      if (lo_diff.empty()) {
        while (lo + 1 < hi) {
          const u64 mid = lo + (hi - lo) / 2;
          const std::string d = check_scenario(with_trace_len(s, mid), nullptr);
          if (d.empty()) {
            lo = mid;
          } else {
            hi = mid;
            hi_diff = d;
          }
        }
      } else {
        // Even the envelope minimum fails; that IS the shrunk case.
        hi = lo;
        hi_diff = lo_diff;
      }
      if (hi < f.shrunk_len) {
        f.shrunk_len = hi;
        diff = hi_diff;
      }
    }
    f.diff = diff.empty() ? inv_msgs : diff;
    f.repro = repro_line(opt, seed,
                         f.shrunk_len != f.trace_len ? f.shrunk_len
                         : opt.force_len != 0        ? opt.force_len
                                                     : 0);
    f.artifact_path =
        write_artifact(opt, f, f.shrunk_len != f.trace_len
                                   ? with_trace_len(s, f.shrunk_len)
                                   : s);
    report.failures.push_back(std::move(f));
    if (opt.stop_on_first) break;
  }
  return report;
}

}  // namespace fg::fuzz
