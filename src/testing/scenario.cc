#include "src/testing/scenario.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/core/packet.h"
#include "src/soc/figures.h"
#include "src/trace/profile.h"
#include "src/common/json.h"

namespace fg::fuzz {

namespace {

template <typename T>
T pick(Rng& rng, std::initializer_list<T> options) {
  return *(options.begin() + rng.below(options.size()));
}

std::string hex_name(u64 seed) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "s%016llx",
                static_cast<unsigned long long>(seed));
  return buf;
}

}  // namespace

Scenario scenario_from_seed(u64 seed, const ScenarioEnvelope& env) {
  FG_CHECK(env.min_insts >= 100 && env.max_insts >= env.min_insts);
  FG_CHECK(env.max_deployments >= 1 && env.max_engines_per_kernel >= 1);
  Rng rng(seed);

  Scenario s;
  s.seed = seed;
  s.name = hex_name(seed);
  s.spec.name = s.name;
  s.spec.mode = api::Mode::kFireguard;

  // --- Workload -------------------------------------------------------
  const auto& names = soc::paper_workloads();
  const std::string& wl_name = names[rng.below(names.size())];
  const u64 n_insts = rng.range(env.min_insts, env.max_insts);
  s.wl() = soc::paper_workload(wl_name, n_insts);
  s.wl().seed = rng.next();  // workload stream decorrelated from the knobs
  s.wl().warmup_insts = rng.below(n_insts / 5 + 1);
  for (const trace::AttackKind kind :
       {trace::AttackKind::kPcHijack, trace::AttackKind::kRetCorrupt,
        trace::AttackKind::kHeapOob, trace::AttackKind::kUseAfterFree}) {
    if (env.max_attacks_per_kind > 0 && rng.chance(0.6)) {
      s.wl().attacks.emplace_back(
          kind, static_cast<u32>(rng.range(1, env.max_attacks_per_kind)));
    }
  }

  // --- Kernel deployments ---------------------------------------------
  // Engine budget: the AE bitmap is 16-bit, and every deployment needs at
  // least one engine; the budget walk guarantees both.
  s.sc() = soc::table2_soc();
  s.sc().kernels.clear();
  const u32 n_deploy = 1 + static_cast<u32>(rng.below(env.max_deployments));
  u32 budget = core::kMaxEngines;
  for (u32 d = 0; d < n_deploy && budget > 0; ++d) {
    const u32 deployments_after = n_deploy - d - 1;
    const kernels::KernelKind kind = pick(
        rng, {kernels::KernelKind::kPmc, kernels::KernelKind::kShadowStack,
              kernels::KernelKind::kAsan, kernels::KernelKind::kUaf});
    // HA variants exist for PMC and the shadow stack only.
    const bool can_ha = kind == kernels::KernelKind::kPmc ||
                        kind == kernels::KernelKind::kShadowStack;
    const bool use_ha = can_ha && rng.chance(0.15);
    // Leave at least one engine per remaining deployment.
    const u32 max_here = std::min(
        env.max_engines_per_kernel,
        budget > deployments_after ? budget - deployments_after : 1u);
    const u32 n_engines =
        use_ha ? 1u : static_cast<u32>(rng.range(1, std::max(1u, max_here)));
    const kernels::ProgModel model =
        rng.chance(0.7) ? kernels::ProgModel::kHybrid
                        : pick(rng, {kernels::ProgModel::kConventional,
                                     kernels::ProgModel::kDuff,
                                     kernels::ProgModel::kUnrolled,
                                     kernels::ProgModel::kHybrid});
    s.sc().kernels.push_back(soc::deploy(kind, n_engines, model, use_ha));
    budget -= use_ha ? 1 : n_engines;
  }

  // --- Fast-domain frontend -------------------------------------------
  s.sc().frontend.cdc_depth = pick(rng, {4u, 8u, 16u});
  s.sc().frontend.filter.fifo_depth = pick(rng, {4u, 8u, 16u, 32u});
  s.sc().frontend.freq_ratio = pick(rng, {2u, 3u, 4u});
  s.sc().frontend.mapper_width = rng.chance(0.25) ? 2 : 1;

  // --- Analysis engines -----------------------------------------------
  s.sc().ucore.msgq_depth = pick(rng, {8u, 16u, 32u});
  s.sc().ucore.isax_ma_stage = rng.chance(0.75);
  s.sc().noc_hop_latency = static_cast<u32>(rng.range(1, 3));
  s.sc().engine_l2.size_bytes = pick(rng, {256u * 1024, 512u * 1024});

  // --- Main core ------------------------------------------------------
  if (env.allow_core_resizing && rng.chance(0.5)) {
    s.sc().core.rob_entries = pick(rng, {32u, 64u, 128u});
    s.sc().core.iq_entries = pick(rng, {16u, 32u, 96u});
    s.sc().core.ldq_entries = pick(rng, {8u, 16u, 32u});
    s.sc().core.stq_entries = pick(rng, {8u, 16u, 32u});
    s.sc().core.phys_regs = pick(rng, {64u, 128u});
  }
  s.sc().core.store_load_forwarding = rng.chance(0.25);

  // --- Memory hierarchy ------------------------------------------------
  s.sc().mem.dram_latency = static_cast<u32>(rng.range(120, 260));
  s.sc().mem.l2.size_bytes = pick(rng, {256u * 1024, 512u * 1024});
  if (env.allow_detailed_mem) {
    s.sc().mem.detailed_dram = rng.chance(0.25);
    s.sc().mem.detailed_ptw = rng.chance(0.25);
  }

  // --- Stall-bound bias -------------------------------------------------
  // MUST stay the last draw, and must draw nothing when the bias is off:
  // the short-circuit keeps every pre-existing (seed, envelope) expansion —
  // including the checked-in golden corpus g01..g20 — byte-identical.
  if (env.stall_bound_bias > 0.0 && rng.chance(env.stall_bound_bias)) {
    s.wl().profile = trace::profile_by_name("memstall");
    s.sc().mem.detailed_dram = true;
    s.sc().mem.detailed_ptw = true;
    // Half the biased corpus keeps ISAX in the MA stage, half takes the
    // post-commit integration's deep multi-cycle µcore stalls.
    s.sc().ucore.isax_ma_stage = rng.chance(0.5);
  }
  return s;
}

std::string scenario_summary(const Scenario& s) {
  std::string out = s.name + " " + s.wl().profile.name + "/" +
                    std::to_string(s.wl().n_insts) + "insts";
  for (const soc::KernelDeployment& d : s.sc().kernels) {
    out += " ";
    out += kernels::kernel_name(d.kind);
    if (d.use_ha) {
      out += "-ha";
    } else {
      out += "x";
      out += std::to_string(d.n_engines);
    }
  }
  char knobs[160];
  std::snprintf(knobs, sizeof(knobs),
                " cdc%u fifo%u ratio%u mapw%u msgq%u %s noc%u rob%u iq%u%s%s",
                s.sc().frontend.cdc_depth, s.sc().frontend.filter.fifo_depth,
                s.sc().frontend.freq_ratio, s.sc().frontend.mapper_width,
                s.sc().ucore.msgq_depth,
                s.sc().ucore.isax_ma_stage ? "ma" : "postcommit",
                s.sc().noc_hop_latency, s.sc().core.rob_entries,
                s.sc().core.iq_entries, s.sc().mem.detailed_dram ? " dram" : "",
                s.sc().mem.detailed_ptw ? " ptw" : "");
  out += knobs;
  return out;
}

std::string scenario_json(const Scenario& s, int indent) {
  // The authoritative description is the full ExperimentSpec (every knob the
  // generator drew, via the one canonical config serializer); seed, name and
  // the human summary ride on top. Reconstruction is still by seed.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(s.seed));
  json::Value v = json::Value::object();
  v.set("seed", json::Value::of_str(buf));
  v.set("name", json::Value::of_str(s.name));
  v.set("summary", json::Value::of_str(scenario_summary(s)));
  v.set("spec", api::spec_to_json_value(s.spec));
  std::string text = json::dump(v, 2);
  if (indent <= 0) return text;
  // Re-base the block onto `indent` leading spaces per line (the golden
  // files embed it under a "scenario" key).
  const std::string pad(static_cast<size_t>(indent), ' ');
  std::string out = pad;
  for (const char c : text) {
    out += c;
    if (c == '\n') out += pad;
  }
  return out;
}

}  // namespace fg::fuzz
