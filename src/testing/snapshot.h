// Scenario runners for the fuzzing subsystem.
//
// The snapshot type itself — and its equality / diff / JSON machinery —
// lives in the public API layer (src/api/snapshot.h); this header aliases
// it into fg::fuzz and adds the scenario-shaped entry points the fuzz
// driver and the golden corpus share. Both delegate to api::run_spec, so
// the fuzzer exercises exactly the code path `fgsim run` serves users with.
#pragma once

#include "src/api/session.h"
#include "src/testing/scenario.h"

namespace fg::fuzz {

using api::DetectionSnap;
using api::EngineSnap;
using api::StatSnapshot;

using api::snapshot_diff;
using api::snapshot_from_json;
using api::snapshot_json;
using api::snapshots_equal;

/// Run the scenario's spec to completion under the CURRENT scheduler mode
/// (fg::cycle_exact()) and snapshot it.
StatSnapshot run_scenario_snapshot(const Scenario& s);

/// The default ScenarioRunner shared by the fuzz driver and the golden
/// corpus: select the scheduler mode, then simulate. Leaves the mode set —
/// callers guard entry/exit (difffuzz's FuzzModeGuard, golden's ModeGuard).
StatSnapshot run_scenario_snapshot_in_mode(const Scenario& s, bool exact);

}  // namespace fg::fuzz
