#include "src/testing/golden.h"

#include <fstream>
#include <sstream>

#include "src/common/simctl.h"
#include "src/common/json.h"

namespace fg::fuzz {

namespace {

struct ModeGuard {
  bool entry = cycle_exact();
  ~ModeGuard() { set_cycle_exact(entry); }
};

std::string golden_path(const std::string& dir, const GoldenEntry& e) {
  return dir + "/" + e.name + ".json";
}

std::string golden_file_text(const GoldenEntry& e, const Scenario& s,
                             const StatSnapshot& snap) {
  char buf[128];
  std::string out = "{\n";
  out += "  \"schema\": \"fireguard/golden/v1\",\n";
  std::snprintf(buf, sizeof(buf), "  \"name\": \"%s\",\n", e.name);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"seed\": \"0x%016llx\",\n",
                static_cast<unsigned long long>(e.seed));
  out += buf;
  out += "  \"scenario\":\n" + scenario_json(s, 2) + ",\n";
  out += "  \"snapshot\":\n" + snapshot_json(snap, 2) + "\n";
  out += "}\n";
  return out;
}

}  // namespace

const std::vector<GoldenEntry>& golden_entries() {
  // Seeds chosen arbitrarily but FIXED FOREVER: each file name is bound to
  // its seed, and the checked-in snapshots freeze these seeds' semantics.
  // (The spread covers, by construction of scenario_from_seed, all four
  // kernels, HA and mixed deployments, all programming models, post-commit
  // ISAX, and the detailed memory models — scenario_test asserts the
  // coverage so a generator change cannot silently narrow the corpus.)
  static const std::vector<GoldenEntry> kEntries = {
      {"g01", 0x0001}, {"g02", 0x0002}, {"g03", 0x0003}, {"g04", 0x0004},
      {"g05", 0x0005}, {"g06", 0x0006}, {"g07", 0x0007}, {"g08", 0x0008},
      {"g09", 0x0009}, {"g10", 0x000a}, {"g11", 0x000b}, {"g12", 0x000c},
      {"g13", 0x1111}, {"g14", 0x2222}, {"g15", 0x3333}, {"g16", 0x4444},
      {"g17", 0x5555}, {"g18", 0x6666}, {"g19", 0x7777}, {"g20", 0x8888},
      // Memory/stall-bound slice (golden_stall_envelope): detailed DRAM +
      // PTW with the pointer-chasing memstall workload, mixing ISAX-in-MA
      // and deep post-commit µcore stalls. These freeze the semantics the
      // event scheduler's skip horizons are most likely to perturb.
      {"g21", 0x9999, true}, {"g22", 0xaaaa, true}, {"g23", 0xbbbb, true},
      {"g24", 0xcccc, true}, {"g25", 0xdddd, true}, {"g26", 0xeeee, true},
  };
  return kEntries;
}

ScenarioEnvelope golden_envelope() {
  ScenarioEnvelope env;
  env.min_insts = 1'500;
  env.max_insts = 5'000;
  return env;
}

ScenarioEnvelope golden_stall_envelope() {
  ScenarioEnvelope env = golden_envelope();
  env.stall_bound_bias = 1.0;
  return env;
}

std::string update_golden(const std::string& dir, const ScenarioRunner& r) {
  const ScenarioRunner runner = r ? r : run_scenario_snapshot_in_mode;
  ModeGuard guard;
  for (const GoldenEntry& e : golden_entries()) {
    const Scenario s = scenario_from_seed(
        e.seed, e.stall ? golden_stall_envelope() : golden_envelope());
    const StatSnapshot snap = runner(s, /*exact=*/false);
    std::ofstream out(golden_path(dir, e));
    if (!out) return "cannot write " + golden_path(dir, e);
    out << golden_file_text(e, s, snap);
  }
  return "";
}

std::string check_golden(const std::string& dir, const ScenarioRunner& r) {
  const ScenarioRunner runner = r ? r : run_scenario_snapshot_in_mode;
  ModeGuard guard;
  std::string report;
  for (const GoldenEntry& e : golden_entries()) {
    const std::string path = golden_path(dir, e);
    std::ifstream in(path);
    if (!in) {
      report += "MISSING " + path + " (run fgfuzz --update-golden)\n";
      continue;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    json::Value root;
    if (!json::parse(ss.str(), &root) ||
        root.get_str("schema") != "fireguard/golden/v1") {
      report += "UNPARSABLE " + path + "\n";
      continue;
    }
    const std::string want_seed = root.get_str("seed");
    char seed_buf[32];
    std::snprintf(seed_buf, sizeof(seed_buf), "0x%016llx",
                  static_cast<unsigned long long>(e.seed));
    if (want_seed != seed_buf) {
      report += "SEED-MISMATCH " + path + " (file " + want_seed +
                ", corpus " + seed_buf + ")\n";
      continue;
    }
    StatSnapshot golden;
    if (root.get("snapshot") == nullptr) {
      report += "UNPARSABLE " + path + " (no snapshot)\n";
      continue;
    }
    // Extract the snapshot object textually (it is the last member) so the
    // one parser/serializer pair in snapshot.cc stays authoritative.
    const std::string text = ss.str();
    const size_t tag = text.find("\"snapshot\":");
    const size_t open = text.find('{', tag);
    const size_t close = text.rfind('}');
    const size_t inner_close = text.rfind('}', close - 1);
    if (tag == std::string::npos || open == std::string::npos ||
        inner_close == std::string::npos || inner_close < open ||
        !snapshot_from_json(text.substr(open, inner_close - open + 1),
                            &golden)) {
      report += "UNPARSABLE " + path + " (snapshot)\n";
      continue;
    }
    const Scenario s = scenario_from_seed(
        e.seed, e.stall ? golden_stall_envelope() : golden_envelope());
    const StatSnapshot fresh = runner(s, /*exact=*/false);
    if (!snapshots_equal(golden, fresh)) {
      report += "MISMATCH " + std::string(e.name) + " (" +
                scenario_summary(s) + "):\n" +
                snapshot_diff(golden, fresh, "golden", "run");
    }
  }
  return report;
}

}  // namespace fg::fuzz
