// Golden-stat regression corpus.
//
// ~20 canonical seeded scenarios whose StatSnapshots are checked into
// tests/golden/*.json. check_golden() regenerates each scenario from its
// seed and compares against the frozen snapshot — any future perf refactor
// diffs against frozen semantics instead of re-deriving expectations.
// update_golden() rewrites the files (run it deliberately, review the diff,
// commit it: a golden change IS a semantics change).
//
// Golden scenarios use a reduced envelope (short traces) so the whole
// corpus re-simulates in seconds; reconstruction is by (seed, envelope)
// exactly as in the fuzz driver.
#pragma once

#include <string>
#include <vector>

#include "src/testing/difffuzz.h"

namespace fg::fuzz {

struct GoldenEntry {
  const char* name;  // file stem, e.g. "g03"
  u64 seed;
  /// Expanded with golden_stall_envelope() instead of golden_envelope():
  /// the memory/stall-bound slice of the corpus (g21..), which freezes the
  /// event scheduler's widened skip horizons against the exact reference's
  /// semantics on the configs where skipping actually pays.
  bool stall = false;
};

/// The corpus definition (stable names and seeds).
const std::vector<GoldenEntry>& golden_entries();

/// The reduced envelope every golden scenario is expanded with.
ScenarioEnvelope golden_envelope();

/// golden_envelope() with the stall-bound bias pinned on — every expansion
/// lands in the memstall + detailed-DRAM/PTW regime.
ScenarioEnvelope golden_stall_envelope();

/// Re-simulate every entry and (over)write `dir`/<name>.json.
/// Returns "" on success, else a message naming the failed file.
std::string update_golden(const std::string& dir,
                          const ScenarioRunner& runner = {});

/// Re-simulate every entry and diff against `dir`/<name>.json.
/// Returns "" when the whole corpus matches; otherwise a report naming each
/// missing / unparsable / mismatching entry with its field diff.
std::string check_golden(const std::string& dir,
                         const ScenarioRunner& runner = {});

}  // namespace fg::fuzz
