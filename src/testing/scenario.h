// Seed-reproducible scenario generation for the fuzzing subsystem.
//
// A Scenario is a full (workload × SoC configuration) simulation point drawn
// from a single uint64 seed: workload profile, trace length, attack plan,
// kernel deployments, and the µ-architectural knobs the paper sweeps (CDC
// depth, filter FIFO depth, message-queue depth, NoC latency, cache/DRAM/PTW
// models, core structure sizes, ISAX integration, programming model). Every
// draw is bounded by a ScenarioEnvelope so generated configs are always
// *valid* — they may be stressful (tiny queues, post-commit ISAX, mixed
// kernels) but never degenerate (zero-capacity structures, engine counts
// beyond the AE bitmap, HA kernels that have no HA implementation).
//
// Reconstruction contract: scenario_from_seed(seed, env) is a pure function
// of (seed, env). The fuzz driver's one-line repro command carries the seed
// and the envelope's trace-length bounds, nothing else.
#pragma once

#include <string>

#include "src/api/spec.h"

namespace fg::fuzz {

struct ScenarioEnvelope {
  u64 min_insts = 2'000;
  u64 max_insts = 12'000;
  u32 max_deployments = 3;           // kernel groups per SoC
  u32 max_engines_per_kernel = 6;    // µcores per group (paper: up to 12)
  u32 max_attacks_per_kind = 4;
  /// Allow the detailed DRAM / page-table-walk timing models (off for the
  /// golden corpus only if a future knob needs freezing; on by default).
  bool allow_detailed_mem = true;
  /// Allow shrinking ROB/IQ/LDQ/STQ below Table II to stress the lazy
  /// release-set and occupancy edge cases.
  bool allow_core_resizing = true;
  /// Probability of re-biasing a drawn scenario into the memory/stall-bound
  /// regime the event scheduler's skip horizons live on: the synthetic
  /// memstall profile plus detailed DRAM + PTW timing (and a coin flip
  /// between ISAX-in-MA and deep post-commit µcore stalls). Consulted LAST
  /// in scenario_from_seed, and 0.0 draws nothing from the rng stream, so
  /// scenarios generated before this knob existed expand byte-identically.
  double stall_bound_bias = 0.0;
};

/// A Scenario IS a seed-expanded ExperimentSpec plus its provenance: the
/// generator draws every knob into `spec`, so anything the fuzzer can
/// produce is expressible — and serializable — through the same declarative
/// surface users write by hand (src/api/spec.h). The `wl()` / `sc()`
/// accessors are shorthands into the spec.
struct Scenario {
  u64 seed = 0;
  std::string name;  // "s<seed hex>"
  api::ExperimentSpec spec;

  trace::WorkloadConfig& wl() { return spec.workload; }
  const trace::WorkloadConfig& wl() const { return spec.workload; }
  soc::SocConfig& sc() { return spec.soc; }
  const soc::SocConfig& sc() const { return spec.soc; }
};

/// Deterministically expand `seed` into a full scenario (an ExperimentSpec)
/// within `env`.
Scenario scenario_from_seed(u64 seed, const ScenarioEnvelope& env = {});

/// One-line human summary (workload, kernels, key knobs).
std::string scenario_summary(const Scenario& s);

/// JSON description of the scenario (for golden files / failure artifacts).
/// Descriptive, not authoritative: reconstruction is always by seed.
std::string scenario_json(const Scenario& s, int indent = 0);

}  // namespace fg::fuzz
