// Minimal JSON reader/writer for the fuzzing subsystem's own file formats
// (stat snapshots, golden corpus entries, failure artifacts).
//
// This is intentionally NOT a general JSON library: it supports exactly the
// subset the subsystem emits — objects, arrays, unsigned 64-bit integers,
// booleans, and strings with \" \\ \n \t escapes — and parses numbers as
// u64 so counters round-trip exactly (a double would lose precision past
// 2^53, and seeds are full 64-bit values).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace fg::fuzz::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  u64 num = 0;
  std::string str;
  std::vector<Value> arr;
  // Insertion-ordered keys are not needed; lookups dominate.
  std::map<std::string, Value> obj;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Object field access; returns nullptr when absent or not an object.
  const Value* get(const std::string& key) const;
  /// Convenience: field's u64 (0 when absent), string ("" when absent).
  u64 get_u64(const std::string& key, u64 fallback = 0) const;
  std::string get_str(const std::string& key) const;
};

/// Parse `text` into `*out`. Returns false on any syntax error.
bool parse(const std::string& text, Value* out);

/// Escape a string for embedding in JSON output (quotes not included).
std::string escape(const std::string& s);

}  // namespace fg::fuzz::json
