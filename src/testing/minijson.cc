#include "src/testing/minijson.h"

#include <cctype>
#include <cstdlib>

namespace fg::fuzz::json {

const Value* Value::get(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

u64 Value::get_u64(const std::string& key, u64 fallback) const {
  const Value* v = get(key);
  return (v != nullptr && v->kind == Kind::kNumber) ? v->num : fallback;
}

std::string Value::get_str(const std::string& key) const {
  const Value* v = get(key);
  return (v != nullptr && v->kind == Kind::kString) ? v->str : std::string{};
}

namespace {

struct Parser {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r' ||
                       *p == ',')) {
      ++p;
    }
  }

  bool literal(const char* s) {
    const char* q = p;
    while (*s != '\0') {
      if (q >= end || *q != *s) return false;
      ++q;
      ++s;
    }
    p = q;
    return true;
  }

  bool parse_string(std::string* out) {
    if (p >= end || *p != '"') return false;
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return false;
        switch (*p) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case '/': out->push_back('/'); break;
          default: return false;  // subset: no \u etc.
        }
        ++p;
      } else {
        out->push_back(*p++);
      }
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool parse_value(Value* out) {
    skip_ws();
    if (p >= end) return false;
    if (*p == '{') {
      ++p;
      out->kind = Value::Kind::kObject;
      skip_ws();
      while (p < end && *p != '}') {
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (p >= end || *p != ':') return false;
        ++p;
        Value v;
        if (!parse_value(&v)) return false;
        out->obj.emplace(std::move(key), std::move(v));
        skip_ws();
      }
      if (p >= end) return false;
      ++p;
      return true;
    }
    if (*p == '[') {
      ++p;
      out->kind = Value::Kind::kArray;
      skip_ws();
      while (p < end && *p != ']') {
        Value v;
        if (!parse_value(&v)) return false;
        out->arr.push_back(std::move(v));
        skip_ws();
      }
      if (p >= end) return false;
      ++p;
      return true;
    }
    if (*p == '"') {
      out->kind = Value::Kind::kString;
      return parse_string(&out->str);
    }
    if (literal("true")) {
      out->kind = Value::Kind::kBool;
      out->b = true;
      return true;
    }
    if (literal("false")) {
      out->kind = Value::Kind::kBool;
      out->b = false;
      return true;
    }
    if (literal("null")) {
      out->kind = Value::Kind::kNull;
      return true;
    }
    if (std::isdigit(static_cast<unsigned char>(*p))) {
      char* after = nullptr;
      out->kind = Value::Kind::kNumber;
      out->num = std::strtoull(p, &after, 10);
      if (after == p) return false;
      p = after;
      return true;
    }
    return false;  // subset: no negative numbers or floats in our formats
  }
};

}  // namespace

bool parse(const std::string& text, Value* out) {
  Parser parser{text.data(), text.data() + text.size()};
  if (!parser.parse_value(out)) return false;
  parser.skip_ws();
  return parser.p == parser.end;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace fg::fuzz::json
