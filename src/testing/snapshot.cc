#include "src/testing/snapshot.h"

#include "src/common/simctl.h"

namespace fg::fuzz {

StatSnapshot run_scenario_snapshot_in_mode(const Scenario& s, bool exact) {
  set_cycle_exact(exact);
  return run_scenario_snapshot(s);
}

StatSnapshot run_scenario_snapshot(const Scenario& s) {
  // One shared run path (api::run_spec) under the fuzzer, the golden
  // corpus, SimSession, and the fgsim CLI.
  return api::run_spec(s.spec).snapshot;
}

}  // namespace fg::fuzz
