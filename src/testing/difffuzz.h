// Differential fuzz driver: event-driven scheduler vs. cycle-exact
// reference over seeded random scenarios.
//
// For every seed the driver expands a Scenario, runs it once under the
// FG_CYCLE_EXACT stepped loop and once under the default event-driven
// scheduler, and requires the two StatSnapshots to be bit-identical; any
// FG_INVARIANT violation observed in either run (record mode, Debug builds)
// is a failure too. A mismatch is shrunk by trace-length bisection and
// reported with a one-line repro command that reconstructs the exact
// scenario from (seed, envelope bounds, forced length) alone.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/testing/snapshot.h"

namespace fg::fuzz {

/// Injection point for tests: given a scenario and the scheduler mode,
/// produce its snapshot. The default runner flips fg::set_cycle_exact and
/// calls run_scenario_snapshot.
using ScenarioRunner = std::function<StatSnapshot(const Scenario&, bool exact)>;

struct FuzzOptions {
  u64 seeds = 64;      // how many seeds to run
  u64 seed_base = 1;   // first seed (seed i = seed_base + i)
  ScenarioEnvelope env;
  /// Force every scenario's trace length after generation (0 = off). This is
  /// how a shrunk repro pins the bisected length without re-rolling the rest
  /// of the scenario.
  u64 force_len = 0;
  bool shrink = true;
  bool stop_on_first = false;
  /// Directory for per-failure artifact JSONs ("" = don't write).
  std::string artifact_dir;
  bool verbose = false;
};

struct FuzzFailure {
  u64 seed = 0;
  std::string kind;  // "event_vs_exact" | "invariant"
  std::string summary;
  u64 trace_len = 0;   // as generated (or forced)
  u64 shrunk_len = 0;  // smallest mismatching length found (== trace_len if
                       // shrinking was off or found nothing smaller)
  std::string diff;    // snapshot diff or invariant messages
  std::string repro;   // one-line reproduction command
  std::string artifact_path;  // "" when artifacts are off / write failed
};

struct FuzzReport {
  u64 seeds_run = 0;
  u64 mismatches = 0;
  u64 invariant_violations = 0;
  std::vector<FuzzFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// Apply a forced trace length to a generated scenario (shrink/repro path):
/// clamps n_insts and keeps warmup within its envelope fraction.
Scenario with_trace_len(Scenario s, u64 len);

/// Run the differential fuzz. `runner` defaults to the real simulator.
FuzzReport run_fuzz(const FuzzOptions& opt, const ScenarioRunner& runner = {});

}  // namespace fg::fuzz
