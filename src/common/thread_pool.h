// Fixed-size worker pool for the parallel sweep runner.
//
// Simulation points are coarse-grained (tens of milliseconds to seconds
// each), so a plain mutex-protected task deque is far below measurement
// noise; no lock-free cleverness is warranted. Tasks are arbitrary
// callables; `submit` returns a std::future for the callable's result, and
// exceptions thrown by a task propagate through that future.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace fg {

class ThreadPool {
 public:
  /// Spawns `n_threads` workers (clamped to >= 1). The pool never grows.
  explicit ThreadPool(u32 n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Job count from the environment: FG_JOBS if set and positive, else
  /// std::thread::hardware_concurrency() (else 1).
  static u32 default_jobs();

  u32 size() const { return static_cast<u32>(workers_.size()); }

  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace fg
