#include "src/common/run_history.h"

#include <cstdio>
#include <cstdlib>

namespace fg {

const char* history_status_name(HistoryStatus s) {
  switch (s) {
    case HistoryStatus::kOk: return "ok";
    case HistoryStatus::kMissing: return "missing";
    case HistoryStatus::kMalformed: return "malformed";
  }
  return "?";
}

HistoryStatus load_runs_history(const std::string& path, std::string* items) {
  items->clear();
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return HistoryStatus::kMissing;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  const size_t tag = text.find("\"runs\": [");
  if (tag == std::string::npos) return HistoryStatus::kMalformed;
  const size_t open = text.find('[', tag);
  // Matching close bracket by depth: v3 records nest an array (the
  // skip-length histogram), so the first ']' after the open is NOT the end
  // of the runs array.
  size_t close = std::string::npos;
  int depth = 0;
  bool in_string = false;
  for (size_t i = open; i < text.size() && close == std::string::npos; ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '[') {
      ++depth;
    } else if (c == ']' && --depth == 0) {
      close = i;
    }
  }
  if (open == std::string::npos || close == std::string::npos) {
    return HistoryStatus::kMalformed;
  }
  std::string body = text.substr(open + 1, close - open - 1);
  // Trim whitespace-only histories to empty (an empty array is still kOk).
  const size_t first = body.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return HistoryStatus::kOk;
  const size_t last = body.find_last_not_of(" \t\r\n,");
  *items = body.substr(first, last - first + 1);
  return HistoryStatus::kOk;
}

std::string append_run_record(const std::string& items,
                              const std::string& run_record) {
  if (items.empty()) return run_record;
  return items + ",\n    " + run_record;
}

std::vector<std::string> split_run_records(const std::string& items) {
  std::vector<std::string> out;
  int depth = 0;
  bool in_string = false;
  size_t start = std::string::npos;
  for (size_t i = 0; i < items.size(); ++i) {
    const char c = items[i];
    if (in_string) {
      if (c == '\\') ++i;         // skip the escaped character
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') { in_string = true; continue; }
    if (c == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (c == '}') {
      if (depth > 0 && --depth == 0 && start != std::string::npos) {
        out.push_back(items.substr(start, i - start + 1));
        start = std::string::npos;
      }
    }
  }
  return out;
}

namespace {

/// Position just past `"key":` (plus whitespace) in `record`, or npos.
size_t value_pos(const std::string& record, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = record.find(needle);
  if (at == std::string::npos) return std::string::npos;
  size_t v = at + needle.size();
  while (v < record.size() && (record[v] == ' ' || record[v] == '\t')) ++v;
  return v < record.size() ? v : std::string::npos;
}

}  // namespace

bool run_record_number(const std::string& record, const std::string& key,
                       double* out) {
  const size_t v = value_pos(record, key);
  if (v == std::string::npos) return false;
  char* end = nullptr;
  const double parsed = std::strtod(record.c_str() + v, &end);
  if (end == record.c_str() + v) return false;
  *out = parsed;
  return true;
}

std::string quarantine_history(const std::string& path) {
  const std::string dst = path + ".corrupt";
  std::remove(dst.c_str());
  return std::rename(path.c_str(), dst.c_str()) == 0 ? dst : std::string();
}

bool run_record_flag(const std::string& record, const std::string& key,
                     bool* out) {
  const size_t v = value_pos(record, key);
  if (v == std::string::npos) return false;
  if (record.compare(v, 4, "true") == 0) { *out = true; return true; }
  if (record.compare(v, 5, "false") == 0) { *out = false; return true; }
  return false;
}

}  // namespace fg
