#include "src/common/run_history.h"

#include <cstdio>

namespace fg {

const char* history_status_name(HistoryStatus s) {
  switch (s) {
    case HistoryStatus::kOk: return "ok";
    case HistoryStatus::kMissing: return "missing";
    case HistoryStatus::kMalformed: return "malformed";
  }
  return "?";
}

HistoryStatus load_runs_history(const std::string& path, std::string* items) {
  items->clear();
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return HistoryStatus::kMissing;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  const size_t tag = text.find("\"runs\": [");
  if (tag == std::string::npos) return HistoryStatus::kMalformed;
  const size_t open = text.find('[', tag);
  const size_t close = text.find(']', open);
  if (open == std::string::npos || close == std::string::npos) {
    return HistoryStatus::kMalformed;
  }
  std::string body = text.substr(open + 1, close - open - 1);
  // Trim whitespace-only histories to empty (an empty array is still kOk).
  const size_t first = body.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return HistoryStatus::kOk;
  const size_t last = body.find_last_not_of(" \t\r\n,");
  *items = body.substr(first, last - first + 1);
  return HistoryStatus::kOk;
}

std::string append_run_record(const std::string& items,
                              const std::string& run_record) {
  if (items.empty()) return run_record;
  return items + ",\n    " + run_record;
}

}  // namespace fg
