#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/check.h"

namespace fg {

void Summary::add(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++n_;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::min() const {
  FG_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  FG_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

double SampleSet::mean() const {
  FG_CHECK(!samples_.empty());
  double s = 0.0;
  for (double v : samples_) s += v;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::percentile(double p) const {
  FG_CHECK(!samples_.empty());
  FG_CHECK(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double geomean(const std::vector<double>& values) {
  FG_CHECK(!values.empty());
  double acc = 0.0;
  for (double v : values) {
    FG_CHECK(v > 0.0);
    acc += std::log(v);
  }
  return std::exp(acc / static_cast<double>(values.size()));
}

std::string table_row(const std::string& name, const std::vector<double>& cols,
                      int name_width, int col_width, int precision) {
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%-*s", name_width, name.c_str());
  out += buf;
  for (double c : cols) {
    std::snprintf(buf, sizeof(buf), "%*.*f", col_width, precision, c);
    out += buf;
  }
  return out;
}

}  // namespace fg
