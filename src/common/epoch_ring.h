// Single-producer single-consumer ring with explicit epoch publication.
//
// The two-thread pipelined scheduler hands CDC traffic between the fast
// domain (producer) and the slow domain (consumer) only at epoch boundaries.
// This ring makes that handoff double-buffered by construction: each side
// works against a PRIVATE index plus a CACHED view of the other side's
// published index, and the shared atomics are touched only by the explicit
// publish/acquire calls the scheduler issues at barriers. Between barriers
// neither thread reads the other's live state — the producer appends behind
// its private tail against a frozen head, the consumer drains up to a frozen
// tail — which is exactly the property the epoch_barrier_test suite pins.
//
// Indices are monotonic u64 sequence numbers (never wrapped), so
// `tail - head` is the true occupancy and overflow is a non-issue at
// simulator timescales (2^64 pushes). Memory ordering: publish is a release
// store of the private index; acquire is an acquire load into the cache.
// Slot contents written before producer_publish() are therefore visible to
// any consumer read that follows consumer_acquire() observing that tail
// (release/acquire pairing on pub_tail_), and symmetrically a popped slot is
// only reusable by the producer after producer_acquire() observes the
// published head — by then the consumer has long copied the element out.
//
// No-overwrite proof: push() would collide with an unconsumed slot only if
// tail - head >= capacity; the producer gates on tail - head_cache < capacity
// and head_cache <= head always (the cache only lags), so the conservative
// check blocks first.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace fg {

template <typename T>
class EpochRing {
 public:
  explicit EpochRing(size_t capacity) : buf_(capacity) {
    FG_CHECK(capacity > 0);
  }

  size_t capacity() const { return buf_.size(); }

  // --- producer side (fast-domain thread only) -----------------------------

  bool can_push() const { return tail_ - head_cache_ < buf_.size(); }

  void push(const T& v) {
    FG_CHECK(can_push());
    buf_[tail_ % buf_.size()] = v;
    ++tail_;
  }

  /// Occupancy as the producer sees it: private tail minus the head acquired
  /// at the last barrier. Exact (not just conservative) whenever the producer
  /// re-acquires at every boundary, because the consumer only pops at
  /// boundaries.
  size_t producer_size() const { return static_cast<size_t>(tail_ - head_cache_); }

  /// Oldest element not yet known-consumed (producer's view).
  const T& producer_front() const {
    FG_CHECK(producer_size() > 0);
    return buf_[head_cache_ % buf_.size()];
  }

  /// Element i behind the producer-view head (0 == producer_front).
  const T& producer_at(size_t i) const {
    FG_CHECK(i < producer_size());
    return buf_[(head_cache_ + i) % buf_.size()];
  }

  /// Barrier: make every push so far visible to the consumer.
  void producer_publish() {
    pub_tail_.store(tail_, std::memory_order_release);
  }

  /// Barrier: learn every pop the consumer has published.
  void producer_acquire() {
    head_cache_ = pub_head_.load(std::memory_order_acquire);
  }

  /// Lifetime total of pushes (producer thread only).
  u64 producer_pushes() const { return tail_; }

  // --- consumer side (slow-domain thread only) -----------------------------

  size_t consumer_size() const { return static_cast<size_t>(tail_cache_ - head_); }

  const T& front() const {
    FG_CHECK(consumer_size() > 0);
    return buf_[head_ % buf_.size()];
  }

  /// Element i behind the consumer head (0 == front).
  const T& at(size_t i) const {
    FG_CHECK(i < consumer_size());
    return buf_[(head_ + i) % buf_.size()];
  }

  T pop() {
    FG_CHECK(consumer_size() > 0);
    T v = buf_[head_ % buf_.size()];
    ++head_;
    return v;
  }

  /// Barrier: make every pop so far visible to the producer.
  void consumer_publish() {
    pub_head_.store(head_, std::memory_order_release);
  }

  /// Barrier: learn every push the producer has published.
  void consumer_acquire() {
    tail_cache_ = pub_tail_.load(std::memory_order_acquire);
  }

  /// Lifetime total of pops (consumer thread only).
  u64 consumer_pops() const { return head_; }

  // --- cross-thread-safe counters (published values only) ------------------

  /// Pushes visible to anyone (release-published). Safe from either thread.
  u64 published_pushes() const {
    return pub_tail_.load(std::memory_order_acquire);
  }

  /// Pops visible to anyone (release-published). Safe from either thread.
  u64 published_pops() const {
    return pub_head_.load(std::memory_order_acquire);
  }

  /// Post-join teardown: publish both private indices. Only valid once the
  /// other thread has been joined (the join provides the happens-before that
  /// makes both private indices readable here).
  void finalize() {
    pub_tail_.store(tail_, std::memory_order_relaxed);
    pub_head_.store(head_, std::memory_order_relaxed);
  }

 private:
  std::vector<T> buf_;

  // Producer-owned (no atomics: only the producer thread touches these).
  u64 tail_ = 0;
  u64 head_cache_ = 0;

  // Consumer-owned.
  u64 head_ = 0;
  u64 tail_cache_ = 0;

  // The only shared state, on separate cache lines to avoid false sharing.
  alignas(64) std::atomic<u64> pub_tail_{0};
  alignas(64) std::atomic<u64> pub_head_{0};
};

}  // namespace fg
