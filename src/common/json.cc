#include "src/common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fg::json {

Value Value::object() {
  Value v;
  v.kind = Kind::kObject;
  return v;
}

Value Value::array() {
  Value v;
  v.kind = Kind::kArray;
  return v;
}

Value Value::of(u64 n) {
  Value v;
  v.kind = Kind::kNumber;
  v.num = n;
  return v;
}

Value Value::of_double(double d) {
  Value v;
  v.kind = Kind::kNumber;
  v.is_float = true;
  v.dbl = d;
  return v;
}

Value Value::of_bool(bool b) {
  Value v;
  v.kind = Kind::kBool;
  v.b = b;
  return v;
}

Value Value::of_str(std::string s) {
  Value v;
  v.kind = Kind::kString;
  v.str = std::move(s);
  return v;
}

Value& Value::set(const std::string& key, Value v) {
  kind = Kind::kObject;
  obj[key] = std::move(v);
  return *this;
}

Value& Value::push(Value v) {
  kind = Kind::kArray;
  arr.push_back(std::move(v));
  return *this;
}

const Value* Value::get(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

u64 Value::get_u64(const std::string& key, u64 fallback) const {
  const Value* v = get(key);
  return (v != nullptr && v->kind == Kind::kNumber && !v->is_float)
             ? v->num
             : fallback;
}

std::string Value::get_str(const std::string& key) const {
  const Value* v = get(key);
  return (v != nullptr && v->kind == Kind::kString) ? v->str : std::string{};
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  const Value* v = get(key);
  return (v != nullptr && v->kind == Kind::kBool) ? v->b : fallback;
}

double Value::get_double(const std::string& key, double fallback) const {
  const Value* v = get(key);
  if (v == nullptr || v->kind != Kind::kNumber) return fallback;
  return v->is_float ? v->dbl : static_cast<double>(v->num);
}

namespace {

struct Parser {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool literal(const char* s) {
    const char* q = p;
    while (*s != '\0') {
      if (q >= end || *q != *s) return false;
      ++q;
      ++s;
    }
    p = q;
    return true;
  }

  bool parse_string(std::string* out) {
    if (p >= end || *p != '"') return false;
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return false;
        switch (*p) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case '/': out->push_back('/'); break;
          default: return false;  // subset: no \u etc.
        }
        ++p;
      } else {
        out->push_back(*p++);
      }
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool parse_number(Value* out) {
    // Scan the token first: digits only → exact u64 (overflow is an error);
    // '.' / exponent present → double. Grammar: digits ['.' digits]
    // [('e'|'E') ['+'|'-'] digits].
    const char* q = p;
    bool is_float = false;
    auto digits = [&] {
      const char* start = q;
      while (q < end && std::isdigit(static_cast<unsigned char>(*q))) ++q;
      return q != start;
    };
    if (!digits()) return false;
    if (q < end && *q == '.') {
      is_float = true;
      ++q;
      if (!digits()) return false;
    }
    if (q < end && (*q == 'e' || *q == 'E')) {
      is_float = true;
      ++q;
      if (q < end && (*q == '+' || *q == '-')) ++q;
      if (!digits()) return false;
    }
    out->kind = Value::Kind::kNumber;
    if (is_float) {
      char* after = nullptr;
      const std::string tok(p, q);
      out->is_float = true;
      out->dbl = std::strtod(tok.c_str(), &after);
      if (after != tok.c_str() + tok.size() || !std::isfinite(out->dbl)) {
        return false;  // malformed mantissa/exponent, or overflow to inf
      }
      p = q;
      return true;
    }
    u64 v = 0;
    for (const char* d = p; d < q; ++d) {
      const u64 digit = static_cast<u64>(*d - '0');
      if (v > (~u64{0} - digit) / 10) return false;  // u64 overflow
      v = v * 10 + digit;
    }
    out->num = v;
    p = q;
    return true;
  }

  bool parse_value(Value* out) {
    skip_ws();
    if (p >= end) return false;
    if (*p == '{') {
      ++p;
      out->kind = Value::Kind::kObject;
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      while (true) {
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (p >= end || *p != ':') return false;
        ++p;
        Value v;
        if (!parse_value(&v)) return false;
        // Duplicate keys: last one wins, matching Value::set and the
        // conventional JSON-parser behavior.
        out->obj.insert_or_assign(std::move(key), std::move(v));
        skip_ws();
        if (p >= end) return false;
        if (*p == ',') {
          ++p;
          skip_ws();
          continue;  // strict: exactly one comma between members
        }
        if (*p == '}') {
          ++p;
          return true;
        }
        return false;  // missing comma / trailing garbage
      }
    }
    if (*p == '[') {
      ++p;
      out->kind = Value::Kind::kArray;
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      while (true) {
        Value v;
        if (!parse_value(&v)) return false;
        out->arr.push_back(std::move(v));
        skip_ws();
        if (p >= end) return false;
        if (*p == ',') {
          ++p;
          skip_ws();
          continue;
        }
        if (*p == ']') {
          ++p;
          return true;
        }
        return false;
      }
    }
    if (*p == '"') {
      out->kind = Value::Kind::kString;
      return parse_string(&out->str);
    }
    if (literal("true")) {
      out->kind = Value::Kind::kBool;
      out->b = true;
      return true;
    }
    if (literal("false")) {
      out->kind = Value::Kind::kBool;
      out->b = false;
      return true;
    }
    if (literal("null")) {
      out->kind = Value::Kind::kNull;
      return true;
    }
    if (std::isdigit(static_cast<unsigned char>(*p))) {
      return parse_number(out);
    }
    return false;  // subset: no negative numbers in our formats
  }
};

void dump_to(const Value& v, int indent, int level, std::string* out) {
  const std::string pad =
      indent > 0 ? std::string(static_cast<size_t>(indent) * (level + 1), ' ')
                 : std::string{};
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<size_t>(indent) * level, ' ')
                 : std::string{};
  const char* nl = indent > 0 ? "\n" : "";
  const char* sep = indent > 0 ? ": " : ":";
  char buf[40];
  switch (v.kind) {
    case Value::Kind::kNull:
      *out += "null";
      break;
    case Value::Kind::kBool:
      *out += v.b ? "true" : "false";
      break;
    case Value::Kind::kNumber:
      if (v.is_float) {
        // %.17g round-trips every finite double exactly through strtod.
        std::snprintf(buf, sizeof(buf), "%.17g", v.dbl);
      } else {
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v.num));
      }
      *out += buf;
      break;
    case Value::Kind::kString:
      *out += '"';
      *out += escape(v.str);
      *out += '"';
      break;
    case Value::Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const Value& e : v.arr) {
        if (!first) *out += indent > 0 ? "," : ", ";
        first = false;
        *out += nl;
        *out += pad;
        dump_to(e, indent, level + 1, out);
      }
      if (!v.arr.empty() && indent > 0) {
        *out += nl;
        *out += close_pad;
      }
      *out += ']';
      break;
    }
    case Value::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [k, e] : v.obj) {
        if (!first) *out += indent > 0 ? "," : ", ";
        first = false;
        *out += nl;
        *out += pad;
        *out += '"';
        *out += escape(k);
        *out += '"';
        *out += sep;
        dump_to(e, indent, level + 1, out);
      }
      if (!v.obj.empty() && indent > 0) {
        *out += nl;
        *out += close_pad;
      }
      *out += '}';
      break;
    }
  }
}

}  // namespace

bool parse(const std::string& text, Value* out) {
  Parser parser{text.data(), text.data() + text.size()};
  if (!parser.parse_value(out)) return false;
  parser.skip_ws();
  return parser.p == parser.end;
}

std::string dump(const Value& v, int indent) {
  std::string out;
  dump_to(v, indent, 0, &out);
  return out;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace fg::json
