#include "src/common/env.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace fg {

std::optional<u64> parse_u64_strict(const char* s) {
  if (s == nullptr || *s == '\0') return std::nullopt;
  u64 v = 0;
  for (const char* p = s; *p != '\0'; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) return std::nullopt;
    const u64 digit = static_cast<u64>(*p - '0');
    if (v > (~u64{0} - digit) / 10) return std::nullopt;  // u64 overflow
    v = v * 10 + digit;
  }
  return v;
}

namespace {

[[noreturn]] void die(const char* name, const char* text, const char* why,
                      const char* expected = "a decimal unsigned integer") {
  std::fprintf(stderr,
               "FATAL: environment variable %s=\"%s\" is %s; expected %s. "
               "Unset it or fix the value.\n",
               name, text, why, expected);
  std::abort();
}

}  // namespace

u64 env_u64_or(const char* name, u64 fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const std::optional<u64> parsed = parse_u64_strict(v);
  if (!parsed) die(name, v, "not a valid u64 (malformed or overflowing)");
  return *parsed;
}

u32 env_u32_or(const char* name, u32 fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const std::optional<u64> parsed = parse_u64_strict(v);
  if (!parsed) die(name, v, "not a valid u64 (malformed or overflowing)");
  if (*parsed > 0xffff'ffffull) die(name, v, "out of u32 range");
  return static_cast<u32>(*parsed);
}

bool env_flag01(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  if (v[0] == '0' && v[1] == '\0') return false;
  if (v[0] == '1' && v[1] == '\0') return true;
  die(name, v, "not a valid mode flag", "\"0\" or \"1\"");
}

}  // namespace fg
