// Runtime-toggleable structural invariant checking.
//
// FG_CHECK (check.h) guards *preconditions* that must hold in every build —
// it is always on and always aborts. FG_INVARIANT guards *structural
// invariants* that are redundant with correct operation (occupancy
// accounting, handshake monotonicity, packet conservation): they are
// compiled into Debug builds (or any build with FIREGUARD_INVARIANTS=ON),
// cost nothing in Release, and can be toggled or redirected at run time:
//
//   * fg::inv::set_enabled(false)   — skip evaluation entirely (also the
//     FG_INVARIANTS=0 environment variable);
//   * fg::inv::set_abort_on_violation(false) — record violations (counter +
//     ring of messages) instead of aborting, so the fuzz driver and the
//     invariant tests can observe them.
//
// Every evaluated check bumps checks(); every failed one bumps violations().
// The counters are atomics: scenario runs are single-threaded but the sweep
// runner executes points across worker threads.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "src/common/types.h"

#if !defined(FG_INVARIANTS_COMPILED)
#if !defined(NDEBUG) || defined(FIREGUARD_FORCE_INVARIANTS)
#define FG_INVARIANTS_COMPILED 1
#else
#define FG_INVARIANTS_COMPILED 0
#endif
#endif

namespace fg::inv {

/// True when this build type evaluates FG_INVARIANT at all.
constexpr bool compiled_in() { return FG_INVARIANTS_COMPILED != 0; }

/// Runtime switch. Defaults to on (compiled-in builds only); the
/// FG_INVARIANTS environment variable (0 / empty = off) overrides the
/// default on first use.
bool enabled();
void set_enabled(bool on);

/// Abort (default) vs. record-and-continue on violation.
bool abort_on_violation();
void set_abort_on_violation(bool abort_run);

u64 checks();
u64 violations();
void reset_counters();

/// Violation messages captured in record mode: the FIRST 16 since the last
/// reset_counters() (the earliest violations are the informative ones; the
/// fuzz driver resets per scenario so every failure's messages survive).
std::vector<std::string> recent_violations();

namespace detail {
extern std::atomic<u64> g_checks;
void violation(const char* name, const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace fg::inv

// `name` is a short stable label ("filter.occupancy", "noc.conservation")
// used in violation reports and fuzz artifacts.
#if FG_INVARIANTS_COMPILED
#define FG_INVARIANT(expr, name)                                          \
  do {                                                                    \
    if (::fg::inv::enabled()) {                                           \
      ::fg::inv::detail::g_checks.fetch_add(1, std::memory_order_relaxed); \
      if (!(expr)) {                                                      \
        ::fg::inv::detail::violation(name, #expr, __FILE__, __LINE__);    \
      }                                                                   \
    }                                                                     \
  } while (0)
#else
#define FG_INVARIANT(expr, name) \
  do {                           \
  } while (0)
#endif
