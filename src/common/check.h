// Lightweight always-on invariant checking.
//
// Simulator state machines have many internal invariants (queue occupancy,
// bitmap consistency, in-order commit) whose violation should abort loudly in
// every build type, not silently corrupt results.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace fg::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "FG_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace fg::detail

#define FG_CHECK(expr)                                           \
  do {                                                           \
    if (!(expr)) ::fg::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)
