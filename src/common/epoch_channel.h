// Two-thread command/acknowledge gate for the epoch-pipelined scheduler.
//
// The fast-domain thread (producer) submits at most ONE in-flight command to
// the slow-domain thread (consumer) and later collects the acknowledgment.
// Because the protocol never has two commands outstanding, a single Cmd slot
// and a single Ack slot are race-free without locks: the producer only
// writes cmd_ after observing done_ == seq of the previous command (so the
// consumer is finished reading it), and the consumer only writes ack_ before
// release-storing done_, which the producer acquire-loads before reading
// ack_. The two sequence counters go_ / done_ carry all the ordering:
//
//   producer: cmd_ = c;  go_.store(seq, release)
//   consumer: go_.load(acquire) == seq;  read cmd_;  work;
//             ack_ = a;  done_.store(seq, release)
//   producer: done_.load(acquire) == seq;  read ack_
//
// This release/acquire chain also orders every OTHER memory write the
// producer made before submit() (e.g. shadow-heap updates from committed
// split-kernel instructions) before the consumer's work — the property the
// pipelined scheduler leans on to keep split kernels bit-identical.
//
// Waiting: bounded spin (with a pause hint) then std::this_thread::yield().
// The yield fallback matters on oversubscribed or single-core hosts, where a
// pure spin would deadlock-by-starvation against the very thread it waits
// for. Spin iterations observed are reported so SchedStats can surface
// barrier contention.
#pragma once

#include <atomic>
#include <thread>

#include "src/common/types.h"

namespace fg {

namespace detail {
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}
}  // namespace detail

template <typename Cmd, typename Ack>
class EpochChannel {
 public:
  // --- producer side (fast-domain thread) ----------------------------------

  /// True when no command is in flight (the previous one was collected).
  bool idle() const { return submitted_ == collected_; }

  /// Submit the next command. Requires idle(): at most one in flight.
  void submit(const Cmd& cmd) {
    cmd_ = cmd;
    ++submitted_;
    go_.store(submitted_, std::memory_order_release);
  }

  /// Block until the in-flight command is acknowledged; returns the ack.
  /// Adds the spin iterations waited to *spins (may be null).
  Ack collect(u64* spins) {
    wait_for(done_, submitted_, spins);
    ++collected_;
    return ack_;
  }

  /// True when the in-flight command has already been acknowledged (a
  /// collect() would not block).
  bool ready() const {
    return done_.load(std::memory_order_acquire) == submitted_;
  }

  // --- consumer side (slow-domain thread) ----------------------------------

  /// Block until the next command arrives and copy it out.
  void next(Cmd* cmd, u64* spins) {
    wait_for(go_, served_ + 1, spins);
    *cmd = cmd_;
  }

  /// Acknowledge the command most recently returned by next().
  void ack(const Ack& a) {
    ack_ = a;
    ++served_;
    done_.store(served_, std::memory_order_release);
  }

 private:
  static void wait_for(const std::atomic<u64>& var, u64 want, u64* spins) {
    u64 n = 0;
    for (u32 spin = 0; var.load(std::memory_order_acquire) != want; ++n) {
      if (++spin < 200) {
        detail::cpu_pause();
      } else {
        // Oversubscribed (or single-core) host: hand the core to the thread
        // we are waiting for instead of burning its timeslice.
        std::this_thread::yield();
      }
    }
    if (spins != nullptr) *spins += n;
  }

  // Producer-owned bookkeeping.
  u64 submitted_ = 0;
  u64 collected_ = 0;

  // Consumer-owned bookkeeping.
  u64 served_ = 0;

  // Single slots, guarded by the go_/done_ sequence protocol above.
  Cmd cmd_{};
  Ack ack_{};

  alignas(64) std::atomic<u64> go_{0};
  alignas(64) std::atomic<u64> done_{0};
};

}  // namespace fg
