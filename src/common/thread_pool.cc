#include "src/common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace fg {

ThreadPool::ThreadPool(u32 n_threads) {
  const u32 n = std::max<u32>(1, n_threads);
  workers_.reserve(n);
  for (u32 i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

u32 ThreadPool::default_jobs() {
  const char* v = std::getenv("FG_JOBS");
  if (v != nullptr && *v != '\0') {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) return static_cast<u32>(n);
  }
  const u32 hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace fg
