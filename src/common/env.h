// Strict environment-variable parsing.
//
// Simulation knobs read from the environment (FG_TRACE_LEN, FG_ATTACKS, …)
// must never be silently wrong: a typo like FG_TRACE_LEN=150k or an
// overflowing value used to fall back to whatever strtoull left behind and
// quietly simulate the wrong experiment. Here a malformed value is a loud,
// immediate failure that names the variable and the offending text.
#pragma once

#include <optional>

#include "src/common/types.h"

namespace fg {

/// Parse a strictly-decimal u64: the ENTIRE string must be digits (no sign,
/// no whitespace, no suffix) and the value must fit in 64 bits.
/// Returns nullopt otherwise.
std::optional<u64> parse_u64_strict(const char* s);

/// Read env var `name` as a strict decimal u64. Unset or empty → `fallback`.
/// Malformed or overflowing → prints a loud error naming the variable and
/// aborts (this is a configuration error; simulating anyway would silently
/// produce results for the wrong experiment).
u64 env_u64_or(const char* name, u64 fallback);

/// Same, for knobs that must fit in 32 bits (e.g. FG_ATTACKS): additionally
/// aborts when the value exceeds u32 range instead of truncating.
u32 env_u32_or(const char* name, u32 fallback);

/// Read env var `name` as a strict boolean knob: unset or empty → `fallback`,
/// "0" → false, "1" → true. Anything else (FG_PIPELINE=yes, =true, =2, …)
/// aborts loudly — mode selectors must never be silently misread, because a
/// run in the wrong scheduler mode still produces plausible-looking numbers.
bool env_flag01(const char* name, bool fallback);

}  // namespace fg
