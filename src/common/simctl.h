// Global simulation-scheduling controls.
//
// The SoC main loop and the bare-core `run_to_end` default to the
// event-driven scheduler (skip provably dead cycles in bulk, bit-identical
// results). `FG_CYCLE_EXACT=1` in the environment — or set_cycle_exact(true)
// from a test — forces the historical one-cycle-at-a-time loop, which is the
// reference the differential suite compares the event-driven path against.
#pragma once

#include <atomic>
#include <cstdlib>

#include "src/common/types.h"

namespace fg {

/// Horizon sentinel: no event will ever occur on this component again.
inline constexpr Cycle kNoEvent = ~Cycle{0};

namespace detail {
inline std::atomic<int>& cycle_exact_flag() {
  // -1 = uninitialised (read FG_CYCLE_EXACT on first use), 0/1 = forced.
  static std::atomic<int> flag{-1};
  return flag;
}
}  // namespace detail

/// True when the one-cycle-at-a-time reference loop is forced.
inline bool cycle_exact() {
  int v = detail::cycle_exact_flag().load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("FG_CYCLE_EXACT");
    v = (e != nullptr && *e != '\0' && *e != '0') ? 1 : 0;
    detail::cycle_exact_flag().store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

/// Test hook: force or release the cycle-exact reference loop.
inline void set_cycle_exact(bool exact) {
  detail::cycle_exact_flag().store(exact ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace fg
