// Global simulation-scheduling controls.
//
// The SoC main loop and the bare-core `run_to_end` default to the
// event-driven scheduler (skip provably dead cycles in bulk, bit-identical
// results). `FG_CYCLE_EXACT=1` in the environment — or set_cycle_exact(true)
// from a test — forces the historical one-cycle-at-a-time loop, which is the
// reference the differential suite compares the event-driven path against.
//
// `FG_PIPELINE=1` — or set_pipeline(true) — selects the two-thread epoch
// pipeline for `Soc::run()`: the fast domain (core + filter/mapper) and the
// slow domain (µcore fabric + NoC) run concurrently, exchanging CDC traffic
// at barrier-synced epoch boundaries, bit-identical to serial. FG_CYCLE_EXACT
// takes precedence: the stepped reference loop is always serial.
#pragma once

#include <atomic>
#include <cstdlib>

#include "src/common/env.h"
#include "src/common/types.h"

namespace fg {

/// Horizon sentinel: no event will ever occur on this component again.
inline constexpr Cycle kNoEvent = ~Cycle{0};

namespace detail {
inline std::atomic<int>& cycle_exact_flag() {
  // -1 = uninitialised (read FG_CYCLE_EXACT on first use), 0/1 = forced.
  static std::atomic<int> flag{-1};
  return flag;
}
}  // namespace detail

/// True when the one-cycle-at-a-time reference loop is forced.
inline bool cycle_exact() {
  int v = detail::cycle_exact_flag().load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("FG_CYCLE_EXACT");
    v = (e != nullptr && *e != '\0' && *e != '0') ? 1 : 0;
    detail::cycle_exact_flag().store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

/// Test hook: force or release the cycle-exact reference loop.
inline void set_cycle_exact(bool exact) {
  detail::cycle_exact_flag().store(exact ? 1 : 0, std::memory_order_relaxed);
}

namespace detail {
inline std::atomic<int>& pipeline_flag() {
  // -1 = uninitialised (read FG_PIPELINE on first use), 0/1 = forced.
  static std::atomic<int> flag{-1};
  return flag;
}
}  // namespace detail

/// True when the two-thread epoch pipeline is requested. Callers that also
/// honour FG_CYCLE_EXACT must check cycle_exact() first — the stepped
/// reference always runs serial (Soc::run does this).
inline bool pipeline_enabled() {
  int v = detail::pipeline_flag().load(std::memory_order_relaxed);
  if (v < 0) {
    v = env_flag01("FG_PIPELINE", false) ? 1 : 0;
    detail::pipeline_flag().store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

/// Test hook: force or release the pipelined scheduler.
inline void set_pipeline(bool pipelined) {
  detail::pipeline_flag().store(pipelined ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace fg
