// Fundamental integer aliases and shared simple types used across FireGuard.
#pragma once

#include <cstdint>
#include <cstddef>

namespace fg {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulation time, in cycles of whichever clock domain the holder lives in.
using Cycle = u64;

/// Marker for "no register" in trace records.
inline constexpr u8 kNoReg = 0xff;

/// Extract bits [hi:lo] of a 64-bit value (inclusive, hi >= lo, hi < 64).
constexpr u64 bits(u64 v, unsigned hi, unsigned lo) {
  const unsigned width = hi - lo + 1;
  if (width >= 64) return v >> lo;
  return (v >> lo) & ((u64{1} << width) - 1);
}

/// True if v is a power of two (v > 0).
constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

/// Integer log2 for powers of two.
constexpr unsigned log2_exact(u64 v) {
  unsigned n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

/// Ceiling division for unsigned integers.
constexpr u64 ceil_div(u64 a, u64 b) { return (a + b - 1) / b; }

}  // namespace fg
