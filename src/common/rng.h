// Deterministic pseudo-random number generation.
//
// All stochastic elements of the simulator (workload synthesis, attack
// injection, scheduling jitter) draw from explicitly seeded xorshift64*
// streams so that every experiment is bit-reproducible.
#pragma once

#include "src/common/types.h"

namespace fg {

/// xorshift64* generator. Deliberately tiny and header-only: the simulator
/// creates many independent streams (one per workload, one per injector).
class Rng {
 public:
  explicit Rng(u64 seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  /// Next raw 64-bit value.
  u64 next() {
    u64 x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  u64 below(u64 bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  u64 range(u64 lo, u64 hi) { return lo + below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Geometric-ish positive length with the given mean (>= 1).
  u64 geometric(double mean) {
    if (mean <= 1.0) return 1;
    u64 n = 1;
    const double cont = 1.0 - 1.0 / mean;
    while (chance(cont) && n < 64 * static_cast<u64>(mean)) ++n;
    return n;
  }

  /// Fork an independent stream (e.g. per subcomponent).
  Rng fork() { return Rng(next() ^ 0xd1342543de82ef95ull); }

 private:
  u64 state_;
};

}  // namespace fg
