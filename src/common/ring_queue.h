// Fixed-capacity FIFO ring queue.
//
// Models every hardware queue in FireGuard: the filter's paired FIFOs, the
// CDC FIFOs, the µcores' message queues, the ROB-side structures. Capacity is
// a run-time parameter because the paper sweeps queue sizes.
#pragma once

#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace fg {

template <typename T>
class RingQueue {
 public:
  explicit RingQueue(size_t capacity) : buf_(capacity) { FG_CHECK(capacity > 0); }

  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == buf_.size(); }
  size_t size() const { return size_; }
  size_t capacity() const { return buf_.size(); }
  size_t free_slots() const { return buf_.size() - size_; }

  /// Push to the tail. Caller must check !full() (hardware would stall).
  void push(const T& v) {
    FG_CHECK(!full());
    buf_[tail_] = v;
    tail_ = advance(tail_);
    ++size_;
  }

  /// Allocate the tail slot in place and return it (avoids copying large
  /// elements through push). The slot holds the stale previous occupant;
  /// the caller must assign every field. Caller must check !full().
  T& push_slot() {
    FG_CHECK(!full());
    T& slot = buf_[tail_];
    tail_ = advance(tail_);
    ++size_;
    return slot;
  }

  /// Pop from the head.
  T pop() {
    FG_CHECK(!empty());
    T v = buf_[head_];
    head_ = advance(head_);
    --size_;
    return v;
  }

  const T& front() const {
    FG_CHECK(!empty());
    return buf_[head_];
  }

  T& front() {
    FG_CHECK(!empty());
    return buf_[head_];
  }

  /// Element i positions behind the head (0 == front).
  const T& at(size_t i) const {
    FG_CHECK(i < size_);
    return buf_[(head_ + i) % buf_.size()];
  }

  void clear() {
    head_ = tail_ = 0;
    size_ = 0;
  }

 private:
  size_t advance(size_t p) const { return (p + 1 == buf_.size()) ? 0 : p + 1; }

  std::vector<T> buf_;
  size_t head_ = 0;
  size_t tail_ = 0;
  size_t size_ = 0;
};

}  // namespace fg
