// Carry-forward loader for the `"runs": [ ... ]` history array that
// tools/simspeed appends to BENCH_sim_speed.json (schema fireguard/
// sim_speed/v2). Factored out of the tool so the append path is unit-testable
// and so --check can distinguish "no history file" (a CI misconfiguration
// that must fail loudly) from "history present" — silently starting a fresh
// history used to make a missing/unreadable file exit 0 and erase the
// trajectory the gate exists to track.
#pragma once

#include <string>

namespace fg {

enum class HistoryStatus {
  kOk,        // file read and a runs[] array extracted (possibly empty)
  kMissing,   // file absent or unreadable
  kMalformed, // file read but no "runs": [ ... ] array found
};

const char* history_status_name(HistoryStatus s);

/// Reads `path` and extracts the comma-joined items of its `"runs"` array
/// into `*items` (empty string for an empty array). Text-level extraction:
/// the file is simspeed's own output format. On kMissing/kMalformed, *items
/// is cleared.
HistoryStatus load_runs_history(const std::string& path, std::string* items);

/// Appends `run_record` (one JSON object, no trailing comma) to a history
/// item string, returning the new comma-joined item list.
std::string append_run_record(const std::string& items,
                              const std::string& run_record);

}  // namespace fg
