// Carry-forward loader for the `"runs": [ ... ]` history array that
// tools/simspeed appends to BENCH_sim_speed.json (schema fireguard/
// sim_speed/v4; v2/v3 histories read identically — the loader is
// text-level and the record helpers skip fields a record predates).
// Factored out of the tool so the append path is unit-testable
// and so --check can distinguish "no history file" (a CI misconfiguration
// that must fail loudly) from "history present" — silently starting a fresh
// history used to make a missing/unreadable file exit 0 and erase the
// trajectory the gate exists to track.
#pragma once

#include <string>
#include <vector>

namespace fg {

enum class HistoryStatus {
  kOk,        // file read and a runs[] array extracted (possibly empty)
  kMissing,   // file absent or unreadable
  kMalformed, // file read but no "runs": [ ... ] array found
};

const char* history_status_name(HistoryStatus s);

/// Reads `path` and extracts the comma-joined items of its `"runs"` array
/// into `*items` (empty string for an empty array). Text-level extraction:
/// the file is simspeed's own output format. On kMissing/kMalformed, *items
/// is cleared.
HistoryStatus load_runs_history(const std::string& path, std::string* items);

/// Appends `run_record` (one JSON object, no trailing comma) to a history
/// item string, returning the new comma-joined item list.
std::string append_run_record(const std::string& items,
                              const std::string& run_record);

/// Splits a comma-joined history item string back into individual run
/// records (top-level `{...}` objects; brace depth is tracked so nested
/// arrays — e.g. the v3 skip-length histogram — don't split a record).
/// The inverse of repeated append_run_record.
std::vector<std::string> split_run_records(const std::string& items);

/// Reads the numeric value of `"key"` from one run record. Returns false
/// when the key is absent — the v2→v3 migration contract: a v3 reader walks
/// a mixed history and simply skips records that predate a field, it never
/// misparses or rejects them.
bool run_record_number(const std::string& record, const std::string& key,
                       double* out);

/// Reads a true/false value of `"key"` from one run record; false (with
/// `*out` untouched) when absent or not a bool literal.
bool run_record_flag(const std::string& record, const std::string& key,
                     bool* out);

/// Move a malformed history file aside to `path + ".corrupt"` (replacing a
/// previous quarantine of the same path) so a fresh history can start
/// without destroying the evidence. Returns the quarantine path, or "" when
/// the move failed. Callers must report the move loudly — silent recovery
/// from a corrupt history erases the trajectory the file exists to track.
std::string quarantine_history(const std::string& path);

}  // namespace fg
