#include "src/common/invariant.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace fg::inv {

namespace {

std::atomic<int>& enabled_flag() {
  // -1 = uninitialised (read FG_INVARIANTS on first use), 0/1 = decided.
  static std::atomic<int> flag{-1};
  return flag;
}

std::atomic<bool>& abort_flag() {
  static std::atomic<bool> flag{true};
  return flag;
}

std::atomic<u64>& violation_count() {
  static std::atomic<u64> count{0};
  return count;
}

// Small ring of recent violation messages (record mode). Guarded by a mutex:
// violations are exceptional, so contention is irrelevant.
constexpr size_t kKeep = 16;
std::mutex& ring_mutex() {
  static std::mutex mu;
  return mu;
}
std::vector<std::string>& ring() {
  static std::vector<std::string> r;
  return r;
}

}  // namespace

bool enabled() {
  if (!compiled_in()) return false;
  int v = enabled_flag().load(std::memory_order_relaxed);
  if (v < 0) {
    // Default on when compiled in; FG_INVARIANTS=0 (or set-but-empty,
    // matching the header doc) turns them off.
    const char* e = std::getenv("FG_INVARIANTS");
    v = (e != nullptr && (*e == '\0' || *e == '0')) ? 0 : 1;
    enabled_flag().store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_enabled(bool on) {
  enabled_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

bool abort_on_violation() { return abort_flag().load(std::memory_order_relaxed); }

void set_abort_on_violation(bool abort_run) {
  abort_flag().store(abort_run, std::memory_order_relaxed);
}

u64 checks() { return detail::g_checks.load(std::memory_order_relaxed); }

u64 violations() { return violation_count().load(std::memory_order_relaxed); }

void reset_counters() {
  detail::g_checks.store(0, std::memory_order_relaxed);
  violation_count().store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ring_mutex());
  ring().clear();
}

std::vector<std::string> recent_violations() {
  std::lock_guard<std::mutex> lock(ring_mutex());
  return ring();
}

namespace detail {

std::atomic<u64> g_checks{0};

void violation(const char* name, const char* expr, const char* file, int line) {
  violation_count().fetch_add(1, std::memory_order_relaxed);
  char buf[512];
  std::snprintf(buf, sizeof(buf), "FG_INVARIANT [%s] violated: %s at %s:%d",
                name, expr, file, line);
  if (abort_flag().load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "%s\n", buf);
    std::abort();
  }
  std::lock_guard<std::mutex> lock(ring_mutex());
  if (ring().size() < kKeep) ring().emplace_back(buf);
}

}  // namespace detail

}  // namespace fg::inv
