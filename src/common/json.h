// fg_json: the repository's one JSON reader/writer.
//
// Promoted from the fuzzing subsystem's minijson so every layer — the
// experiment spec (src/api), the baseline cache key (src/soc), the stat
// snapshots and golden corpus (src/testing), and the CLI (tools/fgsim) —
// parses and emits the same dialect with the same exactness guarantees:
//
//  * Unsigned integers parse as u64 and round-trip bit-exactly (a double
//    would lose precision past 2^53, and seeds are full 64-bit values).
//    Integer overflow is a PARSE ERROR, never a silent saturation.
//  * Floating-point numbers ('.' or exponent present) parse as double and
//    are emitted with %.17g, which round-trips every finite double exactly.
//  * Strings support the \" \\ \/ \n \t \r escapes; any other escape (and
//    any truncated input) is a parse error. Commas are REQUIRED between
//    members — a missing, doubled, or trailing comma is a syntax error,
//    never silently accepted. Duplicate object keys: last one wins
//    (matching Value::set).
//  * Objects serialize with sorted keys, so dump(parse(dump(v))) == dump(v)
//    — the dump of a Value is a canonical form usable as a cache key.
//
// This is intentionally NOT a general JSON library: no \uXXXX escapes, no
// negative numbers (nothing in the simulator's formats is signed), and no
// NaN/Inf (not representable in JSON at all).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace fg::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  u64 num = 0;        // integer numbers (is_float == false)
  double dbl = 0.0;   // floating-point numbers (is_float == true)
  bool is_float = false;
  std::string str;
  std::vector<Value> arr;
  // Sorted keys give the canonical serialization; lookups dominate anyway.
  std::map<std::string, Value> obj;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  // --- builders (for writers: spec export, snapshots, cache keys) ---
  static Value object();
  static Value array();
  static Value of(u64 v);
  static Value of_double(double v);
  static Value of_bool(bool v);
  static Value of_str(std::string v);

  /// Object field insert/overwrite; returns *this for chaining.
  Value& set(const std::string& key, Value v);
  /// Array append.
  Value& push(Value v);

  // --- accessors ---
  /// Object field access; returns nullptr when absent or not an object.
  const Value* get(const std::string& key) const;
  /// Convenience: field's u64 (fallback when absent), string ("" when
  /// absent), bool / double (fallback when absent or wrong kind). A double
  /// field accepts an integer number too (12.0 canonically serializes as
  /// "12" and reparses as an integer).
  u64 get_u64(const std::string& key, u64 fallback = 0) const;
  std::string get_str(const std::string& key) const;
  bool get_bool(const std::string& key, bool fallback = false) const;
  double get_double(const std::string& key, double fallback = 0.0) const;
};

/// Parse `text` into `*out`. Returns false on any syntax error, truncated
/// input, bad escape, or integer/double overflow.
bool parse(const std::string& text, Value* out);

/// Serialize. indent == 0: one-line canonical form (the cache-key form);
/// indent > 0: pretty-printed with `indent` spaces per level.
std::string dump(const Value& v, int indent = 0);

/// Escape a string for embedding in JSON output (quotes not included).
std::string escape(const std::string& s);

}  // namespace fg::json
