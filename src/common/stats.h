// Statistics helpers used by the experiment harness: running summaries,
// log-scale latency histograms (Figure 8), and geometric means (every
// slowdown table in the paper reports geomean).
#pragma once

#include <string>
#include <vector>

#include "src/common/types.h"

namespace fg {

/// Running summary of a scalar sample stream.
class Summary {
 public:
  void add(double v);
  size_t count() const { return n_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile calculator that retains samples (used for detection-latency
/// distributions, which are small: 50-100 attacks per run).
class SampleSet {
 public:
  void add(double v) { samples_.push_back(v); }
  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  /// p in [0,100]; linear interpolation between order statistics.
  double percentile(double p) const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Geometric mean of a vector of positive values (slowdowns).
double geomean(const std::vector<double>& values);

/// Render a fixed-width table row: name then columns with given precision.
std::string table_row(const std::string& name, const std::vector<double>& cols,
                      int name_width = 16, int col_width = 10, int precision = 3);

}  // namespace fg
