#include "src/api/campaign.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <future>
#include <thread>

#include "src/common/json.h"
#include "src/common/thread_pool.h"
#include "src/soc/config_json.h"
#include "src/store/faultfs.h"

#if !defined(_WIN32)
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace fg::api {

namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

void sleep_ms(double ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

u64 backoff_for(u64 base_ms, u32 attempt) {
  return base_ms << std::min<u32>(attempt, 10);
}

}  // namespace

std::string result_key(const ExperimentSpec& spec, bool with_baseline) {
  // Baseline attachment is part of the key: it changes the stored payload
  // (baseline_cycles / slowdown), so the same spec with and without the
  // baseline must not alias. For mode == baseline specs the flag is inert;
  // normalize it out so both settings share one entry.
  const bool b = with_baseline && spec.mode != Mode::kBaseline;
  return std::string("fireguard/outcome/v1|baseline=") + (b ? "1" : "0") +
         "|" + spec_canonical(spec);
}

std::string baseline_key(const ExperimentSpec& spec) {
  return "fireguard/baseline/v1|" +
         soc::baseline_subspec_json(spec.workload, spec.soc);
}

std::string campaign_hash(const ExperimentSpec& spec, bool with_baseline) {
  const bool b = with_baseline && spec.mode != Mode::kBaseline;
  return store::hash_hex(std::string("fireguard/campaign/v1|baseline=") +
                         (b ? "1" : "0") + "|" + spec_canonical(spec));
}

std::string outcome_payload(RunOutcome o) {
  // Zero the fields that depend on the machine and the moment rather than
  // the spec: wall clock, and the invariant-counter deltas (process-global,
  // so multi-worker runs attribute them arbitrarily). What remains is a
  // pure function of the spec — the property the bit-identical-resume
  // guarantee rests on.
  o.wall_ms = 0.0;
  o.snapshot.invariant_checks = 0;
  o.snapshot.invariant_violations = 0;
  return outcome_json(o, 0);
}

PointExecutor::BaselineHooks store_baseline_hooks(store::ResultStore* store) {
  PointExecutor::BaselineHooks h;
  h.lookup = [store](const ExperimentSpec& s, Cycle* cycles) {
    std::string payload;
    if (store->get(baseline_key(s), &payload) !=
        store::ResultStore::GetStatus::kHit) {
      return false;
    }
    json::Value v;
    if (!json::parse(payload, &v) || !v.is_object()) return false;
    *cycles = v.get_u64("baseline_cycles", 0);
    return *cycles != 0;
  };
  h.publish = [store](const ExperimentSpec& s, Cycle cycles) {
    json::Value v = json::Value::object();
    v.set("baseline_cycles", json::Value::of(cycles));
    std::string err;
    // Best effort: a failed baseline publish only costs a recompute in some
    // later process, never correctness.
    store->put(baseline_key(s), json::dump(v, 0), &err);
  };
  return h;
}

bool execute_point_to_store(const GridPoint& p, u64 fault_index, u32 attempt,
                            bool with_baseline, store::ResultStore* store,
                            std::string* payload, std::string* why) {
  if (auto f = store::point_fault(fault_index, attempt)) {
    switch (f->kind) {
      case store::FaultKind::kCrash:
        std::fprintf(stderr,
                     "FG_FAULT: injected crash at point %llu attempt %u\n",
                     static_cast<unsigned long long>(fault_index), attempt);
        std::fflush(stderr);
        std::_Exit(store::kFaultCrashExit);
      case store::FaultKind::kHang:
        // In isolate mode the watchdog SIGKILLs us mid-sleep; in-process we
        // just stall, then proceed (no safe way to interrupt a thread).
        sleep_ms(static_cast<double>(f->hang_ms));
        break;
      default:
        *why = "injected_point_fail";
        return false;
    }
  }
  PointExecutor exec(with_baseline);
  exec.set_baseline_hooks(store_baseline_hooks(store));
  RunOutcome o = exec.execute(p);
  std::string text = outcome_payload(std::move(o));
  std::string err;
  if (!store->put(result_key(p.spec, with_baseline), text, &err)) {
    *why = "publish_failed";
    std::fprintf(stderr, "fgsim: point %llu publish failed: %s\n",
                 static_cast<unsigned long long>(fault_index), err.c_str());
    return false;
  }
  if (payload != nullptr) *payload = std::move(text);
  return true;
}

CampaignRunner::CampaignRunner(ExperimentSpec spec, CampaignConfig cfg)
    : spec_(std::move(spec)), cfg_(cfg) {}

std::string CampaignRunner::point_key(u32 index) const {
  return result_key(points_[index].spec, cfg_.with_baseline);
}

bool CampaignRunner::init(std::string* err) {
  if (inited_) return true;
  if (cfg_.store_dir.empty()) {
    if (err) *err = "campaign: store directory not set";
    return false;
  }
  if (!expand_grid(spec_, &points_, err)) return false;
  payloads_.assign(points_.size(), "");
  stats_ = {};
  stats_.points = points_.size();
  const u32 jobs = cfg_.jobs > 0 ? cfg_.jobs : ThreadPool::default_jobs();
  workers_ =
      std::min(jobs, std::max<u32>(1, std::thread::hardware_concurrency()));
#if defined(_WIN32)
  cfg_.isolate = false;  // no fork; in-process mode only
#endif
  if (!store_.open(cfg_.store_dir, err)) return false;
  const std::string hash = campaign_hash(spec_, cfg_.with_baseline);
  if (!journal_.open(store_.campaigns_dir() + "/" + hash + ".journal", hash,
                     points_.size(), err)) {
    return false;
  }
  inited_ = true;
  return true;
}

void CampaignRunner::emit(u32 index, u32 attempt, const char* what) {
  if (!event_fn_) return;
  Event ev;
  ev.index = index;
  ev.attempt = attempt;
  ev.what = what;
  ev.completed = completed_;
  ev.total = points_.size();
  event_fn_(ev);
}

bool CampaignRunner::execute_and_publish(u32 index, u32 attempt,
                                         std::string* why) {
  std::string payload;
  if (!execute_point_to_store(points_[index], index, attempt,
                              cfg_.with_baseline, &store_, &payload, why)) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    payloads_[index] = std::move(payload);
  }
  return true;
}

void CampaignRunner::run_in_process(const std::vector<u32>& todo) {
  auto run_point = [this](u32 index) {
    for (u32 attempt = 0;; ++attempt) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        journal_.record_begin(index, attempt);
      }
      std::string why;
      if (execute_and_publish(index, attempt, &why)) {
        std::lock_guard<std::mutex> lock(mu_);
        journal_.record_done(index, /*cached=*/false);
        ++stats_.executed;
        ++completed_;
        emit(index, attempt, "run");
        return;
      }
      if (attempt + 1 >= cfg_.max_attempts) {
        std::lock_guard<std::mutex> lock(mu_);
        journal_.record_failed(index, why.empty() ? "failed" : why);
        ++stats_.failed;
        ++completed_;
        emit(index, attempt, "fail");
        return;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.retries;
        emit(index, attempt, "retry");
      }
      sleep_ms(static_cast<double>(backoff_for(cfg_.backoff_ms, attempt)));
    }
  };
  if (workers_ <= 1 || todo.size() <= 1) {
    for (const u32 i : todo) run_point(i);
    return;
  }
  ThreadPool pool(workers_);
  std::vector<std::future<void>> futures;
  futures.reserve(todo.size());
  for (const u32 i : todo) {
    futures.push_back(pool.submit([&run_point, i] { run_point(i); }));
  }
  for (auto& f : futures) f.get();
}

#if !defined(_WIN32)
void CampaignRunner::run_isolated(const std::vector<u32>& todo) {
  struct Pending {
    u32 index;
    u32 attempt;
    double ready_ms;  // backoff gate; 0 = immediately
  };
  struct Running {
    pid_t pid;
    u32 index;
    u32 attempt;
    double deadline_ms;  // 0 = no watchdog
    bool timed_out;
  };
  std::deque<Pending> queue;
  for (const u32 i : todo) queue.push_back({i, 0, 0.0});
  std::vector<Running> running;

  auto fail_or_requeue = [&](u32 index, u32 attempt, const char* why,
                             bool timed_out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (timed_out) ++stats_.timeouts;
    if (attempt + 1 < cfg_.max_attempts) {
      ++stats_.retries;
      emit(index, attempt, timed_out ? "timeout" : "retry");
      queue.push_back(
          {index, attempt + 1,
           now_ms() +
               static_cast<double>(backoff_for(cfg_.backoff_ms, attempt))});
    } else {
      journal_.record_failed(index, why);
      ++stats_.failed;
      ++completed_;
      emit(index, attempt, "fail");
    }
  };

  while (!queue.empty() || !running.empty()) {
    // Launch ready attempts into free slots.
    for (size_t qi = 0; qi < queue.size() && running.size() < workers_;) {
      if (queue[qi].ready_ms > now_ms()) {
        ++qi;
        continue;
      }
      const Pending p = queue[qi];
      queue.erase(queue.begin() + static_cast<long>(qi));
      {
        std::lock_guard<std::mutex> lock(mu_);
        journal_.record_begin(p.index, p.attempt);
      }
      const pid_t pid = fork();
      if (pid == 0) {
        // Child: one attempt, then hard exit — no destructors, so the
        // parent's journal stream and store stats are untouched.
        std::string why;
        const bool ok = execute_and_publish(p.index, p.attempt, &why);
        std::_Exit(ok ? 0 : 13);
      }
      if (pid < 0) {
        fail_or_requeue(p.index, p.attempt, "fork_failed", false);
        continue;
      }
      const double deadline =
          cfg_.point_timeout_s > 0
              ? now_ms() + cfg_.point_timeout_s * 1000.0
              : 0.0;
      running.push_back({pid, p.index, p.attempt, deadline, false});
    }

    // Reap finished children; SIGKILL the ones past their deadline.
    bool reaped = false;
    for (size_t ri = 0; ri < running.size();) {
      int st = 0;
      const pid_t got = waitpid(running[ri].pid, &st, WNOHANG);
      if (got == 0) {
        if (running[ri].deadline_ms > 0 && !running[ri].timed_out &&
            now_ms() > running[ri].deadline_ms) {
          kill(running[ri].pid, SIGKILL);
          running[ri].timed_out = true;  // reaped on a later poll
        }
        ++ri;
        continue;
      }
      const Running r = running[ri];
      running.erase(running.begin() + static_cast<long>(ri));
      reaped = true;
      const bool clean_exit = got > 0 && WIFEXITED(st) && WEXITSTATUS(st) == 0;
      std::string payload;
      // The store — not the exit code — is the source of truth: success
      // means a validated entry exists (the child could die after publish;
      // that still counts).
      if (store_.get(point_key(r.index), &payload) ==
          store::ResultStore::GetStatus::kHit) {
        std::lock_guard<std::mutex> lock(mu_);
        payloads_[r.index] = std::move(payload);
        journal_.record_done(r.index, /*cached=*/false);
        ++stats_.executed;
        ++completed_;
        emit(r.index, r.attempt, "run");
        continue;
      }
      const char* why = "exit_nonzero";
      if (r.timed_out) {
        why = "timeout";
      } else if (got > 0 && WIFEXITED(st) &&
                 WEXITSTATUS(st) == store::kFaultCrashExit) {
        why = "injected_crash";
      } else if (got > 0 && WIFSIGNALED(st)) {
        why = "killed";
      } else if (clean_exit) {
        why = "publish_lost";  // exit 0 but no entry: treat as a failure
      }
      fail_or_requeue(r.index, r.attempt, why, r.timed_out);
    }

    if (!running.empty()) {
      if (!reaped) sleep_ms(2.0);
    } else if (!queue.empty()) {
      // Everything pending is in backoff: sleep until the earliest gate.
      double earliest = queue.front().ready_ms;
      for (const Pending& p : queue) earliest = std::min(earliest, p.ready_ms);
      sleep_ms(std::min(earliest - now_ms(), 20.0));
    }
  }
}
#endif  // !_WIN32

bool CampaignRunner::run(std::string* err) {
  if (!inited_ && !init(err)) return false;
  // Phase 1: serve everything the store already has (dedupe + resume).
  std::vector<u32> todo;
  for (u32 i = 0; i < points_.size(); ++i) {
    std::string payload;
    if (store_.get(point_key(i), &payload) ==
        store::ResultStore::GetStatus::kHit) {
      std::lock_guard<std::mutex> lock(mu_);
      payloads_[i] = std::move(payload);
      ++stats_.from_store;
      ++completed_;
      if (!journal_.points()[i].done) journal_.record_done(i, /*cached=*/true);
      emit(i, 0, "cache");
    } else {
      todo.push_back(i);
    }
  }
  // Phase 2: execute the missing points.
  if (!todo.empty()) {
#if !defined(_WIN32)
    if (cfg_.isolate) {
      run_isolated(todo);
    } else {
      run_in_process(todo);
    }
#else
    run_in_process(todo);
#endif
  }
  return true;
}

}  // namespace fg::api
