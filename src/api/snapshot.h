// Bit-exact stat snapshots of a simulation run.
//
// A StatSnapshot freezes everything a simulation's semantics determine —
// run-level results (cycles, commits, packets, detections) plus the
// per-component counters of the frontend (filter, CDC), the NoC, and every
// analysis engine. Integers only, so equality is bit-for-bit and the JSON
// round-trip is exact. Scheduler diagnostics (SchedStats) and invariant
// counters are carried for reporting but EXCLUDED from equality: the
// cycle-exact reference loop skips nothing and evaluates more checks by
// construction.
//
// Promoted from src/testing into the public API layer: it is the result
// unit of a SimSession run, the comparison unit of the differential fuzz
// driver (event vs. FG_CYCLE_EXACT must produce equal snapshots), and the
// storage unit of the golden corpus (tests/golden/*.json).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace fg::soc {
class Soc;
}

namespace fg::api {

struct DetectionSnap {
  u32 attack_id = 0;
  u32 engine = 0;
  u64 commit_fast = 0;
  u64 detect_fast = 0;
  bool operator==(const DetectionSnap&) const = default;
};

struct EngineSnap {
  bool is_ha = false;
  // µcore counters (zero for HA engines).
  u64 instructions = 0;
  u64 busy_cycles = 0;
  u64 stall_cycles = 0;
  u64 packets_popped = 0;
  u64 pushes = 0;
  u64 detections = 0;
  // HA counter (zero for µcore engines).
  u64 processed = 0;
  bool operator==(const EngineSnap&) const = default;
};

struct StatSnapshot {
  // Run-level.
  u64 cycles = 0;        // post-warmup window (slowdown numerator)
  u64 total_cycles = 0;  // full run
  u64 committed = 0;
  u64 packets = 0;
  u64 spurious = 0;
  u64 planned_attacks = 0;
  std::vector<DetectionSnap> detections;
  std::array<u64, 5> stall_by_cause{};  // frontend refusal attribution

  // Frontend: event filter + arbiter.
  u64 filter_seen = 0;
  u64 filter_valid = 0;
  u64 filter_invalid = 0;
  u64 filter_rejects_width = 0;
  u64 filter_rejects_full = 0;
  u64 arbiter_output = 0;
  u64 arbiter_blocked = 0;
  u64 dropped_unrouted = 0;
  u64 mapper_conflicts = 0;

  // Clock-domain crossing.
  u64 cdc_pushes = 0;
  u64 cdc_pops = 0;
  u64 cdc_rejects = 0;

  // Mesh NoC.
  u64 noc_messages = 0;
  u64 noc_hops = 0;
  u64 noc_contention = 0;

  // Per-engine, in engine-id order.
  std::vector<EngineSnap> engines;

  // Diagnostics — excluded from equality / JSON comparison semantics.
  u64 invariant_checks = 0;
  u64 invariant_violations = 0;
  u64 sched_cycles_stepped = 0;
  u64 sched_cycles_skipped = 0;
};

/// Freeze a finished SoC simulation into a snapshot. `planned_attacks`
/// comes from the trace generator; invariant counters are left zero (the
/// caller, which bracketed the run, fills the deltas).
StatSnapshot snapshot_of(const soc::Soc& soc, u64 planned_attacks);

/// Bit-for-bit equality over every semantic field (diagnostics excluded).
bool snapshots_equal(const StatSnapshot& a, const StatSnapshot& b);

/// Human-readable field-by-field difference report; empty when equal.
/// `la` / `lb` label the two sides ("exact" / "event", "golden" / "run").
std::string snapshot_diff(const StatSnapshot& a, const StatSnapshot& b,
                          const char* la, const char* lb);

std::string snapshot_json(const StatSnapshot& s, int indent = 0);
bool snapshot_from_json(const std::string& text, StatSnapshot* out);

}  // namespace fg::api
