#include "src/api/spec.h"

#include <algorithm>
#include <functional>

#include "src/common/env.h"
#include "src/soc/figures.h"

namespace fg::api {

namespace {

using json::Value;

std::optional<Mode> mode_from_name(const std::string& n) {
  if (n == "baseline") return Mode::kBaseline;
  if (n == "fireguard") return Mode::kFireguard;
  if (n == "software") return Mode::kSoftware;
  return std::nullopt;
}

constexpr char kSpecSchema[] = "fireguard/spec/v1";

}  // namespace

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kBaseline: return "baseline";
    case Mode::kFireguard: return "fireguard";
    case Mode::kSoftware: return "software";
  }
  return "?";
}

ExperimentSpec table2_spec(const std::string& workload_name) {
  ExperimentSpec s;
  s.name = "table2/" + workload_name;
  s.mode = Mode::kFireguard;
  s.workload = soc::paper_workload(workload_name, soc::default_trace_len());
  s.soc = soc::table2_soc();
  return s;
}

ExperimentSpec default_spec() {
  ExperimentSpec s = table2_spec("blackscholes");
  s.name = "quickstart";
  s.soc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4)};
  return s;
}

json::Value spec_to_json_value(const ExperimentSpec& spec) {
  Value v = Value::object();
  v.set("schema", Value::of_str(kSpecSchema));
  v.set("name", Value::of_str(spec.name));
  v.set("mode", Value::of_str(mode_name(spec.mode)));
  if (spec.mode == Mode::kSoftware) {
    v.set("scheme", Value::of_str(baseline::sw_scheme_name(spec.scheme)));
  }
  v.set("workload", soc::workload_to_json(spec.workload));
  v.set("soc", soc::soc_to_json(spec.soc));
  if (!spec.sweep.empty()) {
    Value axes = Value::array();
    for (const SweepAxis& a : spec.sweep) {
      Value av = Value::object();
      av.set("key", Value::of_str(a.key));
      Value vals = Value::array();
      for (const std::string& s : a.values) vals.push(Value::of_str(s));
      av.set("values", std::move(vals));
      axes.push(std::move(av));
    }
    v.set("sweep", std::move(axes));
  }
  return v;
}

std::string spec_to_json(const ExperimentSpec& spec, int indent) {
  return json::dump(spec_to_json_value(spec), indent);
}

std::string spec_canonical(const ExperimentSpec& spec) {
  return json::dump(spec_to_json_value(spec));
}

bool spec_from_json(const std::string& text, ExperimentSpec* out,
                    std::string* err) {
  Value root;
  if (!json::parse(text, &root)) {
    if (err != nullptr) *err = "malformed JSON (syntax, escape, or overflow)";
    return false;
  }
  if (!root.is_object()) {
    if (err != nullptr) *err = "spec: expected a top-level object";
    return false;
  }
  for (const auto& [k, e] : root.obj) {
    (void)e;
    if (k != "schema" && k != "name" && k != "mode" && k != "scheme" &&
        k != "workload" && k != "soc" && k != "sweep") {
      if (err != nullptr) *err = "spec: unknown key \"" + k + "\"";
      return false;
    }
  }
  if (const Value* s = root.get("schema");
      s != nullptr && s->str != kSpecSchema) {
    if (err != nullptr) {
      *err = "spec: schema \"" + s->str + "\" is not \"" + kSpecSchema + "\"";
    }
    return false;
  }
  ExperimentSpec spec = default_spec();
  if (const Value* n = root.get("name"); n != nullptr) spec.name = n->str;
  if (const Value* m = root.get("mode"); m != nullptr) {
    const std::optional<Mode> mode = mode_from_name(m->str);
    if (!mode) {
      if (err != nullptr) *err = "spec: unknown mode \"" + m->str + "\"";
      return false;
    }
    spec.mode = *mode;
  }
  if (const Value* s = root.get("scheme"); s != nullptr) {
    const std::optional<baseline::SwScheme> scheme =
        soc::sw_scheme_from_name(s->str);
    if (!scheme) {
      if (err != nullptr) *err = "spec: unknown scheme \"" + s->str + "\"";
      return false;
    }
    spec.scheme = *scheme;
  }
  if (const Value* w = root.get("workload")) {
    if (!soc::workload_from_json(*w, &spec.workload, err)) return false;
  }
  if (const Value* s = root.get("soc")) {
    if (!soc::soc_from_json(*s, &spec.soc, err)) return false;
  }
  if (const Value* axes = root.get("sweep")) {
    if (!axes->is_array()) {
      if (err != nullptr) *err = "spec.sweep: expected an array";
      return false;
    }
    spec.sweep.clear();
    for (const Value& av : axes->arr) {
      SweepAxis axis;
      axis.key = av.get_str("key");
      const Value* vals = av.get("values");
      if (axis.key.empty() || vals == nullptr || !vals->is_array() ||
          vals->arr.empty()) {
        if (err != nullptr) {
          *err = "spec.sweep: each axis needs a \"key\" and a non-empty "
                 "\"values\" array";
        }
        return false;
      }
      for (const Value& val : vals->arr) {
        // Values may be written as JSON numbers/bools or strings; apply_set
        // consumes the textual form either way.
        switch (val.kind) {
          case Value::Kind::kString: axis.values.push_back(val.str); break;
          case Value::Kind::kBool:
            axis.values.push_back(val.b ? "true" : "false");
            break;
          case Value::Kind::kNumber:
            axis.values.push_back(json::dump(val));
            break;
          default:
            if (err != nullptr) {
              *err = "spec.sweep." + axis.key + ": unsupported value kind";
            }
            return false;
        }
      }
      spec.sweep.push_back(std::move(axis));
    }
  }
  *out = std::move(spec);
  return true;
}

// --- apply_set -------------------------------------------------------------

namespace {

bool parse_u64_val(const std::string& v, u64* out, const std::string& key,
                   std::string* err) {
  const std::optional<u64> p = parse_u64_strict(v.c_str());
  if (!p) {
    if (err != nullptr) {
      *err = "--set " + key + ": \"" + v + "\" is not a decimal u64";
    }
    return false;
  }
  *out = *p;
  return true;
}

bool parse_bool_val(const std::string& v, bool* out, const std::string& key,
                    std::string* err) {
  if (v == "1" || v == "true" || v == "on") {
    *out = true;
    return true;
  }
  if (v == "0" || v == "false" || v == "off") {
    *out = false;
    return true;
  }
  if (err != nullptr) {
    *err = "--set " + key + ": \"" + v + "\" is not a bool (true/false/1/0)";
  }
  return false;
}

/// The single kernel deployment the convenience keys operate on (most
/// experiments deploy one kernel group; multi-group specs edit the JSON).
soc::KernelDeployment& first_deployment(ExperimentSpec* spec) {
  if (spec->soc.kernels.empty()) {
    spec->soc.kernels.push_back(soc::KernelDeployment{});
  }
  return spec->soc.kernels.front();
}

struct SetKey {
  const char* key;
  const char* help;
  bool (*apply)(ExperimentSpec*, const std::string& key,
                const std::string& val, std::string* err);
};

template <typename T>
bool set_u(T* field, const std::string& key, const std::string& val,
           std::string* err) {
  u64 v = 0;
  if (!parse_u64_val(val, &v, key, err)) return false;
  *field = static_cast<T>(v);
  return true;
}

const SetKey kSetKeys[] = {
    {"name", "experiment label",
     [](ExperimentSpec* s, const std::string&, const std::string& v,
        std::string*) {
       s->name = v;
       return true;
     }},
    {"mode", "baseline | fireguard | software",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       const std::optional<Mode> m = mode_from_name(v);
       if (!m) {
         if (err != nullptr) *err = "--set " + k + ": unknown mode \"" + v + "\"";
         return false;
       }
       s->mode = *m;
       return true;
     }},
    {"scheme",
     "software scheme: shadow_stack_llvm_aarch64 | asan_aarch64 | "
     "asan_x86_64 | dangsan_x86_64",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       const std::optional<baseline::SwScheme> sc = soc::sw_scheme_from_name(v);
       if (!sc) {
         if (err != nullptr) {
           *err = "--set " + k + ": unknown scheme \"" + v + "\"";
         }
         return false;
       }
       s->scheme = *sc;
       s->mode = Mode::kSoftware;
       return true;
     }},
    {"workload", "PARSEC-like profile name (blackscholes .. x264)",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       for (const std::string& name : soc::paper_workloads()) {
         if (name == v) {
           s->workload.profile = trace::profile_by_name(v);
           return true;
         }
       }
       if (err != nullptr) {
         *err = "--set " + k + ": unknown workload \"" + v + "\"";
       }
       return false;
     }},
    {"trace_len",
     "dynamic instructions; also rescales warmup to one tenth",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       u64 n = 0;
       if (!parse_u64_val(v, &n, k, err)) return false;
       s->workload.n_insts = n;
       s->workload.warmup_insts = n / 10;
       return true;
     }},
    {"warmup", "warmup instructions (attacks inject after warmup)",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&s->workload.warmup_insts, k, v, err);
     }},
    {"seed", "workload stream seed",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) { return set_u(&s->workload.seed, k, v, err); }},
    {"attacks",
     "attack plan \"kind:count[,kind:count...]\" (pc_hijack | ret_corrupt | "
     "heap_oob | use_after_free)",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       std::vector<std::pair<trace::AttackKind, u32>> plan;
       size_t pos = 0;
       while (pos < v.size()) {
         const size_t comma = v.find(',', pos);
         const std::string item =
             v.substr(pos, comma == std::string::npos ? comma : comma - pos);
         const size_t colon = item.find(':');
         const std::string kind_s = item.substr(0, colon);
         const std::optional<trace::AttackKind> kind =
             soc::attack_kind_from_name(kind_s);
         u64 count = 1;
         if (!kind ||
             (colon != std::string::npos &&
              !parse_u64_val(item.substr(colon + 1), &count, k, err))) {
           if (err != nullptr && (err->empty() || !kind)) {
             *err = "--set " + k + ": bad attack item \"" + item + "\"";
           }
           return false;
         }
         plan.emplace_back(*kind, static_cast<u32>(count));
         if (comma == std::string::npos) break;
         pos = comma + 1;
       }
       s->workload.attacks = std::move(plan);
       return true;
     }},
    {"kernel", "guardian kernel of the first deployment: pmc | shadow_stack "
               "| asan | uaf",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       const std::optional<kernels::KernelKind> kind =
           soc::kernel_kind_from_name(v);
       if (!kind) {
         if (err != nullptr) *err = "--set " + k + ": unknown kernel \"" + v + "\"";
         return false;
       }
       first_deployment(s).kind = *kind;
       return true;
     }},
    {"engines", "µcores of the first deployment",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&first_deployment(s).n_engines, k, v, err);
     }},
    {"ha", "use one hardware accelerator for the first deployment",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return parse_bool_val(v, &first_deployment(s).use_ha, k, err);
     }},
    {"model", "programming model: conventional | duff | unrolled | hybrid",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       const std::optional<kernels::ProgModel> m = soc::prog_model_from_name(v);
       if (!m) {
         if (err != nullptr) *err = "--set " + k + ": unknown model \"" + v + "\"";
         return false;
       }
       first_deployment(s).model = *m;
       return true;
     }},
    {"policy", "scheduling policy: fixed | round_robin | block "
               "(sets policy_overridden)",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       const std::optional<core::SchedPolicy> p = soc::sched_policy_from_name(v);
       if (!p) {
         if (err != nullptr) *err = "--set " + k + ": unknown policy \"" + v + "\"";
         return false;
       }
       soc::KernelDeployment& d = first_deployment(s);
       d.policy = *p;
       d.policy_overridden = true;
       return true;
     }},
    {"filter_width", "mini-filters (1/2/4)",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&s->soc.frontend.filter.width, k, v, err);
     }},
    {"filter_fifo_depth", "per-lane filter FIFO depth",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&s->soc.frontend.filter.fifo_depth, k, v, err);
     }},
    {"cdc_depth", "clock-domain-crossing FIFO depth",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&s->soc.frontend.cdc_depth, k, v, err);
     }},
    {"freq_ratio", "fast:slow clock ratio",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&s->soc.frontend.freq_ratio, k, v, err);
     }},
    {"mapper_width", "mapper issue width (footnote 5)",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&s->soc.frontend.mapper_width, k, v, err);
     }},
    {"msgq_depth", "per-engine message-queue depth",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&s->soc.ucore.msgq_depth, k, v, err);
     }},
    {"isax_ma_stage", "ISAX in the MA stage (false = post-commit)",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return parse_bool_val(v, &s->soc.ucore.isax_ma_stage, k, err);
     }},
    {"noc_hop_latency", "mesh NoC per-hop latency",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&s->soc.noc_hop_latency, k, v, err);
     }},
    {"stlf", "store-to-load forwarding in the main core",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return parse_bool_val(v, &s->soc.core.store_load_forwarding, k, err);
     }},
    {"rob", "main-core ROB entries",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&s->soc.core.rob_entries, k, v, err);
     }},
    {"iq", "main-core issue-queue entries",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&s->soc.core.iq_entries, k, v, err);
     }},
    {"ldq", "main-core load-queue entries",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&s->soc.core.ldq_entries, k, v, err);
     }},
    {"stq", "main-core store-queue entries",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&s->soc.core.stq_entries, k, v, err);
     }},
    {"phys_regs", "main-core physical registers",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&s->soc.core.phys_regs, k, v, err);
     }},
    {"dram_latency", "flat DRAM latency in core cycles",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&s->soc.mem.dram_latency, k, v, err);
     }},
    {"detailed_dram", "bank/row/bus DRAM model",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return parse_bool_val(v, &s->soc.mem.detailed_dram, k, err);
     }},
    {"detailed_ptw", "real Sv39 page-table walks",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return parse_bool_val(v, &s->soc.mem.detailed_ptw, k, err);
     }},
    {"detailed_mem", "detailed_dram + detailed_ptw together",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       bool b = false;
       if (!parse_bool_val(v, &b, k, err)) return false;
       s->soc.mem.detailed_dram = b;
       s->soc.mem.detailed_ptw = b;
       return true;
     }},
    {"max_fast_cycles", "simulation cycle cap",
     [](ExperimentSpec* s, const std::string& k, const std::string& v,
        std::string* err) {
       return set_u(&s->soc.max_fast_cycles, k, v, err);
     }},
};

}  // namespace

bool apply_set(ExperimentSpec* spec, const std::string& key,
               const std::string& value, std::string* err) {
  for (const SetKey& sk : kSetKeys) {
    if (key == sk.key) return sk.apply(spec, key, value, err);
  }
  if (err != nullptr) {
    *err = "--set: unknown key \"" + key + "\" (see `fgsim spec --keys`)";
  }
  return false;
}

std::vector<std::pair<std::string, std::string>> settable_keys() {
  std::vector<std::pair<std::string, std::string>> out;
  for (const SetKey& sk : kSetKeys) out.emplace_back(sk.key, sk.help);
  return out;
}

bool expand_grid(const ExperimentSpec& spec, std::vector<GridPoint>* out,
                 std::string* err) {
  out->clear();
  ExperimentSpec base = spec;
  base.sweep.clear();
  std::vector<GridPoint> grid = {GridPoint{spec.name, std::move(base)}};
  for (const SweepAxis& axis : spec.sweep) {
    if (axis.values.empty()) {
      if (err != nullptr) *err = "sweep axis \"" + axis.key + "\" is empty";
      return false;
    }
    std::vector<GridPoint> next;
    next.reserve(grid.size() * axis.values.size());
    for (const GridPoint& g : grid) {
      for (const std::string& v : axis.values) {
        GridPoint p = g;
        p.name += "/" + axis.key + "=" + v;
        if (!apply_set(&p.spec, axis.key, v, err)) return false;
        p.spec.name = p.name;
        next.push_back(std::move(p));
      }
    }
    grid = std::move(next);
  }
  *out = std::move(grid);
  return true;
}

std::vector<std::string> spec_schema_keys() {
  // A sample that populates every optional branch of the serialization:
  // software scheme, an attack plan, an overridden policy, a sweep axis.
  ExperimentSpec sample = default_spec();
  sample.mode = Mode::kSoftware;
  sample.workload.attacks = {{trace::AttackKind::kHeapOob, 1}};
  sample.soc.kernels = {soc::deploy(kernels::KernelKind::kAsan, 4,
                                    kernels::ProgModel::kHybrid, false,
                                    core::SchedPolicy::kRoundRobin)};
  sample.sweep = {{"engines", {"2"}}};

  std::vector<std::string> keys;
  const std::function<void(const Value&, const std::string&)> walk =
      [&](const Value& v, const std::string& prefix) {
        if (v.is_object()) {
          for (const auto& [k, e] : v.obj) {
            walk(e, prefix.empty() ? k : prefix + "." + k);
          }
        } else if (v.is_array()) {
          if (!v.arr.empty()) walk(v.arr.front(), prefix + "[]");
          if (v.arr.empty() || v.arr.front().kind < Value::Kind::kArray) {
            keys.push_back(prefix);  // leaf arrays list themselves
          }
        } else {
          keys.push_back(prefix);
        }
      };
  walk(spec_to_json_value(sample), "");
  std::sort(keys.begin(), keys.end());
  return keys;
}

soc::SweepPoint to_sweep_point(const ExperimentSpec& spec) {
  soc::SweepPoint p;
  p.name = spec.name;
  p.wl = spec.workload;
  p.sc = spec.soc;
  p.kind = spec.mode == Mode::kSoftware ? soc::SweepPoint::Kind::kSoftware
                                        : soc::SweepPoint::Kind::kFireguard;
  p.scheme = spec.scheme;
  return p;
}

ExperimentSpec spec_of_point(const soc::SweepPoint& p) {
  ExperimentSpec s;
  s.name = p.name;
  s.mode = p.kind == soc::SweepPoint::Kind::kSoftware ? Mode::kSoftware
                                                      : Mode::kFireguard;
  s.scheme = p.scheme;
  s.workload = p.wl;
  s.soc = p.sc;
  return s;
}

}  // namespace fg::api
