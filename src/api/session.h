// SimSession: the façade that turns a declarative ExperimentSpec into
// structured results.
//
// Construct from a spec, then either `run()` the single experiment
// synchronously or `run_all()` the sweep grid (the spec's axes expanded as
// a cross product) across the shared ThreadPool. Every point produces a
// RunOutcome: the all-integer StatSnapshot (bit-exact, JSON-exportable),
// the derived RunResult metrics (IPC, stall fractions, detection
// latencies, SchedStats), and — unless disabled — the unmonitored baseline
// cycles and slowdown, memoized across the grid by the session's
// BaselineCache, which keys on the canonical serialized baseline-relevant
// sub-spec.
//
// Determinism contract: a point's outcome depends only on its spec, never
// on worker count or completion order — `run_all()` with 8 jobs is
// bit-identical to jobs=1, and the FireGuard path is bit-identical to the
// legacy run_fireguard() free function for the same workload/SoC pair.
#pragma once

#include <functional>
#include <mutex>

#include "src/api/snapshot.h"
#include "src/api/spec.h"

namespace fg::api {

struct RunOutcome {
  std::string name;
  soc::RunResult result;   // derived metrics (doubles, latencies, sched)
  StatSnapshot snapshot;   // all-integer semantics (bit-identity unit)
  Cycle baseline_cycles = 0;
  double slowdown = 0.0;   // 0 when the baseline was not run
  double wall_ms = 0.0;    // this point's own simulation wall clock
  bool executed = false;
};

/// Per-point completion event (sweep progress reporting).
struct Progress {
  u32 index = 0;   // grid index, in expansion order
  size_t total = 0;
  size_t completed = 0;  // points finished so far, this one included
  const RunOutcome* outcome = nullptr;
};

struct SessionConfig {
  /// Worker threads for run_all: 0 = FG_JOBS env, else hardware
  /// concurrency (the same rule as the sweep runner).
  u32 jobs = 0;
  /// Run the unmonitored baseline (memoized) and fill slowdown. Ignored
  /// for mode == baseline specs, whose run IS the baseline.
  bool with_baseline = true;
  /// Scheduler for the session's runs: kInherit keeps the process-wide
  /// FG_PIPELINE / FG_CYCLE_EXACT mode; kSerial / kPipelined force the flag
  /// for the duration of run() / run_all() (restored afterwards). All
  /// schedulers are bit-identical, so forcing the mode never changes a
  /// result — only the wall clock.
  enum class Sched { kInherit, kSerial, kPipelined };
  Sched sched = Sched::kInherit;
};

/// The execution half of the session: turns ONE concrete grid point into a
/// RunOutcome (run_spec + the memoized baseline / slowdown policy).
/// Orchestrators — SimSession's in-memory grid loop, the campaign runner's
/// durable queue, a future `fgsim serve` daemon — decide WHAT to run and
/// what to do with the outcome; this class owns HOW a point becomes one.
/// Stateless across points except for the baseline cache, so one executor
/// is shared by all workers of a run (it is thread-safe).
class PointExecutor {
 public:
  explicit PointExecutor(bool with_baseline = true)
      : with_baseline_(with_baseline) {}

  /// Durable baseline layer hooks (the campaign runner wires these to the
  /// content-addressed store): `lookup` is consulted before the in-memory
  /// cache; `publish` is called after this executor computed a baseline.
  struct BaselineHooks {
    std::function<bool(const ExperimentSpec&, Cycle*)> lookup;
    std::function<void(const ExperimentSpec&, Cycle)> publish;
  };
  void set_baseline_hooks(BaselineHooks hooks) { hooks_ = std::move(hooks); }

  /// Simulate the point and, per policy, attach baseline cycles + slowdown.
  RunOutcome execute(const GridPoint& p);

  bool with_baseline() const { return with_baseline_; }
  soc::BaselineCache& baseline_cache() { return cache_; }

 private:
  bool with_baseline_;
  soc::BaselineCache cache_;
  BaselineHooks hooks_;
};

class SimSession {
 public:
  /// Expands the sweep grid eagerly; FG_CHECKs on an invalid axis (validate
  /// specs with expand_grid first for a recoverable error).
  explicit SimSession(ExperimentSpec spec, SessionConfig cfg = {});

  using ProgressFn = std::function<void(const Progress&)>;
  /// Registers a progress callback, invoked once per completed point under
  /// an internal mutex (callbacks run on worker threads; keep them short).
  void on_progress(ProgressFn fn) { progress_ = std::move(fn); }

  const ExperimentSpec& spec() const { return spec_; }
  const std::vector<GridPoint>& points() const { return points_; }
  size_t n_points() const { return points_.size(); }

  /// Run the first (for a sweep-free spec: the only) point synchronously.
  const RunOutcome& run();

  /// Run the whole grid; results in grid order, independent of jobs.
  /// Idempotent: a second call returns the cached results.
  const std::vector<RunOutcome>& run_all();

  const std::vector<RunOutcome>& results() const { return results_; }
  soc::BaselineCache& baseline_cache() { return executor_.baseline_cache(); }
  u32 workers() const { return workers_; }
  /// Whole-grid wall clock of run_all in milliseconds.
  double wall_ms() const { return wall_ms_; }

 private:
  RunOutcome execute(u32 index);

  ExperimentSpec spec_;
  SessionConfig cfg_;
  u32 workers_ = 1;
  std::vector<GridPoint> points_;
  std::vector<RunOutcome> results_;
  bool ran_ = false;
  double wall_ms_ = 0.0;
  PointExecutor executor_;
  ProgressFn progress_;
  std::mutex progress_mu_;
  size_t completed_ = 0;
};

/// The one shared run path under every front-end (SimSession, the fuzz
/// driver's scenario runner, the golden corpus, `fgsim run`): simulate
/// `spec` to completion under the CURRENT scheduler mode and freeze the
/// outcome. Baseline cycles/slowdown are NOT attached (that is session
/// policy); invariant-counter deltas for the run are. Those deltas come
/// from process-global counters: exact for serial runs (the fuzzer, the
/// golden corpus, `run()`), but in a multi-worker `run_all()` concurrent
/// points share the counters — treat them as run-wide diagnostics there,
/// not per-point attribution (they are excluded from snapshot equality
/// either way).
RunOutcome run_spec(const ExperimentSpec& spec);

/// JSON export of an outcome: derived metrics + the full snapshot.
std::string outcome_json(const RunOutcome& o, int indent = 2);

}  // namespace fg::api
