#include "src/api/session.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>

#include "src/baseline/instrument.h"
#include "src/common/check.h"
#include "src/common/invariant.h"
#include "src/common/simctl.h"
#include "src/common/thread_pool.h"
#include "src/soc/soc.h"

namespace fg::api {

namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

/// Applies SessionConfig::sched for the duration of a run: the scheduler
/// selector is a process-global flag (like FG_CYCLE_EXACT), so force it
/// RAII-style and restore on exit. Bit-identity across schedulers makes any
/// cross-session overlap harmless to results.
class SchedModeGuard {
 public:
  explicit SchedModeGuard(SessionConfig::Sched s)
      : active_(s != SessionConfig::Sched::kInherit) {
    if (active_) {
      prev_ = pipeline_enabled();
      set_pipeline(s == SessionConfig::Sched::kPipelined);
    }
  }
  ~SchedModeGuard() {
    if (active_) set_pipeline(prev_);
  }
  SchedModeGuard(const SchedModeGuard&) = delete;
  SchedModeGuard& operator=(const SchedModeGuard&) = delete;

 private:
  bool active_;
  bool prev_ = false;
};

}  // namespace

RunOutcome run_spec(const ExperimentSpec& spec) {
  const u64 checks0 = inv::checks();
  const u64 viol0 = inv::violations();

  RunOutcome out;
  out.name = spec.name;
  const double t0 = now_ms();

  switch (spec.mode) {
    case Mode::kFireguard: {
      // Identical construction order to the legacy run_fireguard() — the
      // bit-identity acceptance gate compares the two paths.
      trace::WorkloadGen gen(spec.workload);
      soc::SocConfig sc = spec.soc;
      sc.kparams.text_lo = gen.text_lo();
      sc.kparams.text_hi = gen.text_hi();
      sc.warm_regions =
          soc::default_warm_regions(gen, spec.workload.profile);
      soc::Soc soc(sc, gen);
      soc.run();

      soc::RunResult& r = out.result;
      r.cycles = soc.core_cycles();
      r.committed = soc.committed();
      r.ipc = r.cycles ? static_cast<double>(r.committed) /
                             static_cast<double>(r.cycles)
                       : 0.0;
      r.stall_fractions = soc.stall_fractions();
      r.detections = soc.detections();
      r.spurious = soc.spurious_detections();
      r.packets = soc.total_packets_processed();
      r.planned_attacks = gen.planned_attacks();
      r.sched = soc.sched_stats();
      out.snapshot = snapshot_of(soc, gen.planned_attacks());
      break;
    }
    case Mode::kBaseline: {
      trace::WorkloadGen gen(spec.workload);
      mem::MemHierarchy mem(spec.soc.mem);
      for (const auto& [lo, hi] :
           soc::default_warm_regions(gen, spec.workload.profile)) {
        mem.warm_region(lo, hi);
      }
      mem.reset_stats();
      boom::BoomCore core(spec.soc.core, mem, gen);
      core.run_to_end(nullptr, spec.soc.max_fast_cycles);
      out.result.cycles = core.now();
      out.result.committed = core.stats().committed;
      out.result.ipc =
          out.result.cycles
              ? static_cast<double>(out.result.committed) /
                    static_cast<double>(out.result.cycles)
              : 0.0;
      out.snapshot.cycles = core.now();
      out.snapshot.total_cycles = core.now();
      out.snapshot.committed = core.stats().committed;
      break;
    }
    case Mode::kSoftware: {
      trace::WorkloadGen gen(spec.workload);
      baseline::InstrumentedSource inst(gen, spec.scheme);
      mem::MemHierarchy mem(spec.soc.mem);
      for (const auto& [lo, hi] :
           soc::default_warm_regions(gen, spec.workload.profile)) {
        mem.warm_region(lo, hi);
      }
      mem.reset_stats();
      boom::BoomCore core(spec.soc.core, mem, inst);
      core.run_to_end(nullptr, spec.soc.max_fast_cycles);
      out.result.cycles = core.now();
      out.result.committed = core.stats().committed;
      out.result.ipc =
          out.result.cycles
              ? static_cast<double>(out.result.committed) /
                    static_cast<double>(out.result.cycles)
              : 0.0;
      out.result.expansion = inst.expansion();
      out.snapshot.cycles = core.now();
      out.snapshot.total_cycles = core.now();
      out.snapshot.committed = core.stats().committed;
      break;
    }
  }

  out.wall_ms = now_ms() - t0;
  out.snapshot.invariant_checks = inv::checks() - checks0;
  out.snapshot.invariant_violations = inv::violations() - viol0;
  out.executed = true;
  return out;
}

RunOutcome PointExecutor::execute(const GridPoint& p) {
  RunOutcome out = run_spec(p.spec);
  if (with_baseline_ && p.spec.mode != Mode::kBaseline) {
    const double b0 = now_ms();
    bool ran_baseline = false;
    if (hooks_.lookup && hooks_.lookup(p.spec, &out.baseline_cycles)) {
      // Served by the durable layer: nothing simulated, nothing to charge.
    } else {
      out.baseline_cycles =
          cache_.get(p.spec.workload, p.spec.soc, &ran_baseline);
      // Only the point that actually ran the baseline is charged for it.
      if (ran_baseline) {
        out.wall_ms += now_ms() - b0;
        if (hooks_.publish) hooks_.publish(p.spec, out.baseline_cycles);
      }
    }
    out.slowdown = static_cast<double>(out.result.cycles) /
                   static_cast<double>(std::max<Cycle>(1, out.baseline_cycles));
  }
  return out;
}

SimSession::SimSession(ExperimentSpec spec, SessionConfig cfg)
    : spec_(std::move(spec)), cfg_(cfg), executor_(cfg.with_baseline) {
  std::string err;
  FG_CHECK(expand_grid(spec_, &points_, &err) && "invalid sweep axis");
  results_.resize(points_.size());
  const u32 jobs = cfg_.jobs > 0 ? cfg_.jobs : ThreadPool::default_jobs();
  workers_ = std::min(
      jobs, std::max<u32>(1, std::thread::hardware_concurrency()));
}

RunOutcome SimSession::execute(u32 index) {
  RunOutcome out = executor_.execute(points_[index]);
  if (progress_) {
    std::lock_guard<std::mutex> lock(progress_mu_);
    ++completed_;
    Progress ev;
    ev.index = index;
    ev.total = points_.size();
    ev.completed = completed_;
    ev.outcome = &out;
    progress_(ev);
  }
  return out;
}

const RunOutcome& SimSession::run() {
  SchedModeGuard sched_guard(cfg_.sched);
  if (!results_.front().executed) results_.front() = execute(0);
  return results_.front();
}

const std::vector<RunOutcome>& SimSession::run_all() {
  if (ran_) return results_;
  SchedModeGuard sched_guard(cfg_.sched);
  const double t0 = now_ms();
  std::vector<u32> todo;  // run() may have executed a point already
  todo.reserve(points_.size());
  for (u32 i = 0; i < points_.size(); ++i) {
    if (!results_[i].executed) todo.push_back(i);
  }
  if (workers_ <= 1 || todo.size() <= 1) {
    for (const u32 i : todo) results_[i] = execute(i);
  } else {
    ThreadPool pool(workers_);
    std::vector<std::future<RunOutcome>> futures;
    futures.reserve(todo.size());
    for (const u32 i : todo) {
      futures.push_back(pool.submit([this, i] { return execute(i); }));
    }
    // Collected in grid order: results are stable regardless of which
    // worker finished first.
    for (size_t k = 0; k < todo.size(); ++k) {
      results_[todo[k]] = futures[k].get();
    }
  }
  wall_ms_ = now_ms() - t0;
  ran_ = true;
  return results_;
}

std::string outcome_json(const RunOutcome& o, int indent) {
  using json::Value;
  Value v = Value::object();
  v.set("schema", Value::of_str("fireguard/outcome/v1"));
  v.set("name", Value::of_str(o.name));
  v.set("cycles", Value::of(o.result.cycles));
  v.set("committed", Value::of(o.result.committed));
  v.set("ipc", Value::of_double(o.result.ipc));
  v.set("baseline_cycles", Value::of(o.baseline_cycles));
  v.set("slowdown", Value::of_double(o.slowdown));
  v.set("packets", Value::of(o.result.packets));
  v.set("spurious", Value::of(o.result.spurious));
  v.set("planned_attacks", Value::of(o.result.planned_attacks));
  v.set("attacks_detected",
        Value::of(static_cast<u64>(o.result.detections.size())));
  double worst_ns = 0.0;
  for (const soc::DetectionRecord& d : o.result.detections) {
    worst_ns = std::max(worst_ns, d.latency_ns);
  }
  v.set("worst_latency_ns", Value::of_double(worst_ns));
  Value stalls = Value::array();
  for (const double f : o.result.stall_fractions) {
    stalls.push(Value::of_double(f));
  }
  v.set("stall_fractions", std::move(stalls));
  v.set("expansion", Value::of_double(o.result.expansion));
  Value sched = Value::object();
  sched.set("cycles_stepped", Value::of(o.result.sched.cycles_stepped));
  sched.set("cycles_skipped", Value::of(o.result.sched.cycles_skipped));
  sched.set("skips", Value::of(o.result.sched.skips));
  sched.set("slow_ticks_run", Value::of(o.result.sched.slow_ticks_run));
  sched.set("slow_ticks_skipped",
            Value::of(o.result.sched.slow_ticks_skipped));
  sched.set("pipe_epochs", Value::of(o.result.sched.pipe_epochs));
  sched.set("pipe_prereleased", Value::of(o.result.sched.pipe_prereleased));
  sched.set("pipe_synced", Value::of(o.result.sched.pipe_synced));
  sched.set("pipe_fast_spins", Value::of(o.result.sched.pipe_fast_spins));
  sched.set("pipe_slow_spins", Value::of(o.result.sched.pipe_slow_spins));
  v.set("sched", std::move(sched));
  v.set("wall_ms", Value::of_double(o.wall_ms));
  std::string out = json::dump(v, indent);
  // Splice in the snapshot via its canonical serializer (one authoritative
  // snapshot writer in snapshot.cc).
  FG_CHECK(out.size() >= 2 && out.back() == '}');
  out.erase(out.size() - (indent > 0 ? 2 : 1));  // drop "\n}" / "}"
  out += indent > 0 ? ",\n" : ", ";
  out += indent > 0 ? std::string(static_cast<size_t>(indent), ' ') : "";
  out += "\"snapshot\":\n" + snapshot_json(o.snapshot, indent) + "\n}";
  return out;
}

}  // namespace fg::api
