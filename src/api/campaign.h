// Resumable, crash-safe experiment campaigns.
//
// A campaign is a sweep grid executed against a durable content-addressed
// ResultStore: every point's outcome is published under the hash of its
// canonical spec, so a campaign killed at any instant — SIGKILL, OOM, power
// cut — resumes by rerunning `fgsim campaign` with the same spec and store:
// published points are served from disk (zero re-simulation) and only the
// missing ones execute. The final result set is bit-identical to an
// uninterrupted run because stored payloads contain only the deterministic
// portion of an outcome (wall clock and invariant diagnostics are zeroed).
//
// Failure tolerance, by layer:
//  * Point isolation (default on POSIX): each point runs in a forked child,
//    so a crashing or hanging simulation costs one attempt, not the
//    campaign. A per-point wall-clock watchdog SIGKILLs hung children; the
//    cycle budget (`soc.max_fast_cycles`) bounds runaway simulations from
//    the inside.
//  * Bounded retry with exponential backoff: a failed/killed/timed-out
//    attempt is retried up to max_attempts, then recorded as a failed
//    point (the campaign completes; `fgsim campaign` exits nonzero).
//  * Durable publishes are atomic and checksummed (see result_store.h), so
//    a kill mid-publish can never leave a half-written entry that a resume
//    would load.
//  * The append-only journal (store/<campaigns>/<hash>.journal) tracks
//    attempts and failures across resumes; a torn final line — the worst a
//    SIGKILL can do to it — is tolerated by the loader.
//
// Every recovery path above is exercised by fault injection (FG_FAULT, see
// store/faultfs.h) in tests/campaign_test.cc rather than trusted.
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/api/session.h"
#include "src/store/journal.h"
#include "src/store/result_store.h"

namespace fg::api {

struct CampaignConfig {
  std::string store_dir;
  /// Concurrent points: forked children (isolate) or worker threads
  /// (in-process). 0 = FG_JOBS env, else hardware concurrency.
  u32 jobs = 0;
  /// Attempts per point per campaign invocation (first try + retries).
  u32 max_attempts = 3;
  /// Per-point wall-clock watchdog in seconds; 0 disables. Only enforceable
  /// in isolate mode (an in-process hang cannot be safely interrupted).
  double point_timeout_s = 0.0;
  /// Base retry backoff, doubled per subsequent attempt.
  u64 backoff_ms = 50;
  bool with_baseline = true;
  /// Fork one child per point attempt (crash/hang isolation). Ignored — and
  /// forced off — on platforms without fork.
  bool isolate = true;
};

struct CampaignStats {
  size_t points = 0;
  size_t from_store = 0;  // served by the store (dedupe + resume)
  size_t executed = 0;    // simulated by this invocation
  size_t retries = 0;
  size_t timeouts = 0;    // watchdog kills (subset of retries/failures)
  size_t failed = 0;      // points with no valid result after all attempts
};

/// Content-address key of one concrete point's outcome. `with_baseline` is
/// part of the key because it changes the payload (baseline_cycles /
/// slowdown fields).
std::string result_key(const ExperimentSpec& spec, bool with_baseline);

/// Content-address key of the unmonitored-baseline cycles for a spec (the
/// canonical baseline-relevant sub-spec — the BaselineCache key, made
/// durable).
std::string baseline_key(const ExperimentSpec& spec);

/// 16-hex identity of a whole campaign (full spec incl. sweep axes +
/// baseline policy): names the journal file.
std::string campaign_hash(const ExperimentSpec& spec, bool with_baseline);

/// The durable form of an outcome: canonical one-line outcome JSON with the
/// nondeterministic diagnostics (wall_ms, invariant counter deltas) zeroed,
/// so stored payloads are bit-identical across runs, worker counts, and
/// resume boundaries.
std::string outcome_payload(RunOutcome o);

/// Baseline memoization hooks backed by a ResultStore (the durable layer
/// under the in-memory BaselineCache): lookup consults
/// baseline_key(spec), publish records a computed baseline best-effort.
PointExecutor::BaselineHooks store_baseline_hooks(store::ResultStore* store);

/// One point attempt against a durable store — the worker-side body shared
/// by the campaign runner's forked children and the serve daemon's: consult
/// the injected point faults (FG_FAULT ...@point:<fault_index>), simulate
/// `p` via PointExecutor with store-backed baseline memoization, publish
/// under result_key(p.spec, with_baseline). True when a validated entry is
/// in the store; on failure *why carries a slug. `payload` (optional)
/// receives the published payload.
bool execute_point_to_store(const GridPoint& p, u64 fault_index, u32 attempt,
                            bool with_baseline, store::ResultStore* store,
                            std::string* payload, std::string* why);

class CampaignRunner {
 public:
  /// Per-point lifecycle event, for progress reporting. `what` is one of
  /// "cache" (served from store), "run" (executed + published), "retry",
  /// "timeout" (watchdog kill), "fail" (attempts exhausted).
  struct Event {
    u32 index = 0;
    u32 attempt = 0;
    const char* what = "";
    size_t completed = 0;
    size_t total = 0;
  };
  using EventFn = std::function<void(const Event&)>;

  CampaignRunner(ExperimentSpec spec, CampaignConfig cfg);

  /// Registered callback runs under an internal mutex; keep it short.
  void on_event(EventFn fn) { event_fn_ = std::move(fn); }

  /// Expand the grid, open the store, open/replay the journal. False with
  /// *err on an invalid sweep axis or store/journal I/O failure.
  bool init(std::string* err);

  /// Run every point not already in the store. Returns false only on
  /// environment errors (store unusable); per-point failures are counted in
  /// stats().failed and leave that point's payload empty.
  bool run(std::string* err);

  const ExperimentSpec& spec() const { return spec_; }
  const std::vector<GridPoint>& points() const { return points_; }
  /// Stored outcome payloads in grid order ("" for failed points); valid
  /// after run().
  const std::vector<std::string>& payloads() const { return payloads_; }
  const CampaignStats& stats() const { return stats_; }
  store::ResultStore& result_store() { return store_; }
  store::CampaignJournal& journal() { return journal_; }
  u32 workers() const { return workers_; }
  std::string point_key(u32 index) const;

 private:
  void emit(u32 index, u32 attempt, const char* what);
  /// One in-child / in-process point attempt: consult the injected point
  /// faults, simulate, publish. True when a validated entry is in the store.
  bool execute_and_publish(u32 index, u32 attempt, std::string* why);
  void run_in_process(const std::vector<u32>& todo);
#if !defined(_WIN32)
  void run_isolated(const std::vector<u32>& todo);
#endif

  ExperimentSpec spec_;
  CampaignConfig cfg_;
  u32 workers_ = 1;
  std::vector<GridPoint> points_;
  std::vector<std::string> payloads_;
  CampaignStats stats_;
  store::ResultStore store_;
  store::CampaignJournal journal_;
  EventFn event_fn_;
  std::mutex mu_;  // journal appends, stats, events (worker threads)
  size_t completed_ = 0;
  bool inited_ = false;
};

}  // namespace fg::api
