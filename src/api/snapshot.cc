#include "src/api/snapshot.h"

#include <algorithm>
#include <cstdio>

#include "src/common/json.h"
#include "src/soc/soc.h"

namespace fg::api {

StatSnapshot snapshot_of(const soc::Soc& soc, u64 planned_attacks) {
  StatSnapshot out;
  out.cycles = soc.core_cycles();
  out.total_cycles = soc.total_core_cycles();
  out.committed = soc.committed();
  out.packets = soc.total_packets_processed();
  out.spurious = soc.spurious_detections();
  out.planned_attacks = planned_attacks;
  for (const soc::DetectionRecord& d : soc.detections()) {
    out.detections.push_back(
        DetectionSnap{d.attack_id, d.engine, d.commit_fast, d.detect_fast});
  }
  const core::Frontend& fe = soc.frontend();
  out.stall_by_cause = fe.stats().stall_by_cause;
  out.dropped_unrouted = fe.stats().dropped_unrouted;
  out.mapper_conflicts = fe.stats().mapper_port_conflicts;
  const core::EventFilterStats& fs = fe.filter().stats();
  out.filter_seen = fs.committed_seen;
  out.filter_valid = fs.valid_packets;
  out.filter_invalid = fs.invalid_packets;
  out.filter_rejects_width = fs.lane_rejects_width;
  out.filter_rejects_full = fs.lane_rejects_full;
  out.arbiter_output = fs.arbiter_output;
  out.arbiter_blocked = fs.arbiter_blocked;
  const core::CdcStats& cs = fe.cdc().stats();
  out.cdc_pushes = cs.pushes;
  out.cdc_pops = cs.pops;
  out.cdc_rejects = cs.full_rejects;
  const core::NocStats& ns = soc.noc().stats();
  out.noc_messages = ns.messages;
  out.noc_hops = ns.total_hops;
  out.noc_contention = ns.link_contention_cycles;
  for (u32 i = 0; i < soc.n_engines(); ++i) {
    EngineSnap e;
    if (const ucore::UCore* uc = soc.engine_ucore(i)) {
      const ucore::UCoreStats& us = uc->stats();
      e.instructions = us.instructions;
      e.busy_cycles = us.busy_cycles;
      e.stall_cycles = us.stall_cycles;
      e.packets_popped = us.packets_popped;
      e.pushes = us.pushes;
      e.detections = us.detections;
    } else {
      e.is_ha = true;
      e.processed = soc.engine_ha(i)->packets_processed();
    }
    out.engines.push_back(e);
  }
  out.sched_cycles_stepped = soc.sched_stats().cycles_stepped;
  out.sched_cycles_skipped = soc.sched_stats().cycles_skipped;
  return out;
}

namespace {

/// The semantic scalar fields, enumerated once for equality, diff and JSON
/// (a new field added here is automatically compared and serialized).
struct Field {
  const char* name;
  u64 StatSnapshot::* member;
};

constexpr Field kFields[] = {
    {"cycles", &StatSnapshot::cycles},
    {"total_cycles", &StatSnapshot::total_cycles},
    {"committed", &StatSnapshot::committed},
    {"packets", &StatSnapshot::packets},
    {"spurious", &StatSnapshot::spurious},
    {"planned_attacks", &StatSnapshot::planned_attacks},
    {"filter_seen", &StatSnapshot::filter_seen},
    {"filter_valid", &StatSnapshot::filter_valid},
    {"filter_invalid", &StatSnapshot::filter_invalid},
    {"filter_rejects_width", &StatSnapshot::filter_rejects_width},
    {"filter_rejects_full", &StatSnapshot::filter_rejects_full},
    {"arbiter_output", &StatSnapshot::arbiter_output},
    {"arbiter_blocked", &StatSnapshot::arbiter_blocked},
    {"dropped_unrouted", &StatSnapshot::dropped_unrouted},
    {"mapper_conflicts", &StatSnapshot::mapper_conflicts},
    {"cdc_pushes", &StatSnapshot::cdc_pushes},
    {"cdc_pops", &StatSnapshot::cdc_pops},
    {"cdc_rejects", &StatSnapshot::cdc_rejects},
    {"noc_messages", &StatSnapshot::noc_messages},
    {"noc_hops", &StatSnapshot::noc_hops},
    {"noc_contention", &StatSnapshot::noc_contention},
};

}  // namespace

bool snapshots_equal(const StatSnapshot& a, const StatSnapshot& b) {
  for (const Field& f : kFields) {
    if (a.*(f.member) != b.*(f.member)) return false;
  }
  return a.stall_by_cause == b.stall_by_cause &&
         a.detections == b.detections && a.engines == b.engines;
}

std::string snapshot_diff(const StatSnapshot& a, const StatSnapshot& b,
                          const char* la, const char* lb) {
  std::string out;
  char buf[256];   // scratch for composed field names (never add()'s target)
  char line[384];  // add()'s own buffer, distinct from buf: name may point
                   // into buf, and snprintf sources must not overlap the
                   // destination
  auto add = [&](const char* name, u64 va, u64 vb) {
    if (va == vb) return;
    std::snprintf(line, sizeof(line), "  %-22s %s=%llu %s=%llu\n", name, la,
                  static_cast<unsigned long long>(va), lb,
                  static_cast<unsigned long long>(vb));
    out += line;
  };
  for (const Field& f : kFields) add(f.name, a.*(f.member), b.*(f.member));
  for (size_t i = 0; i < a.stall_by_cause.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "stall_by_cause[%zu]", i);
    add(buf, a.stall_by_cause[i], b.stall_by_cause[i]);
  }
  add("detections.size", a.detections.size(), b.detections.size());
  for (size_t i = 0; i < std::min(a.detections.size(), b.detections.size());
       ++i) {
    if (a.detections[i] == b.detections[i]) continue;
    std::snprintf(
        buf, sizeof(buf),
        "  detections[%zu]        %s={id %u e %u c %llu d %llu} "
        "%s={id %u e %u c %llu d %llu}\n",
        i, la, a.detections[i].attack_id, a.detections[i].engine,
        static_cast<unsigned long long>(a.detections[i].commit_fast),
        static_cast<unsigned long long>(a.detections[i].detect_fast), lb,
        b.detections[i].attack_id, b.detections[i].engine,
        static_cast<unsigned long long>(b.detections[i].commit_fast),
        static_cast<unsigned long long>(b.detections[i].detect_fast));
    out += buf;
  }
  add("engines.size", a.engines.size(), b.engines.size());
  for (size_t i = 0; i < std::min(a.engines.size(), b.engines.size()); ++i) {
    const EngineSnap& ea = a.engines[i];
    const EngineSnap& eb = b.engines[i];
    if (ea == eb) continue;
    std::snprintf(buf, sizeof(buf), "engine[%zu].", i);
    const std::string pre = buf;
    add((pre + "is_ha").c_str(), ea.is_ha, eb.is_ha);
    add((pre + "instructions").c_str(), ea.instructions, eb.instructions);
    add((pre + "busy_cycles").c_str(), ea.busy_cycles, eb.busy_cycles);
    add((pre + "stall_cycles").c_str(), ea.stall_cycles, eb.stall_cycles);
    add((pre + "packets_popped").c_str(), ea.packets_popped,
        eb.packets_popped);
    add((pre + "pushes").c_str(), ea.pushes, eb.pushes);
    add((pre + "detections").c_str(), ea.detections, eb.detections);
    add((pre + "processed").c_str(), ea.processed, eb.processed);
  }
  return out;
}

std::string snapshot_json(const StatSnapshot& s, int indent) {
  const std::string pad(static_cast<size_t>(indent), ' ');
  std::string out = pad + "{\n";
  char buf[256];
  auto line = [&](const char* name, u64 v, bool comma = true) {
    std::snprintf(buf, sizeof(buf), "%s  \"%s\": %llu%s\n", pad.c_str(), name,
                  static_cast<unsigned long long>(v), comma ? "," : "");
    out += buf;
  };
  out += pad + "  \"schema\": \"fireguard/snapshot/v1\",\n";
  for (const Field& f : kFields) line(f.name, s.*(f.member));
  out += pad + "  \"stall_by_cause\": [";
  for (size_t i = 0; i < s.stall_by_cause.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%llu", i != 0 ? ", " : "",
                  static_cast<unsigned long long>(s.stall_by_cause[i]));
    out += buf;
  }
  out += "],\n";
  out += pad + "  \"detections\": [";
  for (size_t i = 0; i < s.detections.size(); ++i) {
    const DetectionSnap& d = s.detections[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n%s    {\"attack_id\": %u, \"engine\": %u, "
                  "\"commit_fast\": %llu, \"detect_fast\": %llu}",
                  i != 0 ? "," : "", pad.c_str(), d.attack_id, d.engine,
                  static_cast<unsigned long long>(d.commit_fast),
                  static_cast<unsigned long long>(d.detect_fast));
    out += buf;
  }
  out += s.detections.empty() ? std::string("],\n") : "\n" + pad + "  ],\n";
  out += pad + "  \"engines\": [";
  for (size_t i = 0; i < s.engines.size(); ++i) {
    const EngineSnap& e = s.engines[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n%s    {\"is_ha\": %s, \"instructions\": %llu, "
        "\"busy_cycles\": %llu, \"stall_cycles\": %llu, "
        "\"packets_popped\": %llu, \"pushes\": %llu, \"detections\": %llu, "
        "\"processed\": %llu}",
        i != 0 ? "," : "", pad.c_str(), e.is_ha ? "true" : "false",
        static_cast<unsigned long long>(e.instructions),
        static_cast<unsigned long long>(e.busy_cycles),
        static_cast<unsigned long long>(e.stall_cycles),
        static_cast<unsigned long long>(e.packets_popped),
        static_cast<unsigned long long>(e.pushes),
        static_cast<unsigned long long>(e.detections),
        static_cast<unsigned long long>(e.processed));
    out += buf;
  }
  out += s.engines.empty() ? std::string("]\n") : "\n" + pad + "  ]\n";
  out += pad + "}";
  return out;
}

bool snapshot_from_json(const std::string& text, StatSnapshot* out) {
  json::Value root;
  if (!json::parse(text, &root) || !root.is_object()) return false;
  if (root.get_str("schema") != "fireguard/snapshot/v1") return false;
  *out = StatSnapshot{};
  for (const Field& f : kFields) out->*(f.member) = root.get_u64(f.name);
  if (const json::Value* v = root.get("stall_by_cause");
      v != nullptr && v->is_array() && v->arr.size() == 5) {
    for (size_t i = 0; i < 5; ++i) out->stall_by_cause[i] = v->arr[i].num;
  } else {
    return false;
  }
  if (const json::Value* v = root.get("detections");
      v != nullptr && v->is_array()) {
    for (const json::Value& d : v->arr) {
      out->detections.push_back(DetectionSnap{
          static_cast<u32>(d.get_u64("attack_id")),
          static_cast<u32>(d.get_u64("engine")), d.get_u64("commit_fast"),
          d.get_u64("detect_fast")});
    }
  } else {
    return false;
  }
  if (const json::Value* v = root.get("engines");
      v != nullptr && v->is_array()) {
    for (const json::Value& e : v->arr) {
      EngineSnap snap;
      const json::Value* ha = e.get("is_ha");
      snap.is_ha = ha != nullptr && ha->b;
      snap.instructions = e.get_u64("instructions");
      snap.busy_cycles = e.get_u64("busy_cycles");
      snap.stall_cycles = e.get_u64("stall_cycles");
      snap.packets_popped = e.get_u64("packets_popped");
      snap.pushes = e.get_u64("pushes");
      snap.detections = e.get_u64("detections");
      snap.processed = e.get_u64("processed");
      out->engines.push_back(snap);
    }
  } else {
    return false;
  }
  return true;
}

}  // namespace fg::api
