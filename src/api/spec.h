// ExperimentSpec: the one declarative, serializable description of an
// experiment.
//
// A spec names the system variant to run (unmonitored baseline, FireGuard,
// or a software instrumentation scheme), the workload trace (profile, seed,
// length, warmup, attack plan), the full SoC configuration, and — optionally
// — sweep axes: named value lists whose cross product expands the spec into
// a grid of concrete points. One spec in, one structured result out: any
// scenario a user can write in a file is runnable (`fgsim run`), sweepable
// (`fgsim sweep`), cacheable (the BaselineCache keys on the serialized
// baseline-relevant sub-spec), and fuzz-comparable (the fuzzer's seed
// expansion produces an ExperimentSpec) through the same code path.
//
// Serialization contract (see src/soc/config_json.h): exports are complete
// and bit-exact — spec → JSON → spec reproduces the identical StatSnapshot;
// hand-written files may be sparse — absent fields keep the Table II /
// library defaults, unknown keys are errors, never silently ignored.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/soc/config_json.h"
#include "src/soc/experiment.h"
#include "src/soc/sweep.h"

namespace fg::api {

enum class Mode : u8 { kBaseline, kFireguard, kSoftware };

const char* mode_name(Mode m);

/// One sweep axis: applying `key = values[i]` (via apply_set) for each i.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

struct ExperimentSpec {
  std::string name = "experiment";
  Mode mode = Mode::kFireguard;
  /// Software scheme; meaningful only when mode == kSoftware.
  baseline::SwScheme scheme = baseline::SwScheme::kShadowStackLlvm;
  trace::WorkloadConfig workload;
  soc::SocConfig soc;
  /// Sweep axes, expanded as a cross product in declaration order.
  std::vector<SweepAxis> sweep;
};

/// Table II SoC + the default workload (blackscholes, FG_TRACE_LEN-sized
/// trace, warmup = one tenth) and one ASan 4-µcore deployment — the
/// quickstart experiment. Hand-written spec files override from here.
ExperimentSpec default_spec();

/// The exact spec the paper's Table II column describes, with no kernels
/// deployed (callers add deployments); equals default_spec() minus the
/// quickstart deployment.
ExperimentSpec table2_spec(const std::string& workload_name);

// --- serialization --------------------------------------------------------
json::Value spec_to_json_value(const ExperimentSpec& spec);
std::string spec_to_json(const ExperimentSpec& spec, int indent = 2);
/// Parse over default_spec() defaults. Returns false with a message in
/// `*err` on malformed JSON, unknown keys, unknown enum names.
bool spec_from_json(const std::string& text, ExperimentSpec* out,
                    std::string* err);

/// Canonical one-line form of a spec (sorted keys, exact numbers): equal
/// specs ⇔ equal strings.
std::string spec_canonical(const ExperimentSpec& spec);

// --- overrides (--set key=value, sweep axes) -------------------------------
/// Apply one `key=value` override. Returns false with a message in `*err`
/// for unknown keys or unparsable values. Keys are the flattened knob names
/// listed by settable_keys(); "policy" sets policy_overridden with it.
bool apply_set(ExperimentSpec* spec, const std::string& key,
               const std::string& value, std::string* err);

/// The knob names apply_set understands, with one-line help each.
std::vector<std::pair<std::string, std::string>> settable_keys();

// --- sweep expansion --------------------------------------------------------
struct GridPoint {
  std::string name;  // spec.name + "/key=value" per axis
  ExperimentSpec spec;
};

/// Expand the sweep axes into the full grid (a spec with no axes expands to
/// exactly itself). Returns false with `*err` when an axis key/value does
/// not apply. Each grid point's own `sweep` list is empty.
bool expand_grid(const ExperimentSpec& spec, std::vector<GridPoint>* out,
                 std::string* err);

/// Flattened JSON schema of a fully-populated spec ("soc.core.rob_entries",
/// "soc.kernels[].policy", ...). Used by the docs drift check: every key
/// must appear in docs/API.md.
std::vector<std::string> spec_schema_keys();

/// Convert one concrete (sweep-free) spec into a SweepRunner point — the
/// bridge the figure benches use, so every bench point is an ExperimentSpec
/// first and a simulation second.
soc::SweepPoint to_sweep_point(const ExperimentSpec& spec);

/// Inverse bridge: wrap an existing SweepRunner point (e.g. the shared
/// Figure-10 grid definition in src/soc/figures.cc) as a spec.
ExperimentSpec spec_of_point(const soc::SweepPoint& p);

}  // namespace fg::api
