#include "src/area/energy_model.h"

#include <algorithm>

#include "src/common/check.h"

namespace fg::area {

namespace {
constexpr double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

BlockPower block(std::string name, double area_mm2, double freq_ghz,
                 double alpha, const PowerConstants& pc) {
  BlockPower b;
  b.name = std::move(name);
  b.area_mm2 = area_mm2;
  b.freq_ghz = freq_ghz;
  b.alpha = alpha;
  b.dynamic_mw = area_mm2 * freq_ghz * alpha * pc.k_dyn_mw_per_mm2_ghz;
  b.leakage_mw = area_mm2 * pc.k_leak_mw_per_mm2;
  return b;
}
}  // namespace

ActivityFactors activity_from_run(double ipc, u32 commit_width,
                                  double packets_per_commit, double ucore_busy) {
  FG_CHECK(commit_width > 0);
  ActivityFactors af;
  af.main_core = clamp01(0.5 + 0.5 * ipc / commit_width);
  // Each mini-filter lane fires when its commit slot retires.
  af.filter = clamp01(ipc / commit_width);
  // The scalar mapper toggles once per *valid* (filtered-in) packet.
  af.mapper = clamp01(ipc * clamp01(packets_per_commit));
  af.cdc = af.mapper;
  af.ucores = clamp01(ucore_busy);
  af.noc = clamp01(0.1 * ucore_busy);
  return af;
}

EnergyBreakdown estimate_energy(const CoreSpec& core, const FireGuardCost& cost,
                                const ActivityFactors& af, double slow_ghz,
                                const PowerConstants& pc) {
  FG_CHECK(slow_ghz > 0 && core.freq_ghz > 0);
  const double fast = core.freq_ghz;
  // Transport splits into the filter (scales with width) and the mapper
  // (fixed, shared); both live in the fast domain. The CDC is folded into
  // the mapper area constant, consistent with Section IV-F's accounting.
  const double filter_mm2 =
      kFilterArea4Way * static_cast<double>(cost.filter_width) / 4.0;
  const double mapper_mm2 = kMapperArea;
  const double ucores_mm2 = kRocketArea * static_cast<double>(cost.n_ucores);
  // The mesh + multicast channel wiring is folded into the mapper constant
  // at IV-F granularity; give the slow-domain share its own line so the
  // domain split is visible, at 20% of the mapper area.
  const double noc_mm2 = 0.2 * mapper_mm2;

  EnergyBreakdown e;
  e.blocks.push_back(
      block(core.name, cost.core_area_14nm, fast, af.main_core, pc));
  e.blocks.push_back(block("filter", filter_mm2, fast, af.filter, pc));
  e.blocks.push_back(block("mapper", mapper_mm2 - noc_mm2, fast, af.mapper, pc));
  e.blocks.push_back(block("cdc", 0.0, fast, af.cdc, pc));  // area in mapper
  e.blocks.push_back(block("ucores", ucores_mm2, slow_ghz, af.ucores, pc));
  e.blocks.push_back(block("noc", noc_mm2, slow_ghz, af.noc, pc));

  e.core_mw = e.blocks[0].total_mw();
  for (size_t i = 1; i < e.blocks.size(); ++i) e.fireguard_mw += e.blocks[i].total_mw();
  e.overhead_pct = 100.0 * e.fireguard_mw / e.core_mw;
  e.area_overhead_pct = cost.pct_of_core;

  // Counterfactual: everything at the fast clock.
  double single = 0.0;
  single += block("filter", filter_mm2, fast, af.filter, pc).total_mw();
  single += block("mapper", mapper_mm2 - noc_mm2, fast, af.mapper, pc).total_mw();
  single += block("ucores", ucores_mm2, fast, af.ucores, pc).total_mw();
  single += block("noc", noc_mm2, fast, af.noc, pc).total_mw();
  e.single_domain_overhead_pct = 100.0 * single / e.core_mw;
  return e;
}

std::vector<SocEnergyRow> table3_energy_rows(const ActivityFactors& af,
                                             double slow_ratio) {
  FG_CHECK(slow_ratio > 0 && slow_ratio <= 1.0);
  std::vector<SocEnergyRow> rows;
  for (const SocSpec& soc : table3_socs()) {
    // Row per SoC: its performance core is the first (highest-area) entry.
    const CoreSpec& core = soc.cores.front();
    const FireGuardCost cost = per_core_cost(core);
    const EnergyBreakdown e =
        estimate_energy(core, cost, af, core.freq_ghz * slow_ratio);
    rows.push_back({soc.name, core.name, e.area_overhead_pct, e.overhead_pct,
                    e.single_domain_overhead_pct});
  }
  return rows;
}

}  // namespace fg::area
