// Energy-overhead model (Section IV-G's closing claim).
//
// The paper argues FireGuard's *energy* overhead is lower than its area
// overhead "since the majority of FireGuard operates within a low-frequency
// domain". This module makes that argument quantitative with a standard
// first-order CMOS power model:
//
//   P_block = A_block · f_block · alpha_block · k_dyn  +  A_block · k_leak
//
// where A is area at 14nm (from area_model.h), f the block's clock, alpha
// its activity factor (fraction of cycles the block switches), k_dyn a
// dynamic power density per GHz of toggling logic and k_leak the static
// leakage density. Absolute wattage is not the point — both constants cancel
// in the *overhead ratio* we report, exactly as the technology node cancels
// in Table III's normalized areas. What does not cancel is the frequency and
// activity split: the filter/allocator toggle at the core clock but are
// tiny, while the µcores are the bulk of the area yet run at half clock with
// duty cycles well below one. That asymmetry is the claim.
#pragma once

#include <string>
#include <vector>

#include "src/area/area_model.h"

namespace fg::area {

/// First-order power-density constants (14nm-class logic, relative scale).
/// k_dyn: mW per mm² per GHz at alpha = 1; k_leak: mW per mm² static.
struct PowerConstants {
  double k_dyn_mw_per_mm2_ghz = 80.0;
  double k_leak_mw_per_mm2 = 15.0;
};

/// Per-block switching-activity factors (fraction of the block's own clock
/// cycles in which it does work). Defaults are conservative: the filter sees
/// every commit (alpha ≈ IPC / commit width), the mapper at most one packet
/// per cycle, µcores poll even when queues are empty.
struct ActivityFactors {
  double main_core = 0.85;
  double filter = 0.40;       // commits per fast cycle per lane
  double mapper = 0.30;       // valid packets per fast cycle
  double cdc = 0.30;
  double ucores = 0.60;       // kernel duty cycle
  double noc = 0.05;          // inter-checker traffic is rare
};

/// Activity factors derived from a measured run: `ipc` of the main core,
/// `packets_per_commit` (valid filtered fraction) and `ucore_busy`
/// (non-idle µcore cycle fraction). Values are clamped to [0, 1].
ActivityFactors activity_from_run(double ipc, u32 commit_width,
                                  double packets_per_commit, double ucore_busy);

/// One block's contribution to the estimate.
struct BlockPower {
  std::string name;
  double area_mm2 = 0.0;
  double freq_ghz = 0.0;
  double alpha = 0.0;
  double dynamic_mw = 0.0;
  double leakage_mw = 0.0;
  double total_mw() const { return dynamic_mw + leakage_mw; }
};

struct EnergyBreakdown {
  std::vector<BlockPower> blocks;  // [0] is the main core, rest is FireGuard
  double core_mw = 0.0;
  double fireguard_mw = 0.0;
  /// FireGuard power as a fraction of main-core power (the energy analogue
  /// of Table III's per-core area overhead%).
  double overhead_pct = 0.0;
  /// The same FireGuard configuration's *area* overhead%, for the
  /// lower-than-area comparison the paper makes.
  double area_overhead_pct = 0.0;
  /// Hypothetical overhead if all of FireGuard ran in the fast domain —
  /// isolates how much the two-domain split saves.
  double single_domain_overhead_pct = 0.0;
};

/// Estimate the steady-state power of a core + its FireGuard elements.
/// `slow_ghz` is the low-frequency domain (fabric + µcores); the filter,
/// forwarding channel and allocator run at the core's clock.
EnergyBreakdown estimate_energy(const CoreSpec& core, const FireGuardCost& cost,
                                const ActivityFactors& af, double slow_ghz,
                                const PowerConstants& pc = {});

/// Convenience: energy overhead for each Table III SoC's performance core,
/// with the default (paper-configuration) activity factors.
struct SocEnergyRow {
  std::string soc;
  std::string core;
  double area_overhead_pct = 0.0;
  double energy_overhead_pct = 0.0;
  double single_domain_pct = 0.0;
};
std::vector<SocEnergyRow> table3_energy_rows(const ActivityFactors& af = {},
                                             double slow_ratio = 0.5);

}  // namespace fg::area
