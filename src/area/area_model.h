// Hardware-overhead and feasibility model (Sections IV-F and IV-G).
//
// Section IV-F's constants come from the paper's 14nm physical
// implementation (Synopsys Design Compiler + IC Compiler 2):
//   SoC 2.91 mm², BOOM 1.107 mm², Rocket µcore 0.061 mm²,
//   event filter (4-way) 0.032 mm², mapper 0.011 mm².
//
// Section IV-G scales FireGuard onto commercial out-of-order cores: core
// areas are estimated from die shots, normalized to 14nm by published
// density ratios, and the µcore count is scaled with the core's normalized
// throughput (IPC × peak frequency relative to BOOM) — throughput needs only
// a *linear* increase in µcores while big cores pay superlinear area for
// their single-thread performance, which is why FireGuard gets relatively
// cheaper on bigger cores.
#pragma once

#include <string>
#include <vector>

#include "src/common/types.h"

namespace fg::area {

// --- Section IV-F constants (mm² at 14nm) ---
inline constexpr double kSocArea = 2.91;
inline constexpr double kBoomArea = 1.107;
inline constexpr double kRocketArea = 0.061;
inline constexpr double kFilterArea4Way = 0.032;
inline constexpr double kMapperArea = 0.011;

/// BOOM reference point for throughput normalization (Table III).
inline constexpr double kBoomIpc = 1.3;
inline constexpr double kBoomFreqGhz = 3.2;
inline constexpr u32 kBoomUcores = 4;

/// Area scale factor to 14nm for a given technology node (density ratios
/// derived from the paper's own normalized areas in Table III).
double scale_to_14nm(u32 tech_nm);

struct CoreSpec {
  std::string name;
  double freq_ghz = 3.2;
  u32 tech_nm = 14;
  double area_native_mm2 = 1.11;
  double ipc = 1.3;
  u32 commit_width = 4;  // determines the filter width FireGuard needs
  u32 count = 1;         // instances of this core in the SoC
  /// Measured normalized throughput (Table III's row), when it differs from
  /// the analytic IPC x frequency product. 0 = derive from ipc/freq.
  double norm_throughput_override = 0.0;
};

struct SocSpec {
  std::string name;
  std::vector<CoreSpec> cores;
  /// Total SoC area normalized to 14nm (derived from die measurements).
  double soc_area_14nm = kSocArea;
};

struct FireGuardCost {
  u32 filter_width = 4;
  u32 n_ucores = 4;
  double transport_mm2 = 0.0;  // filter + mapper
  double overhead_mm2 = 0.0;   // µcores + transport
  double core_area_14nm = 0.0;
  double pct_of_core = 0.0;
  double norm_throughput = 1.0;
};

/// Normalized throughput of a core relative to BOOM (IPC × peak frequency).
double normalized_throughput(double ipc, double freq_ghz);

/// µcores needed to attain the Section IV-A service rate on a faster core
/// (linear scaling with normalized throughput).
u32 ucores_needed(double norm_throughput);

/// Per-core FireGuard cost (the middle block of Table III).
FireGuardCost per_core_cost(const CoreSpec& core);

/// SoC-level overhead when every core gets an independent kernel's worth of
/// FireGuard (the bottom block of Table III). Returns mm² at 14nm.
double soc_overhead_mm2(const SocSpec& soc);
double soc_overhead_pct(const SocSpec& soc);

/// The four systems of Table III: BOOM, Apple M1-Pro (FireStorm), HiSilicon
/// Kirin (Cortex-A76) and Intel i7-12700F (AlderLake-S P-cores).
std::vector<SocSpec> table3_socs();

// --- Section IV-F roll-ups ---
struct PhysicalBreakdown {
  double transport_mm2;        // filter + mapper
  double transport_pct_boom;   // 3.88% in the paper
  double transport_pct_soc;    // 1.48%
  double fireguard4_mm2;       // 0.287 (4 µcores + transport)
  double fireguard4_pct_boom;  // 25.9%
  double fireguard4_pct_soc;   // 9.86%
};
PhysicalBreakdown physical_breakdown();

}  // namespace fg::area
