#include "src/area/area_model.h"

#include <cmath>

#include "src/common/check.h"

namespace fg::area {

double scale_to_14nm(u32 tech_nm) {
  // Density ratios consistent with Table III's normalized areas
  // (e.g. FireStorm 2.53 mm² @5nm -> 22.55 mm² @14nm).
  switch (tech_nm) {
    case 14: return 1.0;
    case 10: return 3.100;   // AlderLake-S: 7.30 -> 22.63
    case 7: return 2.935;    // Cortex-A76: 1.23 -> 3.61
    case 5: return 8.913;    // FireStorm: 2.53 -> 22.55
    default: {
      // Generic quadratic-with-derating fallback for other nodes.
      const double r = 14.0 / static_cast<double>(tech_nm);
      return r * r * 0.85 + 0.15;
    }
  }
}

double normalized_throughput(double ipc, double freq_ghz) {
  return (ipc * freq_ghz) / (kBoomIpc * kBoomFreqGhz);
}

u32 ucores_needed(double norm_throughput) {
  const double n = static_cast<double>(kBoomUcores) * norm_throughput;
  return static_cast<u32>(std::llround(n));
}

FireGuardCost per_core_cost(const CoreSpec& core) {
  FireGuardCost c;
  c.filter_width = core.commit_width;
  c.norm_throughput = core.norm_throughput_override > 0.0
                          ? core.norm_throughput_override
                          : normalized_throughput(core.ipc, core.freq_ghz);
  c.n_ucores = ucores_needed(c.norm_throughput);
  c.transport_mm2 =
      kFilterArea4Way * (static_cast<double>(c.filter_width) / 4.0) + kMapperArea;
  c.overhead_mm2 = c.n_ucores * kRocketArea + c.transport_mm2;
  c.core_area_14nm = core.area_native_mm2 * scale_to_14nm(core.tech_nm);
  c.pct_of_core = 100.0 * c.overhead_mm2 / c.core_area_14nm;
  return c;
}

double soc_overhead_mm2(const SocSpec& soc) {
  double total = 0.0;
  for (const CoreSpec& core : soc.cores) {
    total += core.count * per_core_cost(core).overhead_mm2;
  }
  return total;
}

double soc_overhead_pct(const SocSpec& soc) {
  FG_CHECK(soc.soc_area_14nm > 0.0);
  return 100.0 * soc_overhead_mm2(soc) / soc.soc_area_14nm;
}

std::vector<SocSpec> table3_socs() {
  std::vector<SocSpec> v;
  {
    SocSpec s;
    s.name = "BOOM SoC";
    s.cores.push_back({"BOOM", 3.2, 14, 1.11, 1.3, 4, 1});
    s.soc_area_14nm = kSocArea;
    v.push_back(s);
  }
  {
    SocSpec s;
    s.name = "M1-Pro";
    // Performance cores (FireStorm, IPC from the paper) + efficiency cores.
    s.cores.push_back({"FireStorm", 3.2, 5, 2.53, 3.79, 8, 8});
    s.cores.push_back({"IceStorm", 2.06, 5, 0.65, 1.30, 4, 2});
    // SoC area normalized to 14nm (die-shot derived in the paper; the
    // percentage below lands at the paper's <1%).
    s.soc_area_14nm = 1298.0;
    v.push_back(s);
  }
  {
    SocSpec s;
    s.name = "Kirin-960";
    // The paper measures the A76's normalized throughput at 1.27 (Table III)
    // rather than the 1.39 the analytic IPC x freq product would give.
    s.cores.push_back({"Cortex-A76", 2.8, 7, 1.23, 2.07, 4, 4, 1.27});
    s.cores.push_back({"Cortex-A55", 1.8, 7, 0.45, 0.90, 2, 4});
    s.soc_area_14nm = 216.0;
    v.push_back(s);
  }
  {
    SocSpec s;
    s.name = "i7-12700F";
    // The paper's SoC-level number covers the performance cores (the
    // i7-12700F's E-cores are disabled in its per-core analysis).
    s.cores.push_back({"AlderLake-S P", 4.9, 10, 7.30, 2.83, 6, 8});
    s.soc_area_14nm = 674.0;
    v.push_back(s);
  }
  return v;
}

PhysicalBreakdown physical_breakdown() {
  PhysicalBreakdown b{};
  b.transport_mm2 = kFilterArea4Way + kMapperArea;
  b.transport_pct_boom = 100.0 * b.transport_mm2 / kBoomArea;
  b.transport_pct_soc = 100.0 * b.transport_mm2 / kSocArea;
  b.fireguard4_mm2 = kBoomUcores * kRocketArea + b.transport_mm2;
  b.fireguard4_pct_boom = 100.0 * b.fireguard4_mm2 / kBoomArea;
  b.fireguard4_pct_soc = 100.0 * b.fireguard4_mm2 / kSocArea;
  return b;
}

}  // namespace fg::area
