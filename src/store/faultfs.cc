#include "src/store/faultfs.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/common/env.h"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace fg::store {

namespace {

struct FaultState {
  std::mutex mu;
  FaultConfig cfg;
  bool configured = false;   // set by fault_configure/fault_clear
  bool env_loaded = false;   // FG_FAULT auto-load happened
  std::atomic<bool> active{false};
  std::atomic<u64> ops[4] = {{0}, {0}, {0}, {0}};  // per FaultSite
};

FaultState& state() {
  static FaultState s;
  return s;
}

/// splitmix64: deterministic per-(seed, site, ordinal) Bernoulli hash for
/// probabilistic rules — no stream state, so concurrent sites can't skew
/// each other's draws.
u64 mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void load_env_locked(FaultState& s) {
  if (s.configured || s.env_loaded) return;
  s.env_loaded = true;
  const char* v = std::getenv("FG_FAULT");
  if (v == nullptr || *v == '\0') return;
  FaultConfig cfg;
  std::string err;
  if (!parse_fault_spec(v, &cfg, &err)) {
    std::fprintf(stderr,
                 "FATAL: environment variable FG_FAULT=\"%s\" is malformed: "
                 "%s. Unset it or fix the value.\n",
                 v, err.c_str());
    std::abort();
  }
  s.cfg = std::move(cfg);
  s.active.store(!s.cfg.rules.empty(), std::memory_order_release);
}

/// The rule (if any) firing for the `ordinal`-th op at `site` (1-based for
/// fs sites). Returns the first matching rule in declaration order.
std::optional<FaultRule> match(FaultSite site, u64 ordinal) {
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  load_env_locked(s);
  for (const FaultRule& r : s.cfg.rules) {
    if (r.site != site) continue;
    if (r.percent > 0) {
      const u64 h = mix64(s.cfg.seed ^ (static_cast<u64>(site) << 56) ^
                          ordinal);
      if (h % 100 < r.percent) return r;
    } else if (ordinal >= r.nth && ordinal < r.nth + r.times) {
      return r;
    }
  }
  return std::nullopt;
}

u64 next_ordinal(FaultSite site) {
  return 1 + state().ops[static_cast<size_t>(site)].fetch_add(
                 1, std::memory_order_relaxed);
}

[[noreturn]] void injected_crash(FaultSite site, u64 ordinal) {
  std::fprintf(stderr, "FG_FAULT: injected crash at %s op %llu\n",
               fault_site_name(site), static_cast<unsigned long long>(ordinal));
  std::fflush(stderr);
  std::_Exit(kFaultCrashExit);
}

void injected_hang(u64 ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool fail_with(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

bool parse_clause(const std::string& clause, FaultConfig* out,
                  std::string* err) {
  if (clause.rfind("seed=", 0) == 0) {
    const std::optional<u64> seed = parse_u64_strict(clause.c_str() + 5);
    if (!seed) return fail_with(err, "bad seed in \"" + clause + "\"");
    out->seed = *seed;
    return true;
  }
  const size_t at = clause.find('@');
  const size_t colon = clause.find(':', at == std::string::npos ? 0 : at);
  if (at == std::string::npos || colon == std::string::npos || colon < at) {
    return fail_with(err, "expected kind@site:when in \"" + clause + "\"");
  }
  FaultRule r;
  const std::string kind = clause.substr(0, at);
  if (kind == "torn") r.kind = FaultKind::kTorn;
  else if (kind == "enospc") r.kind = FaultKind::kEnospc;
  else if (kind == "renamefail") r.kind = FaultKind::kRenameFail;
  else if (kind == "crash") r.kind = FaultKind::kCrash;
  else if (kind == "hang") r.kind = FaultKind::kHang;
  else if (kind == "fail") r.kind = FaultKind::kFail;
  else return fail_with(err, "unknown fault kind \"" + kind + "\"");

  const std::string site = clause.substr(at + 1, colon - at - 1);
  if (site == "write") r.site = FaultSite::kWrite;
  else if (site == "rename") r.site = FaultSite::kRename;
  else if (site == "read") r.site = FaultSite::kRead;
  else if (site == "point") r.site = FaultSite::kPoint;
  else return fail_with(err, "unknown fault site \"" + site + "\"");

  std::string when = clause.substr(colon + 1);
  if (when.empty()) return fail_with(err, "empty when in \"" + clause + "\"");
  if (when[0] == 'p') {
    const std::optional<u64> pct = parse_u64_strict(when.c_str() + 1);
    if (!pct || *pct == 0 || *pct > 100) {
      return fail_with(err, "bad percent in \"" + clause + "\"");
    }
    r.percent = static_cast<u32>(*pct);
  } else {
    // nth [x times] [: hang_ms]
    const size_t ms_at = when.find(':');
    if (ms_at != std::string::npos) {
      const std::optional<u64> ms = parse_u64_strict(when.c_str() + ms_at + 1);
      if (!ms) return fail_with(err, "bad hang_ms in \"" + clause + "\"");
      r.hang_ms = *ms;
      when.resize(ms_at);
    }
    const size_t x_at = when.find('x');
    if (x_at != std::string::npos) {
      const std::optional<u64> times = parse_u64_strict(when.c_str() + x_at + 1);
      if (!times || *times == 0 || *times > 0xffff'ffffull) {
        return fail_with(err, "bad times in \"" + clause + "\"");
      }
      r.times = static_cast<u32>(*times);
      when.resize(x_at);
    }
    const std::optional<u64> nth = parse_u64_strict(when.c_str());
    if (!nth) return fail_with(err, "bad op ordinal in \"" + clause + "\"");
    r.nth = *nth;
  }
  out->rules.push_back(r);
  return true;
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kTorn: return "torn";
    case FaultKind::kEnospc: return "enospc";
    case FaultKind::kRenameFail: return "renamefail";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kHang: return "hang";
    case FaultKind::kFail: return "fail";
  }
  return "?";
}

const char* fault_site_name(FaultSite s) {
  switch (s) {
    case FaultSite::kWrite: return "write";
    case FaultSite::kRename: return "rename";
    case FaultSite::kRead: return "read";
    case FaultSite::kPoint: return "point";
  }
  return "?";
}

bool parse_fault_spec(const std::string& text, FaultConfig* out,
                      std::string* err) {
  *out = FaultConfig{};
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string clause =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (clause.empty()) {
      return fail_with(err, "empty clause (doubled or trailing comma)");
    }
    if (!parse_clause(clause, out, err)) return false;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

void fault_configure(const FaultConfig& cfg) {
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.cfg = cfg;
  s.configured = true;
  for (auto& c : s.ops) c.store(0, std::memory_order_relaxed);
  s.active.store(!cfg.rules.empty(), std::memory_order_release);
}

void fault_clear() { fault_configure(FaultConfig{}); }

bool faults_active() {
  // First call probes FG_FAULT (strict parse, loud abort on malformed
  // text) so env-configured fs faults arm before the first filesystem op,
  // not only after the first point_fault() consult.
  static const bool env_probed = [] {
    FaultState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    load_env_locked(s);
    return true;
  }();
  (void)env_probed;
  return state().active.load(std::memory_order_acquire);
}

std::optional<PointFault> point_fault(u64 point_index, u32 attempt) {
  FaultState& s = state();
  {
    // Ensure FG_FAULT is loaded even if no fs op ran yet.
    std::lock_guard<std::mutex> lock(s.mu);
    load_env_locked(s);
  }
  if (!faults_active()) return std::nullopt;
  std::lock_guard<std::mutex> lock(s.mu);
  for (const FaultRule& r : s.cfg.rules) {
    if (r.site != FaultSite::kPoint) continue;
    if (r.percent > 0) {
      if (attempt == 0 &&
          mix64(s.cfg.seed ^ 0xf001'0000'0000'0000ull ^ point_index) % 100 <
              r.percent) {
        return PointFault{r.kind, r.hang_ms};
      }
    } else if (point_index == r.nth && attempt < r.times) {
      return PointFault{r.kind, r.hang_ms};
    }
  }
  return std::nullopt;
}

bool read_file(const std::string& path, std::string* out, std::string* err) {
  out->clear();
  if (faults_active()) {
    const u64 n = next_ordinal(FaultSite::kRead);
    if (const auto r = match(FaultSite::kRead, n)) {
      if (r->kind == FaultKind::kCrash) injected_crash(FaultSite::kRead, n);
      if (r->kind == FaultKind::kHang) injected_hang(r->hang_ms);
      if (r->kind != FaultKind::kHang) {
        return fail_with(err, "injected read fault (" +
                                  std::string(fault_kind_name(r->kind)) + ")");
      }
    }
  }
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return fail_with(err, "cannot read " + path + ": " + std::strerror(errno));
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) {
    return fail_with(err, "read error on " + path);
  }
  return true;
}

bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* err) {
  std::optional<FaultRule> injected;
  u64 ordinal = 0;
  if (faults_active()) {
    ordinal = next_ordinal(FaultSite::kWrite);
    injected = match(FaultSite::kWrite, ordinal);
    if (injected && injected->kind == FaultKind::kHang) {
      injected_hang(injected->hang_ms);
      injected.reset();  // hang, then succeed
    }
  }
  // Unique temp sibling: pid + a global counter, so concurrent publishers
  // of the same entry never collide on the temp name, and the final rename
  // is the single atomic commit point.
  static std::atomic<u64> temp_seq{0};
  const u64 seq = temp_seq.fetch_add(1, std::memory_order_relaxed);
#if defined(_WIN32)
  const u64 pid = 0;
#else
  const u64 pid = static_cast<u64>(::getpid());
#endif
  const std::string tmp = path + ".tmp." + std::to_string(pid) + "." +
                          std::to_string(seq);
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return fail_with(err, "cannot write " + tmp + ": " + std::strerror(errno));
  }
  size_t to_write = content.size();
  if (injected && injected->kind == FaultKind::kTorn) to_write /= 2;
  if (injected && injected->kind == FaultKind::kEnospc) to_write /= 3;
  if (to_write > 0 && std::fwrite(content.data(), 1, to_write, f) != to_write) {
    std::fclose(f);
    remove_file(tmp);
    return fail_with(err, "short write on " + tmp);
  }
  if (injected && injected->kind == FaultKind::kTorn) {
    // A torn write is a crash frozen mid-write: the truncated temp file
    // stays behind (the store must never pick it up) and the publish fails.
    std::fclose(f);
    return fail_with(err, "injected torn write (truncated temp left at " +
                              tmp + ")");
  }
  if (injected && injected->kind == FaultKind::kEnospc) {
    std::fclose(f);
    remove_file(tmp);
    return fail_with(err, "injected ENOSPC writing " + path);
  }
  if (std::fflush(f) != 0) {
    std::fclose(f);
    remove_file(tmp);
    return fail_with(err, "flush failed on " + tmp);
  }
#if !defined(_WIN32)
  // fsync before rename: the rename must never be durable before the data.
  if (::fsync(::fileno(f)) != 0) {
    std::fclose(f);
    remove_file(tmp);
    return fail_with(err, "fsync failed on " + tmp);
  }
#endif
  std::fclose(f);
  if (injected && injected->kind == FaultKind::kCrash) {
    // The worst instant: data durable in the temp, rename not yet issued.
    injected_crash(FaultSite::kWrite, ordinal);
  }
  if (injected && (injected->kind == FaultKind::kRenameFail ||
                   injected->kind == FaultKind::kFail)) {
    remove_file(tmp);
    return fail_with(err, "injected rename failure publishing " + path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string reason = std::strerror(errno);
    remove_file(tmp);
    return fail_with(err, "rename " + tmp + " -> " + path + ": " + reason);
  }
  return true;
}

bool rename_file(const std::string& from, const std::string& to,
                 std::string* err) {
  if (faults_active()) {
    const u64 n = next_ordinal(FaultSite::kRename);
    if (const auto r = match(FaultSite::kRename, n)) {
      if (r->kind == FaultKind::kCrash) injected_crash(FaultSite::kRename, n);
      if (r->kind == FaultKind::kHang) {
        injected_hang(r->hang_ms);
      } else {
        return fail_with(err, "injected rename fault (" +
                                  std::string(fault_kind_name(r->kind)) + ")");
      }
    }
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return fail_with(err,
                     "rename " + from + " -> " + to + ": " + std::strerror(errno));
  }
  return true;
}

bool remove_file(const std::string& path) {
  return std::remove(path.c_str()) == 0;
}

bool make_dirs(const std::string& path, std::string* err) {
  if (path.empty()) return fail_with(err, "empty directory path");
  std::string prefix;
  prefix.reserve(path.size());
  size_t pos = 0;
  while (pos <= path.size()) {
    const size_t slash = path.find('/', pos);
    prefix = path.substr(0, slash == std::string::npos ? path.size() : slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // leading '/'
#if defined(_WIN32)
    const int rc = ::_mkdir(prefix.c_str());
#else
    const int rc = ::mkdir(prefix.c_str(), 0777);
#endif
    if (rc != 0 && errno != EEXIST) {
      return fail_with(err,
                       "mkdir " + prefix + ": " + std::strerror(errno));
    }
    struct stat st{};
    if (::stat(prefix.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
      return fail_with(err, prefix + " exists and is not a directory");
    }
  }
  return true;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace fg::store
