#include "src/store/result_store.h"

#include <filesystem>

#include "src/common/json.h"
#include "src/store/faultfs.h"

namespace fg::store {

u64 fnv1a64(const std::string& s) {
  u64 h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hash_hex(const std::string& key) {
  static const char* kHex = "0123456789abcdef";
  u64 h = fnv1a64(key);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[h & 0xf];
    h >>= 4;
  }
  return out;
}

bool ResultStore::open(const std::string& dir, std::string* err) {
  std::string e;
  if (!make_dirs(dir + "/objects", &e) || !make_dirs(dir + "/quarantine", &e) ||
      !make_dirs(dir + "/campaigns", &e)) {
    if (err != nullptr) *err = "store: " + e;
    return false;
  }
  const std::string fmt_path = dir + "/format.json";
  std::string text;
  if (read_file(fmt_path, &text, nullptr)) {
    json::Value v;
    if (!json::parse(text, &v) || !v.is_object()) {
      if (err != nullptr) {
        *err = "store: " + fmt_path + " is unreadable (corrupt store root?)";
      }
      return false;
    }
    const u64 fmt = v.get_u64("format");
    if (fmt > kFormatVersion) {
      if (err != nullptr) {
        *err = "store: " + dir + " uses future format " + std::to_string(fmt) +
               " (this build understands " + std::to_string(kFormatVersion) +
               ")";
      }
      return false;
    }
  } else {
    json::Value v = json::Value::object();
    v.set("schema", json::Value::of_str("fireguard/store/v1"));
    v.set("format", json::Value::of(kFormatVersion));
    if (!write_file_atomic(fmt_path, json::dump(v, 2) + "\n", &e)) {
      if (err != nullptr) *err = "store: " + e;
      return false;
    }
  }
  dir_ = dir;
  return true;
}

std::string ResultStore::entry_path(const std::string& key) const {
  const std::string h = hash_hex(key);
  return objects_dir() + "/" + h.substr(0, 2) + "/" + h + ".json";
}

bool ResultStore::put(const std::string& key, const std::string& payload,
                      std::string* err) {
  const std::string path = entry_path(key);
  json::Value v = json::Value::object();
  v.set("format", json::Value::of(kFormatVersion));
  v.set("checksum", json::Value::of_str(hash_hex(payload)));
  v.set("key", json::Value::of_str(key));
  v.set("payload", json::Value::of_str(payload));
  std::string e;
  const std::string parent = path.substr(0, path.rfind('/'));
  if (!make_dirs(parent, &e) ||
      !write_file_atomic(path, json::dump(v), &e)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.publish_failures;
    if (err != nullptr) *err = "store: " + e;
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.publishes;
  return true;
}

ResultStore::Validity ResultStore::validate_entry(
    const std::string& text, const std::string* expect_key,
    const std::string& expect_hash, std::string* payload,
    std::string* reason) const {
  json::Value v;
  if (!json::parse(text, &v) || !v.is_object()) {
    *reason = "parse";
    return Validity::kCorrupt;
  }
  const json::Value* fmt = v.get("format");
  if (fmt == nullptr || fmt->kind != json::Value::Kind::kNumber ||
      fmt->num != kFormatVersion) {
    *reason = "format";
    return Validity::kCorrupt;
  }
  const json::Value* key = v.get("key");
  const json::Value* sum = v.get("checksum");
  const json::Value* pay = v.get("payload");
  if (key == nullptr || sum == nullptr || pay == nullptr ||
      key->kind != json::Value::Kind::kString ||
      sum->kind != json::Value::Kind::kString ||
      pay->kind != json::Value::Kind::kString) {
    *reason = "field";
    return Validity::kCorrupt;
  }
  if (sum->str != hash_hex(pay->str)) {
    *reason = "checksum";
    return Validity::kCorrupt;
  }
  if (expect_key != nullptr) {
    if (key->str != *expect_key) return Validity::kWrongKey;
  } else if (hash_hex(key->str) != expect_hash) {
    // Audit path: the entry's address must be the hash of its stored key,
    // or a stray copy/rename put a valid entry at the wrong address.
    *reason = "address";
    return Validity::kCorrupt;
  }
  *payload = pay->str;
  return Validity::kValid;
}

void ResultStore::quarantine(const std::string& path,
                             const std::string& reason) {
  std::string e;
  (void)make_dirs(quarantine_dir(), &e);
  const std::string base = path.substr(path.rfind('/') + 1);
  // First free slot: repeated corruption of the same entry keeps every
  // generation of evidence.
  for (int n = 0; n < 1000; ++n) {
    // Built by append, not chained operator+ (GCC 12's -Wrestrict false
    // positive on rvalue string concatenation, PR105329).
    std::string dst = quarantine_dir();
    dst += '/';
    dst += base;
    dst += '.';
    dst += reason;
    if (n > 0) {
      dst += '.';
      dst += std::to_string(n);
    }
    if (file_exists(dst)) continue;
    if (rename_file(path, dst, &e)) break;
    // Rename refused (injected fault or cross-device): fall back to
    // removing the corrupt entry so it can never be loaded.
    remove_file(path);
    break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.quarantined;
}

ResultStore::GetStatus ResultStore::get(const std::string& key,
                                        std::string* payload) {
  payload->clear();
  const std::string path = entry_path(key);
  std::string text;
  if (!file_exists(path) || !read_file(path, &text, nullptr)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return GetStatus::kMiss;
  }
  std::string reason;
  switch (validate_entry(text, &key, "", payload, &reason)) {
    case Validity::kValid: {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.hits;
      return GetStatus::kHit;
    }
    case Validity::kWrongKey: {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.collisions;
      ++stats_.misses;
      return GetStatus::kMiss;
    }
    case Validity::kCorrupt:
      break;
  }
  quarantine(path, reason);
  payload->clear();
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  return GetStatus::kMiss;
}

bool ResultStore::contains(const std::string& key) {
  std::string payload;
  return get(key, &payload) == GetStatus::kHit;
}

bool ResultStore::audit(AuditReport* report, std::string* err) {
  *report = AuditReport{};
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const fs::directory_entry& shard :
       fs::directory_iterator(objects_dir(), ec)) {
    if (!shard.is_directory()) continue;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(shard.path(), ec)) {
      const std::string path = entry.path().string();
      // Skip temp files a crashed publisher left behind — they were never
      // published and are invisible to get().
      if (path.size() < 5 || path.compare(path.size() - 5, 5, ".json") != 0) {
        continue;
      }
      ++report->entries;
      std::string text;
      if (!read_file(path, &text, nullptr)) {
        quarantine(path, "unreadable");
        ++report->quarantined;
        continue;
      }
      const std::string base = entry.path().stem().string();  // hash16
      std::string payload, reason;
      switch (validate_entry(text, nullptr, base, &payload, &reason)) {
        case Validity::kValid:
          ++report->ok;
          break;
        case Validity::kWrongKey:  // unreachable on the audit path
        case Validity::kCorrupt:
          quarantine(path, reason);
          ++report->quarantined;
          break;
      }
    }
  }
  if (ec) {
    if (err != nullptr) *err = "store: audit walk failed: " + ec.message();
    return false;
  }
  return true;
}

StoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fg::store
