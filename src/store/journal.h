// Append-only campaign journal: the crash-safe record of a campaign's
// point state (pending / attempted / done / failed).
//
// The journal is bookkeeping, not truth: resumability comes from the
// content-addressed ResultStore (a point is done iff its validated entry
// exists). What the journal adds is what the store cannot know — how many
// attempts a point has consumed (so a resumed campaign keeps honest retry
// accounting), which points failed permanently and why, and a forensic
// trail of the run for the kill-and-resume drill.
//
// Crash model: events are appended line-by-line and flushed; a SIGKILL can
// at worst tear the final line, which the loader tolerates by ignoring any
// trailing line without a '\n'. The header binds the file to one campaign
// (the hash of the campaign's canonical spec), so resuming with a different
// spec against the same journal path is a loud error, not silent mixing.
//
// File format (one event per line):
//   campaign <key-hash-16hex> <n_points>
//   begin <index> <attempt>
//   done <index> run|cache
//   fail <index> <reason-slug>
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace fg::store {

class CampaignJournal {
 public:
  struct PointState {
    u32 attempts = 0;  // begin events seen (all runs of this journal)
    bool done = false;
    bool cached = false;  // done via a store hit, not a fresh simulation
    bool failed = false;  // a fail event not followed by done
  };

  CampaignJournal() = default;
  ~CampaignJournal();
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  /// Open `path` for the campaign addressed by `campaign_hash` (16-hex) over
  /// `n_points` grid points. An existing journal replays its events into
  /// points() — the resume path; a header naming a different campaign or
  /// grid size is an error. A fresh file is created with the header.
  bool open(const std::string& path, const std::string& campaign_hash,
            size_t n_points, std::string* err);
  void close();
  bool is_open() const { return f_ != nullptr; }

  const std::vector<PointState>& points() const { return points_; }
  size_t n_done() const;

  // Event appends (flushed immediately; false on write error).
  bool record_begin(u32 index, u32 attempt);
  bool record_done(u32 index, bool cached);
  bool record_failed(u32 index, const std::string& reason);

 private:
  bool append(const std::string& line);

  std::FILE* f_ = nullptr;
  std::vector<PointState> points_;
};

}  // namespace fg::store
