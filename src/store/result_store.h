// Disk-backed, content-addressed result store.
//
// Maps a canonical key string (for experiment results: the canonical
// serialized ExperimentSpec, which PR 5 made bit-exact — equal specs ⇔
// equal strings) to an opaque payload (the outcome JSON). This is the
// durable generalization of the in-memory BaselineCache: once a point has
// been simulated and published, no process ever simulates it again — a
// crash, OOM kill, or power cut between campaigns costs only the points not
// yet published.
//
// Durability contract:
//  * Publishes are atomic (unique temp sibling + fsync + rename via
//    store::write_file_atomic): a reader — concurrent or after a crash —
//    sees the old entry or the new one, never a mix.
//  * Every entry carries a format version and a checksum of its payload.
//    A truncated, bit-flipped, stale-format, or otherwise unparsable entry
//    is DETECTED on load, moved aside into quarantine/ (evidence, not
//    destruction), and reported as a miss so the caller recomputes — a
//    corrupt entry is never loaded as a result.
//  * Keys are addressed by a 64-bit FNV-1a hash of the canonical key, but
//    the full key is stored inside the entry and verified on load: a hash
//    collision reads as a miss (and the later publish overwrites), never as
//    the wrong experiment's result.
#pragma once

#include <mutex>
#include <string>

#include "src/common/types.h"

namespace fg::store {

/// FNV-1a 64-bit over the bytes of `s`.
u64 fnv1a64(const std::string& s);

/// 16-char lowercase-hex FNV-1a hash — the store's address form.
std::string hash_hex(const std::string& key);

struct StoreStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 collisions = 0;   // valid entry, different key (hash collision)
  u64 quarantined = 0;  // corrupt entries moved aside by get()/audit()
  u64 publishes = 0;
  u64 publish_failures = 0;
};

class ResultStore {
 public:
  /// Entry format version. Entries with any other version are quarantined
  /// on load (stale format = recompute, never misinterpret).
  static constexpr u64 kFormatVersion = 1;

  ResultStore() = default;
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Open (creating the layout if needed): dir/format.json, dir/objects/,
  /// dir/quarantine/, dir/campaigns/. Fails when the directory cannot be
  /// created/written or dir/format.json announces a future store format.
  bool open(const std::string& dir, std::string* err);
  bool is_open() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Atomic, checksummed publish of `payload` under `key`. Thread- and
  /// process-safe: concurrent publishers of the same key each write a
  /// unique temp and the last rename wins (deterministic payloads make the
  /// race harmless).
  bool put(const std::string& key, const std::string& payload,
           std::string* err);

  /// Validated load. kMiss covers: absent entry, hash collision (an entry
  /// for a different key), and corrupt entries — which are additionally
  /// quarantined before returning.
  enum class GetStatus { kHit, kMiss };
  GetStatus get(const std::string& key, std::string* payload);
  bool contains(const std::string& key);

  /// Validate every entry in objects/ (checksum + format + address match).
  /// Corrupt entries are quarantined. `ok` counts clean entries.
  struct AuditReport {
    u64 entries = 0;
    u64 ok = 0;
    u64 quarantined = 0;
  };
  bool audit(AuditReport* report, std::string* err);

  StoreStats stats() const;

  /// objects/<hh>/<hash16>.json for this key.
  std::string entry_path(const std::string& key) const;
  std::string objects_dir() const { return dir_ + "/objects"; }
  std::string quarantine_dir() const { return dir_ + "/quarantine"; }
  std::string campaigns_dir() const { return dir_ + "/campaigns"; }

 private:
  enum class Validity { kValid, kWrongKey, kCorrupt };
  /// Parse + verify one entry text. On kValid fills *payload; on kCorrupt
  /// fills *reason with a short slug (parse/format/checksum/field).
  /// `expect_key == nullptr` checks the address (hash of the stored key)
  /// against `expect_hash` instead — the audit path.
  Validity validate_entry(const std::string& text, const std::string* expect_key,
                          const std::string& expect_hash, std::string* payload,
                          std::string* reason) const;
  void quarantine(const std::string& path, const std::string& reason);

  std::string dir_;
  mutable std::mutex mu_;  // guards stats_
  StoreStats stats_;
};

}  // namespace fg::store
