#include "src/store/journal.h"

#include <cstring>

#include "src/store/faultfs.h"

namespace fg::store {

namespace {

bool fail_with(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

/// Split into complete lines; a trailing fragment without '\n' (a torn
/// final append) is dropped, not parsed.
std::vector<std::string> complete_lines(const std::string& text) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // torn tail
    out.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return out;
}

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < line.size()) {
    const size_t sp = line.find(' ', pos);
    const size_t end = sp == std::string::npos ? line.size() : sp;
    if (end > pos) out.push_back(line.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

}  // namespace

CampaignJournal::~CampaignJournal() { close(); }

void CampaignJournal::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

bool CampaignJournal::open(const std::string& path,
                           const std::string& campaign_hash, size_t n_points,
                           std::string* err) {
  close();
  points_.assign(n_points, PointState{});

  std::string text;
  const bool existed = file_exists(path) && read_file(path, &text, nullptr);
  if (existed) {
    const std::vector<std::string> lines = complete_lines(text);
    if (lines.empty()) {
      // A file whose header never finished (killed during creation):
      // treated as fresh.
    } else {
      const std::vector<std::string> head = split_words(lines[0]);
      if (head.size() != 3 || head[0] != "campaign") {
        return fail_with(err, "journal " + path + ": unrecognized header");
      }
      if (head[1] != campaign_hash) {
        return fail_with(err, "journal " + path +
                                  " belongs to a different campaign (" +
                                  head[1] + " != " + campaign_hash + ")");
      }
      if (head[2] != std::to_string(n_points)) {
        return fail_with(err, "journal " + path + ": grid size mismatch (" +
                                  head[2] + " != " +
                                  std::to_string(n_points) + ")");
      }
      for (size_t i = 1; i < lines.size(); ++i) {
        const std::vector<std::string> w = split_words(lines[i]);
        if (w.size() < 2) continue;  // unknown/garbled event: skip, don't die
        char* end = nullptr;
        const unsigned long idx = std::strtoul(w[1].c_str(), &end, 10);
        if (end == w[1].c_str() || idx >= points_.size()) continue;
        PointState& p = points_[idx];
        if (w[0] == "begin") {
          ++p.attempts;
        } else if (w[0] == "done") {
          p.done = true;
          p.failed = false;
          p.cached = w.size() > 2 && w[2] == "cache";
        } else if (w[0] == "fail") {
          p.failed = true;
        }
      }
    }
  }

  f_ = std::fopen(path.c_str(), existed && !text.empty() ? "a" : "w");
  if (f_ == nullptr) {
    return fail_with(err, "journal: cannot open " + path + " for append");
  }
  if (!existed || text.empty()) {
    if (!append("campaign " + campaign_hash + " " +
                std::to_string(n_points))) {
      close();
      return fail_with(err, "journal: cannot write header to " + path);
    }
  }
  return true;
}

size_t CampaignJournal::n_done() const {
  size_t n = 0;
  for (const PointState& p : points_) n += p.done ? 1 : 0;
  return n;
}

bool CampaignJournal::append(const std::string& line) {
  if (f_ == nullptr) return false;
  if (std::fwrite(line.data(), 1, line.size(), f_) != line.size()) return false;
  if (std::fputc('\n', f_) == EOF) return false;
  return std::fflush(f_) == 0;
}

bool CampaignJournal::record_begin(u32 index, u32 attempt) {
  if (index < points_.size()) ++points_[index].attempts;
  return append("begin " + std::to_string(index) + " " +
                std::to_string(attempt));
}

bool CampaignJournal::record_done(u32 index, bool cached) {
  if (index < points_.size()) {
    points_[index].done = true;
    points_[index].failed = false;
    points_[index].cached = cached;
  }
  return append("done " + std::to_string(index) +
                (cached ? " cache" : " run"));
}

bool CampaignJournal::record_failed(u32 index, const std::string& reason) {
  if (index < points_.size()) points_[index].failed = true;
  std::string slug;
  for (const char c : reason) {
    slug += (c == ' ' || c == '\n' || c == '\t') ? '_' : c;
  }
  if (slug.empty()) slug = "unknown";
  return append("fail " + std::to_string(index) + " " + slug);
}

}  // namespace fg::store
