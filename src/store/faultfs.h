// Fault-injectable filesystem primitives for the durable result store.
//
// Every byte the store layer persists goes through the small set of
// primitives below (atomic temp+rename publish, whole-file read, rename,
// mkdir), so a single injection point can exercise every recovery path the
// store claims to have: torn writes, ENOSPC, failed renames, and a process
// crash at the worst possible instant (temp written, rename pending). The
// campaign runner additionally consults `point_fault` so hung and crashed
// simulation points are injectable too.
//
// Injection is controlled by the FG_FAULT environment variable (or
// programmatically via fault_configure), strict-parsed like FG_TRACE_LEN:
// a malformed spec is a loud, immediate abort, never a silently fault-free
// run. Grammar (clauses comma-separated):
//
//   FG_FAULT = clause[,clause...]
//   clause   = "seed=" u64                       seed for probabilistic rules
//            | kind "@" site ":" when
//   kind     = torn | enospc | renamefail | crash | hang | fail
//   site     = write | rename | read | point
//   when     = nth ["x" times] [":" hang_ms]     1-based op ordinal / point
//            | "p" percent                       seeded per-op probability
//
// Examples:
//   FG_FAULT=torn@write:3            third atomic write is torn (temp file
//                                    left truncated, publish fails)
//   FG_FAULT=crash@point:7           grid point 7 crashes on its first
//                                    attempt (retries run clean)
//   FG_FAULT=crash@point:7x99        ...and on every retry (a permafail)
//   FG_FAULT=hang@point:2:5000       point 2 hangs 5 s on attempt one
//   FG_FAULT=seed=42,enospc@write:p25  every write fails ENOSPC with
//                                    probability 25%, deterministic in 42
//
// Determinism: nth-based rules count operations in process-global order;
// probabilistic rules hash (seed, site, ordinal), so a given FG_FAULT value
// injects the identical fault sequence on every run of the same workload.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace fg::store {

enum class FaultKind : u8 { kTorn, kEnospc, kRenameFail, kCrash, kHang, kFail };
enum class FaultSite : u8 { kWrite, kRename, kRead, kPoint };

const char* fault_kind_name(FaultKind k);
const char* fault_site_name(FaultSite s);

struct FaultRule {
  FaultKind kind = FaultKind::kFail;
  FaultSite site = FaultSite::kWrite;
  /// 1-based op ordinal (write/rename/read sites) or 0-based grid point
  /// index (point site). Ignored when percent > 0.
  u64 nth = 0;
  /// Consecutive matching ops affected from nth on; for the point site,
  /// the number of attempts affected (1 = first attempt only, so the retry
  /// path is exercised and succeeds).
  u32 times = 1;
  /// When > 0: seeded Bernoulli per matching op instead of nth.
  u32 percent = 0;
  /// Sleep for kHang, in milliseconds.
  u64 hang_ms = 30'000;
};

struct FaultConfig {
  u64 seed = 0;
  std::vector<FaultRule> rules;
};

/// Parse the FG_FAULT grammar. Returns false with a message in *err on any
/// malformed clause (unknown kind/site, junk suffix, overflow).
bool parse_fault_spec(const std::string& text, FaultConfig* out,
                      std::string* err);

/// Install a fault table and reset the per-site op counters. Thread-safe.
void fault_configure(const FaultConfig& cfg);

/// Remove all rules and reset counters (tests call this in SetUp).
void fault_clear();

/// True when any rule is installed (cheap; the fast path for clean runs).
bool faults_active();

/// The fault (if any) armed for `point_index` at `attempt` (0-based). The
/// campaign runner consults this before executing a grid point.
struct PointFault {
  FaultKind kind = FaultKind::kFail;
  u64 hang_ms = 0;
};
std::optional<PointFault> point_fault(u64 point_index, u32 attempt);

// --- filesystem primitives (all fault-injectable) --------------------------
//
// On first use, the fault table self-initializes from FG_FAULT (strict
// parse, loud abort on malformed text) unless fault_configure/fault_clear
// ran first. All functions return false with a one-line reason in *err
// (when non-null); none throw.

/// Read the whole file into *out. kFail@read injects an I/O error.
bool read_file(const std::string& path, std::string* out, std::string* err);

/// Durable atomic publish: write to a unique temp sibling, flush + fsync,
/// rename over `path`. A crash (real or injected) at any instant leaves
/// either the old content or the new — never a mix. Injection points:
/// kTorn (truncated temp left behind, publish fails), kEnospc (partial
/// write, temp removed, fails), kRenameFail, kCrash (process exits between
/// temp write and rename), kHang (sleeps, then succeeds).
bool write_file_atomic(const std::string& path, const std::string& content,
                       std::string* err);

/// Rename with injection (kRenameFail / kCrash before the rename).
bool rename_file(const std::string& from, const std::string& to,
                 std::string* err);

/// Best-effort unlink (no injection; used for cleanup).
bool remove_file(const std::string& path);

/// mkdir -p. Returns false when a component exists as a non-directory or
/// creation fails.
bool make_dirs(const std::string& path, std::string* err);

bool file_exists(const std::string& path);

/// Exit code used by injected kCrash faults (recognizable in waitpid).
inline constexpr int kFaultCrashExit = 86;

}  // namespace fg::store
