// The main core's memory hierarchy per Table II:
//   L1I 32KB/8-way, L1D 32KB/8-way (8 MSHRs each), shared L2 512KB/8-way
//   (12 MSHRs), LLC 4MB/8-way (8 MSHRs), DDR3 DRAM behind a 1GHz bus.
#pragma once

#include <memory>
#include <optional>

#include "src/mem/cache.h"
#include "src/mem/dram.h"
#include "src/mem/ptw.h"
#include "src/mem/tlb.h"

namespace fg::mem {

struct HierarchyConfig {
  CacheConfig l1i{32 * 1024, 8, 64, 2, 8};
  CacheConfig l1d{32 * 1024, 8, 64, 3, 8};
  CacheConfig l2{512 * 1024, 8, 64, 12, 12};
  CacheConfig llc{4 * 1024 * 1024, 8, 64, 30, 8};
  u32 dram_latency = 190;  // core cycles @3.2GHz (~60ns DDR3-1066)
  TlbConfig itlb{32, 4096, 60};
  TlbConfig dtlb{32, 4096, 80};
  /// Replace the flat dram_latency with the bank/row/bus DRAM model. Off by
  /// default: the reproduction was calibrated on the flat model; the DRAM
  /// tests and the memory ablation exercise it.
  bool detailed_dram = false;
  DramConfig dram{};
  /// Replace the TLBs' flat walk latency with a real Sv39 page-table walk
  /// through L2/LLC/DRAM (three dependent PTE reads). Off by default.
  bool detailed_ptw = false;
  PtwConfig ptw{};
};

/// Composes the cache levels into single-call data / instruction accesses
/// that return total latency in core cycles.
class MemHierarchy {
 public:
  explicit MemHierarchy(const HierarchyConfig& cfg = {});

  /// Data access (load or store) at cycle `now`; returns latency.
  u32 access_data(u64 vaddr, bool write, Cycle now);

  /// Instruction fetch at cycle `now`; returns latency.
  u32 access_inst(u64 vaddr, Cycle now);

  void flush();

  /// Functionally warm [lo, hi) into the L2/LLC (models a program that has
  /// been running long before the measured window; L1s and TLBs stay cold).
  void warm_region(u64 lo, u64 hi);

  /// Zero all counters (after warming).
  void reset_stats();

  const Cache& l1i() const { return l1i_; }
  const Cache& l1d() const { return l1d_; }
  const Cache& l2() const { return l2_; }
  const Cache& llc() const { return llc_; }
  const Tlb& itlb() const { return itlb_; }
  const Tlb& dtlb() const { return dtlb_; }
  const DramModel* dram() const { return dram_ ? &*dram_ : nullptr; }
  const PageTableWalker* ptw() const { return ptw_ ? &*ptw_ : nullptr; }

 private:
  u32 beyond_l1(u64 addr, Cycle now, bool write = false);
  u32 memory_latency(u64 addr, Cycle now);
  u32 translate(Tlb& tlb, u64 vaddr, Cycle now);

  HierarchyConfig cfg_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  Cache llc_;
  Tlb itlb_;
  Tlb dtlb_;
  std::optional<DramModel> dram_;
  std::optional<PageTableWalker> ptw_;
};

}  // namespace fg::mem
