#include "src/mem/dram.h"

#include <algorithm>

#include "src/common/check.h"

namespace fg::mem {

DramModel::DramModel(const DramConfig& cfg) : cfg_(cfg), banks_(cfg.n_banks) {
  FG_CHECK(cfg_.n_banks > 0 && cfg_.max_requests > 0);
  inflight_.reserve(cfg_.max_requests);
}

u32 DramModel::access(u64 addr, Cycle now) {
  ++stats_.requests;

  // Bounded request window: if 32 requests are outstanding at `now`, this
  // one is accepted only when the oldest completes.
  Cycle issue = now;
  std::erase_if(inflight_, [now](Cycle c) { return c <= now; });
  if (inflight_.size() >= cfg_.max_requests) {
    const Cycle oldest = *std::min_element(inflight_.begin(), inflight_.end());
    issue = std::max(issue, oldest);
    ++stats_.queue_stalls;
    std::erase_if(inflight_, [issue](Cycle c) { return c <= issue; });
  }

  Bank& bank = banks_[bank_of(addr)];
  const u64 row = row_of(addr);
  Cycle start = std::max(issue, bank.busy_until);
  u32 array_lat;
  if (bank.open_row == row) {
    array_lat = cfg_.t_cas;
    ++stats_.row_hits;
  } else if (bank.open_row == ~u64{0}) {
    array_lat = cfg_.t_rcd + cfg_.t_cas;
    ++stats_.row_closed;
  } else {
    array_lat = cfg_.t_rp + cfg_.t_rcd + cfg_.t_cas;
    ++stats_.row_conflicts;
  }
  bank.open_row = row;

  // Data-bus serialization: the burst occupies the shared bus.
  const Cycle data_start = std::max(start + array_lat, bus_free_);
  const Cycle done = data_start + cfg_.burst_cycles;
  bus_free_ = done;
  bank.busy_until = start + array_lat;  // bank free after the column access

  inflight_.push_back(done);
  FG_CHECK(done >= now);
  return static_cast<u32>(done - now);
}

}  // namespace fg::mem
