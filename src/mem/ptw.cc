#include "src/mem/ptw.h"

#include "src/common/check.h"

namespace fg::mem {

PageTableWalker::PageTableWalker(const PtwConfig& cfg, PteAccess pte_access)
    : cfg_(cfg), pte_access_(std::move(pte_access)) {
  FG_CHECK(cfg_.levels >= 1 && cfg_.levels <= 5);
  FG_CHECK(pte_access_ != nullptr);
}

u64 PageTableWalker::pte_addr(u64 vaddr, u32 level) const {
  FG_CHECK(level < cfg_.levels);
  // VPN slice for this level (level 0 uses the most-significant slice).
  const u32 slice_lo =
      cfg_.page_bits + (cfg_.levels - 1 - level) * cfg_.index_bits;
  const u64 index = (vaddr >> slice_lo) & ((u64{1} << cfg_.index_bits) - 1);
  // Table bases are derived deterministically from the upper VPN bits so
  // distinct regions get distinct (but stable) table pages — enough
  // structure for cache behaviour without maintaining real page tables.
  const u64 region = level == 0 ? 0 : (vaddr >> (slice_lo + cfg_.index_bits));
  const u64 table_base =
      cfg_.root_base + (region * 0x9e3779b97f4a7c15ull % 0x10000) * 4096 +
      static_cast<u64>(level) * 0x100000;
  return table_base + index * 8;
}

u32 PageTableWalker::walk(u64 vaddr, Cycle now) {
  ++stats_.walks;
  u32 total = cfg_.walker_overhead;
  for (u32 level = 0; level < cfg_.levels; ++level) {
    // Dependent accesses: each PTE read starts after the previous finished.
    total += pte_access_(pte_addr(vaddr, level), now + total);
    ++stats_.pte_reads;
  }
  return total;
}

}  // namespace fg::mem
