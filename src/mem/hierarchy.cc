#include "src/mem/hierarchy.h"

namespace fg::mem {

MemHierarchy::MemHierarchy(const HierarchyConfig& cfg)
    : cfg_(cfg),
      l1i_(cfg.l1i, "L1I"),
      l1d_(cfg.l1d, "L1D"),
      l2_(cfg.l2, "L2"),
      llc_(cfg.llc, "LLC"),
      itlb_(cfg.itlb, "ITLB"),
      dtlb_(cfg.dtlb, "DTLB") {
  if (cfg_.detailed_dram) dram_.emplace(cfg_.dram);
  if (cfg_.detailed_ptw) {
    // PTE reads go through the L2 → LLC → memory path like any data access
    // (page tables are cached), bypassing the L1D (BOOM's PTW port).
    ptw_.emplace(cfg_.ptw,
                 [this](u64 addr, Cycle now) { return beyond_l1(addr, now); });
  }
}

u32 MemHierarchy::memory_latency(u64 addr, Cycle now) {
  return dram_ ? dram_->access(addr, now) : cfg_.dram_latency;
}

u32 MemHierarchy::beyond_l1(u64 addr, Cycle now, bool write) {
  // Cost of servicing an L1 miss: L2, then LLC, then DRAM — each level is
  // consulted only when the previous one misses (access_lazy defers each
  // lower level to the miss path, one tag scan per level).
  return l2_
      .access_lazy(
          addr, now,
          [&] {
            return llc_
                .access_lazy(
                    addr, now, [&] { return memory_latency(addr, now); }, write)
                .latency;
          },
          write)
      .latency;
}

u32 MemHierarchy::translate(Tlb& tlb, u64 vaddr, Cycle now) {
  if (!ptw_) return tlb.access(vaddr);
  return tlb.lookup_fill(vaddr) ? 0 : ptw_->walk(vaddr, now);
}

u32 MemHierarchy::access_data(u64 vaddr, bool write, Cycle now) {
  const u32 tlb = translate(dtlb_, vaddr, now);
  const u32 lat =
      l1d_.access_lazy(
              vaddr, now, [&] { return beyond_l1(vaddr, now, write); }, write)
          .latency;
  return tlb + lat;
}

u32 MemHierarchy::access_inst(u64 vaddr, Cycle now) {
  const u32 tlb = translate(itlb_, vaddr, now);
  const u32 lat =
      l1i_.access_lazy(vaddr, now, [&] { return beyond_l1(vaddr, now); })
          .latency;
  return tlb + lat;
}

void MemHierarchy::warm_region(u64 lo, u64 hi) {
  for (u64 a = lo & ~u64{63}; a < hi; a += 64) {
    llc_.warm_line(a);
    l2_.warm_line(a);
  }
}

void MemHierarchy::reset_stats() {
  l1i_.reset_stats();
  l1d_.reset_stats();
  l2_.reset_stats();
  llc_.reset_stats();
  itlb_.reset_stats();
  dtlb_.reset_stats();
  if (dram_) dram_->reset_stats();
}

void MemHierarchy::flush() {
  l1i_.flush();
  l1d_.flush();
  l2_.flush();
  llc_.flush();
  itlb_.flush();
  dtlb_.flush();
}

}  // namespace fg::mem
