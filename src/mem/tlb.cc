#include "src/mem/tlb.h"

#include "src/common/check.h"

namespace fg::mem {

Tlb::Tlb(const TlbConfig& cfg, std::string name) : cfg_(cfg), name_(std::move(name)) {
  FG_CHECK(cfg_.entries > 0);
  FG_CHECK(is_pow2(cfg_.page_bytes));
  entries_.assign(cfg_.entries, Entry{});
}

bool Tlb::would_hit(u64 vaddr) const {
  const u64 vpn = vaddr / cfg_.page_bytes;
  for (const Entry& e : entries_) {
    if (e.valid && e.vpn == vpn) return true;
  }
  return false;
}

u32 Tlb::access(u64 vaddr) {
  return lookup_fill(vaddr) ? 0 : cfg_.walk_latency;
}

bool Tlb::lookup_fill(u64 vaddr) {
  ++stats_.accesses;
  ++use_clock_;
  const u64 vpn = vaddr / cfg_.page_bytes;
  Entry* victim = &entries_[0];
  for (Entry& e : entries_) {
    if (e.valid && e.vpn == vpn) {
      e.last_use = use_clock_;
      return true;
    }
    if (!e.valid || (victim->valid && e.last_use < victim->last_use)) victim = &e;
  }
  ++stats_.misses;
  victim->valid = true;
  victim->vpn = vpn;
  victim->last_use = use_clock_;
  return false;
}

void Tlb::flush() {
  for (auto& e : entries_) e = Entry{};
}

}  // namespace fg::mem
