// Bank/row-aware DRAM timing model (Table II: 16 GB DDR3 @1066 MHz behind a
// 1 GHz memory bus, at most 32 outstanding requests).
//
// The default hierarchy charges a flat post-LLC latency; this model replaces
// it (HierarchyConfig::detailed_dram) with the three first-order DDR effects
// that matter at simulation granularity: row-buffer locality (an open-row
// hit costs tCAS only; a closed bank adds tRCD; a conflict adds tRP too),
// per-bank and data-bus serialization, and the bounded request queue (the
// 33rd concurrent request waits for the oldest to retire). All timings are
// expressed in core cycles @3.2 GHz.
#pragma once

#include <vector>

#include "src/common/types.h"

namespace fg::mem {

struct DramConfig {
  u32 n_banks = 8;
  u32 row_bytes = 8192;
  // DDR3-1066 timings converted to 3.2 GHz core cycles (CL-CL-RP 7-7-7 at
  // 533 MHz ≈ 13 ns each ≈ 42 core cycles).
  u32 t_cas = 42;
  u32 t_rcd = 42;
  u32 t_rp = 42;
  /// 64B line = 8 beats at 1066 MT/s ≈ 7.5 ns ≈ 24 core cycles of bus time.
  u32 burst_cycles = 24;
  u32 max_requests = 32;  // Table II: "max 32 requests"
};

struct DramStats {
  u64 requests = 0;
  u64 row_hits = 0;
  u64 row_conflicts = 0;  // open-row mismatch (precharge + activate)
  u64 row_closed = 0;     // bank idle (activate only)
  u64 queue_stalls = 0;   // delayed by the 32-request window
  double row_hit_rate() const {
    return requests ? static_cast<double>(row_hits) / static_cast<double>(requests)
                    : 0.0;
  }
};

class DramModel {
 public:
  explicit DramModel(const DramConfig& cfg = {});

  /// Latency (core cycles) of a line fill issued at `now`.
  u32 access(u64 addr, Cycle now);

  void reset_stats() { stats_ = DramStats{}; }
  const DramStats& stats() const { return stats_; }
  const DramConfig& config() const { return cfg_; }

 private:
  struct Bank {
    u64 open_row = ~u64{0};
    Cycle busy_until = 0;
  };

  u32 bank_of(u64 addr) const {
    // Interleave banks on line granularity below the row bits so sequential
    // lines hit alternating banks but stay in open rows.
    return static_cast<u32>((addr / 64) % cfg_.n_banks);
  }
  u64 row_of(u64 addr) const {
    return addr / (static_cast<u64>(cfg_.row_bytes) * cfg_.n_banks);
  }

  DramConfig cfg_;
  std::vector<Bank> banks_;
  std::vector<Cycle> inflight_;  // completion times (bounded request window)
  Cycle bus_free_ = 0;
  DramStats stats_;
};

}  // namespace fg::mem
