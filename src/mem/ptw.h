// Sv39 page-table walker.
//
// The base TLBs charge a flat walk latency; with
// HierarchyConfig::detailed_ptw the main core's TLB misses instead perform a
// real three-level radix walk: one 8-byte PTE read per level, each going
// through the L2 → LLC → memory path (page tables are cached like data, so a
// hot walk costs three L2 hits and a cold one costs three memory round
// trips — exactly the TLB+cache co-miss pileup the paper blames for the
// AddressSanitizer tail in Figure 8).
#pragma once

#include <functional>

#include "src/common/types.h"

namespace fg::mem {

struct PtwConfig {
  u32 levels = 3;          // Sv39
  u32 page_bits = 12;      // 4 KiB pages
  u32 index_bits = 9;      // 512-entry tables
  u64 root_base = 0x7f00'0000'0000ull;  // physical base of the root table
  u32 walker_overhead = 4;  // FSM cycles besides the memory accesses
};

struct PtwStats {
  u64 walks = 0;
  u64 pte_reads = 0;
};

class PageTableWalker {
 public:
  /// `pte_access(addr, now)` returns the latency of one PTE read; the walker
  /// issues them dependently (each level's address needs the previous PTE).
  using PteAccess = std::function<u32(u64 addr, Cycle now)>;

  PageTableWalker(const PtwConfig& cfg, PteAccess pte_access);

  /// Walk for `vaddr` starting at `now`; returns total walk latency.
  u32 walk(u64 vaddr, Cycle now);

  /// Deterministic address of the PTE consulted at `level` (0 = root) for a
  /// virtual address — exposed so tests and warmers can touch the same lines
  /// the walker will.
  u64 pte_addr(u64 vaddr, u32 level) const;

  const PtwStats& stats() const { return stats_; }
  const PtwConfig& config() const { return cfg_; }

 private:
  PtwConfig cfg_;
  PteAccess pte_access_;
  PtwStats stats_;
};

}  // namespace fg::mem
