#include "src/mem/cache.h"

#include <algorithm>

#include "src/common/check.h"

namespace fg::mem {

Cache::Cache(const CacheConfig& cfg, std::string name)
    : cfg_(cfg), name_(std::move(name)) {
  FG_CHECK(is_pow2(cfg_.line_bytes));
  FG_CHECK(cfg_.ways > 0);
  n_sets_ = cfg_.size_bytes / cfg_.line_bytes / cfg_.ways;
  FG_CHECK(n_sets_ > 0 && is_pow2(n_sets_));
  lines_.assign(n_sets_ * cfg_.ways, Line{});
  mshr_done_.reserve(cfg_.mshrs);
}

bool Cache::would_hit(u64 addr) const {
  const u64 set = set_of(addr);
  const u64 tag = tag_of(addr);
  for (u32 w = 0; w < cfg_.ways; ++w) {
    const Line& l = lines_[set * cfg_.ways + w];
    if (l.valid && l.tag == tag) return true;
  }
  return false;
}

Cache::Result Cache::access(u64 addr, Cycle now, u32 miss_latency, bool write) {
  return access_lazy(addr, now, [miss_latency] { return miss_latency; }, write);
}

Cache::Result Cache::miss_fill(u64 addr, Cycle now, u32 miss_latency,
                               bool write) {
  const u64 set = set_of(addr);
  const u64 tag = tag_of(addr);
  // Victim selection (same rule the combined loop used: any invalid way
  // wins — the last one scanned — else the least recently used way).
  Line* victim = nullptr;
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Line& l = lines_[set * cfg_.ways + w];
    if (!victim || !l.valid || (victim->valid && l.last_use < victim->last_use)) {
      victim = &l;
    }
  }

  // Miss: MSHR admission first.
  ++stats_.misses;
  u32 extra = 0;
  std::erase_if(mshr_done_, [now](Cycle c) { return c <= now; });
  if (mshr_done_.size() >= cfg_.mshrs) {
    const Cycle oldest = *std::min_element(mshr_done_.begin(), mshr_done_.end());
    extra = static_cast<u32>(oldest > now ? oldest - now : 0);
    ++stats_.mshr_stalls;
    std::erase_if(mshr_done_, [oldest](Cycle c) { return c <= oldest; });
  }

  FG_CHECK(victim != nullptr);
  // Write-back: evicting a dirty victim occupies the fill path.
  if (victim->valid && victim->dirty) {
    ++stats_.writebacks;
    extra += cfg_.writeback_penalty;
  }
  const u32 total = cfg_.hit_latency + extra + miss_latency;
  mshr_done_.push_back(now + total);

  victim->valid = true;
  victim->tag = tag;
  victim->last_use = use_clock_;
  victim->dirty = write;
  return {total, false};
}

void Cache::warm_line(u64 addr) {
  ++use_clock_;
  const u64 set = set_of(addr);
  const u64 tag = tag_of(addr);
  Line* victim = nullptr;
  for (u32 w = 0; w < cfg_.ways; ++w) {
    Line& l = lines_[set * cfg_.ways + w];
    if (l.valid && l.tag == tag) {
      l.last_use = use_clock_;
      return;
    }
    if (!victim || !l.valid || (victim->valid && l.last_use < victim->last_use)) {
      victim = &l;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = use_clock_;
}

void Cache::flush() {
  for (auto& l : lines_) l = Line{};
  mshr_done_.clear();
}

}  // namespace fg::mem
