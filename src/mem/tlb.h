// TLB latency model (fully associative, LRU) with a fixed-cost page walk.
//
// The paper explicitly credits its higher-than-prior-work AddressSanitizer
// tail latency to accurate TLB-miss modelling in the analysis engines, so
// the µcores get a small TLB and the main core larger I/D TLBs.
#pragma once

#include <string>
#include <vector>

#include "src/common/types.h"

namespace fg::mem {

struct TlbConfig {
  u32 entries = 32;
  u32 page_bytes = 4096;
  u32 walk_latency = 80;  // cycles for a page-table walk
};

struct TlbStats {
  u64 accesses = 0;
  u64 misses = 0;
  double miss_rate() const {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
  }
};

class Tlb {
 public:
  Tlb(const TlbConfig& cfg, std::string name);

  /// Translate; returns added latency (0 on hit, walk_latency on miss).
  u32 access(u64 vaddr);

  /// Translate with caller-supplied walk cost: performs the same LRU/fill
  /// bookkeeping as access() but returns hit/miss so the hierarchy can charge
  /// a real page-table walk instead of the flat constant.
  bool lookup_fill(u64 vaddr);

  bool would_hit(u64 vaddr) const;
  void flush();
  void reset_stats() { stats_ = TlbStats{}; }
  const TlbStats& stats() const { return stats_; }

 private:
  struct Entry {
    u64 vpn = ~u64{0};
    u64 last_use = 0;
    bool valid = false;
  };

  TlbConfig cfg_;
  std::string name_;
  std::vector<Entry> entries_;
  TlbStats stats_;
  u64 use_clock_ = 0;
};

}  // namespace fg::mem
