// Set-associative cache latency model with MSHR-limited miss concurrency.
//
// The simulator needs cache behaviour for two reasons: (1) baseline core IPC
// (and hence FireGuard's event *rate*) depends on it, and (2) the paper's
// AddressSanitizer detection-latency tail (Figure 8) is caused by TLB and
// cache misses piling up inside the analysis engines. Tags and replacement
// are modelled exactly; timing is a latency model (an access returns its
// total latency rather than occupying ports cycle by cycle), with MSHRs
// limiting miss-level parallelism.
#pragma once

#include <string>
#include <vector>

#include "src/common/types.h"

namespace fg::mem {

struct CacheConfig {
  u32 size_bytes = 32 * 1024;
  u32 ways = 8;
  u32 line_bytes = 64;
  u32 hit_latency = 3;  // cycles, load-to-use
  u32 mshrs = 8;        // outstanding misses
  /// Added miss cost when the victim line is dirty (write-back port busy).
  /// 0 keeps the calibrated latency model; dirty/writeback *statistics* are
  /// maintained either way.
  u32 writeback_penalty = 0;
};

struct CacheStats {
  u64 accesses = 0;
  u64 misses = 0;
  u64 mshr_stalls = 0;  // accesses delayed because all MSHRs were busy
  u64 writes = 0;
  u64 writebacks = 0;   // dirty lines evicted
  double miss_rate() const {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
  }
};

class Cache {
 public:
  Cache(const CacheConfig& cfg, std::string name);

  struct Result {
    u32 latency = 0;  // total cycles including any miss handling below
    bool hit = false;
  };

  /// Access `addr` at time `now`. `miss_latency` is the cost of fetching the
  /// line from the next level (already computed by the caller for this
  /// access). MSHR saturation adds delay until the oldest miss retires.
  /// `write` marks the line dirty (write-allocate, write-back).
  Result access(u64 addr, Cycle now, u32 miss_latency, bool write = false);

  /// Like `access`, but the next-level fetch cost is computed only on a
  /// miss. Replaces the would_hit-then-access idiom (the hierarchy must not
  /// touch lower levels on a hit) with a single tag scan; state and stats
  /// end up identical, the callable being invoked exactly when a
  /// pre-checked miss would have computed its latency argument.
  template <typename MissLatencyFn>
  Result access_lazy(u64 addr, Cycle now, MissLatencyFn&& miss_latency,
                     bool write = false) {
    ++stats_.accesses;
    if (write) ++stats_.writes;
    ++use_clock_;
    const u64 set = set_of(addr);
    const u64 tag = tag_of(addr);
    Line* line = lines_.data() + set * cfg_.ways;
    for (u32 w = 0; w < cfg_.ways; ++w) {
      Line& l = line[w];
      if (l.valid && l.tag == tag) {
        l.last_use = use_clock_;
        l.dirty |= write;
        return {cfg_.hit_latency, true};
      }
    }
    return miss_fill(addr, now, miss_latency(), write);
  }

  /// Tag probe without side effects.
  bool would_hit(u64 addr) const;

  /// Install the line containing `addr` without timing or statistics side
  /// effects (functional warming before a measured run).
  void warm_line(u64 addr);

  /// Invalidate everything (used between experiment phases).
  void flush();

  /// Zero the counters (after warming).
  void reset_stats() { stats_ = CacheStats{}; }

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return cfg_; }
  const std::string& name() const { return name_; }

 private:
  /// Miss path shared by access / access_lazy: MSHR admission, victim
  /// selection, write-back, fill.
  Result miss_fill(u64 addr, Cycle now, u32 miss_latency, bool write);

  struct Line {
    u64 tag = ~u64{0};
    u64 last_use = 0;
    bool valid = false;
    bool dirty = false;
  };

  u64 set_of(u64 addr) const { return (addr / cfg_.line_bytes) & (n_sets_ - 1); }
  u64 tag_of(u64 addr) const { return addr / cfg_.line_bytes / n_sets_; }

  CacheConfig cfg_;
  std::string name_;
  u64 n_sets_;
  std::vector<Line> lines_;           // n_sets * ways
  std::vector<Cycle> mshr_done_;      // completion times of in-flight misses
  CacheStats stats_;
  u64 use_clock_ = 0;
};

}  // namespace fg::mem
