// Rocket-class analysis-engine model (Section III-D, Figure 6).
//
// A 5-stage in-order µcore at 1.6 GHz with 4KB 2-way I/D caches, a small
// µTLB, and the message queues of Table I reachable through the ISAX
// interface. Two ISAX integrations are modelled:
//
//  * `ma_stage = true` (the paper's contribution): queue instructions execute
//    in the Memory-Access stage, multiplexed with the load-store unit; with
//    the forwarding network of Figure 6 only an *immediately* dependent
//    consumer pays one bubble.
//  * `ma_stage = false` (Rocket's stock post-commit ISAX port): every queue
//    instruction blocks the core for >= 3 cycles, growing to 13 under data
//    hazards and back-to-back ISAX contention — the behaviour that motivated
//    the redesign.
//
// Execution is functional: registers and the kernel's shared memory hold
// real values, so guardian kernels genuinely compute their verdicts.
#pragma once

#include <vector>

#include "src/common/ring_queue.h"
#include "src/common/simctl.h"
#include "src/core/packet.h"
#include "src/mem/cache.h"
#include "src/mem/tlb.h"
#include "src/ucore/umem.h"
#include "src/ucore/uprog.h"

namespace fg::ucore {

struct UCoreConfig {
  u32 msgq_depth = 32;  // Table II: 32-entry message queues
  bool isax_ma_stage = true;
  u32 postcommit_base = 3;        // minimum block per ISAX op (stock Rocket)
  u32 postcommit_contention = 2;  // extra when ISAX ops are back to back
  u32 postcommit_hazard = 8;      // extra when the next inst uses the result
  mem::CacheConfig dcache{4 * 1024, 2, 64, 1, 2};
  mem::CacheConfig icache{4 * 1024, 2, 64, 1, 1};
  mem::TlbConfig utlb{32, 4096, 30};
  u32 l2_latency = 3;   // µcycles for a d-cache miss that hits the shared L2
  u32 mem_latency = 16;  // additional µcycles when the shared L2 misses
};

/// A violation reported by a guardian kernel via the `detect` instruction.
struct Detection {
  u32 engine = 0;
  u64 payload = 0;  // by convention the packet's debug-data word (attack id)
  u64 aux = 0;      // kernel-specific detail (e.g. faulting address)
  Cycle cycle_slow = 0;
};

struct UCoreStats {
  u64 instructions = 0;
  u64 busy_cycles = 0;
  u64 stall_cycles = 0;
  u64 packets_popped = 0;
  u64 pushes = 0;
  u64 detections = 0;
  u64 hazard_bubbles = 0;
};

class UCore {
 public:
  UCore(const UCoreConfig& cfg, u32 engine_id, USharedMemory* memory,
        mem::Cache* shared_l2);

  void load_program(const UProgram& prog);
  void set_reg(u8 r, u64 v);
  u64 reg(u8 r) const { return regs_[r & 31]; }

  // --- message queues (fed by the multicast channel) ---
  bool input_full() const { return input_.full(); }
  size_t input_free() const { return input_.free_slots(); }
  size_t input_size() const { return input_.size(); }
  void push_input(const core::Packet& p);

  // --- output queue (drained into the fabric routing channel) ---
  bool output_empty() const { return output_.empty(); }
  u64 pop_output();

  // --- fabric routing channel delivery ---
  void push_noc(u64 payload) { noc_inbox_.push_back(payload); }
  bool noc_inbox_empty() const { return noc_head_ == noc_inbox_.size(); }

  /// Execute (at most) one instruction at slow-domain cycle `now`.
  void tick(Cycle now_slow);

  bool halted() const { return halted_; }

  /// True when the engine has nothing to do: input queue empty and the
  /// kernel loop is spinning on an empty-count (or empty NoC receive).
  bool quiescent() const { return input_.empty() && spinning_; }

  /// Stronger than `quiescent`: the core can make no observable progress —
  /// the kernel loop is spinning on queues that are all empty, so packets,
  /// verdicts and NoC traffic are unaffected by whether the spin itself is
  /// simulated. Spinning alone is not enough: a NoC payload wakes the loop
  /// without clearing `spinning_`, and a non-empty output queue still owes
  /// the fabric work — so the SoC may skip `tick` only under this
  /// predicate. Skipping freezes the spin loop in place (spin-loop
  /// instruction/stall stats stop accumulating, and the wake-up lands at a
  /// fixed point in the loop instead of a phase that depends on how long
  /// the engine spun — a wake-time shift of at most one spin iteration).
  bool idle() const {
    return (halted_ || (spinning_ && input_.empty())) && noc_inbox_empty() &&
           output_.empty();
  }

  /// First slow cycle at or after `now` at which `tick` can change anything
  /// beyond the per-cycle stall counter. kNoEvent: never (idle spin loop
  /// waiting for a packet, or halted — deliveries that change that are the
  /// CDC's / NoC's events, not this core's). A stalled core wakes exactly at
  /// `stall_until_`; an executable core must be ticked every cycle.
  Cycle next_event(Cycle now) const {
    if (halted_ || idle()) return kNoEvent;
    return now < stall_until_ ? stall_until_ : now;
  }

  /// End of the current multi-cycle instruction (tick is a pure stall
  /// counter increment strictly before this cycle).
  Cycle stall_until() const { return stall_until_; }

  /// Stall fast-forward: charge the `n` stall cycles of slow ticks this
  /// engine provably spent stalled but was never ticked for, in one call —
  /// the event-driven scheduler's replacement for n per-cycle early-return
  /// ticks, and the pipelined scheduler's per-boundary elision (where it
  /// runs on the slow-domain thread, the same thread that ticks this core).
  /// Callers must filter on `!idle() && !halted()`: an idle engine's spin
  /// loop is frozen (no stall accrues) and a halted one accrues nothing —
  /// charging either would diverge from the stepped reference.
  void charge_skipped_stall(u64 n);

  const std::vector<Detection>& detections() const { return detections_; }
  void clear_detections() { detections_.clear(); }

  const UCoreStats& stats() const { return stats_; }
  const mem::Cache& dcache() const { return dcache_; }
  const mem::Tlb& utlb() const { return utlb_; }
  u32 engine_id() const { return engine_id_; }

 private:
  u32 data_access(u64 addr, Cycle now);
  u64 queue_word(const core::Packet& p, i64 bit_offset) const;

  UCoreConfig cfg_;
  u32 engine_id_;
  USharedMemory* mem_;
  mem::Cache* shared_l2_;

  UProgram prog_;
  std::array<u64, 32> regs_{};
  u32 pc_ = 0;
  bool halted_ = false;

  RingQueue<core::Packet> input_;
  RingQueue<u64> output_;
  // NoC inbox as a vector + consumed-prefix cursor: payloads are appended by
  // the fabric and consumed FIFO by kNocRecv; the cursor makes the pop O(1)
  // (no erase-from-front) and the storage is reclaimed when it drains.
  std::vector<u64> noc_inbox_;
  size_t noc_head_ = 0;
  core::Packet recent_{};  // most recently popped element (q.recent)

  mem::Cache dcache_;
  mem::Cache icache_;
  mem::Tlb utlb_;

  Cycle stall_until_ = 0;
  bool spinning_ = false;
  // FG_INVARIANT witness (maintained in Debug builds only): the slow cycle
  // of the previous tick, so the scheduler can be caught handing this core
  // a non-monotone `now` after a skip.
  Cycle last_tick_now_ = 0;

  // Hazard tracking: destination of the previous instruction, if it was a
  // load or an ISAX queue op (the two result-late producers).
  u8 prev_late_rd_ = 0;
  bool prev_late_valid_ = false;
  bool prev_was_isax_ = false;
  u32 isax_cooldown_ = 0;  // post-commit mode back-to-back contention window

  UCoreStats stats_;
  std::vector<Detection> detections_;
};

}  // namespace fg::ucore
