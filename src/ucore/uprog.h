// The µcore micro-ISA and program builder.
//
// Guardian kernels are real programs: they execute on the µcore model with
// real registers and memory, so detections are semantic (a shadow-stack
// mismatch, a poisoned shadow byte) rather than scripted. The ISA is a small
// RISC-V-like register machine extended with the five message-queue custom
// instructions of Table I (count / top / pop / recent / push) plus a
// `detect` instruction that raises a violation to the host harness and a
// `nocrecv` instruction that receives inter-engine messages from the fabric
// routing channel.
#pragma once

#include <string>
#include <vector>

#include "src/common/types.h"

namespace fg::ucore {

enum class UOp : u8 {
  kNop,
  kHalt,
  // ALU (imm uses `imm`; register forms use rs2).
  kLi,     // rd = imm
  kAddi,   // rd = rs1 + imm
  kAndi,
  kOri,
  kXori,
  kSlli,
  kSrli,
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kSll,
  kSrl,
  kSltu,
  // Memory (byte/word/double).
  kLd,
  kLw,
  kLbu,
  kSd,
  kSw,
  kSb,
  // Control: imm is the target instruction index (resolved by the builder).
  kJ,
  kBeq,
  kBne,
  kBlt,
  kBge,
  kBltu,
  kBgeu,
  // Duff's device support: computed dispatch into a jump table.
  kSwitch,  // pc = table[min(regs[rs1], size-1)]; imm = table id
  // ISAX message-queue instructions (Table I). The bit offset operand is
  // regs[rs1] + imm; only multiples of 64 are supported (word selects).
  kQCount,   // rd = #packets in queue `imm` (0 = input, 1 = output)
  kQTop,     // rd = word of first element at bit offset regs[rs1]+imm
  kQPop,     // rd = word at offset, and removes the first element
  kQRecent,  // rd = word of the most recently removed element
  kQPush,    // push regs[rs1] to the output queue
  // Fabric routing channel receive: rd = payload of an arrived message, or 0.
  kNocRecv,
  // Raise a violation: payload = regs[rs1] (by convention the packet's debug
  // data word, which carries the attack id for injected attacks), aux =
  // regs[rs2] (kernel-specific detail, e.g. the faulting address).
  kDetect,
};

struct UInst {
  UOp op = UOp::kNop;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  i64 imm = 0;
};

struct UProgram {
  std::vector<UInst> code;
  std::vector<std::vector<u32>> jump_tables;
  std::string name;
};

/// Assembler-style builder with labels and forward references.
class UProgramBuilder {
 public:
  explicit UProgramBuilder(std::string name);

  using Label = u32;
  Label new_label();
  void bind(Label l);

  // ALU.
  void li(u8 rd, i64 imm);
  void addi(u8 rd, u8 rs1, i64 imm);
  void andi(u8 rd, u8 rs1, i64 imm);
  void ori(u8 rd, u8 rs1, i64 imm);
  void xori(u8 rd, u8 rs1, i64 imm);
  void slli(u8 rd, u8 rs1, i64 sh);
  void srli(u8 rd, u8 rs1, i64 sh);
  void add(u8 rd, u8 rs1, u8 rs2);
  void sub(u8 rd, u8 rs1, u8 rs2);
  void and_(u8 rd, u8 rs1, u8 rs2);
  void or_(u8 rd, u8 rs1, u8 rs2);
  void xor_(u8 rd, u8 rs1, u8 rs2);
  void sll(u8 rd, u8 rs1, u8 rs2);
  void srl(u8 rd, u8 rs1, u8 rs2);
  void sltu(u8 rd, u8 rs1, u8 rs2);
  // Memory.
  void ld(u8 rd, u8 rs1, i64 off);
  void lw(u8 rd, u8 rs1, i64 off);
  void lbu(u8 rd, u8 rs1, i64 off);
  void sd(u8 rs2, u8 rs1, i64 off);
  void sw(u8 rs2, u8 rs1, i64 off);
  void sb(u8 rs2, u8 rs1, i64 off);
  // Control.
  void j(Label l);
  void beq(u8 rs1, u8 rs2, Label l);
  void bne(u8 rs1, u8 rs2, Label l);
  void blt(u8 rs1, u8 rs2, Label l);
  void bge(u8 rs1, u8 rs2, Label l);
  void bltu(u8 rs1, u8 rs2, Label l);
  void bgeu(u8 rs1, u8 rs2, Label l);
  void beqz(u8 rs1, Label l) { beq(rs1, 0, l); }
  void bnez(u8 rs1, Label l) { bne(rs1, 0, l); }
  void switch_on(u8 rs1, const std::vector<Label>& targets);
  // ISAX.
  void qcount(u8 rd, i64 queue);
  void qtop(u8 rd, i64 bit_offset);
  void qpop(u8 rd, i64 bit_offset);
  void qrecent(u8 rd, i64 bit_offset);
  void qpush(u8 rs1);
  void nocrecv(u8 rd);
  void detect(u8 rs1, u8 rs2);
  void halt();
  void nop();

  size_t size() const { return code_.size(); }
  UProgram build();

 private:
  void emit(UOp op, u8 rd, u8 rs1, u8 rs2, i64 imm);
  void emit_branch(UOp op, u8 rs1, u8 rs2, Label l);

  std::string name_;
  std::vector<UInst> code_;
  std::vector<i64> label_pos_;  // -1 = unbound
  struct Fixup {
    u32 inst_idx;
    Label label;
  };
  std::vector<Fixup> fixups_;
  std::vector<std::vector<u32>> tables_;
  struct TableFixup {
    u32 table;
    u32 slot;
    Label label;
  };
  std::vector<TableFixup> table_fixups_;
  bool built_ = false;
};

/// Pretty-print a program (debugging aid and documentation generator).
std::string disassemble(const UProgram& prog);

}  // namespace fg::ucore
