#include "src/ucore/uprog.h"

#include <cstdio>

#include "src/common/check.h"

namespace fg::ucore {

UProgramBuilder::UProgramBuilder(std::string name) : name_(std::move(name)) {}

UProgramBuilder::Label UProgramBuilder::new_label() {
  label_pos_.push_back(-1);
  return static_cast<Label>(label_pos_.size() - 1);
}

void UProgramBuilder::bind(Label l) {
  FG_CHECK(l < label_pos_.size());
  FG_CHECK(label_pos_[l] < 0);
  label_pos_[l] = static_cast<i64>(code_.size());
}

void UProgramBuilder::emit(UOp op, u8 rd, u8 rs1, u8 rs2, i64 imm) {
  FG_CHECK(!built_);
  FG_CHECK(rd < 32 && rs1 < 32 && rs2 < 32);
  code_.push_back(UInst{op, rd, rs1, rs2, imm});
}

void UProgramBuilder::emit_branch(UOp op, u8 rs1, u8 rs2, Label l) {
  FG_CHECK(l < label_pos_.size());
  fixups_.push_back({static_cast<u32>(code_.size()), l});
  emit(op, 0, rs1, rs2, 0);
}

void UProgramBuilder::li(u8 rd, i64 imm) { emit(UOp::kLi, rd, 0, 0, imm); }
void UProgramBuilder::addi(u8 rd, u8 rs1, i64 imm) { emit(UOp::kAddi, rd, rs1, 0, imm); }
void UProgramBuilder::andi(u8 rd, u8 rs1, i64 imm) { emit(UOp::kAndi, rd, rs1, 0, imm); }
void UProgramBuilder::ori(u8 rd, u8 rs1, i64 imm) { emit(UOp::kOri, rd, rs1, 0, imm); }
void UProgramBuilder::xori(u8 rd, u8 rs1, i64 imm) { emit(UOp::kXori, rd, rs1, 0, imm); }
void UProgramBuilder::slli(u8 rd, u8 rs1, i64 sh) { emit(UOp::kSlli, rd, rs1, 0, sh); }
void UProgramBuilder::srli(u8 rd, u8 rs1, i64 sh) { emit(UOp::kSrli, rd, rs1, 0, sh); }
void UProgramBuilder::add(u8 rd, u8 rs1, u8 rs2) { emit(UOp::kAdd, rd, rs1, rs2, 0); }
void UProgramBuilder::sub(u8 rd, u8 rs1, u8 rs2) { emit(UOp::kSub, rd, rs1, rs2, 0); }
void UProgramBuilder::and_(u8 rd, u8 rs1, u8 rs2) { emit(UOp::kAnd, rd, rs1, rs2, 0); }
void UProgramBuilder::or_(u8 rd, u8 rs1, u8 rs2) { emit(UOp::kOr, rd, rs1, rs2, 0); }
void UProgramBuilder::xor_(u8 rd, u8 rs1, u8 rs2) { emit(UOp::kXor, rd, rs1, rs2, 0); }
void UProgramBuilder::sll(u8 rd, u8 rs1, u8 rs2) { emit(UOp::kSll, rd, rs1, rs2, 0); }
void UProgramBuilder::srl(u8 rd, u8 rs1, u8 rs2) { emit(UOp::kSrl, rd, rs1, rs2, 0); }
void UProgramBuilder::sltu(u8 rd, u8 rs1, u8 rs2) { emit(UOp::kSltu, rd, rs1, rs2, 0); }
void UProgramBuilder::ld(u8 rd, u8 rs1, i64 off) { emit(UOp::kLd, rd, rs1, 0, off); }
void UProgramBuilder::lw(u8 rd, u8 rs1, i64 off) { emit(UOp::kLw, rd, rs1, 0, off); }
void UProgramBuilder::lbu(u8 rd, u8 rs1, i64 off) { emit(UOp::kLbu, rd, rs1, 0, off); }
void UProgramBuilder::sd(u8 rs2, u8 rs1, i64 off) { emit(UOp::kSd, 0, rs1, rs2, off); }
void UProgramBuilder::sw(u8 rs2, u8 rs1, i64 off) { emit(UOp::kSw, 0, rs1, rs2, off); }
void UProgramBuilder::sb(u8 rs2, u8 rs1, i64 off) { emit(UOp::kSb, 0, rs1, rs2, off); }

void UProgramBuilder::j(Label l) { emit_branch(UOp::kJ, 0, 0, l); }
void UProgramBuilder::beq(u8 a, u8 b, Label l) { emit_branch(UOp::kBeq, a, b, l); }
void UProgramBuilder::bne(u8 a, u8 b, Label l) { emit_branch(UOp::kBne, a, b, l); }
void UProgramBuilder::blt(u8 a, u8 b, Label l) { emit_branch(UOp::kBlt, a, b, l); }
void UProgramBuilder::bge(u8 a, u8 b, Label l) { emit_branch(UOp::kBge, a, b, l); }
void UProgramBuilder::bltu(u8 a, u8 b, Label l) { emit_branch(UOp::kBltu, a, b, l); }
void UProgramBuilder::bgeu(u8 a, u8 b, Label l) { emit_branch(UOp::kBgeu, a, b, l); }

void UProgramBuilder::switch_on(u8 rs1, const std::vector<Label>& targets) {
  FG_CHECK(!targets.empty());
  const u32 table = static_cast<u32>(tables_.size());
  tables_.emplace_back(targets.size(), 0u);
  for (u32 i = 0; i < targets.size(); ++i) {
    table_fixups_.push_back({table, i, targets[i]});
  }
  emit(UOp::kSwitch, 0, rs1, 0, static_cast<i64>(table));
}

void UProgramBuilder::qcount(u8 rd, i64 queue) { emit(UOp::kQCount, rd, 0, 0, queue); }
void UProgramBuilder::qtop(u8 rd, i64 off) { emit(UOp::kQTop, rd, 0, 0, off); }
void UProgramBuilder::qpop(u8 rd, i64 off) { emit(UOp::kQPop, rd, 0, 0, off); }
void UProgramBuilder::qrecent(u8 rd, i64 off) { emit(UOp::kQRecent, rd, 0, 0, off); }
void UProgramBuilder::qpush(u8 rs1) { emit(UOp::kQPush, 0, rs1, 0, 0); }
void UProgramBuilder::nocrecv(u8 rd) { emit(UOp::kNocRecv, rd, 0, 0, 0); }
void UProgramBuilder::detect(u8 rs1, u8 rs2) { emit(UOp::kDetect, 0, rs1, rs2, 0); }
void UProgramBuilder::halt() { emit(UOp::kHalt, 0, 0, 0, 0); }
void UProgramBuilder::nop() { emit(UOp::kNop, 0, 0, 0, 0); }

UProgram UProgramBuilder::build() {
  FG_CHECK(!built_);
  for (const Fixup& f : fixups_) {
    FG_CHECK(label_pos_[f.label] >= 0);
    code_[f.inst_idx].imm = label_pos_[f.label];
  }
  for (const TableFixup& f : table_fixups_) {
    FG_CHECK(label_pos_[f.label] >= 0);
    tables_[f.table][f.slot] = static_cast<u32>(label_pos_[f.label]);
  }
  built_ = true;
  UProgram p;
  p.code = code_;
  p.jump_tables = tables_;
  p.name = name_;
  return p;
}

namespace {
const char* op_name(UOp op) {
  switch (op) {
    case UOp::kNop: return "nop";
    case UOp::kHalt: return "halt";
    case UOp::kLi: return "li";
    case UOp::kAddi: return "addi";
    case UOp::kAndi: return "andi";
    case UOp::kOri: return "ori";
    case UOp::kXori: return "xori";
    case UOp::kSlli: return "slli";
    case UOp::kSrli: return "srli";
    case UOp::kAdd: return "add";
    case UOp::kSub: return "sub";
    case UOp::kAnd: return "and";
    case UOp::kOr: return "or";
    case UOp::kXor: return "xor";
    case UOp::kSll: return "sll";
    case UOp::kSrl: return "srl";
    case UOp::kSltu: return "sltu";
    case UOp::kLd: return "ld";
    case UOp::kLw: return "lw";
    case UOp::kLbu: return "lbu";
    case UOp::kSd: return "sd";
    case UOp::kSw: return "sw";
    case UOp::kSb: return "sb";
    case UOp::kJ: return "j";
    case UOp::kBeq: return "beq";
    case UOp::kBne: return "bne";
    case UOp::kBlt: return "blt";
    case UOp::kBge: return "bge";
    case UOp::kBltu: return "bltu";
    case UOp::kBgeu: return "bgeu";
    case UOp::kSwitch: return "switch";
    case UOp::kQCount: return "q.count";
    case UOp::kQTop: return "q.top";
    case UOp::kQPop: return "q.pop";
    case UOp::kQRecent: return "q.recent";
    case UOp::kQPush: return "q.push";
    case UOp::kNocRecv: return "noc.recv";
    case UOp::kDetect: return "detect";
  }
  return "?";
}
}  // namespace

std::string disassemble(const UProgram& prog) {
  std::string out = "; program: " + prog.name + "\n";
  char buf[128];
  for (size_t i = 0; i < prog.code.size(); ++i) {
    const UInst& in = prog.code[i];
    std::snprintf(buf, sizeof(buf), "%4zu: %-9s rd=x%-2d rs1=x%-2d rs2=x%-2d imm=%lld\n",
                  i, op_name(in.op), in.rd, in.rs1, in.rs2,
                  static_cast<long long>(in.imm));
    out += buf;
  }
  return out;
}

}  // namespace fg::ucore
