#include "src/ucore/uasm.h"

#include <cctype>
#include <charconv>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace fg::ucore {

namespace {

struct Token {
  std::string text;
};

// Split one source line into tokens (mnemonic, operands). Commas and
// brackets are separators; ';' and '#' start comments.
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ';' || c == '#') break;
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
      continue;
    }
    if (c == '[' || c == ']') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
      out.push_back(std::string(1, c));
      continue;
    }
    cur.push_back(c);
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool valid_label_name(std::string_view s) {
  if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

std::optional<u8> parse_reg(std::string_view s) {
  if (s.size() < 2 || (s[0] != 'r' && s[0] != 'x')) return std::nullopt;
  unsigned v = 0;
  const auto [p, ec] = std::from_chars(s.data() + 1, s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size() || v >= 32) return std::nullopt;
  return static_cast<u8>(v);
}

std::optional<i64> parse_imm(std::string_view s) {
  bool neg = false;
  if (!s.empty() && (s[0] == '+' || s[0] == '-')) {
    neg = s[0] == '-';
    s.remove_prefix(1);
  }
  if (s.empty()) return std::nullopt;
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  }
  u64 v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v, base);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  const i64 signedv = static_cast<i64>(v);
  return neg ? -signedv : signedv;
}

class Assembler {
 public:
  explicit Assembler(std::string name) : builder_(std::move(name)) {}

  AsmResult run(std::string_view source) {
    size_t pos = 0;
    int line_no = 0;
    while (pos <= source.size()) {
      const size_t eol = source.find('\n', pos);
      const std::string_view line =
          source.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                           : eol - pos);
      ++line_no;
      if (!handle_line(line, line_no)) {
        AsmResult r;
        r.error = "line " + std::to_string(line_no) + ": " + error_;
        return r;
      }
      if (eol == std::string_view::npos) break;
      pos = eol + 1;
    }
    for (const auto& entry : labels_) {
      if (!bound_.contains(entry.first)) {
        AsmResult r;
        r.error = "unbound label '" + entry.first + "'";
        return r;
      }
    }
    AsmResult r;
    r.ok = true;
    r.program = builder_.build();
    return r;
  }

 private:
  using Label = UProgramBuilder::Label;

  Label label_of(const std::string& name) {
    auto it = labels_.find(name);
    if (it != labels_.end()) return it->second;
    const Label l = builder_.new_label();
    labels_.emplace(name, l);
    return l;
  }

  bool fail(std::string msg) {
    error_ = std::move(msg);
    return false;
  }

  bool need(const std::vector<std::string>& t, size_t n, const char* shape) {
    if (t.size() - 1 != n) {
      return fail("expected " + std::string(shape));
    }
    return true;
  }

  bool handle_line(std::string_view line, int) {
    std::vector<std::string> t = tokenize(line);
    if (t.empty()) return true;

    // Leading label(s): "name:" possibly followed by an instruction.
    while (!t.empty() && t[0].size() > 1 && t[0].back() == ':') {
      const std::string name = t[0].substr(0, t[0].size() - 1);
      if (!valid_label_name(name)) return fail("bad label '" + name + "'");
      if (bound_.contains(name)) return fail("label '" + name + "' rebound");
      builder_.bind(label_of(name));
      bound_.insert(name);
      t.erase(t.begin());
    }
    if (t.empty()) return true;

    const std::string& m = t[0];
    auto reg = [&](size_t i) { return parse_reg(t[i]); };
    auto imm = [&](size_t i) { return parse_imm(t[i]); };

    // rd, rs1, imm form.
    auto rri = [&](auto fn, const char* shape) {
      if (!need(t, 3, shape)) return false;
      const auto rd = reg(1), rs1 = reg(2);
      const auto v = imm(3);
      if (!rd || !rs1 || !v) return fail("expected " + std::string(shape));
      fn(*rd, *rs1, *v);
      return true;
    };
    // rd, rs1, rs2 form.
    auto rrr = [&](auto fn, const char* shape) {
      if (!need(t, 3, shape)) return false;
      const auto rd = reg(1), rs1 = reg(2), rs2 = reg(3);
      if (!rd || !rs1 || !rs2) return fail("expected " + std::string(shape));
      fn(*rd, *rs1, *rs2);
      return true;
    };
    // branch: rs1, rs2, label.
    auto branch = [&](auto fn, const char* shape) {
      if (!need(t, 3, shape)) return false;
      const auto rs1 = reg(1), rs2 = reg(2);
      if (!rs1 || !rs2 || !valid_label_name(t[3]))
        return fail("expected " + std::string(shape));
      fn(*rs1, *rs2, label_of(t[3]));
      return true;
    };

    if (m == "nop") { builder_.nop(); return true; }
    if (m == "halt") { builder_.halt(); return true; }
    if (m == "li") {
      if (!need(t, 2, "li rd, imm")) return false;
      const auto rd = reg(1);
      const auto v = imm(2);
      if (!rd || !v) return fail("expected li rd, imm");
      builder_.li(*rd, *v);
      return true;
    }
    if (m == "addi") return rri([&](u8 a, u8 b, i64 c) { builder_.addi(a, b, c); }, "addi rd, rs1, imm");
    if (m == "andi") return rri([&](u8 a, u8 b, i64 c) { builder_.andi(a, b, c); }, "andi rd, rs1, imm");
    if (m == "ori") return rri([&](u8 a, u8 b, i64 c) { builder_.ori(a, b, c); }, "ori rd, rs1, imm");
    if (m == "xori") return rri([&](u8 a, u8 b, i64 c) { builder_.xori(a, b, c); }, "xori rd, rs1, imm");
    if (m == "slli") return rri([&](u8 a, u8 b, i64 c) { builder_.slli(a, b, c); }, "slli rd, rs1, sh");
    if (m == "srli") return rri([&](u8 a, u8 b, i64 c) { builder_.srli(a, b, c); }, "srli rd, rs1, sh");
    if (m == "add") return rrr([&](u8 a, u8 b, u8 c) { builder_.add(a, b, c); }, "add rd, rs1, rs2");
    if (m == "sub") return rrr([&](u8 a, u8 b, u8 c) { builder_.sub(a, b, c); }, "sub rd, rs1, rs2");
    if (m == "and") return rrr([&](u8 a, u8 b, u8 c) { builder_.and_(a, b, c); }, "and rd, rs1, rs2");
    if (m == "or") return rrr([&](u8 a, u8 b, u8 c) { builder_.or_(a, b, c); }, "or rd, rs1, rs2");
    if (m == "xor") return rrr([&](u8 a, u8 b, u8 c) { builder_.xor_(a, b, c); }, "xor rd, rs1, rs2");
    if (m == "sll") return rrr([&](u8 a, u8 b, u8 c) { builder_.sll(a, b, c); }, "sll rd, rs1, rs2");
    if (m == "srl") return rrr([&](u8 a, u8 b, u8 c) { builder_.srl(a, b, c); }, "srl rd, rs1, rs2");
    if (m == "sltu") return rrr([&](u8 a, u8 b, u8 c) { builder_.sltu(a, b, c); }, "sltu rd, rs1, rs2");
    if (m == "ld") return rri([&](u8 a, u8 b, i64 c) { builder_.ld(a, b, c); }, "ld rd, rs1, off");
    if (m == "lw") return rri([&](u8 a, u8 b, i64 c) { builder_.lw(a, b, c); }, "lw rd, rs1, off");
    if (m == "lbu") return rri([&](u8 a, u8 b, i64 c) { builder_.lbu(a, b, c); }, "lbu rd, rs1, off");
    if (m == "sd") return rri([&](u8 a, u8 b, i64 c) { builder_.sd(a, b, c); }, "sd rs2, rs1, off");
    if (m == "sw") return rri([&](u8 a, u8 b, i64 c) { builder_.sw(a, b, c); }, "sw rs2, rs1, off");
    if (m == "sb") return rri([&](u8 a, u8 b, i64 c) { builder_.sb(a, b, c); }, "sb rs2, rs1, off");
    if (m == "j") {
      if (!need(t, 1, "j label") || !valid_label_name(t[1]))
        return fail("expected j label");
      builder_.j(label_of(t[1]));
      return true;
    }
    if (m == "beq") return branch([&](u8 a, u8 b, Label l) { builder_.beq(a, b, l); }, "beq rs1, rs2, label");
    if (m == "bne") return branch([&](u8 a, u8 b, Label l) { builder_.bne(a, b, l); }, "bne rs1, rs2, label");
    if (m == "blt") return branch([&](u8 a, u8 b, Label l) { builder_.blt(a, b, l); }, "blt rs1, rs2, label");
    if (m == "bge") return branch([&](u8 a, u8 b, Label l) { builder_.bge(a, b, l); }, "bge rs1, rs2, label");
    if (m == "bltu") return branch([&](u8 a, u8 b, Label l) { builder_.bltu(a, b, l); }, "bltu rs1, rs2, label");
    if (m == "bgeu") return branch([&](u8 a, u8 b, Label l) { builder_.bgeu(a, b, l); }, "bgeu rs1, rs2, label");
    if (m == "beqz" || m == "bnez") {
      if (!need(t, 2, "beqz rs1, label")) return false;
      const auto rs1 = reg(1);
      if (!rs1 || !valid_label_name(t[2]))
        return fail("expected " + m + " rs1, label");
      if (m == "beqz") builder_.beqz(*rs1, label_of(t[2]));
      else builder_.bnez(*rs1, label_of(t[2]));
      return true;
    }
    if (m == "switch") {
      // switch rN, [ l0 l1 ... ]
      if (t.size() < 5 || t[2] != "[" || t.back() != "]")
        return fail("expected switch rs1, [l0, l1, ...]");
      const auto rs1 = reg(1);
      if (!rs1) return fail("bad register in switch");
      std::vector<Label> targets;
      for (size_t i = 3; i + 1 < t.size(); ++i) {
        if (!valid_label_name(t[i])) return fail("bad label '" + t[i] + "'");
        targets.push_back(label_of(t[i]));
      }
      if (targets.empty()) return fail("empty switch table");
      builder_.switch_on(*rs1, targets);
      return true;
    }
    if (m == "qcount" || m == "qtop" || m == "qpop" || m == "qrecent") {
      if (!need(t, 2, (m + " rd, imm").c_str())) return false;
      const auto rd = reg(1);
      const auto v = imm(2);
      if (!rd || !v) return fail("expected " + m + " rd, imm");
      if (m == "qcount") builder_.qcount(*rd, *v);
      else if (m == "qtop") builder_.qtop(*rd, *v);
      else if (m == "qpop") builder_.qpop(*rd, *v);
      else builder_.qrecent(*rd, *v);
      return true;
    }
    if (m == "qpush") {
      if (!need(t, 1, "qpush rs1")) return false;
      const auto rs1 = reg(1);
      if (!rs1) return fail("expected qpush rs1");
      builder_.qpush(*rs1);
      return true;
    }
    if (m == "nocrecv") {
      if (!need(t, 1, "nocrecv rd")) return false;
      const auto rd = reg(1);
      if (!rd) return fail("expected nocrecv rd");
      builder_.nocrecv(*rd);
      return true;
    }
    if (m == "detect") {
      if (!need(t, 2, "detect rs1, rs2")) return false;
      const auto rs1 = reg(1), rs2 = reg(2);
      if (!rs1 || !rs2) return fail("expected detect rs1, rs2");
      builder_.detect(*rs1, *rs2);
      return true;
    }
    return fail("unknown mnemonic '" + m + "'");
  }

  UProgramBuilder builder_;
  std::map<std::string, Label> labels_;
  std::set<std::string> bound_;
  std::string error_;
};

}  // namespace

AsmResult assemble(std::string_view source, std::string name) {
  Assembler a(std::move(name));
  return a.run(source);
}

}  // namespace fg::ucore
