// Sparse 64-bit address-space memory shared by the µcores of one guardian
// kernel (shadow stacks, AddressSanitizer shadow bytes, UaF quarantine maps
// all live here, as they live behind the shared L2 in the real system).
// Functional state is global and instantly coherent; per-engine caches and
// µTLBs model timing only — see DESIGN.md §6 for the coherence caveat.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>

#include "src/common/types.h"

namespace fg::ucore {

class USharedMemory {
 public:
  u64 load(u64 addr, u32 size) const;
  void store(u64 addr, u32 size, u64 value);

  u8 load_u8(u64 addr) const { return static_cast<u8>(load(addr, 1)); }
  void store_u8(u64 addr, u8 v) { store(addr, 1, v); }

  size_t pages_touched() const { return pages_.size(); }
  void clear() { pages_.clear(); }

 private:
  static constexpr u64 kPageBytes = 4096;
  using Page = std::array<u8, kPageBytes>;

  Page* page_for(u64 addr, bool create) const;

  mutable std::unordered_map<u64, std::unique_ptr<Page>> pages_;
};

}  // namespace fg::ucore
