#include "src/ucore/umem.h"

#include <cstring>

#include "src/common/check.h"

namespace fg::ucore {

USharedMemory::Page* USharedMemory::page_for(u64 addr, bool create) const {
  const u64 pfn = addr / kPageBytes;
  auto it = pages_.find(pfn);
  if (it != pages_.end()) return it->second.get();
  if (!create) return nullptr;
  auto page = std::make_unique<Page>();
  page->fill(0);
  Page* raw = page.get();
  pages_.emplace(pfn, std::move(page));
  return raw;
}

u64 USharedMemory::load(u64 addr, u32 size) const {
  FG_CHECK(size == 1 || size == 2 || size == 4 || size == 8);
  u64 v = 0;
  // Handle (rare) page-straddling accesses bytewise.
  for (u32 i = 0; i < size; ++i) {
    const u64 a = addr + i;
    const Page* p = page_for(a, false);
    const u8 byte = p ? (*p)[a % kPageBytes] : 0;
    v |= static_cast<u64>(byte) << (8 * i);
  }
  return v;
}

void USharedMemory::store(u64 addr, u32 size, u64 value) {
  FG_CHECK(size == 1 || size == 2 || size == 4 || size == 8);
  for (u32 i = 0; i < size; ++i) {
    const u64 a = addr + i;
    Page* p = page_for(a, true);
    (*p)[a % kPageBytes] = static_cast<u8>(value >> (8 * i));
  }
}

}  // namespace fg::ucore
