// Textual assembler for the µcore micro-ISA.
//
// The UProgramBuilder API is convenient from C++, but a deployed FireGuard
// ships guardian kernels as artifacts: auditable text that the security team
// reviews and the driver loads at run time (the paper's programming model,
// Section III-D). This assembler accepts a small, disassembler-compatible
// dialect:
//
//     ; PMC hot loop (comments with ';' or '#')
//     loop:
//       qcount r1, 0          ; packets waiting in the input queue
//       beqz   r1, loop
//       qpop   r2, 64         ; PC field of the head packet
//       bltu   r2, r4, bad
//       j      loop
//     bad:
//       detect r2, r2
//       j      loop
//
// Registers are written r0..r31 (r0 reads as zero, writes ignored — same
// convention the µcore model enforces). Immediates are decimal or 0x hex,
// with optional +/-. Labels are alphanumeric/underscore, bound with a
// trailing ':' on their own line or before an instruction. `switch rN,
// [l0, l1, ...]` builds a jump table. All Table I queue instructions,
// the NoC receive, `detect` and `halt` are available.
#pragma once

#include <string>
#include <string_view>

#include "src/ucore/uprog.h"

namespace fg::ucore {

struct AsmResult {
  bool ok = false;
  std::string error;     // "line N: message" when !ok
  UProgram program;
};

/// Assemble `source` into a µcore program named `name`. Never throws; all
/// failures (unknown mnemonic, bad register, unbound label, operand-count
/// mismatch) come back in AsmResult::error with a line number.
AsmResult assemble(std::string_view source, std::string name = "asm");

}  // namespace fg::ucore
