#include "src/ucore/ucore.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/invariant.h"

namespace fg::ucore {

UCore::UCore(const UCoreConfig& cfg, u32 engine_id, USharedMemory* memory,
             mem::Cache* shared_l2)
    : cfg_(cfg),
      engine_id_(engine_id),
      mem_(memory),
      shared_l2_(shared_l2),
      input_(cfg.msgq_depth),
      output_(cfg.msgq_depth),
      dcache_(cfg.dcache, "uD$"),
      icache_(cfg.icache, "uI$"),
      utlb_(cfg.utlb, "uTLB") {
  FG_CHECK(mem_ != nullptr);
}

void UCore::load_program(const UProgram& prog) {
  prog_ = prog;
  pc_ = 0;
  halted_ = false;
  FG_CHECK(!prog_.code.empty());
}

void UCore::set_reg(u8 r, u64 v) {
  if ((r & 31) != 0) regs_[r & 31] = v;
}

void UCore::push_input(const core::Packet& p) {
  FG_CHECK(!input_.full());
  input_.push(p);
  spinning_ = false;
}

u64 UCore::pop_output() {
  FG_CHECK(!output_.empty());
  return output_.pop();
}

u32 UCore::data_access(u64 addr, Cycle now) {
  // µTLB translate, then D$; a miss fetches through the shared L2 (computed
  // lazily so a D$ hit is a single tag scan).
  const u32 tlb_lat = utlb_.access(addr);
  const u32 lat =
      dcache_
          .access_lazy(addr, now,
                       [&]() -> u32 {
                         if (shared_l2_ == nullptr) return cfg_.l2_latency;
                         return cfg_.l2_latency +
                                shared_l2_
                                    ->access_lazy(addr, now,
                                                  [&] { return cfg_.mem_latency; })
                                    .latency;
                       })
          .latency;
  return tlb_lat + lat - 1;  // the base cycle of the instruction covers 1
}

u64 UCore::queue_word(const core::Packet& p, i64 bit_offset) const {
  FG_CHECK(bit_offset >= 0 && bit_offset % 64 == 0);
  return core::packet_word(p, static_cast<u32>(bit_offset / 64));
}

void UCore::charge_skipped_stall(u64 n) {
  // The horizon contract this bulk charge stands on (pinned by the
  // UCoreStallWindowIsPureStallAccounting property test): every tick
  // strictly before stall_until_ on a non-idle, non-halted core is exactly
  // `++stall_cycles` and nothing else. An idle or halted core accrues no
  // stalls, so charging one would diverge from the stepped reference —
  // catch the caller here rather than as a bit-identity diff downstream.
  FG_INVARIANT(!halted_ && !idle(), "ucore.charge_skipped_stall_state");
  stats_.stall_cycles += n;
}

void UCore::tick(Cycle now) {
#if FG_INVARIANTS_COMPILED
  // Simulated time must never run backwards for this core — the event
  // scheduler's skip/stall-fast-forward logic is the only caller that could
  // get this wrong, and this is where it would surface.
  FG_INVARIANT(now >= last_tick_now_, "ucore.tick_monotone");
  last_tick_now_ = now;
#endif
  if (halted_) return;
  if (now < stall_until_) {
    ++stats_.stall_cycles;
    return;
  }
  FG_CHECK(pc_ < prog_.code.size());
  const UInst in = prog_.code[pc_];
  u32 cost = 1;
  u32 next_pc = pc_ + 1;
  bool wrote_rd = false;
  u64 rd_val = 0;
  bool is_late_producer = false;  // load or ISAX: result arrives late
  bool is_isax = false;

  const u64 a = regs_[in.rs1 & 31];
  const u64 b = regs_[in.rs2 & 31];

  // Consumer-side hazard: the instruction immediately after a late producer
  // that reads its destination pays one bubble (MA-stage forwarding), or the
  // large post-commit penalty in stock-Rocket mode.
  const bool uses_prev =
      prev_late_valid_ && prev_late_rd_ != 0 &&
      ((in.rs1 & 31) == prev_late_rd_ || (in.rs2 & 31) == prev_late_rd_);
  if (uses_prev) {
    if (prev_was_isax_ && !cfg_.isax_ma_stage) {
      cost += cfg_.postcommit_hazard;
    } else {
      cost += 1;
    }
    ++stats_.hazard_bubbles;
  }
  prev_late_valid_ = false;
  prev_was_isax_ = false;

  const bool input_was_empty = input_.empty();
  bool set_spin = false;

  switch (in.op) {
    case UOp::kNop:
      break;
    case UOp::kHalt:
      halted_ = true;
      next_pc = pc_;
      break;
    case UOp::kLi: wrote_rd = true; rd_val = static_cast<u64>(in.imm); break;
    case UOp::kAddi: wrote_rd = true; rd_val = a + static_cast<u64>(in.imm); break;
    case UOp::kAndi: wrote_rd = true; rd_val = a & static_cast<u64>(in.imm); break;
    case UOp::kOri: wrote_rd = true; rd_val = a | static_cast<u64>(in.imm); break;
    case UOp::kXori: wrote_rd = true; rd_val = a ^ static_cast<u64>(in.imm); break;
    case UOp::kSlli: wrote_rd = true; rd_val = a << (in.imm & 63); break;
    case UOp::kSrli: wrote_rd = true; rd_val = a >> (in.imm & 63); break;
    case UOp::kAdd: wrote_rd = true; rd_val = a + b; break;
    case UOp::kSub: wrote_rd = true; rd_val = a - b; break;
    case UOp::kAnd: wrote_rd = true; rd_val = a & b; break;
    case UOp::kOr: wrote_rd = true; rd_val = a | b; break;
    case UOp::kXor: wrote_rd = true; rd_val = a ^ b; break;
    case UOp::kSll: wrote_rd = true; rd_val = a << (b & 63); break;
    case UOp::kSrl: wrote_rd = true; rd_val = a >> (b & 63); break;
    case UOp::kSltu: wrote_rd = true; rd_val = a < b ? 1 : 0; break;
    case UOp::kLd:
    case UOp::kLw:
    case UOp::kLbu: {
      const u64 addr = a + static_cast<u64>(in.imm);
      const u32 size = in.op == UOp::kLd ? 8 : (in.op == UOp::kLw ? 4 : 1);
      wrote_rd = true;
      rd_val = mem_->load(addr, size);
      cost += data_access(addr, now);
      is_late_producer = true;
      break;
    }
    case UOp::kSd:
    case UOp::kSw:
    case UOp::kSb: {
      const u64 addr = a + static_cast<u64>(in.imm);
      const u32 size = in.op == UOp::kSd ? 8 : (in.op == UOp::kSw ? 4 : 1);
      mem_->store(addr, size, b);
      cost += data_access(addr, now);
      break;
    }
    case UOp::kJ:
      next_pc = static_cast<u32>(in.imm);
      cost += 1;  // taken redirect
      break;
    case UOp::kBeq:
    case UOp::kBne:
    case UOp::kBlt:
    case UOp::kBge:
    case UOp::kBltu:
    case UOp::kBgeu: {
      bool taken = false;
      switch (in.op) {
        case UOp::kBeq: taken = a == b; break;
        case UOp::kBne: taken = a != b; break;
        case UOp::kBlt: taken = static_cast<i64>(a) < static_cast<i64>(b); break;
        case UOp::kBge: taken = static_cast<i64>(a) >= static_cast<i64>(b); break;
        case UOp::kBltu: taken = a < b; break;
        case UOp::kBgeu: taken = a >= b; break;
        default: break;
      }
      if (taken) {
        next_pc = static_cast<u32>(in.imm);
        cost += 1;
      }
      break;
    }
    case UOp::kSwitch: {
      const auto& table = prog_.jump_tables[static_cast<size_t>(in.imm)];
      const u64 idx = std::min<u64>(a, table.size() - 1);
      next_pc = table[idx];
      cost += 1;
      break;
    }
    case UOp::kQCount: {
      wrote_rd = true;
      rd_val = (in.imm == 0) ? input_.size() : output_.size();
      is_late_producer = true;
      is_isax = true;
      if (in.imm == 0 && rd_val == 0 && input_was_empty) set_spin = true;
      break;
    }
    case UOp::kQTop: {
      wrote_rd = true;
      rd_val = input_.empty() ? 0 : queue_word(input_.front(), in.imm);
      is_late_producer = true;
      is_isax = true;
      break;
    }
    case UOp::kQPop: {
      wrote_rd = true;
      if (input_.empty()) {
        rd_val = 0;
      } else {
        recent_ = input_.front();
        rd_val = queue_word(recent_, in.imm);
        input_.pop();
        ++stats_.packets_popped;
      }
      is_late_producer = true;
      is_isax = true;
      break;
    }
    case UOp::kQRecent: {
      wrote_rd = true;
      rd_val = queue_word(recent_, in.imm);
      is_late_producer = true;
      is_isax = true;
      break;
    }
    case UOp::kQPush: {
      if (output_.full()) {
        next_pc = pc_;  // retry until the fabric drains the output queue
        break;
      }
      output_.push(a);
      ++stats_.pushes;
      is_isax = true;
      break;
    }
    case UOp::kNocRecv: {
      wrote_rd = true;
      if (noc_inbox_empty()) {
        rd_val = 0;
        if (input_was_empty) set_spin = true;
      } else {
        rd_val = noc_inbox_[noc_head_];
        if (++noc_head_ == noc_inbox_.size()) {
          noc_inbox_.clear();
          noc_head_ = 0;
        }
        // The loop observed work: it is now executing the payload-handling
        // body, not spinning. Without this, idle() would go true again the
        // moment the inbox drains — freezing the engine mid-body, since
        // only push_input clears the spin flag.
        spinning_ = false;
      }
      break;
    }
    case UOp::kDetect: {
      detections_.push_back(Detection{engine_id_, a, b, now});
      ++stats_.detections;
      // The verdict stream and its counter may never diverge: the SoC's
      // match pass consumes the vector, the stats report the counter.
      FG_INVARIANT(stats_.detections == detections_.size(),
                   "ucore.detections_accounting");
      break;
    }
  }

  // ISAX cost model.
  if (is_isax && !cfg_.isax_ma_stage) {
    cost += cfg_.postcommit_base - 1;  // blocks the core for >= 3 cycles
    if (isax_cooldown_ > 0) cost += cfg_.postcommit_contention;
    isax_cooldown_ = 2;
  } else if (isax_cooldown_ > 0) {
    --isax_cooldown_;
  }

  if (wrote_rd && (in.rd & 31) != 0) regs_[in.rd & 31] = rd_val;
  if (is_late_producer && (in.rd & 31) != 0) {
    prev_late_rd_ = in.rd & 31;
    prev_late_valid_ = true;
    prev_was_isax_ = is_isax;
  }

  // Spinning is sticky: once the loop observes an empty queue it can only be
  // woken by a packet arrival (push_input clears the flag) or by consuming a
  // NoC payload (handled in kNocRecv above). The spin path itself (count /
  // branch / jump) must not un-quiesce the engine.
  if (set_spin) spinning_ = true;
  pc_ = next_pc;
  FG_INVARIANT(pc_ < prog_.code.size(), "ucore.pc_bounds");
  stall_until_ = now + cost;
  ++stats_.instructions;
  stats_.busy_cycles += cost;
}

}  // namespace fg::ucore
