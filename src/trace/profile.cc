#include "src/trace/profile.h"

#include "src/common/check.h"

namespace fg::trace {

namespace {

std::vector<WorkloadProfile> build_profiles() {
  std::vector<WorkloadProfile> v;

  {  // blackscholes: small, FP-dominated, very predictable, few allocations.
    WorkloadProfile p;
    p.name = "blackscholes";
    p.f_load = 0.15; p.f_store = 0.045; p.f_fp = 0.31; p.f_muldiv = 0.015;
    p.f_branch = 0.09; p.f_call = 0.008; p.f_hard_branch = 0.04;
    p.ptr_chase = 0.05;
    p.n_funcs = 48; p.blocks_per_func = 5; p.block_len = 10;
    p.loop_frac = 0.35; p.mean_trips = 24.0;
    p.m_stack = 0.34; p.m_global = 0.22; p.m_heap = 0.28; p.m_stream = 0.16;
    p.stream_revisit = 0.6; p.stream_footprint = 64u << 10; p.global_hot_words = 256;
    p.allocs_per_kinst = 0.05; p.mean_alloc_size = 192; p.live_target = 24;
    v.push_back(p);
  }
  {  // bodytrack: vision workload, moderate mem traffic, branchy.
    WorkloadProfile p;
    p.name = "bodytrack";
    p.f_load = 0.21; p.f_store = 0.09; p.f_fp = 0.12; p.f_muldiv = 0.02;
    p.f_branch = 0.145; p.f_call = 0.018; p.f_hard_branch = 0.14;
    p.ptr_chase = 0.15;
    p.n_funcs = 160; p.blocks_per_func = 7; p.block_len = 7;
    p.loop_frac = 0.30; p.mean_trips = 10.0;
    p.m_stack = 0.28; p.m_global = 0.18; p.m_heap = 0.38; p.m_stream = 0.16;
    p.stream_revisit = 0.5; p.stream_footprint = 128u << 10; p.global_hot_words = 768;
    p.allocs_per_kinst = 1.6; p.mean_alloc_size = 384; p.live_target = 96;
    v.push_back(p);
  }
  {  // dedup: pipeline compression, allocation-heavy (the paper's UaF outlier).
    WorkloadProfile p;
    p.name = "dedup";
    p.f_load = 0.24; p.f_store = 0.155; p.f_fp = 0.01; p.f_muldiv = 0.025;
    p.f_branch = 0.135; p.f_call = 0.024; p.f_hard_branch = 0.16;
    p.ptr_chase = 0.3;
    p.n_funcs = 192; p.blocks_per_func = 6; p.block_len = 7;
    p.loop_frac = 0.28; p.mean_trips = 9.0;
    p.m_stack = 0.24; p.m_global = 0.14; p.m_heap = 0.44; p.m_stream = 0.18;
    p.stream_revisit = 0.35; p.stream_footprint = 256u << 10; p.global_hot_words = 1024;
    p.allocs_per_kinst = 6.5; p.mean_alloc_size = 1536; p.live_target = 128;
    v.push_back(p);
  }
  {  // ferret: similarity search pipeline, mixed behaviour.
    WorkloadProfile p;
    p.name = "ferret";
    p.f_load = 0.22; p.f_store = 0.075; p.f_fp = 0.105; p.f_muldiv = 0.02;
    p.f_branch = 0.13; p.f_call = 0.02; p.f_hard_branch = 0.12;
    p.ptr_chase = 0.2;
    p.n_funcs = 224; p.blocks_per_func = 6; p.block_len = 8;
    p.loop_frac = 0.30; p.mean_trips = 11.0;
    p.m_stack = 0.27; p.m_global = 0.17; p.m_heap = 0.40; p.m_stream = 0.16;
    p.stream_revisit = 0.55; p.stream_footprint = 96u << 10; p.global_hot_words = 768;
    p.allocs_per_kinst = 2.2; p.mean_alloc_size = 512; p.live_target = 64;
    v.push_back(p);
  }
  {  // fluidanimate: particle simulation, FP + irregular heap walks.
    WorkloadProfile p;
    p.name = "fluidanimate";
    p.f_load = 0.23; p.f_store = 0.095; p.f_fp = 0.185; p.f_muldiv = 0.012;
    p.f_branch = 0.11; p.f_call = 0.012; p.f_hard_branch = 0.10;
    p.ptr_chase = 0.25;
    p.n_funcs = 96; p.blocks_per_func = 6; p.block_len = 9;
    p.loop_frac = 0.36; p.mean_trips = 14.0;
    p.m_stack = 0.20; p.m_global = 0.14; p.m_heap = 0.50; p.m_stream = 0.16;
    p.stream_revisit = 0.55; p.stream_footprint = 128u << 10; p.global_hot_words = 512;
    p.allocs_per_kinst = 0.5; p.mean_alloc_size = 768; p.live_target = 72;
    v.push_back(p);
  }
  {  // freqmine: itemset mining, pointer-chasing and hard branches.
    WorkloadProfile p;
    p.name = "freqmine";
    p.f_load = 0.24; p.f_store = 0.085; p.f_fp = 0.015; p.f_muldiv = 0.015;
    p.f_branch = 0.165; p.f_call = 0.016; p.f_hard_branch = 0.20;
    p.ptr_chase = 0.55;
    p.n_funcs = 176; p.blocks_per_func = 7; p.block_len = 6;
    p.loop_frac = 0.32; p.mean_trips = 8.0;
    p.m_stack = 0.22; p.m_global = 0.16; p.m_heap = 0.48; p.m_stream = 0.14;
    p.stream_revisit = 0.5; p.stream_footprint = 96u << 10; p.global_hot_words = 1024;
    p.allocs_per_kinst = 2.8; p.mean_alloc_size = 320; p.live_target = 96;
    v.push_back(p);
  }
  {  // streamcluster: streaming kmeans, load-dominated sequential sweeps.
    WorkloadProfile p;
    p.name = "streamcluster";
    p.f_load = 0.28; p.f_store = 0.05; p.f_fp = 0.13; p.f_muldiv = 0.01;
    p.f_branch = 0.105; p.f_call = 0.008; p.f_hard_branch = 0.06;
    p.ptr_chase = 0.06;
    p.n_funcs = 64; p.blocks_per_func = 5; p.block_len = 9;
    p.loop_frac = 0.40; p.mean_trips = 28.0;
    p.m_stack = 0.14; p.m_global = 0.12; p.m_heap = 0.22; p.m_stream = 0.52;
    p.stream_revisit = 0.45; p.stream_footprint = 192u << 10; p.global_hot_words = 256;
    p.allocs_per_kinst = 0.3; p.mean_alloc_size = 2048; p.live_target = 32;
    v.push_back(p);
  }
  {  // swaptions: Monte-Carlo pricing, FP heavy and quiet.
    WorkloadProfile p;
    p.name = "swaptions";
    p.f_load = 0.15; p.f_store = 0.045; p.f_fp = 0.275; p.f_muldiv = 0.02;
    p.f_branch = 0.09; p.f_call = 0.010; p.f_hard_branch = 0.05;
    p.ptr_chase = 0.05;
    p.n_funcs = 56; p.blocks_per_func = 5; p.block_len = 10;
    p.loop_frac = 0.34; p.mean_trips = 20.0;
    p.m_stack = 0.36; p.m_global = 0.20; p.m_heap = 0.30; p.m_stream = 0.14;
    p.stream_revisit = 0.6; p.stream_footprint = 64u << 10; p.global_hot_words = 384;
    p.allocs_per_kinst = 0.8; p.mean_alloc_size = 256; p.live_target = 48;
    v.push_back(p);
  }
  {  // x264: video encode — the paper's load/store monster. Highest memory
     // event rate; this is the workload where four µcores cannot keep up with
     // AddressSanitizer and where even 12 µcores leave a 1.59x slowdown.
    WorkloadProfile p;
    p.name = "x264";
    p.f_load = 0.38; p.f_store = 0.20; p.f_fp = 0.01; p.f_muldiv = 0.01;
    p.f_branch = 0.07; p.f_call = 0.008; p.f_hard_branch = 0.03;
    p.ptr_chase = 0.03;
    p.n_funcs = 208; p.blocks_per_func = 6; p.block_len = 4;
    p.loop_frac = 0.42; p.mean_trips = 32.0;
    p.m_stack = 0.14; p.m_global = 0.12; p.m_heap = 0.24; p.m_stream = 0.50;
    p.stream_revisit = 0.9; p.stream_footprint = 24u << 10; p.global_hot_words = 512;
    p.allocs_per_kinst = 1.2; p.mean_alloc_size = 1024; p.live_target = 256;
    v.push_back(p);
  }

  {  // memstall: not a PARSEC profile — a deliberately memory/stall-bound
     // torture case for the event scheduler (serialized pointer chasing over
     // a live heap far larger than the warmable window, almost no control
     // flow so the analysis engines stay quiet). IPC ~0.05 with the detailed
     // DRAM/PTW models: nearly every cycle is provably-dead miss latency,
     // which is exactly what the wide-horizon skip paths must convert into
     // wall-clock speedup (tools/simspeed's memstall hot loop and the
     // stall-bound golden scenarios both draw this by name).
    WorkloadProfile p;
    p.name = "memstall";
    p.f_load = 0.50; p.f_store = 0.04; p.f_fp = 0.02; p.f_muldiv = 0.0;
    p.f_branch = 0.01; p.f_call = 0.0005; p.f_hard_branch = 0.05;
    p.ptr_chase = 1.0;
    p.n_funcs = 48; p.blocks_per_func = 5; p.block_len = 12;
    p.loop_frac = 0.35; p.mean_trips = 24.0;
    p.m_stack = 0.05; p.m_global = 0.05; p.m_heap = 0.85; p.m_stream = 0.05;
    p.stream_revisit = 0.0; p.stream_footprint = 64u << 20; p.global_hot_words = 256;
    p.allocs_per_kinst = 10.0; p.mean_alloc_size = 65536; p.live_target = 65536;
    v.push_back(p);
  }

  for (const auto& p : v) {
    const double mem_sum = p.m_stack + p.m_global + p.m_heap + p.m_stream;
    FG_CHECK(mem_sum > 0.99 && mem_sum < 1.01);
    FG_CHECK(p.f_load + p.f_store + p.f_fp + p.f_branch + p.f_call < 0.95);
  }
  return v;
}

}  // namespace

const std::vector<WorkloadProfile>& parsec_profiles() {
  static const std::vector<WorkloadProfile> kProfiles = build_profiles();
  return kProfiles;
}

const WorkloadProfile& profile_by_name(const std::string& name) {
  for (const auto& p : parsec_profiles()) {
    if (p.name == name) return p;
  }
  FG_CHECK(false && "unknown workload profile");
  __builtin_unreachable();
}

}  // namespace fg::trace
