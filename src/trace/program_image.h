// Static program image for the synthetic workload.
//
// We synthesize a whole program (functions with prologues/epilogues, basic
// blocks, biased conditional branches, loop back-edges, call sites forming a
// DAG) and then *walk* it to produce the dynamic trace. Static structure
// matters: branch predictors, the BTB/RAS and the i-cache in the main-core
// model all key on real, repeating PCs, and the shadow-stack kernel needs
// properly nested call/return pairs.
#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/isa/riscv.h"
#include "src/trace/profile.h"

namespace fg::trace {

inline constexpr u16 kNoFunc = 0xffff;
inline constexpr u64 kTextBase = 0x10000;
inline constexpr u64 kStackBase = 0x7f00'0000'0000ull;
inline constexpr u64 kGlobalBase = 0x1000'0000ull;
inline constexpr u64 kStreamBase = 0x6000'0000ull;
inline constexpr u32 kFrameBytes = 256;

/// Which memory region a static load/store accesses.
enum class MemRegion : u8 { kNone, kStack, kGlobal, kHeap, kStream };

/// One instruction of the static image. Dynamic fields (addresses, values,
/// branch outcomes) are resolved by the walker at trace time.
struct StaticInst {
  isa::InstClass cls = isa::InstClass::kIntAlu;
  u32 enc = 0;
  u8 rd = kNoReg;
  u8 rs1 = kNoReg;
  u8 rs2 = kNoReg;
  u8 mem_size = 0;
  MemRegion region = MemRegion::kNone;
  u16 callee = kNoFunc;    // call target (function index), for kCall
  u32 target_idx = 0;      // flat in-function index of branch target
  float taken_bias = 0.f;  // P(taken) for conditional branches
};

struct Function {
  u64 entry_pc = 0;
  std::vector<StaticInst> insts;  // prologue, blocks, epilogue, in layout order
  u64 pc_of(size_t idx) const { return entry_pc + 4 * idx; }
};

class ProgramImage {
 public:
  ProgramImage(const WorkloadProfile& profile, u64 seed);

  u16 n_funcs() const { return static_cast<u16>(funcs_.size()); }
  const Function& func(u16 i) const { return funcs_[i]; }

  /// Text segment bounds (PMC's configured legal jump-target range).
  u64 text_lo() const { return kTextBase; }
  u64 text_hi() const { return text_hi_; }

  /// PC of the synthetic top-level driver ("main" stub).
  u64 main_pc() const { return kTextBase; }

  /// Pick a top-level entry function, hot-biased (Zipf-like).
  u16 pick_entry(Rng& rng) const;

  /// Total static instruction count (code footprint proxy).
  size_t static_inst_count() const;

 private:
  void build_function(u16 idx, const WorkloadProfile& p, Rng& rng, u64 entry_pc);

  std::vector<Function> funcs_;
  std::vector<double> entry_cdf_;  // cumulative weights over entry functions
  u16 n_entry_funcs_ = 1;
  u64 text_hi_ = 0;
};

}  // namespace fg::trace
