#include "src/trace/workload.h"

#include <algorithm>

#include "src/common/check.h"

namespace fg::trace {

const char* attack_kind_name(AttackKind k) {
  switch (k) {
    case AttackKind::kPcHijack: return "pc_hijack";
    case AttackKind::kRetCorrupt: return "ret_corrupt";
    case AttackKind::kHeapOob: return "heap_oob";
    case AttackKind::kUseAfterFree: return "use_after_free";
  }
  return "?";
}

WorkloadGen::WorkloadGen(WorkloadConfig cfg)
    : cfg_(std::move(cfg)),
      image_(std::make_unique<ProgramImage>(cfg_.profile, cfg_.seed)),
      rng_(cfg_.seed),
      heap_(cfg_.profile.live_target, cfg_.profile.mean_alloc_size, cfg_.seed ^ 0x5eedull) {
  // Build the attack schedule: spread each kind's instances uniformly over
  // the post-warmup region, then sort and number them.
  p_alloc_ = cfg_.profile.allocs_per_kinst / 1000.0;
  p_churn_ = p_alloc_ * 0.85;
  Rng arng(cfg_.seed ^ 0xa77ac0ull);
  const u64 lo = std::min(cfg_.warmup_insts, cfg_.n_insts);
  const u64 hi = cfg_.n_insts > 512 ? cfg_.n_insts - 512 : cfg_.n_insts;
  for (const auto& [kind, count] : cfg_.attacks) {
    for (u32 i = 0; i < count; ++i) {
      if (hi > lo) schedule_.push_back({arng.range(lo, hi - 1), kind, 0});
    }
  }
  std::sort(schedule_.begin(), schedule_.end(),
            [](const Planned& a, const Planned& b) { return a.at < b.at; });
  for (size_t i = 0; i < schedule_.size(); ++i) {
    schedule_[i].id = static_cast<u32>(i + 1);
  }
  restart();
}

void WorkloadGen::restart() {
  rng_ = Rng(cfg_.seed);
  heap_.reset();
  stack_.clear();
  stream_pos_ = 0;
  emitted_ = 0;
  in_main_ = true;
  main_slot_ = 0;
  next_attack_ = 0;
  ret_corrupt_armed_ = false;
  armed_id_ = 0;
  injected_.clear();
  startup_events_.clear();
  // Pre-seed a modest live heap so early accesses have targets. The startup
  // allocations emit guard.alloc events at the head of the trace (a real
  // program's instrumented allocator would do the same during init), so the
  // memory-safety kernels know about every object before it is used.
  for (int i = 0; i < 24; ++i) {
    const Allocation a = heap_.malloc_one();
    TraceInst ev;
    ev.pc = image_->main_pc();
    ev.enc = isa::make_guard_event(true);
    ev.cls = isa::InstClass::kGuardEvent;
    ev.sem = SemEvent::kAlloc;
    ev.sem_addr = a.base;
    ev.sem_size = a.size;
    startup_events_.push_back(ev);
  }
}

void WorkloadGen::reset() { restart(); }

void WorkloadGen::enter_function(u16 f) {
  cur_func_ = f;
  ip_ = 0;
  in_main_ = false;
}

u64 WorkloadGen::resolve_addr(const StaticInst& si) {
  switch (si.region) {
    case MemRegion::kStack: {
      const u64 depth = stack_.size();
      const u64 frame_top = kStackBase - depth * kFrameBytes;
      return frame_top - 8 - 8 * rng_.below(20);
    }
    case MemRegion::kGlobal:
      return kGlobalBase + 8 * rng_.below(std::max<u32>(1, cfg_.profile.global_hot_words));
    case MemRegion::kHeap: {
      const u64 a = heap_.benign_addr(si.mem_size);
      if (a) return a;
      return kGlobalBase + 8 * rng_.below(64);
    }
    case MemRegion::kStream: {
      // Mostly sequential sweep (real streaming codes touch every element of
      // a line before moving on) with occasional strided jumps, plus
      // profile-dependent revisits of the recent window (reference-frame
      // style reuse).
      if (rng_.chance(cfg_.profile.stream_revisit)) {
        const u64 back = rng_.below(2048);
        const u64 pos = stream_pos_ > back ? stream_pos_ - back : 0;
        return kStreamBase + (pos & ~u64{7});
      }
      if (rng_.chance(0.04)) {
        stream_pos_ += 64 * rng_.range(1, 64);
      } else {
        stream_pos_ += 8;
      }
      if (stream_pos_ >= cfg_.profile.stream_footprint) stream_pos_ = 0;
      return kStreamBase + (stream_pos_ & ~u64{7});
    }
    case MemRegion::kNone:
      break;
  }
  return 0;
}

bool WorkloadGen::maybe_emit_heap_event(TraceInst& out) {
  const double p_alloc = p_alloc_;
  if (rng_.chance(p_alloc)) {
    const Allocation a = heap_.malloc_one();
    out = TraceInst{};
    out.pc = image_->func(cur_func_).pc_of(ip_);
    out.enc = isa::make_guard_event(true);
    out.cls = isa::InstClass::kGuardEvent;
    out.sem = SemEvent::kAlloc;
    out.sem_addr = a.base;
    out.sem_size = a.size;
    return true;
  }
  const bool churn = heap_.live_count() > 16 && rng_.chance(p_churn_);
  if (churn || (heap_.should_free() && rng_.chance(p_alloc))) {
    const Allocation a = heap_.free_one();
    if (a.size == 0) return false;
    out = TraceInst{};
    out.pc = image_->func(cur_func_).pc_of(ip_);
    out.enc = isa::make_guard_event(false);
    out.cls = isa::InstClass::kGuardEvent;
    out.sem = SemEvent::kFree;
    out.sem_addr = a.base;
    out.sem_size = a.size;
    return true;
  }
  return false;
}

bool WorkloadGen::maybe_emit_attack(TraceInst& out) {
  if (next_attack_ >= schedule_.size()) return false;
  const Planned& pl = schedule_[next_attack_];
  if (emitted_ < pl.at) return false;

  const u64 cur_pc = in_main_ ? image_->main_pc() + 4 * (main_slot_ % 14)
                              : image_->func(cur_func_).pc_of(ip_);
  out = TraceInst{};
  out.pc = cur_pc;
  switch (pl.kind) {
    case AttackKind::kPcHijack: {
      // Indirect jump whose target lies beyond the text segment: the
      // hijacked-control-flow scenario the PMC bounds check guards against.
      out.enc = isa::make_jalr(0, 5, 0);
      out.cls = isa::InstClass::kJump;
      out.rs1 = 5;
      out.target = image_->text_hi() + 0x1000 + rng_.below(0x1000);
      out.taken = true;
      out.attack_id = pl.id;
      out.wb_value = pl.id;  // debug-data word carries the id for bookkeeping
      break;
    }
    case AttackKind::kRetCorrupt: {
      // Arm the corruption: the next genuine return will report a target
      // that disagrees with the shadow stack. The attack instruction index
      // is recorded when that return is actually emitted. If a previous
      // corruption is still pending, retry later rather than dropping it.
      if (ret_corrupt_armed_) return false;
      ret_corrupt_armed_ = true;
      armed_id_ = pl.id;
      ++next_attack_;
      return false;
    }
    case AttackKind::kHeapOob: {
      const u64 a = heap_.oob_addr();
      if (!a) return false;
      out.enc = isa::make_load(0x3, 6, 7, 0);
      out.cls = isa::InstClass::kLoad;
      out.rd = 6;
      out.rs1 = 7;
      out.mem_size = 8;
      out.mem_addr = a;
      out.attack_id = pl.id;
      out.wb_value = pl.id;
      break;
    }
    case AttackKind::kUseAfterFree: {
      const u64 a = heap_.uaf_addr();
      if (!a) return false;
      out.enc = isa::make_load(0x3, 6, 7, 0);
      out.cls = isa::InstClass::kLoad;
      out.rd = 6;
      out.rs1 = 7;
      out.mem_size = 8;
      out.mem_addr = a;
      out.attack_id = pl.id;
      out.wb_value = pl.id;
      break;
    }
  }
  injected_.push_back({pl.id, pl.kind, emitted_});
  ++next_attack_;
  return true;
}

void WorkloadGen::emit_static(const StaticInst& si, TraceInst& out) {
  out = TraceInst{};
  const Function& fn = image_->func(cur_func_);
  out.pc = fn.pc_of(ip_);
  out.enc = si.enc;
  out.cls = si.cls;
  out.rd = si.rd;
  out.rs1 = si.rs1;
  out.rs2 = si.rs2;
  out.mem_size = si.mem_size;
  out.wb_value = rng_.next();

  switch (si.cls) {
    case isa::InstClass::kLoad:
    case isa::InstClass::kStore:
      out.mem_addr = resolve_addr(si);
      break;
    case isa::InstClass::kBranch: {
      out.taken = rng_.chance(si.taken_bias);
      out.target = fn.pc_of(si.target_idx);
      break;
    }
    case isa::InstClass::kCall: {
      FG_CHECK(si.callee != kNoFunc);
      out.target = image_->func(si.callee).entry_pc;
      out.taken = true;
      break;
    }
    case isa::InstClass::kRet: {
      out.taken = true;
      if (stack_.size() > 1) {
        const Frame& fr = stack_.back();
        out.target = image_->func(fr.func).pc_of(fr.resume_idx);
      } else {
        // Return to the instruction after the driver's call (main_slot_ was
        // already advanced past that call).
        out.target = image_->main_pc() + 4 * ((main_slot_ - 1) % 14) + 4;
      }
      if (ret_corrupt_armed_) {
        // The reported return target disagrees with the shadow stack's
        // record, as if the on-stack return address had been overwritten.
        out.target ^= 0x40;
        out.attack_id = armed_id_;
        out.wb_value = armed_id_;
        injected_.push_back({armed_id_, AttackKind::kRetCorrupt, emitted_});
        ret_corrupt_armed_ = false;
      }
      break;
    }
    default:
      break;
  }
}

bool WorkloadGen::next(TraceInst& out) {
  if (emitted_ >= cfg_.n_insts) return false;

  if (!startup_events_.empty()) {
    out = startup_events_.front();
    startup_events_.erase(startup_events_.begin());
    ++emitted_;
    return true;
  }

  // Attacks and allocator events interleave with the structural walk.
  if (maybe_emit_attack(out)) {
    ++emitted_;
    return true;
  }
  if (maybe_emit_heap_event(out)) {
    ++emitted_;
    return true;
  }

  if (in_main_) {
    // Synthetic top-level driver: call a hot entry function.
    const u16 f = image_->pick_entry(rng_);
    out = TraceInst{};
    out.pc = image_->main_pc() + 4 * (main_slot_ % 14);
    out.enc = isa::make_jalr(1, 5, 0);
    out.cls = isa::InstClass::kCall;
    out.rd = 1;
    out.rs1 = 5;
    out.target = image_->func(f).entry_pc;
    out.taken = true;
    ++main_slot_;
    stack_.clear();
    stack_.push_back({cur_func_, ip_});  // resume slot is unused for main
    enter_function(f);
    ++emitted_;
    return true;
  }

  const Function& fn = image_->func(cur_func_);
  FG_CHECK(ip_ < fn.insts.size());
  const StaticInst& si = fn.insts[ip_];
  emit_static(si, out);

  // Advance the walker.
  switch (si.cls) {
    case isa::InstClass::kBranch:
      ip_ = out.taken ? si.target_idx : ip_ + 1;
      break;
    case isa::InstClass::kCall:
      if (stack_.size() < 64) {
        stack_.push_back({cur_func_, ip_ + 1});
        enter_function(si.callee);
      } else {
        // Depth cap: treat as a no-op ALU instruction to avoid unbounded
        // recursion through deep call chains.
        out.cls = isa::InstClass::kIntAlu;
        out.enc = isa::make_alu_ri(0, 5, 5, 1);
        out.target = 0;
        out.taken = false;
        ip_ += 1;
      }
      break;
    case isa::InstClass::kRet:
      if (stack_.size() > 1) {
        const Frame fr = stack_.back();
        stack_.pop_back();
        cur_func_ = fr.func;
        ip_ = fr.resume_idx;
      } else {
        stack_.clear();
        in_main_ = true;
      }
      break;
    default:
      ip_ += 1;
      break;
  }
  ++emitted_;
  return true;
}

}  // namespace fg::trace
