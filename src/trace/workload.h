// Dynamic workload generator: walks a ProgramImage to produce the committed
// instruction stream, resolving memory addresses against the heap model,
// emitting allocator guard events, and injecting attacks.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/trace/heap_model.h"
#include "src/trace/program_image.h"
#include "src/trace/trace.h"

namespace fg::trace {

struct WorkloadConfig {
  WorkloadProfile profile;
  u64 seed = 1;
  u64 n_insts = 200'000;       // total dynamic instructions to emit
  u64 warmup_insts = 20'000;   // attacks are injected only after warmup
  /// Attack plan: (kind, how many). Injection points are spread uniformly
  /// over the post-warmup region of the trace.
  std::vector<std::pair<AttackKind, u32>> attacks;
};

class WorkloadGen final : public TraceSource {
 public:
  explicit WorkloadGen(WorkloadConfig cfg);

  bool next(TraceInst& out) override;
  void reset() override;

  const ProgramImage& image() const { return *image_; }
  u64 text_lo() const { return image_->text_lo(); }
  u64 text_hi() const { return image_->text_hi(); }
  u64 emitted() const { return emitted_; }

  struct Injected {
    u32 id = 0;
    AttackKind kind = AttackKind::kPcHijack;
    u64 instr_idx = 0;  // dynamic index at which the attack was emitted
  };
  /// Attacks emitted so far (grows as the trace is consumed).
  const std::vector<Injected>& injected() const { return injected_; }
  /// Total attacks that will be injected over the full trace.
  size_t planned_attacks() const { return schedule_.size(); }

 private:
  struct Frame {
    u16 func;
    u32 resume_idx;  // in-function flat index to resume at
  };

  void restart();
  void enter_function(u16 f);
  void emit_static(const StaticInst& si, TraceInst& out);
  u64 resolve_addr(const StaticInst& si);
  bool maybe_emit_heap_event(TraceInst& out);
  bool maybe_emit_attack(TraceInst& out);

  WorkloadConfig cfg_;
  std::unique_ptr<ProgramImage> image_;
  Rng rng_;
  HeapModel heap_;
  // Per-instruction heap-event probabilities, hoisted out of the per-inst
  // path (identical values: derived only from the immutable profile).
  double p_alloc_ = 0.0;
  double p_churn_ = 0.0;

  // Walker state.
  u16 cur_func_ = 0;
  u32 ip_ = 0;  // flat index within cur_func_
  std::vector<Frame> stack_;
  u64 stream_pos_ = 0;
  u64 emitted_ = 0;
  bool in_main_ = true;
  u32 main_slot_ = 0;

  // Attack state.
  struct Planned {
    u64 at;
    AttackKind kind;
    u32 id;
  };
  std::vector<Planned> schedule_;  // sorted by `at`
  std::vector<TraceInst> startup_events_;
  size_t next_attack_ = 0;
  bool ret_corrupt_armed_ = false;
  u32 armed_id_ = 0;
  std::vector<Injected> injected_;
};

}  // namespace fg::trace
