// Trace record and trace-source interface.
//
// The main-core model is trace driven: a TraceSource supplies the dynamic
// instruction stream (with resolved memory addresses, branch outcomes and
// committed values), and the core model computes timing. FireGuard runs and
// baseline runs replay the *identical* stream, so any cycle difference is
// attributable to monitoring back-pressure alone.
#pragma once

#include "src/common/types.h"
#include "src/isa/riscv.h"

namespace fg::trace {

/// Semantic heap events carried by guard.alloc / guard.free markers.
enum class SemEvent : u8 { kNone, kAlloc, kFree };

/// Kinds of injected attacks (one per guardian kernel).
enum class AttackKind : u8 {
  kPcHijack,    // jump to an address outside the text segment (PMC bounds)
  kRetCorrupt,  // return whose target mismatches the call site (shadow stack)
  kHeapOob,     // access into an allocation's redzone (AddressSanitizer)
  kUseAfterFree // access to a freed, still-quarantined region (UaF)
};

const char* attack_kind_name(AttackKind k);

/// One committed dynamic instruction.
struct TraceInst {
  u64 pc = 0;
  u32 enc = 0;                 // RISC-V encoding (drives the mini-filters)
  isa::InstClass cls = isa::InstClass::kNop;
  u8 rd = kNoReg;
  u8 rs1 = kNoReg;
  u8 rs2 = kNoReg;
  u8 mem_size = 0;             // bytes accessed (loads/stores)
  u64 mem_addr = 0;            // effective address (loads/stores)
  u64 wb_value = 0;            // committed result (PRF debug payload)
  u64 target = 0;              // control-flow target (branch taken / jump)
  bool taken = false;          // conditional branch outcome
  SemEvent sem = SemEvent::kNone;
  u64 sem_addr = 0;            // allocation base for alloc/free events
  u32 sem_size = 0;            // allocation size for alloc events
  u32 attack_id = 0;           // 0 = benign, else 1-based injected attack id
};

/// A deterministic, restartable stream of TraceInst.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Produce the next instruction. Returns false at end of stream.
  virtual bool next(TraceInst& out) = 0;

  /// Restart the identical stream from the beginning.
  virtual void reset() = 0;
};

}  // namespace fg::trace
