#include "src/trace/program_image.h"

#include <algorithm>
#include <array>

#include "src/common/check.h"

namespace fg::trace {

namespace {

// Register pool used by generated code for values (x5..x15, x28..x31 are
// caller-saved temporaries in the RISC-V ABI).
constexpr u8 kTempRegs[] = {5, 6, 7, 28, 29, 30, 31, 10, 11, 12, 13, 14, 15};
constexpr size_t kNumTempRegs = sizeof(kTempRegs);
constexpr u8 kSp = 2;
constexpr u8 kGp = 3;
constexpr u8 kRa = 1;

/// Rolling destination window so sources often name recent destinations —
/// this sets the dependency distances that determine baseline ILP.
class RegAlloc {
 public:
  explicit RegAlloc(Rng& rng) : rng_(rng) {
    for (auto& r : recent_) r = kTempRegs[rng_.below(kNumTempRegs)];
  }
  u8 fresh_dst() {
    const u8 r = kTempRegs[rng_.below(kNumTempRegs)];
    recent_[pos_++ % recent_.size()] = r;
    return r;
  }
  u8 src() {
    if (rng_.chance(0.40)) return recent_[rng_.below(recent_.size())];
    return kTempRegs[rng_.below(kNumTempRegs)];
  }
  /// Branch operands: mostly induction variables / flags that resolve fast
  /// (register x23 is never written), occasionally a recent data value.
  u8 branch_src() { return rng_.chance(0.35) ? src() : u8{23}; }

 private:
  Rng& rng_;
  std::array<u8, 8> recent_{};
  size_t pos_ = 0;
};

u8 pick_mem_size(Rng& rng, u8& funct3_out, bool is_load) {
  const double r = rng.uniform();
  if (r < 0.58) {
    funct3_out = 0x3;  // ld / sd
    return 8;
  }
  if (r < 0.88) {
    funct3_out = 0x2;  // lw / sw
    return 4;
  }
  if (r < 0.95) {
    funct3_out = is_load ? 0x5 : 0x1;  // lhu / sh
    return 2;
  }
  funct3_out = is_load ? 0x4 : 0x0;  // lbu / sb
  return 1;
}

MemRegion pick_region(const WorkloadProfile& p, Rng& rng) {
  const double r = rng.uniform();
  if (r < p.m_stack) return MemRegion::kStack;
  if (r < p.m_stack + p.m_global) return MemRegion::kGlobal;
  if (r < p.m_stack + p.m_global + p.m_heap) return MemRegion::kHeap;
  return MemRegion::kStream;
}

// Dedicated pointer registers for induction-variable addressing (never
// written by generated code, so such loads carry no false dependencies and
// reach the memory system with full MLP).
constexpr u8 kHeapPtr = 21;
constexpr u8 kStreamPtr = 22;

u8 base_reg_for(MemRegion r, RegAlloc& regs, Rng& rng, double ptr_chase) {
  switch (r) {
    case MemRegion::kStack: return kSp;
    case MemRegion::kGlobal: return kGp;
    case MemRegion::kHeap:
      return rng.chance(ptr_chase) ? regs.src() : kHeapPtr;
    case MemRegion::kStream:
      return rng.chance(ptr_chase * 0.3) ? regs.src() : kStreamPtr;
    default: return regs.src();
  }
}

}  // namespace

ProgramImage::ProgramImage(const WorkloadProfile& profile, u64 seed) {
  Rng rng(seed ^ 0xabcdef12345ull);
  const u16 n = static_cast<u16>(std::max(2, profile.n_funcs));
  funcs_.resize(n);

  // Layout: a 16-instruction "main" driver stub at kTextBase, then functions.
  u64 pc = kTextBase + 16 * 4;
  for (u16 f = 0; f < n; ++f) {
    build_function(f, profile, rng, pc);
    pc += 4 * funcs_[f].insts.size() + 16;  // small inter-function gap
  }
  text_hi_ = pc;

  // The first quarter of the functions are top-level entry points, with a
  // Zipf-ish popularity distribution (hot code dominates, like real programs).
  n_entry_funcs_ = std::max<u16>(1, n / 4);
  entry_cdf_.resize(n_entry_funcs_);
  double acc = 0.0;
  for (u16 i = 0; i < n_entry_funcs_; ++i) {
    acc += 1.0 / (1.0 + i);
    entry_cdf_[i] = acc;
  }
  for (auto& w : entry_cdf_) w /= acc;
}

u16 ProgramImage::pick_entry(Rng& rng) const {
  const double r = rng.uniform();
  const auto it = std::lower_bound(entry_cdf_.begin(), entry_cdf_.end(), r);
  return static_cast<u16>(it - entry_cdf_.begin());
}

size_t ProgramImage::static_inst_count() const {
  size_t c = 0;
  for (const auto& f : funcs_) c += f.insts.size();
  return c;
}

void ProgramImage::build_function(u16 idx, const WorkloadProfile& p, Rng& rng,
                                  u64 entry_pc) {
  Function& fn = funcs_[idx];
  fn.entry_pc = entry_pc;
  RegAlloc regs(rng);

  // Call targets form a DAG: callees always have a larger index.
  std::vector<u16> callees;
  if (static_cast<size_t>(idx) + 1 < funcs_.size()) {
    const u16 span = static_cast<u16>(funcs_.size() - idx - 1);
    const int k = static_cast<int>(rng.range(1, 3));
    for (int i = 0; i < k; ++i) {
      callees.push_back(static_cast<u16>(idx + 1 + rng.below(std::min<u16>(span, 24))));
    }
  }

  auto add = [&fn](StaticInst si) { fn.insts.push_back(si); };

  auto add_mem = [&](bool is_load) {
    StaticInst si;
    u8 f3 = 0;
    si.mem_size = pick_mem_size(rng, f3, is_load);
    si.region = pick_region(p, rng);
    si.cls = is_load ? isa::InstClass::kLoad : isa::InstClass::kStore;
    const u8 base = base_reg_for(si.region, regs, rng, p.ptr_chase);
    if (is_load) {
      si.rd = regs.fresh_dst();
      si.rs1 = base;
      si.enc = isa::make_load(f3, si.rd, si.rs1, static_cast<i32>(rng.below(128)));
    } else {
      si.rs1 = base;
      si.rs2 = regs.src();
      si.enc = isa::make_store(f3, si.rs1, si.rs2, static_cast<i32>(rng.below(128)));
    }
    add(si);
  };

  // --- Prologue: addi sp,sp,-frame; sd ra; sd s0 (stack stores). ---
  {
    StaticInst si;
    si.cls = isa::InstClass::kIntAlu;
    si.rd = kSp;
    si.rs1 = kSp;
    si.enc = isa::make_alu_ri(0x0, kSp, kSp, -static_cast<i32>(kFrameBytes));
    add(si);
    for (int i = 0; i < 2; ++i) {
      StaticInst st;
      st.cls = isa::InstClass::kStore;
      st.mem_size = 8;
      st.region = MemRegion::kStack;
      st.rs1 = kSp;
      st.rs2 = (i == 0) ? kRa : u8{8};
      st.enc = isa::make_store(0x3, kSp, st.rs2, static_cast<i32>(kFrameBytes - 8 * (i + 1)));
      add(st);
    }
  }

  // --- Blocks. ---
  const int nb = std::max(2, p.blocks_per_func + static_cast<int>(rng.range(0, 2)) - 1);
  std::vector<u32> block_start(nb + 1, 0);
  struct Term {
    u32 idx;         // flat index of the terminator branch
    bool is_loop;
    int block;       // block number
    float bias;
  };
  std::vector<Term> terms;

  // Residual mix after control-flow classes are placed explicitly.
  const double body_total = p.f_load + p.f_store + p.f_fp + p.f_muldiv + p.f_call;

  for (int b = 0; b < nb; ++b) {
    block_start[b] = static_cast<u32>(fn.insts.size());
    const int len = std::max(2, p.block_len + static_cast<int>(rng.range(0, 4)) - 2);
    bool placed_call = false;
    for (int i = 0; i < len; ++i) {
      const double r = rng.uniform() * std::max(0.85, body_total + 0.45);
      if (r < p.f_load) {
        add_mem(true);
      } else if (r < p.f_load + p.f_store) {
        add_mem(false);
      } else if (r < p.f_load + p.f_store + p.f_fp) {
        StaticInst si;
        si.cls = isa::InstClass::kFpAlu;
        si.rd = regs.fresh_dst();
        si.rs1 = regs.src();
        si.rs2 = regs.src();
        si.enc = isa::make_fp(static_cast<u8>(rng.below(4)), si.rd, si.rs1, si.rs2);
        add(si);
      } else if (r < p.f_load + p.f_store + p.f_fp + p.f_muldiv) {
        StaticInst si;
        const bool div = rng.chance(0.25);
        si.cls = div ? isa::InstClass::kIntDiv : isa::InstClass::kIntMul;
        si.rd = regs.fresh_dst();
        si.rs1 = regs.src();
        si.rs2 = regs.src();
        si.enc = isa::make_mul(div ? 0x4 : 0x0, si.rd, si.rs1, si.rs2);
        add(si);
      } else if (r < body_total && !placed_call && !callees.empty() &&
                 rng.chance(p.f_call / std::max(1e-9, body_total - p.f_load - p.f_store -
                                                            p.f_fp - p.f_muldiv) *
                            4.0)) {
        StaticInst si;
        si.cls = isa::InstClass::kCall;
        si.callee = callees[rng.below(callees.size())];
        si.rd = kRa;
        si.enc = isa::make_jalr(kRa, regs.src(), 0);  // far call via register
        add(si);
        placed_call = true;
      } else {
        StaticInst si;
        si.cls = isa::InstClass::kIntAlu;
        si.rd = regs.fresh_dst();
        si.rs1 = regs.src();
        if (rng.chance(0.4)) {
          si.enc = isa::make_alu_ri(static_cast<u8>(rng.below(2) ? 0x0 : 0x4), si.rd,
                                    si.rs1, static_cast<i32>(rng.below(64)));
        } else {
          si.rs2 = regs.src();
          static constexpr u8 kAluF3[] = {0x0, 0x4, 0x6, 0x7, 0x1, 0x5};
          si.enc = isa::make_alu_rr(kAluF3[rng.below(6)], si.rd, si.rs1, si.rs2,
                                    rng.chance(0.15));
        }
        add(si);
      }
    }
    // Terminator: loop back-edge or forward conditional skip. The last block
    // gets no terminator (falls into the epilogue).
    if (b + 1 < nb) {
      Term t;
      t.idx = static_cast<u32>(fn.insts.size());
      t.block = b;
      t.is_loop = rng.chance(p.loop_frac);
      if (t.is_loop) {
        t.bias = static_cast<float>(1.0 - 1.0 / std::max(2.0, p.mean_trips));
      } else if (rng.chance(p.f_hard_branch)) {
        t.bias = static_cast<float>(0.35 + rng.uniform() * 0.3);  // hard
      } else {
        const double b0 = 0.03 + rng.uniform() * 0.17;
        t.bias = static_cast<float>(rng.chance(0.5) ? b0 : 1.0 - b0);  // easy
      }
      terms.push_back(t);
      StaticInst si;
      si.cls = isa::InstClass::kBranch;
      si.rs1 = regs.branch_src();
      si.rs2 = regs.branch_src();
      si.taken_bias = t.bias;
      static constexpr u8 kBrF3[] = {0x0, 0x1, 0x4, 0x5, 0x6, 0x7};
      si.enc = isa::make_branch(kBrF3[rng.below(6)], si.rs1, si.rs2, 0);
      add(si);
    }
  }
  block_start[nb] = static_cast<u32>(fn.insts.size());

  // --- Epilogue: ld ra; ld s0; addi sp; ret. ---
  const u32 epilogue_start = static_cast<u32>(fn.insts.size());
  for (int i = 0; i < 2; ++i) {
    StaticInst ld;
    ld.cls = isa::InstClass::kLoad;
    ld.mem_size = 8;
    ld.region = MemRegion::kStack;
    ld.rd = (i == 0) ? kRa : u8{8};
    ld.rs1 = kSp;
    ld.enc = isa::make_load(0x3, ld.rd, kSp, static_cast<i32>(kFrameBytes - 8 * (i + 1)));
    fn.insts.push_back(ld);
  }
  {
    StaticInst si;
    si.cls = isa::InstClass::kIntAlu;
    si.rd = kSp;
    si.rs1 = kSp;
    si.enc = isa::make_alu_ri(0x0, kSp, kSp, static_cast<i32>(kFrameBytes));
    fn.insts.push_back(si);
  }
  {
    StaticInst ret;
    ret.cls = isa::InstClass::kRet;
    ret.rs1 = kRa;
    ret.enc = isa::make_jalr(0, kRa, 0);
    fn.insts.push_back(ret);
  }

  // Resolve terminator targets now that block boundaries are final.
  for (const Term& t : terms) {
    StaticInst& si = fn.insts[t.idx];
    if (t.is_loop) {
      si.target_idx = block_start[t.block];
    } else {
      // Skip over the next block (or to the epilogue if there is none).
      const int tgt_block = t.block + 2;
      si.target_idx = (tgt_block <= static_cast<int>(terms.size()))
                          ? block_start[tgt_block]
                          : epilogue_start;
      if (si.target_idx >= fn.insts.size()) si.target_idx = epilogue_start;
    }
    // Re-encode with the real offset so the encoding round-trips.
    const i64 off = (static_cast<i64>(si.target_idx) - static_cast<i64>(t.idx)) * 4;
    if (off >= -4096 && off < 4096) {
      si.enc = isa::make_branch(isa::funct3_of(si.enc), si.rs1, si.rs2,
                                static_cast<i32>(off));
    }
  }
}

}  // namespace fg::trace
