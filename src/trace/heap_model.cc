#include "src/trace/heap_model.h"

#include <algorithm>

#include "src/common/check.h"

namespace fg::trace {

HeapModel::HeapModel(u32 live_target, u32 mean_size, u64 seed)
    : live_target_(live_target), mean_size_(mean_size), seed_(seed), rng_(seed) {}

void HeapModel::reset() {
  rng_ = Rng(seed_);
  bump_ = kHeapBase;
  live_.clear();
  freed_.clear();
  pinned_.clear();
  cursor_ = 0;
  access_clock_ = 0;
}

Allocation HeapModel::carve(u32 size) {
  // Reuse a freed chunk that fits, LIFO, with probability 0.7.
  if (!freed_.empty() && rng_.chance(0.7)) {
    for (size_t i = freed_.size(); i-- > 0;) {
      if (freed_[i].size >= size) {
        Allocation a = freed_[i];
        freed_.erase(freed_.begin() + static_cast<long>(i));
        a.size = size;  // shrink-in-place; remainder is wasted (realistic)
        return a;
      }
      if (freed_.size() - i > 8) break;  // a real free list stops searching
    }
  }
  Allocation a{bump_, size};
  bump_ += size + kRedzoneBytes;
  bump_ = (bump_ + (kHeapGranule - 1)) & ~u64{kHeapGranule - 1};
  return a;
}

Allocation HeapModel::malloc_one() {
  // Size: mean +/- 75%, minimum one granule, granule-aligned.
  const u32 lo = std::max<u32>(kHeapGranule, mean_size_ / 4);
  const u32 hi = mean_size_ + mean_size_ / 2;
  u32 size = static_cast<u32>(rng_.range(lo, hi));
  size = (size + (kHeapGranule - 1)) & ~u32{kHeapGranule - 1};
  Allocation a = carve(size);
  live_.push_back(a);
  return a;
}

Allocation HeapModel::free_one() {
  if (live_.empty()) return {};
  // Older-biased pick, and never a chunk the program touched very recently:
  // real programs free objects they are done with, and this keeps the trace
  // free of access-then-immediate-free interleavings whose verdicts would
  // depend on analysis-engine process skew.
  const size_t n = live_.size();
  for (int attempt = 0; attempt < 12; ++attempt) {
    size_t idx = rng_.below(n);
    if (rng_.chance(0.6)) idx = rng_.below(std::max<size_t>(1, n / 2));
    if (live_[idx].last_access != 0 &&
        live_[idx].last_access + 2000 > access_clock_) {
      continue;  // too hot to free
    }
    Allocation a = live_[idx];
    live_.erase(live_.begin() + static_cast<long>(idx));
    freed_.push_back(a);
    if (freed_.size() > 1024) freed_.erase(freed_.begin());
    return a;
  }
  return {};
}

u64 HeapModel::benign_addr(u8 access_size) {
  if (live_.empty()) return 0;
  // Recency bias: most accesses go to recently allocated chunks, and within
  // a chunk they walk mostly sequentially (object fields / array elements),
  // which is what gives real programs their cache and shadow-byte locality.
  const size_t n = live_.size();
  size_t back = rng_.geometric(2.5) - 1;
  if (back >= n) back = rng_.below(n);
  Allocation& a = live_[n - 1 - back];
  a.last_access = ++access_clock_;
  const u32 span = a.size > access_size ? a.size - access_size : 0;
  if (span == 0) return a.base;
  cursor_ = rng_.chance(0.15) ? rng_.below(span + 1) : cursor_ + 8;
  return a.base + cursor_ % (span + 1);
}

u64 HeapModel::oob_addr() {
  if (live_.empty()) return 0;
  const Allocation& a = live_[rng_.below(live_.size())];
  return a.base + a.size + rng_.range(0, kRedzoneBytes - 9);
}

u64 HeapModel::uaf_addr() {
  if (freed_.empty()) {
    if (pinned_.empty()) return 0;
    const Allocation& p = pinned_[rng_.below(pinned_.size())];
    return p.base + rng_.below(std::max<u32>(1, p.size - 8));
  }
  // Pick a chunk freed a little while ago: recent enough that the UaF
  // kernel's quarantine ring has not released it yet, but old enough that
  // its free event has long since been processed by the analysis engines.
  const size_t n = freed_.size();
  const size_t back = std::min<size_t>(n - 1, 8 + rng_.below(24));
  const size_t idx = n - 1 - back;
  Allocation a = freed_[idx];
  freed_.erase(freed_.begin() + static_cast<long>(idx));
  pinned_.push_back(a);  // later mallocs cannot recycle it before the access
  return a.base + rng_.below(std::max<u32>(1, a.size - 8));
}

}  // namespace fg::trace
