// Heap model for the synthetic workload.
//
// Maintains the set of live allocations the generated program accesses, with
// 16-byte redzones between allocations (so that a benign access never lands
// in another object's redzone — exactly the invariant AddressSanitizer's
// shadow encoding relies on) and LIFO reuse of freed chunks (so that
// use-after-free is a real hazard the quarantine in the UaF kernel has to
// defend against).
#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace fg::trace {

inline constexpr u64 kHeapBase = 0x4000'0000ull;

/// Allocation granule and inter-object redzone. 64 bytes = 8 shadow bytes =
/// exactly one 8-byte shadow word, so the guardian kernels can poison and
/// unpoison word-wise (as production AddressSanitizer does) with no partial
/// writes spilling into a neighbour's shadow.
inline constexpr u32 kRedzoneBytes = 64;
inline constexpr u32 kHeapGranule = 64;

struct Allocation {
  u64 base = 0;
  u32 size = 0;
  u64 last_access = 0;  // access-clock stamp of the most recent touch
};

class HeapModel {
 public:
  explicit HeapModel(u32 live_target, u32 mean_size, u64 seed);

  /// Allocate a chunk (size drawn around the configured mean). Reuses a freed
  /// chunk LIFO with high probability, modelling a real allocator's free
  /// lists. Returns the new allocation.
  Allocation malloc_one();

  /// Free one live allocation (older-biased pick); returns it. Returns a
  /// zero-size allocation if nothing is live.
  Allocation free_one();

  /// True if the model wants a free to keep the live set near its target.
  bool should_free() const { return live_.size() > live_target_; }

  size_t live_count() const { return live_.size(); }
  size_t freed_count() const { return freed_.size(); }

  /// Address of a benign access: recency-biased live chunk, offset uniform
  /// within it. Returns 0 if nothing is live.
  u64 benign_addr(u8 access_size);

  /// Address inside the redzone just past a live allocation's end (the
  /// AddressSanitizer attack). Returns 0 if nothing is live.
  u64 oob_addr();

  /// Address inside a freed, not-yet-reused chunk (the UaF attack). The
  /// chunk is pinned (excluded from reuse) so the access really is
  /// use-after-free when it commits. Returns 0 if nothing is freed.
  u64 uaf_addr();

  void reset();

 private:
  Allocation carve(u32 size);

  u32 live_target_;
  u32 mean_size_;
  u64 seed_;
  Rng rng_;
  u64 bump_ = kHeapBase;
  std::vector<Allocation> live_;
  std::vector<Allocation> freed_;   // reusable freed chunks (LIFO)
  std::vector<Allocation> pinned_;  // freed chunks reserved for UaF attacks
  u64 cursor_ = 0;                  // sequential-walk offset for accesses
  u64 access_clock_ = 0;            // advances on every benign access
};

}  // namespace fg::trace
