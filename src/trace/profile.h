// Workload profiles.
//
// The paper evaluates PARSEC (simmedium) on FPGA-hosted Linux; we cannot run
// PARSEC, so each benchmark is replaced by a synthetic profile calibrated to
// its published instruction-mix and memory-behaviour characteristics (Bienia
// et al., PACT'08, plus the properties the FireGuard paper itself calls out:
// x264's extreme load/store volume, dedup's allocation-heavy behaviour,
// blackscholes/swaptions being quiet FP codes). The profile numbers determine
// each guardian kernel's *event rate*, which is what drives every overhead
// figure in the paper.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace fg::trace {

struct WorkloadProfile {
  std::string name;

  // Dynamic instruction-mix targets (fractions of all committed instructions;
  // remainder is integer ALU plus unconditional jumps).
  double f_load = 0.25;
  double f_store = 0.10;
  double f_fp = 0.05;
  double f_muldiv = 0.02;
  double f_branch = 0.12;
  double f_call = 0.01;  // calls (an equal number of returns is implied)

  // Branch behaviour: fraction of static conditional branches that are
  // data-dependent / hard to predict (bias drawn near 0.5).
  double f_hard_branch = 0.10;

  // Static code shape.
  int n_funcs = 96;
  int blocks_per_func = 6;
  int block_len = 8;        // mean body instructions per block
  double loop_frac = 0.30;  // fraction of blocks that are loop heads
  double mean_trips = 12.0; // mean loop trip count

  /// Fraction of heap/stream accesses whose base address depends on a
  /// recently produced value (pointer chasing). The rest use induction-
  /// variable bases, which is what gives streaming codes their memory-level
  /// parallelism.
  double ptr_chase = 0.10;

  // Memory-region mix for loads/stores (must sum to 1).
  double m_stack = 0.30;
  double m_global = 0.20;
  double m_heap = 0.35;
  double m_stream = 0.15;
  u64 stream_footprint = 1ull << 20;  // bytes
  /// Probability a stream access revisits the recent 2KB window instead of
  /// advancing (video codecs re-read reference windows heavily; pure
  /// streaming kernels never do).
  double stream_revisit = 0.0;
  u32 global_hot_words = 512;

  // Heap behaviour.
  double allocs_per_kinst = 1.0;  // dynamic allocations per 1000 instructions
  u32 mean_alloc_size = 256;      // bytes
  u32 live_target = 256;          // steady-state live allocation count
};

/// The nine PARSEC-like profiles evaluated in the paper, in the order the
/// figures list them: blackscholes, bodytrack, dedup, ferret, fluidanimate,
/// freqmine, streamcluster, swaptions, x264 — plus the synthetic
/// memory/stall-bound "memstall" torture profile (not part of the paper's
/// figure grids; see soc::paper_workloads() for the figures' name list).
const std::vector<WorkloadProfile>& parsec_profiles();

/// Look up one profile by name (aborts if unknown).
const WorkloadProfile& profile_by_name(const std::string& name);

}  // namespace fg::trace
