// The shared check-only µcore program for the memory-safety kernels.
//
// ASan and UaF engines that do not own the allocator-event stream run this:
// probe the shadow byte of every observed access and raise a violation on a
// nonzero byte. The unrolled/hybrid fast path is *software pipelined* —
// iteration i's queue reads are interleaved with iteration i-1's check so no
// late-producer result (top / pop / lbu) is consumed by the very next
// instruction. This is the end point of the hazard-minimizing design
// patterns of Section III-D: ~6 µcore cycles per packet, zero bubbles.
#include "src/kernels/kernel.h"
#include "src/kernels/regs.h"

namespace fg::kernels {

namespace {

using ucore::UProgramBuilder;

/// Simple (non-pipelined) check body for the conventional/Duff paths and
/// the remainder path: `data` holds the popped debug-data word.
void emit_check_body(UProgramBuilder& a, u8 data) {
  const auto done = a.new_label();
  const auto viol = a.new_label();
  a.qrecent(T0, kOffAddr);
  a.srli(T3, T0, 3);
  a.add(T3, T3, S0);
  a.lbu(T4, T3, 0);
  a.beqz(T4, done);
  a.bind(viol);
  a.detect(data, T0);
  a.bind(done);
}

/// The software-pipelined unrolled block: processes exactly `n` packets in
/// five µcore cycles each with zero hazard bubbles. Register double
/// buffering: even iterations use {T0, T1, T3}, odd ones {T5, T2, T4}
/// (= address word, shadow address, shadow byte). Steady-state schedule:
///     pop addr / bnez(prev verdict) / srli / add / lbu
/// Packet i's verdict branch executes *after* packet i+1's pop (that is what
/// hides the queue-instruction latency), so q.recent no longer names the
/// offender when a violation fires. The stub therefore reports the faulting
/// *address* (still live in the double-buffered register); the host matches
/// detections to injected attacks by address.
void emit_pipelined_block(UProgramBuilder& a, u32 n) {
  std::vector<UProgramBuilder::Label> viol(n);
  std::vector<UProgramBuilder::Label> resume(n);
  for (u32 i = 0; i < n; ++i) {
    viol[i] = a.new_label();
    resume[i] = a.new_label();
  }
  const auto epilogue = a.new_label();

  for (u32 i = 0; i < n; ++i) {
    const bool even = (i % 2) == 0;
    const u8 addr = even ? T0 : T5;
    const u8 saddr = even ? T1 : T2;
    const u8 sbyte = even ? T3 : T4;
    a.qpop(addr, kOffAddr);
    if (i > 0) {
      // Previous iteration's verdict: its lbu completed 2+ cycles ago, and
      // q.recent still names packet i-1 here.
      const bool peven = ((i - 1) % 2) == 0;
      a.bnez(peven ? T3 : T4, viol[i - 1]);
      a.bind(resume[i - 1]);
    }
    a.srli(saddr, addr, 3);
    a.add(saddr, saddr, S0);
    a.lbu(sbyte, saddr, 0);
  }
  // Drain the last verdict.
  a.nop();
  a.bnez(((n - 1) % 2) == 0 ? T3 : T4, viol[n - 1]);
  a.bind(resume[n - 1]);
  a.j(epilogue);

  // Violation stubs: report the faulting address, resume.
  for (u32 i = 0; i < n; ++i) {
    const bool even = (i % 2) == 0;
    a.bind(viol[i]);
    a.detect(even ? T0 : T5, even ? T0 : T5);
    a.j(resume[i]);
  }
  a.bind(epilogue);
}

}  // namespace

ucore::UProgram build_shadow_check(ProgModel model, const KernelParams& p,
                                   const std::string& name) {
  UProgramBuilder b(name + "/" + prog_model_name(model));
  b.li(S0, static_cast<i64>(p.shadow_base));

  if (model == ProgModel::kConventional || model == ProgModel::kDuff) {
    emit_dispatch_loop(b, model, kOffData, emit_check_body, p.unroll);
    return b.build();
  }

  // Unrolled / hybrid: pipelined fast path, model-specific remainder. The
  // unroll threshold lives in a register (hoisted out of the loop).
  const auto loop = b.new_label();
  const auto remainder = b.new_label();
  b.li(kLoopTmpReg, p.unroll);
  b.bind(loop);
  b.qcount(kLoopCountReg, 0);
  b.bltu(kLoopCountReg, kLoopTmpReg, remainder);
  emit_pipelined_block(b, p.unroll);
  b.j(loop);
  b.bind(remainder);
  if (model == ProgModel::kHybrid) {
    // Duff's device on the residue: one count read, min(count, N) packets.
    std::vector<UProgramBuilder::Label> units(p.unroll);
    for (auto& l : units) l = b.new_label();
    std::vector<UProgramBuilder::Label> table;
    table.push_back(loop);
    for (u32 k = 1; k <= p.unroll; ++k) table.push_back(units[p.unroll - k]);
    b.switch_on(kLoopCountReg, table);
    for (u32 u = 0; u < p.unroll; ++u) {
      b.bind(units[u]);
      b.qpop(kBodyFirstReg, kOffData);
      emit_check_body(b, kBodyFirstReg);
    }
    b.j(loop);
  } else {
    // Pure unrolling: single-packet fallback.
    b.beqz(kLoopCountReg, loop);
    b.qpop(kBodyFirstReg, kOffData);
    emit_check_body(b, kBodyFirstReg);
    b.j(loop);
  }
  return b.build();
}

}  // namespace fg::kernels
