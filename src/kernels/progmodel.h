// The four programming models of Figure 11 / Section III-D.
//
// Guardian kernels are dispatch loops around the message queue. How the loop
// is written determines how many data-hazard bubbles the queue instructions
// cause per packet:
//
//  * conventional — check count, pop one, process, branch back: pays the
//    count→branch hazard and the loop overhead on *every* packet;
//  * Duff's device — read count once and jump into an unrolled chain,
//    processing exactly min(count, N) packets per count check;
//  * pure unrolling — process N packets back to back when the queue is full
//    enough, single-packet fallback otherwise;
//  * hybrid (the paper's proposal) — unrolled fast path when count >= N,
//    Duff's device for the remainder: uniformly best.
#pragma once

#include <functional>
#include <string>

#include "src/common/types.h"
#include "src/ucore/uprog.h"

namespace fg::kernels {

enum class ProgModel : u8 { kConventional, kDuff, kUnrolled, kHybrid };

const char* prog_model_name(ProgModel m);

/// Registers the dispatch loop reserves for itself; bodies must not clobber.
inline constexpr u8 kLoopCountReg = 28;  // packet count scratch
inline constexpr u8 kLoopTmpReg = 29;    // loop bookkeeping
inline constexpr u8 kBodyFirstReg = 12;  // first packet word handed to body

/// Emits the per-packet processing code. The first packet word (at the
/// kernel's chosen bit offset) has been popped into `first_reg`; further
/// words of the same packet are available via q.recent.
using BodyEmitter = std::function<void(ucore::UProgramBuilder&, u8 first_reg)>;

/// Emit the complete dispatch loop (an endless program) in the given model.
/// `first_word_off` is the bit offset popped into the body register.
void emit_dispatch_loop(ucore::UProgramBuilder& b, ProgModel model,
                        i64 first_word_off, const BodyEmitter& body,
                        u32 unroll = 8);

}  // namespace fg::kernels
