// Shadow stack kernel. Calls push pc+4 onto a shadow stack in the kernel's
// shared memory; returns pop and compare against the observed return target.
// A mismatch is a corrupted return address.
//
// The kernel runs under block-mode scheduling (message locality): exactly
// one engine owns the stack-pointer token at a time. When the allocator
// switches engines, the SoC appends a marker packet (inst == kSsMarkerInst,
// word2 = next engine) to the old engine's queue; on consuming it the old
// engine pushes the token {next_engine, sp} into its output queue, and the
// fabric routing channel (mesh NoC) carries it to the successor, which spins
// on noc.recv until the token arrives (pipelined parallelism as in the
// Guardian Council's shadow stack).
#include "src/kernels/kernel.h"
#include "src/kernels/regs.h"

namespace fg::kernels {

ucore::UProgram build_shadow_stack(ProgModel model, const KernelParams& p,
                                   u32 ordinal, u32 group_size) {
  (void)group_size;
  ucore::UProgramBuilder b("shadow_stack/" + std::string(prog_model_name(model)));

  // Prologue: marker constant; engine 0 starts with the token.
  b.li(S3, static_cast<i64>(kSsMarkerInst));
  if (ordinal == 0) {
    b.li(S4, static_cast<i64>(p.sstack_base));
    b.li(S5, 1);
  } else {
    b.li(S4, 0);
    b.li(S5, 0);
  }

  const BodyEmitter body = [](ucore::UProgramBuilder& a, u8 inst) {
    const auto done = a.new_label();
    const auto handoff = a.new_label();
    const auto have_token = a.new_label();
    const auto token_wait = a.new_label();
    const auto not_call = a.new_label();
    const auto do_ret = a.new_label();
    const auto viol = a.new_label();

    // Wait for the stack-pointer token if we do not own it yet.
    a.bnez(S5, have_token);
    a.bind(token_wait);
    a.nocrecv(T5);
    a.beqz(T5, token_wait);   // spin until the mesh delivers the token
    a.add(S4, T5, 0);         // token payload = shadow stack pointer
    a.li(S5, 1);
    a.bind(have_token);

    // Marker? hand the token to the named successor.
    a.beq(inst, S3, handoff);

    // Decode: rd field [11:7], opcode [6:0], rs1 [19:15].
    a.srli(T0, inst, 7);
    a.andi(T0, T0, 0x1f);     // rd
    a.addi(T1, T0, -1);
    a.bnez(T1, not_call);     // rd == ra (x1)  =>  a call

    // Call: push pc + 4.
    a.qrecent(A1, kOffPc);
    a.addi(A1, A1, 4);
    a.sd(A1, S4, 0);
    a.addi(S4, S4, 8);
    a.j(done);

    a.bind(not_call);
    // Return? opcode == JALR (0x67) && rd == 0 && rs1 == ra.
    a.bnez(T0, done);         // rd != 0: not a return
    a.andi(T1, inst, 0x7f);
    a.addi(T1, T1, -0x67);
    a.bnez(T1, done);         // not JALR
    a.srli(T2, inst, 15);
    a.andi(T2, T2, 0x1f);
    a.addi(T2, T2, -1);
    a.bnez(T2, done);         // rs1 != ra
    a.j(do_ret);

    a.bind(do_ret);
    a.addi(S4, S4, -8);
    a.ld(T3, S4, 0);          // shadow top
    a.qrecent(A2, kOffAddr);  // observed return target (FTQ)
    a.bne(T3, A2, viol);
    a.j(done);

    a.bind(viol);
    a.qrecent(A1, kOffData);
    a.detect(A1, A2);
    a.j(done);

    a.bind(handoff);
    a.qrecent(T5, kOffAddr);  // word2 = successor engine id
    a.slli(T5, T5, 56);
    a.or_(T5, T5, S4);        // token = {dst engine, sp}
    a.qpush(T5);
    a.li(S5, 0);              // we no longer own the stack
    a.bind(done);
  };

  emit_dispatch_loop(b, model, kOffInst, body, p.unroll);
  return b.build();
}

}  // namespace fg::kernels
