#include "src/kernels/progmodel.h"

#include <vector>

#include "src/common/check.h"

namespace fg::kernels {

using ucore::UProgramBuilder;

const char* prog_model_name(ProgModel m) {
  switch (m) {
    case ProgModel::kConventional: return "conventional";
    case ProgModel::kDuff: return "duff";
    case ProgModel::kUnrolled: return "unrolled";
    case ProgModel::kHybrid: return "hybrid";
  }
  return "?";
}

namespace {

/// pop + body, once.
void emit_one(UProgramBuilder& b, i64 off, const BodyEmitter& body) {
  b.qpop(kBodyFirstReg, off);
  body(b, kBodyFirstReg);
}

/// Duff's device: switch on min(count, unroll) into a chain of `unroll`
/// pop+body units so exactly that many packets are processed per count read.
void emit_duff(UProgramBuilder& b, UProgramBuilder::Label loop, i64 off,
               const BodyEmitter& body, u32 unroll) {
  // Table slot k = "process k packets": slot 0 returns to the loop head;
  // slot k (k>=1) enters the chain at the unit that leaves k bodies to run.
  std::vector<UProgramBuilder::Label> units(unroll);
  for (auto& l : units) l = b.new_label();
  std::vector<UProgramBuilder::Label> table;
  table.push_back(loop);                          // count == 0
  for (u32 k = 1; k <= unroll; ++k) table.push_back(units[unroll - k]);
  b.switch_on(kLoopCountReg, table);              // clamps count to unroll
  for (u32 u = 0; u < unroll; ++u) {
    b.bind(units[u]);
    emit_one(b, off, body);
  }
  b.j(loop);
}

}  // namespace

void emit_dispatch_loop(UProgramBuilder& b, ProgModel model, i64 off,
                        const BodyEmitter& body, u32 unroll) {
  FG_CHECK(unroll >= 2);
  const auto loop = b.new_label();

  switch (model) {
    case ProgModel::kConventional: {
      // loop: count; beqz; pop; body; j loop  — hazards on count and pop
      // every iteration.
      b.bind(loop);
      b.qcount(kLoopCountReg, 0);
      b.beqz(kLoopCountReg, loop);
      emit_one(b, off, body);
      b.j(loop);
      break;
    }
    case ProgModel::kDuff: {
      b.bind(loop);
      b.qcount(kLoopCountReg, 0);
      emit_duff(b, loop, off, body, unroll);
      break;
    }
    case ProgModel::kUnrolled: {
      // Fast path: a straight N-unit block when the queue holds >= N;
      // one-at-a-time fallback so the queue still drains when nearly empty.
      const auto single = b.new_label();
      b.li(kLoopTmpReg, unroll);
      b.bind(loop);
      b.qcount(kLoopCountReg, 0);
      b.bltu(kLoopCountReg, kLoopTmpReg, single);
      for (u32 u = 0; u < unroll; ++u) emit_one(b, off, body);
      b.j(loop);
      b.bind(single);
      b.beqz(kLoopCountReg, loop);
      emit_one(b, off, body);
      b.j(loop);
      break;
    }
    case ProgModel::kHybrid: {
      // count >= N: unrolled block. 0 < count < N: Duff remainder. This is
      // the paper's uniformly-best strategy.
      const auto remainder = b.new_label();
      b.li(kLoopTmpReg, unroll);
      b.bind(loop);
      b.qcount(kLoopCountReg, 0);
      b.bltu(kLoopCountReg, kLoopTmpReg, remainder);
      for (u32 u = 0; u < unroll; ++u) emit_one(b, off, body);
      b.j(loop);
      b.bind(remainder);
      emit_duff(b, loop, off, body, unroll);
      break;
    }
  }
}

}  // namespace fg::kernels
