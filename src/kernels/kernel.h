// Guardian kernels: the paper's four evaluated safeguards.
//
//  * PMC  — custom performance counter with bounds check: counts monitored
//           control-flow events and validates every jump/branch target
//           against the legal text-segment range (detects PC hijacking).
//  * SS   — shadow stack: pushes return addresses on calls, compares on
//           returns (detects return-address corruption). Runs under the
//           allocator's block-mode scheduling and hands its stack pointer to
//           the next engine via a token over the fabric routing channel.
//  * ASan — AddressSanitizer: shadow byte per 8-byte granule; allocator
//           events unpoison objects and poison redzones; every load/store is
//           checked (detects out-of-bounds accesses).
//  * UaF  — use-after-free detector in the MineSweeper style: freed regions
//           are quarantined (shadow-marked) and only released when old;
//           every load/store is checked against the quarantine.
//
// Each kernel is generated as a real µcore program (src/ucore) in any of the
// four programming models of Figure 11.
#pragma once

#include <string>

#include "src/common/types.h"
#include "src/core/filter.h"
#include "src/kernels/progmodel.h"
#include "src/ucore/uprog.h"

namespace fg::kernels {

enum class KernelKind : u8 { kPmc, kShadowStack, kAsan, kUaf };

const char* kernel_name(KernelKind k);

/// Message-queue word bit offsets (see core::packet_word).
inline constexpr i64 kOffPc = 0;
inline constexpr i64 kOffInst = 64;
inline constexpr i64 kOffAddr = 128;
inline constexpr i64 kOffData = 192;

/// Marker "instruction" used by block-mode shadow-stack handoff packets
/// (not a valid RISC-V encoding, so it cannot collide with real commits).
inline constexpr u32 kSsMarkerInst = 0xffffffffu;

/// Kernel-wide parameters baked into the generated programs.
struct KernelParams {
  // PMC bounds-check range (the workload's text segment).
  u64 text_lo = 0;
  u64 text_hi = 0;
  // Shadow regions in the analysis engines' shared address space.
  u64 shadow_base = 0x20'0000'0000ull;      // ASan/UaF shadow bytes
  /// Timing mirror for the event engine's poison/unpoison loops. The
  /// *authoritative* shadow is updated in commit order by the SoC (the
  /// functional-first / timing-later split described in DESIGN.md §6); the
  /// event engine's program performs the identical loop against this mirror
  /// so its cycle cost is still paid where the paper pays it.
  u64 shadow_timing_base = 0x28'0000'0000ull;
  u64 sstack_base = 0x30'0000'0000ull;      // shadow stack storage
  u64 quarantine_base = 0x38'0000'0000ull;  // UaF quarantine ring buffer
  u32 quarantine_slots = 64;                // release oldest beyond this
  u32 unroll = 12;                          // unrolled-loop factor
};

/// Program the event-filter SRAM with this kernel's instruction interests.
/// ASan and UaF split their traffic across two Group IDs: the load/store
/// *checks* (gid_checks, round-robined over all engines of the group) and
/// the rare allocator *events* (gid_events, pinned to the group's first
/// engine). The split keeps the check engines' inner loop free of the
/// event-discrimination branch — the hot loop is then a hazard-free
/// software-pipelined shadow probe. PMC and the shadow stack use only
/// gid_checks.
void program_filter(core::FilterTable& table, KernelKind kind, u8 gid_checks,
                    u8 gid_events);

/// True if the kernel uses a second GID/SE for allocator events.
constexpr bool kernel_splits_events(KernelKind k) {
  return k == KernelKind::kAsan || k == KernelKind::kUaf;
}

/// Build the µcore program for one engine of a kernel group. `ordinal` is
/// the engine's position within the group (0-based; ordinal 0 is the event
/// engine for ASan/UaF and the initial token owner for the shadow stack)
/// and `group_size` the number of engines running this kernel.
ucore::UProgram build_kernel_program(KernelKind kind, ProgModel model,
                                     const KernelParams& params, u32 ordinal,
                                     u32 group_size);

// Per-kernel entry points (used directly by unit tests).
ucore::UProgram build_pmc(ProgModel model, const KernelParams& p);
ucore::UProgram build_shadow_stack(ProgModel model, const KernelParams& p,
                                   u32 ordinal, u32 group_size);
/// `event_engine`: include the allocator-event handling (shadow poisoning /
/// quarantine bookkeeping) alongside the checks.
ucore::UProgram build_asan(ProgModel model, const KernelParams& p,
                           bool event_engine);
ucore::UProgram build_uaf(ProgModel model, const KernelParams& p,
                          bool event_engine);
/// The shared check-only program (identical for ASan and UaF: probe the
/// shadow byte, flag nonzero), with the software-pipelined fast path.
ucore::UProgram build_shadow_check(ProgModel model, const KernelParams& p,
                                   const std::string& name);

}  // namespace fg::kernels
