// µcore register conventions shared by the generated guardian kernels.
// x28/x29 belong to the dispatch loop (progmodel.h); x12 carries the first
// popped packet word into the body.
#pragma once

#include "src/common/types.h"

namespace fg::kernels {

inline constexpr u8 T0 = 5;
inline constexpr u8 T1 = 6;
inline constexpr u8 T2 = 7;
inline constexpr u8 T3 = 8;
inline constexpr u8 T4 = 9;
inline constexpr u8 T5 = 10;
inline constexpr u8 T6 = 11;
// x12 = kBodyFirstReg (first packet word)
inline constexpr u8 A1 = 13;
inline constexpr u8 A2 = 14;
inline constexpr u8 A3 = 15;
// Callee-saved-style constants, loaded once in the program prologue.
inline constexpr u8 S0 = 16;  // shadow base
inline constexpr u8 S1 = 17;  // text_lo (PMC)
inline constexpr u8 S2 = 18;  // text_hi (PMC)
inline constexpr u8 S3 = 19;  // marker constant (SS)
inline constexpr u8 S4 = 20;  // shadow-stack pointer (SS) / ring cursor (UaF)
inline constexpr u8 S5 = 21;  // have-token flag (SS)
inline constexpr u8 S6 = 22;  // redzone fill word (ASan)
inline constexpr u8 S7 = 23;  // quarantine fill word (UaF/ASan free)
inline constexpr u8 S8 = 24;  // event counter (PMC)
inline constexpr u8 S9 = 25;  // quarantine ring base (UaF)
inline constexpr u8 S10 = 26; // scratch constant
inline constexpr u8 S11 = 27; // scratch constant

}  // namespace fg::kernels
