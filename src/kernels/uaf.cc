// Use-after-free guardian kernel (MineSweeper-style quarantine).
//
// Freed objects are not merely marked: they enter a quarantine ring so the
// allocator cannot hand them out while dangling pointers may still exist.
// Every monitored load/store is checked against the quarantine shadow. The
// ring-release work (clearing the shadow of the oldest quarantined object
// when the ring is full) is the extra per-allocation cost that, as the paper
// observes, "does not parallelize away" — it makes UaF the heaviest kernel
// and keeps dedup's overhead flat regardless of µcore count.
//
// Shadow encoding at shadow_base + (addr >> 3): 0 = pristine/live,
// 0xfd bytes = quarantined. Ring entry i (16 bytes at quarantine_base +
// (i % slots) * 16): {base, size}.
#include "src/kernels/kernel.h"
#include "src/kernels/regs.h"

namespace fg::kernels {

namespace {
constexpr i64 kQuarantineFill = 0xfdfdfdfdfdfdfdfdll;
}

ucore::UProgram build_uaf(ProgModel model, const KernelParams& p,
                          bool event_engine) {
  if (!event_engine) return build_shadow_check(model, p, "uaf_check");
  ucore::UProgramBuilder b("uaf/" + std::string(prog_model_name(model)));

  b.li(S0, static_cast<i64>(p.shadow_base));
  b.li(S1, static_cast<i64>(p.shadow_timing_base - p.shadow_base));
  b.li(S7, kQuarantineFill);
  b.li(S9, static_cast<i64>(p.quarantine_base));
  b.li(S4, 0);   // ring tail (next free slot index)
  b.li(S10, 0);  // ring head (oldest quarantined index)
  b.li(S11, static_cast<i64>(p.quarantine_slots));

  const BodyEmitter body = [&p](ucore::UProgramBuilder& a, u8 addr) {
    const auto done = a.new_label();
    const auto viol = a.new_label();
    const auto alloc_free = a.new_label();
    const auto do_free = a.new_label();
    const auto clear_loop = a.new_label();
    const auto mark_loop = a.new_label();
    const auto ring_store = a.new_label();
    const auto release_clear = a.new_label();
    const auto no_release = a.new_label();

    // Fast path: quarantine shadow check, hazard-scheduled as in the ASan
    // kernel (no late result consumed by its immediate successor).
    a.qrecent(T0, kOffInst);
    a.srli(T3, addr, 3);
    a.add(T3, T3, S0);
    a.andi(T1, T0, 0x7f);
    a.lbu(T4, T3, 0);
    a.xori(T1, T1, 0x0b);
    a.beqz(T1, alloc_free);
    a.bnez(T4, viol);      // quarantined byte => use after free
    a.j(done);

    a.bind(viol);
    a.qrecent(A1, kOffData);
    a.detect(A1, addr);
    a.j(done);

    a.bind(alloc_free);
    a.srli(A2, T0, 32);    // size
    a.srli(T3, addr, 3);
    a.add(T3, T3, S0);     // shadow cursor
    a.add(T3, T3, S1);     // ... in the timing mirror (see prologue)
    a.srli(A3, A2, 3);     // shadow bytes
    a.add(A3, A3, T3);     // end pointer
    a.srli(T5, T0, 12);
    a.andi(T5, T5, 0x7);
    a.bnez(T5, do_free);

    // Alloc: make the region live again (clear any stale quarantine marks).
    a.bind(clear_loop);
    a.sd(0, T3, 0);
    a.addi(T3, T3, 8);
    a.bltu(T3, A3, clear_loop);
    a.j(done);

    // Free: quarantine-mark the object...
    a.bind(do_free);
    a.bind(mark_loop);
    a.sd(S7, T3, 0);
    a.addi(T3, T3, 8);
    a.bltu(T3, A3, mark_loop);

    // ...record it in the quarantine ring...
    a.bind(ring_store);
    a.andi(T4, S4, static_cast<i64>(p.quarantine_slots - 1));
    a.slli(T4, T4, 4);
    a.add(T4, T4, S9);
    a.sd(addr, T4, 0);     // base
    a.sd(A2, T4, 8);       // size
    a.addi(S4, S4, 1);

    // ...and release the oldest entry if the ring is over capacity. This is
    // MineSweeper's deferred sweep: real deallocation happens only when the
    // object has aged out of quarantine.
    a.sub(T4, S4, S10);
    a.bltu(T4, S11, no_release);
    a.andi(T4, S10, static_cast<i64>(p.quarantine_slots - 1));
    a.slli(T4, T4, 4);
    a.add(T4, T4, S9);
    a.ld(T5, T4, 0);       // oldest base
    a.ld(A3, T4, 8);       // oldest size
    a.addi(S10, S10, 1);
    a.srli(T5, T5, 3);
    a.add(T5, T5, S0);
    a.add(T5, T5, S1);     // release clears the timing mirror too
    a.srli(A3, A3, 3);     // shadow bytes
    a.add(A3, A3, T5);     // end pointer
    a.bind(release_clear);
    a.sd(0, T5, 0);
    a.addi(T5, T5, 8);
    a.bltu(T5, A3, release_clear);
    a.bind(no_release);
    a.bind(done);
  };

  emit_dispatch_loop(b, model, kOffAddr, body, p.unroll);
  return b.build();
}

}  // namespace fg::kernels
