// Hardware accelerators (Figure 1 "HA", evaluated in Figure 7a).
//
// For fixed-function safeguards the paper replaces a kernel's µcores with a
// single accelerator that keeps up with the packet stream by construction
// (one packet per low-frequency cycle), driving the main-core overhead to
// zero. We provide the two HAs the paper evaluates — PMC and shadow stack —
// with exactly the same detection semantics as their µcore programs.
#pragma once

#include <memory>
#include <vector>

#include "src/common/ring_queue.h"
#include "src/common/simctl.h"
#include "src/core/packet.h"
#include "src/ucore/ucore.h"

namespace fg::kernels {

class HardwareAccelerator {
 public:
  explicit HardwareAccelerator(u32 engine_id, u32 queue_depth = 32);
  virtual ~HardwareAccelerator() = default;

  bool input_full() const { return q_.full(); }
  size_t input_free() const { return q_.free_slots(); }
  size_t input_size() const { return q_.size(); }
  void push_input(const core::Packet& p) { q_.push(p); }

  /// Process at most one packet per low-frequency cycle.
  void tick(Cycle now_slow);

  bool quiescent() const { return q_.empty(); }
  /// `tick` is a structural no-op on an empty queue, so quiescent == idle.
  bool idle() const { return q_.empty(); }
  /// Next-event horizon: an accelerator consumes one packet per slow tick
  /// (progress every cycle until its queue drains), then sleeps until the
  /// multicast channel refills it — which is the CDC's event, not this
  /// unit's.
  Cycle next_event(Cycle now_slow) const { return idle() ? kNoEvent : now_slow; }
  u32 engine_id() const { return engine_id_; }
  u64 packets_processed() const { return processed_; }
  const std::vector<ucore::Detection>& detections() const { return detections_; }

 protected:
  virtual void process(const core::Packet& p, Cycle now_slow) = 0;
  void report(u64 payload, u64 aux, Cycle now_slow);

 private:
  u32 engine_id_;
  RingQueue<core::Packet> q_;
  u64 processed_ = 0;
  std::vector<ucore::Detection> detections_;
};

/// PMC accelerator: event counting + jump-target bounds check.
class PmcHa final : public HardwareAccelerator {
 public:
  PmcHa(u32 engine_id, u64 text_lo, u64 text_hi);
  u64 event_count() const { return events_; }

 private:
  void process(const core::Packet& p, Cycle now_slow) override;
  u64 lo_, hi_;
  u64 events_ = 0;
};

/// Shadow-stack accelerator: a dedicated stack memory next to the unit.
class ShadowStackHa final : public HardwareAccelerator {
 public:
  explicit ShadowStackHa(u32 engine_id);
  size_t depth() const { return stack_.size(); }

 private:
  void process(const core::Packet& p, Cycle now_slow) override;
  std::vector<u64> stack_;
};

}  // namespace fg::kernels
