#include "src/kernels/kernel.h"

#include "src/common/check.h"
#include "src/isa/riscv.h"

namespace fg::kernels {

const char* kernel_name(KernelKind k) {
  switch (k) {
    case KernelKind::kPmc: return "pmc";
    case KernelKind::kShadowStack: return "shadow_stack";
    case KernelKind::kAsan: return "asan";
    case KernelKind::kUaf: return "uaf";
  }
  return "?";
}

void program_filter(core::FilterTable& table, KernelKind kind, u8 gid_checks,
                    u8 gid_events) {
  using namespace fg::isa;
  const u8 dp_ctrl = core::kDpFtq | core::kDpPrf;  // target + debug data
  const u8 dp_mem = core::kDpLsq | core::kDpPrf;   // address + debug data
  switch (kind) {
    case KernelKind::kPmc:
      // All control-flow transfers: conditional branches, jumps, calls,
      // returns (JAL's funct3 bits are immediate bits, so all 8 patterns).
      table.add_interest_opcode(kOpBranch, gid_checks, dp_ctrl);
      table.add_interest_opcode(kOpJal, gid_checks, dp_ctrl);
      table.add_interest(kOpJalr, 0x0, gid_checks, dp_ctrl);
      break;
    case KernelKind::kShadowStack:
      // Calls and returns only (JAL/JALR); the kernel decodes rd/rs1 itself.
      table.add_interest_opcode(kOpJal, gid_checks, dp_ctrl);
      table.add_interest(kOpJalr, 0x0, gid_checks, dp_ctrl);
      break;
    case KernelKind::kAsan:
    case KernelKind::kUaf:
      // Every load and store under the check GID; allocator guard events
      // under their own GID (pinned to the group's event engine).
      for (u8 f3 = 0; f3 <= 6; ++f3) {
        table.add_interest(kOpLoad, f3, gid_checks, dp_mem);
      }
      for (u8 f3 = 0; f3 <= 3; ++f3) {
        table.add_interest(kOpStore, f3, gid_checks, dp_mem);
      }
      table.add_interest(kOpCustom0, kGuardAllocFunct3, gid_events, dp_mem);
      table.add_interest(kOpCustom0, kGuardFreeFunct3, gid_events, dp_mem);
      break;
  }
}

ucore::UProgram build_kernel_program(KernelKind kind, ProgModel model,
                                     const KernelParams& params, u32 ordinal,
                                     u32 group_size) {
  FG_CHECK(is_pow2(params.quarantine_slots));
  switch (kind) {
    case KernelKind::kPmc: return build_pmc(model, params);
    case KernelKind::kShadowStack:
      return build_shadow_stack(model, params, ordinal, group_size);
    case KernelKind::kAsan: return build_asan(model, params, ordinal == 0);
    case KernelKind::kUaf: return build_uaf(model, params, ordinal == 0);
  }
  FG_CHECK(false);
  __builtin_unreachable();
}

}  // namespace fg::kernels
