// AddressSanitizer guardian kernel.
//
// Shadow byte per 8-byte granule at shadow_base + (addr >> 3). Allocator
// events (guard.alloc / guard.free markers observed by the filter) maintain
// the shadow: alloc unpoisons [base, base+size) and poisons the trailing
// redzone; free poisons the whole object. Every monitored load/store checks
// its shadow byte — nonzero means redzone or freed memory. Shadow writes go
// 8 granules at a time (sd), like production ASan's word-wise poisoning.
#include "src/kernels/kernel.h"
#include "src/kernels/regs.h"

namespace fg::kernels {

namespace {
constexpr i64 kRedzoneFill = 0xfafafafafafafafall;   // ASan heap-redzone magic
constexpr i64 kFreedFill = 0xfdfdfdfdfdfdfdfdll;     // ASan heap-freed magic
}  // namespace

ucore::UProgram build_asan(ProgModel model, const KernelParams& p,
                           bool event_engine) {
  if (!event_engine) return build_shadow_check(model, p, "asan_check");
  ucore::UProgramBuilder b("asan/" + std::string(prog_model_name(model)));

  b.li(S0, static_cast<i64>(p.shadow_base));
  b.li(S1, static_cast<i64>(p.shadow_timing_base - p.shadow_base));
  b.li(S6, kRedzoneFill);
  b.li(S7, kFreedFill);

  const BodyEmitter body = [](ucore::UProgramBuilder& a, u8 addr) {
    const auto done = a.new_label();
    const auto viol = a.new_label();
    const auto alloc_free = a.new_label();
    const auto do_free = a.new_label();
    const auto unpoison_loop = a.new_label();
    const auto redzone = a.new_label();
    const auto poison_loop = a.new_label();

    // Fast path: shadow check with the allocator-event test interleaved so
    // no late-producer result (pop, q.recent, lbu) is consumed in the very
    // next instruction — the hazard-aware design pattern of Section III-D.
    a.qrecent(T0, kOffInst);     // independent of `addr` (fills pop's slot)
    a.srli(T3, addr, 3);
    a.add(T3, T3, S0);
    a.andi(T1, T0, 0x7f);        // opcode (fills q.recent's slot)
    a.lbu(T4, T3, 0);
    a.xori(T1, T1, 0x0b);        // event test (fills lbu's slot)
    a.beqz(T1, alloc_free);      // custom-0: allocator event
    a.bnez(T4, viol);
    a.j(done);

    a.bind(viol);
    a.qrecent(A1, kOffData);
    a.detect(A1, addr);
    a.j(done);

    a.bind(alloc_free);
    // Event metadata: word1 high 32 bits = size; word2 (in `addr`) = base.
    // Sizes are 64-byte granules, so size/64 exact 8-byte shadow words.
    // End-pointer loops: 3 instructions per 64 bytes of object.
    a.srli(A2, T0, 32);          // size in bytes
    a.srli(T3, addr, 3);
    a.add(T3, T3, S0);           // shadow cursor
    a.add(T3, T3, S1);           // ... in the timing mirror (see prologue)
    a.srli(A3, A2, 3);           // size/8 = shadow bytes
    a.add(A3, A3, T3);           // end pointer
    a.srli(T5, T0, 12);
    a.andi(T5, T5, 0x7);         // funct3: 0 = alloc, 1 = free
    a.bnez(T5, do_free);

    // Alloc: unpoison the object word-wise, then poison the redzone.
    a.bind(unpoison_loop);
    a.sd(0, T3, 0);
    a.addi(T3, T3, 8);
    a.bltu(T3, A3, unpoison_loop);
    a.bind(redzone);
    a.sd(S6, T3, 0);             // 64-byte redzone = 1 shadow word
    a.j(done);

    // Free: poison the whole object.
    a.bind(do_free);
    a.bind(poison_loop);
    a.sd(S7, T3, 0);
    a.addi(T3, T3, 8);
    a.bltu(T3, A3, poison_loop);

    a.bind(done);
  };

  emit_dispatch_loop(b, model, kOffAddr, body, p.unroll);
  return b.build();
}

}  // namespace fg::kernels
