#include "src/kernels/ha.h"

#include "src/isa/riscv.h"
#include "src/kernels/kernel.h"

namespace fg::kernels {

HardwareAccelerator::HardwareAccelerator(u32 engine_id, u32 queue_depth)
    : engine_id_(engine_id), q_(queue_depth) {}

void HardwareAccelerator::tick(Cycle now_slow) {
  if (q_.empty()) return;
  const core::Packet p = q_.pop();
  ++processed_;
  process(p, now_slow);
}

void HardwareAccelerator::report(u64 payload, u64 aux, Cycle now_slow) {
  detections_.push_back(ucore::Detection{engine_id_, payload, aux, now_slow});
}

PmcHa::PmcHa(u32 engine_id, u64 text_lo, u64 text_hi)
    : HardwareAccelerator(engine_id), lo_(text_lo), hi_(text_hi) {}

void PmcHa::process(const core::Packet& p, Cycle now_slow) {
  ++events_;
  if (p.addr < lo_ || p.addr >= hi_) report(p.data, p.addr, now_slow);
}

ShadowStackHa::ShadowStackHa(u32 engine_id) : HardwareAccelerator(engine_id) {}

void ShadowStackHa::process(const core::Packet& p, Cycle now_slow) {
  if (p.inst == kSsMarkerInst) return;  // no handoff needed: single unit
  if (isa::is_call(p.inst)) {
    stack_.push_back(p.pc + 4);
    return;
  }
  if (isa::is_ret(p.inst)) {
    if (stack_.empty()) return;
    const u64 expect = stack_.back();
    stack_.pop_back();
    if (expect != p.addr) report(p.data, p.addr, now_slow);
  }
}

}  // namespace fg::kernels
