// PMC: custom performance counter with bounds check (Guardian Council's PMC
// kernel). Counts monitored control-flow events in a register and validates
// every observed target against the legal text range [text_lo, text_hi):
// a jump outside it is a hijacked PC.
#include "src/kernels/kernel.h"
#include "src/kernels/regs.h"

namespace fg::kernels {

ucore::UProgram build_pmc(ProgModel model, const KernelParams& p) {
  ucore::UProgramBuilder b("pmc/" + std::string(prog_model_name(model)));

  // Prologue: bounds and counter.
  b.li(S1, static_cast<i64>(p.text_lo));
  b.li(S2, static_cast<i64>(p.text_hi));
  b.li(S8, 0);

  const BodyEmitter body = [](ucore::UProgramBuilder& a, u8 target) {
    // `target` = packet word 2 (FTQ jump/branch target).
    const auto ok = a.new_label();
    const auto viol = a.new_label();
    a.addi(S8, S8, 1);           // event counter (the "PMC" part)
    a.bltu(target, S1, viol);    // target below text
    a.bgeu(target, S2, viol);    // target above text
    a.j(ok);
    a.bind(viol);
    a.qrecent(A1, kOffData);     // debug data (carries the attack id)
    a.detect(A1, target);
    a.bind(ok);
  };

  emit_dispatch_loop(b, model, kOffAddr, body, p.unroll);
  return b.build();
}

}  // namespace fg::kernels
