// The packet encapsulation format of Figure 4(b):
//   { G_ID | Inst | PC | Addr | Debug_Data }
//
// Packets are produced by the mini-filters at commit, ordered by the
// arbiter, routed by the allocator, crossed into the low-frequency domain,
// and finally consumed by guardian kernels through the µcores' message
// queues. Invalid packets exist only to preserve commit order inside the
// paired FIFOs (footnote 4 of the paper) and are skipped by the arbiter.
#pragma once

#include "src/common/types.h"
#include "src/trace/trace.h"

namespace fg::core {

inline constexpr u32 kMaxGids = 16;
inline constexpr u32 kMaxEngines = 16;  // AE_Bitmap is 16-bit in Figure 5

/// Data-path selection bits stored in the mini-filter SRAM (DP_Sel).
enum DpSel : u8 {
  kDpPrf = 1 << 0,  // operand / writeback data from the physical register file
  kDpLsq = 1 << 1,  // memory address from the LDQ/STQ top
  kDpFtq = 1 << 2,  // jump/branch target from the FTQ
};

struct Packet {
  bool valid = false;
  u16 gid_bitmap = 0;  // all guardian kernels interested in this instruction
  u8 dp_sel = 0;       // which data paths were read for this packet

  u64 pc = 0;
  u32 inst = 0;    // raw RISC-V encoding
  u64 addr = 0;    // memory address or control-flow target (per dp_sel)
  u64 data = 0;    // PRF debug data (committed value)

  // Allocator-sourced allocation metadata (guard.alloc / guard.free).
  trace::SemEvent sem = trace::SemEvent::kNone;
  u64 sem_addr = 0;
  u32 sem_size = 0;

  u64 seq = 0;           // global commit sequence number (ordering checks)
  Cycle commit_cycle = 0;  // main-core cycle of commit (latency measurement)
  u32 attack_id = 0;       // nonzero for injected attacks (bookkeeping only)

  // Filled by the allocator: which analysis engines receive this packet.
  u16 ae_bitmap = 0;

  // Block-mode handoff: when a block-scheduled SE switches engines on this
  // packet, the multicast channel delivers a marker packet to the *old*
  // engine (marker_from) naming the successor (marker_to), atomically with
  // this packet, so the kernel can pass its state token over the routing
  // channel in stream order. 0xff = no handoff.
  u8 marker_from = 0xff;
  u8 marker_to = 0xff;
};

/// Pack the four 64-bit message-queue words a µcore reads via top/pop/recent.
/// Word layout (offset in bits passed to the queue instructions):
///   word 0 [  0.. 63]: pc
///   word 1 [ 64..127]: inst (low 32) | sem_size (high 32)
///   word 2 [128..191]: addr (or sem_addr for allocator events)
///   word 3 [192..255]: data
inline u64 packet_word(const Packet& p, u32 word) {
  switch (word & 3) {
    case 0: return p.pc;
    case 1: return static_cast<u64>(p.inst) | (static_cast<u64>(p.sem_size) << 32);
    case 2: return p.sem == trace::SemEvent::kNone ? p.addr : p.sem_addr;
    default: return p.data;
  }
}

}  // namespace fg::core
