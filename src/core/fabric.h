// The distributed fabric network (Section III-C, Figure 1 d).
//
// Two channels:
//  * a half-duplex *multicast* (1-to-N) channel: multiplexers steered by the
//    allocator deliver each packet from the event filter to the message
//    queues of every engine in its AE bitmap, atomically (all targets must
//    have room, preserving per-engine ordering);
//  * a full-duplex *routing* (N-to-N) channel: a Manhattan-grid mesh NoC over
//    which analysis engines exchange packets (the shadow stack's block-mode
//    ownership token travels here). Five bi-directional ports per router
//    (N/S/E/W + local engine), XY dimension-ordered routing, one hop per
//    slow-domain cycle per router stage, with per-link serialization.
#pragma once

#include <optional>
#include <vector>

#include "src/common/ring_queue.h"
#include "src/common/simctl.h"
#include "src/common/types.h"

namespace fg::core {

struct NocMessage {
  u32 src = 0;
  u32 dst = 0;
  u64 payload = 0;
  Cycle sent_at = 0;     // slow-domain cycle the message entered the mesh
  Cycle arrives_at = 0;  // slow-domain delivery cycle (computed by the mesh)
};

struct NocStats {
  u64 messages = 0;
  u64 total_hops = 0;
  u64 link_contention_cycles = 0;
};

/// Manhattan-grid mesh with XY routing. Geometry is chosen from the engine
/// count (near-square grid). Timing: router pipeline of `hop_latency` cycles
/// per hop; each directed link carries one message per cycle, so messages
/// sharing links queue behind each other.
class NocMesh {
 public:
  explicit NocMesh(u32 n_engines, u32 hop_latency = 2);

  /// Inject a message at slow cycle `now`; returns its delivery cycle.
  Cycle send(u32 src, u32 dst, u64 payload, Cycle now);

  /// Pop one message destined for `engine` that has arrived by `now`.
  std::optional<NocMessage> deliver(u32 engine, Cycle now);

  /// Number of mesh hops between two engines (Manhattan distance).
  u32 hops(u32 a, u32 b) const;

  /// Messages injected but not yet delivered (any engine, any arrival time).
  u64 pending() const { return pending_; }

  /// Earliest arrival cycle among all in-flight messages; kNoEvent when the
  /// mesh is empty. O(engines): reads each inbox's heap top.
  Cycle next_arrival() const;

  u32 width() const { return width_; }
  u32 height() const { return height_; }
  const NocStats& stats() const { return stats_; }

 private:
  struct Coord {
    u32 x, y;
  };
  Coord coord(u32 engine) const { return {engine % width_, engine / width_}; }
  u32 link_id(u32 x, u32 y, u32 dir) const;  // dir: 0=E,1=W,2=N,3=S

  u32 n_engines_;
  u32 width_;
  u32 height_;
  u32 hop_latency_;
  std::vector<Cycle> link_free_;                 // next-free cycle per link
  std::vector<std::vector<NocMessage>> inbox_;   // per-engine, sorted by arrival
  u64 pending_ = 0;                              // undelivered messages in flight
  NocStats stats_;
};

}  // namespace fg::core
