// Handshake-based clock-domain crossing (footnote 2 of the paper).
//
// FireGuard splits the design into a high-frequency domain (main core,
// forwarding channel, filter, allocator) and a low-frequency domain (fabric
// network and µcores). The CDC FIFO carries packets between them: a push in
// the fast domain becomes visible to the slow domain only after the
// handshake settles (one slow-domain cycle), and capacity is small
// (Table II: 8-entry CDC).
//
// Two storage modes share one interface:
//
//   serial (default)  — a plain RingQueue; every accessor touches it.
//   pipelined         — begin_pipelined() swaps storage to an EpochRing so
//     the fast-domain thread (pushes, occupancy checks) and the slow-domain
//     thread (settled pops) each work against a private index plus a view of
//     the other side published only at epoch barriers. The handshake's
//     one-slow-cycle settle time is what makes this safe: a slow boundary k
//     only ever pops entries pushed before fast cycle k*ratio, which the
//     producer published at the preceding barrier. Producer-side accessors
//     (can_push/full/empty/size/producer_next_ready_slow) see pops up to the
//     last producer_acquire_epoch(); consumer-side accessors
//     (can_pop/ready_count/front/pop) see pushes up to the last
//     consumer_acquire_epoch(). Because pops happen only at boundaries and
//     the producer re-acquires at every boundary, the producer view is not
//     merely conservative but cycle-exact against the serial schedule.
#pragma once

#include <algorithm>
#include <memory>

#include "src/common/epoch_ring.h"
#include "src/common/ring_queue.h"
#include "src/common/simctl.h"
#include "src/core/packet.h"

namespace fg::core {

struct CdcStats {
  u64 pushes = 0;
  u64 pops = 0;
  u64 full_rejects = 0;
};

class CdcFifo {
 public:
  /// `depth`: FIFO capacity. `ratio`: fast cycles per slow cycle.
  CdcFifo(u32 depth, u32 ratio);

  bool can_push() const { return ring_ ? ring_->can_push() : !q_.full(); }

  /// Push from the fast domain at fast-cycle `now_fast`.
  void push(const Packet& p, Cycle now_fast);

  /// True if the slow domain can pop an entry at slow-cycle `now_slow`
  /// (handshake settled).
  bool can_pop(Cycle now_slow) const;

  /// First slow cycle the head entry becomes poppable; kNoEvent when empty.
  /// (Entries settle in push order, so the head bounds the whole FIFO.)
  /// Serial mode / slow-domain thread only.
  Cycle next_ready_slow() const {
    if (ring_) {
      return ring_->consumer_size() == 0 ? kNoEvent : ring_->front().ready_slow;
    }
    return q_.empty() ? kNoEvent : q_.front().ready_slow;
  }

  /// The producer's view of next_ready_slow(): head settle time over the
  /// entries not yet known-consumed at the last barrier. In pipelined mode
  /// the fast thread sizes elidable boundary stretches with this; in serial
  /// mode it is exactly next_ready_slow().
  Cycle producer_next_ready_slow() const {
    if (ring_) {
      return ring_->producer_size() == 0 ? kNoEvent
                                         : ring_->producer_front().ready_slow;
    }
    return next_ready_slow();
  }

  /// How many of the first `max_n` entries have settled by `now_slow` —
  /// the burst a slow-domain wakeup may drain without re-checking the
  /// handshake per packet. Settle times are monotone in push order, so the
  /// scan stops at the first not-yet-ready entry.
  u32 ready_count(Cycle now_slow, u32 max_n) const {
    if (ring_) {
      const u32 lim =
          static_cast<u32>(std::min<size_t>(max_n, ring_->consumer_size()));
      u32 n = 0;
      while (n < lim && ring_->at(n).ready_slow <= now_slow) ++n;
      return n;
    }
    const u32 lim = static_cast<u32>(std::min<size_t>(max_n, q_.size()));
    u32 n = 0;
    while (n < lim && q_.at(n).ready_slow <= now_slow) ++n;
    return n;
  }

  const Packet& front() const { return ring_ ? ring_->front().p : q_.front().p; }
  Packet pop();

  size_t size() const { return ring_ ? ring_->producer_size() : q_.size(); }
  bool full() const {
    return ring_ ? ring_->producer_size() == ring_->capacity() : q_.full();
  }
  bool empty() const {
    return ring_ ? ring_->producer_size() == 0 : q_.empty();
  }
  void note_reject() { ++stats_.full_rejects; }
  const CdcStats& stats() const { return stats_; }

  // --- epoch-pipelined handoff ---------------------------------------------

  /// Switch to double-buffered storage. Must be called with the FIFO empty
  /// and before the slow-domain thread exists.
  void begin_pipelined();

  /// Barrier hooks. The fast thread publishes its pushes before releasing a
  /// boundary to the slow thread and acquires the pops after collecting it;
  /// the slow thread mirrors that on its side of each boundary.
  void producer_publish_epoch() { ring_->producer_publish(); }
  void producer_acquire_epoch() { ring_->producer_acquire(); }
  void consumer_acquire_epoch() { ring_->consumer_acquire(); }
  void consumer_publish_epoch() { ring_->consumer_publish(); }

  /// Tear down pipelined storage after the slow thread has joined: move any
  /// unconsumed entries back into the serial queue so post-run accessors
  /// keep working. (stats_.pops was maintained by the slow thread; the join
  /// makes it visible here.)
  void end_pipelined();

 private:
  struct Entry {
    Packet p;
    Cycle ready_slow = 0;  // first slow cycle the consumer may take it
  };

  u32 ratio_;
  RingQueue<Entry> q_;
  std::unique_ptr<EpochRing<Entry>> ring_;  // non-null in pipelined mode
  CdcStats stats_;
  // Handshake monotonicity witness: entries settle in push order, so each
  // push's ready_slow must be >= the previous one's (checked by
  // FG_INVARIANT in push; cheap enough to maintain unconditionally). In
  // pipelined mode only the fast (pushing) thread touches these.
  Cycle last_ready_slow_ = 0;
  Cycle last_push_fast_ = 0;
};

}  // namespace fg::core
