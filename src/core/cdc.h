// Handshake-based clock-domain crossing (footnote 2 of the paper).
//
// FireGuard splits the design into a high-frequency domain (main core,
// forwarding channel, filter, allocator) and a low-frequency domain (fabric
// network and µcores). The CDC FIFO carries packets between them: a push in
// the fast domain becomes visible to the slow domain only after the
// handshake settles (one slow-domain cycle), and capacity is small
// (Table II: 8-entry CDC).
#pragma once

#include <algorithm>

#include "src/common/ring_queue.h"
#include "src/common/simctl.h"
#include "src/core/packet.h"

namespace fg::core {

struct CdcStats {
  u64 pushes = 0;
  u64 pops = 0;
  u64 full_rejects = 0;
};

class CdcFifo {
 public:
  /// `depth`: FIFO capacity. `ratio`: fast cycles per slow cycle.
  CdcFifo(u32 depth, u32 ratio);

  bool can_push() const { return !q_.full(); }

  /// Push from the fast domain at fast-cycle `now_fast`.
  void push(const Packet& p, Cycle now_fast);

  /// True if the slow domain can pop an entry at slow-cycle `now_slow`
  /// (handshake settled).
  bool can_pop(Cycle now_slow) const;

  /// First slow cycle the head entry becomes poppable; kNoEvent when empty.
  /// (Entries settle in push order, so the head bounds the whole FIFO.)
  Cycle next_ready_slow() const {
    return q_.empty() ? kNoEvent : q_.front().ready_slow;
  }

  /// How many of the first `max_n` entries have settled by `now_slow` —
  /// the burst a slow-domain wakeup may drain without re-checking the
  /// handshake per packet. Settle times are monotone in push order, so the
  /// scan stops at the first not-yet-ready entry.
  u32 ready_count(Cycle now_slow, u32 max_n) const {
    const u32 lim = static_cast<u32>(std::min<size_t>(max_n, q_.size()));
    u32 n = 0;
    while (n < lim && q_.at(n).ready_slow <= now_slow) ++n;
    return n;
  }

  const Packet& front() const { return q_.front().p; }
  Packet pop();

  size_t size() const { return q_.size(); }
  bool full() const { return q_.full(); }
  bool empty() const { return q_.empty(); }
  void note_reject() { ++stats_.full_rejects; }
  const CdcStats& stats() const { return stats_; }

 private:
  struct Entry {
    Packet p;
    Cycle ready_slow = 0;  // first slow cycle the consumer may take it
  };

  u32 ratio_;
  RingQueue<Entry> q_;
  CdcStats stats_;
  // Handshake monotonicity witness: entries settle in push order, so each
  // push's ready_slow must be >= the previous one's (checked by
  // FG_INVARIANT in push; cheap enough to maintain unconditionally).
  Cycle last_ready_slow_ = 0;
  Cycle last_push_fast_ = 0;
};

}  // namespace fg::core
