#include "src/core/cdc.h"

#include "src/common/check.h"

namespace fg::core {

CdcFifo::CdcFifo(u32 depth, u32 ratio) : ratio_(ratio), q_(depth) {
  FG_CHECK(ratio_ >= 1);
}

void CdcFifo::push(const Packet& p, Cycle now_fast) {
  FG_CHECK(!q_.full());
  // The slow domain observes the write pointer one full slow cycle after the
  // fast-domain push (two-flop synchronizer + valid/ready handshake).
  const Cycle slow_now = now_fast / ratio_;
  q_.push(Entry{p, slow_now + 1});
  ++stats_.pushes;
}

bool CdcFifo::can_pop(Cycle now_slow) const {
  return !q_.empty() && q_.front().ready_slow <= now_slow;
}

Packet CdcFifo::pop() {
  FG_CHECK(!q_.empty());
  Packet p = q_.pop().p;
  ++stats_.pops;
  return p;
}

}  // namespace fg::core
