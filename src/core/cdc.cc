#include "src/core/cdc.h"

#include "src/common/check.h"
#include "src/common/invariant.h"

namespace fg::core {

CdcFifo::CdcFifo(u32 depth, u32 ratio) : ratio_(ratio), q_(depth) {
  FG_CHECK(ratio_ >= 1);
}

void CdcFifo::push(const Packet& p, Cycle now_fast) {
  FG_CHECK(can_push());
  // The slow domain observes the write pointer one full slow cycle after the
  // fast-domain push (two-flop synchronizer + valid/ready handshake).
  const Cycle slow_now = now_fast / ratio_;
  const Cycle ready = slow_now + 1;
  // Handshake monotonicity: pushes arrive in fast-cycle order, and settle
  // times are monotone in push order — a later push can never become
  // poppable before an earlier one (pop order == push order is what lets
  // next_ready_slow() bound the whole FIFO by its head).
  FG_INVARIANT(now_fast >= last_push_fast_, "cdc.push_order");
  FG_INVARIANT(ready >= last_ready_slow_, "cdc.handshake_monotone");
  last_push_fast_ = now_fast;
  last_ready_slow_ = ready;
  if (ring_) {
    ring_->push(Entry{p, ready});
  } else {
    q_.push(Entry{p, ready});
  }
  ++stats_.pushes;
}

bool CdcFifo::can_pop(Cycle now_slow) const {
  if (ring_) {
    return ring_->consumer_size() > 0 && ring_->front().ready_slow <= now_slow;
  }
  return !q_.empty() && q_.front().ready_slow <= now_slow;
}

Packet CdcFifo::pop() {
  if (ring_) {
    // Pipelined mode: this runs on the slow-domain thread, so the
    // conservation witness must use the ring's published/owned counters —
    // stats_.pushes belongs to the fast thread mid-run.
    FG_INVARIANT(ring_->consumer_pops() < ring_->published_pushes(),
                 "cdc.conservation");
    Packet p = ring_->pop().p;
    ++stats_.pops;
    FG_INVARIANT(ring_->published_pushes() - ring_->consumer_pops() >=
                     ring_->consumer_size(),
                 "cdc.occupancy");
    return p;
  }
  FG_CHECK(!q_.empty());
  // Pop/push conservation: every packet popped was pushed exactly once.
  FG_INVARIANT(stats_.pops < stats_.pushes, "cdc.conservation");
  Packet p = q_.pop().p;
  ++stats_.pops;
  FG_INVARIANT(stats_.pushes - stats_.pops == q_.size(), "cdc.occupancy");
  return p;
}

void CdcFifo::begin_pipelined() {
  FG_CHECK(q_.empty());
  FG_CHECK(!ring_);
  ring_ = std::make_unique<EpochRing<Entry>>(q_.capacity());
}

void CdcFifo::end_pipelined() {
  FG_CHECK(ring_);
  // The slow thread has joined, so both private indices are visible here.
  // Preserve the unconsumed tail (pop order == push order) for post-run
  // accessors, then fall back to serial storage.
  ring_->finalize();
  ring_->consumer_acquire();
  ring_->producer_acquire();
  while (ring_->consumer_size() > 0) q_.push(ring_->pop());
  ring_.reset();
}

}  // namespace fg::core
