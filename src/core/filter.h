// The superscalar event filter (Section III-B, Figures 3 and 4).
//
// One SRAM-based mini-filter hangs off each commit lane of the ROB. The
// 10-bit SRAM index is {funct3, opcode} of the committing instruction; the
// entry holds the Group-ID bitmap (which guardian kernels want this
// instruction) and DP_Sel (which data paths the forwarding channel should
// read). Filtered packets are buffered in paired FIFO queues — one per lane —
// and a shared arbiter re-serializes them into commit order, consuming one
// cycle per valid packet and skipping invalid placeholders for free.
#pragma once

#include <array>
#include <vector>

#include "src/common/ring_queue.h"
#include "src/core/packet.h"
#include "src/isa/riscv.h"

namespace fg::core {

/// One SRAM entry of a mini-filter's look-up table.
struct FilterEntry {
  u16 gid_bitmap = 0;  // zero means: no kernel cares, drop the instruction
  u8 dp_sel = 0;
};

/// The programmable SRAM look-up table shared by all mini-filters (each lane
/// has a physical copy; contents are identical, so we model one table).
class FilterTable {
 public:
  FilterTable() = default;

  /// Program a single {funct3, opcode} slot.
  void program(u8 opcode, u8 funct3, u16 gid_bitmap, u8 dp_sel);

  /// Program all eight funct3 slots of an opcode (e.g. JAL, where the funct3
  /// bits are immediate bits and all patterns must match).
  void program_opcode(u8 opcode, u16 gid_bitmap, u8 dp_sel);

  /// Add a kernel's interest to existing entries (OR semantics, so several
  /// kernels can watch the same instruction).
  void add_interest(u8 opcode, u8 funct3, u8 gid, u8 dp_sel);
  void add_interest_opcode(u8 opcode, u8 gid, u8 dp_sel);

  void clear();

  const FilterEntry& lookup(u32 enc) const { return table_[isa::filter_index(enc)]; }
  const FilterEntry& entry(u16 index) const { return table_[index]; }

 private:
  std::array<FilterEntry, isa::kFilterTableSize> table_{};
};

struct EventFilterConfig {
  u32 width = 4;       // number of mini-filters (== lanes it can pre-check)
  u32 fifo_depth = 16; // paired FIFO depth per lane (Table II: 16-entry FIFO)
};

struct EventFilterStats {
  u64 committed_seen = 0;
  u64 valid_packets = 0;
  u64 invalid_packets = 0;
  u64 lane_rejects_width = 0;  // commits refused because lane >= width
  u64 lane_rejects_full = 0;   // commits refused because the lane FIFO is full
  u64 arbiter_output = 0;
  u64 arbiter_blocked = 0;     // cycles the arbiter had a packet but no room
};

/// Superscalar event filter: per-lane mini-filters + paired FIFOs + the
/// reordering arbiter.
class EventFilter {
 public:
  explicit EventFilter(const EventFilterConfig& cfg);

  FilterTable& table() { return table_; }
  const FilterTable& table() const { return table_; }

  /// Can commit lane `lane` hand an instruction to its mini-filter this
  /// cycle? (False ⇒ the core must stall this commit slot.) Inline: runs
  /// for every retiring lane.
  bool lane_ready(u32 lane) const {
    // A filter narrower than the commit width refuses the extra lanes.
    return lane < cfg_.width && !fifos_[lane].full();
  }

  /// Why lane_ready() failed (for stall attribution).
  bool lane_blocked_by_width(u32 lane) const { return lane >= cfg_.width; }

  /// Commit lane `lane` retires `p_in`: run the mini-filter look-up and push
  /// a (valid or ordering-placeholder) packet. Caller must have checked
  /// lane_ready().
  void offer(u32 lane, const Packet& p_in);

  /// Mark `p` selected by SRAM entry `e` and blank the data paths the entry
  /// did not read ("avoiding reads of information not selected"). The one
  /// copy of the classification rule, shared by offer() and the frontend's
  /// extract-on-demand commit path.
  static void apply_entry(Packet& p, const FilterEntry& e) {
    p.valid = true;
    p.gid_bitmap = e.gid_bitmap;
    p.dp_sel = e.dp_sel;
    if (!(e.dp_sel & kDpPrf)) p.data = 0;
    if (!(e.dp_sel & (kDpLsq | kDpFtq))) p.addr = 0;
  }

  /// Fast placeholder path for a commit the mini-filter drops (gid bitmap
  /// zero), used by the frontend once it has done the SRAM look-up itself.
  /// With no valid packet buffered anywhere, the placeholder would be
  /// popped by the very next drop_placeholders pass (same fast cycle,
  /// before any occupancy check can observe it), so it is accounted but
  /// never materialized; otherwise it takes the normal FIFO slot so the
  /// capacity back-pressure stays cycle-exact.
  void offer_placeholder(u32 lane, u64 seq);

  /// Valid (routable) packet whose mini-filter entry the caller looked up.
  void offer_valid(u32 lane, const Packet& p);

  /// Arbiter: peek the next in-order valid packet, if any is ready this
  /// cycle. Invalid placeholders are skipped (and popped) for free.
  bool arbiter_peek(Packet& out);

  /// Consume the packet previously peeked (downstream accepted it).
  void arbiter_pop();

  /// Record that the arbiter was blocked this cycle (stats only).
  void note_blocked() { ++stats_.arbiter_blocked; }

  /// Total buffered packets (valid + placeholders) across lane FIFOs. O(1):
  /// maintained as a counter so the per-cycle idle check is free.
  size_t buffered() const { return buffered_; }
  /// Buffered packets the arbiter still has to emit. O(1).
  size_t valid_buffered() const { return valid_buffered_; }
  bool any_fifo_full() const;

  const EventFilterConfig& config() const { return cfg_; }
  const EventFilterStats& stats() const { return stats_; }

 private:
  void drop_placeholders();
  /// Drop leading placeholders, then return the lane holding the in-order
  /// valid head (-1 if none). One pass shared by peek and pop.
  int arbiter_scan();
  /// FG_INVARIANT witness: the O(1) occupancy counters equal a full walk of
  /// the lane FIFOs (buffered_ == total entries, valid_buffered_ == valid
  /// entries). Debug-build only; O(width * depth).
  bool counters_consistent() const;

  EventFilterConfig cfg_;
  FilterTable table_;
  std::vector<RingQueue<Packet>> fifos_;
  size_t buffered_ = 0;
  size_t valid_buffered_ = 0;
  /// Lane found by the last arbiter_peek, reused by arbiter_pop (invalidated
  /// by any push in between — pushes land behind the head, but a fresh peek
  /// is the contract).
  int peeked_lane_ = -1;
  EventFilterStats stats_;
};

}  // namespace fg::core
