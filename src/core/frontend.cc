#include "src/core/frontend.h"

namespace fg::core {

Frontend::Frontend(const FrontendConfig& cfg)
    : cfg_(cfg), filter_(cfg.filter), cdc_(cfg.cdc_depth, cfg.freq_ratio) {}

StallCause Frontend::classify_stall(u32 lane, bool engines_blocked) const {
  if (filter_.lane_blocked_by_width(lane)) return StallCause::kFilter;
  // The lane FIFO is full; find the deepest full structure downstream.
  if (cdc_.full()) {
    return engines_blocked ? StallCause::kEngines : StallCause::kCdc;
  }
  // CDC has room but the FIFO could not drain: the scalar mapper (one packet
  // per cycle through arbiter + allocator) is the limit.
  return StallCause::kMapper;
}

void Frontend::note_refusal(u32 lane) {
  const StallCause c = classify_stall(lane, engines_blocked_hint_);
  ++stats_.stall_by_cause[static_cast<size_t>(c)];
}

void Frontend::on_commit(u32 lane, const trace::TraceInst& ti, Cycle now) {
  ++stats_.commits_observed;
  // SRAM look-up first: the forwarding channel only assembles (and the data
  // paths are only read for) instructions some kernel selected; an
  // unselected commit contributes just an ordering placeholder.
  const FilterEntry& e = filter_.table().lookup(ti.enc);
  if (e.gid_bitmap == 0) {
    filter_.offer_placeholder(lane, seq_++);
    return;
  }
  Packet p = fwd_.extract(ti, now, seq_++);
  EventFilter::apply_entry(p, e);
  filter_.offer_valid(lane, p);
  fwd_.note_selected(e.dp_sel);
}

void Frontend::tick_fast(Cycle now_fast, const QueueStatus& status,
                         bool engines_blocked) {
  engines_blocked_hint_ = engines_blocked;
  if (filter_.buffered() == 0) return;  // nothing to arbitrate or drop
  u16 issued_engines = 0;
  for (u32 slot = 0; slot < cfg_.mapper_width; ++slot) {
    Packet p;
    if (!filter_.arbiter_peek(p)) return;
    if (!cdc_.can_push()) {
      cdc_.note_reject();
      filter_.note_blocked();
      return;
    }
    const u16 ses = allocator_.plan(p, status);
    if (slot > 0 && (p.ae_bitmap & issued_engines) != 0) {
      // Footnote 5's per-engine arbiter: a second packet to an engine already
      // written this cycle must wait. The plan is abandoned (PT_reg unlatched)
      // and the packet re-planned next cycle.
      ++stats_.mapper_port_conflicts;
      return;
    }
    allocator_.commit_plan(ses);
    filter_.arbiter_pop();
    if (p.ae_bitmap == 0) {
      ++stats_.dropped_unrouted;
      continue;
    }
    issued_engines |= p.ae_bitmap;
    cdc_.push(p, now_fast);
  }
}

}  // namespace fg::core
