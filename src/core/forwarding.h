// The buffer-free data-forwarding channel (Section III-A, Figure 2).
//
// Read-only bypass circuits at the ROB, PRFs, LSQ and FTQ extract debug data
// for committing instructions without adding intermediate storage between
// execute and commit. PRF reads preempt the statically multiplexed read
// controllers (Mini-Filter[x] has priority on Read_Ctrl[x]), so an issuing
// instruction that wanted the same port is delayed by one cycle — the only
// contention the design admits. LSQ/FTQ forwards always read the queue top
// (the most recently retired entry) and are contention-free (footnote 3).
//
// In the simulator the committed values travel with the trace record; this
// class assembles them into packet fields and accounts for the PRF port
// preemptions that the core model turns into issue delays.
#pragma once

#include "src/core/packet.h"
#include "src/trace/trace.h"

namespace fg::core {

struct ForwardingStats {
  u64 prf_reads = 0;
  u64 lsq_reads = 0;
  u64 ftq_reads = 0;
};

class DataForwardingChannel {
 public:
  /// Assemble the raw (unfiltered) packet for a committing instruction. The
  /// mini-filter decides which of these fields survive (dp_sel masking).
  Packet extract(const trace::TraceInst& ti, Cycle now, u64 seq) const;

  /// Record which data paths a selected packet actually read; PRF reads
  /// preempt a read port in the following cycle.
  void note_selected(u8 dp_sel);

  /// Ports preempted since the last call (consumed by the core model once
  /// per cycle — inline, it is on the every-cycle path).
  u32 take_prf_preemptions() {
    const u32 n = pending_prf_preemptions_;
    pending_prf_preemptions_ = 0;
    return n;
  }

  const ForwardingStats& stats() const { return stats_; }

 private:
  ForwardingStats stats_;
  u32 pending_prf_preemptions_ = 0;
};

}  // namespace fg::core
