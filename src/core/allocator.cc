#include "src/core/allocator.h"

#include <bit>

#include "src/common/check.h"

namespace fg::core {

const char* sched_policy_name(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kFixed: return "fixed";
    case SchedPolicy::kRoundRobin: return "round_robin";
    case SchedPolicy::kBlock: return "block";
  }
  return "?";
}

SchedulingEngine::SchedulingEngine(u16 ae_mask, SchedPolicy policy)
    : ae_mask_(ae_mask), policy_(policy) {
  // Start at the lowest engine in the mask.
  for (u8 i = 0; i < kMaxEngines; ++i) {
    if (ae_mask_ & (1u << i)) {
      pt_ = ct_ = i;
      break;
    }
  }
}

u8 SchedulingEngine::next_engine_after(u8 from) const {
  for (u8 step = 1; step <= kMaxEngines; ++step) {
    const u8 idx = static_cast<u8>((from + step) % kMaxEngines);
    if (ae_mask_ & (1u << idx)) return idx;
  }
  return from;
}

u16 SchedulingEngine::pick(const QueueStatus& status) {
  if (ae_mask_ == 0) return 0;
  switch (policy_) {
    case SchedPolicy::kFixed:
      ct_ = pt_;
      break;
    case SchedPolicy::kRoundRobin: {
      // Advance past full queues: the checks these kernels run are
      // stateless, so any engine of the group may take the packet and a
      // busy engine must not head-of-line block the multicast channel.
      ct_ = next_engine_after(pt_);
      for (u32 tries = 0; tries < kMaxEngines && status.engine_queue_full(ct_);
           ++tries) {
        ct_ = next_engine_after(ct_);
      }
      break;
    }
    case SchedPolicy::kBlock: {
      // Stay on the previous target until its queue is full, then move to
      // the next engine of this kernel (message locality).
      ct_ = pt_;
      if (status.engine_queue_full(ct_)) ct_ = next_engine_after(ct_);
      break;
    }
  }
  return static_cast<u16>(1u << ct_);
}

void SchedulingEngine::advance() { pt_ = ct_; }

void Allocator::configure_se(u32 se, u16 ae_mask, SchedPolicy policy, u8 gid) {
  FG_CHECK(gid < kMaxGids);
  if (se >= ses_.size()) ses_.resize(se + 1);
  ses_[se] = SchedulingEngine(ae_mask, policy);
  se_bitmap_[gid] |= static_cast<u16>(1u << se);
}

void Allocator::subscribe(u32 se, u8 gid) {
  FG_CHECK(se < ses_.size());
  FG_CHECK(gid < kMaxGids);
  se_bitmap_[gid] |= static_cast<u16>(1u << se);
}

u16 Allocator::route(Packet& p, const QueueStatus& status) {
  const u16 ses = plan(p, status);
  commit_plan(ses);
  return p.ae_bitmap;
}

u16 Allocator::plan(Packet& p, const QueueStatus& status) {
  // Distributor: OR the SE bitmaps of every GID carried by the packet
  // (iterate set bits only — packets usually carry one GID).
  u16 interested = 0;
  for (u32 bits = p.gid_bitmap; bits != 0; bits &= bits - 1) {
    interested |= se_bitmap_[std::countr_zero(bits)];
  }
  // Each activated SE schedules independently; the AE bitmaps are combined
  // with OR gates (Figure 5 b). pick() only latches CT_reg, so an abandoned
  // plan leaves the scheduling state untouched.
  u16 ae = 0;
  for (u32 s = 0; s < ses_.size(); ++s) {
    if (!(interested & (1u << s))) continue;
    ae |= ses_[s].pick(status);
    if (ses_[s].policy() == SchedPolicy::kBlock &&
        ses_[s].ct_reg() != ses_[s].pt_reg()) {
      // Block-mode target switch: the old engine must hand its state token
      // to the new one (the SoC delivers the marker with this packet).
      p.marker_from = ses_[s].pt_reg();
      p.marker_to = ses_[s].ct_reg();
    }
  }
  p.ae_bitmap = ae;
  return interested;
}

void Allocator::commit_plan(u16 interested_ses) {
  int n_se = 0;
  for (u32 s = 0; s < ses_.size(); ++s) {
    if (!(interested_ses & (1u << s))) continue;
    ses_[s].advance();
    ++n_se;
  }
  ++stats_.packets_routed;
  if (n_se > 1) ++stats_.multi_se_packets;
}

}  // namespace fg::core
