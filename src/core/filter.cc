#include "src/core/filter.h"

#include "src/common/check.h"
#include "src/common/invariant.h"

namespace fg::core {

void FilterTable::program(u8 opcode, u8 funct3, u16 gid_bitmap, u8 dp_sel) {
  FG_CHECK(opcode < 128 && funct3 < 8);
  table_[(static_cast<u16>(funct3) << 7) | opcode] = {gid_bitmap, dp_sel};
}

void FilterTable::program_opcode(u8 opcode, u16 gid_bitmap, u8 dp_sel) {
  for (u8 f3 = 0; f3 < 8; ++f3) program(opcode, f3, gid_bitmap, dp_sel);
}

void FilterTable::add_interest(u8 opcode, u8 funct3, u8 gid, u8 dp_sel) {
  FG_CHECK(gid < kMaxGids);
  FilterEntry& e = table_[(static_cast<u16>(funct3) << 7) | opcode];
  e.gid_bitmap |= static_cast<u16>(1u << gid);
  e.dp_sel |= dp_sel;
}

void FilterTable::add_interest_opcode(u8 opcode, u8 gid, u8 dp_sel) {
  for (u8 f3 = 0; f3 < 8; ++f3) add_interest(opcode, f3, gid, dp_sel);
}

void FilterTable::clear() { table_.fill(FilterEntry{}); }

EventFilter::EventFilter(const EventFilterConfig& cfg) : cfg_(cfg) {
  FG_CHECK(cfg_.width >= 1);
  FG_CHECK(cfg_.fifo_depth >= 2);
  fifos_.reserve(cfg_.width);
  for (u32 i = 0; i < cfg_.width; ++i) fifos_.emplace_back(cfg_.fifo_depth);
}

void EventFilter::offer(u32 lane, const Packet& p_in) {
  FG_CHECK(lane < cfg_.width);
  const FilterEntry& e = table_.lookup(p_in.inst);
  if (e.gid_bitmap != 0) {
    Packet p = p_in;
    apply_entry(p, e);
    offer_valid(lane, p);
  } else {
    offer_placeholder(lane, p_in.seq);
  }
}

void EventFilter::offer_valid(u32 lane, const Packet& p) {
  FG_CHECK(lane < cfg_.width);
  FG_CHECK(!fifos_[lane].full());
  FG_CHECK(p.valid);
  ++stats_.committed_seen;
  ++stats_.valid_packets;
  fifos_[lane].push(p);
  ++buffered_;
  ++valid_buffered_;
  peeked_lane_ = -1;
  FG_INVARIANT(counters_consistent(), "filter.occupancy");
}

void EventFilter::offer_placeholder(u32 lane, u64 seq) {
  FG_CHECK(lane < cfg_.width);
  FG_CHECK(!fifos_[lane].full());
  ++stats_.committed_seen;
  ++stats_.invalid_packets;
  // Ordering placeholder (footnote 4): pushed so that the arbiter can prove
  // commit order across lanes, skipped at zero cost on output. With nothing
  // valid buffered anywhere, the next drop_placeholders pass — which runs
  // before any later-cycle occupancy check — would pop it along with every
  // other placeholder, so the push/pop pair is elided entirely.
  if (valid_buffered_ == 0) return;
  Packet& p = fifos_[lane].push_slot();
  p = Packet{};
  p.seq = seq;
  ++buffered_;
  peeked_lane_ = -1;
  FG_INVARIANT(counters_consistent(), "filter.occupancy");
}

int EventFilter::arbiter_scan() {
  // A placeholder at a FIFO head can be discarded only once we know no
  // *older* packet can still arrive: since pushes happen in commit order,
  // the head with the globally smallest seq is always safe to resolve —
  // dropped if invalid, returned to the arbiter if valid.
  if (valid_buffered_ == 0) {
    // Only placeholders remain: every one of them is (transitively) the
    // minimum at some point, so clear in bulk.
    if (buffered_ != 0) {
      for (auto& f : fifos_) f.clear();
      buffered_ = 0;
    }
    return -1;
  }
  for (;;) {
    int best = -1;
    u64 best_seq = ~u64{0};
    for (u32 i = 0; i < cfg_.width; ++i) {
      if (fifos_[i].empty()) continue;
      if (fifos_[i].front().seq < best_seq) {
        best_seq = fifos_[i].front().seq;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return -1;
    if (fifos_[static_cast<u32>(best)].front().valid) return best;
    fifos_[static_cast<u32>(best)].pop();
    --buffered_;
  }
}

void EventFilter::drop_placeholders() { peeked_lane_ = arbiter_scan(); }

bool EventFilter::arbiter_peek(Packet& out) {
  if (buffered_ == 0) return false;
  peeked_lane_ = arbiter_scan();
  if (peeked_lane_ < 0) return false;
  const Packet& p = fifos_[static_cast<u32>(peeked_lane_)].front();
  FG_CHECK(p.valid);
  out = p;
  return true;
}

void EventFilter::arbiter_pop() {
  // Reuse the lane the immediately preceding peek resolved; no push can
  // have intervened (the frontend pops what it just peeked, within one
  // mapper slot).
  const int best = peeked_lane_ >= 0 ? peeked_lane_ : arbiter_scan();
  FG_CHECK(best >= 0);
  FG_CHECK(fifos_[static_cast<u32>(best)].front().valid);
  fifos_[static_cast<u32>(best)].pop();
  peeked_lane_ = -1;
  --buffered_;
  --valid_buffered_;
  ++stats_.arbiter_output;
  // Accounting across the whole lazy-drain path: placeholders popped inside
  // arbiter_scan and the bulk clear must keep the O(1) counters in sync
  // with the FIFOs' true contents, and output conservation must hold.
  FG_INVARIANT(counters_consistent(), "filter.occupancy");
  FG_INVARIANT(stats_.arbiter_output <= stats_.valid_packets,
               "filter.conservation");
}

bool EventFilter::counters_consistent() const {
  size_t total = 0;
  size_t valid = 0;
  for (const auto& f : fifos_) {
    total += f.size();
    for (size_t i = 0; i < f.size(); ++i) {
      if (f.at(i).valid) ++valid;
    }
  }
  return total == buffered_ && valid == valid_buffered_;
}

bool EventFilter::any_fifo_full() const {
  for (const auto& f : fifos_) {
    if (f.full()) return true;
  }
  return false;
}

}  // namespace fg::core
