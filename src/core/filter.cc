#include "src/core/filter.h"

#include "src/common/check.h"

namespace fg::core {

void FilterTable::program(u8 opcode, u8 funct3, u16 gid_bitmap, u8 dp_sel) {
  FG_CHECK(opcode < 128 && funct3 < 8);
  table_[(static_cast<u16>(funct3) << 7) | opcode] = {gid_bitmap, dp_sel};
}

void FilterTable::program_opcode(u8 opcode, u16 gid_bitmap, u8 dp_sel) {
  for (u8 f3 = 0; f3 < 8; ++f3) program(opcode, f3, gid_bitmap, dp_sel);
}

void FilterTable::add_interest(u8 opcode, u8 funct3, u8 gid, u8 dp_sel) {
  FG_CHECK(gid < kMaxGids);
  FilterEntry& e = table_[(static_cast<u16>(funct3) << 7) | opcode];
  e.gid_bitmap |= static_cast<u16>(1u << gid);
  e.dp_sel |= dp_sel;
}

void FilterTable::add_interest_opcode(u8 opcode, u8 gid, u8 dp_sel) {
  for (u8 f3 = 0; f3 < 8; ++f3) add_interest(opcode, f3, gid, dp_sel);
}

void FilterTable::clear() { table_.fill(FilterEntry{}); }

EventFilter::EventFilter(const EventFilterConfig& cfg) : cfg_(cfg) {
  FG_CHECK(cfg_.width >= 1);
  FG_CHECK(cfg_.fifo_depth >= 2);
  fifos_.reserve(cfg_.width);
  for (u32 i = 0; i < cfg_.width; ++i) fifos_.emplace_back(cfg_.fifo_depth);
}

bool EventFilter::lane_ready(u32 lane) const {
  if (lane >= cfg_.width) return false;  // narrower filter than commit width
  return !fifos_[lane].full();
}

void EventFilter::offer(u32 lane, const Packet& p_in) {
  FG_CHECK(lane < cfg_.width);
  FG_CHECK(!fifos_[lane].full());
  ++stats_.committed_seen;
  Packet p = p_in;
  const FilterEntry& e = table_.lookup(p.inst);
  if (e.gid_bitmap != 0) {
    p.valid = true;
    p.gid_bitmap = e.gid_bitmap;
    p.dp_sel = e.dp_sel;
    // "avoiding reads of information not selected": unselected data paths
    // are never read, so those packet fields stay empty.
    if (!(e.dp_sel & kDpPrf)) p.data = 0;
    if (!(e.dp_sel & (kDpLsq | kDpFtq))) p.addr = 0;
    ++stats_.valid_packets;
  } else {
    // Ordering placeholder (footnote 4): pushed so that the arbiter can
    // prove commit order across lanes, skipped at zero cost on output.
    p.valid = false;
    p.gid_bitmap = 0;
    p.dp_sel = 0;
    ++stats_.invalid_packets;
  }
  fifos_[lane].push(p);
}

void EventFilter::drop_placeholders() {
  // A placeholder at a FIFO head can be discarded only once we know no
  // *older* packet can still arrive: since pushes happen in commit order,
  // the head with the globally smallest seq is always safe to resolve.
  for (;;) {
    int best = -1;
    u64 best_seq = ~u64{0};
    bool any = false;
    for (u32 i = 0; i < cfg_.width; ++i) {
      if (fifos_[i].empty()) continue;
      any = true;
      if (fifos_[i].front().seq < best_seq) {
        best_seq = fifos_[i].front().seq;
        best = static_cast<int>(i);
      }
    }
    if (!any || best < 0) return;
    if (fifos_[static_cast<u32>(best)].front().valid) return;
    fifos_[static_cast<u32>(best)].pop();
  }
}

bool EventFilter::arbiter_peek(Packet& out) {
  drop_placeholders();
  int best = -1;
  u64 best_seq = ~u64{0};
  for (u32 i = 0; i < cfg_.width; ++i) {
    if (fifos_[i].empty()) continue;
    if (fifos_[i].front().seq < best_seq) {
      best_seq = fifos_[i].front().seq;
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return false;
  const Packet& p = fifos_[static_cast<u32>(best)].front();
  FG_CHECK(p.valid);
  out = p;
  return true;
}

void EventFilter::arbiter_pop() {
  int best = -1;
  u64 best_seq = ~u64{0};
  for (u32 i = 0; i < cfg_.width; ++i) {
    if (fifos_[i].empty()) continue;
    if (fifos_[i].front().seq < best_seq) {
      best_seq = fifos_[i].front().seq;
      best = static_cast<int>(i);
    }
  }
  FG_CHECK(best >= 0);
  FG_CHECK(fifos_[static_cast<u32>(best)].front().valid);
  fifos_[static_cast<u32>(best)].pop();
  ++stats_.arbiter_output;
}

size_t EventFilter::buffered() const {
  size_t n = 0;
  for (const auto& f : fifos_) n += f.size();
  return n;
}

bool EventFilter::any_fifo_full() const {
  for (const auto& f : fifos_) {
    if (f.full()) return true;
  }
  return false;
}

}  // namespace fg::core
