// The scalable allocator (Section III-C, Figure 5).
//
// The allocator is the first half of FireGuard's broadcast-free mapper. A
// *distributor* holds one SE_Bitmap register per Group ID, naming the
// Scheduling Engines interested in that GID. Each *Scheduling Engine* (SE)
// is one-to-one associated with a guardian kernel; it owns an AE_Bitmap of
// the analysis engines running that kernel and a scheduling circuit
// (fixed / round-robin / block mode) with PT_reg ("previous target") and
// CT_reg ("current target"). The AE bitmaps returned by all activated SEs
// are OR-combined into the final per-packet routing decision, so a packet
// reaches every interested kernel without any broadcast.
#pragma once

#include <array>
#include <vector>

#include "src/core/packet.h"

namespace fg::core {

/// Scheduling policies implemented by the SE scheduling circuit. Block mode
/// keeps streaming to one engine until its queue fills (message locality —
/// the shadow stack's pipelined parallelism needs it).
enum class SchedPolicy : u8 { kFixed, kRoundRobin, kBlock };

const char* sched_policy_name(SchedPolicy p);

/// Occupancy feedback from the analysis engines' message queues (block mode
/// advances targets on fullness; the multicast channel stalls on fullness).
class QueueStatus {
 public:
  virtual ~QueueStatus() = default;
  virtual bool engine_queue_full(u32 engine) const = 0;
  virtual size_t engine_queue_free(u32 engine) const = 0;
};

/// One Scheduling Engine.
class SchedulingEngine {
 public:
  SchedulingEngine() = default;
  SchedulingEngine(u16 ae_mask, SchedPolicy policy);

  /// Scheduling decision for one packet: returns the AE_Bitmap with the
  /// chosen target bit(s) set. `status` supplies queue occupancy for block
  /// mode. Returns 0 if the SE owns no engines.
  u16 pick(const QueueStatus& status);

  /// Commit the decision (CT_reg -> PT_reg) after the packet is sent.
  void advance();

  u16 ae_mask() const { return ae_mask_; }
  SchedPolicy policy() const { return policy_; }
  u8 pt_reg() const { return pt_; }
  u8 ct_reg() const { return ct_; }

 private:
  u8 next_engine_after(u8 from) const;

  u16 ae_mask_ = 0;
  SchedPolicy policy_ = SchedPolicy::kRoundRobin;
  u8 pt_ = 0;  // previous target (engine index)
  u8 ct_ = 0;  // current target
};

struct AllocatorStats {
  u64 packets_routed = 0;
  u64 multi_se_packets = 0;  // packets fanned out to more than one SE
};

/// The distributor + SE array.
class Allocator {
 public:
  Allocator() = default;

  /// Create SE `se` with its engine set and policy, and subscribe it to GID
  /// `gid` in the distributor bitmap.
  void configure_se(u32 se, u16 ae_mask, SchedPolicy policy, u8 gid);

  /// Subscribe an existing SE to an additional GID.
  void subscribe(u32 se, u8 gid);

  /// Route one packet (the mapper is scalar: one packet per cycle). Fills
  /// p.ae_bitmap; returns it (0 means no SE was interested).
  u16 route(Packet& p, const QueueStatus& status);

  /// Two-phase routing for the superscalar mapper (paper footnote 5: a wider
  /// core duplicates communication channels and SEs, with extra arbiters to
  /// manage contention when several packets target the same engine).
  /// `plan` runs the distributor and the SE scheduling circuits — filling
  /// p.ae_bitmap and any block-mode handoff markers — without latching
  /// PT_reg, and returns the set of SEs that participated. The caller either
  /// `commit_plan`s that set (packet issued) or abandons the plan (packet
  /// stays at the arbiter and is re-planned next cycle).
  u16 plan(Packet& p, const QueueStatus& status);
  void commit_plan(u16 interested_ses);

  size_t n_ses() const { return ses_.size(); }
  const SchedulingEngine& se(u32 i) const { return ses_[i]; }
  u16 se_bitmap(u8 gid) const { return se_bitmap_[gid]; }
  const AllocatorStats& stats() const { return stats_; }

 private:
  std::array<u16, kMaxGids> se_bitmap_{};  // GID -> interested SEs
  std::vector<SchedulingEngine> ses_;
  AllocatorStats stats_;
};

}  // namespace fg::core
