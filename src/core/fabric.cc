#include "src/core/fabric.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/invariant.h"

namespace {
/// FG_INVARIANT witness: pending_ equals the true number of undelivered
/// messages across all inboxes (packet conservation). O(engines). Unused in
/// Release builds, where FG_INVARIANT compiles away.
[[maybe_unused]] fg::u64 inbox_total(
    const std::vector<std::vector<fg::core::NocMessage>>& inbox) {
  fg::u64 n = 0;
  for (const auto& box : inbox) n += box.size();
  return n;
}
}  // namespace

namespace fg::core {

NocMesh::NocMesh(u32 n_engines, u32 hop_latency)
    : n_engines_(std::max<u32>(1, n_engines)), hop_latency_(hop_latency) {
  // Near-square grid: width = ceil(sqrt(n)), height = ceil(n / width).
  width_ = static_cast<u32>(std::ceil(std::sqrt(static_cast<double>(n_engines_))));
  height_ = (n_engines_ + width_ - 1) / width_;
  // Four directed link classes per router position.
  link_free_.assign(static_cast<size_t>(width_) * height_ * 4, 0);
  inbox_.resize(n_engines_);
}

u32 NocMesh::link_id(u32 x, u32 y, u32 dir) const {
  return (y * width_ + x) * 4 + dir;
}

u32 NocMesh::hops(u32 a, u32 b) const {
  FG_CHECK(a < n_engines_ && b < n_engines_);
  const Coord ca = coord(a), cb = coord(b);
  const u32 dx = ca.x > cb.x ? ca.x - cb.x : cb.x - ca.x;
  const u32 dy = ca.y > cb.y ? ca.y - cb.y : cb.y - ca.y;
  return dx + dy;
}

Cycle NocMesh::send(u32 src, u32 dst, u64 payload, Cycle now) {
  FG_CHECK(src < n_engines_ && dst < n_engines_);
  // XY routing: walk X first, then Y, serializing on each directed link.
  Coord c = coord(src);
  const Coord target = coord(dst);
  Cycle t = now;
  auto traverse = [&](u32 dir) {
    Cycle& free_at = link_free_[link_id(c.x, c.y, dir)];
    const Cycle start = std::max(t, free_at);
    stats_.link_contention_cycles += start - t;
    free_at = start + 1;  // one flit per cycle per link
    t = start + hop_latency_;
    ++stats_.total_hops;
  };
  while (c.x != target.x) {
    const u32 dir = c.x < target.x ? 0u : 1u;
    traverse(dir);
    c.x = c.x < target.x ? c.x + 1 : c.x - 1;
  }
  while (c.y != target.y) {
    const u32 dir = c.y < target.y ? 3u : 2u;
    traverse(dir);
    c.y = c.y < target.y ? c.y + 1 : c.y - 1;
  }
  if (t == now) t = now + 1;  // local delivery still takes a cycle

  NocMessage m{src, dst, payload, now, t};
  auto& box = inbox_[dst];
  box.push_back(m);
  std::push_heap(box.begin(), box.end(),
                 [](const NocMessage& a, const NocMessage& b) {
                   return a.arrives_at > b.arrives_at;
                 });
  ++stats_.messages;
  ++pending_;
  // A message can never arrive before it was sent (the zero-hop case is
  // forced to now + 1 above), and conservation must hold after the insert.
  FG_INVARIANT(t > now, "noc.causality");
  FG_INVARIANT(pending_ == inbox_total(inbox_), "noc.conservation");
  return t;
}

Cycle NocMesh::next_arrival() const {
  if (pending_ == 0) return kNoEvent;
  Cycle first = kNoEvent;
  for (const auto& box : inbox_) {
    if (!box.empty() && box.front().arrives_at < first) {
      first = box.front().arrives_at;
    }
  }
  return first;
}

std::optional<NocMessage> NocMesh::deliver(u32 engine, Cycle now) {
  FG_CHECK(engine < n_engines_);
  auto& box = inbox_[engine];
  if (box.empty()) return std::nullopt;
  auto cmp = [](const NocMessage& a, const NocMessage& b) {
    return a.arrives_at > b.arrives_at;
  };
  if (box.front().arrives_at > now) return std::nullopt;
  std::pop_heap(box.begin(), box.end(), cmp);
  NocMessage m = box.back();
  box.pop_back();
  --pending_;
  // Deliveries never run ahead of simulated time, and never lose messages.
  FG_INVARIANT(m.arrives_at <= now, "noc.no_early_delivery");
  FG_INVARIANT(m.dst == engine, "noc.routing");
  FG_INVARIANT(pending_ == inbox_total(inbox_), "noc.conservation");
  return m;
}

}  // namespace fg::core
