#include "src/core/forwarding.h"

namespace fg::core {

Packet DataForwardingChannel::extract(const trace::TraceInst& ti, Cycle now,
                                      u64 seq) const {
  Packet p;
  p.pc = ti.pc;                 // ROB commit path
  p.inst = ti.enc;              // ROB commit path
  p.data = ti.wb_value;         // PRF bypass (if selected)
  if (isa::is_mem(ti.cls)) {
    p.addr = ti.mem_addr;       // LDQ/STQ top bypass
  } else if (isa::is_ctrl(ti.cls)) {
    p.addr = ti.target;         // FTQ top bypass
  }
  p.sem = ti.sem;
  p.sem_addr = ti.sem_addr;
  p.sem_size = ti.sem_size;
  p.seq = seq;
  p.commit_cycle = now;
  p.attack_id = ti.attack_id;
  return p;
}

void DataForwardingChannel::note_selected(u8 dp_sel) {
  if (dp_sel & kDpPrf) {
    ++stats_.prf_reads;
    ++pending_prf_preemptions_;
  }
  if (dp_sel & kDpLsq) ++stats_.lsq_reads;
  if (dp_sel & kDpFtq) ++stats_.ftq_reads;
}

}  // namespace fg::core
