// The high-frequency half of FireGuard, wired into the main core's commit
// stage: data-forwarding channel → mini-filters (+ paired FIFOs + arbiter) →
// allocator → CDC into the low-frequency domain.
//
// Implements boom::CommitSink: the core asks `can_commit` per lane, and a
// refusal (mini-filter FIFO full, or lane beyond the filter width) is the
// back-pressure that slows the main core. Every refusal is attributed to the
// deepest full component, reproducing Figure 9's bottleneck decomposition.
#pragma once

#include <array>

#include "src/boom/core.h"
#include "src/core/allocator.h"
#include "src/core/cdc.h"
#include "src/core/filter.h"
#include "src/core/forwarding.h"

namespace fg::core {

struct FrontendConfig {
  EventFilterConfig filter{};
  u32 cdc_depth = 8;   // Table II: 8-entry CDC
  u32 freq_ratio = 2;  // 3.2 GHz core / 1.6 GHz fabric+engines
  /// Packets the mapper can issue per fast cycle. 1 is the paper's scalar
  /// mapper (sufficient for a 4-wide BOOM, §III-C); >1 models footnote 5's
  /// superscalar mapper with duplicated channels/SEs and per-engine arbiters
  /// — two packets that target the same engine in one cycle still serialize.
  u32 mapper_width = 1;
};

/// Root causes for a refused commit lane (Figure 9 categories).
enum class StallCause : u8 { kNone, kFilter, kMapper, kCdc, kEngines };

struct FrontendStats {
  u64 commits_observed = 0;
  std::array<u64, 5> stall_by_cause{};  // indexed by StallCause
  u64 dropped_unrouted = 0;             // valid packets no SE wanted
  u64 mapper_port_conflicts = 0;        // superscalar-mapper same-engine holds
};

class Frontend final : public boom::CommitSink {
 public:
  explicit Frontend(const FrontendConfig& cfg);

  // --- boom::CommitSink ---
  // can_commit is on the per-commit hot path (called for every retiring
  // lane): keep the common accept inline; only stall attribution goes
  // out of line.
  bool can_commit(u32 lane, const trace::TraceInst& ti) override {
    (void)ti;
    if (filter_.lane_ready(lane)) return true;
    note_refusal(lane);
    return false;
  }
  void on_commit(u32 lane, const trace::TraceInst& ti, Cycle now) override;
  u32 prf_ports_preempted() override { return fwd_.take_prf_preemptions(); }

  /// One high-frequency-domain cycle: the arbiter emits at most one valid
  /// packet through the allocator into the CDC. `status` is the (slightly
  /// stale, as in hardware) view of engine queue occupancy; `engines_blocked`
  /// reports whether the multicast channel was blocked by a full message
  /// queue on the most recent slow cycle (for stall attribution).
  void tick_fast(Cycle now_fast, const QueueStatus& status, bool engines_blocked);

  EventFilter& filter() { return filter_; }
  const EventFilter& filter() const { return filter_; }
  Allocator& allocator() { return allocator_; }
  const Allocator& allocator() const { return allocator_; }
  CdcFifo& cdc() { return cdc_; }
  const CdcFifo& cdc() const { return cdc_; }
  DataForwardingChannel& forwarding() { return fwd_; }
  const DataForwardingChannel& forwarding() const { return fwd_; }
  const FrontendConfig& config() const { return cfg_; }
  const FrontendStats& stats() const { return stats_; }

 private:
  StallCause classify_stall(u32 lane, bool engines_blocked) const;
  void note_refusal(u32 lane);

  FrontendConfig cfg_;
  DataForwardingChannel fwd_;
  EventFilter filter_;
  Allocator allocator_;
  CdcFifo cdc_;
  FrontendStats stats_;
  u64 seq_ = 0;
  bool engines_blocked_hint_ = false;
};

}  // namespace fg::core
