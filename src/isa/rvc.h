// RVC (compressed, 16-bit) instruction expansion for RV64C.
//
// SonicBOOM fetches and decodes RVC; at commit the expanded 32-bit form is
// what the data-forwarding channel observes (the ROB stores the expanded
// micro-op). The workload generator emits only 32-bit encodings, but traces
// captured from real binaries are roughly half compressed, so the trace
// loader uses this module to normalize them before they reach the filter:
// mini-filter rows are defined over expanded {funct3, opcode} indices only.
#pragma once

#include <optional>

#include "src/common/types.h"

namespace fg::isa {

/// True if the low 2 bits mark a compressed (16-bit) encoding.
constexpr bool is_rvc(u16 half) { return (half & 0x3) != 0x3; }

/// Expand a 16-bit RVC encoding into its 32-bit equivalent. Returns
/// std::nullopt for reserved/illegal encodings (including the all-zero
/// pattern, which the ISA defines as illegal). Covers the RV64C subset:
/// quadrant 0 (c.addi4spn, c.ld/c.lw/c.fld, c.sd/c.sw/c.fsd), quadrant 1
/// (c.addi, c.addiw, c.li, c.lui/c.addi16sp, ALU ops, c.j, c.beqz, c.bnez),
/// quadrant 2 (c.slli, c.ldsp/c.lwsp/c.fldsp, c.jr/c.jalr/c.mv/c.add/
/// c.ebreak, c.sdsp/c.swsp/c.fsdsp).
std::optional<u32> expand_rvc(u16 half);

}  // namespace fg::isa
