// Control-and-status-register address map (machine/supervisor/user subsets
// relevant to the simulated SoC) plus the FireGuard-specific CSRs.
//
// The main core's CSR unit and the µcore status-register block both expose
// state through this address space; the guardian-kernel drivers program the
// event filter and the allocator bitmaps through the FireGuard block, which
// a real implementation would expose as memory-mapped or CSR-mapped control
// registers (we model the CSR-mapped variant, keeping configuration on the
// ordinary instruction path so it is serialized against commits).
#pragma once

#include <optional>

#include "src/common/types.h"

namespace fg::isa {

enum Csr : u16 {
  // Unprivileged floating-point and counters.
  kCsrFflags = 0x001,
  kCsrFrm = 0x002,
  kCsrFcsr = 0x003,
  kCsrCycle = 0xc00,
  kCsrTime = 0xc01,
  kCsrInstret = 0xc02,
  // Supervisor trap setup/handling (booted-Linux relevant subset).
  kCsrSstatus = 0x100,
  kCsrSie = 0x104,
  kCsrStvec = 0x105,
  kCsrSscratch = 0x140,
  kCsrSepc = 0x141,
  kCsrScause = 0x142,
  kCsrStval = 0x143,
  kCsrSip = 0x144,
  kCsrSatp = 0x180,
  // Machine information/trap.
  kCsrMstatus = 0x300,
  kCsrMisa = 0x301,
  kCsrMie = 0x304,
  kCsrMtvec = 0x305,
  kCsrMscratch = 0x340,
  kCsrMepc = 0x341,
  kCsrMcause = 0x342,
  kCsrMtval = 0x343,
  kCsrMip = 0x344,
  kCsrMcycle = 0xb00,
  kCsrMinstret = 0xb02,
  kCsrMhartid = 0xf14,

  // --- FireGuard control block (custom, machine-level read/write). ---
  // Filter-table programming port: write {row, gid, dp_sel} packed words.
  kCsrFgFilterAddr = 0x7c0,  // row index (10-bit {funct3, opcode})
  kCsrFgFilterData = 0x7c1,  // {valid, gid[7:0], dp_sel[3:0]}
  // Allocator programming: SE_Bitmap[gid] and per-SE AE bitmap / policy.
  kCsrFgSeBitmap = 0x7c2,    // write: gid in [63:56], bitmap in [15:0]
  kCsrFgAeBitmap = 0x7c3,    // write: se in [63:56], bitmap in [15:0]
  kCsrFgSePolicy = 0x7c4,    // write: se in [63:56], policy in [1:0]
  // Status: sticky bit per kernel with in-flight checks (syscall gate, see
  // paper §IV-B: syscalls must stall until no in-flight checks remain).
  kCsrFgInflight = 0x7c5,
};

/// Canonical name for a CSR address, or std::nullopt if unassigned.
std::optional<const char*> csr_name(u16 addr);

/// True for addresses in the FireGuard control block.
constexpr bool is_fireguard_csr(u16 addr) {
  return addr >= kCsrFgFilterAddr && addr <= kCsrFgInflight;
}

/// True if the CSR is read-only by the ISA encoding convention
/// (address bits [11:10] == 0b11).
constexpr bool csr_is_readonly(u16 addr) { return (addr >> 10) == 0x3; }

/// Minimal privilege level required by the encoding convention
/// (address bits [9:8]): 0 = user, 1 = supervisor, 3 = machine.
constexpr unsigned csr_privilege(u16 addr) { return (addr >> 8) & 0x3; }

}  // namespace fg::isa
