#include "src/isa/decode.h"

#include <array>
#include <cstdarg>
#include <cstdio>

namespace fg::isa {

namespace {

// Shorthand builders used by the decode switch. Each fills in the operand
// plumbing for one instruction format; the caller supplies mnemonic/class.
Decoded r_type(u32 enc, Mnemonic m, InstClass c) {
  Decoded d;
  d.mnemonic = m;
  d.cls = c;
  d.rd = rd_of(enc);
  d.rs1 = rs1_of(enc);
  d.rs2 = rs2_of(enc);
  d.rd_file = d.rs1_file = d.rs2_file = RegFile::kInt;
  return d;
}

Decoded i_type(u32 enc, Mnemonic m, InstClass c) {
  Decoded d;
  d.mnemonic = m;
  d.cls = c;
  d.rd = rd_of(enc);
  d.rs1 = rs1_of(enc);
  d.rd_file = d.rs1_file = RegFile::kInt;
  d.imm_kind = ImmKind::kI;
  d.imm = imm_i(enc);
  return d;
}

Decoded shift_imm(u32 enc, Mnemonic m, unsigned shamt_bits) {
  Decoded d = i_type(enc, m, InstClass::kIntAlu);
  d.imm_kind = ImmKind::kShamt;
  d.imm = static_cast<i64>(bits(enc, 20 + shamt_bits - 1, 20));
  return d;
}

Decoded load(u32 enc, Mnemonic m, u8 bytes, bool uns) {
  Decoded d = i_type(enc, m, InstClass::kLoad);
  d.mem_bytes = bytes;
  d.mem_unsigned = uns;
  return d;
}

Decoded store(u32 enc, Mnemonic m, u8 bytes) {
  Decoded d;
  d.mnemonic = m;
  d.cls = InstClass::kStore;
  d.rs1 = rs1_of(enc);
  d.rs2 = rs2_of(enc);
  d.rs1_file = d.rs2_file = RegFile::kInt;
  d.imm_kind = ImmKind::kS;
  d.imm = imm_s(enc);
  d.mem_bytes = bytes;
  return d;
}

Decoded branch(u32 enc, Mnemonic m) {
  Decoded d;
  d.mnemonic = m;
  d.cls = InstClass::kBranch;
  d.rs1 = rs1_of(enc);
  d.rs2 = rs2_of(enc);
  d.rs1_file = d.rs2_file = RegFile::kInt;
  d.imm_kind = ImmKind::kB;
  d.imm = imm_b(enc);
  return d;
}

Decoded amo(u32 enc, Mnemonic m, u8 bytes) {
  Decoded d = r_type(enc, m, InstClass::kStore);
  d.mem_bytes = bytes;
  d.is_amo = true;
  // LR reads no rs2.
  if (m == Mnemonic::kLrW || m == Mnemonic::kLrD) {
    d.rs2_file = RegFile::kNone;
    d.cls = InstClass::kLoad;
  }
  return d;
}

Decoded fp_load(u32 enc, Mnemonic m, u8 bytes) {
  Decoded d = i_type(enc, m, InstClass::kLoad);
  d.rd_file = RegFile::kFp;
  d.mem_bytes = bytes;
  return d;
}

Decoded fp_store(u32 enc, Mnemonic m, u8 bytes) {
  Decoded d = store(enc, m, bytes);
  d.rs2_file = RegFile::kFp;
  return d;
}

Decoded fp_rr(u32 enc, Mnemonic m, InstClass c) {
  Decoded d = r_type(enc, m, c);
  d.rd_file = d.rs1_file = d.rs2_file = RegFile::kFp;
  return d;
}

Decoded fma(u32 enc, Mnemonic m) {
  Decoded d = fp_rr(enc, m, InstClass::kFpMulDiv);
  d.rs3 = static_cast<u8>(bits(enc, 31, 27));
  d.rs3_file = RegFile::kFp;
  return d;
}

Decoded decode_load(u32 enc) {
  switch (funct3_of(enc)) {
    case 0: return load(enc, Mnemonic::kLb, 1, false);
    case 1: return load(enc, Mnemonic::kLh, 2, false);
    case 2: return load(enc, Mnemonic::kLw, 4, false);
    case 3: return load(enc, Mnemonic::kLd, 8, false);
    case 4: return load(enc, Mnemonic::kLbu, 1, true);
    case 5: return load(enc, Mnemonic::kLhu, 2, true);
    case 6: return load(enc, Mnemonic::kLwu, 4, true);
    default: return {};
  }
}

Decoded decode_store(u32 enc) {
  switch (funct3_of(enc)) {
    case 0: return store(enc, Mnemonic::kSb, 1);
    case 1: return store(enc, Mnemonic::kSh, 2);
    case 2: return store(enc, Mnemonic::kSw, 4);
    case 3: return store(enc, Mnemonic::kSd, 8);
    default: return {};
  }
}

Decoded decode_op_imm(u32 enc) {
  switch (funct3_of(enc)) {
    case 0: return i_type(enc, Mnemonic::kAddi, InstClass::kIntAlu);
    case 1:
      if (bits(enc, 31, 26) != 0) return {};
      return shift_imm(enc, Mnemonic::kSlli, 6);
    case 2: return i_type(enc, Mnemonic::kSlti, InstClass::kIntAlu);
    case 3: return i_type(enc, Mnemonic::kSltiu, InstClass::kIntAlu);
    case 4: return i_type(enc, Mnemonic::kXori, InstClass::kIntAlu);
    case 5:
      if (bits(enc, 31, 26) == 0x00) return shift_imm(enc, Mnemonic::kSrli, 6);
      if (bits(enc, 31, 26) == 0x10) return shift_imm(enc, Mnemonic::kSrai, 6);
      return {};
    case 6: return i_type(enc, Mnemonic::kOri, InstClass::kIntAlu);
    case 7: return i_type(enc, Mnemonic::kAndi, InstClass::kIntAlu);
  }
  return {};
}

Decoded decode_op_imm32(u32 enc) {
  switch (funct3_of(enc)) {
    case 0: return i_type(enc, Mnemonic::kAddiw, InstClass::kIntAlu);
    case 1:
      if (funct7_of(enc) != 0) return {};
      return shift_imm(enc, Mnemonic::kSlliw, 5);
    case 5:
      if (funct7_of(enc) == 0x00) return shift_imm(enc, Mnemonic::kSrliw, 5);
      if (funct7_of(enc) == 0x20) return shift_imm(enc, Mnemonic::kSraiw, 5);
      return {};
    default: return {};
  }
}

Decoded decode_op(u32 enc) {
  const u8 f3 = funct3_of(enc);
  const u8 f7 = funct7_of(enc);
  if (f7 == 0x01) {  // M extension
    static constexpr Mnemonic kM[8] = {
        Mnemonic::kMul, Mnemonic::kMulh, Mnemonic::kMulhsu, Mnemonic::kMulhu,
        Mnemonic::kDiv, Mnemonic::kDivu, Mnemonic::kRem, Mnemonic::kRemu};
    const InstClass c = f3 < 4 ? InstClass::kIntMul : InstClass::kIntDiv;
    return r_type(enc, kM[f3], c);
  }
  if (f7 == 0x00) {
    static constexpr Mnemonic kBase[8] = {
        Mnemonic::kAdd, Mnemonic::kSll, Mnemonic::kSlt, Mnemonic::kSltu,
        Mnemonic::kXor, Mnemonic::kSrl, Mnemonic::kOr, Mnemonic::kAnd};
    return r_type(enc, kBase[f3], InstClass::kIntAlu);
  }
  if (f7 == 0x20) {
    if (f3 == 0) return r_type(enc, Mnemonic::kSub, InstClass::kIntAlu);
    if (f3 == 5) return r_type(enc, Mnemonic::kSra, InstClass::kIntAlu);
  }
  return {};
}

Decoded decode_op32(u32 enc) {
  const u8 f3 = funct3_of(enc);
  const u8 f7 = funct7_of(enc);
  if (f7 == 0x01) {  // RV64M word forms
    switch (f3) {
      case 0: return r_type(enc, Mnemonic::kMulw, InstClass::kIntMul);
      case 4: return r_type(enc, Mnemonic::kDivw, InstClass::kIntDiv);
      case 5: return r_type(enc, Mnemonic::kDivuw, InstClass::kIntDiv);
      case 6: return r_type(enc, Mnemonic::kRemw, InstClass::kIntDiv);
      case 7: return r_type(enc, Mnemonic::kRemuw, InstClass::kIntDiv);
      default: return {};
    }
  }
  if (f7 == 0x00) {
    switch (f3) {
      case 0: return r_type(enc, Mnemonic::kAddw, InstClass::kIntAlu);
      case 1: return r_type(enc, Mnemonic::kSllw, InstClass::kIntAlu);
      case 5: return r_type(enc, Mnemonic::kSrlw, InstClass::kIntAlu);
      default: return {};
    }
  }
  if (f7 == 0x20) {
    if (f3 == 0) return r_type(enc, Mnemonic::kSubw, InstClass::kIntAlu);
    if (f3 == 5) return r_type(enc, Mnemonic::kSraw, InstClass::kIntAlu);
  }
  return {};
}

Decoded decode_amo(u32 enc) {
  const u8 f3 = funct3_of(enc);
  if (f3 != 2 && f3 != 3) return {};
  const u8 bytes = f3 == 2 ? 4 : 8;
  const bool w = f3 == 2;
  switch (bits(enc, 31, 27)) {  // funct5 (aq/rl in bits 26:25 are timing hints)
    case 0x02: return amo(enc, w ? Mnemonic::kLrW : Mnemonic::kLrD, bytes);
    case 0x03: return amo(enc, w ? Mnemonic::kScW : Mnemonic::kScD, bytes);
    case 0x01: return amo(enc, w ? Mnemonic::kAmoSwapW : Mnemonic::kAmoSwapD, bytes);
    case 0x00: return amo(enc, w ? Mnemonic::kAmoAddW : Mnemonic::kAmoAddD, bytes);
    case 0x04: return amo(enc, w ? Mnemonic::kAmoXorW : Mnemonic::kAmoXorD, bytes);
    case 0x0c: return amo(enc, w ? Mnemonic::kAmoAndW : Mnemonic::kAmoAndD, bytes);
    case 0x08: return amo(enc, w ? Mnemonic::kAmoOrW : Mnemonic::kAmoOrD, bytes);
    case 0x10: return amo(enc, w ? Mnemonic::kAmoMinW : Mnemonic::kAmoMinD, bytes);
    case 0x14: return amo(enc, w ? Mnemonic::kAmoMaxW : Mnemonic::kAmoMaxD, bytes);
    case 0x18: return amo(enc, w ? Mnemonic::kAmoMinuW : Mnemonic::kAmoMinuD, bytes);
    case 0x1c: return amo(enc, w ? Mnemonic::kAmoMaxuW : Mnemonic::kAmoMaxuD, bytes);
    default: return {};
  }
}

Decoded decode_system(u32 enc) {
  const u8 f3 = funct3_of(enc);
  if (f3 == 0) {
    if (enc == 0x00000073) {
      Decoded d;
      d.mnemonic = Mnemonic::kEcall;
      d.cls = InstClass::kCsr;
      return d;
    }
    if (enc == 0x00100073) {
      Decoded d;
      d.mnemonic = Mnemonic::kEbreak;
      d.cls = InstClass::kCsr;
      return d;
    }
    return {};
  }
  static constexpr Mnemonic kCsrOps[8] = {
      Mnemonic::kInvalid, Mnemonic::kCsrrw, Mnemonic::kCsrrs, Mnemonic::kCsrrc,
      Mnemonic::kInvalid, Mnemonic::kCsrrwi, Mnemonic::kCsrrsi, Mnemonic::kCsrrci};
  const Mnemonic m = kCsrOps[f3];
  if (m == Mnemonic::kInvalid) return {};
  Decoded d;
  d.mnemonic = m;
  d.cls = InstClass::kCsr;
  d.rd = rd_of(enc);
  d.rd_file = RegFile::kInt;
  d.csr = static_cast<u16>(enc >> 20);
  if (f3 < 4) {  // register form
    d.rs1 = rs1_of(enc);
    d.rs1_file = RegFile::kInt;
  } else {  // immediate (zimm) form
    d.imm_kind = ImmKind::kCsrZimm;
    d.imm = rs1_of(enc);
  }
  return d;
}

Decoded decode_fp_op(u32 enc) {
  const u8 f7 = funct7_of(enc);
  const u8 fmt = f7 & 0x3;  // 00 = S, 01 = D
  const u8 f5 = f7 >> 2;
  const u8 f3 = funct3_of(enc);
  if (fmt > 1) return {};
  const bool dbl = fmt == 1;
  auto pick = [&](Mnemonic s, Mnemonic d) { return dbl ? d : s; };
  switch (f5) {
    case 0x00: return fp_rr(enc, pick(Mnemonic::kFaddS, Mnemonic::kFaddD), InstClass::kFpAlu);
    case 0x01: return fp_rr(enc, pick(Mnemonic::kFsubS, Mnemonic::kFsubD), InstClass::kFpAlu);
    case 0x02: return fp_rr(enc, pick(Mnemonic::kFmulS, Mnemonic::kFmulD), InstClass::kFpMulDiv);
    case 0x03: return fp_rr(enc, pick(Mnemonic::kFdivS, Mnemonic::kFdivD), InstClass::kFpMulDiv);
    case 0x0b: {  // fsqrt (rs2 must be 0)
      if (rs2_of(enc) != 0) return {};
      Decoded d = fp_rr(enc, pick(Mnemonic::kFsqrtS, Mnemonic::kFsqrtD), InstClass::kFpMulDiv);
      d.rs2_file = RegFile::kNone;
      return d;
    }
    case 0x04:  // fsgnj/fsgnjn/fsgnjx
      switch (f3) {
        case 0: return fp_rr(enc, pick(Mnemonic::kFsgnjS, Mnemonic::kFsgnjD), InstClass::kFpAlu);
        case 1: return fp_rr(enc, pick(Mnemonic::kFsgnjnS, Mnemonic::kFsgnjnD), InstClass::kFpAlu);
        case 2: return fp_rr(enc, pick(Mnemonic::kFsgnjxS, Mnemonic::kFsgnjxD), InstClass::kFpAlu);
        default: return {};
      }
    case 0x05:
      if (f3 == 0) return fp_rr(enc, pick(Mnemonic::kFminS, Mnemonic::kFminD), InstClass::kFpAlu);
      if (f3 == 1) return fp_rr(enc, pick(Mnemonic::kFmaxS, Mnemonic::kFmaxD), InstClass::kFpAlu);
      return {};
    case 0x14: {  // comparisons: write integer rd
      Decoded d = fp_rr(enc, Mnemonic::kInvalid, InstClass::kFpAlu);
      switch (f3) {
        case 0: d.mnemonic = pick(Mnemonic::kFleS, Mnemonic::kFleD); break;
        case 1: d.mnemonic = pick(Mnemonic::kFltS, Mnemonic::kFltD); break;
        case 2: d.mnemonic = pick(Mnemonic::kFeqS, Mnemonic::kFeqD); break;
        default: return {};
      }
      d.rd_file = RegFile::kInt;
      return d;
    }
    case 0x18: {  // fcvt.{w,wu,l,lu}.{s,d}: fp -> int
      Decoded d = fp_rr(enc, Mnemonic::kInvalid, InstClass::kFpAlu);
      d.rs2_file = RegFile::kNone;
      d.rd_file = RegFile::kInt;
      static constexpr Mnemonic kS[4] = {Mnemonic::kFcvtWS, Mnemonic::kFcvtWuS,
                                         Mnemonic::kFcvtLS, Mnemonic::kFcvtLuS};
      static constexpr Mnemonic kD[4] = {Mnemonic::kFcvtWD, Mnemonic::kFcvtWuD,
                                         Mnemonic::kFcvtLD, Mnemonic::kFcvtLuD};
      const u8 sel = rs2_of(enc);
      if (sel > 3) return {};
      d.mnemonic = dbl ? kD[sel] : kS[sel];
      return d;
    }
    case 0x1a: {  // fcvt.{s,d}.{w,wu,l,lu}: int -> fp
      Decoded d = fp_rr(enc, Mnemonic::kInvalid, InstClass::kFpAlu);
      d.rs2_file = RegFile::kNone;
      d.rs1_file = RegFile::kInt;
      static constexpr Mnemonic kS[4] = {Mnemonic::kFcvtSW, Mnemonic::kFcvtSWu,
                                         Mnemonic::kFcvtSL, Mnemonic::kFcvtSLu};
      static constexpr Mnemonic kD[4] = {Mnemonic::kFcvtDW, Mnemonic::kFcvtDWu,
                                         Mnemonic::kFcvtDL, Mnemonic::kFcvtDLu};
      const u8 sel = rs2_of(enc);
      if (sel > 3) return {};
      d.mnemonic = dbl ? kD[sel] : kS[sel];
      return d;
    }
    case 0x08: {  // fcvt.s.d / fcvt.d.s
      Decoded d = fp_rr(enc, Mnemonic::kInvalid, InstClass::kFpAlu);
      d.rs2_file = RegFile::kNone;
      if (dbl && rs2_of(enc) == 0) d.mnemonic = Mnemonic::kFcvtDS;
      else if (!dbl && rs2_of(enc) == 1) d.mnemonic = Mnemonic::kFcvtSD;
      else return {};
      return d;
    }
    case 0x1c: {  // fmv.x.{w,d} / fclass
      if (rs2_of(enc) != 0) return {};
      Decoded d = fp_rr(enc, Mnemonic::kInvalid, InstClass::kFpAlu);
      d.rs2_file = RegFile::kNone;
      d.rd_file = RegFile::kInt;
      if (f3 == 0) d.mnemonic = dbl ? Mnemonic::kFmvXD : Mnemonic::kFmvXW;
      else if (f3 == 1) d.mnemonic = dbl ? Mnemonic::kFclassD : Mnemonic::kFclassS;
      else return {};
      return d;
    }
    case 0x1e: {  // fmv.{w,d}.x
      if (rs2_of(enc) != 0 || f3 != 0) return {};
      Decoded d = fp_rr(enc, dbl ? Mnemonic::kFmvDX : Mnemonic::kFmvWX,
                        InstClass::kFpAlu);
      d.rs2_file = RegFile::kNone;
      d.rs1_file = RegFile::kInt;
      return d;
    }
    default: return {};
  }
}

Decoded decode_fma(u32 enc, u8 op) {
  const u8 fmt = funct7_of(enc) & 0x3;
  if (fmt > 1) return {};
  const bool dbl = fmt == 1;
  switch (op) {
    case 0x43: return fma(enc, dbl ? Mnemonic::kFmaddD : Mnemonic::kFmaddS);
    case 0x47: return fma(enc, dbl ? Mnemonic::kFmsubD : Mnemonic::kFmsubS);
    case 0x4b: return fma(enc, dbl ? Mnemonic::kFnmsubD : Mnemonic::kFnmsubS);
    case 0x4f: return fma(enc, dbl ? Mnemonic::kFnmaddD : Mnemonic::kFnmaddS);
    default: return {};
  }
}

}  // namespace

Decoded decode(u32 enc) {
  const u8 op = opcode_of(enc);
  if ((enc & 0x3) != 0x3) return {};  // 16-bit / invalid length prefix
  switch (op) {
    case kOpLoad: return decode_load(enc);
    case kOpStore: return decode_store(enc);
    case kOpOpImm: return decode_op_imm(enc);
    case kOpOpImm32: return decode_op_imm32(enc);
    case kOpOp: return decode_op(enc);
    case kOpOp32: return decode_op32(enc);
    case kOpAmo: return decode_amo(enc);
    case kOpLui: {
      Decoded d;
      d.mnemonic = Mnemonic::kLui;
      d.cls = InstClass::kIntAlu;
      d.rd = rd_of(enc);
      d.rd_file = RegFile::kInt;
      d.imm_kind = ImmKind::kU;
      d.imm = imm_u(enc);
      return d;
    }
    case kOpAuipc: {
      Decoded d;
      d.mnemonic = Mnemonic::kAuipc;
      d.cls = InstClass::kIntAlu;
      d.rd = rd_of(enc);
      d.rd_file = RegFile::kInt;
      d.imm_kind = ImmKind::kU;
      d.imm = imm_u(enc);
      return d;
    }
    case kOpJal: {
      Decoded d;
      d.mnemonic = Mnemonic::kJal;
      d.rd = rd_of(enc);
      d.rd_file = RegFile::kInt;
      d.imm_kind = ImmKind::kJ;
      d.imm = imm_j(enc);
      d.cls = d.rd == 1 ? InstClass::kCall : InstClass::kJump;
      return d;
    }
    case kOpJalr: {
      if (funct3_of(enc) != 0) return {};
      Decoded d = i_type(enc, Mnemonic::kJalr, InstClass::kJump);
      if (is_call(enc)) d.cls = InstClass::kCall;
      else if (is_ret(enc)) d.cls = InstClass::kRet;
      return d;
    }
    case kOpBranch: {
      static constexpr Mnemonic kB[8] = {
          Mnemonic::kBeq, Mnemonic::kBne, Mnemonic::kInvalid, Mnemonic::kInvalid,
          Mnemonic::kBlt, Mnemonic::kBge, Mnemonic::kBltu, Mnemonic::kBgeu};
      const Mnemonic m = kB[funct3_of(enc)];
      if (m == Mnemonic::kInvalid) return {};
      return branch(enc, m);
    }
    case kOpMiscMem:
      if (funct3_of(enc) == 0) {
        Decoded d;
        d.mnemonic = Mnemonic::kFence;
        d.cls = InstClass::kNop;
        return d;
      }
      if (funct3_of(enc) == 1) {
        Decoded d;
        d.mnemonic = Mnemonic::kFenceI;
        d.cls = InstClass::kNop;
        return d;
      }
      return {};
    case kOpSystem: return decode_system(enc);
    case kOpLoadFp:
      if (funct3_of(enc) == 2) return fp_load(enc, Mnemonic::kFlw, 4);
      if (funct3_of(enc) == 3) return fp_load(enc, Mnemonic::kFld, 8);
      return {};
    case kOpStoreFp:
      if (funct3_of(enc) == 2) return fp_store(enc, Mnemonic::kFsw, 4);
      if (funct3_of(enc) == 3) return fp_store(enc, Mnemonic::kFsd, 8);
      return {};
    case kOpFp: return decode_fp_op(enc);
    case 0x43: case 0x47: case 0x4b: case 0x4f: return decode_fma(enc, op);
    case kOpCustom0: {
      Decoded d;
      d.cls = InstClass::kGuardEvent;
      if (funct3_of(enc) == kGuardAllocFunct3) d.mnemonic = Mnemonic::kGuardAlloc;
      else if (funct3_of(enc) == kGuardFreeFunct3) d.mnemonic = Mnemonic::kGuardFree;
      else return {};
      return d;
    }
    default: return {};
  }
}

const char* mnemonic_name(Mnemonic m) {
  switch (m) {
    case Mnemonic::kInvalid: return "<invalid>";
    case Mnemonic::kLui: return "lui";
    case Mnemonic::kAuipc: return "auipc";
    case Mnemonic::kJal: return "jal";
    case Mnemonic::kJalr: return "jalr";
    case Mnemonic::kBeq: return "beq";
    case Mnemonic::kBne: return "bne";
    case Mnemonic::kBlt: return "blt";
    case Mnemonic::kBge: return "bge";
    case Mnemonic::kBltu: return "bltu";
    case Mnemonic::kBgeu: return "bgeu";
    case Mnemonic::kLb: return "lb";
    case Mnemonic::kLh: return "lh";
    case Mnemonic::kLw: return "lw";
    case Mnemonic::kLd: return "ld";
    case Mnemonic::kLbu: return "lbu";
    case Mnemonic::kLhu: return "lhu";
    case Mnemonic::kLwu: return "lwu";
    case Mnemonic::kSb: return "sb";
    case Mnemonic::kSh: return "sh";
    case Mnemonic::kSw: return "sw";
    case Mnemonic::kSd: return "sd";
    case Mnemonic::kAddi: return "addi";
    case Mnemonic::kSlti: return "slti";
    case Mnemonic::kSltiu: return "sltiu";
    case Mnemonic::kXori: return "xori";
    case Mnemonic::kOri: return "ori";
    case Mnemonic::kAndi: return "andi";
    case Mnemonic::kSlli: return "slli";
    case Mnemonic::kSrli: return "srli";
    case Mnemonic::kSrai: return "srai";
    case Mnemonic::kAdd: return "add";
    case Mnemonic::kSub: return "sub";
    case Mnemonic::kSll: return "sll";
    case Mnemonic::kSlt: return "slt";
    case Mnemonic::kSltu: return "sltu";
    case Mnemonic::kXor: return "xor";
    case Mnemonic::kSrl: return "srl";
    case Mnemonic::kSra: return "sra";
    case Mnemonic::kOr: return "or";
    case Mnemonic::kAnd: return "and";
    case Mnemonic::kAddiw: return "addiw";
    case Mnemonic::kSlliw: return "slliw";
    case Mnemonic::kSrliw: return "srliw";
    case Mnemonic::kSraiw: return "sraiw";
    case Mnemonic::kAddw: return "addw";
    case Mnemonic::kSubw: return "subw";
    case Mnemonic::kSllw: return "sllw";
    case Mnemonic::kSrlw: return "srlw";
    case Mnemonic::kSraw: return "sraw";
    case Mnemonic::kFence: return "fence";
    case Mnemonic::kFenceI: return "fence.i";
    case Mnemonic::kEcall: return "ecall";
    case Mnemonic::kEbreak: return "ebreak";
    case Mnemonic::kCsrrw: return "csrrw";
    case Mnemonic::kCsrrs: return "csrrs";
    case Mnemonic::kCsrrc: return "csrrc";
    case Mnemonic::kCsrrwi: return "csrrwi";
    case Mnemonic::kCsrrsi: return "csrrsi";
    case Mnemonic::kCsrrci: return "csrrci";
    case Mnemonic::kMul: return "mul";
    case Mnemonic::kMulh: return "mulh";
    case Mnemonic::kMulhsu: return "mulhsu";
    case Mnemonic::kMulhu: return "mulhu";
    case Mnemonic::kDiv: return "div";
    case Mnemonic::kDivu: return "divu";
    case Mnemonic::kRem: return "rem";
    case Mnemonic::kRemu: return "remu";
    case Mnemonic::kMulw: return "mulw";
    case Mnemonic::kDivw: return "divw";
    case Mnemonic::kDivuw: return "divuw";
    case Mnemonic::kRemw: return "remw";
    case Mnemonic::kRemuw: return "remuw";
    case Mnemonic::kLrW: return "lr.w";
    case Mnemonic::kScW: return "sc.w";
    case Mnemonic::kAmoSwapW: return "amoswap.w";
    case Mnemonic::kAmoAddW: return "amoadd.w";
    case Mnemonic::kAmoXorW: return "amoxor.w";
    case Mnemonic::kAmoAndW: return "amoand.w";
    case Mnemonic::kAmoOrW: return "amoor.w";
    case Mnemonic::kAmoMinW: return "amomin.w";
    case Mnemonic::kAmoMaxW: return "amomax.w";
    case Mnemonic::kAmoMinuW: return "amominu.w";
    case Mnemonic::kAmoMaxuW: return "amomaxu.w";
    case Mnemonic::kLrD: return "lr.d";
    case Mnemonic::kScD: return "sc.d";
    case Mnemonic::kAmoSwapD: return "amoswap.d";
    case Mnemonic::kAmoAddD: return "amoadd.d";
    case Mnemonic::kAmoXorD: return "amoxor.d";
    case Mnemonic::kAmoAndD: return "amoand.d";
    case Mnemonic::kAmoOrD: return "amoor.d";
    case Mnemonic::kAmoMinD: return "amomin.d";
    case Mnemonic::kAmoMaxD: return "amomax.d";
    case Mnemonic::kAmoMinuD: return "amominu.d";
    case Mnemonic::kAmoMaxuD: return "amomaxu.d";
    case Mnemonic::kFlw: return "flw";
    case Mnemonic::kFld: return "fld";
    case Mnemonic::kFsw: return "fsw";
    case Mnemonic::kFsd: return "fsd";
    case Mnemonic::kFaddS: return "fadd.s";
    case Mnemonic::kFsubS: return "fsub.s";
    case Mnemonic::kFmulS: return "fmul.s";
    case Mnemonic::kFdivS: return "fdiv.s";
    case Mnemonic::kFsqrtS: return "fsqrt.s";
    case Mnemonic::kFaddD: return "fadd.d";
    case Mnemonic::kFsubD: return "fsub.d";
    case Mnemonic::kFmulD: return "fmul.d";
    case Mnemonic::kFdivD: return "fdiv.d";
    case Mnemonic::kFsqrtD: return "fsqrt.d";
    case Mnemonic::kFsgnjS: return "fsgnj.s";
    case Mnemonic::kFsgnjnS: return "fsgnjn.s";
    case Mnemonic::kFsgnjxS: return "fsgnjx.s";
    case Mnemonic::kFsgnjD: return "fsgnj.d";
    case Mnemonic::kFsgnjnD: return "fsgnjn.d";
    case Mnemonic::kFsgnjxD: return "fsgnjx.d";
    case Mnemonic::kFminS: return "fmin.s";
    case Mnemonic::kFmaxS: return "fmax.s";
    case Mnemonic::kFminD: return "fmin.d";
    case Mnemonic::kFmaxD: return "fmax.d";
    case Mnemonic::kFmaddS: return "fmadd.s";
    case Mnemonic::kFmsubS: return "fmsub.s";
    case Mnemonic::kFnmsubS: return "fnmsub.s";
    case Mnemonic::kFnmaddS: return "fnmadd.s";
    case Mnemonic::kFmaddD: return "fmadd.d";
    case Mnemonic::kFmsubD: return "fmsub.d";
    case Mnemonic::kFnmsubD: return "fnmsub.d";
    case Mnemonic::kFnmaddD: return "fnmadd.d";
    case Mnemonic::kFcvtWS: return "fcvt.w.s";
    case Mnemonic::kFcvtWuS: return "fcvt.wu.s";
    case Mnemonic::kFcvtLS: return "fcvt.l.s";
    case Mnemonic::kFcvtLuS: return "fcvt.lu.s";
    case Mnemonic::kFcvtSW: return "fcvt.s.w";
    case Mnemonic::kFcvtSWu: return "fcvt.s.wu";
    case Mnemonic::kFcvtSL: return "fcvt.s.l";
    case Mnemonic::kFcvtSLu: return "fcvt.s.lu";
    case Mnemonic::kFcvtWD: return "fcvt.w.d";
    case Mnemonic::kFcvtWuD: return "fcvt.wu.d";
    case Mnemonic::kFcvtLD: return "fcvt.l.d";
    case Mnemonic::kFcvtLuD: return "fcvt.lu.d";
    case Mnemonic::kFcvtDW: return "fcvt.d.w";
    case Mnemonic::kFcvtDWu: return "fcvt.d.wu";
    case Mnemonic::kFcvtDL: return "fcvt.d.l";
    case Mnemonic::kFcvtDLu: return "fcvt.d.lu";
    case Mnemonic::kFcvtSD: return "fcvt.s.d";
    case Mnemonic::kFcvtDS: return "fcvt.d.s";
    case Mnemonic::kFmvXW: return "fmv.x.w";
    case Mnemonic::kFmvWX: return "fmv.w.x";
    case Mnemonic::kFmvXD: return "fmv.x.d";
    case Mnemonic::kFmvDX: return "fmv.d.x";
    case Mnemonic::kFeqS: return "feq.s";
    case Mnemonic::kFltS: return "flt.s";
    case Mnemonic::kFleS: return "fle.s";
    case Mnemonic::kFeqD: return "feq.d";
    case Mnemonic::kFltD: return "flt.d";
    case Mnemonic::kFleD: return "fle.d";
    case Mnemonic::kFclassS: return "fclass.s";
    case Mnemonic::kFclassD: return "fclass.d";
    case Mnemonic::kGuardAlloc: return "guard.alloc";
    case Mnemonic::kGuardFree: return "guard.free";
    case Mnemonic::kCount: break;
  }
  return "<invalid>";
}

namespace {
std::string dfmt(const char* f, ...) {
  char buf[128];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  return buf;
}

char reg_prefix(RegFile rf) { return rf == RegFile::kFp ? 'f' : 'x'; }
}  // namespace

std::string disassemble_full(u32 enc) {
  const Decoded d = decode(enc);
  if (!d.valid()) return dfmt(".word 0x%08x", enc);
  const char* name = mnemonic_name(d.mnemonic);
  const long long imm = static_cast<long long>(d.imm);

  // Standard aliases.
  if (d.mnemonic == Mnemonic::kAddi && d.rd == 0 && d.rs1 == 0 && d.imm == 0)
    return "nop";
  if (d.mnemonic == Mnemonic::kAddi && d.imm == 0)
    return dfmt("mv x%d, x%d", d.rd, d.rs1);
  if (d.mnemonic == Mnemonic::kJal && d.rd == 0) return dfmt("j %lld", imm);
  if (d.mnemonic == Mnemonic::kJalr && d.cls == InstClass::kRet && d.imm == 0)
    return "ret";
  if (d.mnemonic == Mnemonic::kBeq && d.rs2 == 0)
    return dfmt("beqz x%d, %lld", d.rs1, imm);
  if (d.mnemonic == Mnemonic::kBne && d.rs2 == 0)
    return dfmt("bnez x%d, %lld", d.rs1, imm);

  switch (d.cls) {
    case InstClass::kLoad:
      if (d.is_amo) return dfmt("%s %c%d, (x%d)", name, reg_prefix(d.rd_file), d.rd, d.rs1);
      return dfmt("%s %c%d, %lld(x%d)", name, reg_prefix(d.rd_file), d.rd, imm, d.rs1);
    case InstClass::kStore:
      if (d.is_amo)
        return dfmt("%s x%d, x%d, (x%d)", name, d.rd, d.rs2, d.rs1);
      return dfmt("%s %c%d, %lld(x%d)", name, reg_prefix(d.rs2_file), d.rs2, imm, d.rs1);
    case InstClass::kBranch:
      return dfmt("%s x%d, x%d, %lld", name, d.rs1, d.rs2, imm);
    case InstClass::kCsr:
      if (d.mnemonic == Mnemonic::kEcall || d.mnemonic == Mnemonic::kEbreak)
        return name;
      if (d.imm_kind == ImmKind::kCsrZimm)
        return dfmt("%s x%d, 0x%x, %lld", name, d.rd, d.csr, imm);
      return dfmt("%s x%d, 0x%x, x%d", name, d.rd, d.csr, d.rs1);
    case InstClass::kGuardEvent:
      return name;
    case InstClass::kNop:
      return name;  // fence / fence.i
    default: break;
  }

  // Register-register / register-immediate computational forms.
  if (d.reads_rs3())
    return dfmt("%s f%d, f%d, f%d, f%d", name, d.rd, d.rs1, d.rs2, d.rs3);
  if (d.imm_kind == ImmKind::kU)
    return dfmt("%s x%d, 0x%llx", name, d.rd, static_cast<unsigned long long>(d.imm) >> 12);
  if (d.imm_kind == ImmKind::kJ)
    return dfmt("%s x%d, %lld", name, d.rd, imm);
  if (d.imm_kind == ImmKind::kI || d.imm_kind == ImmKind::kShamt) {
    if (d.mnemonic == Mnemonic::kJalr)
      return dfmt("%s x%d, %lld(x%d)", name, d.rd, imm, d.rs1);
    return dfmt("%s x%d, x%d, %lld", name, d.rd, d.rs1, imm);
  }
  if (d.reads_rs2())
    return dfmt("%s %c%d, %c%d, %c%d", name, reg_prefix(d.rd_file), d.rd,
                reg_prefix(d.rs1_file), d.rs1, reg_prefix(d.rs2_file), d.rs2);
  if (d.reads_rs1())
    return dfmt("%s %c%d, %c%d", name, reg_prefix(d.rd_file), d.rd,
                reg_prefix(d.rs1_file), d.rs1);
  return name;
}

unsigned mnemonics_sharing_filter_row(u16 row) {
  // Enumerate all mnemonics via canonical encodings and count collisions.
  // Only {funct3, opcode} feed the SRAM index, so mnemonics distinguished by
  // funct7/funct5 (e.g. add vs sub vs mul) share a row by construction.
  unsigned n = 0;
  for (u16 m = 1; m < static_cast<u16>(Mnemonic::kCount); ++m) {
    const auto r = canonical_filter_row(static_cast<Mnemonic>(m));
    if (r && *r == row) ++n;
  }
  return n;
}

std::optional<u16> canonical_filter_row(Mnemonic m) {
  // Build one representative encoding per mnemonic and report its row. FP
  // computational ops vary funct3 with the rounding mode, so their canonical
  // row uses rm = 0 (RNE); comparisons/sign-injections have fixed funct3.
  auto row = [](u8 opcode, u8 f3) {
    return static_cast<u16>((static_cast<u16>(f3) << 7) | opcode);
  };
  switch (m) {
    case Mnemonic::kLb: return row(kOpLoad, 0);
    case Mnemonic::kLh: return row(kOpLoad, 1);
    case Mnemonic::kLw: return row(kOpLoad, 2);
    case Mnemonic::kLd: return row(kOpLoad, 3);
    case Mnemonic::kLbu: return row(kOpLoad, 4);
    case Mnemonic::kLhu: return row(kOpLoad, 5);
    case Mnemonic::kLwu: return row(kOpLoad, 6);
    case Mnemonic::kSb: return row(kOpStore, 0);
    case Mnemonic::kSh: return row(kOpStore, 1);
    case Mnemonic::kSw: return row(kOpStore, 2);
    case Mnemonic::kSd: return row(kOpStore, 3);
    case Mnemonic::kFlw: return row(kOpLoadFp, 2);
    case Mnemonic::kFld: return row(kOpLoadFp, 3);
    case Mnemonic::kFsw: return row(kOpStoreFp, 2);
    case Mnemonic::kFsd: return row(kOpStoreFp, 3);
    case Mnemonic::kBeq: return row(kOpBranch, 0);
    case Mnemonic::kBne: return row(kOpBranch, 1);
    case Mnemonic::kBlt: return row(kOpBranch, 4);
    case Mnemonic::kBge: return row(kOpBranch, 5);
    case Mnemonic::kBltu: return row(kOpBranch, 6);
    case Mnemonic::kBgeu: return row(kOpBranch, 7);
    case Mnemonic::kJal: return row(kOpJal, 0);  // funct3 is imm bits; by
    // convention the filter programs all 8 rows of JAL/JALR-class opcodes.
    case Mnemonic::kJalr: return row(kOpJalr, 0);
    case Mnemonic::kAddi: return row(kOpOpImm, 0);
    case Mnemonic::kSlli: return row(kOpOpImm, 1);
    case Mnemonic::kSlti: return row(kOpOpImm, 2);
    case Mnemonic::kSltiu: return row(kOpOpImm, 3);
    case Mnemonic::kXori: return row(kOpOpImm, 4);
    case Mnemonic::kSrli: return row(kOpOpImm, 5);
    case Mnemonic::kSrai: return row(kOpOpImm, 5);
    case Mnemonic::kOri: return row(kOpOpImm, 6);
    case Mnemonic::kAndi: return row(kOpOpImm, 7);
    case Mnemonic::kAdd: case Mnemonic::kSub: case Mnemonic::kMul:
      return row(kOpOp, 0);
    case Mnemonic::kSll: case Mnemonic::kMulh: return row(kOpOp, 1);
    case Mnemonic::kSlt: case Mnemonic::kMulhsu: return row(kOpOp, 2);
    case Mnemonic::kSltu: case Mnemonic::kMulhu: return row(kOpOp, 3);
    case Mnemonic::kXor: case Mnemonic::kDiv: return row(kOpOp, 4);
    case Mnemonic::kSrl: case Mnemonic::kSra: case Mnemonic::kDivu:
      return row(kOpOp, 5);
    case Mnemonic::kOr: case Mnemonic::kRem: return row(kOpOp, 6);
    case Mnemonic::kAnd: case Mnemonic::kRemu: return row(kOpOp, 7);
    case Mnemonic::kAddiw: return row(kOpOpImm32, 0);
    case Mnemonic::kSlliw: return row(kOpOpImm32, 1);
    case Mnemonic::kSrliw: case Mnemonic::kSraiw: return row(kOpOpImm32, 5);
    case Mnemonic::kAddw: case Mnemonic::kSubw: case Mnemonic::kMulw:
      return row(kOpOp32, 0);
    case Mnemonic::kSllw: return row(kOpOp32, 1);
    case Mnemonic::kSrlw: case Mnemonic::kSraw: case Mnemonic::kDivuw:
      return row(kOpOp32, 5);
    case Mnemonic::kDivw: return row(kOpOp32, 4);
    case Mnemonic::kRemw: return row(kOpOp32, 6);
    case Mnemonic::kRemuw: return row(kOpOp32, 7);
    case Mnemonic::kLrW: case Mnemonic::kScW: case Mnemonic::kAmoSwapW:
    case Mnemonic::kAmoAddW: case Mnemonic::kAmoXorW: case Mnemonic::kAmoAndW:
    case Mnemonic::kAmoOrW: case Mnemonic::kAmoMinW: case Mnemonic::kAmoMaxW:
    case Mnemonic::kAmoMinuW: case Mnemonic::kAmoMaxuW:
      return row(kOpAmo, 2);
    case Mnemonic::kLrD: case Mnemonic::kScD: case Mnemonic::kAmoSwapD:
    case Mnemonic::kAmoAddD: case Mnemonic::kAmoXorD: case Mnemonic::kAmoAndD:
    case Mnemonic::kAmoOrD: case Mnemonic::kAmoMinD: case Mnemonic::kAmoMaxD:
    case Mnemonic::kAmoMinuD: case Mnemonic::kAmoMaxuD:
      return row(kOpAmo, 3);
    case Mnemonic::kCsrrw: return row(kOpSystem, 1);
    case Mnemonic::kCsrrs: return row(kOpSystem, 2);
    case Mnemonic::kCsrrc: return row(kOpSystem, 3);
    case Mnemonic::kCsrrwi: return row(kOpSystem, 5);
    case Mnemonic::kCsrrsi: return row(kOpSystem, 6);
    case Mnemonic::kCsrrci: return row(kOpSystem, 7);
    case Mnemonic::kEcall: case Mnemonic::kEbreak: return row(kOpSystem, 0);
    case Mnemonic::kFence: return row(kOpMiscMem, 0);
    case Mnemonic::kFenceI: return row(kOpMiscMem, 1);
    case Mnemonic::kGuardAlloc: return row(kOpCustom0, kGuardAllocFunct3);
    case Mnemonic::kGuardFree: return row(kOpCustom0, kGuardFreeFunct3);
    case Mnemonic::kLui: return row(kOpLui, 0);
    case Mnemonic::kAuipc: return row(kOpAuipc, 0);
    default:
      // FP computational ops: funct3 is the rounding mode (dynamic in
      // practice), so a single canonical row is not well-defined.
      return std::nullopt;
  }
}

}  // namespace fg::isa
