// Minimal RV64 instruction layer.
//
// FireGuard's mini-filters index their SRAM look-up tables with the
// concatenation {funct3[2:0], opcode[6:0]} of each committed instruction
// (Figure 3 of the paper), so the trace carries real RISC-V encodings. This
// module provides the encoders the workload generator uses, the field
// extractors the filter and the guardian kernels use, and a disassembler for
// debugging and logs.
#pragma once

#include <string>

#include "src/common/types.h"

namespace fg::isa {

// ---------------------------------------------------------------------------
// Major opcodes (RV64 base + M/F/D + custom-0 used for guard events).
// ---------------------------------------------------------------------------
enum Opcode : u8 {
  kOpLoad = 0x03,
  kOpLoadFp = 0x07,
  kOpCustom0 = 0x0b,  // guard.alloc / guard.free markers (see below)
  kOpMiscMem = 0x0f,
  kOpOpImm = 0x13,
  kOpAuipc = 0x17,
  kOpOpImm32 = 0x1b,
  kOpStore = 0x23,
  kOpStoreFp = 0x27,
  kOpAmo = 0x2f,
  kOpOp = 0x33,
  kOpLui = 0x37,
  kOpOp32 = 0x3b,
  kOpFp = 0x53,
  kOpBranch = 0x63,
  kOpJalr = 0x67,
  kOpJal = 0x6f,
  kOpSystem = 0x73,
};

// funct3 values for the custom-0 guard-event markers emitted by the
// instrumented allocator in the synthetic workload. A real deployment would
// reserve exactly such a custom opcode so the event filter can observe
// allocator activity (the Guardian Council forwards function-call events; a
// marker instruction is the equivalent that needs no symbol resolution).
inline constexpr u8 kGuardAllocFunct3 = 0x0;
inline constexpr u8 kGuardFreeFunct3 = 0x1;

/// Broad behavioural classes used by the core timing model.
enum class InstClass : u8 {
  kIntAlu,
  kIntMul,
  kIntDiv,
  kFpAlu,
  kFpMulDiv,
  kLoad,
  kStore,
  kBranch,  // conditional
  kJump,    // unconditional, not linking (j)
  kCall,    // jal/jalr with rd = ra
  kRet,     // jalr x0, ra
  kCsr,
  kGuardEvent,  // custom-0 marker (alloc/free)
  kNop,
};

/// Human-readable class name (tables, logs).
const char* class_name(InstClass c);

/// True if the class occupies a memory pipe.
constexpr bool is_mem(InstClass c) {
  return c == InstClass::kLoad || c == InstClass::kStore;
}

/// True if the class is a control-flow transfer.
constexpr bool is_ctrl(InstClass c) {
  return c == InstClass::kBranch || c == InstClass::kJump ||
         c == InstClass::kCall || c == InstClass::kRet;
}

// ---------------------------------------------------------------------------
// Field extraction.
// ---------------------------------------------------------------------------
constexpr u8 opcode_of(u32 enc) { return static_cast<u8>(enc & 0x7f); }
constexpr u8 rd_of(u32 enc) { return static_cast<u8>((enc >> 7) & 0x1f); }
constexpr u8 funct3_of(u32 enc) { return static_cast<u8>((enc >> 12) & 0x7); }
constexpr u8 rs1_of(u32 enc) { return static_cast<u8>((enc >> 15) & 0x1f); }
constexpr u8 rs2_of(u32 enc) { return static_cast<u8>((enc >> 20) & 0x1f); }
constexpr u8 funct7_of(u32 enc) { return static_cast<u8>((enc >> 25) & 0x7f); }

/// The 10-bit mini-filter SRAM index: {funct3, opcode} (Figure 3).
constexpr u16 filter_index(u32 enc) {
  return static_cast<u16>((static_cast<u16>(funct3_of(enc)) << 7) | opcode_of(enc));
}
inline constexpr u16 kFilterTableSize = 1u << 10;

/// Immediate decoders (sign-extended).
i64 imm_i(u32 enc);
i64 imm_s(u32 enc);
i64 imm_b(u32 enc);
i64 imm_u(u32 enc);
i64 imm_j(u32 enc);

// ---------------------------------------------------------------------------
// Encoders.
// ---------------------------------------------------------------------------
u32 enc_r(u8 opcode, u8 rd, u8 funct3, u8 rs1, u8 rs2, u8 funct7);
u32 enc_i(u8 opcode, u8 rd, u8 funct3, u8 rs1, i32 imm);
u32 enc_s(u8 opcode, u8 funct3, u8 rs1, u8 rs2, i32 imm);
u32 enc_b(u8 opcode, u8 funct3, u8 rs1, u8 rs2, i32 imm);
u32 enc_u(u8 opcode, u8 rd, i32 imm);
u32 enc_j(u8 opcode, u8 rd, i32 imm);

/// Convenience encoders for the instruction shapes the workload emits.
u32 make_load(u8 funct3, u8 rd, u8 rs1, i32 imm);      // LB..LD / LBU..LWU
u32 make_store(u8 funct3, u8 rs1, u8 rs2, i32 imm);    // SB..SD
u32 make_alu_rr(u8 funct3, u8 rd, u8 rs1, u8 rs2, bool alt);  // ADD/SUB/...
u32 make_alu_ri(u8 funct3, u8 rd, u8 rs1, i32 imm);    // ADDI/...
u32 make_mul(u8 funct3, u8 rd, u8 rs1, u8 rs2);        // MUL/MULH/DIV/REM...
u32 make_fp(u8 funct5, u8 rd, u8 rs1, u8 rs2);         // OP-FP (D)
u32 make_branch(u8 funct3, u8 rs1, u8 rs2, i32 off);   // BEQ/BNE/...
u32 make_jal(u8 rd, i32 off);
u32 make_jalr(u8 rd, u8 rs1, i32 imm);
u32 make_csrrw(u8 rd, u8 rs1, u16 csr);
u32 make_guard_event(bool is_alloc);  // custom-0 marker

/// True if the encoding is a call (jal/jalr that links into ra).
bool is_call(u32 enc);
/// True if the encoding is a return (jalr x0, 0(ra)).
bool is_ret(u32 enc);

/// Compact disassembly (mnemonic + registers; immediates in decimal).
std::string disassemble(u32 enc);

}  // namespace fg::isa
