// Full structured RV64 decoder.
//
// The minimal layer in riscv.h provides field extraction and the encoders the
// workload generator needs. This module adds a complete instruction decoder
// for RV64IMAFD + Zicsr + Zifencei: it classifies any 32-bit encoding into a
// mnemonic, extracts its operands and immediate into a uniform record, and
// renders exact disassembly. The guardian-kernel tooling uses it to validate
// filter programming (a mini-filter row is keyed by {funct3, opcode}, and the
// decoder answers "which architectural instructions share this row"), and the
// tests use it as the ground truth for encoder round-trips.
#pragma once

#include <optional>
#include <string>

#include "src/isa/riscv.h"

namespace fg::isa {

/// Every RV64IMAFD + Zicsr + Zifencei instruction, plus the two custom-0
/// guard-event markers the synthetic workload emits.
enum class Mnemonic : u16 {
  kInvalid = 0,
  // RV32I/RV64I base.
  kLui, kAuipc,
  kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLd, kLbu, kLhu, kLwu,
  kSb, kSh, kSw, kSd,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kAddiw, kSlliw, kSrliw, kSraiw,
  kAddw, kSubw, kSllw, kSrlw, kSraw,
  kFence, kFenceI,
  kEcall, kEbreak,
  // Zicsr.
  kCsrrw, kCsrrs, kCsrrc, kCsrrwi, kCsrrsi, kCsrrci,
  // M extension.
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  kMulw, kDivw, kDivuw, kRemw, kRemuw,
  // A extension (RV64A: .w and .d forms).
  kLrW, kScW, kAmoSwapW, kAmoAddW, kAmoXorW, kAmoAndW, kAmoOrW,
  kAmoMinW, kAmoMaxW, kAmoMinuW, kAmoMaxuW,
  kLrD, kScD, kAmoSwapD, kAmoAddD, kAmoXorD, kAmoAndD, kAmoOrD,
  kAmoMinD, kAmoMaxD, kAmoMinuD, kAmoMaxuD,
  // F/D loads and stores.
  kFlw, kFld, kFsw, kFsd,
  // F/D computational (fmt-split).
  kFaddS, kFsubS, kFmulS, kFdivS, kFsqrtS,
  kFaddD, kFsubD, kFmulD, kFdivD, kFsqrtD,
  kFsgnjS, kFsgnjnS, kFsgnjxS, kFsgnjD, kFsgnjnD, kFsgnjxD,
  kFminS, kFmaxS, kFminD, kFmaxD,
  kFmaddS, kFmsubS, kFnmsubS, kFnmaddS,
  kFmaddD, kFmsubD, kFnmsubD, kFnmaddD,
  kFcvtWS, kFcvtWuS, kFcvtLS, kFcvtLuS,
  kFcvtSW, kFcvtSWu, kFcvtSL, kFcvtSLu,
  kFcvtWD, kFcvtWuD, kFcvtLD, kFcvtLuD,
  kFcvtDW, kFcvtDWu, kFcvtDL, kFcvtDLu,
  kFcvtSD, kFcvtDS,
  kFmvXW, kFmvWX, kFmvXD, kFmvDX,
  kFeqS, kFltS, kFleS, kFeqD, kFltD, kFleD,
  kFclassS, kFclassD,
  // Custom-0 guard-event markers (see riscv.h).
  kGuardAlloc, kGuardFree,
  kCount,
};

/// Which immediate format (if any) the instruction carries.
enum class ImmKind : u8 { kNone, kI, kS, kB, kU, kJ, kShamt, kCsrZimm };

/// Register file an operand field refers to.
enum class RegFile : u8 { kNone, kInt, kFp };

/// Uniform decoded-instruction record.
struct Decoded {
  Mnemonic mnemonic = Mnemonic::kInvalid;
  InstClass cls = InstClass::kNop;
  ImmKind imm_kind = ImmKind::kNone;
  u8 rd = 0, rs1 = 0, rs2 = 0, rs3 = 0;
  RegFile rd_file = RegFile::kNone;
  RegFile rs1_file = RegFile::kNone;
  RegFile rs2_file = RegFile::kNone;
  RegFile rs3_file = RegFile::kNone;
  i64 imm = 0;        // sign-extended immediate (or shamt / csr zimm)
  u16 csr = 0;        // CSR address for Zicsr instructions
  u8 mem_bytes = 0;   // access width for loads/stores/AMOs (0 otherwise)
  bool mem_unsigned = false;  // zero-extending load
  bool is_amo = false;

  bool valid() const { return mnemonic != Mnemonic::kInvalid; }
  bool reads_rs1() const { return rs1_file != RegFile::kNone; }
  bool reads_rs2() const { return rs2_file != RegFile::kNone; }
  bool reads_rs3() const { return rs3_file != RegFile::kNone; }
  bool writes_rd() const { return rd_file != RegFile::kNone; }
};

/// Decode any 32-bit RV64IMAFD/Zicsr/Zifencei encoding. Returns a record with
/// mnemonic == kInvalid (and cls == kNop) for undefined encodings; never
/// aborts, so it is safe to feed arbitrary bit patterns (fuzzing, bad traces).
Decoded decode(u32 enc);

/// Assembly mnemonic text ("addw", "fmadd.d", "lr.w", ...).
const char* mnemonic_name(Mnemonic m);

/// Exact disassembly from the full decoder. Understands every instruction
/// `decode` does, applies standard aliases (nop/mv/ret/j/beqz/...), and falls
/// back to ".word 0x...." for invalid encodings.
std::string disassemble_full(u32 enc);

/// Number of distinct valid mnemonics that map to the given mini-filter SRAM
/// row ({funct3, opcode} index, Figure 3). The filter cannot distinguish
/// instructions that share a row; kernels use this to audit that a programmed
/// row does not accidentally capture unrelated instructions.
unsigned mnemonics_sharing_filter_row(u16 row);

/// The mnemonic of a decoded instruction's canonical encoding row, i.e.
/// filter_index() of any encoding of this mnemonic. Returns std::nullopt for
/// mnemonics whose row depends on operand fields beyond {funct3, opcode}
/// (e.g. OP vs OP-32 share nothing; FP ops share row 0x53 with all fmt).
std::optional<u16> canonical_filter_row(Mnemonic m);

}  // namespace fg::isa
