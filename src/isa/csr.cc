#include "src/isa/csr.h"

namespace fg::isa {

std::optional<const char*> csr_name(u16 addr) {
  switch (addr) {
    case kCsrFflags: return "fflags";
    case kCsrFrm: return "frm";
    case kCsrFcsr: return "fcsr";
    case kCsrCycle: return "cycle";
    case kCsrTime: return "time";
    case kCsrInstret: return "instret";
    case kCsrSstatus: return "sstatus";
    case kCsrSie: return "sie";
    case kCsrStvec: return "stvec";
    case kCsrSscratch: return "sscratch";
    case kCsrSepc: return "sepc";
    case kCsrScause: return "scause";
    case kCsrStval: return "stval";
    case kCsrSip: return "sip";
    case kCsrSatp: return "satp";
    case kCsrMstatus: return "mstatus";
    case kCsrMisa: return "misa";
    case kCsrMie: return "mie";
    case kCsrMtvec: return "mtvec";
    case kCsrMscratch: return "mscratch";
    case kCsrMepc: return "mepc";
    case kCsrMcause: return "mcause";
    case kCsrMtval: return "mtval";
    case kCsrMip: return "mip";
    case kCsrMcycle: return "mcycle";
    case kCsrMinstret: return "minstret";
    case kCsrMhartid: return "mhartid";
    case kCsrFgFilterAddr: return "fg.filter_addr";
    case kCsrFgFilterData: return "fg.filter_data";
    case kCsrFgSeBitmap: return "fg.se_bitmap";
    case kCsrFgAeBitmap: return "fg.ae_bitmap";
    case kCsrFgSePolicy: return "fg.se_policy";
    case kCsrFgInflight: return "fg.inflight";
    default: return std::nullopt;
  }
}

}  // namespace fg::isa
