#include "src/isa/rvc.h"

#include "src/isa/riscv.h"

namespace fg::isa {

namespace {

// Map a 3-bit compressed register field to the architectural register x8-x15.
constexpr u8 creg(u16 half, unsigned lo) {
  return static_cast<u8>(8 + ((half >> lo) & 0x7));
}

constexpr u8 full_reg(u16 half, unsigned lo) {
  return static_cast<u8>((half >> lo) & 0x1f);
}

constexpr i32 sext_i32(u32 v, unsigned bits_used) {
  const u32 sign = u32{1} << (bits_used - 1);
  return static_cast<i32>((v ^ sign) - sign);
}

// Scramble helpers: RVC immediates are stored in permuted bit order; each
// decoder below reassembles the architectural immediate explicitly,
// bit-range by bit-range, following the RVC spec tables.
constexpr u32 b(u16 half, unsigned hi, unsigned lo) {
  return static_cast<u32>(bits(half, hi, lo));
}

std::optional<u32> expand_q0(u16 h) {
  switch (b(h, 15, 13)) {
    case 0x0: {  // c.addi4spn -> addi rd', x2, nzuimm
      const u32 imm = (b(h, 10, 7) << 6) | (b(h, 12, 11) << 4) |
                      (b(h, 5, 5) << 3) | (b(h, 6, 6) << 2);
      if (imm == 0) return std::nullopt;  // reserved
      return make_alu_ri(0, creg(h, 2), 2, static_cast<i32>(imm));
    }
    case 0x1: {  // c.fld -> fld rd', offset(rs1')
      const u32 imm = (b(h, 6, 5) << 6) | (b(h, 12, 10) << 3);
      return enc_i(kOpLoadFp, creg(h, 2), 3, creg(h, 7), static_cast<i32>(imm));
    }
    case 0x2: {  // c.lw
      const u32 imm = (b(h, 5, 5) << 6) | (b(h, 12, 10) << 3) | (b(h, 6, 6) << 2);
      return make_load(2, creg(h, 2), creg(h, 7), static_cast<i32>(imm));
    }
    case 0x3: {  // c.ld (RV64)
      const u32 imm = (b(h, 6, 5) << 6) | (b(h, 12, 10) << 3);
      return make_load(3, creg(h, 2), creg(h, 7), static_cast<i32>(imm));
    }
    case 0x5: {  // c.fsd
      const u32 imm = (b(h, 6, 5) << 6) | (b(h, 12, 10) << 3);
      return enc_s(kOpStoreFp, 3, creg(h, 7), creg(h, 2), static_cast<i32>(imm));
    }
    case 0x6: {  // c.sw
      const u32 imm = (b(h, 5, 5) << 6) | (b(h, 12, 10) << 3) | (b(h, 6, 6) << 2);
      return make_store(2, creg(h, 7), creg(h, 2), static_cast<i32>(imm));
    }
    case 0x7: {  // c.sd (RV64)
      const u32 imm = (b(h, 6, 5) << 6) | (b(h, 12, 10) << 3);
      return make_store(3, creg(h, 7), creg(h, 2), static_cast<i32>(imm));
    }
    default: return std::nullopt;  // 0x4 reserved
  }
}

std::optional<u32> expand_q1(u16 h) {
  switch (b(h, 15, 13)) {
    case 0x0: {  // c.addi (c.nop when rd=0, imm=0)
      const i32 imm = sext_i32((b(h, 12, 12) << 5) | b(h, 6, 2), 6);
      return make_alu_ri(0, full_reg(h, 7), full_reg(h, 7), imm);
    }
    case 0x1: {  // c.addiw (RV64; reserved when rd=0)
      const u8 rd = full_reg(h, 7);
      if (rd == 0) return std::nullopt;
      const i32 imm = sext_i32((b(h, 12, 12) << 5) | b(h, 6, 2), 6);
      return enc_i(kOpOpImm32, rd, 0, rd, imm);
    }
    case 0x2: {  // c.li -> addi rd, x0, imm
      const i32 imm = sext_i32((b(h, 12, 12) << 5) | b(h, 6, 2), 6);
      return make_alu_ri(0, full_reg(h, 7), 0, imm);
    }
    case 0x3: {
      const u8 rd = full_reg(h, 7);
      if (rd == 2) {  // c.addi16sp
        const i32 imm = sext_i32((b(h, 12, 12) << 9) | (b(h, 4, 3) << 7) |
                                     (b(h, 5, 5) << 6) | (b(h, 2, 2) << 5) |
                                     (b(h, 6, 6) << 4),
                                 10);
        if (imm == 0) return std::nullopt;
        return make_alu_ri(0, 2, 2, imm);
      }
      // c.lui (reserved when rd=0 or imm=0)
      const i32 imm = sext_i32((b(h, 12, 12) << 17) | (b(h, 6, 2) << 12), 18);
      if (rd == 0 || imm == 0) return std::nullopt;
      return enc_u(kOpLui, rd, imm);
    }
    case 0x4: {  // ALU block
      const u8 rd = creg(h, 7);
      switch (b(h, 11, 10)) {
        case 0x0: {  // c.srli
          const u32 shamt = (b(h, 12, 12) << 5) | b(h, 6, 2);
          return enc_i(kOpOpImm, rd, 5, rd, static_cast<i32>(shamt));
        }
        case 0x1: {  // c.srai
          const u32 shamt = (b(h, 12, 12) << 5) | b(h, 6, 2);
          return enc_i(kOpOpImm, rd, 5, rd,
                       static_cast<i32>(shamt | 0x400));  // funct6=0x10 pattern
        }
        case 0x2: {  // c.andi
          const i32 imm = sext_i32((b(h, 12, 12) << 5) | b(h, 6, 2), 6);
          return make_alu_ri(7, rd, rd, imm);
        }
        case 0x3: {
          const u8 rs2 = creg(h, 2);
          if (b(h, 12, 12) == 0) {
            switch (b(h, 6, 5)) {
              case 0x0: return make_alu_rr(0, rd, rd, rs2, /*alt=*/true);   // c.sub
              case 0x1: return make_alu_rr(4, rd, rd, rs2, /*alt=*/false);  // c.xor
              case 0x2: return make_alu_rr(6, rd, rd, rs2, /*alt=*/false);  // c.or
              case 0x3: return make_alu_rr(7, rd, rd, rs2, /*alt=*/false);  // c.and
            }
          } else {
            switch (b(h, 6, 5)) {
              case 0x0: return enc_r(kOpOp32, rd, 0, rd, rs2, 0x20);  // c.subw
              case 0x1: return enc_r(kOpOp32, rd, 0, rd, rs2, 0x00);  // c.addw
              default: return std::nullopt;
            }
          }
          return std::nullopt;
        }
      }
      return std::nullopt;
    }
    case 0x5: {  // c.j
      const i32 off = sext_i32(
          (b(h, 12, 12) << 11) | (b(h, 8, 8) << 10) | (b(h, 10, 9) << 8) |
              (b(h, 6, 6) << 7) | (b(h, 7, 7) << 6) | (b(h, 2, 2) << 5) |
              (b(h, 11, 11) << 4) | (b(h, 5, 3) << 1),
          12);
      return make_jal(0, off);
    }
    case 0x6: case 0x7: {  // c.beqz / c.bnez
      const i32 off = sext_i32((b(h, 12, 12) << 8) | (b(h, 6, 5) << 6) |
                                   (b(h, 2, 2) << 5) | (b(h, 11, 10) << 3) |
                                   (b(h, 4, 3) << 1),
                               9);
      const u8 f3 = b(h, 15, 13) == 0x6 ? 0 : 1;  // beq / bne
      return make_branch(f3, creg(h, 7), 0, off);
    }
    default: return std::nullopt;
  }
}

std::optional<u32> expand_q2(u16 h) {
  const u8 rd = full_reg(h, 7);
  switch (b(h, 15, 13)) {
    case 0x0: {  // c.slli
      const u32 shamt = (b(h, 12, 12) << 5) | b(h, 6, 2);
      return enc_i(kOpOpImm, rd, 1, rd, static_cast<i32>(shamt));
    }
    case 0x1: {  // c.fldsp
      const u32 imm = (b(h, 4, 2) << 6) | (b(h, 12, 12) << 5) | (b(h, 6, 5) << 3);
      return enc_i(kOpLoadFp, rd, 3, 2, static_cast<i32>(imm));
    }
    case 0x2: {  // c.lwsp (reserved when rd=0)
      if (rd == 0) return std::nullopt;
      const u32 imm = (b(h, 3, 2) << 6) | (b(h, 12, 12) << 5) | (b(h, 6, 4) << 2);
      return make_load(2, rd, 2, static_cast<i32>(imm));
    }
    case 0x3: {  // c.ldsp (RV64; reserved when rd=0)
      if (rd == 0) return std::nullopt;
      const u32 imm = (b(h, 4, 2) << 6) | (b(h, 12, 12) << 5) | (b(h, 6, 5) << 3);
      return make_load(3, rd, 2, static_cast<i32>(imm));
    }
    case 0x4: {
      const u8 rs2 = full_reg(h, 2);
      if (b(h, 12, 12) == 0) {
        if (rs2 == 0) {  // c.jr (reserved when rs1=0)
          if (rd == 0) return std::nullopt;
          return make_jalr(0, rd, 0);
        }
        return make_alu_rr(0, rd, 0, rs2, /*alt=*/false);  // c.mv
      }
      if (rs2 == 0) {
        if (rd == 0) return u32{0x00100073};  // c.ebreak
        return make_jalr(1, rd, 0);           // c.jalr
      }
      return make_alu_rr(0, rd, rd, rs2, /*alt=*/false);  // c.add
    }
    case 0x5: {  // c.fsdsp
      const u32 imm = (b(h, 9, 7) << 6) | (b(h, 12, 10) << 3);
      return enc_s(kOpStoreFp, 3, 2, full_reg(h, 2), static_cast<i32>(imm));
    }
    case 0x6: {  // c.swsp
      const u32 imm = (b(h, 8, 7) << 6) | (b(h, 12, 9) << 2);
      return make_store(2, 2, full_reg(h, 2), static_cast<i32>(imm));
    }
    case 0x7: {  // c.sdsp (RV64)
      const u32 imm = (b(h, 9, 7) << 6) | (b(h, 12, 10) << 3);
      return make_store(3, 2, full_reg(h, 2), static_cast<i32>(imm));
    }
    default: return std::nullopt;
  }
}

}  // namespace

std::optional<u32> expand_rvc(u16 half) {
  if (half == 0) return std::nullopt;  // defined illegal
  if (!is_rvc(half)) return std::nullopt;
  switch (half & 0x3) {
    case 0x0: return expand_q0(half);
    case 0x1: return expand_q1(half);
    case 0x2: return expand_q2(half);
    default: return std::nullopt;
  }
}

}  // namespace fg::isa
