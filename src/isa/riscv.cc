#include "src/isa/riscv.h"

#include <cstdarg>
#include <cstdio>

#include "src/common/check.h"

namespace fg::isa {

const char* class_name(InstClass c) {
  switch (c) {
    case InstClass::kIntAlu: return "int_alu";
    case InstClass::kIntMul: return "int_mul";
    case InstClass::kIntDiv: return "int_div";
    case InstClass::kFpAlu: return "fp_alu";
    case InstClass::kFpMulDiv: return "fp_muldiv";
    case InstClass::kLoad: return "load";
    case InstClass::kStore: return "store";
    case InstClass::kBranch: return "branch";
    case InstClass::kJump: return "jump";
    case InstClass::kCall: return "call";
    case InstClass::kRet: return "ret";
    case InstClass::kCsr: return "csr";
    case InstClass::kGuardEvent: return "guard_event";
    case InstClass::kNop: return "nop";
  }
  return "?";
}

namespace {
constexpr i64 sext(u64 v, unsigned bits_used) {
  const u64 sign = u64{1} << (bits_used - 1);
  return static_cast<i64>((v ^ sign) - sign);
}
}  // namespace

i64 imm_i(u32 enc) { return sext(bits(enc, 31, 20), 12); }

i64 imm_s(u32 enc) {
  const u64 v = (bits(enc, 31, 25) << 5) | bits(enc, 11, 7);
  return sext(v, 12);
}

i64 imm_b(u32 enc) {
  const u64 v = (bits(enc, 31, 31) << 12) | (bits(enc, 7, 7) << 11) |
                (bits(enc, 30, 25) << 5) | (bits(enc, 11, 8) << 1);
  return sext(v, 13);
}

i64 imm_u(u32 enc) { return sext(bits(enc, 31, 12) << 12, 32); }

i64 imm_j(u32 enc) {
  const u64 v = (bits(enc, 31, 31) << 20) | (bits(enc, 19, 12) << 12) |
                (bits(enc, 20, 20) << 11) | (bits(enc, 30, 21) << 1);
  return sext(v, 21);
}

u32 enc_r(u8 opcode, u8 rd, u8 funct3, u8 rs1, u8 rs2, u8 funct7) {
  FG_CHECK(rd < 32 && rs1 < 32 && rs2 < 32 && funct3 < 8);
  return (u32{funct7} << 25) | (u32{rs2} << 20) | (u32{rs1} << 15) |
         (u32{funct3} << 12) | (u32{rd} << 7) | opcode;
}

u32 enc_i(u8 opcode, u8 rd, u8 funct3, u8 rs1, i32 imm) {
  FG_CHECK(rd < 32 && rs1 < 32 && funct3 < 8);
  FG_CHECK(imm >= -2048 && imm < 2048);
  return (static_cast<u32>(imm & 0xfff) << 20) | (u32{rs1} << 15) |
         (u32{funct3} << 12) | (u32{rd} << 7) | opcode;
}

u32 enc_s(u8 opcode, u8 funct3, u8 rs1, u8 rs2, i32 imm) {
  FG_CHECK(rs1 < 32 && rs2 < 32 && funct3 < 8);
  FG_CHECK(imm >= -2048 && imm < 2048);
  const u32 u = static_cast<u32>(imm & 0xfff);
  return ((u >> 5) << 25) | (u32{rs2} << 20) | (u32{rs1} << 15) |
         (u32{funct3} << 12) | ((u & 0x1f) << 7) | opcode;
}

u32 enc_b(u8 opcode, u8 funct3, u8 rs1, u8 rs2, i32 imm) {
  FG_CHECK(rs1 < 32 && rs2 < 32 && funct3 < 8);
  FG_CHECK(imm >= -4096 && imm < 4096 && (imm & 1) == 0);
  const u32 u = static_cast<u32>(imm & 0x1fff);
  return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) |
         (u32{rs2} << 20) | (u32{rs1} << 15) | (u32{funct3} << 12) |
         (((u >> 1) & 0xf) << 8) | (((u >> 11) & 1) << 7) | opcode;
}

u32 enc_u(u8 opcode, u8 rd, i32 imm) {
  FG_CHECK(rd < 32);
  return (static_cast<u32>(imm) & 0xfffff000u) | (u32{rd} << 7) | opcode;
}

u32 enc_j(u8 opcode, u8 rd, i32 imm) {
  FG_CHECK(rd < 32);
  FG_CHECK(imm >= -(1 << 20) && imm < (1 << 20) && (imm & 1) == 0);
  const u32 u = static_cast<u32>(imm) & 0x1fffff;
  return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3ff) << 21) |
         (((u >> 11) & 1) << 20) | (((u >> 12) & 0xff) << 12) |
         (u32{rd} << 7) | opcode;
}

u32 make_load(u8 funct3, u8 rd, u8 rs1, i32 imm) {
  return enc_i(kOpLoad, rd, funct3, rs1, imm);
}
u32 make_store(u8 funct3, u8 rs1, u8 rs2, i32 imm) {
  return enc_s(kOpStore, funct3, rs1, rs2, imm);
}
u32 make_alu_rr(u8 funct3, u8 rd, u8 rs1, u8 rs2, bool alt) {
  return enc_r(kOpOp, rd, funct3, rs1, rs2, alt ? 0x20 : 0x00);
}
u32 make_alu_ri(u8 funct3, u8 rd, u8 rs1, i32 imm) {
  return enc_i(kOpOpImm, rd, funct3, rs1, imm);
}
u32 make_mul(u8 funct3, u8 rd, u8 rs1, u8 rs2) {
  return enc_r(kOpOp, rd, funct3, rs1, rs2, 0x01);
}
u32 make_fp(u8 funct5, u8 rd, u8 rs1, u8 rs2) {
  // OP-FP with fmt=D (01); funct7 = {funct5, fmt}.
  return enc_r(kOpFp, rd, 0x0, rs1, rs2, static_cast<u8>((funct5 << 2) | 0x1));
}
u32 make_branch(u8 funct3, u8 rs1, u8 rs2, i32 off) {
  return enc_b(kOpBranch, funct3, rs1, rs2, off);
}
u32 make_jal(u8 rd, i32 off) { return enc_j(kOpJal, rd, off); }
u32 make_jalr(u8 rd, u8 rs1, i32 imm) { return enc_i(kOpJalr, rd, 0x0, rs1, imm); }
u32 make_csrrw(u8 rd, u8 rs1, u16 csr) {
  FG_CHECK(csr < 0x1000);
  return (u32{csr} << 20) | (u32{rs1} << 15) | (u32{0x1} << 12) | (u32{rd} << 7) |
         kOpSystem;
}
u32 make_guard_event(bool is_alloc) {
  const u8 f3 = is_alloc ? kGuardAllocFunct3 : kGuardFreeFunct3;
  return enc_r(kOpCustom0, 0, f3, 0, 0, 0);
}

bool is_call(u32 enc) {
  const u8 op = opcode_of(enc);
  if (op != kOpJal && op != kOpJalr) return false;
  return rd_of(enc) == 1;  // links into ra
}

bool is_ret(u32 enc) {
  return opcode_of(enc) == kOpJalr && rd_of(enc) == 0 && rs1_of(enc) == 1;
}

namespace {
const char* load_name(u8 f3) {
  static const char* names[8] = {"lb", "lh", "lw", "ld", "lbu", "lhu", "lwu", "l?"};
  return names[f3 & 7];
}
const char* store_name(u8 f3) {
  static const char* names[8] = {"sb", "sh", "sw", "sd", "s?", "s?", "s?", "s?"};
  return names[f3 & 7];
}
const char* branch_name(u8 f3) {
  static const char* names[8] = {"beq", "bne", "b?", "b?", "blt", "bge", "bltu", "bgeu"};
  return names[f3 & 7];
}
const char* alu_name(u8 f3, bool alt) {
  if (alt) return f3 == 0 ? "sub" : (f3 == 5 ? "sra" : "op?");
  static const char* names[8] = {"add", "sll", "slt", "sltu", "xor", "srl", "or", "and"};
  return names[f3 & 7];
}
const char* mul_name(u8 f3) {
  static const char* names[8] = {"mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu"};
  return names[f3 & 7];
}
std::string fmt(const char* f, ...) {
  char buf[96];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  return buf;
}
}  // namespace

std::string disassemble(u32 enc) {
  const u8 op = opcode_of(enc);
  const u8 f3 = funct3_of(enc);
  const u8 rd = rd_of(enc), rs1 = rs1_of(enc), rs2 = rs2_of(enc);
  switch (op) {
    case kOpLoad:
      return fmt("%s x%d, %lld(x%d)", load_name(f3), rd,
                 static_cast<long long>(imm_i(enc)), rs1);
    case kOpStore:
      return fmt("%s x%d, %lld(x%d)", store_name(f3), rs2,
                 static_cast<long long>(imm_s(enc)), rs1);
    case kOpOp:
      if (funct7_of(enc) == 0x01) return fmt("%s x%d, x%d, x%d", mul_name(f3), rd, rs1, rs2);
      return fmt("%s x%d, x%d, x%d", alu_name(f3, funct7_of(enc) == 0x20), rd, rs1, rs2);
    case kOpOpImm:
      return fmt("%si x%d, x%d, %lld", alu_name(f3, false), rd, rs1,
                 static_cast<long long>(imm_i(enc)));
    case kOpBranch:
      return fmt("%s x%d, x%d, %lld", branch_name(f3), rs1, rs2,
                 static_cast<long long>(imm_b(enc)));
    case kOpJal:
      if (rd == 0) return fmt("j %lld", static_cast<long long>(imm_j(enc)));
      return fmt("jal x%d, %lld", rd, static_cast<long long>(imm_j(enc)));
    case kOpJalr:
      if (is_ret(enc)) return "ret";
      return fmt("jalr x%d, %lld(x%d)", rd, static_cast<long long>(imm_i(enc)), rs1);
    case kOpFp:
      return fmt("fop.d f%d, f%d, f%d", rd, rs1, rs2);
    case kOpSystem:
      return fmt("csrrw x%d, 0x%x, x%d", rd, static_cast<unsigned>(enc >> 20), rs1);
    case kOpCustom0:
      return f3 == kGuardAllocFunct3 ? "guard.alloc" : "guard.free";
    case kOpLui:
      return fmt("lui x%d, %lld", rd, static_cast<long long>(imm_u(enc) >> 12));
    default:
      return fmt(".word 0x%08x", enc);
  }
}

}  // namespace fg::isa
