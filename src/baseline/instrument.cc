#include "src/baseline/instrument.h"

#include "src/common/check.h"
#include "src/isa/riscv.h"

namespace fg::baseline {

namespace {
// Software ASan's shadow offset (matches the region the hardware kernels
// use, but these loads hit the *main core's* caches and TLB — that is the
// cost software techniques pay and FireGuard offloads).
constexpr u64 kSwShadowBase = 0x8'0000'0000ull;
constexpr u64 kDangSanMeta = 0x9'0000'0000ull;
}  // namespace

const char* sw_scheme_name(SwScheme s) {
  switch (s) {
    case SwScheme::kShadowStackLlvm: return "shadow_stack_llvm_aarch64";
    case SwScheme::kAsanAarch64: return "asan_aarch64";
    case SwScheme::kAsanX8664: return "asan_x86_64";
    case SwScheme::kDangSan: return "dangsan_x86_64";
  }
  return "?";
}

InstrumentedSource::InstrumentedSource(trace::TraceSource& inner, SwScheme scheme)
    : inner_(inner), scheme_(scheme), pending_(512) {}

void InstrumentedSource::reset() {
  inner_.reset();
  pending_.clear();
  original_ = 0;
  added_ = 0;
  sstack_sp_ = 0x7e00'0000'0000ull;
}

void InstrumentedSource::push_alu(u64 pc) {
  trace::TraceInst t;
  t.pc = pc;
  t.enc = isa::make_alu_ri(0x0, 6, 6, 1);
  t.cls = isa::InstClass::kIntAlu;
  t.rd = 6;
  t.rs1 = 6;
  pending_.push(t);
  ++added_;
}

void InstrumentedSource::push_shadow_load(u64 pc, u64 shadow_addr) {
  trace::TraceInst t;
  t.pc = pc;
  t.enc = isa::make_load(0x4, 7, 6, 0);  // lbu
  t.cls = isa::InstClass::kLoad;
  t.rd = 7;
  t.rs1 = 6;
  t.mem_size = 1;
  t.mem_addr = shadow_addr;
  pending_.push(t);
  ++added_;
}

void InstrumentedSource::push_shadow_store(u64 pc, u64 shadow_addr) {
  trace::TraceInst t;
  t.pc = pc;
  t.enc = isa::make_store(0x3, 6, 7, 0);
  t.cls = isa::InstClass::kStore;
  t.rs1 = 6;
  t.rs2 = 7;
  t.mem_size = 8;
  t.mem_addr = shadow_addr;
  pending_.push(t);
  ++added_;
}

void InstrumentedSource::push_check_branch(u64 pc) {
  trace::TraceInst t;
  t.pc = pc;
  t.enc = isa::make_branch(0x1, 7, 0, 16);  // bne x7, x0 — never taken
  t.cls = isa::InstClass::kBranch;
  t.rs1 = 7;
  t.rs2 = 0;
  t.taken = false;
  t.target = pc + 16;
  pending_.push(t);
  ++added_;
}

void InstrumentedSource::expand(const trace::TraceInst& ti) {
  using isa::InstClass;
  // Instrumentation thunk PCs live in a parallel code region so the i-cache
  // and predictor see the (real) extra footprint of inlined checks.
  const u64 tpc = ti.pc + 0x20'0000;
  switch (scheme_) {
    case SwScheme::kShadowStackLlvm: {
      if (ti.cls == InstClass::kCall) {
        // Compute shadow slot, store return address, bump pointer.
        push_alu(tpc);
        push_shadow_store(tpc + 4, sstack_sp_);
        sstack_sp_ += 8;
        push_alu(tpc + 8);
      } else if (ti.cls == InstClass::kRet) {
        if (sstack_sp_ > 0x7e00'0000'0000ull) sstack_sp_ -= 8;
        push_alu(tpc);
        push_shadow_load(tpc + 4, sstack_sp_);
        push_check_branch(tpc + 8);
        push_alu(tpc + 12);
      }
      break;
    }
    case SwScheme::kAsanAarch64:
    case SwScheme::kAsanX8664: {
      if (ti.cls == InstClass::kLoad || ti.cls == InstClass::kStore) {
        const u64 shadow = kSwShadowBase + (ti.mem_addr >> 3);
        // AArch64 codegen spends more instructions per check (address
        // materialization + extra moves) than x86-64's fused forms — the
        // reason the paper's AArch64 ASan overhead (163.5%) exceeds
        // x86-64's (91.5%).
        const int extra_alu = scheme_ == SwScheme::kAsanAarch64 ? 5 : 3;
        for (int i = 0; i < extra_alu; ++i) push_alu(tpc + 4 * static_cast<u64>(i));
        push_shadow_load(tpc + 4 * static_cast<u64>(extra_alu), shadow);
        push_check_branch(tpc + 4 * static_cast<u64>(extra_alu) + 4);
      }
      if (ti.sem == trace::SemEvent::kAlloc || ti.sem == trace::SemEvent::kFree) {
        // Poison/unpoison loop in the allocator interceptor.
        const u32 words = ti.sem_size / 64 + 2;
        for (u32 i = 0; i < words; ++i) {
          push_alu(tpc + 8 * i);
          push_shadow_store(tpc + 8 * i + 4, kSwShadowBase + (ti.sem_addr >> 3) + 8 * i);
        }
      }
      break;
    }
    case SwScheme::kDangSan: {
      // DangSan tracks pointer stores in per-thread logs and does heavy
      // work at free time.
      if (ti.cls == InstClass::kStore && ti.mem_size == 8) {
        push_alu(tpc);
        push_alu(tpc + 4);
        push_shadow_store(tpc + 8, kDangSanMeta + ((ti.mem_addr >> 4) & 0xffffff));
      }
      if (ti.sem == trace::SemEvent::kFree) {
        for (u32 i = 0; i < 24; ++i) {
          push_alu(tpc + 4 * i);
          if (i % 3 == 2) {
            push_shadow_load(tpc + 4 * i + 2, kDangSanMeta + 16 * i);
          }
        }
      }
      if (ti.sem == trace::SemEvent::kAlloc) {
        for (u32 i = 0; i < 6; ++i) push_alu(tpc + 4 * i);
      }
      break;
    }
  }
}

bool InstrumentedSource::next(trace::TraceInst& out) {
  if (!pending_.empty()) {
    out = pending_.pop();
    return true;
  }
  trace::TraceInst ti;
  if (!inner_.next(ti)) return false;
  ++original_;
  // Original instruction first, then its check sequence (check-after for
  // simplicity; ordering does not affect throughput modelling).
  expand(ti);
  out = ti;
  return true;
}

}  // namespace fg::baseline
