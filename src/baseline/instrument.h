// Software-technique baselines (Figure 7a's comparison points).
//
// The paper compares FireGuard against compiler-inserted checks: LLVM's
// shadow stack (AArch64), AddressSanitizer (AArch64 and x86-64), and DangSan
// (x86-64). We model each as *trace instrumentation*: the same workload
// trace is expanded with the dynamic instruction sequence the tool would
// insert (shadow-address arithmetic, shadow loads, compare-and-branch,
// bookkeeping on calls/returns/allocations), and the expanded trace runs
// through the identical OoO core model. The slowdown is then measured the
// same way as FireGuard's, on the same hardware — which is exactly the
// paper's experimental design, with the ISA-specific expansion factors
// reflecting each tool's published per-access sequences.
#pragma once

#include <memory>

#include "src/common/ring_queue.h"
#include "src/trace/trace.h"

namespace fg::baseline {

enum class SwScheme : u8 {
  kShadowStackLlvm,  // AArch64 LLVM shadow stack
  kAsanAarch64,      // AddressSanitizer, AArch64 codegen
  kAsanX8664,        // AddressSanitizer, x86-64 codegen
  kDangSan,          // DangSan use-after-free tracking, x86-64
};

const char* sw_scheme_name(SwScheme s);

/// Wraps a TraceSource and interleaves the instrumentation instructions.
class InstrumentedSource final : public trace::TraceSource {
 public:
  InstrumentedSource(trace::TraceSource& inner, SwScheme scheme);

  bool next(trace::TraceInst& out) override;
  void reset() override;

  u64 original_insts() const { return original_; }
  u64 added_insts() const { return added_; }
  double expansion() const {
    return original_ ? 1.0 + static_cast<double>(added_) / static_cast<double>(original_)
                     : 1.0;
  }

 private:
  void expand(const trace::TraceInst& ti);
  void push_alu(u64 pc);
  void push_shadow_load(u64 pc, u64 shadow_addr);
  void push_shadow_store(u64 pc, u64 shadow_addr);
  void push_check_branch(u64 pc);

  trace::TraceSource& inner_;
  SwScheme scheme_;
  RingQueue<trace::TraceInst> pending_;
  u64 original_ = 0;
  u64 added_ = 0;
  u64 sstack_sp_ = 0x7e00'0000'0000ull;  // software shadow-stack region
};

}  // namespace fg::baseline
