// Blocking NDJSON client for the fgsim serve daemon: connect to the Unix
// socket, send one-line request frames, read one-line responses. This is
// the whole client side of the protocol — `fgsim submit/jobs/status` are
// thin argument parsers over it, and tests drive malformed frames through
// send_raw/read_response directly.
#pragma once

#include <string>

#include "src/common/json.h"
#include "src/serve/protocol.h"

namespace fg::serve {

#if !defined(_WIN32)

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a daemon. False with *err when the socket is absent or
  /// nothing is listening (the daemon-not-running case callers turn into
  /// exit code 3).
  bool connect(const std::string& socket_path, std::string* err);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// One round trip: send `request_line` (newline appended), block for the
  /// response frame, parse it into *resp. False with *err on transport
  /// failure or unparsable response; a daemon-side {"ok": false} is a
  /// SUCCESSFUL call — callers check resp->get_bool("ok").
  bool call(const std::string& request_line, json::Value* resp,
            std::string* err);

  /// Raw frame send (no newline added) — the malformed-protocol test hook.
  bool send_raw(const std::string& bytes, std::string* err);
  /// Block for the next response line (terminator stripped).
  bool read_response(std::string* line, std::string* err);

 private:
  int fd_ = -1;
  FrameBuffer in_;
};

#endif  // !_WIN32

}  // namespace fg::serve
