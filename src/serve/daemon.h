// ServeDaemon: the sharded, deduplicating experiment service.
//
// One daemon process owns a durable ResultStore and a Unix-domain socket.
// Clients submit ExperimentSpecs (sweep axes expanded into points keyed by
// the canonical result_key); the daemon answers already-published points
// straight from the store, attaches duplicate in-flight points to the one
// execution (two clients submitting the same point get one simulation and
// two answers), and schedules the rest onto a pool of forked workers with
// the campaign layer's watchdog + bounded-retry machinery. Idle workers
// drain the global backlog round-robin across submissions (work stealing),
// so a small submission never queues behind a giant one.
//
// Crash safety: every accepted submission is journaled as an atomic
// faultfs-published file under <store>/serve/queue/ before it is
// acknowledged, and removed only when the submission completes. A killed
// daemon (SIGKILL, power cut) restarts into the same queue: journaled
// submissions are replayed, already-published points are store hits (zero
// re-execution), and only genuinely unfinished points run. Workers are
// forked processes whose only side effect is an atomic store publish, so a
// daemon death cannot corrupt results — the store's checksummed entries and
// the journal's atomicity carry the whole burden, exactly as in `fgsim
// campaign` (and exercised by the same FG_FAULT machinery).
//
// Concurrency model: ONE event-loop thread (poll over the listen socket and
// client connections, waitpid(WNOHANG) over workers). Simulation happens in
// forked children only; nothing in the daemon needs a lock. run() blocks
// until a shutdown request, request_stop() (signal handlers), or a fatal
// socket error.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "src/serve/protocol.h"
#include "src/serve/queue.h"
#include "src/store/result_store.h"

namespace fg::serve {

struct ServeConfig {
  std::string store_dir;
  std::string socket_path;
  /// Forked worker slots. 0 = hardware concurrency.
  u32 workers = 0;
  /// Attempts per point before it counts as failed.
  u32 max_attempts = 3;
  /// Per-point wall-clock watchdog in seconds; 0 disables.
  double point_timeout_s = 0.0;
  /// Base retry backoff, doubled per subsequent attempt.
  u64 backoff_ms = 50;
  bool quiet = false;
};

#if !defined(_WIN32)

class ServeDaemon {
 public:
  explicit ServeDaemon(ServeConfig cfg);
  ~ServeDaemon();
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Open the store, bind + listen on the socket (refusing a socket another
  /// live daemon holds; unlinking a stale one), replay the submission
  /// journal. False with *err on store/socket I/O failure.
  bool init(std::string* err);

  /// The event loop; blocks until shutdown. True on a clean stop, false on
  /// a fatal socket error (*err set).
  bool run(std::string* err);

  /// Async stop (safe from signal handlers and other threads): the loop
  /// exits at its next wakeup, leaving journaled submissions for a restart.
  void request_stop() { stop_.store(true); }

  const ServeConfig& config() const { return cfg_; }
  u32 workers() const { return workers_; }
  const ServeStats& stats() const { return queue_.stats(); }
  /// <store>/serve/queue — one atomic JSON file per unfinished submission.
  std::string journal_dir() const;

 private:
  struct Conn {
    int fd = -1;
    FrameBuffer in;
    /// Deferred-response state: a submit --wait or drain parks here.
    u64 wait_sub = 0;  // 0 = no deferred submit response
    bool want_results = false;
    bool drain_wait = false;
  };
  struct Worker {
    pid_t pid = -1;           // -1 = idle slot
    std::string key;          // the PointRun being executed
    u64 sub = 0;              // submission whose backlog the point came from
    u64 last_sub = 0;         // for the steal counter
    double deadline_ms = 0;   // watchdog; 0 = none
    bool timed_out = false;
  };

  bool bind_socket(std::string* err);
  void replay_journal();
  u64 accept_submission(const Request& req, bool replayed, u64 forced_id,
                        Submission** out, std::string* err);
  void launch_ready_workers();
  void reap_workers();
  void finish_submission(u64 id);
  void answer_waiters(u64 sub_id);
  void check_drain_waiters();

  void handle_line(Conn& c, const std::string& line);
  void handle_request(Conn& c, const Request& req);
  json::Value submission_json(const Submission& sub, bool with_results) const;
  json::Value stats_json() const;

  /// Queue `text` as a frame on the connection (best effort; a dead client
  /// only loses its own response — its fd is closed and marked for sweep).
  void send(Conn& c, const std::string& text);
  /// The live connection currently holding `fd`, or nullptr.
  Conn* find_conn(int fd);
  /// Erase connections marked closed (fd < 0) during this loop iteration.
  void sweep_closed_conns();

  ServeConfig cfg_;
  u32 workers_ = 1;
  store::ResultStore store_;
  SubmissionQueue queue_;
  std::vector<Worker> slots_;
  std::vector<Conn> conns_;
  int listen_fd_ = -1;
  u64 next_id_ = 1;
  bool draining_ = false;
  std::atomic<bool> stop_{false};
  bool inited_ = false;
};

#endif  // !_WIN32

}  // namespace fg::serve
