// The fgsim serve wire protocol: newline-delimited JSON over a Unix-domain
// stream socket.
//
// Framing: one request or response per line ('\n'-terminated one-line JSON
// object, no embedded newlines — fg::json never emits them at indent 0). A
// frame longer than kMaxFrameBytes is a protocol violation: the daemon
// answers a structured error and closes that connection (the line boundary
// is unrecoverable), but stays up. Anything short of that — garbage JSON,
// unknown request kinds, a stale protocol version, missing fields — is
// answered with {"ok": false, "error": ...} on the same connection, which
// remains usable. A truncated final line (client died mid-write) is
// discarded when the connection closes.
//
// Versioning: every request carries "v". The daemon speaks exactly
// kProtocolVersion; any other value (or a missing "v") is answered with an
// error naming the supported version, so a stale client fails loudly and
// immediately rather than mis-parsing.
//
// Request kinds (the "kind" field; full schema in docs/API.md):
//   submit    submit an ExperimentSpec — sweep axes are expanded into grid
//             points keyed by the canonical result_key ("submit-spec" and
//             "submit-campaign" are accepted aliases; a campaign is just a
//             spec with sweep axes). Options: wait (defer the response
//             until every point resolved), results (attach the stored
//             outcome payloads, grid order), with_baseline.
//   status    per-submission progress (all jobs, or one via "id")
//   cancel    drop a submission's pending points (running ones finish and
//             publish; points shared with other submissions keep running)
//   stats     the observability surface: queue depth, per-worker state,
//             store hits vs executions, dedupe hits, retry/timeout counts
//   drain     stop accepting submissions; respond once the backlog is empty
//   shutdown  respond, then exit the daemon (journaled submissions resume
//             on the next start)
#pragma once

#include <string>

#include "src/api/spec.h"
#include "src/common/json.h"

namespace fg::serve {

inline constexpr u64 kProtocolVersion = 1;
/// Hard per-frame byte cap (a 200-point sweep spec is ~4 KB; 8 MiB is
/// three orders of magnitude of headroom, not a real limit).
inline constexpr size_t kMaxFrameBytes = 8u << 20;

enum class RequestKind : u8 {
  kSubmit,
  kStatus,
  kCancel,
  kStats,
  kDrain,
  kShutdown,
};

const char* request_kind_name(RequestKind k);

struct Request {
  RequestKind kind = RequestKind::kStats;
  // submit
  api::ExperimentSpec spec;
  bool wait = false;
  bool want_results = false;
  bool with_baseline = true;
  std::string name;  // optional client-chosen label
  // status / cancel
  u64 id = 0;
  bool has_id = false;
};

/// Parse one request line. False with a one-line reason in *err on garbage
/// JSON, a missing/unsupported protocol version, an unknown kind, or a
/// submit without a valid spec — the daemon turns *err into a structured
/// error response verbatim.
bool parse_request(const std::string& line, Request* out, std::string* err);

// --- request builders (the client side) ------------------------------------
std::string submit_request(const api::ExperimentSpec& spec, bool wait,
                           bool want_results, bool with_baseline,
                           const std::string& name = "");
/// kind in {"status", "stats", "drain", "shutdown"}.
std::string simple_request(const char* kind);
std::string status_request(u64 id);
std::string cancel_request(u64 id);

// --- response helpers -------------------------------------------------------
/// {"ok": false, "v": 1, "error": msg} — the structured error form.
std::string error_response(const std::string& msg);
/// Serialize a response object (adds ok/v fields) to the one-line frame.
std::string ok_response(json::Value fields);

/// Incremental line framer shared by the daemon's connections and the
/// client: feed raw bytes, take complete lines. Enforces kMaxFrameBytes on
/// the unconsumed tail.
class FrameBuffer {
 public:
  void append(const char* data, size_t n) { buf_.append(data, n); }
  /// Extract the next complete ('\n'-terminated) line, terminator stripped.
  bool take_line(std::string* line);
  /// True once the unconsumed tail exceeds kMaxFrameBytes with no newline —
  /// the peer is writing an oversized frame.
  bool over_limit() const;
  size_t pending() const { return buf_.size(); }

 private:
  std::string buf_;
};

}  // namespace fg::serve
