#include "src/serve/queue.h"

#include <algorithm>

#include "src/common/check.h"

namespace fg::serve {

namespace {

u64 backoff_for(u64 base_ms, u32 attempt) {
  return base_ms << std::min<u32>(attempt, 10);
}

}  // namespace

Submission& SubmissionQueue::add_submission(u64 id, const std::string& name,
                                            std::vector<api::GridPoint> points,
                                            std::vector<std::string> keys,
                                            std::vector<std::string> resolved,
                                            bool with_baseline, bool replayed) {
  FG_CHECK(points.size() == keys.size() && points.size() == resolved.size());
  Submission& sub = subs_[id];
  sub.id = id;
  sub.name = name;
  sub.with_baseline = with_baseline;
  sub.replayed = replayed;
  sub.n_points = points.size();
  sub.keys = std::move(keys);
  sub.payloads.assign(points.size(), "");

  ++stats_.submissions_accepted;
  if (replayed) ++stats_.submissions_replayed;
  stats_.points_submitted += points.size();

  for (u32 i = 0; i < points.size(); ++i) {
    const std::string& key = sub.keys[i];
    if (!resolved[i].empty()) {
      // The store answered this point at accept time.
      sub.payloads[i] = std::move(resolved[i]);
      ++sub.done;
      ++sub.from_store;
      ++stats_.store_hits;
      continue;
    }
    auto it = points_.find(key);
    if (it != points_.end()) {
      // In-flight dedupe: one execution, every submitter answered.
      it->second.waiters.emplace_back(id, i);
      ++sub.deduped;
      ++stats_.dedupe_hits;
      continue;
    }
    PointRun run;
    run.key = key;
    run.point = std::move(points[i]);
    run.with_baseline = with_baseline;
    run.fault_index = i;
    run.waiters.emplace_back(id, i);
    points_.emplace(key, std::move(run));
    backlog_[id].push_back(key);
  }
  return sub;
}

PointRun* SubmissionQueue::take_next(double now_ms, u64 last_sub) {
  // Retry backlog first: a point past its backoff gate is older than
  // anything still unstarted.
  for (size_t i = 0; i < backoff_.size(); ++i) {
    auto it = points_.find(backoff_[i]);
    if (it == points_.end() || it->second.state != PointState::kBackoff) {
      backoff_.erase(backoff_.begin() + static_cast<long>(i--));
      continue;
    }
    if (it->second.ready_ms > now_ms) continue;
    backoff_.erase(backoff_.begin() + static_cast<long>(i));
    it->second.state = PointState::kRunning;
    ++it->second.attempts;
    ++running_;
    return &it->second;
  }

  // Round-robin over per-submission backlogs, starting after the last
  // submission served, so every worker slot drains the global queue fairly.
  if (backlog_.empty()) return nullptr;
  auto start = backlog_.upper_bound(rr_cursor_);
  if (start == backlog_.end()) start = backlog_.begin();
  auto it = start;
  do {
    std::deque<std::string>& dq = it->second;
    while (!dq.empty()) {
      auto pit = points_.find(dq.front());
      if (pit == points_.end() || pit->second.state != PointState::kPending ||
          pit->second.waiters.empty()) {
        dq.pop_front();  // stale after cancel/steal; drop lazily
        continue;
      }
      dq.pop_front();
      pit->second.state = PointState::kRunning;
      ++pit->second.attempts;
      ++running_;
      rr_cursor_ = it->first;
      if (last_sub != 0 && last_sub != it->first) ++stats_.steals;
      if (dq.empty()) backlog_.erase(it);
      return &pit->second;
    }
    auto next = std::next(it);
    backlog_.erase(it);
    it = next == backlog_.end() ? backlog_.begin() : next;
  } while (!backlog_.empty() && it != backlog_.end());
  return nullptr;
}

double SubmissionQueue::next_ready_ms() const {
  double earliest = 0.0;
  for (const std::string& key : backoff_) {
    auto it = points_.find(key);
    if (it == points_.end() || it->second.state != PointState::kBackoff) {
      continue;
    }
    if (earliest == 0.0 || it->second.ready_ms < earliest) {
      earliest = it->second.ready_ms;
    }
  }
  return earliest;
}

std::vector<u64> SubmissionQueue::resolve_waiters(PointRun* p,
                                                  const std::string& payload,
                                                  bool failed) {
  std::vector<u64> completed;
  for (const auto& [sub_id, index] : p->waiters) {
    auto sit = subs_.find(sub_id);
    if (sit == subs_.end() || sit->second.cancelled) continue;
    Submission& sub = sit->second;
    if (failed) {
      ++sub.failed;
    } else {
      sub.payloads[index] = payload;
      ++sub.done;
    }
    if (sub.complete()) completed.push_back(sub_id);
  }
  return completed;
}

std::vector<u64> SubmissionQueue::complete_point(PointRun* p,
                                                 const std::string& payload) {
  FG_CHECK(p->state == PointState::kRunning);
  --running_;
  ++stats_.executed;
  std::vector<u64> completed = resolve_waiters(p, payload, /*failed=*/false);
  points_.erase(p->key);
  return completed;
}

std::vector<u64> SubmissionQueue::fail_attempt(PointRun* p,
                                               const std::string& why,
                                               bool timed_out, u32 max_attempts,
                                               u64 backoff_ms, double now_ms) {
  FG_CHECK(p->state == PointState::kRunning);
  --running_;
  if (timed_out) ++stats_.timeouts;
  if (p->attempts < max_attempts) {
    ++stats_.retries;
    p->state = PointState::kBackoff;
    p->ready_ms =
        now_ms + static_cast<double>(backoff_for(backoff_ms, p->attempts - 1));
    backoff_.push_back(p->key);
    return {};
  }
  p->state = PointState::kFailed;
  p->why = why;
  ++stats_.failed_points;
  std::vector<u64> completed = resolve_waiters(p, "", /*failed=*/true);
  points_.erase(p->key);
  return completed;
}

size_t SubmissionQueue::cancel(u64 id) {
  auto sit = subs_.find(id);
  if (sit == subs_.end()) return static_cast<size_t>(-1);
  Submission& sub = sit->second;
  if (sub.cancelled) return 0;
  sub.cancelled = true;
  ++stats_.submissions_cancelled;
  size_t dropped = 0;
  // Detach from every point; a pending/backoff point left with no waiters
  // has no customer — drop it (its backlog/backoff entries go stale and are
  // skipped lazily). Running points finish and publish: the store keeps the
  // work either way.
  for (auto it = points_.begin(); it != points_.end();) {
    PointRun& p = it->second;
    auto w = std::remove_if(
        p.waiters.begin(), p.waiters.end(),
        [id](const std::pair<u64, u32>& e) { return e.first == id; });
    const bool was_ours = w != p.waiters.end();
    p.waiters.erase(w, p.waiters.end());
    if (was_ours && p.waiters.empty() && p.state != PointState::kRunning) {
      ++dropped;
      ++stats_.cancelled_points;
      it = points_.erase(it);
      continue;
    }
    ++it;
  }
  backlog_.erase(id);
  return dropped;
}

Submission* SubmissionQueue::find(u64 id) {
  auto it = subs_.find(id);
  return it == subs_.end() ? nullptr : &it->second;
}

PointRun* SubmissionQueue::find_point(const std::string& key) {
  auto it = points_.find(key);
  return it == points_.end() ? nullptr : &it->second;
}

size_t SubmissionQueue::queue_depth() const {
  size_t n = 0;
  for (const auto& [key, p] : points_) {
    if (p.state == PointState::kPending || p.state == PointState::kBackoff) {
      ++n;
    }
  }
  return n;
}

}  // namespace fg::serve
