#include "src/serve/protocol.h"

namespace fg::serve {

const char* request_kind_name(RequestKind k) {
  switch (k) {
    case RequestKind::kSubmit: return "submit";
    case RequestKind::kStatus: return "status";
    case RequestKind::kCancel: return "cancel";
    case RequestKind::kStats: return "stats";
    case RequestKind::kDrain: return "drain";
    case RequestKind::kShutdown: return "shutdown";
  }
  return "?";
}

bool parse_request(const std::string& line, Request* out, std::string* err) {
  json::Value v;
  if (!json::parse(line, &v) || !v.is_object()) {
    *err = "malformed request: not a JSON object";
    return false;
  }
  const json::Value* ver = v.get("v");
  if (ver == nullptr || ver->kind != json::Value::Kind::kNumber ||
      ver->is_float || ver->num != kProtocolVersion) {
    *err = "unsupported protocol version (daemon speaks v" +
           std::to_string(kProtocolVersion) + "; send \"v\": " +
           std::to_string(kProtocolVersion) + ")";
    return false;
  }
  const std::string kind = v.get_str("kind");
  Request r;
  if (kind == "submit" || kind == "submit-spec" || kind == "submit-campaign") {
    r.kind = RequestKind::kSubmit;
    const json::Value* spec = v.get("spec");
    if (spec == nullptr || !spec->is_object()) {
      *err = "submit: missing \"spec\" object";
      return false;
    }
    std::string spec_err;
    if (!api::spec_from_json(json::dump(*spec, 0), &r.spec, &spec_err)) {
      *err = "submit: bad spec: " + spec_err;
      return false;
    }
    r.wait = v.get_bool("wait", false);
    r.want_results = v.get_bool("results", false);
    r.with_baseline = v.get_bool("with_baseline", true);
    r.name = v.get_str("name");
  } else if (kind == "status" || kind == "jobs") {
    r.kind = RequestKind::kStatus;
  } else if (kind == "cancel") {
    r.kind = RequestKind::kCancel;
  } else if (kind == "stats") {
    r.kind = RequestKind::kStats;
  } else if (kind == "drain") {
    r.kind = RequestKind::kDrain;
  } else if (kind == "shutdown") {
    r.kind = RequestKind::kShutdown;
  } else if (kind.empty()) {
    *err = "missing request \"kind\"";
    return false;
  } else {
    *err = "unknown request kind \"" + kind + "\"";
    return false;
  }
  if (const json::Value* id = v.get("id");
      id != nullptr && id->kind == json::Value::Kind::kNumber &&
      !id->is_float) {
    r.id = id->num;
    r.has_id = true;
  }
  if (r.kind == RequestKind::kCancel && !r.has_id) {
    *err = "cancel: missing submission \"id\"";
    return false;
  }
  *out = std::move(r);
  return true;
}

namespace {

json::Value request_base(const char* kind) {
  json::Value v = json::Value::object();
  v.set("v", json::Value::of(kProtocolVersion));
  v.set("kind", json::Value::of_str(kind));
  return v;
}

}  // namespace

std::string submit_request(const api::ExperimentSpec& spec, bool wait,
                           bool want_results, bool with_baseline,
                           const std::string& name) {
  json::Value v = request_base("submit");
  json::Value spec_v;
  // spec_to_json_value emits the complete, bit-exact export.
  spec_v = api::spec_to_json_value(spec);
  v.set("spec", std::move(spec_v));
  v.set("wait", json::Value::of_bool(wait));
  v.set("results", json::Value::of_bool(want_results));
  v.set("with_baseline", json::Value::of_bool(with_baseline));
  if (!name.empty()) v.set("name", json::Value::of_str(name));
  return json::dump(v, 0);
}

std::string simple_request(const char* kind) {
  return json::dump(request_base(kind), 0);
}

std::string status_request(u64 id) {
  json::Value v = request_base("status");
  v.set("id", json::Value::of(id));
  return json::dump(v, 0);
}

std::string cancel_request(u64 id) {
  json::Value v = request_base("cancel");
  v.set("id", json::Value::of(id));
  return json::dump(v, 0);
}

std::string error_response(const std::string& msg) {
  json::Value v = json::Value::object();
  v.set("ok", json::Value::of_bool(false));
  v.set("v", json::Value::of(kProtocolVersion));
  v.set("error", json::Value::of_str(msg));
  return json::dump(v, 0);
}

std::string ok_response(json::Value fields) {
  fields.set("ok", json::Value::of_bool(true));
  fields.set("v", json::Value::of(kProtocolVersion));
  return json::dump(fields, 0);
}

bool FrameBuffer::take_line(std::string* line) {
  const size_t nl = buf_.find('\n');
  if (nl == std::string::npos) return false;
  line->assign(buf_, 0, nl);
  buf_.erase(0, nl + 1);
  return true;
}

bool FrameBuffer::over_limit() const {
  return buf_.size() > kMaxFrameBytes && buf_.find('\n') == std::string::npos;
}

}  // namespace fg::serve
